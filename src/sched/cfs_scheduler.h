// CFS-like scheduler: the Linux baseline for the cross-layer experiment
// (Fig. 8), where 36 server threads share 6 cores.
//
// Models the behaviours of Linux CFS that the paper's results depend on:
// fair virtual-runtime ordering, a latency-period-derived timeslice, a
// wakeup vruntime floor, and *bounded* wakeup preemption — CFS is oblivious
// to request types, so a thread serving a 10 µs GET gets no special
// treatment over a thread grinding through a 700 µs SCAN.
#ifndef SYRUP_SRC_SCHED_CFS_SCHEDULER_H_
#define SYRUP_SRC_SCHED_CFS_SCHEDULER_H_

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/sched/machine.h"

namespace syrup {

struct CfsParams {
  Duration sched_latency = 6 * kMillisecond;
  Duration min_granularity = 750 * kMicrosecond;
  Duration wakeup_granularity = 1 * kMillisecond;
};

class CfsScheduler : public Scheduler {
 public:
  explicit CfsScheduler(Machine& machine, CfsParams params = {})
      : machine_(machine), params_(params) {}

  void OnThreadRunnable(Thread* thread) override {
    auto& vr = vruntime_[thread];
    // Wakeup floor: a long sleeper does not get unbounded credit.
    vr = std::max(vr, min_vruntime_ > params_.sched_latency / 2
                          ? min_vruntime_ - params_.sched_latency / 2
                          : 0);
    Enqueue(thread);
    if (!DispatchToIdleCore()) {
      MaybeWakeupPreempt(thread);
    }
  }

  void OnThreadBlocked(Thread* thread, int /*core*/, Duration ran) override {
    Charge(thread, ran);
  }

  void OnSliceExpired(Thread* thread, int /*core*/, Duration ran) override {
    Charge(thread, ran);
    Enqueue(thread);
  }

  void OnCoreIdle(int core) override {
    if (machine_.CurrentOn(core) != nullptr) {
      return;  // a reentrant wakeup already claimed this core
    }
    Thread* next = PopMinVruntime();
    if (next == nullptr) {
      return;
    }
    machine_.RunOn(next, core, SliceFor());
  }

 private:
  using Key = std::pair<Duration, int>;  // (vruntime, tid) for determinism

  void Charge(Thread* thread, Duration ran) {
    auto& vr = vruntime_[thread];
    vr += ran;
    if (vr > min_vruntime_) {
      // min_vruntime advances monotonically with the leftmost entity.
      min_vruntime_ = runqueue_.empty()
                          ? vr
                          : std::min(vr, runqueue_.begin()->first.first);
    }
  }

  void Enqueue(Thread* thread) {
    runqueue_.emplace(Key{vruntime_[thread], thread->tid()}, thread);
  }

  Thread* PopMinVruntime() {
    if (runqueue_.empty()) {
      return nullptr;
    }
    auto it = runqueue_.begin();
    Thread* thread = it->second;
    min_vruntime_ = std::max(min_vruntime_, it->first.first);
    runqueue_.erase(it);
    return thread;
  }

  Duration SliceFor() const {
    const size_t nr = runqueue_.size() + 1 +
                      static_cast<size_t>(RunningCount());
    const Duration slice = params_.sched_latency / std::max<size_t>(nr, 1);
    return std::max(slice, params_.min_granularity);
  }

  int RunningCount() const {
    int count = 0;
    for (int core = 0; core < machine_.num_cores(); ++core) {
      if (machine_.CurrentOn(core) != nullptr) {
        ++count;
      }
    }
    return count;
  }

  bool DispatchToIdleCore() {
    for (int core = 0; core < machine_.num_cores(); ++core) {
      if (machine_.CurrentOn(core) == nullptr) {
        OnCoreIdle(core);
        return true;
      }
    }
    return false;
  }

  void MaybeWakeupPreempt(Thread* woken) {
    // Preempt the running thread with the largest vruntime if the waker's
    // lag exceeds wakeup_granularity (CFS check_preempt_wakeup).
    int victim_core = -1;
    Duration victim_vr = 0;
    for (int core = 0; core < machine_.num_cores(); ++core) {
      Thread* current = machine_.CurrentOn(core);
      if (current == nullptr) {
        continue;
      }
      const Duration vr = vruntime_[current];
      if (victim_core == -1 || vr > victim_vr) {
        victim_core = core;
        victim_vr = vr;
      }
    }
    if (victim_core == -1) {
      return;
    }
    const Duration woken_vr = vruntime_[woken];
    if (victim_vr > woken_vr && victim_vr - woken_vr >
                                    params_.wakeup_granularity) {
      // Preempt: the victim re-enters the queue via OnThreadRunnable and
      // the freed core pulls the leftmost entity (likely the waker).
      machine_.Preempt(victim_core);
    }
  }

  Machine& machine_;
  CfsParams params_;
  std::map<Key, Thread*> runqueue_;
  std::map<Thread*, Duration> vruntime_;
  Duration min_vruntime_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_SCHED_CFS_SCHEDULER_H_
