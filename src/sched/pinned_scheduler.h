// Pinned run-to-completion scheduler: thread i is bound to core (i mod N).
//
// This is the baseline for the single-layer experiments (Figs. 2/6/7/9)
// where each server thread owns one core, so all queueing happens in
// sockets rather than in the CPU scheduler.
#ifndef SYRUP_SRC_SCHED_PINNED_SCHEDULER_H_
#define SYRUP_SRC_SCHED_PINNED_SCHEDULER_H_

#include <deque>
#include <vector>

#include "src/sched/machine.h"

namespace syrup {

class PinnedScheduler : public Scheduler {
 public:
  explicit PinnedScheduler(Machine& machine)
      : machine_(machine),
        queues_(static_cast<size_t>(machine.num_cores())) {}

  void OnThreadRunnable(Thread* thread) override {
    const int core = CoreOf(thread);
    queues_[static_cast<size_t>(core)].push_back(thread);
    TryDispatch(core);
  }

  void OnThreadBlocked(Thread*, int, Duration) override {}

  void OnSliceExpired(Thread* thread, int core, Duration) override {
    // Run-to-completion: put the thread straight back on its core's queue.
    queues_[static_cast<size_t>(core)].push_front(thread);
  }

  void OnCoreIdle(int core) override { TryDispatch(core); }

 private:
  int CoreOf(const Thread* thread) const {
    return (thread->tid() - 1) % machine_.num_cores();
  }

  void TryDispatch(int core) {
    auto& queue = queues_[static_cast<size_t>(core)];
    if (queue.empty() || machine_.CurrentOn(core) != nullptr) {
      return;
    }
    Thread* next = queue.front();
    queue.pop_front();
    machine_.RunOn(next, core, kInfiniteSlice);
  }

  Machine& machine_;
  std::vector<std::deque<Thread*>> queues_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_SCHED_PINNED_SCHEDULER_H_
