#include "src/sched/machine.h"

#include <algorithm>

namespace syrup {

Machine::Machine(Simulator& sim, int num_cores) : sim_(sim) {
  SYRUP_CHECK_GT(num_cores, 0);
  cores_.resize(static_cast<size_t>(num_cores));
}

Thread* Machine::CreateThread(std::string name) {
  threads_.push_back(
      std::unique_ptr<Thread>(new Thread(next_tid_++, std::move(name))));
  return threads_.back().get();
}

void Machine::AddWork(Thread* thread, Duration work) {
  thread->remaining_work_ += work;
}

void Machine::Wake(Thread* thread) {
  if (thread->state_ != Thread::State::kBlocked) {
    return;  // already runnable/running; new work just extends its queue
  }
  SYRUP_CHECK_GT(thread->remaining_work_, 0u)
      << "waking thread " << thread->name() << " with no work";
  if (thread->core_ != -1) {
    // Block() was called inside the segment-done callback and new work
    // arrived before the epilogue released the core (e.g. late binding
    // hands a buffered packet to a just-idled worker). Revert the block;
    // the epilogue reschedules the thread through the normal slice path.
    thread->state_ = Thread::State::kRunning;
    return;
  }
  thread->state_ = Thread::State::kRunnable;
  SYRUP_CHECK_NE(scheduler_, nullptr);
  scheduler_->OnThreadRunnable(thread);
}

void Machine::Block(Thread* thread) {
  SYRUP_CHECK(thread->state_ == Thread::State::kRunning)
      << "Block() on non-running thread " << thread->name();
  // State flips immediately; core release and scheduler notification happen
  // in the segment-done epilogue (OnChunkEvent) that invoked the callback.
  thread->state_ = Thread::State::kBlocked;
}

void Machine::RunOn(Thread* thread, int core_id, Duration slice) {
  SYRUP_CHECK_NE(scheduler_, nullptr);
  SYRUP_CHECK(thread->state_ == Thread::State::kRunnable)
      << thread->name() << " not runnable";
  Core& core = cores_[static_cast<size_t>(core_id)];
  SYRUP_CHECK(core.current == nullptr)
      << "core " << core_id << " busy with " << core.current->name();
  SYRUP_CHECK_GT(thread->remaining_work_, 0u);
  SYRUP_CHECK_GT(slice, 0u);

  thread->state_ = Thread::State::kRunning;
  thread->core_ = core_id;
  core.current = thread;
  thread->run_start_ = sim_.Now();
  thread->planned_chunk_ = std::min(slice, thread->remaining_work_);
  thread->chunk_event_ = sim_.ScheduleAfter(
      thread->planned_chunk_, [this, thread, core_id]() {
        OnChunkEvent(thread, core_id);
      });
}

Duration Machine::AccountStint(Thread* thread) {
  const Duration consumed =
      std::min<Duration>(sim_.Now() - thread->run_start_,
                         thread->planned_chunk_);
  thread->chunk_event_.Cancel();
  thread->remaining_work_ -= std::min(consumed, thread->remaining_work_);
  thread->total_cpu_ += consumed;
  cores_[static_cast<size_t>(thread->core_)].busy_time += consumed;
  return consumed;
}

void Machine::OnChunkEvent(Thread* thread, int core_id) {
  Core& core = cores_[static_cast<size_t>(core_id)];
  SYRUP_CHECK_EQ(core.current, thread);

  const Duration consumed = thread->planned_chunk_;
  thread->remaining_work_ -= std::min(consumed, thread->remaining_work_);
  thread->total_cpu_ += consumed;
  core.busy_time += consumed;

  if (thread->remaining_work_ == 0) {
    // Segment finished: the application decides what happens next.
    if (thread->on_segment_done_) {
      thread->on_segment_done_();
    }
    if (thread->remaining_work_ == 0 &&
        thread->state_ == Thread::State::kRunning) {
      // Callback neither added work nor blocked: implicit block.
      thread->state_ = Thread::State::kBlocked;
    }
  }

  if (thread->state_ == Thread::State::kBlocked) {
    core.current = nullptr;
    thread->core_ = -1;
    scheduler_->OnThreadBlocked(thread, core_id, consumed);
    scheduler_->OnCoreIdle(core_id);
    return;
  }

  if (thread->remaining_work_ > 0) {
    // Slice expired with work left (or the callback queued more work).
    // Either way the scheduler re-decides; run-to-completion schedulers
    // simply put the same thread back with a fresh slice.
    thread->state_ = Thread::State::kRunnable;
    core.current = nullptr;
    thread->core_ = -1;
    scheduler_->OnSliceExpired(thread, core_id, consumed);
    scheduler_->OnCoreIdle(core_id);
    return;
  }

  SYRUP_CHECK(false) << "unreachable thread state in OnChunkEvent";
}

void Machine::Preempt(int core_id) {
  Core& core = cores_[static_cast<size_t>(core_id)];
  Thread* thread = core.current;
  if (thread == nullptr) {
    return;
  }
  AccountStint(thread);
  if (thread->remaining_work_ == 0) {
    // Preempted exactly on a segment boundary: treat as completion.
    if (thread->on_segment_done_) {
      thread->on_segment_done_();
    }
    if (thread->remaining_work_ == 0 &&
        thread->state_ == Thread::State::kRunning) {
      thread->state_ = Thread::State::kBlocked;
    }
    if (thread->state_ == Thread::State::kBlocked) {
      core.current = nullptr;
      thread->core_ = -1;
      scheduler_->OnThreadBlocked(thread, core_id, 0);
      scheduler_->OnCoreIdle(core_id);
      return;
    }
  }
  thread->state_ = Thread::State::kRunnable;
  core.current = nullptr;
  thread->core_ = -1;
  scheduler_->OnThreadRunnable(thread);
  scheduler_->OnCoreIdle(core_id);
}

double Machine::CoreUtilization(int core_id) const {
  const Time now = sim_.Now();
  if (now == 0) {
    return 0.0;
  }
  const Core& core = cores_[static_cast<size_t>(core_id)];
  Duration busy = core.busy_time;
  if (core.current != nullptr) {
    busy += sim_.Now() - core.current->run_start_;
  }
  return static_cast<double>(busy) / static_cast<double>(now);
}

}  // namespace syrup
