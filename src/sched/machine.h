// CPU & thread model for the thread-scheduling hook.
//
// A Machine owns N logical cores and a set of simulated threads. Threads
// execute *work segments* (one per application request): while a thread is
// running, its remaining segment work drains in real (simulated) time; when
// the segment completes, an application callback either queues more work or
// blocks the thread. A pluggable Scheduler decides thread→core placement
// and timeslices, and may preempt at will — the mechanism ghOSt-style
// userspace agents drive (paper §4.1).
#ifndef SYRUP_SRC_SCHED_MACHINE_H_
#define SYRUP_SRC_SCHED_MACHINE_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace syrup {

class Machine;
class Scheduler;

inline constexpr Duration kInfiniteSlice =
    std::numeric_limits<Duration>::max();

class Thread {
 public:
  enum class State { kBlocked, kRunnable, kRunning };

  int tid() const { return tid_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }
  Duration remaining_work() const { return remaining_work_; }
  Duration total_cpu() const { return total_cpu_; }
  // Core currently running this thread, or -1.
  int core() const { return core_; }

  // Invoked (by the Machine) when the current work segment finishes. The
  // callback must either add more work (Machine::AddWork) or block the
  // thread (Machine::Block); doing neither blocks it implicitly.
  void SetSegmentDoneCallback(std::function<void()> cb) {
    on_segment_done_ = std::move(cb);
  }

 private:
  friend class Machine;
  Thread(int tid, std::string name) : tid_(tid), name_(std::move(name)) {}

  int tid_;
  std::string name_;
  State state_ = State::kBlocked;
  Duration remaining_work_ = 0;
  Duration total_cpu_ = 0;
  int core_ = -1;
  Time run_start_ = 0;        // when the current on-CPU stint began
  Duration planned_chunk_ = 0;  // work scheduled for the current stint
  EventHandle chunk_event_;
  std::function<void()> on_segment_done_;
};

// Scheduler callback interface. Implementations call back into the Machine
// (RunOn / Preempt) to effect decisions; the Machine never places threads
// on its own.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // A blocked thread became runnable (wakeup), or a preempted thread was
  // put back. The scheduler may dispatch it immediately.
  virtual void OnThreadRunnable(Thread* thread) = 0;

  // The thread running on `core` blocked after consuming `ran` ns.
  // The Machine will call OnCoreIdle right after.
  virtual void OnThreadBlocked(Thread* thread, int core, Duration ran) = 0;

  // The timeslice of `thread` on `core` expired after `ran` ns; the thread
  // is Runnable again. The Machine will call OnCoreIdle right after.
  virtual void OnSliceExpired(Thread* thread, int core, Duration ran) = 0;

  // `core` had no thread when the notification was generated; the scheduler
  // should pick one (or leave it idle). NOTE: a reentrant callback (e.g. a
  // wakeup triggered from OnThreadRunnable during a preemption) may already
  // have filled the core — implementations must re-check CurrentOn(core).
  virtual void OnCoreIdle(int core) = 0;
};

class Machine {
 public:
  Machine(Simulator& sim, int num_cores);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // The scheduler must outlive the machine's last event.
  void SetScheduler(Scheduler* scheduler) { scheduler_ = scheduler; }

  Simulator& sim() { return sim_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  Thread* CreateThread(std::string name);
  const std::vector<std::unique_ptr<Thread>>& threads() const {
    return threads_;
  }

  // --- Application-side API ----------------------------------------------

  // Appends `work` to the thread's current segment. Legal on any state;
  // does not by itself make a blocked thread runnable.
  void AddWork(Thread* thread, Duration work);

  // Blocked -> Runnable transition; notifies the scheduler.
  void Wake(Thread* thread);

  // Marks the (currently running) thread blocked; frees its core. Called
  // from the segment-done callback when no further work is available.
  void Block(Thread* thread);

  // --- Scheduler-side API -------------------------------------------------

  // Places a runnable thread on an idle core for at most `slice` ns.
  void RunOn(Thread* thread, int core, Duration slice);

  // Forcibly removes the current thread from `core` (ghOSt-style
  // preemption). The thread becomes Runnable with its residual work and
  // OnThreadRunnable is invoked; then OnCoreIdle fires for the core.
  // No-op if the core is idle.
  void Preempt(int core);

  Thread* CurrentOn(int core) const {
    return cores_[static_cast<size_t>(core)].current;
  }

  // Busy fraction of `core` since simulation start.
  double CoreUtilization(int core) const;

 private:
  struct Core {
    Thread* current = nullptr;
    Duration busy_time = 0;
  };

  // Charges CPU consumed by the in-flight stint up to now and clears the
  // thread's chunk event. Returns consumed duration.
  Duration AccountStint(Thread* thread);
  void OnChunkEvent(Thread* thread, int core);

  Simulator& sim_;
  Scheduler* scheduler_ = nullptr;
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Thread>> threads_;
  int next_tid_ = 1;
  bool in_block_ = false;  // reentrancy guard for Block-from-callback
};

}  // namespace syrup

#endif  // SYRUP_SRC_SCHED_MACHINE_H_
