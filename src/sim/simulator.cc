#include "src/sim/simulator.h"

#include <memory>
#include <utility>

namespace syrup {

EventHandle Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  SYRUP_CHECK_GE(when, now_) << "event scheduled in the past";
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

uint64_t Simulator::RunUntil(Time horizon) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.when > horizon) {
      break;
    }
    // Moving out of the priority queue requires a const_cast because
    // std::priority_queue only exposes a const top(); the element is popped
    // immediately after so the heap invariant is never observed broken.
    Event event = std::move(const_cast<Event&>(top));
    queue_.pop();
    if (*event.cancelled) {
      continue;
    }
    now_ = event.when;
    event.fn();
    ++dispatched;
  }
  if (queue_.empty() && now_ < horizon) {
    now_ = horizon;
  }
  return dispatched;
}

uint64_t Simulator::RunToCompletion() {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!queue_.empty() && !stopped_) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*event.cancelled) {
      continue;
    }
    now_ = event.when;
    event.fn();
    ++dispatched;
  }
  return dispatched;
}

}  // namespace syrup
