#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <utility>

namespace syrup {
namespace {

constexpr uint64_t kNoTick = std::numeric_limits<uint64_t>::max();

// Process-wide default-engine override (benches / differential tests).
std::optional<SimEngine>& DefaultEngineOverride() {
  static std::optional<SimEngine> override_value;
  return override_value;
}

}  // namespace

SimEngine Simulator::DefaultEngine() {
  if (DefaultEngineOverride().has_value()) {
    return *DefaultEngineOverride();
  }
  const char* env = std::getenv("SYRUP_SIM_REFERENCE_ENGINE");
  if (env != nullptr &&
      (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0)) {
    return SimEngine::kReference;
  }
  return SimEngine::kTimingWheel;
}

void Simulator::SetDefaultEngine(SimEngine engine) {
  DefaultEngineOverride() = engine;
}

void Simulator::ResetDefaultEngine() { DefaultEngineOverride().reset(); }

Simulator::Simulator(SimEngine engine) : engine_(engine) {
  for (auto& level : buckets_) {
    for (uint32_t& head : level) {
      head = kNil;
    }
  }
}

Simulator::~Simulator() {
  // Pending events may hold non-trivial (or heap-spilled) callbacks.
  for (auto& slab : slabs_) {
    for (uint32_t i = 0; i < kSlabSize; ++i) {
      if (slab[i].engaged) {
        DestroyCallback(slab[i]);
      }
    }
  }
}

void Simulator::DestroyCallback(EventSlot& slot) {
  if (slot.destroy != nullptr) {
    slot.destroy(slot.storage);
  }
  slot.engaged = false;
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ == kNil) {
    ++stats_.slab_allocs;
    const uint32_t base = static_cast<uint32_t>(slabs_.size()) * kSlabSize;
    slabs_.push_back(std::make_unique<EventSlot[]>(kSlabSize));
    EventSlot* slab = slabs_.back().get();
    // Thread the fresh slab in reverse so low indices pop first.
    for (uint32_t i = kSlabSize; i-- > 0;) {
      slab[i].next = free_head_;
      free_head_ = base + i;
    }
  }
  const uint32_t idx = free_head_;
  free_head_ = SlotAt(idx).next;
  return idx;
}

void Simulator::ReleaseSlot(uint32_t idx) {
  EventSlot& slot = SlotAt(idx);
  DestroyCallback(slot);
  ++slot.gen;  // stale handles can no longer see this slot
  slot.cancelled = false;
  slot.next = free_head_;
  free_head_ = idx;
  --pending_;
}

void Simulator::PushReady(HeapEntry entry) {
  if (ready_.size() == ready_.capacity()) {
    ++stats_.container_growths;
  }
  ready_.push_back(entry);
  // During a bucket splice AdvanceTo re-heapifies once at the end; outside
  // one the heap invariant must hold after every push.
  if (!splicing_ready_) {
    std::push_heap(ready_.begin(), ready_.end(), HeapAfter{});
  }
}

void Simulator::PushOverflow(HeapEntry entry) {
  if (overflow_.size() == overflow_.capacity()) {
    ++stats_.container_growths;
  }
  overflow_.push_back(entry);
  std::push_heap(overflow_.begin(), overflow_.end(), HeapAfter{});
}

bool Simulator::FitsWheel(uint64_t tick) const {
  // The wheel addresses exactly the aligned span window containing
  // cur_tick_: outside it the top level's bucket for `tick` coincides with
  // the bucket covering cur_tick_, which must stay empty.
  return (tick >> (kLevelBits * kLevels)) ==
         (cur_tick_ >> (kLevelBits * kLevels));
}

void Simulator::InsertPending(uint32_t idx) {
  EventSlot& slot = SlotAt(idx);
  const uint64_t tick = slot.when >> kTickShift;
  // tick < cur_tick_ is reachable: a partial RunUntil advances the wheel to
  // the next occupied tick even when its events sit past the horizon, and a
  // later ScheduleAt may target the gap that was skipped. Such events (and
  // current-tick ones) go straight into the ready heap, which keeps the
  // global (when, seq) order because every wheel/overflow event has
  // tick > cur_tick_ and therefore a strictly later time.
  if (tick <= cur_tick_) {
    PushReady(HeapEntry{slot.when, slot.seq, idx});
    return;
  }
  if (!FitsWheel(tick)) {
    ++stats_.overflow_inserts;
    PushOverflow(HeapEntry{slot.when, slot.seq, idx});
    return;
  }
  // The highest bit where tick and cur_tick_ differ picks the level; that
  // guarantees the target bucket differs from the one covering cur_tick_.
  // (A distance-based level underestimates when the window delta wraps a
  // full revolution: cur_tick_=63, tick=4158 has distance 4095 => level 1,
  // but both ticks share level-1 bucket 0 and the event would be lost.)
  const int level = (std::bit_width(tick ^ cur_tick_) - 1) / kLevelBits;
  const uint32_t pos =
      static_cast<uint32_t>(tick >> (kLevelBits * level)) & (kSlotsPerLevel - 1);
  slot.next = buckets_[level][pos];
  buckets_[level][pos] = idx;
  occupied_[level] |= uint64_t{1} << pos;
}

uint64_t Simulator::NextOccupiedTick() const {
  uint64_t best = kNoTick;
  for (int level = 0; level < kLevels; ++level) {
    const int shift = kLevelBits * level;
    const uint32_t pos =
        static_cast<uint32_t>(cur_tick_ >> shift) & (kSlotsPerLevel - 1);
    // The bucket covering cur_tick_ is always empty (spliced/cascaded on
    // arrival), so every occupied bucket is 1..63 windows ahead.
    const uint64_t mask = occupied_[level] & ~(uint64_t{1} << pos);
    if (mask == 0) {
      continue;
    }
    const uint64_t rotated = std::rotr(mask, (pos + 1) & 63);
    const uint64_t windows_ahead =
        static_cast<uint64_t>(std::countr_zero(rotated)) + 1;
    const uint64_t candidate = ((cur_tick_ >> shift) + windows_ahead) << shift;
    if (candidate == cur_tick_ + 1) {
      // Nothing can open earlier than the adjacent tick, and AdvanceTo
      // cascades every level's bucket covering it, so ties at other levels
      // need no inspection. Dense workloads take this exit on almost every
      // refill, skipping the remaining levels and the overflow peek.
      return candidate;
    }
    best = std::min(best, candidate);
  }
  if (!overflow_.empty()) {
    best = std::min(best, overflow_.front().when >> kTickShift);
  }
  return best;
}

void Simulator::AdvanceTo(uint64_t tick) {
  cur_tick_ = tick;
  // ready_ is empty here (RefillReady only advances an exhausted window), so
  // appending raw and heapifying once beats per-element push_heap.
  splicing_ready_ = true;
  // Far-future events that fell inside the wheel's window re-file normally.
  // The drain condition mirrors InsertPending's overflow criterion exactly,
  // so a popped event can never bounce back into overflow (which would make
  // it the front again and loop forever). Overflow is a min-heap on when, so
  // once the front is out of the window every later entry is too.
  while (!overflow_.empty()) {
    const uint64_t otick = overflow_.front().when >> kTickShift;
    if (otick > cur_tick_ && !FitsWheel(otick)) {
      break;
    }
    const uint32_t idx = overflow_.front().slot;
    std::pop_heap(overflow_.begin(), overflow_.end(), HeapAfter{});
    overflow_.pop_back();
    InsertPending(idx);
  }
  // Cascade top-down: each redistributed event lands strictly below its
  // source level (or in the ready heap), never in a bucket covering `tick`.
  for (int level = kLevels - 1; level >= 1; --level) {
    const int shift = kLevelBits * level;
    const uint32_t pos =
        static_cast<uint32_t>(tick >> shift) & (kSlotsPerLevel - 1);
    if ((occupied_[level] & (uint64_t{1} << pos)) == 0) {
      continue;
    }
    occupied_[level] &= ~(uint64_t{1} << pos);
    uint32_t idx = buckets_[level][pos];
    buckets_[level][pos] = kNil;
    ++stats_.cascades;
    while (idx != kNil) {
      const uint32_t next = SlotAt(idx).next;
      InsertPending(idx);
      idx = next;
    }
  }
  const uint32_t pos0 = static_cast<uint32_t>(tick) & (kSlotsPerLevel - 1);
  if ((occupied_[0] & (uint64_t{1} << pos0)) != 0) {
    occupied_[0] &= ~(uint64_t{1} << pos0);
    uint32_t idx = buckets_[0][pos0];
    buckets_[0][pos0] = kNil;
    while (idx != kNil) {
      EventSlot& slot = SlotAt(idx);
      const uint32_t next = slot.next;
      PushReady(HeapEntry{slot.when, slot.seq, idx});
      idx = next;
    }
  }
  splicing_ready_ = false;
  if (ready_.size() > 1) {
    std::make_heap(ready_.begin(), ready_.end(), HeapAfter{});
  }
}

bool Simulator::RefillReady(Time horizon) {
  while (ready_.empty()) {
    const uint64_t next = NextOccupiedTick();
    if (next == kNoTick) {
      return false;
    }
    if ((next << kTickShift) > horizon) {
      return false;  // the next window opens after the horizon
    }
    AdvanceTo(next);
  }
  return true;
}

Time Simulator::NextEventTime() {
  if (engine_ == SimEngine::kReference) {
    return ref_queue_.empty() ? kNoEventTime : ref_queue_.top().when;
  }
  // RefillReady with an unbounded horizon advances the wheel far enough to
  // surface the globally-next event in the ready heap, making the bound
  // exact rather than a bucket-window start.
  if (ready_.empty() && !RefillReady(kNoEventTime)) {
    return kNoEventTime;
  }
  return ready_.front().when;
}

uint64_t Simulator::RunImpl(Time horizon, bool advance_clock_on_idle) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!stopped_) {
    if (ready_.empty() && !RefillReady(horizon)) {
      break;
    }
    const HeapEntry top = ready_.front();
    if (top.when > horizon) {
      break;
    }
    std::pop_heap(ready_.begin(), ready_.end(), HeapAfter{});
    ready_.pop_back();
    EventSlot& slot = SlotAt(top.slot);
    if (slot.cancelled) {
      ReleaseSlot(top.slot);
      continue;
    }
    now_ = top.when;
    // Invalidate handles before running: a callback cancelling itself (or a
    // stale handle to this slot) must be a no-op, not a slot corruption.
    ++slot.gen;
    slot.invoke(slot.storage);
    ReleaseSlot(top.slot);
    ++dispatched;
  }
  stats_.dispatched += dispatched;
  if (advance_clock_on_idle && pending_ == 0 && now_ < horizon) {
    now_ = horizon;
    cur_tick_ = horizon >> kTickShift;  // re-anchor the (empty) wheel
  }
  return dispatched;
}

uint64_t Simulator::RunUntil(Time horizon) {
  return engine_ == SimEngine::kReference
             ? RunReference(horizon, /*advance_clock_on_idle=*/true)
             : RunImpl(horizon, /*advance_clock_on_idle=*/true);
}

uint64_t Simulator::RunToCompletion() {
  const Time horizon = std::numeric_limits<Time>::max();
  return engine_ == SimEngine::kReference
             ? RunReference(horizon, /*advance_clock_on_idle=*/false)
             : RunImpl(horizon, /*advance_clock_on_idle=*/false);
}

bool Simulator::PooledValid(uint32_t idx, uint32_t gen) const {
  if (idx >= slabs_.size() * kSlabSize) {
    return false;
  }
  const EventSlot& slot = SlotAt(idx);
  return slot.gen == gen && slot.engaged && !slot.cancelled;
}

void Simulator::CancelPooled(uint32_t idx, uint32_t gen) {
  if (idx >= slabs_.size() * kSlabSize) {
    return;
  }
  EventSlot& slot = SlotAt(idx);
  if (slot.gen != gen || !slot.engaged || slot.cancelled) {
    return;  // stale handle: the event fired or the slot was recycled
  }
  slot.cancelled = true;
  ++stats_.cancelled;
}

EventHandle Simulator::ScheduleReference(Time when, std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  ref_queue_.push(RefEvent{when, next_seq_++, std::move(fn), cancelled});
  ++stats_.scheduled;
  return EventHandle(std::move(cancelled));
}

uint64_t Simulator::RunReference(Time horizon, bool advance_clock_on_idle) {
  stopped_ = false;
  uint64_t dispatched = 0;
  while (!ref_queue_.empty() && !stopped_) {
    const RefEvent& top = ref_queue_.top();
    if (top.when > horizon) {
      break;
    }
    // Moving out of the priority queue requires a const_cast because
    // std::priority_queue only exposes a const top(); the element is popped
    // immediately after so the heap invariant is never observed broken.
    RefEvent event = std::move(const_cast<RefEvent&>(top));
    ref_queue_.pop();
    if (*event.cancelled) {
      continue;
    }
    now_ = event.when;
    // Dispatch invalidates handles, matching the pooled engine's generation
    // bump before the callback runs (valid() -> false, Cancel() -> no-op,
    // including from inside the callback itself).
    *event.cancelled = true;
    event.fn();
    ++dispatched;
  }
  stats_.dispatched += dispatched;
  if (advance_clock_on_idle && ref_queue_.empty() && now_ < horizon) {
    now_ = horizon;
  }
  return dispatched;
}

}  // namespace syrup
