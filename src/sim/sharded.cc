#include "src/sim/sharded.h"

#include <algorithm>
#include <bit>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace syrup {

ShardChannel::ShardChannel(size_t capacity)
    : ring_(std::bit_ceil(std::max<size_t>(capacity, 2))),
      mask_(ring_.size() - 1) {}

bool ShardChannel::TryPush(ShardMessage&& msg) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= ring_.size()) {
    return false;  // full — msg is left intact for the caller to retry
  }
  ring_[tail & mask_] = std::move(msg);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool ShardChannel::TryPop(ShardMessage& out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) {
    return false;
  }
  out = std::move(ring_[head & mask_]);
  ring_[head & mask_].fn = nullptr;  // release the closure's captures now
  head_.store(head + 1, std::memory_order_release);
  return true;
}

ShardedSim::ShardedSim(ShardedSimConfig config)
    : config_(config), barrier_(config.shards) {
  SYRUP_CHECK_GE(config_.shards, 1);
  SYRUP_CHECK_GE(config_.lookahead, 1u) << "lookahead must be positive";
  const SimEngine engine = Simulator::DefaultEngine();
  shards_.reserve(static_cast<size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(engine));
  }
  channels_.resize(static_cast<size_t>(config_.shards) *
                   static_cast<size_t>(config_.shards));
  for (int src = 0; src < config_.shards; ++src) {
    for (int dst = 0; dst < config_.shards; ++dst) {
      if (src != dst) {
        channels_[static_cast<size_t>(src) *
                      static_cast<size_t>(config_.shards) +
                  static_cast<size_t>(dst)] =
            std::make_unique<ShardChannel>(config_.channel_capacity);
      }
    }
  }
}

ShardedSim::~ShardedSim() = default;

void ShardedSim::DrainInbound(int i) {
  ShardState& st = *shards_[static_cast<size_t>(i)];
  ShardMessage msg;
  for (int src = 0; src < config_.shards; ++src) {
    if (src == i) {
      continue;
    }
    ShardChannel& ch = channel(src, i);
    while (ch.TryPop(msg)) {
      st.staging.push_back(std::move(msg));
    }
  }
}

void ShardedSim::ScheduleStaged(int i) {
  ShardState& st = *shards_[static_cast<size_t>(i)];
  if (st.staging.empty()) {
    return;
  }
  // The physical drain order depends on thread timing; the sort erases it.
  std::sort(st.staging.begin(), st.staging.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (ShardMessage& msg : st.staging) {
    st.sim.ScheduleAt(msg.when, std::move(msg.fn));
  }
  st.staging.clear();
}

void ShardedSim::WorkerLoop(int i, Time horizon, bool advance_clock_on_idle) {
  ShardState& st = *shards_[static_cast<size_t>(i)];
  for (;;) {
    // Barrier A: drain while waiting so senders blocked on a full channel
    // always find their consumer making progress.
    barrier_.ArriveAndWait([&] { DrainInbound(i); });
    // All sends from the previous window happened before their sender's
    // barrier-A arrival, which happens before our return from the barrier:
    // this drain is authoritative.
    DrainInbound(i);
    Time ne = st.sim.NextEventTime();
    for (const ShardMessage& msg : st.staging) {
      ne = std::min(ne, msg.when);
    }
    st.announced.store(ne, std::memory_order_release);
    barrier_.ArriveAndWait([] {});
    // Every thread computes the same T from the same announcements, so all
    // shards take the same continue/exit decision each round.
    Time t = Simulator::kNoEventTime;
    for (const auto& other : shards_) {
      t = std::min(t, other->announced.load(std::memory_order_acquire));
    }
    if (t == Simulator::kNoEventTime || t > horizon) {
      break;
    }
    // Window [t, w]: every cross-shard arrival is >= sender_now + lookahead
    // > w, so nothing sent this round can target it.
    const Time w =
        horizon - t >= config_.lookahead ? t + config_.lookahead - 1 : horizon;
    ScheduleStaged(i);
    st.dispatched += st.sim.RunUntil(w);
    st.rounds += 1;
  }
  // Staged arrivals past the horizon belong to a later Run* call: file them
  // into the engine now (they are all > horizon, so nothing runs).
  ScheduleStaged(i);
  if (advance_clock_on_idle) {
    st.sim.RunUntil(horizon);  // advance an idle shard's clock to the horizon
  }
}

uint64_t ShardedSim::Run(Time horizon, bool advance_clock_on_idle) {
  uint64_t before = 0;
  for (const auto& st : shards_) {
    before += st->dispatched;
  }
  if (config_.shards == 1) {
    // Inline single-engine execution on the calling thread: bit-identical
    // to driving the wrapped Simulator directly, and usable from contexts
    // that must not spawn threads.
    ShardState& st = *shards_[0];
    st.dispatched += advance_clock_on_idle ? st.sim.RunUntil(horizon)
                                           : st.sim.RunToCompletion();
    st.rounds += 1;
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(config_.shards));
    for (int i = 0; i < config_.shards; ++i) {
      threads.emplace_back(
          [this, i, horizon, advance_clock_on_idle] {
#if defined(__linux__)
            if (config_.pinning) {
              const unsigned ncpu =
                  std::max(1u, std::thread::hardware_concurrency());
              cpu_set_t set;
              CPU_ZERO(&set);
              CPU_SET(static_cast<unsigned>(i) % ncpu, &set);
              pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
            }
#endif
            WorkerLoop(i, horizon, advance_clock_on_idle);
          });
    }
    for (std::thread& th : threads) {
      th.join();  // join orders all shard writes before our reads below
    }
  }
  rounds_ = shards_[0]->rounds;
  uint64_t after = 0;
  for (const auto& st : shards_) {
    after += st->dispatched;
  }
  return after - before;
}

uint64_t ShardedSim::RunUntil(Time horizon) {
  return Run(horizon, /*advance_clock_on_idle=*/true);
}

uint64_t ShardedSim::RunToCompletion() {
  return Run(Simulator::kNoEventTime, /*advance_clock_on_idle=*/false);
}

ShardedSim::Stats ShardedSim::stats() const {
  Stats s;
  s.rounds = rounds_;
  for (const auto& st : shards_) {
    s.messages += st->messages_posted;
    s.dispatched += st->dispatched;
  }
  return s;
}

}  // namespace syrup
