// Sharded parallel simulation: N independent timing-wheel engines, one per
// thread, synchronized with conservative time windows.
//
// Ownership model: every simulated component (stack, syrupd, machine, app)
// belongs to exactly one shard and only ever touches that shard's Simulator.
// Cross-shard interactions — packet handoff through the ToR switch or a
// remote host stack, map traffic, ghOSt messages — flow through timestamped
// bounded SPSC channels (one per ordered shard pair) via Post(), which
// requires the delivery time to be at least `lookahead` past the sender's
// clock. The lookahead models the link/PCIe latency that any cross-shard
// interaction already pays, so the constraint costs no fidelity.
//
// Synchronization protocol (conservative / YAWNS-style windows). Each round:
//
//   1. Barrier A. While waiting, a shard keeps draining its inbound
//      channels into a staging buffer so a neighbor blocked on a full
//      channel always makes progress (no deadlock).
//   2. Authoritative drain: after barrier A every send from the previous
//      window is complete and visible, so the staging buffer now holds
//      exactly the messages sent last window.
//   3. Each shard announces ne_i = min(next local event, staged arrivals).
//   4. Barrier B. Every thread then computes the same T = min_i(ne_i) and
//      runs its engine through the window [T, min(horizon, T+lookahead-1)].
//      Staged messages are first sorted by (when, src_shard, seq) and
//      scheduled, so the dispatch order is independent of thread timing.
//
// Every arrival is >= send_time + lookahead > window end, so no message can
// target the window currently executing: shards never see a message "from
// the past". Within a round at least one shard dispatches (or pops a
// cancelled) event at T, so the protocol always makes progress.
//
// Determinism: for a fixed shard count and seed, runs are bit-identical
// across repeats regardless of thread scheduling — channel drain order is
// erased by the (when, src_shard, seq) sort, and per-channel seqs are
// assigned in each sender's (deterministic) program order. At shards=1 the
// engine degenerates to the wrapped Simulator run inline on the calling
// thread, so results are bit-identical to the single-engine path by
// construction.
#ifndef SYRUP_SRC_SIM_SHARDED_H_
#define SYRUP_SRC_SIM_SHARDED_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace syrup {

struct ShardedSimConfig {
  // Number of shards (engines/threads). 1 = inline single-engine execution.
  int shards = 1;
  // Minimum sender-clock-to-delivery latency for Post(); also the window
  // width. Model it on the smallest cross-shard link/PCIe latency.
  Duration lookahead = 2 * kMicrosecond;
  // Pin worker thread i to CPU (i mod hardware_concurrency).
  bool pinning = false;
  // Per-channel message capacity (rounded up to a power of two).
  size_t channel_capacity = 4096;
};

// Pause-instruction hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// A timestamped cross-shard message: run `fn` on the destination shard at
// simulated time `when`. `seq` is the per-channel sequence number assigned
// by the producer; (when, src, seq) totally orders any staging buffer.
struct ShardMessage {
  Time when = 0;
  uint32_t src = 0;
  uint64_t seq = 0;
  std::function<void()> fn;
};

// Bounded single-producer single-consumer ring. The producer is the source
// shard's thread, the consumer the destination shard's thread; head_/tail_
// are the only shared state and are touched with acquire/release pairs.
class ShardChannel {
 public:
  explicit ShardChannel(size_t capacity);

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  // Producer side. False when the ring is full (caller must drain its own
  // inbound channels and retry, never just spin — see ShardedSim::Post).
  bool TryPush(ShardMessage&& msg);

  // Consumer side. False when the ring is empty.
  bool TryPop(ShardMessage& out);

  uint64_t next_seq() { return seq_++; }

 private:
  std::vector<ShardMessage> ring_;
  size_t mask_;
  uint64_t seq_ = 0;  // producer-side per-channel sequence
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer position
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer position
};

// Sense-reversing spin barrier. The waiter loop invokes `idle` so a shard
// parked at the barrier keeps servicing its inbound channels.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  template <typename Idle>
  void ArriveAndWait(Idle&& idle) {
    const uint64_t gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
      count_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return;
    }
    uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      idle();
      CpuRelax();
      if ((++spins & 0xfffu) == 0) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  alignas(64) std::atomic<uint64_t> generation_{0};
};

class ShardedSim {
 public:
  explicit ShardedSim(ShardedSimConfig config);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int shards() const { return config_.shards; }
  Duration lookahead() const { return config_.lookahead; }
  Simulator& shard(int i) { return shards_[static_cast<size_t>(i)]->sim; }

  // Schedules `fn` on shard `dst` at absolute time `when`, from shard `src`.
  // Must be called on src's worker thread (i.e. from inside an event running
  // on shard src) or before/between Run* calls from the driving thread.
  // `when` must be >= shard(src).Now() + lookahead; deliveries to the owning
  // shard (src == dst) are exempt and schedule directly.
  template <typename F>
  void Post(int src, int dst, Time when, F&& fn) {
    SYRUP_CHECK_GE(src, 0);
    SYRUP_CHECK_LT(src, config_.shards);
    SYRUP_CHECK_GE(dst, 0);
    SYRUP_CHECK_LT(dst, config_.shards);
    if (src == dst) {
      shard(src).ScheduleAt(when, std::forward<F>(fn));
      return;
    }
    SYRUP_CHECK_GE(when, shard(src).Now() + config_.lookahead)
        << "cross-shard delivery inside the lookahead window";
    ShardChannel& ch = channel(src, dst);
    ShardMessage msg{when, static_cast<uint32_t>(src), ch.next_seq(),
                     std::function<void()>(std::forward<F>(fn))};
    // A full channel means dst is behind on draining; keep our own inbound
    // channels moving while we wait so two mutually-posting shards can
    // never deadlock on a pair of full rings.
    uint32_t spins = 0;
    while (!ch.TryPush(std::move(msg))) {
      DrainInbound(src);
      CpuRelax();
      if ((++spins & 0xfffu) == 0) {
        std::this_thread::yield();
      }
    }
    shards_[static_cast<size_t>(src)]->messages_posted += 1;
  }

  // Runs all shards (in parallel for shards > 1) until each has no event at
  // or before `horizon`; idle shards' clocks advance to `horizon` exactly
  // like Simulator::RunUntil. Returns total events dispatched this call.
  uint64_t RunUntil(Time horizon);

  // Runs until every shard's queue and every channel is empty. Clocks are
  // not advanced past the last dispatched event, like
  // Simulator::RunToCompletion.
  uint64_t RunToCompletion();

  struct Stats {
    uint64_t rounds = 0;            // synchronization windows executed
    uint64_t messages = 0;          // cross-shard messages posted
    uint64_t dispatched = 0;        // events dispatched across all shards
  };
  Stats stats() const;

 private:
  struct ShardState {
    explicit ShardState(SimEngine engine) : sim(engine) {}
    Simulator sim;
    std::vector<ShardMessage> staging;  // drained, not yet scheduled
    alignas(64) std::atomic<Time> announced{0};
    uint64_t messages_posted = 0;
    uint64_t rounds = 0;
    uint64_t dispatched = 0;
  };

  ShardChannel& channel(int src, int dst) {
    return *channels_[static_cast<size_t>(src) *
                          static_cast<size_t>(config_.shards) +
                      static_cast<size_t>(dst)];
  }

  // Moves every currently-visible inbound message of shard i into its
  // staging buffer. Only ever called from shard i's thread.
  void DrainInbound(int i);

  // Sorts shard i's staging buffer by (when, src, seq) and schedules it.
  void ScheduleStaged(int i);

  // One shard's worker loop for a single Run* call.
  void WorkerLoop(int i, Time horizon, bool advance_clock_on_idle);

  uint64_t Run(Time horizon, bool advance_clock_on_idle);

  ShardedSimConfig config_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;  // [src * N + dst]
  SpinBarrier barrier_;
  uint64_t rounds_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_SIM_SHARDED_H_
