// Deterministic discrete-event simulation engine.
//
// All host-stack models (NIC, cores, sockets, schedulers) run on top of this
// engine: components schedule callbacks at absolute simulated times and the
// engine dispatches them in (time, insertion-sequence) order, so identical
// seeds replay identical executions.
#ifndef SYRUP_SRC_SIM_SIMULATOR_H_
#define SYRUP_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time.h"

namespace syrup {

// Handle used to cancel a pending event. Cancellation is O(1): the event is
// marked dead and skipped at dispatch time.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return cancelled_ != nullptr; }
  void Cancel() {
    if (cancelled_ != nullptr) {
      *cancelled_ = true;
      cancelled_ = nullptr;
    }
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  EventHandle ScheduleAt(Time when, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventHandle ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue empties or simulated time would pass
  // `horizon`. Returns the number of events dispatched.
  uint64_t RunUntil(Time horizon);

  // Runs until the queue is empty.
  uint64_t RunToCompletion();

  // Stops the current Run* call after the in-flight event returns.
  void Stop() { stopped_ = true; }

  // Includes cancelled-but-not-yet-popped events.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;

    // Min-heap by (when, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event> queue_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_SIM_SIMULATOR_H_
