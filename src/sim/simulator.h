// Deterministic discrete-event simulation engine.
//
// All host-stack models (NIC, cores, sockets, schedulers) run on top of this
// engine: components schedule callbacks at absolute simulated times and the
// engine dispatches them in (time, insertion-sequence) order, so identical
// seeds replay identical executions.
//
// Two interchangeable engines implement that contract:
//
//  * kTimingWheel (default): zero-allocation steady state. Events live in a
//    slab-allocated pool with intrusive freelist/bucket links, callbacks are
//    stored inline (up to kInlineCallbackBytes of captures; larger closures
//    fall back to the heap and are counted), and pending events sit in a
//    4-level x 64-slot hierarchical timing wheel (256 ns level-0 ticks; the
//    wheel addresses the aligned ~4.3 s window containing the current tick,
//    with a min-heap overflow beyond it). Events at or before the current
//    wheel position sit in a tiny (time, seq) binary heap, so the dispatch
//    order is bit-identical to a single global heap while schedule/dispatch
//    cost stays O(1) amortized.
//
//  * kReference: the original std::function + shared_ptr<bool> +
//    std::priority_queue engine, kept verbatim as a differential oracle.
//    Select it per-simulator via the constructor, process-wide via
//    Simulator::SetDefaultEngine(), or for a whole run with the
//    SYRUP_SIM_REFERENCE_ENGINE=1 environment variable.
//
// Determinism is contractual: both engines dispatch the exact same events in
// the exact same order for the same schedule/cancel sequence (asserted by
// differential tests over the paper's fig2/fig9 experiment configs).
#ifndef SYRUP_SRC_SIM_SIMULATOR_H_
#define SYRUP_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time.h"

namespace syrup {

class Simulator;

enum class SimEngine {
  kTimingWheel,  // pooled events + hierarchical timing wheel (default)
  kReference,    // original heap engine, kept as a differential oracle
};

// Handle used to cancel a pending event. Cancellation is O(1): the event is
// marked dead and skipped at dispatch time. Once the event fires (or its
// pool slot is recycled), stale handles become inert — Cancel() on them is a
// no-op and valid() returns false — and both engines agree on this: the
// pooled engine bumps the slot generation and the reference engine sets the
// shared cancellation cell at dispatch. Handles must not outlive their
// Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  inline bool valid() const;
  inline void Cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t slot, uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  // Pooled-engine identity: (slot, generation) into sim_'s event pool.
  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t gen_ = 0;
  // Reference-engine identity: shared cancellation cell (null in wheel mode).
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  // Counters for the engine's own behaviour. `internal_allocs()` is the
  // allocation-freedom hook the tests assert on: its delta over a
  // steady-state schedule/dispatch window must be zero.
  struct EngineStats {
    uint64_t scheduled = 0;
    uint64_t dispatched = 0;
    uint64_t cancelled = 0;         // Cancel() calls that killed a live event
    uint64_t slab_allocs = 0;       // event-pool slab refills
    uint64_t large_callbacks = 0;   // closures too big for inline storage
    uint64_t container_growths = 0; // ready/overflow vector regrowth
    uint64_t overflow_inserts = 0;  // events beyond the wheel span
    uint64_t cascades = 0;          // non-empty higher-level bucket refills

    uint64_t internal_allocs() const {
      return slab_allocs + large_callbacks + container_growths;
    }
  };

  Simulator() : Simulator(DefaultEngine()) {}
  explicit Simulator(SimEngine engine);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Engine used when none is given: SetDefaultEngine() override if set,
  // else kReference when SYRUP_SIM_REFERENCE_ENGINE is 1/true in the
  // environment, else kTimingWheel.
  static SimEngine DefaultEngine();
  // Process-wide override for benches/differential tests.
  static void SetDefaultEngine(SimEngine engine);
  static void ResetDefaultEngine();

  SimEngine engine() const { return engine_; }
  const EngineStats& engine_stats() const { return stats_; }

  Time Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  template <typename F>
  EventHandle ScheduleAt(Time when, F&& fn) {
    SYRUP_CHECK_GE(when, now_) << "event scheduled in the past";
    if (engine_ == SimEngine::kReference) {
      return ScheduleReference(when, std::function<void()>(std::forward<F>(fn)));
    }
    const uint32_t idx = AllocSlot();
    EventSlot& slot = SlotAt(idx);
    slot.when = when;
    slot.seq = next_seq_++;
    slot.cancelled = false;
    slot.engaged = true;
    EmplaceCallback(slot, std::forward<F>(fn));
    InsertPending(idx);
    ++pending_;
    ++stats_.scheduled;
    return EventHandle(this, idx, slot.gen);
  }

  // Schedules `fn` to run `delay` from now.
  template <typename F>
  EventHandle ScheduleAfter(Duration delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Timestamp returned by NextEventTime() when no event is pending.
  static constexpr Time kNoEventTime = ~Time{0};

  // Exact timestamp of the next pending event (live or cancelled — a
  // cancelled event is still a valid conservative lower bound, and popping
  // it makes progress), or kNoEventTime when the queue is empty. The pooled
  // engine may advance the wheel position to find it; that performs the
  // same cascades a Run* call would and so never perturbs dispatch order.
  // Used by the sharded engine to announce per-shard horizons.
  Time NextEventTime();

  // Runs events until the queue empties or simulated time would pass
  // `horizon`. Returns the number of events dispatched.
  uint64_t RunUntil(Time horizon);

  // Runs until the queue is empty.
  uint64_t RunToCompletion();

  // Stops the current Run* call after the in-flight event returns.
  void Stop() { stopped_ = true; }

  // Includes cancelled-but-not-yet-popped events.
  size_t pending_events() const {
    return engine_ == SimEngine::kReference ? ref_queue_.size() : pending_;
  }

 private:
  friend class EventHandle;

  // --- pooled timing-wheel engine -----------------------------------------

  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint32_t kSlabSize = 256;  // slots per pool slab
  static constexpr size_t kInlineCallbackBytes = 48;
  static constexpr int kTickShift = 8;   // 256 ns per level-0 tick
  static constexpr int kLevelBits = 6;   // 64 slots per level
  static constexpr int kLevels = 4;      // span: 2^(8+6*4) ns ~= 4.3 s
  static constexpr uint32_t kSlotsPerLevel = 1u << kLevelBits;

  // One pooled event. `next` threads the slot through the freelist or a
  // wheel bucket; `gen` increments on every recycle so stale EventHandles
  // can never touch the slot's next tenant.
  struct EventSlot {
    Time when = 0;
    uint64_t seq = 0;
    uint32_t next = kNil;
    uint32_t gen = 0;
    bool engaged = false;    // callback constructed in `storage`
    bool cancelled = false;
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;  // null for trivially-destructible
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct HeapEntry {
    Time when;
    uint64_t seq;
    uint32_t slot;
  };
  // std::push_heap builds a max-heap w.r.t. the comparator; "greater by
  // (when, seq)" therefore yields a min-heap with the next event at front().
  struct HeapAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  EventSlot& SlotAt(uint32_t idx) {
    return slabs_[idx / kSlabSize][idx % kSlabSize];
  }
  const EventSlot& SlotAt(uint32_t idx) const {
    return slabs_[idx / kSlabSize][idx % kSlabSize];
  }

  template <typename F>
  void EmplaceCallback(EventSlot& slot, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(fn));
      slot.invoke = [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        slot.destroy = nullptr;
      } else {
        slot.destroy = [](void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); };
      }
    } else {
      // Oversized capture: pay one heap allocation and count it, so hot
      // paths that regress past the inline budget show up in stats/benches.
      Fn* heap = new Fn(std::forward<F>(fn));
      ++stats_.large_callbacks;
      std::memcpy(slot.storage, &heap, sizeof(heap));
      slot.invoke = [](void* p) {
        Fn* f;
        std::memcpy(&f, p, sizeof(f));
        (*f)();
      };
      slot.destroy = [](void* p) {
        Fn* f;
        std::memcpy(&f, p, sizeof(f));
        delete f;
      };
    }
  }

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t idx);
  void DestroyCallback(EventSlot& slot);

  // True when `tick` lies in the aligned span window the wheel currently
  // addresses; events outside it wait in the overflow heap.
  bool FitsWheel(uint64_t tick) const;
  // Files a live slot into the ready heap (tick <= cur_tick_), the wheel, or
  // the overflow heap.
  void InsertPending(uint32_t idx);
  void PushReady(HeapEntry entry);
  void PushOverflow(HeapEntry entry);

  // Smallest tick >= cur_tick_ that may hold the next event (exact for
  // level 0, bucket window start for higher levels and overflow), or
  // kNoTick when the engine is empty apart from the ready heap.
  uint64_t NextOccupiedTick() const;
  // Moves the wheel position to `tick`: drains newly-in-span overflow
  // events, cascades the higher-level buckets covering `tick`, and splices
  // the level-0 bucket into the ready heap.
  void AdvanceTo(uint64_t tick);
  // Ensures ready_ holds the globally-next event; false when nothing is
  // pending at or before `horizon`.
  bool RefillReady(Time horizon);

  bool PooledValid(uint32_t idx, uint32_t gen) const;
  void CancelPooled(uint32_t idx, uint32_t gen);

  uint64_t RunImpl(Time horizon, bool advance_clock_on_idle);

  // --- reference engine (the original implementation) ---------------------

  struct RefEvent {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;

    // Min-heap by (when, seq): std::priority_queue is a max-heap, so invert.
    bool operator<(const RefEvent& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  EventHandle ScheduleReference(Time when, std::function<void()> fn);
  uint64_t RunReference(Time horizon, bool advance_clock_on_idle);

  // --- state ---------------------------------------------------------------

  SimEngine engine_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  EngineStats stats_;

  // Pooled engine.
  std::vector<std::unique_ptr<EventSlot[]>> slabs_;
  uint32_t free_head_ = kNil;
  size_t pending_ = 0;
  uint64_t cur_tick_ = 0;  // wheel position: the tick the ready heap covers
  bool splicing_ready_ = false;  // AdvanceTo defers heapification to its end
  std::vector<HeapEntry> ready_;     // events with tick <= cur_tick_
  std::vector<HeapEntry> overflow_;  // min-heap of events beyond the window
  uint64_t occupied_[kLevels] = {};  // per-level bucket occupancy bitmap
  uint32_t buckets_[kLevels][kSlotsPerLevel];  // slot-index list heads

  // Reference engine.
  std::priority_queue<RefEvent> ref_queue_;
};

inline bool EventHandle::valid() const {
  if (cancelled_ != nullptr) {
    // Reference engine: dispatch sets the shared cell, so fired events read
    // as invalid here exactly like recycled pooled slots do.
    return !*cancelled_;
  }
  return sim_ != nullptr && sim_->PooledValid(slot_, gen_);
}

inline void EventHandle::Cancel() {
  if (cancelled_ != nullptr) {
    *cancelled_ = true;
    cancelled_ = nullptr;
    return;
  }
  if (sim_ != nullptr) {
    sim_->CancelPooled(slot_, gen_);
    sim_ = nullptr;
  }
}

}  // namespace syrup

#endif  // SYRUP_SRC_SIM_SIMULATOR_H_
