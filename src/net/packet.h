// Packet model.
//
// Each simulated request is one UDP datagram. A materialized wire image is
// carried with every packet so policy programs (bytecode or native) parse
// real bytes exactly as the paper's eBPF policies do:
//
//   offset  size  field
//   0       2     udp src port   (big-endian)
//   2       2     udp dst port   (big-endian)
//   4       2     udp length     (big-endian)
//   6       2     udp checksum
//   8       8     app: request type   (the paper's SITA policy reads this:
//                                      "First 8 bytes are UDP header")
//   16      4     app: user id        (token-based policy, §3.4)
//   20      4     app: key hash       (MICA home-core steering, §5.4)
//   24      8     app: request id
//   32      8     app: client send timestamp (ns)
#ifndef SYRUP_SRC_NET_PACKET_H_
#define SYRUP_SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "src/common/hash.h"
#include "src/common/time.h"

namespace syrup {

enum class ReqType : uint64_t {
  kGet = 1,
  kScan = 2,
  kPut = 3,
};

inline constexpr uint8_t kProtoUdp = 17;
inline constexpr uint8_t kProtoTcp = 6;

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = kProtoUdp;

  bool operator==(const FiveTuple&) const = default;
  auto operator<=>(const FiveTuple&) const = default;

  // The kernel-RSS-style steering hash (jhash analogue). Deliberately uses
  // the same byte mixing for any tuple so few distinct tuples map to few
  // distinct hash values — the imbalance that motivates Fig. 2.
  uint64_t Hash() const {
    uint64_t h = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
    h = Mix64(h);
    h ^= (static_cast<uint64_t>(src_port) << 24) ^
         (static_cast<uint64_t>(dst_port) << 8) ^ protocol;
    return Mix64(h);
  }
};

inline constexpr size_t kUdpHeaderSize = 8;
inline constexpr size_t kWireSize = 40;

// One in-flight datagram. Copies are cheap (fixed-size byte array).
struct Packet {
  FiveTuple tuple;
  Time nic_arrival = 0;  // set by the NIC on Rx
  std::array<uint8_t, kWireSize> wire{};

  // --- typed accessors over the wire image ------------------------------

  template <typename T>
  void StoreField(size_t offset, T value) {
    std::memcpy(wire.data() + offset, &value, sizeof(T));
  }
  template <typename T>
  T LoadField(size_t offset) const {
    T value;
    std::memcpy(&value, wire.data() + offset, sizeof(T));
    return value;
  }

  void SetHeader(ReqType type, uint32_t user_id, uint32_t key_hash,
                 uint64_t req_id, Time send_time) {
    // UDP ports in network byte order, as on a real wire.
    StoreField<uint16_t>(0, __builtin_bswap16(tuple.src_port));
    StoreField<uint16_t>(2, __builtin_bswap16(tuple.dst_port));
    StoreField<uint16_t>(4, __builtin_bswap16(kWireSize));
    StoreField<uint16_t>(6, 0);
    StoreField<uint64_t>(8, static_cast<uint64_t>(type));
    StoreField<uint32_t>(16, user_id);
    StoreField<uint32_t>(20, key_hash);
    StoreField<uint64_t>(24, req_id);
    StoreField<uint64_t>(32, send_time);
  }

  ReqType req_type() const {
    return static_cast<ReqType>(LoadField<uint64_t>(8));
  }
  uint32_t user_id() const { return LoadField<uint32_t>(16); }
  uint32_t key_hash() const { return LoadField<uint32_t>(20); }
  uint64_t req_id() const { return LoadField<uint64_t>(24); }
  Time send_time() const { return LoadField<uint64_t>(32); }
};

// Bounds-delimited read-only view handed to policies: the paper's
// (pkt_start, pkt_end) argument pair.
struct PacketView {
  const uint8_t* start = nullptr;
  const uint8_t* end = nullptr;

  static PacketView Of(const Packet& pkt) {
    return PacketView{pkt.wire.data(), pkt.wire.data() + pkt.wire.size()};
  }

  size_t size() const { return static_cast<size_t>(end - start); }

  // Destination port in host byte order (used by syrupd's dispatcher).
  uint16_t DstPort() const {
    if (size() < 4) {
      return 0;
    }
    uint16_t be;
    std::memcpy(&be, start + 2, sizeof(be));
    return __builtin_bswap16(be);
  }
};

}  // namespace syrup

#endif  // SYRUP_SRC_NET_PACKET_H_
