// Kernel Connection Multiplexor-style stream scheduling (paper §6.4).
//
// Requests sent over TCP arrive as a byte stream cut into arbitrary
// segments, so per-packet hooks cannot do request-level scheduling. KCM
// lets users "programmatically identify request boundaries across packets
// in TCP streams and do request-level scheduling": this module reassembles
// length-prefixed application messages from per-stream segments and
// invokes the scheduling policy once per *message*.
//
// Message framing: a 2-byte little-endian payload length, then the payload.
#ifndef SYRUP_SRC_NET_KCM_H_
#define SYRUP_SRC_NET_KCM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/net/packet.h"

namespace syrup {

inline constexpr size_t kKcmHeaderSize = 2;
inline constexpr size_t kKcmMaxMessageSize = 16 * 1024;

// Frames a payload for transmission: [len u16][payload].
std::vector<uint8_t> KcmFrame(const uint8_t* payload, size_t len);

class KcmMultiplexor {
 public:
  // `deliver` receives each complete message along with the policy's
  // decision over the message bytes (kPass when no policy is installed).
  using DeliverFn =
      std::function<void(uint64_t stream_id, Decision decision,
                         const std::vector<uint8_t>& message)>;

  explicit KcmMultiplexor(DeliverFn deliver) : deliver_(std::move(deliver)) {}

  // Installs the request-level scheduling policy (same signature as every
  // packet hook: message start/end pointers in, executor index out).
  void SetPolicy(std::function<Decision(const PacketView&)> policy) {
    policy_ = std::move(policy);
  }

  // Installs the burst form (Syrupd::DispatchBatch): one TCP segment often
  // carries many complete messages, and this lets the multiplexor schedule
  // the whole burst in one dispatcher call. Takes precedence over the
  // single-message policy when both are set. Decisions for every message
  // in a segment are computed before the first delivery; delivery order is
  // unchanged.
  void SetBatchPolicy(
      std::function<void(std::span<const PacketView>, std::span<Decision>)>
          policy) {
    batch_policy_ = std::move(policy);
  }

  // Feeds one TCP segment of `stream_id`. Segments may split messages at
  // any byte position and may contain many messages. Returns an error (and
  // poisons the stream) on a malformed frame.
  Status OnSegment(uint64_t stream_id, const uint8_t* data, size_t len);

  // Tears down per-stream reassembly state (connection close).
  void CloseStream(uint64_t stream_id) { streams_.erase(stream_id); }

  size_t open_streams() const { return streams_.size(); }
  uint64_t messages_delivered() const { return messages_; }
  uint64_t messages_dropped() const { return dropped_; }

 private:
  struct Stream {
    std::vector<uint8_t> buffer;
    bool poisoned = false;
  };

  DeliverFn deliver_;
  std::function<Decision(const PacketView&)> policy_;
  std::function<void(std::span<const PacketView>, std::span<Decision>)>
      batch_policy_;
  std::map<uint64_t, Stream> streams_;
  uint64_t messages_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_NET_KCM_H_
