#include "src/net/kcm.h"

#include <cstring>

namespace syrup {

std::vector<uint8_t> KcmFrame(const uint8_t* payload, size_t len) {
  std::vector<uint8_t> frame(kKcmHeaderSize + len);
  const auto length = static_cast<uint16_t>(len);
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + kKcmHeaderSize, payload, len);
  return frame;
}

Status KcmMultiplexor::OnSegment(uint64_t stream_id, const uint8_t* data,
                                 size_t len) {
  Stream& stream = streams_[stream_id];
  if (stream.poisoned) {
    return FailedPreconditionError("stream poisoned by earlier framing error");
  }
  stream.buffer.insert(stream.buffer.end(), data, data + len);

  // Extract every complete message currently buffered.
  size_t cursor = 0;
  while (stream.buffer.size() - cursor >= kKcmHeaderSize) {
    uint16_t length;
    std::memcpy(&length, stream.buffer.data() + cursor, sizeof(length));
    if (length == 0 || length > kKcmMaxMessageSize) {
      stream.poisoned = true;
      stream.buffer.clear();
      return InvalidArgumentError("malformed KCM frame length " +
                                  std::to_string(length));
    }
    if (stream.buffer.size() - cursor < kKcmHeaderSize + length) {
      break;  // message spans into a future segment
    }
    const uint8_t* payload = stream.buffer.data() + cursor + kKcmHeaderSize;
    std::vector<uint8_t> message(payload, payload + length);

    Decision decision = kPass;
    if (policy_) {
      decision = policy_(PacketView{message.data(),
                                    message.data() + message.size()});
    }
    if (decision == kDrop) {
      ++dropped_;
    } else {
      ++messages_;
      deliver_(stream_id, decision, message);
    }
    cursor += kKcmHeaderSize + length;
  }
  stream.buffer.erase(stream.buffer.begin(),
                      stream.buffer.begin() + static_cast<long>(cursor));
  return OkStatus();
}

}  // namespace syrup
