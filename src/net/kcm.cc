#include "src/net/kcm.h"

#include <cstring>

namespace syrup {

std::vector<uint8_t> KcmFrame(const uint8_t* payload, size_t len) {
  std::vector<uint8_t> frame(kKcmHeaderSize + len);
  const auto length = static_cast<uint16_t>(len);
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + kKcmHeaderSize, payload, len);
  return frame;
}

Status KcmMultiplexor::OnSegment(uint64_t stream_id, const uint8_t* data,
                                 size_t len) {
  Stream& stream = streams_[stream_id];
  if (stream.poisoned) {
    return FailedPreconditionError("stream poisoned by earlier framing error");
  }
  stream.buffer.insert(stream.buffer.end(), data, data + len);

  // Extract every complete message currently buffered. A malformed frame
  // poisons the stream, but the complete messages in front of it are still
  // scheduled and delivered (exactly what the walk-and-deliver loop did).
  std::vector<std::vector<uint8_t>> messages;
  bool malformed = false;
  uint16_t bad_length = 0;
  size_t cursor = 0;
  while (stream.buffer.size() - cursor >= kKcmHeaderSize) {
    uint16_t length;
    std::memcpy(&length, stream.buffer.data() + cursor, sizeof(length));
    if (length == 0 || length > kKcmMaxMessageSize) {
      stream.poisoned = true;
      malformed = true;
      bad_length = length;
      break;
    }
    if (stream.buffer.size() - cursor < kKcmHeaderSize + length) {
      break;  // message spans into a future segment
    }
    const uint8_t* payload = stream.buffer.data() + cursor + kKcmHeaderSize;
    messages.emplace_back(payload, payload + length);
    cursor += kKcmHeaderSize + length;
  }

  // Schedule the segment's burst of messages in one dispatcher call when
  // the batch policy is installed, then deliver in order.
  std::vector<Decision> decisions(messages.size(), kPass);
  if (batch_policy_) {
    std::vector<PacketView> views;
    views.reserve(messages.size());
    for (const std::vector<uint8_t>& message : messages) {
      views.push_back(PacketView{message.data(),
                                 message.data() + message.size()});
    }
    batch_policy_(views, decisions);
  } else if (policy_) {
    for (size_t i = 0; i < messages.size(); ++i) {
      decisions[i] = policy_(PacketView{
          messages[i].data(), messages[i].data() + messages[i].size()});
    }
  }
  for (size_t i = 0; i < messages.size(); ++i) {
    if (decisions[i] == kDrop) {
      ++dropped_;
    } else {
      ++messages_;
      deliver_(stream_id, decisions[i], messages[i]);
    }
  }

  if (malformed) {
    stream.buffer.clear();
    return InvalidArgumentError("malformed KCM frame length " +
                                std::to_string(bad_length));
  }
  stream.buffer.erase(stream.buffer.begin(),
                      stream.buffer.begin() + static_cast<long>(cursor));
  return OkStatus();
}

}  // namespace syrup
