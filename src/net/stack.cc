#include "src/net/stack.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/sim/sharded.h"

namespace syrup {

HostStack::Metrics HostStack::DetachedMetrics() {
  HostStack::Metrics m;
  m.rx_packets = std::make_shared<obs::Counter>();
  m.nic_ring_drops = std::make_shared<obs::Counter>();
  m.socket_drops = std::make_shared<obs::Counter>();
  m.policy_drops = std::make_shared<obs::Counter>();
  m.invalid_decisions = std::make_shared<obs::Counter>();
  m.delivered_socket = std::make_shared<obs::Counter>();
  m.delivered_afxdp = std::make_shared<obs::Counter>();
  m.cpu_redirects = std::make_shared<obs::Counter>();
  m.late_bound = std::make_shared<obs::Counter>();
  m.delivery_latency_ns = std::make_shared<obs::LatencyHistogram>();
  return m;
}

HostStack::HostStack(Simulator& sim, StackConfig config)
    : sim_(sim), config_(config), m_(DetachedMetrics()) {
  SYRUP_CHECK_GT(config_.num_nic_queues, 0);
  cores_.resize(static_cast<size_t>(config_.num_nic_queues));
  af_xdp_sockets_.resize(static_cast<size_t>(config_.num_nic_queues));
}

void HostStack::BindMetrics(obs::MetricsRegistry& registry) {
  if (metrics_bound_) {
    return;
  }
  metrics_bound_ = true;
  auto rebind = [&](std::shared_ptr<obs::Counter>& cell, const char* name) {
    std::shared_ptr<obs::Counter> fresh =
        registry.GetCounter("host", "stack", name);
    fresh->Inc(cell->value);
    cell = std::move(fresh);
  };
  rebind(m_.rx_packets, "rx_packets");
  rebind(m_.nic_ring_drops, "nic_ring_drops");
  rebind(m_.socket_drops, "socket_drops");
  rebind(m_.policy_drops, "policy_drops");
  rebind(m_.invalid_decisions, "invalid_decisions");
  rebind(m_.delivered_socket, "delivered_socket");
  rebind(m_.delivered_afxdp, "delivered_afxdp");
  rebind(m_.cpu_redirects, "cpu_redirects");
  rebind(m_.late_bound, "late_bound_deliveries");
  std::shared_ptr<obs::LatencyHistogram> fresh =
      registry.GetHistogram("host", "stack", "delivery_latency_ns");
  fresh->MergeFrom(*m_.delivery_latency_ns);
  m_.delivery_latency_ns = std::move(fresh);
}

StackStats HostStack::stats() const {
  StackStats s;
  s.rx_packets = m_.rx_packets->value;
  s.nic_ring_drops = m_.nic_ring_drops->value;
  s.socket_drops = m_.socket_drops->value;
  s.policy_drops = m_.policy_drops->value;
  s.invalid_decisions = m_.invalid_decisions->value;
  s.delivered_socket = m_.delivered_socket->value;
  s.delivered_afxdp = m_.delivered_afxdp->value;
  s.cpu_redirects = m_.cpu_redirects->value;
  return s;
}

ReuseportGroup* HostStack::GetOrCreateGroup(uint16_t port) {
  auto& slot = groups_[port];
  if (slot == nullptr) {
    slot = std::make_unique<ReuseportGroup>(port);
  }
  return slot.get();
}

Socket* HostStack::RegisterAfXdpSocket(int queue, size_t queue_depth) {
  SYRUP_CHECK_GE(queue, 0);
  SYRUP_CHECK_LT(queue, config_.num_nic_queues);
  auto& per_queue = af_xdp_sockets_[static_cast<size_t>(queue)];
  per_queue.push_back(std::make_unique<Socket>(/*port=*/0, queue_depth));
  return per_queue.back().get();
}

void HostStack::RouteToQueue(Packet pkt, Decision d) {
  if (d == kDrop) {
    m_.policy_drops->value += 1;
    return;
  }
  int queue;
  if (d == kPass) {
    // RSS-style 5-tuple hashing (the NIC default).
    queue = static_cast<int>(pkt.tuple.Hash() %
                             static_cast<uint64_t>(config_.num_nic_queues));
  } else if (d < static_cast<Decision>(config_.num_nic_queues)) {
    queue = static_cast<int>(d);
  } else {
    m_.invalid_decisions->value += 1;
    queue = static_cast<int>(pkt.tuple.Hash() %
                             static_cast<uint64_t>(config_.num_nic_queues));
  }
  EnqueueJob(queue, Job{std::move(pkt), Stage::kDriver});
}

void HostStack::Rx(Packet pkt) {
  m_.rx_packets->value += 1;
  pkt.nic_arrival = sim_.Now();

  // XDP Offload hook: a policy running on the NIC picks the RX queue.
  Decision d = kPass;
  if (hooks_.xdp_offload) {
    d = hooks_.xdp_offload(PacketView::Of(pkt));
  }
  RouteToQueue(std::move(pkt), d);
}

void HostStack::BindShard(ShardedSim* sharded, int shard) {
  SYRUP_CHECK(sharded != nullptr);
  SYRUP_CHECK_GE(shard, 0);
  SYRUP_CHECK_LT(shard, sharded->shards());
  SYRUP_CHECK_EQ(&sharded->shard(shard), &sim_)
      << "stack must be built on its owning shard's engine";
  sharded_ = sharded;
  shard_ = shard;
}

void HostStack::PostRx(int from_shard, Time when, Packet pkt) {
  SYRUP_CHECK(sharded_ != nullptr) << "PostRx requires BindShard";
  sharded_->Post(from_shard, shard_, when,
                 [this, p = std::move(pkt)]() mutable { Rx(std::move(p)); });
}

void HostStack::RxBurst(std::span<Packet> pkts) {
  if (pkts.empty()) {
    return;
  }
  const Time now = sim_.Now();
  for (Packet& pkt : pkts) {
    m_.rx_packets->value += 1;
    pkt.nic_arrival = now;
  }
  // All packets traverse the offload hook before any is enqueued: the
  // NIC sees the whole DMA burst, then the driver drains it. Per-queue
  // order is arrival order either way; only the offload/driver interleave
  // differs from per-packet Rx.
  std::vector<Decision> decisions(pkts.size(), kPass);
  if (batch_hooks_.xdp_offload) {
    std::vector<PacketView> views;
    views.reserve(pkts.size());
    for (const Packet& pkt : pkts) {
      views.push_back(PacketView::Of(pkt));
    }
    batch_hooks_.xdp_offload(views, decisions);
  } else if (hooks_.xdp_offload) {
    for (size_t i = 0; i < pkts.size(); ++i) {
      decisions[i] = hooks_.xdp_offload(PacketView::Of(pkts[i]));
    }
  }
  for (size_t i = 0; i < pkts.size(); ++i) {
    RouteToQueue(std::move(pkts[i]), decisions[i]);
  }
}

void HostStack::EnqueueJob(int core, Job job) {
  SoftirqCore& sc = cores_[static_cast<size_t>(core)];
  if (sc.ring.size() >= config_.nic_ring_depth) {
    m_.nic_ring_drops->value += 1;
    SYRUP_TRACE(sim_.Now(), "stack", "nic ring drop core=" << core);
    return;
  }
  sc.ring.push_back(std::move(job));
  if (!sc.busy) {
    StartNext(core);
  }
}

void HostStack::StartNext(int core) {
  SoftirqCore& sc = cores_[static_cast<size_t>(core)];
  if (sc.ring.empty()) {
    sc.busy = false;
    return;
  }
  sc.busy = true;
  // The packet lives in the core's inflight slot until the completion event
  // fires: the event itself captures only {this, core}, so it fits the
  // simulator's inline callback storage and copies no packet bytes.
  sc.inflight = std::move(sc.ring.front());
  sc.ring.pop_front();
  sc.action = DeliverAction{};
  sc.requeue_core = -1;

  const Duration cost = ProcessJob(core, sc.inflight, sc.action,
                                   sc.requeue_core);
  sc.busy_time += cost;

  sim_.ScheduleAfter(cost, [this, core]() { CompleteJob(core); });
}

void HostStack::CompleteJob(int core) {
  SoftirqCore& sc = cores_[static_cast<size_t>(core)];
  if (sc.requeue_core >= 0) {
    m_.cpu_redirects->value += 1;
    // Requeue is always to a *different* core (ProcessJob treats the same
    // core as inline), so EnqueueJob never touches this core's state.
    EnqueueJob(sc.requeue_core,
               Job{std::move(sc.inflight.pkt), Stage::kProtocol});
  } else {
    switch (sc.action.kind) {
      case DeliverAction::Kind::kNone:
        break;
      case DeliverAction::Kind::kPolicyDrop:
        m_.policy_drops->value += 1;
        break;
      case DeliverAction::Kind::kAfxdp:
        if (sc.action.socket->Enqueue(sc.inflight.pkt)) {
          m_.delivered_afxdp->value += 1;
        } else {
          m_.socket_drops->value += 1;
        }
        break;
      case DeliverAction::Kind::kGroup:
        DeliverToGroupSocket(sc.inflight.pkt);
        break;
    }
  }
  StartNext(core);
}

Duration HostStack::ProcessJob(int core, const Job& job,
                               DeliverAction& action, int& requeue_core) {
  const Packet& pkt = job.pkt;
  const PacketView view = PacketView::Of(pkt);
  Duration cost = 0;

  auto drop = [&action]() {
    action = DeliverAction{DeliverAction::Kind::kPolicyDrop, nullptr};
  };
  auto deliver_afxdp = [this, core, &action](Decision d) -> bool {
    const auto& per_queue = af_xdp_sockets_[static_cast<size_t>(core)];
    if (d >= per_queue.size()) {
      m_.invalid_decisions->value += 1;
      return false;
    }
    action = DeliverAction{DeliverAction::Kind::kAfxdp, per_queue[d].get()};
    return true;
  };

  if (job.stage == Stage::kDriver) {
    cost += config_.driver_cost;

    // XDP_DRV: native mode, pre-SKB, zero copy.
    if (hooks_.xdp_drv) {
      cost += config_.xdp_cost;
      const Decision d = hooks_.xdp_drv(view);
      if (d == kDrop) {
        drop();
        return cost;
      }
      if (d != kPass) {
        cost += config_.afxdp_deliver_cost;
        if (deliver_afxdp(d)) {
          return cost;
        }
      }
    }

    cost += config_.skb_alloc_cost;

    // XDP_SKB: generic mode, post-SKB, copies the frame.
    if (hooks_.xdp_skb) {
      cost += config_.xdp_cost;
      const Decision d = hooks_.xdp_skb(view);
      if (d == kDrop) {
        drop();
        return cost;
      }
      if (d != kPass) {
        cost += config_.afxdp_deliver_cost + config_.afxdp_copy_cost;
        if (deliver_afxdp(d)) {
          return cost;
        }
      }
    }

    // CPU Redirect: move protocol processing to another softirq core.
    if (hooks_.cpu_redirect) {
      cost += config_.xdp_cost;
      const Decision d = hooks_.cpu_redirect(view);
      if (d == kDrop) {
        drop();
        return cost;
      }
      if (d != kPass) {
        if (d < static_cast<Decision>(config_.num_nic_queues)) {
          if (static_cast<int>(d) != core) {
            cost += config_.ipi_cost;
            requeue_core = static_cast<int>(d);
            return cost;
          }
        } else {
          m_.invalid_decisions->value += 1;
        }
      }
    }
  }

  // Protocol stage (inline or after a CPU redirect).
  cost += ProtocolCost(core, pkt);
  if (hooks_.socket_select) {
    cost += config_.socket_policy_cost;
  }
  action = DeliverAction{DeliverAction::Kind::kGroup, nullptr};
  return cost;
}

Duration HostStack::ProtocolCost(int core, const Packet& pkt) {
  Duration cost = config_.protocol_cost;
  if (config_.protocol_cold_penalty > 0) {
    SoftirqCore& sc = cores_[static_cast<size_t>(core)];
    const uint64_t flow = pkt.tuple.Hash();
    const Time now = sim_.Now();
    auto it = sc.flow_last_seen.find(flow);
    const bool warm = it != sc.flow_last_seen.end() &&
                      now - it->second <= config_.affinity_window;
    if (!warm) {
      cost += config_.protocol_cold_penalty;
    }
    sc.flow_last_seen[flow] = now;
  }
  return cost;
}

void HostStack::EnableLateBinding(uint16_t port, size_t buffer_depth) {
  LateBindState& state = late_binding_[port];
  state.buffer_depth = buffer_depth;
}

void HostStack::NotifySocketIdle(uint16_t port, Socket* socket) {
  auto it = late_binding_.find(port);
  if (it == late_binding_.end()) {
    return;  // early-binding port
  }
  LateBindState& state = it->second;
  if (!state.buffer.empty()) {
    // An input was waiting for exactly this moment: bind it now (move the
    // front out instead of copying it before the pop).
    Packet pkt = std::move(state.buffer.front());
    state.buffer.pop_front();
    m_.late_bound->value += 1;
    if (socket->Enqueue(pkt)) {
      RecordDelivery(pkt);
    } else {
      m_.socket_drops->value += 1;
    }
    return;
  }
  state.idle.push_back(socket);
}

bool HostStack::LateBindDeliver(LateBindState& state, ReuseportGroup& group,
                                const Packet& pkt) {
  if (state.idle.empty()) {
    // No executor available: buffer the input (scheduler-side queueing).
    if (state.buffer.size() >= state.buffer_depth) {
      m_.socket_drops->value += 1;
      return true;
    }
    state.buffer.push_back(pkt);
    return true;
  }

  // An executor is available; consult the policy, constrained to idle
  // executors (a busy pick falls back to the longest-idle socket).
  Socket* target = nullptr;
  if (hooks_.socket_select) {
    const Decision d = hooks_.socket_select(PacketView::Of(pkt));
    if (d == kDrop) {
      m_.policy_drops->value += 1;
      return true;
    }
    if (d != kPass && d < group.size()) {
      Socket* chosen = group.at(d);
      auto it = std::find(state.idle.begin(), state.idle.end(), chosen);
      if (it != state.idle.end()) {
        state.idle.erase(it);
        target = chosen;
      }
    }
  }
  if (target == nullptr) {
    target = state.idle.front();
    state.idle.pop_front();
  }
  m_.late_bound->value += 1;
  if (target->Enqueue(pkt)) {
    RecordDelivery(pkt);
  } else {
    m_.socket_drops->value += 1;
  }
  return true;
}

void HostStack::DeliverToGroupSocket(const Packet& pkt) {
  auto it = groups_.find(pkt.tuple.dst_port);
  if (it == groups_.end() || it->second->size() == 0) {
    // No listener: the kernel would send ICMP port unreachable.
    m_.socket_drops->value += 1;
    return;
  }
  ReuseportGroup& group = *it->second;

  // Established TCP connections bypass the policy: the connection was the
  // scheduled input, not the packet.
  if (pkt.tuple.protocol == kProtoTcp) {
    auto bound = connections_.find(pkt.tuple);
    if (bound != connections_.end()) {
      if (bound->second->Enqueue(pkt)) {
        RecordDelivery(pkt);
      } else {
        m_.socket_drops->value += 1;
      }
      return;
    }
  }

  auto late = late_binding_.find(pkt.tuple.dst_port);
  if (late != late_binding_.end()) {
    LateBindDeliver(late->second, group, pkt);
    return;
  }

  Socket* target = nullptr;
  if (hooks_.socket_select) {
    const Decision d = hooks_.socket_select(PacketView::Of(pkt));
    if (d == kDrop) {
      m_.policy_drops->value += 1;
      return;
    }
    if (d != kPass) {
      if (d < group.size()) {
        target = group.at(d);
      } else {
        m_.invalid_decisions->value += 1;
      }
    }
  }
  if (target == nullptr) {
    target = group.DefaultSelect(pkt);
  }
  // A connection-establishing TCP packet pins the chosen socket for the
  // connection's lifetime.
  if (pkt.tuple.protocol == kProtoTcp) {
    connections_[pkt.tuple] = target;
  }
  if (target->Enqueue(pkt)) {
    RecordDelivery(pkt);
  } else {
    m_.socket_drops->value += 1;
    SYRUP_TRACE(sim_.Now(), "stack",
                "socket drop port=" << pkt.tuple.dst_port);
  }
}

void HostStack::CloseConnection(const FiveTuple& tuple) {
  connections_.erase(tuple);
}

double HostStack::SoftirqUtilization(int core) const {
  const Time now = sim_.Now();
  if (now == 0) {
    return 0.0;
  }
  return static_cast<double>(cores_[static_cast<size_t>(core)].busy_time) /
         static_cast<double>(now);
}

}  // namespace syrup
