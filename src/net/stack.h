// HostStack: discrete-event model of the Linux receive path with Syrup's
// five network hooks (paper Fig. 4).
//
//   NIC Rx ──► [XDP Offload] ──► RX queue ──► softirq core:
//     driver ──► [XDP_DRV] ──► (AF_XDP socket | pass)
//            ──► skb alloc ──► [XDP_SKB] ──► (AF_XDP socket | pass)
//            ──► [CPU Redirect] ──► (requeue on other core | inline)
//            ──► protocol stack ──► [Socket Select] ──► socket queue
//
// Each RX queue is drained by one softirq core (the paper pins queue IRQs
// to the hyperthread buddies of the application cores, so softirq capacity
// is separate from app-thread capacity). Per-packet costs accrue as busy
// time on that core; queues and sockets are bounded, so overload shows up
// as drops exactly where it does on Linux.
#ifndef SYRUP_SRC_NET_STACK_H_
#define SYRUP_SRC_NET_STACK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/common/decision.h"
#include "src/common/time.h"
#include "src/net/packet.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace syrup {

class ShardedSim;

// Hook callback: syrupd installs per-hook dispatchers here. The callback
// receives the packet bytes and returns an executor index, kPass, or kDrop.
using SteerHook = std::function<Decision(const PacketView&)>;

// Burst form of the same contract: one Decision per input view, written
// in order. Installed alongside the single-packet hook by syrupd
// (Syrupd::DispatchBatch); burst entry points (RxBurst, KCM segments) use
// it to amortize routing and cache probes across same-instant arrivals.
using BatchSteerHook =
    std::function<void(std::span<const PacketView>, std::span<Decision>)>;

struct StackHooks {
  SteerHook xdp_offload;   // executor: NIC RX queue
  SteerHook xdp_drv;       // executor: AF_XDP socket registered on the queue
  SteerHook xdp_skb;       // executor: AF_XDP socket (generic mode)
  SteerHook cpu_redirect;  // executor: softirq core
  SteerHook socket_select; // executor: socket within the dst-port group
};

struct StackBatchHooks {
  BatchSteerHook xdp_offload;
  BatchSteerHook xdp_drv;
  BatchSteerHook xdp_skb;
  BatchSteerHook cpu_redirect;
  BatchSteerHook socket_select;
};

struct StackConfig {
  int num_nic_queues = 6;
  size_t nic_ring_depth = 1024;    // per-queue descriptor ring
  size_t socket_queue_depth = 128; // SO_RCVBUF in datagrams

  Duration driver_cost = 600;         // DMA + descriptor handling
  Duration xdp_cost = 300;            // one XDP policy invocation
  Duration skb_alloc_cost = 500;      // SKB allocation (pre-XDP_SKB)
  Duration protocol_cost = 1200;      // UDP/IP processing + socket lookup
  Duration socket_policy_cost = 500;  // Socket Select policy invocation
  Duration ipi_cost = 400;            // CPU-redirect requeue
  Duration afxdp_deliver_cost = 300;  // zero-copy descriptor hand-off
  Duration afxdp_copy_cost = 700;     // extra copy in generic (SKB) mode

  // Flow-affinity model for the CPU Redirect hook (§2.1's RFS motivation):
  // protocol processing pays this extra cost when the flow's state is not
  // warm in the processing core's cache (not seen there within
  // affinity_window). 0 disables the model (default: the paper's main
  // experiments don't exercise it).
  Duration protocol_cold_penalty = 0;
  Duration affinity_window = 1 * kMillisecond;
};

// Point-in-time copy of the stack's counters (assembled from the metric
// cells in `stats()`; kept as a struct so call sites read plain fields).
struct StackStats {
  uint64_t rx_packets = 0;
  uint64_t nic_ring_drops = 0;
  uint64_t socket_drops = 0;   // bounded socket queue overflow
  uint64_t policy_drops = 0;   // a policy returned DROP
  uint64_t invalid_decisions = 0;  // out-of-range executor, fell back
  uint64_t delivered_socket = 0;
  uint64_t delivered_afxdp = 0;
  uint64_t cpu_redirects = 0;

  uint64_t TotalDrops() const {
    return nic_ring_drops + socket_drops + policy_drops;
  }
};

class HostStack {
 public:
  HostStack(Simulator& sim, StackConfig config);

  HostStack(const HostStack&) = delete;
  HostStack& operator=(const HostStack&) = delete;

  StackHooks& hooks() { return hooks_; }
  StackBatchHooks& batch_hooks() { return batch_hooks_; }
  const StackConfig& config() const { return config_; }
  StackStats stats() const;

  // Re-homes the stack's accounting into `registry` under
  // {"host", "stack", ...} (counts accumulated so far carry over). Syrupd
  // calls this when a stack is attached; standalone stacks keep their
  // detached cells.
  void BindMetrics(obs::MetricsRegistry& registry);

  // Creates (or returns) the SO_REUSEPORT group for `port`.
  ReuseportGroup* GetOrCreateGroup(uint16_t port);

  // --- Late binding (paper §6.3) ------------------------------------------
  //
  // By default the Socket Select hook binds a datagram to a socket the
  // moment it arrives (early binding), which can strand short requests
  // behind long ones. With late binding enabled for a port, arrivals are
  // buffered centrally and matched to a socket only when that socket's
  // consumer is idle (its thread blocked in recvmsg) — the scheduling
  // function fires when an *executor* becomes available.

  // Switches `port`'s group to late binding with the given central buffer.
  void EnableLateBinding(uint16_t port, size_t buffer_depth = 4096);

  // The application reports that `socket`'s consumer has gone idle (a
  // recvmsg found the queue empty). No-op for early-binding ports.
  void NotifySocketIdle(uint16_t port, Socket* socket);

  uint64_t late_bound_deliveries() const { return m_.late_bound->value; }

  // --- TCP connection steering (paper Fig. 4) -----------------------------
  //
  // For TCP, the Socket Select hook schedules *connections*, not packets:
  // the policy runs once on the connection-establishing packet and the
  // binding sticks for the connection's lifetime (as SO_REUSEPORT + eBPF
  // does for SYNs). Packets with tuple.protocol == kProtoTcp take this
  // path automatically.

  // Tears down a connection's socket binding (FIN/RST).
  void CloseConnection(const FiveTuple& tuple);

  size_t open_connections() const { return connections_.size(); }

  // Registers an AF_XDP socket as executor index (queue, position). Returns
  // the socket, owned by the stack.
  Socket* RegisterAfXdpSocket(int queue, size_t queue_depth);

  // Entry point: a packet arrives from the wire at the current sim time.
  void Rx(Packet pkt);

  // --- Sharded runs (src/sim/sharded.h) -----------------------------------
  //
  // A sharded run gives every stack to exactly one shard; all of the
  // stack's own events stay on that shard's engine (the `sim` it was
  // constructed with must be ShardedSim::shard(shard)). Remote shards hand
  // packets across with PostRx, the timestamped-channel form of Rx.

  // Declares this stack's owning shard.
  void BindShard(ShardedSim* sharded, int shard);
  int shard() const { return shard_; }

  // Cross-shard Rx handoff: `pkt` enters Rx() on the owning shard at
  // absolute time `when`. Must be called from shard `from_shard` (or
  // outside any Run), with `when` at least the sharded lookahead past the
  // sender's clock; same-shard calls just schedule locally.
  void PostRx(int from_shard, Time when, Packet pkt);

  // Burst entry point: a NIC DMA burst arrives at the current sim time.
  // All packets traverse the XDP Offload hook (batched through the
  // installed BatchSteerHook when present) before any enters its RX
  // queue — the hardware model of a descriptor burst, and the surface
  // that lets the offload stage amortize flow-cache probes. Per-queue
  // processing order matches per-packet Rx exactly.
  void RxBurst(std::span<Packet> pkts);

  // Busy-fraction of each softirq core over the run (for reports/tests).
  double SoftirqUtilization(int core) const;

 private:
  enum class Stage { kDriver, kProtocol };

  struct Job {
    Packet pkt;
    Stage stage = Stage::kDriver;
  };

  // Where a processed packet goes when its softirq work completes. Kept as
  // plain data (not a closure) so the completion event captures only
  // {this, core}: the packet stays in the core's `inflight` slot and is
  // never copied into per-event callback storage.
  struct DeliverAction {
    enum class Kind : uint8_t {
      kNone,        // consumed earlier (e.g. ring drop)
      kPolicyDrop,  // a policy returned DROP; count at completion time
      kAfxdp,       // hand off to the AF_XDP socket in `socket`
      kGroup,       // deliver through the dst-port reuseport group
    };
    Kind kind = Kind::kNone;
    Socket* socket = nullptr;
  };

  struct SoftirqCore {
    std::deque<Job> ring;
    bool busy = false;
    Duration busy_time = 0;
    // The job currently being processed on this core plus its completion
    // plan; one per core since softirq processing is serialized.
    Job inflight;
    DeliverAction action;
    int requeue_core = -1;
    // Flow-affinity cache: flow hash -> last time protocol state for the
    // flow was touched on this core.
    std::map<uint64_t, Time> flow_last_seen;
  };

  // Returns the protocol-processing cost on `core` for `pkt`, charging the
  // cold penalty on an affinity miss and refreshing the cache.
  Duration ProtocolCost(int core, const Packet& pkt);

  void EnqueueJob(int core, Job job);
  void StartNext(int core);
  // Applies the core's recorded DeliverAction / requeue when the softirq
  // cost event fires, then starts the next queued job.
  void CompleteJob(int core);
  // Runs the post-driver / post-redirect part of the pipeline; returns the
  // total processing cost and stashes the delivery plan in `action` /
  // `requeue_core`.
  Duration ProcessJob(int core, const Job& job, DeliverAction& action,
                      int& requeue_core);
  void DeliverToGroupSocket(const Packet& pkt);

  struct LateBindState {
    std::deque<Packet> buffer;
    size_t buffer_depth = 4096;
    std::deque<Socket*> idle;  // FIFO of sockets with a waiting consumer
  };

  // Delivers under late binding; returns true if the packet was consumed
  // (delivered or buffered or dropped).
  bool LateBindDeliver(LateBindState& state, ReuseportGroup& group,
                       const Packet& pkt);

  // Metric cells (detached until BindMetrics re-homes them). Hot paths
  // bump `->value` directly: the sim is single-threaded, so no atomics.
  struct Metrics {
    std::shared_ptr<obs::Counter> rx_packets;
    std::shared_ptr<obs::Counter> nic_ring_drops;
    std::shared_ptr<obs::Counter> socket_drops;
    std::shared_ptr<obs::Counter> policy_drops;
    std::shared_ptr<obs::Counter> invalid_decisions;
    std::shared_ptr<obs::Counter> delivered_socket;
    std::shared_ptr<obs::Counter> delivered_afxdp;
    std::shared_ptr<obs::Counter> cpu_redirects;
    std::shared_ptr<obs::Counter> late_bound;
    // NIC arrival -> socket enqueue, the wire-to-app half of latency.
    std::shared_ptr<obs::LatencyHistogram> delivery_latency_ns;
  };

  static Metrics DetachedMetrics();

  void RecordDelivery(const Packet& pkt) {
    m_.delivered_socket->value += 1;
    m_.delivery_latency_ns->Record(
        static_cast<uint64_t>(sim_.Now() - pkt.nic_arrival));
  }

  // Routes one offload-hook decision to an RX queue and enqueues (the
  // shared tail of Rx and RxBurst).
  void RouteToQueue(Packet pkt, Decision d);

  Simulator& sim_;
  StackConfig config_;
  ShardedSim* sharded_ = nullptr;  // set by BindShard; null when unsharded
  int shard_ = 0;
  StackHooks hooks_;
  StackBatchHooks batch_hooks_;
  Metrics m_;
  bool metrics_bound_ = false;
  std::vector<SoftirqCore> cores_;
  std::map<uint16_t, std::unique_ptr<ReuseportGroup>> groups_;
  std::map<uint16_t, LateBindState> late_binding_;
  std::map<FiveTuple, Socket*> connections_;  // established TCP bindings
  // af_xdp_sockets_[queue][index]
  std::vector<std::vector<std::unique_ptr<Socket>>> af_xdp_sockets_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_NET_STACK_H_
