// Sockets: the executors of the Socket Select and XDP hooks.
//
// A Socket is a bounded datagram queue; overflow drops the packet (the
// receive-buffer drops visible in Fig. 2b). A ReuseportGroup models several
// sockets bound to one UDP port via SO_REUSEPORT; the kernel-default
// distribution is by 5-tuple hash, which Syrup's Socket Select hook
// overrides.
#ifndef SYRUP_SRC_NET_SOCKET_H_
#define SYRUP_SRC_NET_SOCKET_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/logging.h"
#include "src/net/packet.h"

namespace syrup {

class Socket {
 public:
  // `depth` bounds the receive queue, mirroring SO_RCVBUF.
  Socket(uint16_t port, size_t depth) : port_(port), depth_(depth) {}

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  uint16_t port() const { return port_; }

  // Invoked after every successful enqueue (the app layer uses it to wake a
  // blocked worker, i.e. the return from recvmsg).
  void SetWakeCallback(std::function<void()> cb) { wake_ = std::move(cb); }

  // Returns false (and counts a drop) when the queue is full.
  bool Enqueue(const Packet& pkt) {
    if (queue_.size() >= depth_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(pkt);
    ++enqueued_;
    if (wake_) {
      wake_();
    }
    return true;
  }

  std::optional<Packet> Dequeue() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    Packet pkt = queue_.front();
    queue_.pop_front();
    return pkt;
  }

  size_t queue_length() const { return queue_.size(); }
  uint64_t enqueued() const { return enqueued_; }
  uint64_t dropped() const { return dropped_; }

 private:
  uint16_t port_;
  size_t depth_;
  std::deque<Packet> queue_;
  std::function<void()> wake_;
  uint64_t enqueued_ = 0;
  uint64_t dropped_ = 0;
};

// All sockets listening on one port with SO_REUSEPORT.
class ReuseportGroup {
 public:
  explicit ReuseportGroup(uint16_t port) : port_(port) {}

  uint16_t port() const { return port_; }

  Socket* AddSocket(size_t queue_depth) {
    sockets_.push_back(std::make_unique<Socket>(port_, queue_depth));
    return sockets_.back().get();
  }

  size_t size() const { return sockets_.size(); }

  Socket* at(size_t index) const {
    SYRUP_CHECK_LT(index, sockets_.size());
    return sockets_[index].get();
  }

  // The vanilla Linux policy: 5-tuple hash modulo group size.
  Socket* DefaultSelect(const Packet& pkt) const {
    SYRUP_CHECK(!sockets_.empty());
    return sockets_[pkt.tuple.Hash() % sockets_.size()].get();
  }

 private:
  uint16_t port_;
  std::vector<std::unique_ptr<Socket>> sockets_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_NET_SOCKET_H_
