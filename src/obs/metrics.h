// Observability: the metrics registry threaded through the datapath.
//
// Every component of the stack (HostStack, Syrupd dispatch, the policy VM,
// Syrup Maps, the ghOSt agent) accounts its work in cells owned by a
// MetricsRegistry, keyed by {app, hook, metric}. The design goals, in
// order:
//
//   1. Hot-path cost must be a plain `uint64_t` bump through a pointer the
//      component resolved at bind/deploy time — no string hashing, no map
//      lookup, no lock on the packet path. Cells are handed out as
//      shared_ptr so an in-flight packet can never outlive its counter.
//   2. Components must work standalone (tests build a HostStack or a
//      GhostScheduler with no daemon): constructors allocate detached
//      cells, and a later BindMetrics(registry) re-homes the accounting —
//      accumulated values carry over, so late binding loses nothing.
//   3. One coherent read side: TakeSnapshot() produces an immutable
//      app -> hook -> metric tree with a stable JSON rendering
//      (docs/OBSERVABILITY.md documents the schema).
//
// Cells shared across real threads (Syrup Maps are contractually
// thread-safe) bump with std::atomic_ref on the same plain field, so the
// single-threaded simulation never pays for atomicity it doesn't need.
#ifndef SYRUP_SRC_OBS_METRICS_H_
#define SYRUP_SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace syrup::obs {

// Monotonically increasing event count.
struct Counter {
  uint64_t value = 0;

  void Inc(uint64_t delta = 1) { value += delta; }

  // For cells shared across OS threads (map ops under the Table 3
  // contended bench). Relaxed: counters need atomicity, not ordering.
  void IncAtomic(uint64_t delta = 1) {
    std::atomic_ref<uint64_t>(value).fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  // Single-writer increment for shard-local cells: race-free against a
  // concurrent Load() without the lock-prefixed RMW IncAtomic pays. Only
  // valid when exactly one thread ever writes this cell (the owning shard).
  void IncRelaxed(uint64_t delta = 1) {
    std::atomic_ref<uint64_t> ref(value);
    ref.store(ref.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
  }

  uint64_t Load() const {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(value))
        .load(std::memory_order_relaxed);
  }
};

// Point-in-time level (queue depth, configured capacity, a recorded ns
// measurement). Signed so instantaneous deltas can go negative.
struct Gauge {
  int64_t value = 0;

  void Set(int64_t v) { value = v; }
  void Add(int64_t delta) { value += delta; }

  int64_t Load() const {
    return std::atomic_ref<int64_t>(const_cast<int64_t&>(value))
        .load(std::memory_order_relaxed);
  }
};

// Fixed-bucket latency histogram: bucket b holds samples whose bit width
// is b, i.e. [2^(b-1), 2^b). Power-of-two buckets bound the relative
// quantile error at 2x while keeping Record() a shift and an increment —
// cheap enough for always-on rx-to-delivery accounting. (Contrast
// src/common/histogram.h, the high-resolution HDR variant the benches use
// for reported latency numbers.)
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t sample) {
    buckets_[BucketOf(sample)] += 1;
    count_ += 1;
    sum_ += sample;
    if (count_ == 1 || sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Upper edge of the bucket containing the pct-th percentile sample
  // (pct in [0, 100]). 0 when empty.
  uint64_t Percentile(double pct) const;

  // Adds another histogram's samples into this one (BindMetrics carry-over).
  void MergeFrom(const LatencyHistogram& other);

  uint64_t BucketCount(size_t bucket) const { return buckets_[bucket]; }

  static size_t BucketOf(uint64_t sample) {
    return static_cast<size_t>(std::bit_width(sample));
  }
  // Largest value the bucket can hold (its representative in summaries).
  static uint64_t BucketUpperEdge(size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~uint64_t{0};
    return (uint64_t{1} << bucket) - 1;
  }

 private:
  uint64_t buckets_[kNumBuckets + 1] = {};  // +1: bit_width ranges 0..64
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Summary of one histogram inside a snapshot.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

// One metric inside a snapshot.
struct SnapshotMetric {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSummary histogram;
};

// Immutable app -> hook -> metric tree. std::map keys make the JSON
// rendering deterministic.
class Snapshot {
 public:
  using MetricMap = std::map<std::string, SnapshotMetric, std::less<>>;
  using HookMap = std::map<std::string, MetricMap, std::less<>>;
  using AppMap = std::map<std::string, HookMap, std::less<>>;

  AppMap apps;

  const SnapshotMetric* Find(std::string_view app, std::string_view hook,
                             std::string_view metric) const;

  // Convenience readers: 0 when the metric is absent or of another kind.
  uint64_t CounterValue(std::string_view app, std::string_view hook,
                        std::string_view metric) const;
  int64_t GaugeValue(std::string_view app, std::string_view hook,
                     std::string_view metric) const;
  const HistogramSummary* Histogram(std::string_view app,
                                    std::string_view hook,
                                    std::string_view metric) const;

  // Renders the schema documented in docs/OBSERVABILITY.md.
  std::string ToJson(bool pretty = true) const;
};

// Hands out metric cells and snapshots them. Get-or-create: the same
// {app, hook, metric} key always returns the same cell, so a redeployed
// policy keeps accumulating into its app's counters. The internal lock
// covers registration and snapshotting only — never a metric bump.
class MetricsRegistry {
 public:
  std::shared_ptr<Counter> GetCounter(std::string_view app,
                                      std::string_view hook,
                                      std::string_view metric);
  std::shared_ptr<Gauge> GetGauge(std::string_view app, std::string_view hook,
                                  std::string_view metric);
  std::shared_ptr<LatencyHistogram> GetHistogram(std::string_view app,
                                                 std::string_view hook,
                                                 std::string_view metric);

  // Shard-local cells, mirroring PerCpuArrayMap: shard `s` gets a cell of
  // its own under the same {app, hook, metric} key, distinct from the base
  // cell and from every other shard's, so concurrent shard threads never
  // share a cache line on the bump path. TakeSnapshot() folds base + all
  // shards into the key's single snapshot entry (counters/gauges summed,
  // histograms merged). Shard threads should bump with IncRelaxed() so a
  // snapshot taken while they run stays race-free.
  std::shared_ptr<Counter> GetCounterShard(std::string_view app,
                                           std::string_view hook,
                                           std::string_view metric, int shard);
  std::shared_ptr<Gauge> GetGaugeShard(std::string_view app,
                                       std::string_view hook,
                                       std::string_view metric, int shard);
  std::shared_ptr<LatencyHistogram> GetHistogramShard(std::string_view app,
                                                      std::string_view hook,
                                                      std::string_view metric,
                                                      int shard);

  Snapshot TakeSnapshot() const;

  size_t NumMetrics() const;

 private:
  struct Key {
    std::string app;
    std::string hook;
    std::string metric;
    auto operator<=>(const Key&) const = default;
  };
  struct Cell {
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<LatencyHistogram> histogram;
    // Indexed by shard id; entries are created lazily by Get*Shard.
    std::vector<std::shared_ptr<Counter>> counter_shards;
    std::vector<std::shared_ptr<Gauge>> gauge_shards;
    std::vector<std::shared_ptr<LatencyHistogram>> histogram_shards;
  };

  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
};

}  // namespace syrup::obs

#endif  // SYRUP_SRC_OBS_METRICS_H_
