#include "src/obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace syrup::obs {

uint64_t LatencyHistogram::Percentile(double pct) const {
  if (count_ == 0) {
    return 0;
  }
  if (pct < 0.0) pct = 0.0;
  if (pct > 100.0) pct = 100.0;
  // Rank of the target sample, 1-based, rounded up.
  const double exact = pct / 100.0 * static_cast<double>(count_);
  uint64_t rank = static_cast<uint64_t>(exact);
  if (static_cast<double>(rank) < exact) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t bucket = 0; bucket <= kNumBuckets; ++bucket) {
    seen += buckets_[bucket];
    if (seen >= rank) {
      // Clamp to the observed extremes so p100 reports max exactly.
      const uint64_t edge = BucketUpperEdge(bucket);
      return edge > max_ ? max_ : edge;
    }
  }
  return max_;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t bucket = 0; bucket <= kNumBuckets; ++bucket) {
    buckets_[bucket] += other.buckets_[bucket];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

const SnapshotMetric* Snapshot::Find(std::string_view app,
                                     std::string_view hook,
                                     std::string_view metric) const {
  auto app_it = apps.find(app);
  if (app_it == apps.end()) return nullptr;
  auto hook_it = app_it->second.find(hook);
  if (hook_it == app_it->second.end()) return nullptr;
  auto metric_it = hook_it->second.find(metric);
  if (metric_it == hook_it->second.end()) return nullptr;
  return &metric_it->second;
}

uint64_t Snapshot::CounterValue(std::string_view app, std::string_view hook,
                                std::string_view metric) const {
  const SnapshotMetric* m = Find(app, hook, metric);
  return m != nullptr && m->kind == SnapshotMetric::Kind::kCounter ? m->counter
                                                                   : 0;
}

int64_t Snapshot::GaugeValue(std::string_view app, std::string_view hook,
                             std::string_view metric) const {
  const SnapshotMetric* m = Find(app, hook, metric);
  return m != nullptr && m->kind == SnapshotMetric::Kind::kGauge ? m->gauge : 0;
}

const HistogramSummary* Snapshot::Histogram(std::string_view app,
                                            std::string_view hook,
                                            std::string_view metric) const {
  const SnapshotMetric* m = Find(app, hook, metric);
  return m != nullptr && m->kind == SnapshotMetric::Kind::kHistogram
             ? &m->histogram
             : nullptr;
}

namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  std::string s = os.str();
  // JSON has no inf/nan; metrics never produce them, but stay valid anyway.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

void AppendMetric(std::string& out, const SnapshotMetric& m) {
  switch (m.kind) {
    case SnapshotMetric::Kind::kCounter:
      out += "{\"type\":\"counter\",\"value\":";
      out += std::to_string(m.counter);
      out += "}";
      return;
    case SnapshotMetric::Kind::kGauge:
      out += "{\"type\":\"gauge\",\"value\":";
      out += std::to_string(m.gauge);
      out += "}";
      return;
    case SnapshotMetric::Kind::kHistogram: {
      const HistogramSummary& h = m.histogram;
      out += "{\"type\":\"histogram\",\"count\":";
      out += std::to_string(h.count);
      out += ",\"min\":";
      out += std::to_string(h.min);
      out += ",\"max\":";
      out += std::to_string(h.max);
      out += ",\"mean\":";
      out += FormatDouble(h.mean);
      out += ",\"p50\":";
      out += std::to_string(h.p50);
      out += ",\"p90\":";
      out += std::to_string(h.p90);
      out += ",\"p99\":";
      out += std::to_string(h.p99);
      out += ",\"p999\":";
      out += std::to_string(h.p999);
      out += "}";
      return;
    }
  }
}

}  // namespace

std::string Snapshot::ToJson(bool pretty) const {
  const char* nl = pretty ? "\n" : "";
  auto indent = [&](std::string& out, int depth) {
    if (pretty) out.append(static_cast<size_t>(depth) * 2, ' ');
  };

  std::string out;
  out += "{";
  out += nl;
  indent(out, 1);
  out += "\"apps\":{";
  out += nl;
  bool first_app = true;
  for (const auto& [app, hooks] : apps) {
    if (!first_app) {
      out += ",";
      out += nl;
    }
    first_app = false;
    indent(out, 2);
    AppendJsonString(out, app);
    out += ":{";
    out += nl;
    bool first_hook = true;
    for (const auto& [hook, metrics] : hooks) {
      if (!first_hook) {
        out += ",";
        out += nl;
      }
      first_hook = false;
      indent(out, 3);
      AppendJsonString(out, hook);
      out += ":{";
      out += nl;
      bool first_metric = true;
      for (const auto& [metric, value] : metrics) {
        if (!first_metric) {
          out += ",";
          out += nl;
        }
        first_metric = false;
        indent(out, 4);
        AppendJsonString(out, metric);
        out += ":";
        AppendMetric(out, value);
      }
      out += nl;
      indent(out, 3);
      out += "}";
    }
    out += nl;
    indent(out, 2);
    out += "}";
  }
  out += nl;
  indent(out, 1);
  out += "}";
  out += nl;
  out += "}";
  return out;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(std::string_view app,
                                                     std::string_view hook,
                                                     std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  if (cell.counter == nullptr) {
    cell.counter = std::make_shared<Counter>();
  }
  return cell.counter;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(std::string_view app,
                                                 std::string_view hook,
                                                 std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  if (cell.gauge == nullptr) {
    cell.gauge = std::make_shared<Gauge>();
  }
  return cell.gauge;
}

std::shared_ptr<LatencyHistogram> MetricsRegistry::GetHistogram(
    std::string_view app, std::string_view hook, std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  if (cell.histogram == nullptr) {
    cell.histogram = std::make_shared<LatencyHistogram>();
  }
  return cell.histogram;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounterShard(
    std::string_view app, std::string_view hook, std::string_view metric,
    int shard) {
  SYRUP_CHECK_GE(shard, 0);
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  auto& shards = cell.counter_shards;
  if (shards.size() <= static_cast<size_t>(shard)) {
    shards.resize(static_cast<size_t>(shard) + 1);
  }
  if (shards[static_cast<size_t>(shard)] == nullptr) {
    shards[static_cast<size_t>(shard)] = std::make_shared<Counter>();
  }
  return shards[static_cast<size_t>(shard)];
}

std::shared_ptr<Gauge> MetricsRegistry::GetGaugeShard(std::string_view app,
                                                      std::string_view hook,
                                                      std::string_view metric,
                                                      int shard) {
  SYRUP_CHECK_GE(shard, 0);
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  auto& shards = cell.gauge_shards;
  if (shards.size() <= static_cast<size_t>(shard)) {
    shards.resize(static_cast<size_t>(shard) + 1);
  }
  if (shards[static_cast<size_t>(shard)] == nullptr) {
    shards[static_cast<size_t>(shard)] = std::make_shared<Gauge>();
  }
  return shards[static_cast<size_t>(shard)];
}

std::shared_ptr<LatencyHistogram> MetricsRegistry::GetHistogramShard(
    std::string_view app, std::string_view hook, std::string_view metric,
    int shard) {
  SYRUP_CHECK_GE(shard, 0);
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell =
      cells_[Key{std::string(app), std::string(hook), std::string(metric)}];
  auto& shards = cell.histogram_shards;
  if (shards.size() <= static_cast<size_t>(shard)) {
    shards.resize(static_cast<size_t>(shard) + 1);
  }
  if (shards[static_cast<size_t>(shard)] == nullptr) {
    shards[static_cast<size_t>(shard)] = std::make_shared<LatencyHistogram>();
  }
  return shards[static_cast<size_t>(shard)];
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [key, cell] : cells_) {
    Snapshot::MetricMap& metrics = snap.apps[key.app][key.hook];
    const bool has_counter =
        cell.counter != nullptr || !cell.counter_shards.empty();
    const bool has_gauge = cell.gauge != nullptr || !cell.gauge_shards.empty();
    // A key can (by convention doesn't) hold several kinds; suffix any
    // beyond the first so none is silently dropped. Shard-local cells fold
    // into the key's single entry: counters/gauges sum, histograms merge.
    if (has_counter) {
      SnapshotMetric m;
      m.kind = SnapshotMetric::Kind::kCounter;
      m.counter = cell.counter != nullptr ? cell.counter->Load() : 0;
      for (const auto& shard : cell.counter_shards) {
        if (shard != nullptr) {
          m.counter += shard->Load();
        }
      }
      metrics[key.metric] = m;
    }
    if (has_gauge) {
      SnapshotMetric m;
      m.kind = SnapshotMetric::Kind::kGauge;
      m.gauge = cell.gauge != nullptr ? cell.gauge->Load() : 0;
      for (const auto& shard : cell.gauge_shards) {
        if (shard != nullptr) {
          m.gauge += shard->Load();
        }
      }
      metrics[has_counter ? key.metric + ".gauge" : key.metric] = m;
    }
    if (cell.histogram != nullptr || !cell.histogram_shards.empty()) {
      LatencyHistogram merged;
      if (cell.histogram != nullptr) {
        merged.MergeFrom(*cell.histogram);
      }
      for (const auto& shard : cell.histogram_shards) {
        if (shard != nullptr) {
          merged.MergeFrom(*shard);
        }
      }
      SnapshotMetric m;
      m.kind = SnapshotMetric::Kind::kHistogram;
      m.histogram.count = merged.count();
      m.histogram.min = merged.min();
      m.histogram.max = merged.max();
      m.histogram.mean = merged.Mean();
      m.histogram.p50 = merged.Percentile(50.0);
      m.histogram.p90 = merged.Percentile(90.0);
      m.histogram.p99 = merged.Percentile(99.0);
      m.histogram.p999 = merged.Percentile(99.9);
      metrics[has_counter || has_gauge ? key.metric + ".histogram"
                                       : key.metric] = m;
    }
  }
  return snap;
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, cell] : cells_) {
    n += (cell.counter != nullptr) + (cell.gauge != nullptr) +
         (cell.histogram != nullptr);
  }
  return n;
}

}  // namespace syrup::obs
