// Shared runtime-memory primitives of the two VM execution engines
// (src/bpf/interpreter.cc and src/bpf/compiler.cc): the region model used
// for defense-in-depth access validation and the unaligned load/store and
// byte-swap helpers whose semantics both engines must match exactly.
#ifndef SYRUP_SRC_BPF_VM_RUNTIME_H_
#define SYRUP_SRC_BPF_VM_RUNTIME_H_

#include <cstdint>
#include <cstring>

namespace syrup::bpf::internal {

// A contiguous byte region the program may touch at runtime.
struct Region {
  uint64_t base;
  uint64_t size;
  bool writable;
};

inline bool RegionContains(const Region& r, uint64_t addr, uint64_t size) {
  return addr >= r.base && size <= r.size && addr - r.base <= r.size - size;
}

inline uint64_t LoadUnaligned(uint64_t addr, int size) {
  uint64_t out = 0;
  std::memcpy(&out, reinterpret_cast<const void*>(addr),
              static_cast<size_t>(size));
  return out;
}

inline void StoreUnaligned(uint64_t addr, uint64_t value, int size) {
  std::memcpy(reinterpret_cast<void*>(addr), &value,
              static_cast<size_t>(size));
}

inline uint64_t ByteSwap(uint64_t v, int width) {
  switch (width) {
    case 16:
      return __builtin_bswap16(static_cast<uint16_t>(v));
    case 32:
      return __builtin_bswap32(static_cast<uint32_t>(v));
    case 64:
      return __builtin_bswap64(v);
  }
  return v;
}

}  // namespace syrup::bpf::internal

#endif  // SYRUP_SRC_BPF_VM_RUNTIME_H_
