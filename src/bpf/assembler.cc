#include "src/bpf/assembler.h"

#include <charconv>
#include <map>
#include <optional>
#include <sstream>

namespace syrup::bpf {
namespace {

// Decision constants mirrored from src/core/decision.h (kept numerically
// identical; a static_assert in core enforces it).
constexpr uint64_t kPassImm = 0xFFFFFFFF;
constexpr uint64_t kDropImm = 0xFFFFFFFE;

struct Token {
  std::string text;
};

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ';' || c == '#') {
      break;  // comment
    }
    if (c == ',' || c == ' ' || c == '\t') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

bool ParseInt(std::string_view text, int64_t* out) {
  if (text == "PASS") {
    *out = static_cast<int64_t>(kPassImm);
    return true;
  }
  if (text == "DROP") {
    *out = static_cast<int64_t>(kDropImm);
    return true;
  }
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  }
  uint64_t magnitude = 0;
  const auto [ptr, ec] = std::from_chars(
      text.data(), text.data() + text.size(), magnitude, base);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool ParseReg(std::string_view text, uint8_t* out) {
  if (text.size() < 2 || text[0] != 'r') {
    return false;
  }
  int64_t n;
  if (!ParseInt(text.substr(1), &n) || n < 0 || n >= kNumRegisters) {
    return false;
  }
  *out = static_cast<uint8_t>(n);
  return true;
}

// Parses "[rN+off]" / "[rN-off]" / "[rN]".
bool ParseMem(std::string_view text, uint8_t* reg, int16_t* off) {
  if (text.size() < 4 || text.front() != '[' || text.back() != ']') {
    return false;
  }
  text = text.substr(1, text.size() - 2);
  size_t split = text.find_first_of("+-", 1);
  std::string_view reg_part = text.substr(0, split);
  if (!ParseReg(reg_part, reg)) {
    return false;
  }
  if (split == std::string_view::npos) {
    *off = 0;
    return true;
  }
  int64_t n;
  if (!ParseInt(text.substr(split), &n) || n < INT16_MIN || n > INT16_MAX) {
    return false;
  }
  *off = static_cast<int16_t>(n);
  return true;
}

std::optional<HelperId> HelperByName(std::string_view name) {
  if (name == "map_lookup_elem") return HelperId::kMapLookupElem;
  if (name == "map_update_elem") return HelperId::kMapUpdateElem;
  if (name == "map_delete_elem") return HelperId::kMapDeleteElem;
  if (name == "get_prandom_u32") return HelperId::kGetPrandomU32;
  if (name == "ktime_get_ns") return HelperId::kKtimeGetNs;
  if (name == "tail_call") return HelperId::kTailCall;
  if (name == "map_lookup_batch") return HelperId::kMapLookupBatch;
  return std::nullopt;
}

// dst-src ALU ops where the second operand picks Reg vs Imm flavor.
std::optional<std::pair<Op, Op>> BinAluOps(std::string_view mnemonic) {
  if (mnemonic == "add") return {{Op::kAddReg, Op::kAddImm}};
  if (mnemonic == "sub") return {{Op::kSubReg, Op::kSubImm}};
  if (mnemonic == "mul") return {{Op::kMulReg, Op::kMulImm}};
  if (mnemonic == "div") return {{Op::kDivReg, Op::kDivImm}};
  if (mnemonic == "mod") return {{Op::kModReg, Op::kModImm}};
  if (mnemonic == "or") return {{Op::kOrReg, Op::kOrImm}};
  if (mnemonic == "and") return {{Op::kAndReg, Op::kAndImm}};
  if (mnemonic == "lsh") return {{Op::kLshReg, Op::kLshImm}};
  if (mnemonic == "rsh") return {{Op::kRshReg, Op::kRshImm}};
  if (mnemonic == "arsh") return {{Op::kArshReg, Op::kArshImm}};
  if (mnemonic == "mov") return {{Op::kMovReg, Op::kMovImm}};
  if (mnemonic == "mov32") return {{Op::kMov32Reg, Op::kMov32Imm}};
  return std::nullopt;
}

std::optional<std::pair<Op, Op>> CondJumpOps(std::string_view mnemonic) {
  if (mnemonic == "jeq") return {{Op::kJeqReg, Op::kJeqImm}};
  if (mnemonic == "jne") return {{Op::kJneReg, Op::kJneImm}};
  if (mnemonic == "jgt") return {{Op::kJgtReg, Op::kJgtImm}};
  if (mnemonic == "jge") return {{Op::kJgeReg, Op::kJgeImm}};
  if (mnemonic == "jlt") return {{Op::kJltReg, Op::kJltImm}};
  if (mnemonic == "jle") return {{Op::kJleReg, Op::kJleImm}};
  if (mnemonic == "jsgt") return {{Op::kJsgtReg, Op::kJsgtImm}};
  if (mnemonic == "jsge") return {{Op::kJsgeReg, Op::kJsgeImm}};
  if (mnemonic == "jslt") return {{Op::kJsltReg, Op::kJsltImm}};
  if (mnemonic == "jsle") return {{Op::kJsleReg, Op::kJsleImm}};
  if (mnemonic == "jset") return {{Op::kJsetReg, Op::kJsetImm}};
  return std::nullopt;
}

std::optional<Op> LoadOpByName(std::string_view m) {
  if (m == "ldxb") return Op::kLdxB;
  if (m == "ldxh") return Op::kLdxH;
  if (m == "ldxw") return Op::kLdxW;
  if (m == "ldxdw") return Op::kLdxDW;
  return std::nullopt;
}

std::optional<Op> StoreRegOpByName(std::string_view m) {
  if (m == "stxb") return Op::kStxB;
  if (m == "stxh") return Op::kStxH;
  if (m == "stxw") return Op::kStxW;
  if (m == "stxdw") return Op::kStxDW;
  if (m == "xadddw") return Op::kAtomicAddDW;
  return std::nullopt;
}

std::optional<Op> StoreImmOpByName(std::string_view m) {
  if (m == "stb") return Op::kStB;
  if (m == "sth") return Op::kStH;
  if (m == "stw") return Op::kStW;
  if (m == "stdw") return Op::kStDW;
  return std::nullopt;
}

std::optional<MapType> MapTypeByName(std::string_view name) {
  if (name == "array") return MapType::kArray;
  if (name == "hash") return MapType::kHash;
  if (name == "prog_array") return MapType::kProgArray;
  return std::nullopt;
}

// A not-yet-resolved jump: instruction index + label name.
struct PendingJump {
  size_t insn_index;
  std::string label;
  int line_no;
};

}  // namespace

StatusOr<AssembledProgram> Assemble(std::string_view source) {
  AssembledProgram out;
  out.name = "anonymous";

  std::map<std::string, size_t> labels;        // label -> insn index
  std::map<std::string, size_t> map_indices;   // map name -> slot
  std::vector<PendingJump> pending_jumps;

  int line_no = 0;
  std::istringstream stream{std::string(source)};
  std::string raw_line;

  auto error = [&](const std::string& why) {
    return InvalidArgumentError("asm line " + std::to_string(line_no) + ": " +
                                why);
  };

  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(raw_line);
    if (tokens.empty()) {
      continue;
    }

    // Directives.
    if (tokens[0][0] == '.') {
      const std::string& directive = tokens[0];
      if (directive == ".name") {
        if (tokens.size() != 2) {
          return error(".name requires one argument");
        }
        out.name = tokens[1];
      } else if (directive == ".ctx") {
        if (tokens.size() != 2 ||
            (tokens[1] != "packet" && tokens[1] != "thread")) {
          return error(".ctx requires 'packet' or 'thread'");
        }
        out.context = tokens[1] == "packet" ? ProgramContext::kPacket
                                            : ProgramContext::kThread;
      } else if (directive == ".map") {
        if (tokens.size() != 6) {
          return error(".map requires: name type key_size value_size entries");
        }
        MapSlot slot;
        slot.name = tokens[1];
        const auto type = MapTypeByName(tokens[2]);
        if (!type.has_value()) {
          return error("unknown map type '" + tokens[2] + "'");
        }
        slot.spec.type = *type;
        slot.spec.name = slot.name;
        int64_t key_size, value_size, entries;
        if (!ParseInt(tokens[3], &key_size) ||
            !ParseInt(tokens[4], &value_size) ||
            !ParseInt(tokens[5], &entries) || key_size <= 0 ||
            value_size <= 0 || entries <= 0) {
          return error("bad map sizes");
        }
        slot.spec.key_size = static_cast<uint32_t>(key_size);
        slot.spec.value_size = static_cast<uint32_t>(value_size);
        slot.spec.max_entries = static_cast<uint32_t>(entries);
        if (!map_indices.emplace(slot.name, out.map_slots.size()).second) {
          return error("duplicate map name '" + slot.name + "'");
        }
        out.map_slots.push_back(std::move(slot));
      } else if (directive == ".extern_map") {
        if (tokens.size() != 3) {
          return error(".extern_map requires: name path");
        }
        MapSlot slot;
        slot.name = tokens[1];
        slot.is_extern = true;
        slot.path = tokens[2];
        if (!map_indices.emplace(slot.name, out.map_slots.size()).second) {
          return error("duplicate map name '" + slot.name + "'");
        }
        out.map_slots.push_back(std::move(slot));
      } else {
        return error("unknown directive '" + directive + "'");
      }
      continue;
    }

    // Labels.
    if (tokens[0].back() == ':') {
      std::string label = tokens[0].substr(0, tokens[0].size() - 1);
      if (label.empty() ||
          !labels.emplace(std::move(label), out.insns.size()).second) {
        return error("bad or duplicate label");
      }
      if (tokens.size() > 1) {
        return error("label must be on its own line");
      }
      continue;
    }

    // Instructions.
    const std::string& mnemonic = tokens[0];
    Insn insn;

    auto parse_jump_target = [&](const std::string& target) -> Status {
      int64_t rel;
      if ((target[0] == '+' || target[0] == '-') && ParseInt(target, &rel)) {
        insn.off = static_cast<int16_t>(rel);
        return OkStatus();
      }
      pending_jumps.push_back(PendingJump{out.insns.size(), target, line_no});
      return OkStatus();
    };

    if (mnemonic == "exit") {
      insn.op = Op::kExit;
    } else if (mnemonic == "call") {
      if (tokens.size() != 2) {
        return error("call requires one argument");
      }
      insn.op = Op::kCall;
      if (auto helper = HelperByName(tokens[1]); helper.has_value()) {
        insn.imm = static_cast<int64_t>(*helper);
      } else {
        int64_t id;
        if (!ParseInt(tokens[1], &id)) {
          return error("unknown helper '" + tokens[1] + "'");
        }
        insn.imm = id;
      }
    } else if (mnemonic == "ja") {
      if (tokens.size() != 2) {
        return error("ja requires a target");
      }
      insn.op = Op::kJa;
      SYRUP_RETURN_IF_ERROR(parse_jump_target(tokens[1]));
    } else if (mnemonic == "ldmapfd") {
      if (tokens.size() != 3 || !ParseReg(tokens[1], &insn.dst)) {
        return error("ldmapfd requires: rD, map_name");
      }
      insn.op = Op::kLdMapFd;
      auto it = map_indices.find(tokens[2]);
      if (it == map_indices.end()) {
        return error("unknown map '" + tokens[2] + "'");
      }
      insn.imm = static_cast<int64_t>(it->second);
    } else if (mnemonic == "neg" || mnemonic == "be16" || mnemonic == "be32" ||
               mnemonic == "be64") {
      if (tokens.size() != 2 || !ParseReg(tokens[1], &insn.dst)) {
        return error(mnemonic + " requires one register");
      }
      insn.op = mnemonic == "neg"    ? Op::kNeg
                : mnemonic == "be16" ? Op::kBe16
                : mnemonic == "be32" ? Op::kBe32
                                     : Op::kBe64;
    } else if (auto alu = BinAluOps(mnemonic); alu.has_value()) {
      if (tokens.size() != 3 || !ParseReg(tokens[1], &insn.dst)) {
        return error(mnemonic + " requires: rD, rS|imm");
      }
      if (ParseReg(tokens[2], &insn.src)) {
        insn.op = alu->first;
      } else if (int64_t imm; ParseInt(tokens[2], &imm)) {
        insn.op = alu->second;
        insn.imm = imm;
      } else {
        return error("bad operand '" + tokens[2] + "'");
      }
    } else if (auto jmp = CondJumpOps(mnemonic); jmp.has_value()) {
      if (tokens.size() != 4 || !ParseReg(tokens[1], &insn.dst)) {
        return error(mnemonic + " requires: rD, rS|imm, target");
      }
      if (ParseReg(tokens[2], &insn.src)) {
        insn.op = jmp->first;
      } else if (int64_t imm; ParseInt(tokens[2], &imm)) {
        insn.op = jmp->second;
        insn.imm = imm;
      } else {
        return error("bad operand '" + tokens[2] + "'");
      }
      SYRUP_RETURN_IF_ERROR(parse_jump_target(tokens[3]));
    } else if (auto load = LoadOpByName(mnemonic); load.has_value()) {
      if (tokens.size() != 3 || !ParseReg(tokens[1], &insn.dst) ||
          !ParseMem(tokens[2], &insn.src, &insn.off)) {
        return error(mnemonic + " requires: rD, [rS+off]");
      }
      insn.op = *load;
    } else if (auto store = StoreRegOpByName(mnemonic); store.has_value()) {
      if (tokens.size() != 3 || !ParseMem(tokens[1], &insn.dst, &insn.off) ||
          !ParseReg(tokens[2], &insn.src)) {
        return error(mnemonic + " requires: [rD+off], rS");
      }
      insn.op = *store;
    } else if (auto store_imm = StoreImmOpByName(mnemonic);
               store_imm.has_value()) {
      int64_t imm;
      if (tokens.size() != 3 || !ParseMem(tokens[1], &insn.dst, &insn.off) ||
          !ParseInt(tokens[2], &imm)) {
        return error(mnemonic + " requires: [rD+off], imm");
      }
      insn.op = *store_imm;
      insn.imm = imm;
    } else {
      return error("unknown mnemonic '" + mnemonic + "'");
    }

    out.insns.push_back(insn);
  }

  // Resolve labels.
  for (const PendingJump& jump : pending_jumps) {
    auto it = labels.find(jump.label);
    if (it == labels.end()) {
      return InvalidArgumentError("asm line " + std::to_string(jump.line_no) +
                                  ": unknown label '" + jump.label + "'");
    }
    const int64_t rel = static_cast<int64_t>(it->second) -
                        (static_cast<int64_t>(jump.insn_index) + 1);
    if (rel < INT16_MIN || rel > INT16_MAX) {
      return InvalidArgumentError("jump to '" + jump.label + "' out of range");
    }
    out.insns[jump.insn_index].off = static_cast<int16_t>(rel);
  }

  if (out.insns.empty()) {
    return InvalidArgumentError("program has no instructions");
  }
  return out;
}

}  // namespace syrup::bpf
