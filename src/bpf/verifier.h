// Static verifier for policy programs (paper §4.3, "eBPF Isolation").
//
// Simulates execution one instruction at a time over an abstract state,
// exploring both sides of every data-dependent branch, and rejects programs
// that could:
//   * read uninitialized registers or stack bytes,
//   * access a packet without an explicit bounds check against pkt_end,
//   * dereference a map value without a NULL check,
//   * access outside the stack or a map value,
//   * write to read-only memory (packets, r10),
//   * fall off the end of the program, or
//   * exceed the exploration budget (guarantees liveness; only bounded
//     loops pass, matching the paper's "up to 1 million instructions").
#ifndef SYRUP_SRC_BPF_VERIFIER_H_
#define SYRUP_SRC_BPF_VERIFIER_H_

#include <cstdint>

#include "src/bpf/program.h"
#include "src/common/status.h"

namespace syrup::bpf {

enum class ProgramContext {
  kPacket,  // r1 = pkt_start, r2 = pkt_end
  kThread,  // r1 = thread id (scalar), r2 = message type (scalar)
};

struct VerifierOptions {
  // Maximum (state, instruction) visits before rejecting for liveness.
  uint64_t max_visited_insns = 1'000'000;
  // Maximum branch states queued at once.
  size_t max_pending_states = 16'384;
};

struct VerifierStats {
  uint64_t visited_insns = 0;
  uint64_t branch_states = 0;
};

// Verifies `prog` for the given context. On rejection the Status message
// names the offending instruction and reason.
Status Verify(const Program& prog, ProgramContext context,
              const VerifierOptions& options = {},
              VerifierStats* stats = nullptr);

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_VERIFIER_H_
