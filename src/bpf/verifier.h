// Static verifier for policy programs (paper §4.3, "eBPF Isolation").
//
// Abstract interpretation over a per-register domain of
//   * unsigned and signed intervals [umin, umax] / [smin, smax], and
//   * known bits (a tnum: `value` holds the known bit values, `mask` the
//     unknown bits),
// propagated through every ALU op and narrowed at conditional branches
// (`if (off < 64)` refines the ranges on both edges), so bounded
// variable-offset packet and map-value accesses are provable. Every
// data-dependent branch forks the abstract state; join points (jump
// targets) keep the states already verified there and prune any new state
// that a completed state subsumes, which caps the exploration cost of
// branchy programs.
//
// Rejection classes:
//   * read of an uninitialized register or stack byte,
//   * packet access outside the range proven against pkt_end,
//   * map value dereference without a NULL check, or out of bounds,
//   * stack access out of bounds, write to read-only memory (packet, r10),
//   * pointer arithmetic or comparisons that would launder a pointer,
//   * falling off the end of the program, or
//   * exceeding the exploration budget (guarantees liveness; only bounded
//     loops pass, matching the paper's "up to 1 million instructions").
//
// Verify() is the boolean deploy gate. VerifyAll() is the lint engine: it
// keeps exploring after path errors and layers a warning catalog on top
// (dead code, statically decided branches, map lookups never NULL-checked,
// stack bytes written but never read), each diagnostic carrying the pc and
// the disassembled instruction.
#ifndef SYRUP_SRC_BPF_VERIFIER_H_
#define SYRUP_SRC_BPF_VERIFIER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/bpf/cost_model.h"
#include "src/bpf/program.h"
#include "src/common/status.h"

namespace syrup::bpf {

enum class ProgramContext {
  kPacket,  // r1 = pkt_start, r2 = pkt_end
  kThread,  // r1 = thread id (scalar), r2 = message type (scalar)
};

struct VerifierOptions {
  // Maximum (state, instruction) visits before rejecting for liveness.
  uint64_t max_visited_insns = 1'000'000;
  // Maximum branch states queued at once.
  size_t max_pending_states = 16'384;
  // State-subsumption pruning: at join points, a state covered by an
  // already fully-explored state is not re-explored. Off reproduces the
  // exhaustive per-path exploration (useful to measure the saving).
  bool prune = true;
  // Memory bound: states remembered per join point. Past the cap new
  // states still verify, they just cannot prune later arrivals.
  size_t max_states_per_prune_point = 32;
  // Keep exploring sibling paths after a path fails so every distinct
  // error is collected (lint mode). Off: stop at the first error.
  bool keep_going = false;
  // Cap on collected diagnostics in keep_going mode.
  size_t max_diagnostics = 64;
  // Run the post-acceptance cost pass (fills AnalysisFacts::cost and the
  // path-over-budget lint). The pass re-explores feasible paths with
  // cost-dominance-strengthened pruning; if it exhausts the exploration
  // budget it degrades to cost.bounded = false, never a rejection.
  bool compute_cost = true;
  // Cost tables for the pass; null means DefaultCostModel(). Must outlive
  // the Verify call.
  const CostModel* cost_model = nullptr;
};

struct VerifierStats {
  uint64_t visited_insns = 0;
  uint64_t branch_states = 0;
  uint64_t pruned_states = 0;  // paths cut by the subsumption check
  uint64_t verify_ns = 0;      // wall time spent in the analysis
};

// Per-instruction facts from a successful verification, consumed by the
// compiler: instructions never reached on any feasible path are dead, and
// a conditional branch whose edges were only ever resolved one way can be
// rewritten to an unconditional jump (or dropped). Both vectors are sized
// to the program; `edges` is meaningful for conditional jumps only.
//
// The purity summary feeds the flow-decision cache (docs/DESIGN.md): a
// packet program is `cacheable` iff its result is a pure function of the
// packet bytes it reads plus the current contents of the maps it reads —
// no map writes/deletes, no randomness, no clock reads, no tail calls,
// and every packet read at a statically bounded offset below 64 bytes.
// `pkt_read_mask` (bit i set = packet byte i may be read on some path)
// plus the packet length then form an exact memoization key, and
// `read_maps` names the program map indices whose version stamps must be
// folded into each cached entry's invalidation signature.
//
// NOTE: `read_maps` is NOT the complete map footprint — it only names
// lookup targets. The full footprint is read_maps + write_maps +
// atomic_maps; consumers reasoning about side effects (the flow cache's
// purity check, the deployment interference analysis) must consult the
// write sets explicitly.
//
// One reason a packet program cannot be memoized per flow, anchored to the
// instruction that introduced the impurity.
struct CacheBlocker {
  uint32_t pc = 0;
  std::string reason;
};

struct AnalysisFacts {
  static constexpr uint8_t kEdgeFall = 1;   // fall-through edge feasible
  static constexpr uint8_t kEdgeTaken = 2;  // taken edge feasible
  // Packet offsets the read-set summary can express. Programs touching
  // bytes at or past this offset are conservatively uncacheable.
  static constexpr int64_t kMaxTrackedPktBytes = 64;

  std::vector<uint8_t> visited;  // reached on some verified path
  std::vector<uint8_t> edges;    // OR of feasible edges per cond jump

  // --- purity / read-set summary (flow-decision cache) -------------------
  bool cacheable = false;          // decision memoizable per flow key
  uint64_t pkt_read_mask = 0;      // bit i: packet byte i may be read
  std::vector<int32_t> read_maps;  // program map indices read via lookup

  // --- side-effect summary (deployment interference analysis) ------------
  // Map indices mutated via map_update_elem/map_delete_elem or stores
  // through looked-up value pointers; `atomic_maps` is the subset mutated
  // with lock xadd through value pointers (in-place, bypasses version
  // stamps). Sorted, deduplicated, may overlap read_maps.
  std::vector<int32_t> write_maps;
  std::vector<int32_t> atomic_maps;
  // Why this program is not flow-cacheable (empty when cacheable, or when
  // the cause is context-level — thread programs are never cached).
  std::vector<CacheBlocker> cache_blockers;

  // --- cost summary (post-acceptance WCET pass, see cost_model.h) --------
  // cost.bounded is false when the pass was skipped (compute_cost off),
  // gave up, or verification failed.
  CostFacts cost;

  bool empty() const { return visited.empty(); }
};

enum class DiagSeverity : uint8_t { kError, kWarning };

std::string_view DiagSeverityName(DiagSeverity severity);

// One finding with instruction-level provenance.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  size_t pc = 0;
  std::string insn;     // disassembly of insns[pc]; empty if pc is invalid
  std::string message;  // prose reason
};

// "verifier: <message> at insn <pc> (<insn>) in program '<name>'" — the
// exact string Verify() puts in its Status, so every tool prints one
// format. Warnings say "verifier warning:".
std::string FormatDiagnostic(const Diagnostic& diag,
                             const std::string& program_name);

// Full lint result: every distinct error reachable on some explored path,
// then the warning catalog, ordered errors-first.
struct VerifyReport {
  std::string program;
  std::vector<Diagnostic> diagnostics;
  VerifierStats stats;
  AnalysisFacts facts;  // populated only when ok()

  bool ok() const;        // no error-severity diagnostics
  Status status() const;  // OkStatus() or the first error, formatted
};

// Verifies `prog` for the given context. On rejection the Status message
// names the offending instruction (with disassembly) and reason. `stats`
// and `facts` are filled when non-null (facts only on success).
Status Verify(const Program& prog, ProgramContext context,
              const VerifierOptions& options = {},
              VerifierStats* stats = nullptr, AnalysisFacts* facts = nullptr);

// Lint entry point: forces keep_going and returns everything it found.
VerifyReport VerifyAll(const Program& prog, ProgramContext context,
                       VerifierOptions options = {});

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_VERIFIER_H_
