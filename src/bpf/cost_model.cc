#include "src/bpf/cost_model.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <sstream>
#include <utility>

#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/jit.h"
#include "src/bpf/program.h"

namespace syrup::bpf {

std::string_view CostTierName(CostTier tier) {
  switch (tier) {
    case CostTier::kInterpret: return "interpret";
    case CostTier::kCompiled: return "compiled";
    case CostTier::kNative: return "native";
  }
  return "?";
}

CostTier CostTierOf(ExecMode mode) {
  switch (mode) {
    case ExecMode::kInterpret: return CostTier::kInterpret;
    case ExecMode::kCompiled: return CostTier::kCompiled;
    case ExecMode::kCompiledParanoid: return CostTier::kCompiled;
    case ExecMode::kNative: return CostTier::kNative;
  }
  return CostTier::kInterpret;
}

double CostModel::HelperNs(HelperId helper, MapType map_type,
                           uint32_t batch_count) const {
  const auto kind = static_cast<size_t>(map_type);
  switch (helper) {
    case HelperId::kMapLookupElem: return lookup_ns[kind];
    case HelperId::kMapUpdateElem: return update_ns[kind];
    case HelperId::kMapDeleteElem: return delete_ns[kind];
    case HelperId::kGetPrandomU32: return random_ns;
    case HelperId::kKtimeGetNs: return ktime_ns;
    case HelperId::kTailCall: return tail_call_ns;
    case HelperId::kMapLookupBatch:
      // n independent probes is the upper bound; the pipeline only hides
      // memory latency, it never does more work than n single lookups.
      return lookup_ns[kind] * batch_count;
  }
  return 0;
}

double CostModel::InsnNs(const Insn& insn, MapType helper_map_type,
                         CostTier tier, uint32_t batch_count) const {
  double ns = op_ns[static_cast<size_t>(tier)][static_cast<size_t>(insn.op)];
  if (insn.op == Op::kCall) {
    ns += HelperNs(static_cast<HelperId>(insn.imm), helper_map_type,
                   batch_count);
  }
  return ns;
}

namespace {

// Coarse opcode classes: every member of a class costs the same at a given
// tier. Finer distinctions than this are below measurement noise.
enum class OpClass {
  kInvalid,
  kAluCheap,  // add/sub/or/and/shift/neg
  kMul,
  kDivMod,
  kMov,
  kSwap,
  kMem,     // ldx/stx/st
  kAtomic,  // lock xadd
  kJa,
  kCondJump,
  kCall,  // dispatch + calling convention only (body priced separately)
  kExit,
  kLdMapFd,
};

OpClass ClassOf(Op op) {
  switch (op) {
    case Op::kInvalid:
      return OpClass::kInvalid;
    case Op::kMulReg: case Op::kMulImm:
      return OpClass::kMul;
    case Op::kDivReg: case Op::kDivImm:
    case Op::kModReg: case Op::kModImm:
      return OpClass::kDivMod;
    case Op::kMovReg: case Op::kMovImm:
    case Op::kMov32Reg: case Op::kMov32Imm:
      return OpClass::kMov;
    case Op::kBe16: case Op::kBe32: case Op::kBe64:
      return OpClass::kSwap;
    case Op::kAtomicAddDW:
      return OpClass::kAtomic;
    case Op::kJa:
      return OpClass::kJa;
    case Op::kCall:
      return OpClass::kCall;
    case Op::kExit:
      return OpClass::kExit;
    case Op::kLdMapFd:
      return OpClass::kLdMapFd;
    default:
      if (IsLoadOp(op) || IsStoreOp(op)) return OpClass::kMem;
      if (IsCondJumpOp(op)) return OpClass::kCondJump;
      return OpClass::kAluCheap;  // remaining ALU64 ops incl. kNeg
  }
}

struct TierCosts {
  double alu, mul, divmod, mov, swap, mem, atomic, ja, jcc, call, exit, ldmapfd;
};

void FillTier(double* table, const TierCosts& c) {
  for (size_t i = 0; i < kNumOps; ++i) {
    double ns = 0;
    switch (ClassOf(static_cast<Op>(i))) {
      case OpClass::kInvalid: ns = 0; break;
      case OpClass::kAluCheap: ns = c.alu; break;
      case OpClass::kMul: ns = c.mul; break;
      case OpClass::kDivMod: ns = c.divmod; break;
      case OpClass::kMov: ns = c.mov; break;
      case OpClass::kSwap: ns = c.swap; break;
      case OpClass::kMem: ns = c.mem; break;
      case OpClass::kAtomic: ns = c.atomic; break;
      case OpClass::kJa: ns = c.ja; break;
      case OpClass::kCondJump: ns = c.jcc; break;
      case OpClass::kCall: ns = c.call; break;
      case OpClass::kExit: ns = c.exit; break;
      case OpClass::kLdMapFd: ns = c.ldmapfd; break;
    }
    table[i] = ns;
  }
}

CostModel MakeDefaultCostModel() {
  CostModel m;
  // Per-op dispatch costs, upper bounds for an unloaded modern x86-64 host.
  // interpret: switch dispatch + runtime region checks per memory op.
  FillTier(m.op_ns[static_cast<size_t>(CostTier::kInterpret)],
           {.alu = 4.0, .mul = 5.0, .divmod = 12.0, .mov = 3.5, .swap = 4.0,
            .mem = 6.0, .atomic = 12.0, .ja = 3.5, .jcc = 4.5, .call = 10.0,
            .exit = 2.0, .ldmapfd = 4.0});
  // compiled: pre-decoded computed-goto dispatch, checks elided.
  FillTier(m.op_ns[static_cast<size_t>(CostTier::kCompiled)],
           {.alu = 1.4, .mul = 1.8, .divmod = 8.0, .mov = 1.2, .swap = 1.4,
            .mem = 2.0, .atomic = 8.0, .ja = 1.2, .jcc = 1.7, .call = 5.0,
            .exit = 1.0, .ldmapfd = 1.4});
  // native: copy-and-patch machine code; calls go through helper
  // trampolines (register save/restore priced into the call cost).
  FillTier(m.op_ns[static_cast<size_t>(CostTier::kNative)],
           {.alu = 0.5, .mul = 0.8, .divmod = 6.0, .mov = 0.45, .swap = 0.5,
            .mem = 0.9, .atomic = 7.0, .ja = 0.45, .jcc = 0.7, .call = 3.5,
            .exit = 0.5, .ldmapfd = 0.5});
  m.exec_overhead_ns[static_cast<size_t>(CostTier::kInterpret)] = 60.0;
  m.exec_overhead_ns[static_cast<size_t>(CostTier::kCompiled)] = 45.0;
  m.exec_overhead_ns[static_cast<size_t>(CostTier::kNative)] = 35.0;

  // Helper bodies (host C++, tier-independent). Hash maps pay the probe
  // chain; per-CPU arrays pay the shard indirection.
  const auto kind = [](MapType t) { return static_cast<size_t>(t); };
  m.lookup_ns[kind(MapType::kArray)] = 6.0;
  m.lookup_ns[kind(MapType::kHash)] = 25.0;
  m.lookup_ns[kind(MapType::kProgArray)] = 6.0;
  m.lookup_ns[kind(MapType::kPerCpuArray)] = 10.0;
  m.update_ns[kind(MapType::kArray)] = 14.0;
  m.update_ns[kind(MapType::kHash)] = 45.0;
  m.update_ns[kind(MapType::kProgArray)] = 14.0;
  m.update_ns[kind(MapType::kPerCpuArray)] = 18.0;
  m.delete_ns[kind(MapType::kArray)] = 14.0;
  m.delete_ns[kind(MapType::kHash)] = 40.0;
  m.delete_ns[kind(MapType::kProgArray)] = 14.0;
  m.delete_ns[kind(MapType::kPerCpuArray)] = 18.0;
  m.random_ns = 12.0;
  m.ktime_ns = 10.0;
  m.tail_call_ns = 25.0;
  return m;
}

// ---- Calibration --------------------------------------------------------

// r0 = r1; then `adds` data-dependent additions (r1 is a runtime scalar, so
// the compiled tier cannot fold the chain away); exit.
Program MakeAluProgram(std::string name, int adds) {
  Program p;
  p.name = std::move(name);
  p.insns.push_back({Op::kMovReg, 0, 1, 0, 0});
  for (int i = 0; i < adds; ++i) {
    p.insns.push_back({Op::kAddReg, 0, 1, 0, 0});
  }
  p.insns.push_back({Op::kExit, 0, 0, 0, 0});
  return p;
}

// `blocks` repetitions of {ldmapfd r1; r2 = r10 - 4; [call helper]} against
// map 0, with the 4-byte key at r10-4 (and, for update, an 8-byte value at
// r10-16) initialized up front. With `with_calls` false the call is replaced
// by a mov so subtracting the two runs isolates call + helper body cost.
Program MakeHelperProgram(std::string name, HelperId helper, int blocks,
                          bool with_calls, std::shared_ptr<Map> map) {
  Program p;
  p.name = std::move(name);
  p.maps.push_back(std::move(map));
  p.insns.push_back({Op::kStW, 10, 0, -4, 1});     // key = 1
  p.insns.push_back({Op::kStDW, 10, 0, -16, 5});   // value = 5
  for (int i = 0; i < blocks; ++i) {
    p.insns.push_back({Op::kLdMapFd, 1, 0, 0, 0});
    p.insns.push_back({Op::kMovReg, 2, 10, 0, 0});
    p.insns.push_back({Op::kAddImm, 2, 0, 0, -4});
    if (helper == HelperId::kMapUpdateElem) {
      p.insns.push_back({Op::kMovReg, 3, 10, 0, 0});
      p.insns.push_back({Op::kAddImm, 3, 0, 0, -16});
    }
    if (with_calls) {
      p.insns.push_back({Op::kCall, 0, 0, 0, static_cast<int64_t>(helper)});
    } else {
      p.insns.push_back({Op::kMovImm, 0, 0, 0, 0});
    }
  }
  p.insns.push_back({Op::kMovImm, 0, 0, 0, 0});
  p.insns.push_back({Op::kExit, 0, 0, 0, 0});
  return p;
}

// Best-of-`reps` average ns per call of `run` over `iters` iterations.
template <typename F>
double MinNsPerCall(F&& run, int iters, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        iters;
    best = std::min(best, ns);
  }
  return best;
}

struct TierMeasurement {
  bool ok = false;
  double per_insn_ns = 0;
  double overhead_ns = 0;
};

TierMeasurement MeasureAluTier(CostTier tier) {
  TierMeasurement out;
  const Program tiny = MakeAluProgram("cal_tiny", 0);     // 2 insns
  const Program chain = MakeAluProgram("cal_chain", 256); // 258 insns
  const double n_tiny = 2.0;
  const double n_chain = 258.0;
  uint64_t sink = 0;
  double t_tiny = 0;
  double t_chain = 0;

  if (tier == CostTier::kInterpret) {
    Interpreter interp{ExecEnv{}};
    auto run = [&](const Program& p) {
      auto r = interp.Run(p, 3, 7, /*args_are_packet=*/false);
      if (r.ok()) sink += r->r0;
    };
    t_tiny = MinNsPerCall([&] { run(tiny); }, 20000, 3);
    t_chain = MinNsPerCall([&] { run(chain); }, 2000, 3);
  } else {
    auto ct = Compile(tiny, ProgramContext::kThread);
    auto cc = Compile(chain, ProgramContext::kThread);
    if (!ct.ok() || !cc.ok()) return out;
    if (tier == CostTier::kNative) {
      auto nt = JitCompile(*ct);
      auto nc = JitCompile(*cc);
      if (!nt.ok() || !nc.ok()) return out;  // fall back to compiled numbers
      ct->native = *nt;
      cc->native = *nc;
    }
    CompiledExecutor exec{ExecEnv{}};
    auto run = [&](const CompiledProgram& p) {
      auto r = exec.Run(p, 3, 7, /*args_are_packet=*/false);
      if (r.ok()) sink += r->r0;
    };
    t_tiny = MinNsPerCall([&] { run(*ct); }, 20000, 3);
    t_chain = MinNsPerCall([&] { run(*cc); }, 2000, 3);
  }
  (void)sink;
  out.per_insn_ns = std::max(0.0, (t_chain - t_tiny) / (n_chain - n_tiny));
  out.overhead_ns = std::max(0.0, t_tiny - n_tiny * out.per_insn_ns);
  out.ok = true;
  return out;
}

// Measured call-dispatch + helper-body cost at the interpreter tier (bodies
// are tier-independent host C++). Returns < 0 on failure.
double MeasureHelperNs(HelperId helper, MapType map_type) {
  MapSpec spec;
  spec.type = map_type;
  spec.key_size = 4;
  spec.value_size = 8;
  spec.max_entries = 64;
  spec.name = "cal_map";
  auto map = CreateMap(spec);
  if (!map.ok()) return -1;
  {
    // Seed the probed key so lookups measure the hit path.
    const uint32_t key = 1;
    const uint64_t value = 5;
    (void)(*map)->Update(&key, &value, UpdateFlag::kAny);
  }
  const int kBlocks = 8;
  const Program with = MakeHelperProgram("cal_helper", helper, kBlocks,
                                         /*with_calls=*/true, *map);
  const Program without = MakeHelperProgram("cal_base", helper, kBlocks,
                                            /*with_calls=*/false, *map);
  Interpreter interp{ExecEnv{}};
  uint64_t sink = 0;
  auto run = [&](const Program& p) {
    auto r = interp.Run(p, 0, 0, /*args_are_packet=*/false);
    if (r.ok()) sink += r->r0;
  };
  const double t_with = MinNsPerCall([&] { run(with); }, 4000, 3);
  const double t_without = MinNsPerCall([&] { run(without); }, 4000, 3);
  (void)sink;
  return std::max(0.0, (t_with - t_without) / kBlocks);
}

}  // namespace

const CostModel& DefaultCostModel() {
  static const CostModel model = MakeDefaultCostModel();
  return model;
}

CostModel CalibratedCostModel() {
  CostModel m = DefaultCostModel();
  constexpr double kMargin = 1.3;

  // Per-tier scale from the straight-line ALU chain: a slow host (or a
  // sanitizer build) inflates every op class roughly uniformly.
  for (size_t t = 0; t < kNumCostTiers; ++t) {
    const auto tier = static_cast<CostTier>(t);
    TierMeasurement meas = MeasureAluTier(tier);
    if (!meas.ok && tier == CostTier::kNative) {
      meas = MeasureAluTier(CostTier::kCompiled);  // JIT unavailable
    }
    if (!meas.ok) continue;
    const double default_alu =
        m.op_ns[t][static_cast<size_t>(Op::kAddReg)];
    const double scale =
        std::max(1.0, kMargin * meas.per_insn_ns / default_alu);
    for (size_t op = 0; op < kNumOps; ++op) m.op_ns[t][op] *= scale;
    m.exec_overhead_ns[t] =
        std::max(m.exec_overhead_ns[t], kMargin * meas.overhead_ns);
  }

  // Helper scale from map microruns: sanitizers instrument the map bodies
  // (host C++) far more than JIT-emitted code, so bodies get their own
  // factor. Subtract the (already rescaled) interpreter call-dispatch cost
  // to isolate the body.
  const double call_dispatch =
      m.op_ns[static_cast<size_t>(CostTier::kInterpret)]
             [static_cast<size_t>(Op::kCall)];
  double helper_scale = 1.0;
  const std::pair<HelperId, MapType> probes[] = {
      {HelperId::kMapLookupElem, MapType::kArray},
      {HelperId::kMapLookupElem, MapType::kHash},
      {HelperId::kMapUpdateElem, MapType::kHash},
  };
  for (const auto& [helper, kind] : probes) {
    const double measured = MeasureHelperNs(helper, kind);
    if (measured < 0) continue;
    const double body = std::max(0.0, measured - call_dispatch);
    const double def = m.HelperNs(helper, kind);
    if (def > 0) {
      helper_scale = std::max(helper_scale, kMargin * body / def);
    }
  }
  for (size_t k = 0; k < kNumMapTypes; ++k) {
    m.lookup_ns[k] *= helper_scale;
    m.update_ns[k] *= helper_scale;
    m.delete_ns[k] *= helper_scale;
  }
  m.random_ns *= helper_scale;
  m.ktime_ns *= helper_scale;
  m.tail_call_ns *= helper_scale;
  return m;
}

std::string FormatPath(const std::vector<uint32_t>& path) {
  std::ostringstream os;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << path[i];
  }
  return os.str();
}

}  // namespace syrup::bpf
