#include "src/bpf/jit.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/map/map.h"

#if defined(__x86_64__) && defined(__linux__)
#define SYRUP_JIT_SUPPORTED 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define SYRUP_JIT_SUPPORTED 0
#endif

namespace syrup::bpf {
namespace {

// The emitted prologue pins the JitRuntime pointer in %r12 and stencils
// address the fields by these byte offsets.
constexpr int32_t kRtInsnsOff = 0;
constexpr int32_t kRtHelperCallsOff = 8;
constexpr int32_t kRtFaultOff = 16;
static_assert(offsetof(JitRuntime, insns) == kRtInsnsOff);
static_assert(offsetof(JitRuntime, helper_calls) == kRtHelperCallsOff);
static_assert(offsetof(JitRuntime, fault) == kRtFaultOff);
static_assert(offsetof(JitRuntime, env) == 24);

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool JitDisabledByEnv() {
  const char* v = std::getenv("SYRUP_JIT_DISABLE");
  return v != nullptr && v[0] == '1';
}

}  // namespace

// Helper trampolines: C-ABI entry points the emitted `call` stencils target.
// The SysV argument registers line up with the VM's calling convention
// (r1..r5 -> rdi/rsi/rdx/rcx/r8), so map helpers take their operands
// directly; environment helpers get the JitRuntime pinned in %r12 instead.
// Semantics mirror the compiled tier's handler bodies exactly.
extern "C" uint64_t SyrupJitMapLookup(uint64_t map, uint64_t key) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<Map*>(map)->Lookup(
      reinterpret_cast<const void*>(key)));
}

extern "C" uint64_t SyrupJitMapUpdate(uint64_t map, uint64_t key,
                                      uint64_t value) {
  const Status s = reinterpret_cast<Map*>(map)->Update(
      reinterpret_cast<const void*>(key), reinterpret_cast<const void*>(value),
      UpdateFlag::kAny);
  return s.ok() ? 0 : static_cast<uint64_t>(-1);
}

extern "C" uint64_t SyrupJitMapDelete(uint64_t map, uint64_t key) {
  const Status s =
      reinterpret_cast<Map*>(map)->Delete(reinterpret_cast<const void*>(key));
  return s.ok() ? 0 : static_cast<uint64_t>(-1);
}

extern "C" uint64_t SyrupJitMapLookupBatch(uint64_t map, uint64_t keys,
                                           uint64_t out, uint64_t n) {
  return reinterpret_cast<Map*>(map)->LookupBatchU64(
      static_cast<uint32_t>(n), reinterpret_cast<const void*>(keys),
      reinterpret_cast<uint64_t*>(out));
}

extern "C" uint64_t SyrupJitRandom(JitRuntime* rt) {
  return rt->env->random_u32 ? rt->env->random_u32() : 0;
}

extern "C" uint64_t SyrupJitKtime(JitRuntime* rt) {
  return rt->env->ktime_ns ? rt->env->ktime_ns() : 0;
}

namespace {

// ------------------------------ stencil table ------------------------------
//
// One entry per COp, in exact enum order. A stencil is a byte template
// family plus the patch parameters the emitter burns in while copying:
// x86 opcode/extension bytes, operand size, condition code, helper index.
// Unsupported entries (paranoid *Chk flavors, tail calls) make JitCompile
// fall back to the compiled tier.
struct Stencil {
  enum class Kind : uint8_t {
    kUnsupported,
    kAluRR,     // a = x86 reg-reg opcode (add/sub/or/and)
    kAluImm,    // a = /ext for 0x81 group, b = reg-reg opcode for wide imms
    kMulReg,
    kMulImm,
    kDivMod,    // a = 1 for imm divisor, b = 1 for mod (result in rdx)
    kShiftReg,  // a = /ext for 0xd3 group (shl=4 shr=5 sar=7)
    kShiftImm,  // a = /ext for 0xc1 group
    kNeg,
    kMovReg,
    kMovImm,
    kMov32Reg,
    kMov32Imm,
    kBe,        // a = operand width in bits (16/32/64)
    kLoad,      // a = access size in bytes
    kStoreReg,  // a = access size in bytes
    kStoreImm,  // a = access size in bytes
    kAtomic,
    kJa,
    kCondJump,  // a = jcc second opcode byte, b bit0 = imm, bit1 = test
    kHelper,    // a = trampoline index into kHelperTargets
    kLdMapPtr,
    kExit,
  };
  Kind kind = Kind::kUnsupported;
  uint8_t a = 0;
  uint8_t b = 0;
};

using SK = Stencil::Kind;

constexpr Stencil kStencilTable[static_cast<size_t>(COp::kNumCOps)] = {
    /*kAddReg*/ {SK::kAluRR, 0x01},
    /*kAddImm*/ {SK::kAluImm, 0, 0x01},
    /*kSubReg*/ {SK::kAluRR, 0x29},
    /*kSubImm*/ {SK::kAluImm, 5, 0x29},
    /*kMulReg*/ {SK::kMulReg},
    /*kMulImm*/ {SK::kMulImm},
    /*kDivReg*/ {SK::kDivMod, 0, 0},
    /*kDivImm*/ {SK::kDivMod, 1, 0},
    /*kModReg*/ {SK::kDivMod, 0, 1},
    /*kModImm*/ {SK::kDivMod, 1, 1},
    /*kOrReg*/ {SK::kAluRR, 0x09},
    /*kOrImm*/ {SK::kAluImm, 1, 0x09},
    /*kAndReg*/ {SK::kAluRR, 0x21},
    /*kAndImm*/ {SK::kAluImm, 4, 0x21},
    /*kLshReg*/ {SK::kShiftReg, 4},
    /*kLshImm*/ {SK::kShiftImm, 4},
    /*kRshReg*/ {SK::kShiftReg, 5},
    /*kRshImm*/ {SK::kShiftImm, 5},
    /*kArshReg*/ {SK::kShiftReg, 7},
    /*kArshImm*/ {SK::kShiftImm, 7},
    /*kNeg*/ {SK::kNeg},
    /*kMovReg*/ {SK::kMovReg},
    /*kMovImm*/ {SK::kMovImm},
    /*kMov32Reg*/ {SK::kMov32Reg},
    /*kMov32Imm*/ {SK::kMov32Imm},
    /*kBe16*/ {SK::kBe, 16},
    /*kBe32*/ {SK::kBe, 32},
    /*kBe64*/ {SK::kBe, 64},
    /*kLdxB*/ {SK::kLoad, 1},
    /*kLdxH*/ {SK::kLoad, 2},
    /*kLdxW*/ {SK::kLoad, 4},
    /*kLdxDW*/ {SK::kLoad, 8},
    /*kStxB*/ {SK::kStoreReg, 1},
    /*kStxH*/ {SK::kStoreReg, 2},
    /*kStxW*/ {SK::kStoreReg, 4},
    /*kStxDW*/ {SK::kStoreReg, 8},
    /*kStB*/ {SK::kStoreImm, 1},
    /*kStH*/ {SK::kStoreImm, 2},
    /*kStW*/ {SK::kStoreImm, 4},
    /*kStDW*/ {SK::kStoreImm, 8},
    /*kAtomicAddDW*/ {SK::kAtomic},
    /*kLdxBChk*/ {SK::kUnsupported},
    /*kLdxHChk*/ {SK::kUnsupported},
    /*kLdxWChk*/ {SK::kUnsupported},
    /*kLdxDWChk*/ {SK::kUnsupported},
    /*kStxBChk*/ {SK::kUnsupported},
    /*kStxHChk*/ {SK::kUnsupported},
    /*kStxWChk*/ {SK::kUnsupported},
    /*kStxDWChk*/ {SK::kUnsupported},
    /*kStBChk*/ {SK::kUnsupported},
    /*kStHChk*/ {SK::kUnsupported},
    /*kStWChk*/ {SK::kUnsupported},
    /*kStDWChk*/ {SK::kUnsupported},
    /*kAtomicAddDWChk*/ {SK::kUnsupported},
    /*kJa*/ {SK::kJa},
    /*kJeqReg*/ {SK::kCondJump, 0x84, 0},
    /*kJeqImm*/ {SK::kCondJump, 0x84, 1},
    /*kJneReg*/ {SK::kCondJump, 0x85, 0},
    /*kJneImm*/ {SK::kCondJump, 0x85, 1},
    /*kJgtReg*/ {SK::kCondJump, 0x87, 0},
    /*kJgtImm*/ {SK::kCondJump, 0x87, 1},
    /*kJgeReg*/ {SK::kCondJump, 0x83, 0},
    /*kJgeImm*/ {SK::kCondJump, 0x83, 1},
    /*kJltReg*/ {SK::kCondJump, 0x82, 0},
    /*kJltImm*/ {SK::kCondJump, 0x82, 1},
    /*kJleReg*/ {SK::kCondJump, 0x86, 0},
    /*kJleImm*/ {SK::kCondJump, 0x86, 1},
    /*kJsgtReg*/ {SK::kCondJump, 0x8F, 0},
    /*kJsgtImm*/ {SK::kCondJump, 0x8F, 1},
    /*kJsgeReg*/ {SK::kCondJump, 0x8D, 0},
    /*kJsgeImm*/ {SK::kCondJump, 0x8D, 1},
    /*kJsltReg*/ {SK::kCondJump, 0x8C, 0},
    /*kJsltImm*/ {SK::kCondJump, 0x8C, 1},
    /*kJsleReg*/ {SK::kCondJump, 0x8E, 0},
    /*kJsleImm*/ {SK::kCondJump, 0x8E, 1},
    /*kJsetReg*/ {SK::kCondJump, 0x85, 2},
    /*kJsetImm*/ {SK::kCondJump, 0x85, 3},
    /*kCallLookup*/ {SK::kHelper, 0},
    /*kCallLookupChk*/ {SK::kUnsupported},
    /*kCallUpdate*/ {SK::kHelper, 1},
    /*kCallUpdateChk*/ {SK::kUnsupported},
    /*kCallDelete*/ {SK::kHelper, 2},
    /*kCallDeleteChk*/ {SK::kUnsupported},
    /*kCallLookupBatch*/ {SK::kHelper, 5},
    /*kCallLookupBatchChk*/ {SK::kUnsupported},
    /*kCallRandom*/ {SK::kHelper, 3},
    /*kCallKtime*/ {SK::kHelper, 4},
    /*kCallTailCall*/ {SK::kUnsupported},
    /*kLdMapPtr*/ {SK::kLdMapPtr},
    /*kExit*/ {SK::kExit},
};

#if SYRUP_JIT_SUPPORTED

// x86-64 register ids.
enum X86Reg : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// VM register -> x86 register. Mirrors the Linux eBPF JIT so the SysV
// argument registers line up with the helper calling convention (r1..r5 are
// exactly rdi/rsi/rdx/rcx/r8). r6..r9 land in callee-saved registers so
// helper calls preserve them for free; r10 (the frame pointer) is rbp.
// %r10/%r11 are scratch for multi-instruction stencils, %r12 pins the
// JitRuntime pointer, %rsp stays the native stack pointer.
constexpr uint8_t kRegMap[kNumRegisters] = {
    RAX, RDI, RSI, RDX, RCX, R8, RBX, R13, R14, R15, RBP,
};

bool FitsSExt32(uint64_t v) {
  return static_cast<int64_t>(static_cast<int32_t>(v)) ==
         static_cast<int64_t>(v);
}

// Emits one program's machine code into a growable buffer; jump targets are
// recorded as fixups and patched once all instruction offsets are known.
class Emitter {
 public:
  explicit Emitter(const CompiledProgram& prog) : prog_(prog) {}

  Status EmitAll();
  const std::vector<uint8_t>& code() const { return buf_; }
  size_t stencils() const { return stencils_; }

 private:
  // Fixup targets: >= 0 is an absolute instruction index; the sentinels
  // route to the shared epilogue / fault stub.
  static constexpr int32_t kTargetEpilogue = -1;
  static constexpr int32_t kTargetFault = -2;
  struct Fixup {
    size_t off;      // buffer offset of the rel32 field
    int32_t target;
  };

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { U8(v & 0xff); U8(v >> 8); }
  void U32(uint32_t v) { U16(v & 0xffff); U16(v >> 16); }
  void U64(uint64_t v) { U32(v & 0xffffffffu); U32(v >> 32); }

  // REX prefix; omitted when it would be empty unless forced (byte ops need
  // it to address sil/dil instead of the legacy high-byte registers).
  void Rex(bool w, uint8_t reg, uint8_t rm, bool force = false) {
    const uint8_t rex = 0x40 | (static_cast<uint8_t>(w) << 3) |
                        ((reg >> 3) << 2) | (rm >> 3);
    if (rex != 0x40 || force) U8(rex);
  }
  void ModRM(uint8_t mod, uint8_t reg, uint8_t rm) {
    U8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  // Memory operand [base + disp]; emits SIB for rsp/r12-class bases and
  // always uses an explicit displacement for rbp/r13-class ones.
  void MemModRM(uint8_t reg, uint8_t base, int32_t disp) {
    const uint8_t rm = base & 7;
    const bool sib = rm == 4;
    if (disp == 0 && rm != 5) {
      ModRM(0, reg, rm);
      if (sib) U8(0x24);
    } else if (disp >= -128 && disp <= 127) {
      ModRM(1, reg, rm);
      if (sib) U8(0x24);
      U8(static_cast<uint8_t>(disp));
    } else {
      ModRM(2, reg, rm);
      if (sib) U8(0x24);
      U32(static_cast<uint32_t>(disp));
    }
  }

  void MovRR(uint8_t d, uint8_t s) {  // mov d, s (64-bit)
    Rex(true, s, d);
    U8(0x89);
    ModRM(3, s, d);
  }
  void MovImm64(uint8_t d, uint64_t v) {
    if (v <= 0xffffffffu) {  // mov r32, imm32 zero-extends
      Rex(false, 0, d);
      U8(0xB8 + (d & 7));
      U32(static_cast<uint32_t>(v));
    } else if (FitsSExt32(v)) {  // mov r64, simm32
      Rex(true, 0, d);
      U8(0xC7);
      ModRM(3, 0, d);
      U32(static_cast<uint32_t>(v));
    } else {  // movabs
      Rex(true, 0, d);
      U8(0xB8 + (d & 7));
      U64(v);
    }
  }
  void AluRR(uint8_t opcode, uint8_t d, uint8_t s) {  // 64-bit op d, s
    Rex(true, s, d);
    U8(opcode);
    ModRM(3, s, d);
  }
  void AluImm(uint8_t ext, uint8_t d, int32_t imm) {  // 64-bit op d, simm
    Rex(true, 0, d);
    if (imm >= -128 && imm <= 127) {
      U8(0x83);
      ModRM(3, ext, d);
      U8(static_cast<uint8_t>(imm));
    } else {
      U8(0x81);
      ModRM(3, ext, d);
      U32(static_cast<uint32_t>(imm));
    }
  }
  // op d, imm with a 64-bit immediate: direct simm32 form when it fits,
  // otherwise via the %r10 scratch register and the reg-reg form.
  void AluImm64(uint8_t rr_opcode, uint8_t ext, uint8_t d, uint64_t imm) {
    if (FitsSExt32(imm)) {
      AluImm(ext, d, static_cast<int32_t>(imm));
    } else {
      MovImm64(R10, imm);
      AluRR(rr_opcode, d, R10);
    }
  }
  void TestImm64(uint8_t d, uint64_t imm) {
    if (FitsSExt32(imm)) {
      Rex(true, 0, d);
      U8(0xF7);
      ModRM(3, 0, d);
      U32(static_cast<uint32_t>(imm));
    } else {
      MovImm64(R10, imm);
      AluRR(0x85, d, R10);
    }
  }
  void AddRtCounter(int32_t off, uint32_t amount) {  // add qword [r12+off], n
    Rex(true, 0, R12);
    if (amount <= 127) {
      U8(0x83);
      MemModRM(0, R12, off);
      U8(static_cast<uint8_t>(amount));
    } else {
      U8(0x81);
      MemModRM(0, R12, off);
      U32(amount);
    }
  }
  void JmpTo(int32_t target) {  // jmp rel32 (patched later)
    U8(0xE9);
    fixups_.push_back(Fixup{buf_.size(), target});
    U32(0);
  }
  void JccTo(uint8_t cc, int32_t target) {  // jcc rel32 (patched later)
    U8(0x0F);
    U8(cc);
    fixups_.push_back(Fixup{buf_.size(), target});
    U32(0);
  }

  void EmitPrologue();
  void EmitEpilogue();
  Status EmitStencil(const CInsn& insn);
  void ComputeLeaders();
  uint32_t BlockLenAt(size_t i) const;

  const CompiledProgram& prog_;
  std::vector<uint8_t> buf_;
  std::vector<uint8_t> is_leader_;
  std::vector<size_t> insn_off_;
  std::vector<Fixup> fixups_;
  size_t stencils_ = 0;
  bool need_fault_stub_ = false;
};

void Emitter::EmitPrologue() {
  // Entry (SysV): rdi = arg1, rsi = arg2, rdx = JitRuntime*. The register
  // map puts VM r1/r2 in rdi/rsi, so the context arguments are already in
  // place. 6 pushes + 520 bytes of frame keep %rsp 16-byte aligned at every
  // emitted call site.
  U8(0x55);              // push rbp
  U8(0x53);              // push rbx
  U8(0x41); U8(0x54);    // push r12
  U8(0x41); U8(0x55);    // push r13
  U8(0x41); U8(0x56);    // push r14
  U8(0x41); U8(0x57);    // push r15
  // sub rsp, kStackSize + 8
  U8(0x48); U8(0x81); U8(0xEC); U32(kStackSize + 8);
  U8(0x49); U8(0x89); U8(0xD4);  // mov r12, rdx (pin JitRuntime*)
  // lea rbp, [rsp + kStackSize]: VM r10 = top of the 512-byte stack window
  // [rsp, rsp+512). The verifier proves stack bytes are written before
  // read, so the window is not cleared.
  U8(0x48); U8(0x8D); U8(0xAC); U8(0x24); U32(kStackSize);
}

void Emitter::EmitEpilogue() {
  // add rsp, kStackSize + 8
  U8(0x48); U8(0x81); U8(0xC4); U32(kStackSize + 8);
  U8(0x41); U8(0x5F);  // pop r15
  U8(0x41); U8(0x5E);  // pop r14
  U8(0x41); U8(0x5D);  // pop r13
  U8(0x41); U8(0x5C);  // pop r12
  U8(0x5B);            // pop rbx
  U8(0x5D);            // pop rbp
  U8(0xC3);            // ret (r0 is already in rax)
}

void Emitter::ComputeLeaders() {
  const size_t n = prog_.code.size();
  is_leader_.assign(n, 0);
  is_leader_[0] = 1;
  for (size_t i = 0; i < n; ++i) {
    const Stencil& st = kStencilTable[static_cast<size_t>(prog_.code[i].op)];
    if (st.kind == SK::kJa || st.kind == SK::kCondJump) {
      is_leader_[static_cast<size_t>(prog_.code[i].arg)] = 1;
      if (st.kind == SK::kCondJump && i + 1 < n) is_leader_[i + 1] = 1;
    }
  }
}

// Number of instructions in the basic block starting at leader `i`: the
// straight-line run up to and including its terminator. Entering the block
// executes all of them, so one counter add per block keeps insns_executed
// identical to the compiled tier's per-instruction count.
uint32_t Emitter::BlockLenAt(size_t i) const {
  const size_t n = prog_.code.size();
  uint32_t len = 0;
  for (size_t j = i; j < n; ++j) {
    ++len;
    const Stencil& st = kStencilTable[static_cast<size_t>(prog_.code[j].op)];
    if (st.kind == SK::kJa || st.kind == SK::kCondJump ||
        st.kind == SK::kExit) {
      break;
    }
    if (j + 1 < n && is_leader_[j + 1]) break;
  }
  return len;
}

Status Emitter::EmitStencil(const CInsn& insn) {
  const Stencil& st = kStencilTable[static_cast<size_t>(insn.op)];
  const uint8_t d = kRegMap[insn.dst];
  const uint8_t s = kRegMap[insn.src];
  ++stencils_;
  switch (st.kind) {
    case SK::kAluRR:
      AluRR(st.a, d, s);
      break;
    case SK::kAluImm:
      AluImm64(st.b, st.a, d, insn.imm);
      break;
    case SK::kMulReg:  // imul d, s
      Rex(true, d, s);
      U8(0x0F); U8(0xAF);
      ModRM(3, d, s);
      break;
    case SK::kMulImm:
      if (FitsSExt32(insn.imm)) {  // imul d, d, simm32
        Rex(true, d, d);
        U8(0x69);
        ModRM(3, d, d);
        U32(static_cast<uint32_t>(insn.imm));
      } else {
        MovImm64(R10, insn.imm);
        Rex(true, d, R10);
        U8(0x0F); U8(0xAF);
        ModRM(3, d, R10);
      }
      break;
    case SK::kDivMod: {
      // d = divisor ? d / divisor : 0 (or % for mod). Unsigned 64/64 `div`
      // with rdx pre-zeroed can't #DE once the divisor is known non-zero.
      U8(0x50);  // push rax
      U8(0x52);  // push rdx
      if (st.a != 0) {
        MovImm64(R10, insn.imm);  // divisor from the immediate
      } else {
        MovRR(R10, s);            // divisor from the source register
      }
      MovRR(R11, d);              // dividend (survives the pops below)
      U8(0x31); U8(0xC0);         // xor eax, eax (result 0 on zero divisor)
      U8(0x31); U8(0xD2);         // xor edx, edx (and for the div itself)
      U8(0x4D); U8(0x85); U8(0xD2);  // test r10, r10
      U8(0x74); U8(0x06);            // jz +6 (over mov+div)
      U8(0x4C); U8(0x89); U8(0xD8);  // mov rax, r11
      U8(0x49); U8(0xF7); U8(0xF2);  // div r10
      MovRR(R11, st.b != 0 ? RDX : RAX);  // quotient or remainder
      U8(0x5A);  // pop rdx
      U8(0x58);  // pop rax
      MovRR(d, R11);
      break;
    }
    case SK::kShiftReg: {
      // x86 variable shifts take the count in %cl (VM r4); hardware masks
      // the 64-bit count to 6 bits, which is exactly the VM's `& 63`.
      MovRR(R11, RCX);                    // save rcx (also d's value if d=rcx)
      if (s != RCX) MovRR(RCX, s);        // count into cl
      const uint8_t shift_rm = d == RCX ? static_cast<uint8_t>(R11) : d;
      Rex(true, 0, shift_rm);
      U8(0xD3);
      ModRM(3, st.a, shift_rm);
      MovRR(RCX, R11);  // restore rcx, or move the result back into it
      break;
    }
    case SK::kShiftImm: {
      const uint8_t count = insn.imm & 63;
      if (count != 0) {
        Rex(true, 0, d);
        U8(0xC1);
        ModRM(3, st.a, d);
        U8(count);
      }
      break;
    }
    case SK::kNeg:
      Rex(true, 0, d);
      U8(0xF7);
      ModRM(3, 3, d);
      break;
    case SK::kMovReg:
      MovRR(d, s);
      break;
    case SK::kMovImm:
    case SK::kLdMapPtr:  // resolved Map* burned in as an immediate
      MovImm64(d, insn.imm);
      break;
    case SK::kMov32Reg:  // 32-bit mov zero-extends
      Rex(false, s, d);
      U8(0x89);
      ModRM(3, s, d);
      break;
    case SK::kMov32Imm:
      Rex(false, 0, d);
      U8(0xB8 + (d & 7));
      U32(static_cast<uint32_t>(insn.imm));
      break;
    case SK::kBe:
      if (st.a == 16) {  // ror d16, 8 then zero-extend
        U8(0x66);
        Rex(false, 0, d);
        U8(0xC1);
        ModRM(3, 1, d);
        U8(8);
        Rex(true, d, d);  // movzx d, d16
        U8(0x0F); U8(0xB7);
        ModRM(3, d, d);
      } else {  // bswap; the 32-bit form zero-extends
        Rex(st.a == 64, 0, d);
        U8(0x0F);
        U8(0xC8 + (d & 7));
      }
      break;
    case SK::kLoad:
      switch (st.a) {
        case 1:  // movzx d, byte [s+arg]
          Rex(true, d, s);
          U8(0x0F); U8(0xB6);
          MemModRM(d, s, insn.arg);
          break;
        case 2:  // movzx d, word [s+arg]
          Rex(true, d, s);
          U8(0x0F); U8(0xB7);
          MemModRM(d, s, insn.arg);
          break;
        case 4:  // mov d32, [s+arg] zero-extends
          Rex(false, d, s);
          U8(0x8B);
          MemModRM(d, s, insn.arg);
          break;
        default:  // mov d, [s+arg]
          Rex(true, d, s);
          U8(0x8B);
          MemModRM(d, s, insn.arg);
          break;
      }
      break;
    case SK::kStoreReg:
      switch (st.a) {
        case 1:  // mov byte [d+arg], s (REX forced so sil/dil resolve)
          Rex(false, s, d, /*force=*/true);
          U8(0x88);
          MemModRM(s, d, insn.arg);
          break;
        case 2:
          U8(0x66);
          Rex(false, s, d);
          U8(0x89);
          MemModRM(s, d, insn.arg);
          break;
        case 4:
          Rex(false, s, d);
          U8(0x89);
          MemModRM(s, d, insn.arg);
          break;
        default:
          Rex(true, s, d);
          U8(0x89);
          MemModRM(s, d, insn.arg);
          break;
      }
      break;
    case SK::kStoreImm:
      switch (st.a) {
        case 1:
          Rex(false, 0, d);
          U8(0xC6);
          MemModRM(0, d, insn.arg);
          U8(static_cast<uint8_t>(insn.imm));
          break;
        case 2:
          U8(0x66);
          Rex(false, 0, d);
          U8(0xC7);
          MemModRM(0, d, insn.arg);
          U16(static_cast<uint16_t>(insn.imm));
          break;
        case 4:
          Rex(false, 0, d);
          U8(0xC7);
          MemModRM(0, d, insn.arg);
          U32(static_cast<uint32_t>(insn.imm));
          break;
        default:
          if (FitsSExt32(insn.imm)) {  // mov qword [d+arg], simm32
            Rex(true, 0, d);
            U8(0xC7);
            MemModRM(0, d, insn.arg);
            U32(static_cast<uint32_t>(insn.imm));
          } else {
            MovImm64(R10, insn.imm);
            Rex(true, R10, d);
            U8(0x89);
            MemModRM(R10, d, insn.arg);
          }
          break;
      }
      break;
    case SK::kAtomic:
      // The verifier proves bounds but not 8-byte alignment; the check
      // stays, branching to the shared fault stub (matches the compiled
      // tier's "runtime atomic unaligned" error).
      need_fault_stub_ = true;
      Rex(true, R10, d);  // lea r10, [d+arg]
      U8(0x8D);
      MemModRM(R10, d, insn.arg);
      U8(0x41); U8(0xF6); U8(0xC2); U8(0x07);  // test r10b, 7
      JccTo(0x85, kTargetFault);               // jnz fault
      U8(0xF0);                                // lock
      Rex(true, s, R10);
      U8(0x01);                                // add [r10], s
      MemModRM(s, R10, 0);
      break;
    case SK::kJa:
      JmpTo(insn.arg);
      break;
    case SK::kCondJump:
      if ((st.b & 2) != 0) {  // jset: test instead of cmp
        if ((st.b & 1) != 0) {
          TestImm64(d, insn.imm);
        } else {
          AluRR(0x85, d, s);
        }
      } else {
        if ((st.b & 1) != 0) {
          AluImm64(0x39, 7, d, insn.imm);
        } else {
          AluRR(0x39, d, s);
        }
      }
      JccTo(st.a, insn.arg);
      break;
    case SK::kHelper: {
      static const uint64_t kHelperTargets[] = {
          reinterpret_cast<uint64_t>(&SyrupJitMapLookup),
          reinterpret_cast<uint64_t>(&SyrupJitMapUpdate),
          reinterpret_cast<uint64_t>(&SyrupJitMapDelete),
          reinterpret_cast<uint64_t>(&SyrupJitRandom),
          reinterpret_cast<uint64_t>(&SyrupJitKtime),
          reinterpret_cast<uint64_t>(&SyrupJitMapLookupBatch),
      };
      // inc qword [r12 + helper_calls]
      U8(0x49); U8(0xFF);
      MemModRM(0, R12, kRtHelperCallsOff);
      if (st.a == 3 || st.a == 4) {  // random/ktime take the JitRuntime*
        U8(0x4C); U8(0x89); U8(0xE7);  // mov rdi, r12
      }
      // Map helper arguments are already in place: r1..r4 = rdi/rsi/rdx/rcx.
      MovImm64(RAX, kHelperTargets[st.a]);  // target burned in as imm64
      U8(0xFF); U8(0xD0);                   // call rax; result -> rax = r0
      // Clobber r1..r5 to zero, as the other tiers do after a helper.
      U8(0x31); U8(0xFF);            // xor edi, edi
      U8(0x31); U8(0xF6);            // xor esi, esi
      U8(0x31); U8(0xD2);            // xor edx, edx
      U8(0x31); U8(0xC9);            // xor ecx, ecx
      U8(0x45); U8(0x31); U8(0xC0);  // xor r8d, r8d
      break;
    }
    case SK::kExit:
      JmpTo(kTargetEpilogue);  // r0 is already in rax
      break;
    case SK::kUnsupported:
    default:
      return UnimplementedError("jit: unsupported opcode");
  }
  return OkStatus();
}

Status Emitter::EmitAll() {
  const size_t n = prog_.code.size();
  // Reject unsupported inputs before emitting anything.
  for (const CInsn& insn : prog_.code) {
    if (kStencilTable[static_cast<size_t>(insn.op)].kind == SK::kUnsupported) {
      return UnimplementedError(
          "jit: program uses an unsupported opcode (paranoid flavor or "
          "tail call); staying on the compiled tier");
    }
  }
  ComputeLeaders();
  insn_off_.assign(n, 0);
  buf_.reserve(64 + n * 16);
  EmitPrologue();
  for (size_t i = 0; i < n; ++i) {
    insn_off_[i] = buf_.size();
    if (is_leader_[i]) AddRtCounter(kRtInsnsOff, BlockLenAt(i));
    SYRUP_RETURN_IF_ERROR(EmitStencil(prog_.code[i]));
  }
  size_t fault_off = 0;
  if (need_fault_stub_) {
    fault_off = buf_.size();
    // mov qword [r12 + fault], kAtomicUnaligned; clear rax; fall through.
    Rex(true, 0, R12);
    U8(0xC7);
    MemModRM(0, R12, kRtFaultOff);
    U32(static_cast<uint32_t>(JitFault::kAtomicUnaligned));
    U8(0x31); U8(0xC0);  // xor eax, eax
  }
  const size_t epilogue_off = buf_.size();
  EmitEpilogue();
  for (const Fixup& f : fixups_) {
    const size_t target_off = f.target == kTargetEpilogue ? epilogue_off
                              : f.target == kTargetFault
                                  ? fault_off
                                  : insn_off_[static_cast<size_t>(f.target)];
    const int32_t rel = static_cast<int32_t>(target_off) -
                        static_cast<int32_t>(f.off + 4);
    std::memcpy(buf_.data() + f.off, &rel, sizeof(rel));
  }
  return OkStatus();
}

// Process-wide W^X arena. Chunks are mapped RW, filled, and flipped to RX;
// publishing more code into a partially used chunk remaps it RW and back.
// Publishing happens at attach time on the simulation thread, so no other
// thread executes out of a chunk while it is briefly writable. Arena space
// is never reclaimed: attach artifacts are small (hundreds of bytes) and
// long-lived. The singleton leaks deliberately so emitted code outlives any
// static-destruction order.
class ExecArena {
 public:
  static ExecArena& Instance() {
    static auto* arena = new ExecArena;
    return *arena;
  }

  // Copies `code` into executable memory; returns the RX entry pointer or
  // nullptr when mmap/mprotect fails (caller falls back).
  const uint8_t* Publish(const uint8_t* code, size_t len) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t need = (len + 15) & ~static_cast<size_t>(15);
    Chunk* chunk = nullptr;
    for (Chunk& c : chunks_) {
      if (c.cap - c.used >= need) {
        chunk = &c;
        break;
      }
    }
    if (chunk == nullptr) {
      const auto page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
      const size_t cap =
          std::max(kChunkBytes, (need + page - 1) / page * page);
      void* mem = mmap(nullptr, cap, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (mem == MAP_FAILED) return nullptr;
      chunks_.push_back(Chunk{static_cast<uint8_t*>(mem), cap, 0});
      chunk = &chunks_.back();
    } else if (mprotect(chunk->base, chunk->cap,
                        PROT_READ | PROT_WRITE) != 0) {
      return nullptr;  // RX -> RW remap for the patch window failed
    }
    uint8_t* dst = chunk->base + chunk->used;
    std::memcpy(dst, code, len);
    if (mprotect(chunk->base, chunk->cap, PROT_READ | PROT_EXEC) != 0) {
      return nullptr;
    }
    chunk->used += need;
    published_bytes_ += len;
    return dst;
  }

  size_t published_bytes() {
    std::lock_guard<std::mutex> lock(mu_);
    return published_bytes_;
  }

 private:
  static constexpr size_t kChunkBytes = 256 * 1024;
  struct Chunk {
    uint8_t* base;
    size_t cap;
    size_t used;
  };
  std::mutex mu_;
  std::vector<Chunk> chunks_;
  size_t published_bytes_ = 0;
};

#endif  // SYRUP_JIT_SUPPORTED

}  // namespace

bool JitAvailable() {
#if SYRUP_JIT_SUPPORTED
  return !JitDisabledByEnv();
#else
  return false;
#endif
}

StatusOr<std::shared_ptr<const JitProgram>> JitCompile(
    const CompiledProgram& prog) {
#if !SYRUP_JIT_SUPPORTED
  (void)prog;
  return FailedPreconditionError("jit: host is not x86-64 Linux");
#else
  if (JitDisabledByEnv()) {
    return FailedPreconditionError("jit: disabled via SYRUP_JIT_DISABLE");
  }
  if (prog.paranoid) {
    return UnimplementedError(
        "jit: paranoid programs stay on the compiled tier");
  }
  const uint64_t t0 = NowNs();
  Emitter emitter(prog);
  SYRUP_RETURN_IF_ERROR(emitter.EmitAll());
  const uint8_t* rx =
      ExecArena::Instance().Publish(emitter.code().data(), emitter.code().size());
  if (rx == nullptr) {
    return ResourceExhaustedError("jit: executable arena mmap/mprotect failed");
  }
  auto program = std::shared_ptr<JitProgram>(new JitProgram());
  program->entry_ = reinterpret_cast<JitProgram::Entry>(
      reinterpret_cast<uintptr_t>(rx));
  program->stats_.code_bytes = emitter.code().size();
  program->stats_.stencils = emitter.stencils();
  program->stats_.jit_ns = NowNs() - t0;
  return std::shared_ptr<const JitProgram>(std::move(program));
#endif
}

StatusOr<ExecResult> RunNative(const CompiledProgram& prog, const ExecEnv& env,
                               uint64_t arg1, uint64_t arg2) {
  JitRuntime rt;
  rt.env = &env;
  const uint64_t r0 = prog.native->entry()(arg1, arg2, &rt);
  if (rt.fault != static_cast<uint64_t>(JitFault::kNone)) {
    return OutOfRangeError("runtime atomic unaligned");
  }
  ExecResult result;
  result.r0 = r0;
  result.insns_executed = rt.insns;
  result.tail_calls = 0;
  result.helper_calls = static_cast<uint32_t>(rt.helper_calls);
  return result;
}

size_t JitArenaBytesUsed() {
#if SYRUP_JIT_SUPPORTED
  return ExecArena::Instance().published_bytes();
#else
  return 0;
#endif
}

}  // namespace syrup::bpf
