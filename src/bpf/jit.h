// Native execution tier: copy-and-patch x86-64 code generation.
//
// The paper's platform runs matching functions through the kernel eBPF JIT,
// so a deployed policy costs no more than hard-wired logic. This module
// closes the last of that gap for the reproduction: at attach time the
// pre-decoded compiled form (src/bpf/compiler.h) is lowered to real x86-64
// machine code by instantiating a per-opcode stencil — a fixed byte template
// whose register fields, displacements, immediates, map pointers, and
// helper-call targets are patched in as it is copied into the code buffer.
//
// Everything the compiled tier proved stays proven here: `AnalysisFacts`
// already shaped the input (dead code gone, decided branches removed), and
// the verifier's bounds proofs mean loads/stores are emitted with no runtime
// re-checks, exactly like the unchecked compiled flavor. Only the 8-byte
// alignment of atomic adds — which the verifier does not prove — keeps a
// runtime test, branching to a shared fault stub.
//
// W^X lifecycle: code is emitted into a plain buffer, then published into a
// process-wide executable arena (mmap RW -> copy/patch -> mprotect RX). The
// arena chunks are reused across programs; publishing into a partially-used
// chunk remaps it RW and back, so pages are never writable and executable
// at the same time.
//
// Fallback rules (the caller keeps the compiled tier on any failure):
//   * non-x86-64 or non-Linux build (no emitter for the host),
//   * SYRUP_JIT_DISABLE=1 in the environment (kill switch; also how CI
//     forces the fallback path on x86-64 matrix entries),
//   * mmap/mprotect failure in the arena,
//   * unsupported input: paranoid (*Chk) opcodes or tail calls.
#ifndef SYRUP_SRC_BPF_JIT_H_
#define SYRUP_SRC_BPF_JIT_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/common/status.h"

namespace syrup::bpf {

// Per-run state shared between emitted code and the C++ wrapper. The
// prologue pins a pointer to this struct in %r12; stencils reference the
// fields by fixed offset (static_asserts in jit.cc keep them honest).
struct JitRuntime {
  uint64_t insns = 0;         // executed instructions, accumulated per block
  uint64_t helper_calls = 0;  // every helper-call stencil increments this
  uint64_t fault = 0;         // JitFault code, written by the fault stub
  const ExecEnv* env = nullptr;  // helper trampolines reach services here
};

enum class JitFault : uint64_t {
  kNone = 0,
  kAtomicUnaligned = 1,
};

struct JitStats {
  size_t code_bytes = 0;  // published machine code size
  size_t stencils = 0;    // stencil instantiations (one per compiled insn)
  uint64_t jit_ns = 0;    // wall time to emit + publish
};

// A published native program. The entry point lives in the shared RX arena
// and stays valid for the lifetime of the process; the JitProgram object
// only carries the pointer and stats (arena space is not reclaimed when a
// program is dropped — attach-time artifacts are long-lived and small).
class JitProgram {
 public:
  // Same contract as CompiledExecutor::Run's inner loop: r1 = arg1,
  // r2 = arg2, returns r0. Counters and faults land in *rt.
  using Entry = uint64_t (*)(uint64_t arg1, uint64_t arg2, JitRuntime* rt);

  Entry entry() const { return entry_; }
  const JitStats& stats() const { return stats_; }

 private:
  friend StatusOr<std::shared_ptr<const JitProgram>> JitCompile(
      const CompiledProgram& prog);
  JitProgram() = default;

  Entry entry_ = nullptr;
  JitStats stats_;
};

// True when this build/host can emit and run native code: x86-64 Linux and
// SYRUP_JIT_DISABLE is not set to 1 in the environment. Arena exhaustion is
// only discoverable at JitCompile time.
bool JitAvailable();

// Lowers a non-paranoid pre-decoded program to machine code and publishes
// it. Returns FailedPrecondition when the JIT is unavailable on this
// host/build, Unimplemented when the program uses an unsupported feature
// (paranoid flavors, tail calls), ResourceExhausted when the arena cannot
// map memory. Callers treat any error as "stay on the compiled tier".
StatusOr<std::shared_ptr<const JitProgram>> JitCompile(
    const CompiledProgram& prog);

// Runs prog.native. Precondition: prog.native != nullptr. Produces the same
// r0 / map side effects / helper_calls as the other tiers; insns_executed
// is the per-block accumulated count (equals the compiled tier's count on
// non-faulting runs); tail_calls is always 0 (unsupported -> never JIT'd).
StatusOr<ExecResult> RunNative(const CompiledProgram& prog, const ExecEnv& env,
                               uint64_t arg1, uint64_t arg2);

// Total machine-code bytes published into the arena so far (process-wide).
size_t JitArenaBytesUsed();

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_JIT_H_
