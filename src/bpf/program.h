// A loaded policy program: instructions plus resolved map references.
#ifndef SYRUP_SRC_BPF_PROGRAM_H_
#define SYRUP_SRC_BPF_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bpf/insn.h"
#include "src/map/map.h"

namespace syrup::bpf {

struct Program {
  std::string name;
  std::vector<Insn> insns;
  // kLdMapFd instructions carry an index into this table.
  std::vector<std::shared_ptr<Map>> maps;
};

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_PROGRAM_H_
