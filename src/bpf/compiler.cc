#include "src/bpf/compiler.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>

#include "src/bpf/jit.h"
#include "src/bpf/vm_runtime.h"
#include "src/common/logging.h"

namespace syrup::bpf {
namespace {

using internal::LoadUnaligned;
using internal::Region;
using internal::RegionContains;
using internal::StoreUnaligned;

// The Op -> COp translation below maps three contiguous opcode runs by
// offset. Pin the run endpoints so an enum edit in either file breaks the
// build instead of the translation.
constexpr int OpIdx(Op op) { return static_cast<int>(op); }
constexpr int COpIdx(COp op) { return static_cast<int>(op); }
static_assert(OpIdx(Op::kBe64) - OpIdx(Op::kAddReg) ==
              COpIdx(COp::kBe64) - COpIdx(COp::kAddReg));
static_assert(OpIdx(Op::kMovImm) - OpIdx(Op::kAddReg) ==
              COpIdx(COp::kMovImm) - COpIdx(COp::kAddReg));
static_assert(OpIdx(Op::kAtomicAddDW) - OpIdx(Op::kLdxB) ==
              COpIdx(COp::kAtomicAddDW) - COpIdx(COp::kLdxB));
static_assert(OpIdx(Op::kAtomicAddDW) - OpIdx(Op::kLdxB) ==
              COpIdx(COp::kAtomicAddDWChk) - COpIdx(COp::kLdxBChk));
static_assert(OpIdx(Op::kJsetImm) - OpIdx(Op::kJa) ==
              COpIdx(COp::kJsetImm) - COpIdx(COp::kJa));

constexpr bool InRange(Op op, Op lo, Op hi) {
  return OpIdx(op) >= OpIdx(lo) && OpIdx(op) <= OpIdx(hi);
}

COp AluCOp(Op op) {
  return static_cast<COp>(COpIdx(COp::kAddReg) + OpIdx(op) -
                          OpIdx(Op::kAddReg));
}

COp MemCOp(Op op, bool paranoid) {
  const int base = paranoid ? COpIdx(COp::kLdxBChk) : COpIdx(COp::kLdxB);
  return static_cast<COp>(base + OpIdx(op) - OpIdx(Op::kLdxB));
}

COp JumpCOp(Op op) {
  return static_cast<COp>(COpIdx(COp::kJa) + OpIdx(op) - OpIdx(Op::kJa));
}

// Does this ALU op read its destination register? Moves only write.
bool AluReadsDst(Op op) {
  switch (op) {
    case Op::kMovReg:
    case Op::kMovImm:
    case Op::kMov32Reg:
    case Op::kMov32Imm:
      return false;
    default:
      return true;
  }
}

// Evaluates an ALU op exactly as the interpreter would; `operand` is the
// src-register value for *Reg flavors and the immediate otherwise (ignored
// by kNeg / kBe*).
uint64_t EvalAlu(Op op, uint64_t dst, uint64_t operand) {
  switch (op) {
    case Op::kAddReg: case Op::kAddImm: return dst + operand;
    case Op::kSubReg: case Op::kSubImm: return dst - operand;
    case Op::kMulReg: case Op::kMulImm: return dst * operand;
    case Op::kDivReg: case Op::kDivImm:
      return operand == 0 ? 0 : dst / operand;
    case Op::kModReg: case Op::kModImm:
      return operand == 0 ? 0 : dst % operand;
    case Op::kOrReg: case Op::kOrImm: return dst | operand;
    case Op::kAndReg: case Op::kAndImm: return dst & operand;
    case Op::kLshReg: case Op::kLshImm: return dst << (operand & 63);
    case Op::kRshReg: case Op::kRshImm: return dst >> (operand & 63);
    case Op::kArshReg: case Op::kArshImm:
      return static_cast<uint64_t>(static_cast<int64_t>(dst) >>
                                   (operand & 63));
    case Op::kNeg: return ~dst + 1;
    case Op::kMovReg: case Op::kMovImm: return operand;
    case Op::kMov32Reg: case Op::kMov32Imm:
      return static_cast<uint32_t>(operand);
    case Op::kBe16: return internal::ByteSwap(dst & 0xffff, 16);
    case Op::kBe32: return internal::ByteSwap(dst & 0xffffffff, 32);
    case Op::kBe64: return internal::ByteSwap(dst, 64);
    default:
      SYRUP_CHECK(false) << "EvalAlu on non-ALU op";
      return 0;
  }
}

// Evaluates a conditional-jump predicate exactly as the interpreter would.
bool EvalCond(Op op, uint64_t dst, uint64_t operand) {
  const auto sd = static_cast<int64_t>(dst);
  const auto so = static_cast<int64_t>(operand);
  switch (op) {
    case Op::kJeqReg: case Op::kJeqImm: return dst == operand;
    case Op::kJneReg: case Op::kJneImm: return dst != operand;
    case Op::kJgtReg: case Op::kJgtImm: return dst > operand;
    case Op::kJgeReg: case Op::kJgeImm: return dst >= operand;
    case Op::kJltReg: case Op::kJltImm: return dst < operand;
    case Op::kJleReg: case Op::kJleImm: return dst <= operand;
    case Op::kJsgtReg: case Op::kJsgtImm: return sd > so;
    case Op::kJsgeReg: case Op::kJsgeImm: return sd >= so;
    case Op::kJsltReg: case Op::kJsltImm: return sd < so;
    case Op::kJsleReg: case Op::kJsleImm: return sd <= so;
    case Op::kJsetReg: case Op::kJsetImm: return (dst & operand) != 0;
    default:
      SYRUP_CHECK(false) << "EvalCond on non-jump op";
      return false;
  }
}

// Register effects of a compiled instruction, for dead-move elimination.
// Jumps, calls, and kExit are treated as barriers by the caller and never
// reach this classification.
struct RegEffects {
  bool reads_dst = false;
  bool reads_src = false;
  bool writes_dst = false;
};

RegEffects EffectsOf(COp op) {
  switch (op) {
    case COp::kMovImm:
    case COp::kMov32Imm:
    case COp::kLdMapPtr:
      return {.writes_dst = true};
    case COp::kMovReg:
    case COp::kMov32Reg:
      return {.reads_src = true, .writes_dst = true};
    case COp::kNeg:
    case COp::kBe16:
    case COp::kBe32:
    case COp::kBe64:
      return {.reads_dst = true, .writes_dst = true};
    case COp::kLdxB: case COp::kLdxH: case COp::kLdxW: case COp::kLdxDW:
    case COp::kLdxBChk: case COp::kLdxHChk:
    case COp::kLdxWChk: case COp::kLdxDWChk:
      return {.reads_src = true, .writes_dst = true};
    case COp::kStxB: case COp::kStxH: case COp::kStxW: case COp::kStxDW:
    case COp::kStxBChk: case COp::kStxHChk:
    case COp::kStxWChk: case COp::kStxDWChk:
    case COp::kAtomicAddDW: case COp::kAtomicAddDWChk:
      return {.reads_dst = true, .reads_src = true};
    case COp::kStB: case COp::kStH: case COp::kStW: case COp::kStDW:
    case COp::kStBChk: case COp::kStHChk: case COp::kStWChk:
    case COp::kStDWChk:
      return {.reads_dst = true};
    default: {
      // Remaining ALU ops: reg flavors read dst+src, imm flavors read dst.
      const bool reg_flavor =
          op == COp::kAddReg || op == COp::kSubReg || op == COp::kMulReg ||
          op == COp::kDivReg || op == COp::kModReg || op == COp::kOrReg ||
          op == COp::kAndReg || op == COp::kLshReg || op == COp::kRshReg ||
          op == COp::kArshReg;
      return {.reads_dst = true, .reads_src = reg_flavor, .writes_dst = true};
    }
  }
}

bool IsBarrierCOp(COp op) {
  return COpIdx(op) >= COpIdx(COp::kJa);  // jumps, calls, ldmapptr, exit
}

}  // namespace

std::string_view ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kInterpret: return "interpret";
    case ExecMode::kCompiled: return "compiled";
    case ExecMode::kCompiledParanoid: return "compiled-paranoid";
    case ExecMode::kNative: return "native";
  }
  return "unknown";
}

std::optional<ExecMode> ExecModeFromName(std::string_view name) {
  for (ExecMode mode : {ExecMode::kInterpret, ExecMode::kCompiled,
                        ExecMode::kCompiledParanoid, ExecMode::kNative}) {
    if (name == ExecModeName(mode)) return mode;
  }
  return std::nullopt;
}

ExecMode EffectiveExecMode(const CompiledProgram* compiled) {
  if (compiled == nullptr) return ExecMode::kInterpret;
  if (compiled->paranoid) return ExecMode::kCompiledParanoid;
  if (compiled->native != nullptr) return ExecMode::kNative;
  return ExecMode::kCompiled;
}

StatusOr<CompiledProgram> Compile(const Program& prog, ProgramContext context,
                                  const CompileOptions& options) {
  AnalysisFacts own_facts;
  if (!options.assume_verified) {
    SYRUP_RETURN_IF_ERROR(Verify(prog, context, {}, nullptr, &own_facts));
  }
  const size_t n = prog.insns.size();
  if (n == 0) {
    return InvalidArgumentError("cannot compile an empty program");
  }

  // Verifier facts: explicit ones win, else whatever the internal pass just
  // produced. Size-checked so stale facts from a different program are
  // silently ignored rather than miscompiling.
  const AnalysisFacts* facts =
      options.facts != nullptr ? options.facts : &own_facts;
  const bool use_facts = options.optimize && !facts->empty() &&
                         facts->visited.size() == n &&
                         facts->edges.size() == n;

  CompileStats stats;
  stats.input_insns = n;

  // Reachability from the entry. The verifier only visits reachable
  // instructions, so a verified program may still carry arbitrary bytes in
  // dead slots — wild jump offsets, unknown helper ids. Those slots are
  // dropped here rather than translated (they could never execute).
  //
  // With verifier facts the walk is tighter than the static CFG: a pc the
  // abstract interpretation never reached lies on no feasible path, and a
  // conditional edge it never took cannot be taken at runtime, so neither
  // is followed. (Abstract states over-approximate every concrete run, so
  // "never explored" really does mean "never executed".)
  std::vector<bool> reachable(n, false);
  const auto walk = [&](std::vector<bool>& seen,
                        bool apply_facts) -> Status {
    std::vector<size_t> work;
    seen[0] = true;
    work.push_back(0);
    while (!work.empty()) {
      const size_t pc = work.back();
      work.pop_back();
      const Insn& in = prog.insns[pc];
      if (in.op == Op::kExit) continue;
      bool follow_taken = true;
      bool follow_fall = true;
      if (apply_facts && IsCondJumpOp(in.op)) {
        const uint8_t e = facts->edges[pc];
        follow_taken = (e & AnalysisFacts::kEdgeTaken) != 0;
        follow_fall = (e & AnalysisFacts::kEdgeFall) != 0;
      }
      if (IsJumpOp(in.op)) {
        const int64_t target = static_cast<int64_t>(pc) + 1 + in.off;
        if (target < 0 || target >= static_cast<int64_t>(n)) {
          return InvalidArgumentError("compile: jump target out of range");
        }
        if (follow_taken && !seen[target]) {
          seen[target] = true;
          work.push_back(static_cast<size_t>(target));
        }
        if (in.op == Op::kJa || !follow_fall) continue;
      }
      // Falling off the end is rejected by the verifier; should it happen
      // anyway (assume_verified misuse) the trailing sentinel catches it.
      if (pc + 1 < n && !seen[pc + 1]) {
        seen[pc + 1] = true;
        work.push_back(pc + 1);
      }
    }
    return OkStatus();
  };
  SYRUP_RETURN_IF_ERROR(walk(reachable, use_facts));
  if (use_facts) {
    std::vector<bool> static_reachable(n, false);
    SYRUP_RETURN_IF_ERROR(walk(static_reachable, false));
    for (size_t pc = 0; pc < n; ++pc) {
      if (static_reachable[pc] && !reachable[pc]) ++stats.facts_dead_insns;
    }
  }

  // Block leaders: the entry plus every live jump target. The constant
  // lattice below resets at leaders because control can enter there from
  // a path the linear scan did not follow.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (size_t pc = 0; pc < n; ++pc) {
    if (!reachable[pc]) continue;
    const Insn& in = prog.insns[pc];
    if (IsJumpOp(in.op)) {
      leader[static_cast<size_t>(static_cast<int64_t>(pc) + 1 + in.off)] =
          true;
    }
  }

  // 1:1 translation with per-block constant folding. Deletions keep their
  // slot so jump targets can be remapped afterwards.
  struct Slot {
    CInsn c;
    bool emit = true;
    bool is_jump = false;    // c.arg must be remapped from `target`
    size_t target = 0;       // original-pc jump target
  };
  std::vector<Slot> slots(n);

  // Known-constant lattice. A register is only "known" when its value was
  // built from immediates through pure scalar ALU — never from context
  // arguments, loads, map pointers, or helper results — so folding is
  // independent of runtime state.
  std::array<bool, kNumRegisters> known{};
  std::array<uint64_t, kNumRegisters> kval{};

  for (size_t pc = 0; pc < n; ++pc) {
    if (!reachable[pc]) {
      slots[pc].emit = false;
      ++stats.eliminated_insns;
      continue;
    }
    if (leader[pc]) known.fill(false);
    const Insn& in = prog.insns[pc];
    Slot& s = slots[pc];
    s.c.dst = in.dst;
    s.c.src = in.src;

    if (InRange(in.op, Op::kAddReg, Op::kBe64)) {
      const bool reg_flavor = UsesSrcReg(in.op);
      const bool has_operand = !(in.op == Op::kNeg ||
                                 InRange(in.op, Op::kBe16, Op::kBe64));
      uint64_t operand = static_cast<uint64_t>(in.imm);
      bool operand_known = true;
      if (reg_flavor) {
        operand = kval[in.src];
        operand_known = known[in.src];
      }
      const bool reads_dst = AluReadsDst(in.op);
      if (options.optimize && (!has_operand || operand_known) &&
          (!reads_dst || known[in.dst])) {
        const uint64_t folded = EvalAlu(in.op, kval[in.dst], operand);
        s.c.op = COp::kMovImm;
        s.c.src = 0;
        s.c.imm = folded;
        if (in.op != Op::kMovImm && in.op != Op::kMov32Imm) ++stats.folded_alu;
        known[in.dst] = true;
        kval[in.dst] = folded;
        continue;
      }
      // Peephole over imm flavors with unknown dst: drop no-ops, turn
      // mul/div/mod by powers of two into shifts/masks.
      if (options.optimize && !reg_flavor && has_operand) {
        const uint64_t imm = operand;
        bool handled = false;
        switch (in.op) {
          case Op::kAddImm: case Op::kSubImm: case Op::kOrImm:
          case Op::kLshImm: case Op::kRshImm: case Op::kArshImm:
            if (imm == 0) {
              s.emit = false;
              ++stats.eliminated_insns;
              handled = true;
            }
            break;
          case Op::kAndImm:
            if (imm == ~uint64_t{0}) {
              s.emit = false;
              ++stats.eliminated_insns;
              handled = true;
            }
            break;
          case Op::kMulImm:
            if (imm == 1) {
              s.emit = false;
              ++stats.eliminated_insns;
              handled = true;
            } else if (imm != 0 && std::has_single_bit(imm)) {
              s.c.op = COp::kLshImm;
              s.c.imm = static_cast<uint64_t>(std::countr_zero(imm));
              ++stats.strength_reduced;
              handled = true;
            }
            break;
          case Op::kDivImm:
            if (imm == 1) {
              s.emit = false;
              ++stats.eliminated_insns;
              handled = true;
            } else if (imm != 0 && std::has_single_bit(imm)) {
              s.c.op = COp::kRshImm;
              s.c.imm = static_cast<uint64_t>(std::countr_zero(imm));
              ++stats.strength_reduced;
              handled = true;
            }
            break;
          case Op::kModImm:
            if (imm == 1) {
              s.c.op = COp::kMovImm;
              s.c.imm = 0;
              ++stats.strength_reduced;
              known[in.dst] = true;
              kval[in.dst] = 0;
              handled = true;
            } else if (std::has_single_bit(imm)) {
              s.c.op = COp::kAndImm;
              s.c.imm = imm - 1;
              ++stats.strength_reduced;
              handled = true;
            }
            break;
          default:
            break;
        }
        // Lattice: this path only runs with dst unknown (known dst folds
        // above), eliminated no-ops leave dst untouched, and the mod-by-1
        // case set its known value itself.
        if (handled) continue;
      }
      s.c.op = AluCOp(in.op);
      s.c.imm = static_cast<uint64_t>(in.imm);
      known[in.dst] = false;
    } else if (InRange(in.op, Op::kLdxB, Op::kAtomicAddDW)) {
      s.c.op = MemCOp(in.op, options.paranoid);
      s.c.arg = in.off;
      s.c.imm = static_cast<uint64_t>(in.imm);
      if (!options.paranoid) ++stats.elided_checks;
      if (IsLoadOp(in.op)) known[in.dst] = false;
    } else if (InRange(in.op, Op::kJa, Op::kJsetImm)) {
      const auto target = static_cast<size_t>(pc + 1 + in.off);
      s.is_jump = true;
      s.target = target;
      if (in.op == Op::kJa) {
        s.c.op = COp::kJa;
      } else if (use_facts && facts->edges[pc] == AnalysisFacts::kEdgeTaken) {
        // The range analysis proved this branch always taken.
        s.c.op = COp::kJa;
        ++stats.facts_decided_branches;
      } else if (use_facts && facts->edges[pc] == AnalysisFacts::kEdgeFall) {
        // ... or never taken: the instruction disappears.
        s.emit = false;
        s.is_jump = false;
        ++stats.facts_decided_branches;
      } else {
        bool fold = false;
        bool taken = false;
        if (options.optimize && known[in.dst]) {
          if (UsesSrcReg(in.op)) {
            if (known[in.src]) {
              fold = true;
              taken = EvalCond(in.op, kval[in.dst], kval[in.src]);
            }
          } else {
            fold = true;
            taken = EvalCond(in.op, kval[in.dst],
                             static_cast<uint64_t>(in.imm));
          }
        }
        if (fold && taken) {
          s.c.op = COp::kJa;
          ++stats.strength_reduced;
        } else if (fold) {
          s.emit = false;
          s.is_jump = false;
          ++stats.eliminated_insns;
        } else {
          s.c.op = JumpCOp(in.op);
          s.c.imm = static_cast<uint64_t>(in.imm);
        }
      }
    } else if (in.op == Op::kLdMapFd) {
      const auto index = static_cast<size_t>(in.imm);
      if (index >= prog.maps.size()) {
        return InternalError("compile: ldmapfd index out of range");
      }
      s.c.op = COp::kLdMapPtr;
      s.c.imm = reinterpret_cast<uint64_t>(prog.maps[index].get());
      known[in.dst] = false;
    } else if (in.op == Op::kCall) {
      switch (static_cast<HelperId>(in.imm)) {
        case HelperId::kMapLookupElem:
          s.c.op = options.paranoid ? COp::kCallLookupChk : COp::kCallLookup;
          if (!options.paranoid) ++stats.elided_checks;  // key bounds
          break;
        case HelperId::kMapUpdateElem:
          s.c.op = options.paranoid ? COp::kCallUpdateChk : COp::kCallUpdate;
          if (!options.paranoid) stats.elided_checks += 2;  // key + value
          break;
        case HelperId::kMapDeleteElem:
          s.c.op = options.paranoid ? COp::kCallDeleteChk : COp::kCallDelete;
          if (!options.paranoid) ++stats.elided_checks;  // key bounds
          break;
        case HelperId::kMapLookupBatch:
          s.c.op = options.paranoid ? COp::kCallLookupBatchChk
                                    : COp::kCallLookupBatch;
          if (!options.paranoid) stats.elided_checks += 2;  // keys + out
          break;
        case HelperId::kGetPrandomU32:
          s.c.op = COp::kCallRandom;
          break;
        case HelperId::kKtimeGetNs:
          s.c.op = COp::kCallKtime;
          break;
        case HelperId::kTailCall:
          s.c.op = COp::kCallTailCall;
          break;
        default:
          return InvalidArgumentError("compile: unknown helper id " +
                                      std::to_string(in.imm));
      }
      // r0 gets the result, r1..r5 are clobbered.
      for (int r = 0; r <= 5; ++r) known[r] = false;
    } else if (in.op == Op::kExit) {
      s.c.op = COp::kExit;
    } else {
      return InvalidArgumentError("compile: invalid opcode");
    }
  }

  // Dead-move elimination: a constant move whose register is overwritten
  // before any possible read (scanning stops at block ends and barriers)
  // produced its value for nothing — folding already forwarded it.
  if (options.optimize) {
    for (size_t i = 0; i < n; ++i) {
      Slot& s = slots[i];
      if (!s.emit) continue;
      if (s.c.op != COp::kMovImm && s.c.op != COp::kMov32Imm) continue;
      const uint8_t reg = s.c.dst;
      for (size_t j = i + 1; j < n; ++j) {
        if (leader[j]) break;  // live into a join point: keep
        const Slot& t = slots[j];
        if (!t.emit) continue;
        if (IsBarrierCOp(t.c.op)) break;  // jump/call/exit may read: keep
        const RegEffects e = EffectsOf(t.c.op);
        if ((e.reads_dst && t.c.dst == reg) ||
            (e.reads_src && t.c.src == reg)) {
          break;  // read before overwrite: keep
        }
        if (e.writes_dst && t.c.dst == reg) {
          s.emit = false;
          ++stats.eliminated_insns;
          break;
        }
      }
    }
  }

  // Final emission: compact deleted slots and rewrite jump targets to
  // absolute indices in the compacted code. A deleted target maps to the
  // next emitted instruction (fall-through equivalence).
  std::vector<int32_t> new_index(n + 1, 0);
  int32_t emitted = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    new_index[pc] = emitted;
    if (slots[pc].emit) ++emitted;
  }
  new_index[n] = emitted;

  CompiledProgram out;
  out.name = prog.name;
  out.maps = prog.maps;
  out.paranoid = options.paranoid;
  out.code.reserve(static_cast<size_t>(emitted) + 1);
  for (size_t pc = 0; pc < n; ++pc) {
    if (!slots[pc].emit) continue;
    CInsn c = slots[pc].c;
    if (slots[pc].is_jump) c.arg = new_index[slots[pc].target];
    out.code.push_back(c);
  }
  stats.output_insns = out.code.size();
  // Sentinel exit. Unreachable on verified paths; it turns the two ways an
  // unreachable trailing path could run off the end (a jump whose whole
  // target block was deleted, dead code after a final kExit) into a clean
  // return instead of an out-of-bounds fetch.
  out.code.push_back(CInsn{.op = COp::kExit});
  out.stats = stats;
  return out;
}

// --- Execution ------------------------------------------------------------

// Direct-threaded dispatch needs GNU computed goto; elsewhere (or with
// SYRUP_BPF_PORTABLE_DISPATCH defined, e.g. to benchmark the fallback) a
// plain switch loop runs the same handler bodies.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SYRUP_BPF_PORTABLE_DISPATCH)
#define SYRUP_BPF_THREADED_DISPATCH 1
#else
#define SYRUP_BPF_THREADED_DISPATCH 0
#endif

// Every COp, in enum order; the computed-goto table is generated from this
// list, so order mismatches break the static_assert below, not runtime.
#define SYRUP_COP_LIST(X)                                                    \
  X(kAddReg) X(kAddImm) X(kSubReg) X(kSubImm) X(kMulReg) X(kMulImm)          \
  X(kDivReg) X(kDivImm) X(kModReg) X(kModImm) X(kOrReg) X(kOrImm)            \
  X(kAndReg) X(kAndImm) X(kLshReg) X(kLshImm) X(kRshReg) X(kRshImm)          \
  X(kArshReg) X(kArshImm) X(kNeg) X(kMovReg) X(kMovImm) X(kMov32Reg)         \
  X(kMov32Imm) X(kBe16) X(kBe32) X(kBe64)                                    \
  X(kLdxB) X(kLdxH) X(kLdxW) X(kLdxDW)                                       \
  X(kStxB) X(kStxH) X(kStxW) X(kStxDW)                                       \
  X(kStB) X(kStH) X(kStW) X(kStDW) X(kAtomicAddDW)                           \
  X(kLdxBChk) X(kLdxHChk) X(kLdxWChk) X(kLdxDWChk)                           \
  X(kStxBChk) X(kStxHChk) X(kStxWChk) X(kStxDWChk)                           \
  X(kStBChk) X(kStHChk) X(kStWChk) X(kStDWChk) X(kAtomicAddDWChk)            \
  X(kJa)                                                                     \
  X(kJeqReg) X(kJeqImm) X(kJneReg) X(kJneImm)                                \
  X(kJgtReg) X(kJgtImm) X(kJgeReg) X(kJgeImm)                                \
  X(kJltReg) X(kJltImm) X(kJleReg) X(kJleImm)                                \
  X(kJsgtReg) X(kJsgtImm) X(kJsgeReg) X(kJsgeImm)                            \
  X(kJsltReg) X(kJsltImm) X(kJsleReg) X(kJsleImm)                            \
  X(kJsetReg) X(kJsetImm)                                                    \
  X(kCallLookup) X(kCallLookupChk) X(kCallUpdate) X(kCallUpdateChk)          \
  X(kCallDelete) X(kCallDeleteChk)                                           \
  X(kCallLookupBatch) X(kCallLookupBatchChk)                                 \
  X(kCallRandom) X(kCallKtime)                                               \
  X(kCallTailCall) X(kLdMapPtr) X(kExit)

namespace {
#define SYRUP_COP_COUNT(name) +1
constexpr size_t kNumListedCOps = 0 SYRUP_COP_LIST(SYRUP_COP_COUNT);
#undef SYRUP_COP_COUNT
static_assert(kNumListedCOps == static_cast<size_t>(COp::kNumCOps),
              "SYRUP_COP_LIST out of sync with the COp enum");
// The computed-goto table is indexed by the numeric COp value, so the list
// must be in exact enum order, not just complete.
#define SYRUP_COP_VALUE(name) COp::name,
constexpr COp kListedCOps[] = {SYRUP_COP_LIST(SYRUP_COP_VALUE)};
#undef SYRUP_COP_VALUE
constexpr bool ListedInEnumOrder() {
  for (size_t i = 0; i < kNumListedCOps; ++i) {
    if (static_cast<size_t>(kListedCOps[i]) != i) return false;
  }
  return true;
}
static_assert(ListedInEnumOrder(),
              "SYRUP_COP_LIST order diverged from the COp enum");
}  // namespace

StatusOr<ExecResult> CompiledExecutor::Run(const CompiledProgram& prog_in,
                                           uint64_t arg1, uint64_t arg2,
                                           bool args_are_packet) {
  // Native tier: when machine code was published at attach time, dispatch
  // straight into it. Identical observable semantics to the loop below
  // (same r0, map side effects, helper/instruction counts); programs the
  // JIT rejected never get here because `native` stays null.
  if (prog_in.native != nullptr && !prog_in.paranoid) {
    return RunNative(prog_in, env_, arg1, arg2);
  }
  ExecResult result;
  const CompiledProgram* prog = &prog_in;

  alignas(8) std::array<uint8_t, kStackSize> stack{};
  std::array<uint64_t, kNumRegisters> regs{};

  // Paranoid programs re-validate every access against the live regions,
  // exactly like the interpreter. Non-paranoid runs never touch `regions`;
  // the vector stays empty and never allocates.
  std::vector<Region> regions;
  bool base_regions_added = false;
  const auto ensure_base_regions = [&] {
    if (base_regions_added) return;
    base_regions_added = true;
    regions.push_back(Region{reinterpret_cast<uint64_t>(stack.data()),
                             stack.size(), /*writable=*/true});
    if (args_are_packet) {
      regions.push_back(Region{arg1, arg2 - arg1, /*writable=*/false});
    }
  };
  const auto readable = [&regions](uint64_t addr, uint64_t size) {
    for (const Region& r : regions) {
      if (RegionContains(r, addr, size)) return true;
    }
    return false;
  };
  const auto writable = [&regions](uint64_t addr, uint64_t size) {
    for (const Region& r : regions) {
      if (r.writable && RegionContains(r, addr, size)) return true;
    }
    return false;
  };

  const CInsn* code = nullptr;
  const CInsn* insn = nullptr;
  size_t ip = 0;

restart:  // tail-call target: rerun with fresh ip but original context args
  if (prog->paranoid) ensure_base_regions();
  code = prog->code.data();
  regs[1] = arg1;
  regs[2] = arg2;
  regs[10] = reinterpret_cast<uint64_t>(stack.data()) + stack.size();
  ip = 0;

#define D regs[insn->dst]
#define S regs[insn->src]
#define IMM (insn->imm)

#if SYRUP_BPF_THREADED_DISPATCH
#define SYRUP_LABEL_ADDR(name) &&lbl_##name,
  static const void* kDispatch[] = {SYRUP_COP_LIST(SYRUP_LABEL_ADDR)};
#undef SYRUP_LABEL_ADDR
#define VM_NEXT()                                                           \
  do {                                                                      \
    if (++result.insns_executed > kMaxInsns) {                              \
      return ResourceExhaustedError("instruction limit exceeded at runtime"); \
    }                                                                       \
    insn = &code[ip];                                                       \
    goto* kDispatch[static_cast<size_t>(insn->op)];                         \
  } while (0)
#define VM_CASE(name) lbl_##name
  VM_NEXT();
#else
#define VM_NEXT() continue
#define VM_CASE(name) case COp::name
  for (;;) {
    if (++result.insns_executed > kMaxInsns) {
      return ResourceExhaustedError("instruction limit exceeded at runtime");
    }
    insn = &code[ip];
    switch (insn->op) {
      default:
        return InternalError("bad compiled opcode");
#endif

  VM_CASE(kAddReg) : { D += S; ++ip; } VM_NEXT();
  VM_CASE(kAddImm) : { D += IMM; ++ip; } VM_NEXT();
  VM_CASE(kSubReg) : { D -= S; ++ip; } VM_NEXT();
  VM_CASE(kSubImm) : { D -= IMM; ++ip; } VM_NEXT();
  VM_CASE(kMulReg) : { D *= S; ++ip; } VM_NEXT();
  VM_CASE(kMulImm) : { D *= IMM; ++ip; } VM_NEXT();
  VM_CASE(kDivReg) : { D = S == 0 ? 0 : D / S; ++ip; } VM_NEXT();
  VM_CASE(kDivImm) : { D = IMM == 0 ? 0 : D / IMM; ++ip; } VM_NEXT();
  VM_CASE(kModReg) : { D = S == 0 ? 0 : D % S; ++ip; } VM_NEXT();
  VM_CASE(kModImm) : { D = IMM == 0 ? 0 : D % IMM; ++ip; } VM_NEXT();
  VM_CASE(kOrReg) : { D |= S; ++ip; } VM_NEXT();
  VM_CASE(kOrImm) : { D |= IMM; ++ip; } VM_NEXT();
  VM_CASE(kAndReg) : { D &= S; ++ip; } VM_NEXT();
  VM_CASE(kAndImm) : { D &= IMM; ++ip; } VM_NEXT();
  VM_CASE(kLshReg) : { D <<= (S & 63); ++ip; } VM_NEXT();
  VM_CASE(kLshImm) : { D <<= (IMM & 63); ++ip; } VM_NEXT();
  VM_CASE(kRshReg) : { D >>= (S & 63); ++ip; } VM_NEXT();
  VM_CASE(kRshImm) : { D >>= (IMM & 63); ++ip; } VM_NEXT();
  VM_CASE(kArshReg) : {
    D = static_cast<uint64_t>(static_cast<int64_t>(D) >> (S & 63));
    ++ip;
  } VM_NEXT();
  VM_CASE(kArshImm) : {
    D = static_cast<uint64_t>(static_cast<int64_t>(D) >> (IMM & 63));
    ++ip;
  } VM_NEXT();
  VM_CASE(kNeg) : { D = ~D + 1; ++ip; } VM_NEXT();
  VM_CASE(kMovReg) : { D = S; ++ip; } VM_NEXT();
  VM_CASE(kMovImm) : { D = IMM; ++ip; } VM_NEXT();
  VM_CASE(kMov32Reg) : { D = static_cast<uint32_t>(S); ++ip; } VM_NEXT();
  VM_CASE(kMov32Imm) : { D = static_cast<uint32_t>(IMM); ++ip; } VM_NEXT();
  VM_CASE(kBe16) : { D = internal::ByteSwap(D & 0xffff, 16); ++ip; } VM_NEXT();
  VM_CASE(kBe32) : {
    D = internal::ByteSwap(D & 0xffffffff, 32);
    ++ip;
  } VM_NEXT();
  VM_CASE(kBe64) : { D = internal::ByteSwap(D, 64); ++ip; } VM_NEXT();

  // Unchecked memory: bounds were proven by the verifier at compile time.
  VM_CASE(kLdxB) : { D = LoadUnaligned(S + insn->arg, 1); ++ip; } VM_NEXT();
  VM_CASE(kLdxH) : { D = LoadUnaligned(S + insn->arg, 2); ++ip; } VM_NEXT();
  VM_CASE(kLdxW) : { D = LoadUnaligned(S + insn->arg, 4); ++ip; } VM_NEXT();
  VM_CASE(kLdxDW) : { D = LoadUnaligned(S + insn->arg, 8); ++ip; } VM_NEXT();
  VM_CASE(kStxB) : { StoreUnaligned(D + insn->arg, S, 1); ++ip; } VM_NEXT();
  VM_CASE(kStxH) : { StoreUnaligned(D + insn->arg, S, 2); ++ip; } VM_NEXT();
  VM_CASE(kStxW) : { StoreUnaligned(D + insn->arg, S, 4); ++ip; } VM_NEXT();
  VM_CASE(kStxDW) : { StoreUnaligned(D + insn->arg, S, 8); ++ip; } VM_NEXT();
  VM_CASE(kStB) : { StoreUnaligned(D + insn->arg, IMM, 1); ++ip; } VM_NEXT();
  VM_CASE(kStH) : { StoreUnaligned(D + insn->arg, IMM, 2); ++ip; } VM_NEXT();
  VM_CASE(kStW) : { StoreUnaligned(D + insn->arg, IMM, 4); ++ip; } VM_NEXT();
  VM_CASE(kStDW) : { StoreUnaligned(D + insn->arg, IMM, 8); ++ip; } VM_NEXT();
  VM_CASE(kAtomicAddDW) : {
    // The verifier proves bounds but not 8-byte alignment; the alignment
    // check stays even unchecked (std::atomic on a misaligned address is UB).
    const uint64_t addr = D + insn->arg;
    if ((addr & 7) != 0) {
      return OutOfRangeError("runtime atomic unaligned");
    }
    reinterpret_cast<std::atomic<uint64_t>*>(addr)->fetch_add(
        S, std::memory_order_relaxed);
    ++ip;
  } VM_NEXT();

#define SYRUP_CHECKED_LOAD(name, size)                                \
  VM_CASE(name) : {                                                   \
    const uint64_t addr = S + insn->arg;                              \
    if (!readable(addr, size)) {                                      \
      return OutOfRangeError("runtime load out of bounds");           \
    }                                                                 \
    D = LoadUnaligned(addr, size);                                    \
    ++ip;                                                             \
  }                                                                   \
  VM_NEXT()
  SYRUP_CHECKED_LOAD(kLdxBChk, 1);
  SYRUP_CHECKED_LOAD(kLdxHChk, 2);
  SYRUP_CHECKED_LOAD(kLdxWChk, 4);
  SYRUP_CHECKED_LOAD(kLdxDWChk, 8);
#undef SYRUP_CHECKED_LOAD

#define SYRUP_CHECKED_STORE(name, value, size)                        \
  VM_CASE(name) : {                                                   \
    const uint64_t addr = D + insn->arg;                              \
    if (!writable(addr, size)) {                                      \
      return OutOfRangeError("runtime store out of bounds");          \
    }                                                                 \
    StoreUnaligned(addr, value, size);                                \
    ++ip;                                                             \
  }                                                                   \
  VM_NEXT()
  SYRUP_CHECKED_STORE(kStxBChk, S, 1);
  SYRUP_CHECKED_STORE(kStxHChk, S, 2);
  SYRUP_CHECKED_STORE(kStxWChk, S, 4);
  SYRUP_CHECKED_STORE(kStxDWChk, S, 8);
  SYRUP_CHECKED_STORE(kStBChk, IMM, 1);
  SYRUP_CHECKED_STORE(kStHChk, IMM, 2);
  SYRUP_CHECKED_STORE(kStWChk, IMM, 4);
  SYRUP_CHECKED_STORE(kStDWChk, IMM, 8);
#undef SYRUP_CHECKED_STORE

  VM_CASE(kAtomicAddDWChk) : {
    const uint64_t addr = D + insn->arg;
    if (!writable(addr, 8) || (addr & 7) != 0) {
      return OutOfRangeError("runtime atomic out of bounds/unaligned");
    }
    reinterpret_cast<std::atomic<uint64_t>*>(addr)->fetch_add(
        S, std::memory_order_relaxed);
    ++ip;
  } VM_NEXT();

  VM_CASE(kJa) : { ip = static_cast<size_t>(insn->arg); } VM_NEXT();
#define SYRUP_COND_JUMP(name, cond)                                   \
  VM_CASE(name) : {                                                   \
    ip = (cond) ? static_cast<size_t>(insn->arg) : ip + 1;            \
  }                                                                   \
  VM_NEXT()
  SYRUP_COND_JUMP(kJeqReg, D == S);
  SYRUP_COND_JUMP(kJeqImm, D == IMM);
  SYRUP_COND_JUMP(kJneReg, D != S);
  SYRUP_COND_JUMP(kJneImm, D != IMM);
  SYRUP_COND_JUMP(kJgtReg, D > S);
  SYRUP_COND_JUMP(kJgtImm, D > IMM);
  SYRUP_COND_JUMP(kJgeReg, D >= S);
  SYRUP_COND_JUMP(kJgeImm, D >= IMM);
  SYRUP_COND_JUMP(kJltReg, D < S);
  SYRUP_COND_JUMP(kJltImm, D < IMM);
  SYRUP_COND_JUMP(kJleReg, D <= S);
  SYRUP_COND_JUMP(kJleImm, D <= IMM);
  SYRUP_COND_JUMP(kJsgtReg,
                  static_cast<int64_t>(D) > static_cast<int64_t>(S));
  SYRUP_COND_JUMP(kJsgtImm,
                  static_cast<int64_t>(D) > static_cast<int64_t>(IMM));
  SYRUP_COND_JUMP(kJsgeReg,
                  static_cast<int64_t>(D) >= static_cast<int64_t>(S));
  SYRUP_COND_JUMP(kJsgeImm,
                  static_cast<int64_t>(D) >= static_cast<int64_t>(IMM));
  SYRUP_COND_JUMP(kJsltReg,
                  static_cast<int64_t>(D) < static_cast<int64_t>(S));
  SYRUP_COND_JUMP(kJsltImm,
                  static_cast<int64_t>(D) < static_cast<int64_t>(IMM));
  SYRUP_COND_JUMP(kJsleReg,
                  static_cast<int64_t>(D) <= static_cast<int64_t>(S));
  SYRUP_COND_JUMP(kJsleImm,
                  static_cast<int64_t>(D) <= static_cast<int64_t>(IMM));
  SYRUP_COND_JUMP(kJsetReg, (D & S) != 0);
  SYRUP_COND_JUMP(kJsetImm, (D & IMM) != 0);
#undef SYRUP_COND_JUMP

#define SYRUP_CLOBBER_ARGS() \
  regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0

  // Helpers. The verifier proved r1 is a non-null map pointer of the right
  // type and the key/value pointers in bounds; the unchecked flavors trust
  // that, the *Chk flavors re-validate like the interpreter.
  VM_CASE(kCallLookup) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    regs[0] = reinterpret_cast<uint64_t>(
        map->Lookup(reinterpret_cast<const void*>(regs[2])));
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallLookupChk) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const uint64_t key = regs[2];
    if (map == nullptr || !readable(key, map->spec().key_size)) {
      return OutOfRangeError("map_lookup: bad map/key");
    }
    void* value = map->Lookup(reinterpret_cast<const void*>(key));
    regs[0] = reinterpret_cast<uint64_t>(value);
    if (value != nullptr) {
      regions.push_back(
          Region{regs[0], map->spec().value_size, /*writable=*/true});
    }
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallUpdate) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const Status s = map->Update(reinterpret_cast<const void*>(regs[2]),
                                 reinterpret_cast<const void*>(regs[3]),
                                 UpdateFlag::kAny);
    regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallUpdateChk) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const uint64_t key = regs[2];
    const uint64_t value = regs[3];
    if (map == nullptr || !readable(key, map->spec().key_size) ||
        !readable(value, map->spec().value_size)) {
      return OutOfRangeError("map_update: bad map/key/value");
    }
    const Status s = map->Update(reinterpret_cast<const void*>(key),
                                 reinterpret_cast<const void*>(value),
                                 UpdateFlag::kAny);
    regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallDelete) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const Status s = map->Delete(reinterpret_cast<const void*>(regs[2]));
    regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallDeleteChk) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const uint64_t key = regs[2];
    if (map == nullptr || !readable(key, map->spec().key_size)) {
      return OutOfRangeError("map_delete: bad map/key");
    }
    const Status s = map->Delete(reinterpret_cast<const void*>(key));
    regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallLookupBatch) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    regs[0] = map->LookupBatchU64(static_cast<uint32_t>(regs[4]),
                                  reinterpret_cast<const void*>(regs[2]),
                                  reinterpret_cast<uint64_t*>(regs[3]));
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallLookupBatchChk) : {
    ++result.helper_calls;
    auto* map = reinterpret_cast<Map*>(regs[1]);
    const uint64_t keys = regs[2];
    const uint64_t out = regs[3];
    const uint64_t n = regs[4];
    if (map == nullptr || n == 0 || n > Map::kMaxLookupBatch ||
        map->spec().value_size != sizeof(uint64_t) ||
        !readable(keys, n * map->spec().key_size) ||
        !writable(out, n * sizeof(uint64_t))) {
      return OutOfRangeError("map_lookup_batch: bad map/keys/out/n");
    }
    regs[0] = map->LookupBatchU64(static_cast<uint32_t>(n),
                                  reinterpret_cast<const void*>(keys),
                                  reinterpret_cast<uint64_t*>(out));
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallRandom) : {
    ++result.helper_calls;
    regs[0] = env_.random_u32 ? env_.random_u32() : 0;
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallKtime) : {
    ++result.helper_calls;
    regs[0] = env_.ktime_ns ? env_.ktime_ns() : 0;
    SYRUP_CLOBBER_ARGS();
    ++ip;
  } VM_NEXT();
  VM_CASE(kCallTailCall) : {
    ++result.helper_calls;
    if (env_.resolve_compiled == nullptr) {
      regs[0] = static_cast<uint64_t>(-1);
      SYRUP_CLOBBER_ARGS();
      ++ip;
      VM_NEXT();
    }
    auto* array = reinterpret_cast<Map*>(regs[2]);
    const auto index = static_cast<uint32_t>(regs[3]);
    if (array == nullptr || array->spec().type != MapType::kProgArray) {
      return InvalidArgumentError("tail_call: not a prog array");
    }
    void* slot = array->Lookup(&index);
    const uint64_t prog_id = slot == nullptr ? 0 : Map::AtomicLoad(slot);
    const CompiledProgram* target =
        prog_id == 0 ? nullptr : env_.resolve_compiled(prog_id);
    if (target == nullptr) {
      // Miss: falls through, r0 = -1 (caller decides what to do). Matches
      // the interpreter, which clobbers r1..r5 on a miss but not on a hit.
      regs[0] = static_cast<uint64_t>(-1);
      SYRUP_CLOBBER_ARGS();
      ++ip;
      VM_NEXT();
    }
    if (++result.tail_calls > kMaxTailCalls) {
      return ResourceExhaustedError("tail call chain too long");
    }
    prog = target;
    goto restart;
  }

  VM_CASE(kLdMapPtr) : { D = IMM; ++ip; } VM_NEXT();

  VM_CASE(kExit) : {
    result.r0 = regs[0];
    return result;
  }

#if !SYRUP_BPF_THREADED_DISPATCH
    }  // switch
  }    // for
#endif

#undef SYRUP_CLOBBER_ARGS
#undef VM_CASE
#undef VM_NEXT
#undef D
#undef S
#undef IMM
}

}  // namespace syrup::bpf
