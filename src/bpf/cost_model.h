// Static cost model for policy programs: per-opcode ns tables for each
// execution tier plus per-helper costs parameterized by map kind. The
// verifier's post-acceptance cost pass (see verifier.h, AnalysisFacts::cost)
// walks every feasible path with these tables to bound worst-/best-case
// execution cost, and Syrupd compares the bound against per-hook latency
// budgets at deploy time.
#ifndef SYRUP_SRC_BPF_COST_MODEL_H_
#define SYRUP_SRC_BPF_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/bpf/insn.h"
#include "src/map/map.h"

namespace syrup::bpf {

enum class ExecMode : uint8_t;  // compiler.h; forward-declared to avoid cycle

// Cost tiers collapse the four execution modes into the three distinct cost
// profiles: kCompiledParanoid shares kCompiled's table (the extra runtime
// checks are already priced into the compiled per-op costs, which are upper
// bounds for both variants).
enum class CostTier : uint8_t {
  kInterpret = 0,
  kCompiled = 1,
  kNative = 2,
};

inline constexpr size_t kNumCostTiers = 3;

std::string_view CostTierName(CostTier tier);
CostTier CostTierOf(ExecMode mode);

// Per-tier, per-opcode execution costs in nanoseconds, plus helper-body
// costs parameterized by map kind. All entries are intended as host upper
// bounds: the soundness direction users rely on is measured <= predicted.
//
// Costs are charged per *source* instruction along verifier-explored paths.
// The compiled and native tiers execute at most as many instructions as the
// source path (constant folding and check elision only shrink), so a source
// path priced with the compiled/native tables over-predicts those tiers —
// conservative in the right direction.
struct CostModel {
  // Dispatch + execute cost of one opcode at each tier. The kCall entry
  // covers calling-convention overhead only; the helper body is priced
  // separately below.
  double op_ns[kNumCostTiers][kNumOps] = {};

  // Fixed per-Run() overhead (register/stack setup, entry/exit). Dominates
  // tiny programs, which is why the model carries it explicitly instead of
  // smearing it over per-op costs.
  double exec_overhead_ns[kNumCostTiers] = {};

  // Helper-body costs. Map helpers depend on the map kind (array index vs
  // hash probe vs per-CPU shard); bodies run as host C++ at every tier, so
  // these are tier-independent.
  double lookup_ns[kNumMapTypes] = {};
  double update_ns[kNumMapTypes] = {};
  double delete_ns[kNumMapTypes] = {};
  double random_ns = 0;
  double ktime_ns = 0;
  double tail_call_ns = 0;

  // Body cost of `helper` against a map of kind `map_type` (ignored for
  // non-map helpers). `batch_count` scales the batched lookup helper: the
  // batch is priced as n independent probes, a sound upper bound since the
  // software pipeline only overlaps their memory latencies.
  double HelperNs(HelperId helper, MapType map_type,
                  uint32_t batch_count = 1) const;

  // Full cost of executing `insn` once at `tier`: opcode dispatch cost plus,
  // for kCall, the helper body (map helpers priced by `helper_map_type`;
  // `batch_count` is the proven r4 constant for map_lookup_batch).
  double InsnNs(const Insn& insn, MapType helper_map_type, CostTier tier,
                uint32_t batch_count = 1) const;
};

// Checked-in calibration constants: deterministic (identical on every host),
// used for golden output (`syrupctl cost`), lint thresholds, and deploy-time
// budget enforcement. Cross-validated against bench/policy_exec.
const CostModel& DefaultCostModel();

// Measures this host with small straight-line calibration programs per tier
// (and per-map-kind helper microruns), then scales DefaultCostModel up to
// cover the measurements with margin. Never returns a model cheaper than the
// default, so calibration only widens bounds. Use for cost-vs-reality
// differential tests: a sanitizer or slow host inflates calibration and
// measurement alike.
CostModel CalibratedCostModel();

// Result of the verifier's cost pass over all feasible paths.
struct CostFacts {
  // True when the pass explored every feasible path to EXIT within budget.
  // False (with all other fields zero) when the program was not analyzed or
  // the pass gave up; never a verification failure by itself.
  bool bounded = false;
  // Program performs tail calls: the bounds below cover this program only,
  // not the programs it may jump to.
  bool has_tail_call = false;
  // Worst-/best-case executed source-instruction count over feasible paths.
  // Upper-bounds ExecResult::insns_executed for the interpreter and (because
  // folding only shrinks) the compiled/native accounting.
  uint64_t wcet_insns = 0;
  uint64_t best_insns = 0;
  // Worst-/best-case wall time per execution at each tier, including the
  // per-Run() overhead. best_ns is the minimum over *explored* paths (cost
  // pruning may skip some cheap suffixes), so treat it as approximate.
  double wcet_ns[kNumCostTiers] = {};
  double best_ns[kNumCostTiers] = {};
  // The concrete hottest path: pc sequence of the feasible path with the
  // highest native-tier cost (ties broken toward more instructions).
  std::vector<uint32_t> hottest_path;
};

// Renders "pc0 -> pc1 -> ... -> pcN" for diagnostics.
std::string FormatPath(const std::vector<uint32_t>& path);

// Reference budgets for the verifier's path-over-budget lint, evaluated at
// the compiled tier (the default deploy tier). These mirror the tightest
// packet-hook budget (kXdpOffload) and the thread-hook budget in
// DefaultHookBudgetNs (src/core/hook.h); the real per-hook table lives
// there, in the layer that knows about hooks.
inline constexpr double kTightestPacketBudgetNs = 1000.0;
inline constexpr double kThreadBudgetNs = 20000.0;

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_COST_MODEL_H_
