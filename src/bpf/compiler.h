// Ahead-of-time translation of verified policy programs (the "JIT" tier).
//
// The paper's policies run at ns-scale because the kernel JIT-compiles
// verified eBPF to native code. This module closes most of that gap for the
// reproduction's VM without emitting machine code: a verified Program is
// translated once, at attach time, into a pre-decoded execution form —
//
//   * operands resolved: map references become direct Map* pointers, helper
//     ids become dedicated opcodes (no helper-id switch per call),
//   * jump offsets rewritten to absolute instruction indices,
//   * constant folding and peephole strength reduction over ALU chains
//     (mul/div/mod by a power of two become shifts/masks, branches with
//     both sides known become unconditional or disappear),
//   * the per-access runtime memory re-validation of src/bpf/interpreter.cc
//     is elided wherever it is redundant: the verifier already proved every
//     packet/stack/map-value access in bounds on every path, so the
//     compiled form loads and stores directly. The `paranoid` flag keeps
//     the full region re-validation (defense in depth stays selectable).
//
// The compiled form executes through a direct-threaded (computed-goto)
// dispatch loop with a portable switch fallback. Syrupd caches one
// CompiledProgram per deployed program id, so compilation happens once per
// attach and every hook (XDP, socket select, thread scheduling via the
// ghOSt shim) runs the compiled form.
#ifndef SYRUP_SRC_BPF_COMPILER_H_
#define SYRUP_SRC_BPF_COMPILER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/bpf/interpreter.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/common/status.h"

namespace syrup::bpf {

// How a deployed bytecode policy is executed. kCompiled is the default
// deployment tier; kInterpret is kept for ablation (the pre-PR behavior)
// and kCompiledParanoid for defense in depth with pre-decoded dispatch.
// kNative additionally lowers the pre-decoded form to x86-64 machine code
// at attach time (src/bpf/jit.h); hosts or programs the JIT cannot handle
// fall back to kCompiled transparently (EffectiveExecMode reports which
// tier actually runs).
enum class ExecMode : uint8_t {
  kInterpret = 0,         // decode-per-instruction switch interpreter
  kCompiled = 1,          // pre-decoded, checks elided where verified
  kCompiledParanoid = 2,  // pre-decoded, runtime memory checks retained
  kNative = 3,            // copy-and-patch x86-64 code, compiled fallback
};

std::string_view ExecModeName(ExecMode mode);

// Parses an ExecModeName back into the mode ("interpret", "compiled",
// "compiled-paranoid", "native"); nullopt for anything else.
std::optional<ExecMode> ExecModeFromName(std::string_view name);

struct CompileOptions {
  // Keep the runtime memory region re-validation on every access (and on
  // helper pointer arguments). Slower; the verifier makes these checks
  // unreachable, so they exist purely as defense in depth.
  bool paranoid = false;
  // Constant folding, dead-move elimination, and peephole strength
  // reduction. Off: plain pre-decode + operand resolution only.
  bool optimize = true;
  // Skip the internal verification pass. Only set when the caller has just
  // run Verify() on the identical program (syrupd's deploy path does);
  // compiling an unverified program with checks elided is unsound.
  bool assume_verified = false;
  // Per-instruction facts from the verifier's abstract interpretation.
  // Instructions proven unreachable on every feasible path are dropped, and
  // conditional branches whose edges only ever resolved one way become
  // unconditional (or disappear). When null and the internal verification
  // pass runs, its own facts are used; with assume_verified the deploy path
  // should pass the facts it got from Verify(). Must outlive Compile().
  const AnalysisFacts* facts = nullptr;
};

struct CompileStats {
  size_t input_insns = 0;
  size_t output_insns = 0;
  size_t folded_alu = 0;         // ALU ops folded to constant moves
  size_t eliminated_insns = 0;   // dead moves + decided branches removed
  size_t strength_reduced = 0;   // mul/div/mod -> shift/mask rewrites
  size_t elided_checks = 0;      // runtime memory validations removed
  // Analysis-driven eliminations (0 unless verifier facts were available):
  size_t facts_dead_insns = 0;        // statically live, dynamically dead
  size_t facts_decided_branches = 0;  // branches the range analysis decided
};

// Pre-decoded opcodes. Memory ops come in an unchecked (verifier-trusted)
// and a checked (paranoid) flavor so the dispatch loop stays branch-free
// about which mode it is in.
enum class COp : uint8_t {
  kAddReg, kAddImm, kSubReg, kSubImm, kMulReg, kMulImm,
  kDivReg, kDivImm, kModReg, kModImm, kOrReg, kOrImm,
  kAndReg, kAndImm, kLshReg, kLshImm, kRshReg, kRshImm,
  kArshReg, kArshImm, kNeg, kMovReg, kMovImm, kMov32Reg, kMov32Imm,
  kBe16, kBe32, kBe64,

  // Unchecked memory (bounds proven by the verifier at compile time).
  kLdxB, kLdxH, kLdxW, kLdxDW,
  kStxB, kStxH, kStxW, kStxDW,
  kStB, kStH, kStW, kStDW,
  kAtomicAddDW,  // alignment still checked (the verifier does not prove it)

  // Checked memory (paranoid mode): re-validates against the live regions.
  kLdxBChk, kLdxHChk, kLdxWChk, kLdxDWChk,
  kStxBChk, kStxHChk, kStxWChk, kStxDWChk,
  kStBChk, kStHChk, kStWChk, kStDWChk,
  kAtomicAddDWChk,

  // Jumps: `arg` is the absolute index of the taken target.
  kJa,
  kJeqReg, kJeqImm, kJneReg, kJneImm,
  kJgtReg, kJgtImm, kJgeReg, kJgeImm,
  kJltReg, kJltImm, kJleReg, kJleImm,
  kJsgtReg, kJsgtImm, kJsgeReg, kJsgeImm,
  kJsltReg, kJsltImm, kJsleReg, kJsleImm,
  kJsetReg, kJsetImm,

  // Helpers, specialized per id at compile time. *Chk variants re-validate
  // the key/value pointer arguments (paranoid mode).
  kCallLookup, kCallLookupChk,
  kCallUpdate, kCallUpdateChk,
  kCallDelete, kCallDeleteChk,
  kCallLookupBatch, kCallLookupBatchChk,
  kCallRandom, kCallKtime, kCallTailCall,

  kLdMapPtr,  // imm carries the resolved Map* (maps vector keeps it alive)
  kExit,

  kNumCOps,  // sentinel: dispatch table size
};

struct CInsn {
  COp op = COp::kExit;
  uint8_t dst = 0;
  uint8_t src = 0;
  int32_t arg = 0;   // memory offset, or absolute jump target index
  uint64_t imm = 0;  // immediate operand or resolved pointer
};

class JitProgram;  // src/bpf/jit.h

// The cached attach-time artifact. Holds shared ownership of the program's
// maps because kLdMapPtr instructions embed raw Map* operands.
struct CompiledProgram {
  std::string name;
  std::vector<CInsn> code;
  std::vector<std::shared_ptr<Map>> maps;
  bool paranoid = false;
  CompileStats stats;
  // Machine code published by the native tier (ExecMode::kNative), null on
  // every other tier and whenever the JIT fell back (non-x86-64 host,
  // SYRUP_JIT_DISABLE, arena failure, unsupported program). When set,
  // CompiledExecutor::Run dispatches into it instead of the bytecode loop.
  std::shared_ptr<const JitProgram> native;
};

// The tier a given attach artifact actually executes on: requested native
// mode degrades to kCompiled when no machine code was published, and a null
// artifact means the interpreter. This is what the policy.exec_mode gauge
// and the policies' exec_mode() accessors report.
ExecMode EffectiveExecMode(const CompiledProgram* compiled);

// Translates `prog` into its pre-decoded form. Verifies first (the check
// elision is only sound for verified programs) unless
// options.assume_verified is set by a caller that just did.
StatusOr<CompiledProgram> Compile(const Program& prog, ProgramContext context,
                                  const CompileOptions& options = {});

// Executes compiled programs. Interchangeable with Interpreter::Run: for a
// given (program, context args, env) the produced r0 and map side effects
// are identical; insns_executed counts *compiled* instructions, which
// folding makes smaller than the interpreter's count.
//
// Tail calls resolve through env.resolve_compiled; a missing resolver or a
// miss degrades to the interpreter's prog-array-miss behavior (r0 = -1).
class CompiledExecutor {
 public:
  explicit CompiledExecutor(ExecEnv env) : env_(std::move(env)) {}

  StatusOr<ExecResult> Run(const CompiledProgram& prog, uint64_t arg1,
                           uint64_t arg2, bool args_are_packet);

  static constexpr uint64_t kMaxInsns = Interpreter::kMaxInsns;
  static constexpr uint32_t kMaxTailCalls = Interpreter::kMaxTailCalls;

 private:
  ExecEnv env_;
};

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_COMPILER_H_
