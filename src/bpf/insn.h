// Instruction set of the Syrup policy virtual machine.
//
// The VM mirrors eBPF: eleven 64-bit registers (r0..r10, r10 = read-only
// frame pointer), a 512-byte stack, ALU/JMP/LD/ST instruction classes,
// helper calls, and map references loaded via a pseudo-instruction. Policies
// compiled to this ISA are untrusted: they must pass the verifier
// (src/bpf/verifier.h) before syrupd will attach them to a hook.
#ifndef SYRUP_SRC_BPF_INSN_H_
#define SYRUP_SRC_BPF_INSN_H_

#include <cstdint>
#include <string>

namespace syrup::bpf {

inline constexpr int kNumRegisters = 11;
inline constexpr int kFrameRegister = 10;  // r10: frame pointer (read-only)
inline constexpr int kStackSize = 512;     // bytes, addressed r10-512..r10-1

// Instruction opcodes. ALU ops come in register (…Reg) and immediate (…Imm)
// source flavors, matching eBPF's BPF_X / BPF_K distinction.
enum class Op : uint8_t {
  kInvalid = 0,

  // ALU64, dst = dst <op> src/imm.
  kAddReg, kAddImm,
  kSubReg, kSubImm,
  kMulReg, kMulImm,
  kDivReg, kDivImm,    // unsigned; divide-by-zero yields 0 (eBPF semantics)
  kModReg, kModImm,    // unsigned; mod-by-zero yields dst unchanged -> 0
  kOrReg,  kOrImm,
  kAndReg, kAndImm,
  kLshReg, kLshImm,
  kRshReg, kRshImm,    // logical
  kArshReg, kArshImm,  // arithmetic
  kNeg,
  kMovReg, kMovImm,
  kMov32Reg, kMov32Imm,  // 32-bit move: zero-extends into dst

  // Byte-swap (endianness helpers for parsing network headers).
  kBe16, kBe32, kBe64,  // convert dst from host to big-endian width n

  // Memory. Width suffix: B=1, H=2, W=4, DW=8 bytes.
  kLdxB, kLdxH, kLdxW, kLdxDW,  // dst = *(src + off)
  kStxB, kStxH, kStxW, kStxDW,  // *(dst + off) = src
  kStB,  kStH,  kStW,  kStDW,   // *(dst + off) = imm

  // Atomics (map/stack memory): *(dst + off) += src, 64-bit.
  kAtomicAddDW,

  // Jumps: target = pc + 1 + off.
  kJa,
  kJeqReg, kJeqImm,
  kJneReg, kJneImm,
  kJgtReg, kJgtImm,    // unsigned >
  kJgeReg, kJgeImm,
  kJltReg, kJltImm,
  kJleReg, kJleImm,
  kJsgtReg, kJsgtImm,  // signed >
  kJsgeReg, kJsgeImm,
  kJsltReg, kJsltImm,
  kJsleReg, kJsleImm,
  kJsetReg, kJsetImm,  // jump if dst & src

  // Calls and termination.
  kCall,  // imm = HelperId
  kExit,

  // Pseudo: load a map reference (imm = map fd) into dst. The verifier gives
  // dst type kConstMapPtr; the interpreter materializes the runtime handle.
  kLdMapFd,
};

// Number of opcodes; sizes every per-opcode table (e.g. the cost model's
// per-tier ns tables). Keep in sync with the enum (kLdMapFd is last).
inline constexpr size_t kNumOps = static_cast<size_t>(Op::kLdMapFd) + 1;

// Helper functions callable from policy programs (imm field of kCall).
// Calling convention follows eBPF: arguments in r1..r5, result in r0,
// r1..r5 clobbered, r6..r9 preserved.
enum class HelperId : int32_t {
  kMapLookupElem = 1,  // r1=map, r2=key ptr -> r0 = value ptr or NULL
  kMapUpdateElem = 2,  // r1=map, r2=key ptr, r3=value ptr -> r0 = 0/err
  kMapDeleteElem = 3,  // r1=map, r2=key ptr -> r0 = 0/err
  kGetPrandomU32 = 4,  // -> r0 = random u32
  kKtimeGetNs = 5,     // -> r0 = current (simulated or wall) time in ns
  kTailCall = 6,       // r1=ctx(unused), r2=prog_array map, r3=index
  // Batched lookup over n contiguous keys (value_size==8 maps only):
  // r1=map, r2=keys ptr (n * key_size bytes), r3=out ptr (n * 8 bytes,
  // stack), r4=n (constant 1..Map::kMaxLookupBatch). Copies each hit's
  // u64 value into out[i] (0 on miss) and returns the hit bitmap in r0.
  // Copy-out semantics on purpose: the verifier tracks maybe-null value
  // pointers in registers, not spilled through memory, so the batch form
  // returns values, never pointers.
  kMapLookupBatch = 7,
};

struct Insn {
  Op op = Op::kInvalid;
  uint8_t dst = 0;
  uint8_t src = 0;
  int16_t off = 0;
  int64_t imm = 0;

  bool operator==(const Insn&) const = default;
};

// --- Introspection helpers used by the verifier/interpreter/disassembler ---

// Number of bytes accessed by a load/store opcode; 0 for non-memory ops.
int MemAccessSize(Op op);

bool IsAluOp(Op op);
bool IsJumpOp(Op op);     // includes kJa
bool IsCondJumpOp(Op op);
bool IsLoadOp(Op op);     // kLdx*
bool IsStoreOp(Op op);    // kStx*, kSt*, kAtomicAddDW
bool UsesSrcReg(Op op);   // true for *Reg flavors and stores-from-register

std::string OpName(Op op);
std::string Disassemble(const Insn& insn);

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_INSN_H_
