// Policy VM interpreter.
//
// Executes a verified program against a context (packet bounds or scalar
// thread-event arguments). As defense in depth, every memory access is also
// re-validated at runtime against the known regions (packet, stack, live map
// values); the verifier should make these checks unreachable.
#ifndef SYRUP_SRC_BPF_INTERPRETER_H_
#define SYRUP_SRC_BPF_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/bpf/program.h"
#include "src/common/status.h"

namespace syrup::bpf {

struct CompiledProgram;  // src/bpf/compiler.h

// Environment services for helper calls. The simulation binds these to
// simulated time and a deterministic RNG; standalone use binds wall clock.
struct ExecEnv {
  std::function<uint32_t()> random_u32;
  std::function<uint64_t()> ktime_ns;
  // Resolves a tail-call target: program id -> program (nullptr = miss).
  std::function<const Program*(uint64_t prog_id)> resolve_program;
  // Same, in pre-decoded form; used by CompiledExecutor. Syrupd binds this
  // to its per-prog-id compile cache. Unset (or a miss) makes a compiled
  // tail call behave like a prog-array miss (r0 = -1).
  std::function<const CompiledProgram*(uint64_t prog_id)> resolve_compiled;
};

struct ExecResult {
  uint64_t r0 = 0;              // the schedule() return value
  uint64_t insns_executed = 0;  // across tail calls
  uint32_t tail_calls = 0;
  uint32_t helper_calls = 0;    // every kCall insn, tail calls included
};

class Interpreter {
 public:
  explicit Interpreter(ExecEnv env) : env_(std::move(env)) {}

  // Runs `prog` with r1/r2 preloaded from `arg1`/`arg2`.
  //
  // For packet hooks arg1/arg2 are pkt_start/pkt_end host addresses (the
  // paper's `schedule(void* pkt_start, void* pkt_end)` signature); for the
  // thread hook they are scalars (thread id, message type).
  StatusOr<ExecResult> Run(const Program& prog, uint64_t arg1, uint64_t arg2,
                           bool args_are_packet);

  // Hard cap on executed instructions (runaway guard; the verifier already
  // bounds programs, this guards interpreter bugs).
  static constexpr uint64_t kMaxInsns = 4u << 20;
  static constexpr uint32_t kMaxTailCalls = 32;

 private:
  ExecEnv env_;
};

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_INTERPRETER_H_
