// Textual assembler for policy programs.
//
// This is the "policy file" format syrupd consumes (paper Fig. 3 step ③:
// the daemon "compiles the policy file to a binary or object file"). A
// policy file declares its maps and provides the body of the `schedule`
// matching function in VM assembly:
//
//   .name round_robin
//   .ctx packet
//   .map state array 4 8 1        ; name type key_size value_size entries
//   .extern_map tokens /pins/app1/tokens
//     ldmapfd r1, state
//     mov r2, 0
//     stxw [r10-4], r2
//     mov r2, r10
//     add r2, -4
//     call map_lookup_elem
//     jne r0, 0, have
//     mov r0, PASS
//     exit
//   have:
//     ...
//
// Immediates may be decimal, hex (0x...), negative, or the symbolic
// decision constants PASS and DROP. Jump targets are labels or relative
// offsets (+N / -N). Comments start with ';' or '#'.
#ifndef SYRUP_SRC_BPF_ASSEMBLER_H_
#define SYRUP_SRC_BPF_ASSEMBLER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/bpf/insn.h"
#include "src/bpf/verifier.h"
#include "src/common/status.h"
#include "src/map/map.h"

namespace syrup::bpf {

// A map slot referenced by the program. Either a declaration (syrupd creates
// and pins the map at deploy time) or an extern (syrupd opens an existing
// pin, enabling cross-layer sharing).
struct MapSlot {
  std::string name;
  bool is_extern = false;
  MapSpec spec;      // valid when !is_extern
  std::string path;  // valid when is_extern
};

struct AssembledProgram {
  std::string name;
  ProgramContext context = ProgramContext::kPacket;
  std::vector<Insn> insns;
  // kLdMapFd imm indexes into this table, in declaration order.
  std::vector<MapSlot> map_slots;
};

// Assembles `source`; returns a detailed error with line number on failure.
StatusOr<AssembledProgram> Assemble(std::string_view source);

}  // namespace syrup::bpf

#endif  // SYRUP_SRC_BPF_ASSEMBLER_H_
