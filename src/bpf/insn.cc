#include "src/bpf/insn.h"

#include <sstream>

namespace syrup::bpf {

int MemAccessSize(Op op) {
  switch (op) {
    case Op::kLdxB:
    case Op::kStxB:
    case Op::kStB:
      return 1;
    case Op::kLdxH:
    case Op::kStxH:
    case Op::kStH:
      return 2;
    case Op::kLdxW:
    case Op::kStxW:
    case Op::kStW:
      return 4;
    case Op::kLdxDW:
    case Op::kStxDW:
    case Op::kStDW:
    case Op::kAtomicAddDW:
      return 8;
    default:
      return 0;
  }
}

bool IsAluOp(Op op) {
  switch (op) {
    case Op::kAddReg: case Op::kAddImm:
    case Op::kSubReg: case Op::kSubImm:
    case Op::kMulReg: case Op::kMulImm:
    case Op::kDivReg: case Op::kDivImm:
    case Op::kModReg: case Op::kModImm:
    case Op::kOrReg:  case Op::kOrImm:
    case Op::kAndReg: case Op::kAndImm:
    case Op::kLshReg: case Op::kLshImm:
    case Op::kRshReg: case Op::kRshImm:
    case Op::kArshReg: case Op::kArshImm:
    case Op::kNeg:
    case Op::kMovReg: case Op::kMovImm:
    case Op::kMov32Reg: case Op::kMov32Imm:
    case Op::kBe16: case Op::kBe32: case Op::kBe64:
      return true;
    default:
      return false;
  }
}

bool IsJumpOp(Op op) { return op == Op::kJa || IsCondJumpOp(op); }

bool IsCondJumpOp(Op op) {
  switch (op) {
    case Op::kJeqReg: case Op::kJeqImm:
    case Op::kJneReg: case Op::kJneImm:
    case Op::kJgtReg: case Op::kJgtImm:
    case Op::kJgeReg: case Op::kJgeImm:
    case Op::kJltReg: case Op::kJltImm:
    case Op::kJleReg: case Op::kJleImm:
    case Op::kJsgtReg: case Op::kJsgtImm:
    case Op::kJsgeReg: case Op::kJsgeImm:
    case Op::kJsltReg: case Op::kJsltImm:
    case Op::kJsleReg: case Op::kJsleImm:
    case Op::kJsetReg: case Op::kJsetImm:
      return true;
    default:
      return false;
  }
}

bool IsLoadOp(Op op) {
  switch (op) {
    case Op::kLdxB: case Op::kLdxH: case Op::kLdxW: case Op::kLdxDW:
      return true;
    default:
      return false;
  }
}

bool IsStoreOp(Op op) {
  switch (op) {
    case Op::kStxB: case Op::kStxH: case Op::kStxW: case Op::kStxDW:
    case Op::kStB: case Op::kStH: case Op::kStW: case Op::kStDW:
    case Op::kAtomicAddDW:
      return true;
    default:
      return false;
  }
}

bool UsesSrcReg(Op op) {
  switch (op) {
    case Op::kAddReg: case Op::kSubReg: case Op::kMulReg: case Op::kDivReg:
    case Op::kModReg: case Op::kOrReg: case Op::kAndReg: case Op::kLshReg:
    case Op::kRshReg: case Op::kArshReg: case Op::kMovReg: case Op::kMov32Reg:
    case Op::kJeqReg: case Op::kJneReg: case Op::kJgtReg: case Op::kJgeReg:
    case Op::kJltReg: case Op::kJleReg: case Op::kJsgtReg: case Op::kJsgeReg:
    case Op::kJsltReg: case Op::kJsleReg: case Op::kJsetReg:
    case Op::kLdxB: case Op::kLdxH: case Op::kLdxW: case Op::kLdxDW:
    case Op::kStxB: case Op::kStxH: case Op::kStxW: case Op::kStxDW:
    case Op::kAtomicAddDW:
      return true;
    default:
      return false;
  }
}

std::string OpName(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kAddReg: case Op::kAddImm: return "add";
    case Op::kSubReg: case Op::kSubImm: return "sub";
    case Op::kMulReg: case Op::kMulImm: return "mul";
    case Op::kDivReg: case Op::kDivImm: return "div";
    case Op::kModReg: case Op::kModImm: return "mod";
    case Op::kOrReg: case Op::kOrImm: return "or";
    case Op::kAndReg: case Op::kAndImm: return "and";
    case Op::kLshReg: case Op::kLshImm: return "lsh";
    case Op::kRshReg: case Op::kRshImm: return "rsh";
    case Op::kArshReg: case Op::kArshImm: return "arsh";
    case Op::kNeg: return "neg";
    case Op::kMovReg: case Op::kMovImm: return "mov";
    case Op::kMov32Reg: case Op::kMov32Imm: return "mov32";
    case Op::kBe16: return "be16";
    case Op::kBe32: return "be32";
    case Op::kBe64: return "be64";
    case Op::kLdxB: return "ldxb";
    case Op::kLdxH: return "ldxh";
    case Op::kLdxW: return "ldxw";
    case Op::kLdxDW: return "ldxdw";
    case Op::kStxB: return "stxb";
    case Op::kStxH: return "stxh";
    case Op::kStxW: return "stxw";
    case Op::kStxDW: return "stxdw";
    case Op::kStB: return "stb";
    case Op::kStH: return "sth";
    case Op::kStW: return "stw";
    case Op::kStDW: return "stdw";
    case Op::kAtomicAddDW: return "xadddw";
    case Op::kJa: return "ja";
    case Op::kJeqReg: case Op::kJeqImm: return "jeq";
    case Op::kJneReg: case Op::kJneImm: return "jne";
    case Op::kJgtReg: case Op::kJgtImm: return "jgt";
    case Op::kJgeReg: case Op::kJgeImm: return "jge";
    case Op::kJltReg: case Op::kJltImm: return "jlt";
    case Op::kJleReg: case Op::kJleImm: return "jle";
    case Op::kJsgtReg: case Op::kJsgtImm: return "jsgt";
    case Op::kJsgeReg: case Op::kJsgeImm: return "jsge";
    case Op::kJsltReg: case Op::kJsltImm: return "jslt";
    case Op::kJsleReg: case Op::kJsleImm: return "jsle";
    case Op::kJsetReg: case Op::kJsetImm: return "jset";
    case Op::kCall: return "call";
    case Op::kExit: return "exit";
    case Op::kLdMapFd: return "ldmapfd";
  }
  return "?";
}

std::string Disassemble(const Insn& insn) {
  std::ostringstream os;
  const Op op = insn.op;
  os << OpName(op);
  if (op == Op::kExit) {
    return os.str();
  }
  if (op == Op::kCall) {
    os << " " << insn.imm;
    return os.str();
  }
  if (op == Op::kJa) {
    os << " +" << insn.off;
    return os.str();
  }
  if (IsLoadOp(op)) {
    os << " r" << int{insn.dst} << ", [r" << int{insn.src} << "+" << insn.off
       << "]";
    return os.str();
  }
  if (IsStoreOp(op)) {
    os << " [r" << int{insn.dst} << "+" << insn.off << "], ";
    if (UsesSrcReg(op)) {
      os << "r" << int{insn.src};
    } else {
      os << insn.imm;
    }
    return os.str();
  }
  if (IsCondJumpOp(op)) {
    os << " r" << int{insn.dst} << ", ";
    if (UsesSrcReg(op)) {
      os << "r" << int{insn.src};
    } else {
      os << insn.imm;
    }
    os << ", +" << insn.off;
    return os.str();
  }
  // ALU / ldmapfd.
  os << " r" << int{insn.dst};
  if (op == Op::kNeg || op == Op::kBe16 || op == Op::kBe32 ||
      op == Op::kBe64) {
    return os.str();
  }
  os << ", ";
  if (UsesSrcReg(op)) {
    os << "r" << int{insn.src};
  } else {
    os << insn.imm;
  }
  return os.str();
}

}  // namespace syrup::bpf
