#include "src/bpf/interpreter.h"

#include <array>
#include <bit>
#include <cstring>

#include "src/bpf/vm_runtime.h"
#include "src/common/logging.h"

namespace syrup::bpf {

using internal::ByteSwap;
using internal::LoadUnaligned;
using internal::Region;
using internal::RegionContains;
using internal::StoreUnaligned;

StatusOr<ExecResult> Interpreter::Run(const Program& prog_in, uint64_t arg1,
                                      uint64_t arg2, bool args_are_packet) {
  ExecResult result;
  const Program* prog = &prog_in;

  alignas(8) std::array<uint8_t, kStackSize> stack{};
  std::array<uint64_t, kNumRegisters> regs{};

  // Regions the program may dereference. Map-value pointers returned by
  // lookups are appended as they materialize.
  std::vector<Region> regions;
  regions.push_back(Region{reinterpret_cast<uint64_t>(stack.data()),
                           stack.size(), /*writable=*/true});
  if (args_are_packet) {
    regions.push_back(Region{arg1, arg2 - arg1, /*writable=*/false});
  }

  auto readable = [&regions](uint64_t addr, int size) {
    for (const Region& r : regions) {
      if (RegionContains(r, addr, static_cast<uint64_t>(size))) {
        return true;
      }
    }
    return false;
  };
  auto writable = [&regions](uint64_t addr, int size) {
    for (const Region& r : regions) {
      if (r.writable && RegionContains(r, addr, static_cast<uint64_t>(size))) {
        return true;
      }
    }
    return false;
  };

restart:  // tail-call target: rerun with fresh pc but original context args
  regs[1] = arg1;
  regs[2] = arg2;
  regs[10] = reinterpret_cast<uint64_t>(stack.data()) + stack.size();

  size_t pc = 0;
  while (true) {
    if (result.insns_executed++ > kMaxInsns) {
      return ResourceExhaustedError("instruction limit exceeded at runtime");
    }
    if (pc >= prog->insns.size()) {
      return InternalError("program counter out of range");
    }
    const Insn& insn = prog->insns[pc];
    uint64_t& dst = regs[insn.dst];
    const uint64_t src = regs[insn.src];
    const auto imm = static_cast<uint64_t>(insn.imm);
    size_t next = pc + 1;

    switch (insn.op) {
      case Op::kAddReg: dst += src; break;
      case Op::kAddImm: dst += imm; break;
      case Op::kSubReg: dst -= src; break;
      case Op::kSubImm: dst -= imm; break;
      case Op::kMulReg: dst *= src; break;
      case Op::kMulImm: dst *= imm; break;
      case Op::kDivReg: dst = src == 0 ? 0 : dst / src; break;
      case Op::kDivImm: dst = imm == 0 ? 0 : dst / imm; break;
      case Op::kModReg: dst = src == 0 ? 0 : dst % src; break;
      case Op::kModImm: dst = imm == 0 ? 0 : dst % imm; break;
      case Op::kOrReg: dst |= src; break;
      case Op::kOrImm: dst |= imm; break;
      case Op::kAndReg: dst &= src; break;
      case Op::kAndImm: dst &= imm; break;
      case Op::kLshReg: dst <<= (src & 63); break;
      case Op::kLshImm: dst <<= (imm & 63); break;
      case Op::kRshReg: dst >>= (src & 63); break;
      case Op::kRshImm: dst >>= (imm & 63); break;
      case Op::kArshReg:
        dst = static_cast<uint64_t>(static_cast<int64_t>(dst) >> (src & 63));
        break;
      case Op::kArshImm:
        dst = static_cast<uint64_t>(static_cast<int64_t>(dst) >> (imm & 63));
        break;
      case Op::kNeg: dst = ~dst + 1; break;
      case Op::kMovReg: dst = src; break;
      case Op::kMovImm: dst = imm; break;
      case Op::kMov32Reg: dst = static_cast<uint32_t>(src); break;
      case Op::kMov32Imm: dst = static_cast<uint32_t>(imm); break;
      case Op::kBe16: dst = ByteSwap(dst & 0xffff, 16); break;
      case Op::kBe32: dst = ByteSwap(dst & 0xffffffff, 32); break;
      case Op::kBe64: dst = ByteSwap(dst, 64); break;

      case Op::kLdxB: case Op::kLdxH: case Op::kLdxW: case Op::kLdxDW: {
        const int size = MemAccessSize(insn.op);
        const uint64_t addr = src + static_cast<int64_t>(insn.off);
        if (!readable(addr, size)) {
          return OutOfRangeError("runtime load out of bounds: " +
                                 Disassemble(insn));
        }
        dst = LoadUnaligned(addr, size);
        break;
      }
      case Op::kStxB: case Op::kStxH: case Op::kStxW: case Op::kStxDW: {
        const int size = MemAccessSize(insn.op);
        const uint64_t addr = dst + static_cast<int64_t>(insn.off);
        if (!writable(addr, size)) {
          return OutOfRangeError("runtime store out of bounds: " +
                                 Disassemble(insn));
        }
        StoreUnaligned(addr, src, size);
        break;
      }
      case Op::kStB: case Op::kStH: case Op::kStW: case Op::kStDW: {
        const int size = MemAccessSize(insn.op);
        const uint64_t addr = dst + static_cast<int64_t>(insn.off);
        if (!writable(addr, size)) {
          return OutOfRangeError("runtime store out of bounds: " +
                                 Disassemble(insn));
        }
        StoreUnaligned(addr, imm, size);
        break;
      }
      case Op::kAtomicAddDW: {
        const uint64_t addr = dst + static_cast<int64_t>(insn.off);
        if (!writable(addr, 8) || (addr & 7) != 0) {
          return OutOfRangeError("runtime atomic out of bounds/unaligned");
        }
        auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(addr);
        cell->fetch_add(src, std::memory_order_relaxed);
        break;
      }

      case Op::kJa: next = pc + 1 + insn.off; break;
#define SYRUP_COND_JUMP(cond)         \
  if (cond) {                         \
    next = pc + 1 + insn.off;         \
  }                                   \
  break
      case Op::kJeqReg: SYRUP_COND_JUMP(dst == src);
      case Op::kJeqImm: SYRUP_COND_JUMP(dst == imm);
      case Op::kJneReg: SYRUP_COND_JUMP(dst != src);
      case Op::kJneImm: SYRUP_COND_JUMP(dst != imm);
      case Op::kJgtReg: SYRUP_COND_JUMP(dst > src);
      case Op::kJgtImm: SYRUP_COND_JUMP(dst > imm);
      case Op::kJgeReg: SYRUP_COND_JUMP(dst >= src);
      case Op::kJgeImm: SYRUP_COND_JUMP(dst >= imm);
      case Op::kJltReg: SYRUP_COND_JUMP(dst < src);
      case Op::kJltImm: SYRUP_COND_JUMP(dst < imm);
      case Op::kJleReg: SYRUP_COND_JUMP(dst <= src);
      case Op::kJleImm: SYRUP_COND_JUMP(dst <= imm);
      case Op::kJsgtReg:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) > static_cast<int64_t>(src));
      case Op::kJsgtImm:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) > insn.imm);
      case Op::kJsgeReg:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) >=
                        static_cast<int64_t>(src));
      case Op::kJsgeImm:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) >= insn.imm);
      case Op::kJsltReg:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) < static_cast<int64_t>(src));
      case Op::kJsltImm:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) < insn.imm);
      case Op::kJsleReg:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) <=
                        static_cast<int64_t>(src));
      case Op::kJsleImm:
        SYRUP_COND_JUMP(static_cast<int64_t>(dst) <= insn.imm);
      case Op::kJsetReg: SYRUP_COND_JUMP((dst & src) != 0);
      case Op::kJsetImm: SYRUP_COND_JUMP((dst & imm) != 0);
#undef SYRUP_COND_JUMP

      case Op::kLdMapFd: {
        const auto index = static_cast<size_t>(insn.imm);
        if (index >= prog->maps.size()) {
          return InternalError("ldmapfd index out of range");
        }
        dst = reinterpret_cast<uint64_t>(prog->maps[index].get());
        break;
      }

      case Op::kCall: {
        ++result.helper_calls;
        switch (static_cast<HelperId>(insn.imm)) {
          case HelperId::kMapLookupElem: {
            auto* map = reinterpret_cast<Map*>(regs[1]);
            const uint64_t key = regs[2];
            if (map == nullptr || !readable(key, map->spec().key_size)) {
              return OutOfRangeError("map_lookup: bad map/key");
            }
            void* value = map->Lookup(reinterpret_cast<const void*>(key));
            regs[0] = reinterpret_cast<uint64_t>(value);
            if (value != nullptr) {
              regions.push_back(
                  Region{regs[0], map->spec().value_size, /*writable=*/true});
            }
            break;
          }
          case HelperId::kMapUpdateElem: {
            auto* map = reinterpret_cast<Map*>(regs[1]);
            const uint64_t key = regs[2];
            const uint64_t value = regs[3];
            if (map == nullptr || !readable(key, map->spec().key_size) ||
                !readable(value, map->spec().value_size)) {
              return OutOfRangeError("map_update: bad map/key/value");
            }
            const Status s =
                map->Update(reinterpret_cast<const void*>(key),
                            reinterpret_cast<const void*>(value),
                            UpdateFlag::kAny);
            regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
            break;
          }
          case HelperId::kMapDeleteElem: {
            auto* map = reinterpret_cast<Map*>(regs[1]);
            const uint64_t key = regs[2];
            if (map == nullptr || !readable(key, map->spec().key_size)) {
              return OutOfRangeError("map_delete: bad map/key");
            }
            const Status s =
                map->Delete(reinterpret_cast<const void*>(key));
            regs[0] = s.ok() ? 0 : static_cast<uint64_t>(-1);
            break;
          }
          case HelperId::kMapLookupBatch: {
            auto* map = reinterpret_cast<Map*>(regs[1]);
            const uint64_t keys = regs[2];
            const uint64_t out = regs[3];
            const uint64_t n = regs[4];
            if (map == nullptr || n == 0 || n > Map::kMaxLookupBatch ||
                map->spec().value_size != sizeof(uint64_t) ||
                !readable(keys, n * map->spec().key_size) ||
                !writable(out, n * sizeof(uint64_t))) {
              return OutOfRangeError("map_lookup_batch: bad map/keys/out/n");
            }
            regs[0] = map->LookupBatchU64(
                static_cast<uint32_t>(n),
                reinterpret_cast<const void*>(keys),
                reinterpret_cast<uint64_t*>(out));
            break;
          }
          case HelperId::kGetPrandomU32:
            regs[0] = env_.random_u32 ? env_.random_u32() : 0;
            break;
          case HelperId::kKtimeGetNs:
            regs[0] = env_.ktime_ns ? env_.ktime_ns() : 0;
            break;
          case HelperId::kTailCall: {
            if (env_.resolve_program == nullptr) {
              regs[0] = static_cast<uint64_t>(-1);
              break;
            }
            auto* array = reinterpret_cast<Map*>(regs[2]);
            const auto index = static_cast<uint32_t>(regs[3]);
            if (array == nullptr ||
                array->spec().type != MapType::kProgArray) {
              return InvalidArgumentError("tail_call: not a prog array");
            }
            void* slot = array->Lookup(&index);
            const uint64_t prog_id =
                slot == nullptr ? 0 : Map::AtomicLoad(slot);
            const Program* target =
                prog_id == 0 ? nullptr : env_.resolve_program(prog_id);
            if (target == nullptr) {
              // Miss: falls through, r0 = -1 (caller decides what to do).
              regs[0] = static_cast<uint64_t>(-1);
              break;
            }
            if (++result.tail_calls > kMaxTailCalls) {
              return ResourceExhaustedError("tail call chain too long");
            }
            prog = target;
            goto restart;
          }
          default:
            return InvalidArgumentError("unknown helper id " +
                                        std::to_string(insn.imm));
        }
        // Helper calls clobber the caller-saved argument registers.
        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0;
        break;
      }

      case Op::kExit:
        result.r0 = regs[0];
        return result;

      case Op::kInvalid:
        return InvalidArgumentError("invalid opcode");
    }
    pc = next;
  }
}

}  // namespace syrup::bpf
