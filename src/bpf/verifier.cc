#include "src/bpf/verifier.h"

#include <array>
#include <bitset>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace syrup::bpf {
namespace {

enum class RegKind : uint8_t {
  kNotInit,
  kScalar,
  kPktPtr,          // pointer into packet; `off` bytes past pkt_start
  kPktEnd,          // the pkt_end sentinel pointer
  kStackPtr,        // pointer into the stack frame; off <= 0, frame top = 0
  kMapValueOrNull,  // result of map_lookup before the NULL check
  kMapValue,        // map value pointer proven non-NULL
  kNullConst,       // map value pointer proven NULL
  kConstMapPtr,     // loaded by ldmapfd
};

const char* KindName(RegKind kind) {
  switch (kind) {
    case RegKind::kNotInit: return "uninit";
    case RegKind::kScalar: return "scalar";
    case RegKind::kPktPtr: return "pkt";
    case RegKind::kPktEnd: return "pkt_end";
    case RegKind::kStackPtr: return "stack";
    case RegKind::kMapValueOrNull: return "map_value_or_null";
    case RegKind::kMapValue: return "map_value";
    case RegKind::kNullConst: return "null";
    case RegKind::kConstMapPtr: return "map_ptr";
  }
  return "?";
}

struct RegState {
  RegKind kind = RegKind::kNotInit;
  bool known = false;     // scalar holds a known constant
  uint64_t value = 0;     // constant value when `known`
  int64_t off = 0;        // pointer offset from region base
  int32_t map_index = -1; // which program map for map kinds

  static RegState Scalar() { return RegState{RegKind::kScalar}; }
  static RegState Known(uint64_t v) {
    return RegState{RegKind::kScalar, true, v};
  }
};

struct AbsState {
  std::array<RegState, kNumRegisters> regs;
  int64_t pkt_range = 0;  // bytes of packet proven accessible
  std::bitset<kStackSize> stack_init;
  size_t pc = 0;
};

bool IsPointerKind(RegKind kind) {
  switch (kind) {
    case RegKind::kPktPtr:
    case RegKind::kPktEnd:
    case RegKind::kStackPtr:
    case RegKind::kMapValueOrNull:
    case RegKind::kMapValue:
    case RegKind::kConstMapPtr:
      return true;
    default:
      return false;
  }
}

class Verifier {
 public:
  Verifier(const Program& prog, ProgramContext context,
           const VerifierOptions& options, VerifierStats* stats)
      : prog_(prog), context_(context), options_(options), stats_(stats) {}

  Status Run() {
    SYRUP_RETURN_IF_ERROR(StaticChecks());

    AbsState entry;
    if (context_ == ProgramContext::kPacket) {
      entry.regs[1] = RegState{RegKind::kPktPtr};
      entry.regs[2] = RegState{RegKind::kPktEnd};
    } else {
      entry.regs[1] = RegState::Scalar();
      entry.regs[2] = RegState::Scalar();
    }
    entry.regs[kFrameRegister] = RegState{RegKind::kStackPtr};

    std::vector<AbsState> pending;
    pending.push_back(std::move(entry));
    uint64_t visited = 0;
    uint64_t branches = 0;

    while (!pending.empty()) {
      AbsState st = std::move(pending.back());
      pending.pop_back();
      while (true) {
        if (++visited > options_.max_visited_insns) {
          return Fail(st.pc,
                      "program too complex: exploration budget exceeded "
                      "(unbounded loop?)");
        }
        if (st.pc >= prog_.insns.size()) {
          return Fail(st.pc, "execution falls off the end of the program");
        }
        StepResult step;
        SYRUP_RETURN_IF_ERROR(StepInsn(st, step));
        if (step.done) {
          break;  // EXIT reached on this path
        }
        if (step.has_branch) {
          ++branches;
          if (pending.size() >= options_.max_pending_states) {
            return Fail(st.pc, "too many pending branch states");
          }
          pending.push_back(std::move(step.branch_state));
        }
        st.pc = step.next_pc;
      }
    }
    if (stats_ != nullptr) {
      stats_->visited_insns = visited;
      stats_->branch_states = branches;
    }
    return OkStatus();
  }

 private:
  struct StepResult {
    size_t next_pc = 0;
    bool done = false;
    bool has_branch = false;
    AbsState branch_state;
  };

  Status Fail(size_t pc, const std::string& why) const {
    std::string at = "insn " + std::to_string(pc);
    if (pc < prog_.insns.size()) {
      at += " (" + Disassemble(prog_.insns[pc]) + ")";
    }
    return InvalidArgumentError("verifier: " + why + " at " + at +
                                " in program '" + prog_.name + "'");
  }

  // Structural checks that need no dataflow.
  Status StaticChecks() const {
    if (prog_.insns.empty()) {
      return InvalidArgumentError("verifier: empty program");
    }
    for (size_t pc = 0; pc < prog_.insns.size(); ++pc) {
      const Insn& insn = prog_.insns[pc];
      if (insn.dst >= kNumRegisters || insn.src >= kNumRegisters) {
        return Fail(pc, "register number out of range");
      }
      if (insn.op == Op::kInvalid) {
        return Fail(pc, "invalid opcode");
      }
      if (IsJumpOp(insn.op)) {
        const int64_t target =
            static_cast<int64_t>(pc) + 1 + static_cast<int64_t>(insn.off);
        if (target < 0 ||
            target >= static_cast<int64_t>(prog_.insns.size())) {
          return Fail(pc, "jump target out of program bounds");
        }
      }
      if (insn.op == Op::kLdMapFd) {
        if (insn.imm < 0 ||
            static_cast<size_t>(insn.imm) >= prog_.maps.size()) {
          return Fail(pc, "ldmapfd references unknown map");
        }
      }
      const bool writes_dst =
          IsAluOp(insn.op) || IsLoadOp(insn.op) || insn.op == Op::kLdMapFd;
      if (writes_dst && insn.dst == kFrameRegister) {
        return Fail(pc, "write to frame pointer r10");
      }
    }
    return OkStatus();
  }

  Status RequireInit(const AbsState& st, size_t pc, int reg) const {
    if (st.regs[reg].kind == RegKind::kNotInit) {
      return Fail(pc, "read of uninitialized register r" + std::to_string(reg));
    }
    return OkStatus();
  }

  Status RequireScalar(const AbsState& st, size_t pc, int reg) const {
    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, reg));
    if (st.regs[reg].kind != RegKind::kScalar) {
      return Fail(pc, std::string("expected scalar in r") +
                          std::to_string(reg) + ", found " +
                          KindName(st.regs[reg].kind));
    }
    return OkStatus();
  }

  // Validates a memory region access; for stack reads also checks
  // initialization, for stack writes marks bytes initialized.
  Status CheckMemAccess(AbsState& st, size_t pc, const RegState& ptr,
                        int16_t insn_off, int size, bool is_write) {
    const int64_t off = ptr.off + insn_off;
    switch (ptr.kind) {
      case RegKind::kPktPtr: {
        if (is_write) {
          return Fail(pc, "packet memory is read-only at Syrup hooks");
        }
        if (off < 0 || off + size > st.pkt_range) {
          return Fail(pc,
                      "packet access [" + std::to_string(off) + ", " +
                          std::to_string(off + size) +
                          ") outside verified range " +
                          std::to_string(st.pkt_range) +
                          " (missing bounds check against pkt_end?)");
        }
        return OkStatus();
      }
      case RegKind::kStackPtr: {
        if (off < -kStackSize || off + size > 0) {
          return Fail(pc, "stack access out of bounds at fp" +
                              std::to_string(off));
        }
        const size_t first = static_cast<size_t>(off + kStackSize);
        if (is_write) {
          for (int i = 0; i < size; ++i) {
            st.stack_init.set(first + static_cast<size_t>(i));
          }
        } else {
          for (int i = 0; i < size; ++i) {
            if (!st.stack_init.test(first + static_cast<size_t>(i))) {
              return Fail(pc, "read of uninitialized stack at fp" +
                                  std::to_string(off + i));
            }
          }
        }
        return OkStatus();
      }
      case RegKind::kMapValue: {
        const auto& spec = prog_.maps[ptr.map_index]->spec();
        if (off < 0 || off + size > static_cast<int64_t>(spec.value_size)) {
          return Fail(pc, "map value access out of bounds");
        }
        return OkStatus();
      }
      case RegKind::kMapValueOrNull:
        return Fail(pc, "map value dereference without NULL check");
      case RegKind::kNullConst:
        return Fail(pc, "NULL pointer dereference");
      default:
        return Fail(pc, std::string("cannot access memory through ") +
                            KindName(ptr.kind));
    }
  }

  Status CheckHelperKeyArg(const AbsState& st, size_t pc, int reg,
                           uint32_t bytes) const {
    const RegState& r = st.regs[reg];
    if (r.kind == RegKind::kStackPtr) {
      const int64_t off = r.off;
      if (off < -kStackSize || off + static_cast<int64_t>(bytes) > 0) {
        return Fail(pc, "helper argument points outside the stack");
      }
      const size_t first = static_cast<size_t>(off + kStackSize);
      for (uint32_t i = 0; i < bytes; ++i) {
        if (!st.stack_init.test(first + i)) {
          return Fail(pc, "helper argument reads uninitialized stack");
        }
      }
      return OkStatus();
    }
    if (r.kind == RegKind::kMapValue) {
      const auto& spec = prog_.maps[r.map_index]->spec();
      if (r.off < 0 ||
          r.off + static_cast<int64_t>(bytes) >
              static_cast<int64_t>(spec.value_size)) {
        return Fail(pc, "helper argument out of map value bounds");
      }
      return OkStatus();
    }
    return Fail(pc, std::string("helper argument must be a stack or map "
                                "value pointer, found ") +
                        KindName(r.kind));
  }

  Status ApplyAlu(AbsState& st, size_t pc, const Insn& insn) {
    RegState& dst = st.regs[insn.dst];
    const Op op = insn.op;

    // MOV overwrites dst, so dst need not be initialized.
    if (op == Op::kMovReg) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      dst = st.regs[insn.src];
      return OkStatus();
    }
    if (op == Op::kMovImm) {
      dst = RegState::Known(static_cast<uint64_t>(insn.imm));
      return OkStatus();
    }
    if (op == Op::kMov32Reg) {
      SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, insn.src));
      const RegState& s = st.regs[insn.src];
      dst = s.known ? RegState::Known(static_cast<uint32_t>(s.value))
                    : RegState::Scalar();
      return OkStatus();
    }
    if (op == Op::kMov32Imm) {
      dst = RegState::Known(static_cast<uint32_t>(insn.imm));
      return OkStatus();
    }

    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));

    // Pointer arithmetic: add/sub with constant amounts adjusts the offset.
    const bool dst_is_ptr = IsPointerKind(dst.kind);
    if (dst_is_ptr) {
      auto adjustable = [](RegKind kind) {
        return kind == RegKind::kPktPtr || kind == RegKind::kStackPtr ||
               kind == RegKind::kMapValue;
      };
      if (op == Op::kAddImm || op == Op::kSubImm) {
        if (!adjustable(dst.kind)) {
          return Fail(pc, std::string("arithmetic on ") + KindName(dst.kind));
        }
        dst.off += op == Op::kAddImm ? insn.imm : -insn.imm;
        return OkStatus();
      }
      if (op == Op::kAddReg || op == Op::kSubReg) {
        SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
        const RegState& src = st.regs[insn.src];
        // ptr - ptr within the packet family yields an (unknown) length.
        if (op == Op::kSubReg &&
            (dst.kind == RegKind::kPktPtr || dst.kind == RegKind::kPktEnd) &&
            (src.kind == RegKind::kPktPtr || src.kind == RegKind::kPktEnd)) {
          dst = RegState::Scalar();
          return OkStatus();
        }
        if (src.kind == RegKind::kScalar && src.known && adjustable(dst.kind)) {
          dst.off += op == Op::kAddReg ? static_cast<int64_t>(src.value)
                                       : -static_cast<int64_t>(src.value);
          return OkStatus();
        }
        return Fail(pc, "pointer arithmetic with unknown or non-scalar "
                        "operand");
      }
      return Fail(pc, std::string("ALU op on pointer ") + KindName(dst.kind));
    }

    // Scalar ALU. A register source must itself be a scalar; "scalar + pkt
    // pointer" style commuted forms are not needed by our policies.
    uint64_t rhs = static_cast<uint64_t>(insn.imm);
    bool rhs_known = true;
    if (UsesSrcReg(op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      const RegState& src = st.regs[insn.src];
      if (src.kind != RegKind::kScalar) {
        return Fail(pc, std::string("scalar ALU with pointer source ") +
                            KindName(src.kind));
      }
      rhs_known = src.known;
      rhs = src.value;
    }
    if (op == Op::kNeg || op == Op::kBe16 || op == Op::kBe32 ||
        op == Op::kBe64) {
      // Unary: result constant only when the operand is; exact values for
      // byte swaps are not tracked (no policy depends on them).
      dst = dst.known && op == Op::kNeg ? RegState::Known(~dst.value + 1)
                                        : RegState::Scalar();
      return OkStatus();
    }
    if (!dst.known || !rhs_known) {
      dst = RegState::Scalar();
      return OkStatus();
    }
    uint64_t v = dst.value;
    switch (op) {
      case Op::kAddReg: case Op::kAddImm: v += rhs; break;
      case Op::kSubReg: case Op::kSubImm: v -= rhs; break;
      case Op::kMulReg: case Op::kMulImm: v *= rhs; break;
      case Op::kDivReg: case Op::kDivImm: v = rhs == 0 ? 0 : v / rhs; break;
      case Op::kModReg: case Op::kModImm: v = rhs == 0 ? 0 : v % rhs; break;
      case Op::kOrReg: case Op::kOrImm: v |= rhs; break;
      case Op::kAndReg: case Op::kAndImm: v &= rhs; break;
      case Op::kLshReg: case Op::kLshImm: v <<= (rhs & 63); break;
      case Op::kRshReg: case Op::kRshImm: v >>= (rhs & 63); break;
      case Op::kArshReg: case Op::kArshImm:
        v = static_cast<uint64_t>(static_cast<int64_t>(v) >> (rhs & 63));
        break;
      default:
        return Fail(pc, "unhandled ALU op");
    }
    dst = RegState::Known(v);
    return OkStatus();
  }

  // Evaluates a comparison with both sides known. Returns condition truth.
  static bool EvalCond(Op op, uint64_t a, uint64_t b) {
    switch (op) {
      case Op::kJeqReg: case Op::kJeqImm: return a == b;
      case Op::kJneReg: case Op::kJneImm: return a != b;
      case Op::kJgtReg: case Op::kJgtImm: return a > b;
      case Op::kJgeReg: case Op::kJgeImm: return a >= b;
      case Op::kJltReg: case Op::kJltImm: return a < b;
      case Op::kJleReg: case Op::kJleImm: return a <= b;
      case Op::kJsgtReg: case Op::kJsgtImm:
        return static_cast<int64_t>(a) > static_cast<int64_t>(b);
      case Op::kJsgeReg: case Op::kJsgeImm:
        return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
      case Op::kJsltReg: case Op::kJsltImm:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b);
      case Op::kJsleReg: case Op::kJsleImm:
        return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
      case Op::kJsetReg: case Op::kJsetImm: return (a & b) != 0;
      default:
        return false;
    }
  }

  Status ApplyCondJump(AbsState& st, size_t pc, const Insn& insn,
                       StepResult& step) {
    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));
    if (UsesSrcReg(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
    }
    const RegState& a = st.regs[insn.dst];
    const size_t taken_pc = pc + 1 + static_cast<size_t>(
                                         static_cast<int64_t>(insn.off));
    const size_t fall_pc = pc + 1;

    // Fully known comparison: follow a single edge.
    const bool src_is_imm = !UsesSrcReg(insn.op);
    const RegState* b = src_is_imm ? nullptr : &st.regs[insn.src];
    if (a.kind == RegKind::kScalar && a.known &&
        (src_is_imm || (b->kind == RegKind::kScalar && b->known))) {
      const uint64_t rhs =
          src_is_imm ? static_cast<uint64_t>(insn.imm) : b->value;
      step.next_pc = EvalCond(insn.op, a.value, rhs) ? taken_pc : fall_pc;
      return OkStatus();
    }

    AbsState taken = st;  // copy; refine each side independently

    // NULL-check refinement for map lookups: `if (ptr ==/!= 0)`.
    const bool null_test =
        (insn.op == Op::kJeqImm || insn.op == Op::kJneImm) && insn.imm == 0 &&
        a.kind == RegKind::kMapValueOrNull;
    if (null_test) {
      const bool eq = insn.op == Op::kJeqImm;
      taken.regs[insn.dst].kind = eq ? RegKind::kNullConst
                                     : RegKind::kMapValue;
      st.regs[insn.dst].kind = eq ? RegKind::kMapValue : RegKind::kNullConst;
    }

    // Packet-bounds refinement: compare pkt+N against pkt_end.
    if (!src_is_imm) {
      const RegState& d = a;
      const RegState& s = *b;
      auto refine = [](AbsState& state, int64_t n) {
        if (n > state.pkt_range) {
          state.pkt_range = n;
        }
      };
      if (d.kind == RegKind::kPktPtr && s.kind == RegKind::kPktEnd) {
        const int64_t n = d.off;
        switch (insn.op) {
          case Op::kJgtReg: case Op::kJgeReg: refine(st, n); break;
          case Op::kJltReg: case Op::kJleReg: refine(taken, n); break;
          default: break;
        }
      } else if (d.kind == RegKind::kPktEnd && s.kind == RegKind::kPktPtr) {
        const int64_t n = s.off;
        switch (insn.op) {
          case Op::kJgtReg: case Op::kJgeReg: refine(taken, n); break;
          case Op::kJltReg: case Op::kJleReg: refine(st, n); break;
          default: break;
        }
      } else if (d.kind != RegKind::kScalar || s.kind != RegKind::kScalar) {
        // Comparing pointers of the same kind (e.g. two pkt ptrs) is fine;
        // mixed pointer/scalar comparisons are rejected as in eBPF.
        const bool same_family = d.kind == s.kind ||
                                 (IsPointerKind(d.kind) &&
                                  IsPointerKind(s.kind));
        if (!same_family && !null_test) {
          return Fail(pc, "comparison between pointer and scalar");
        }
      }
    } else if (IsPointerKind(a.kind) && !null_test) {
      return Fail(pc, "comparison between pointer and immediate");
    }

    taken.pc = taken_pc;
    step.has_branch = true;
    step.branch_state = std::move(taken);
    step.next_pc = fall_pc;
    return OkStatus();
  }

  Status ApplyCall(AbsState& st, size_t pc, const Insn& insn) {
    const auto helper = static_cast<HelperId>(insn.imm);
    auto require_map_arg = [&](int reg, MapType* type_out) -> Status {
      const RegState& r = st.regs[reg];
      if (r.kind != RegKind::kConstMapPtr) {
        return Fail(pc, "helper expects a map reference in r" +
                            std::to_string(reg));
      }
      if (type_out != nullptr) {
        *type_out = prog_.maps[r.map_index]->spec().type;
      }
      return OkStatus();
    };

    int32_t lookup_map = -1;
    switch (helper) {
      case HelperId::kMapLookupElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        lookup_map = st.regs[1].map_index;
        const auto& spec = prog_.maps[lookup_map]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        break;
      }
      case HelperId::kMapUpdateElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        const auto& spec = prog_.maps[st.regs[1].map_index]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 3, spec.value_size));
        break;
      }
      case HelperId::kMapDeleteElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        const auto& spec = prog_.maps[st.regs[1].map_index]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        break;
      }
      case HelperId::kGetPrandomU32:
      case HelperId::kKtimeGetNs:
        break;
      case HelperId::kTailCall: {
        MapType type;
        SYRUP_RETURN_IF_ERROR(require_map_arg(2, &type));
        if (type != MapType::kProgArray) {
          return Fail(pc, "tail_call requires a prog_array map");
        }
        SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, 3));
        break;
      }
      default:
        return Fail(pc, "unknown helper " + std::to_string(insn.imm));
    }

    // r0 holds the result; argument registers are clobbered.
    if (helper == HelperId::kMapLookupElem) {
      st.regs[0] = RegState{RegKind::kMapValueOrNull, false, 0, 0, lookup_map};
    } else {
      st.regs[0] = RegState::Scalar();
    }
    for (int reg = 1; reg <= 5; ++reg) {
      st.regs[reg] = RegState{};
    }
    return OkStatus();
  }

  Status StepInsn(AbsState& st, StepResult& step) {
    const size_t pc = st.pc;
    const Insn& insn = prog_.insns[pc];
    step.next_pc = pc + 1;

    if (IsAluOp(insn.op)) {
      return ApplyAlu(st, pc, insn);
    }
    if (IsLoadOp(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      SYRUP_RETURN_IF_ERROR(CheckMemAccess(st, pc, st.regs[insn.src], insn.off,
                                           MemAccessSize(insn.op),
                                           /*is_write=*/false));
      st.regs[insn.dst] = RegState::Scalar();
      return OkStatus();
    }
    if (IsStoreOp(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));
      if (UsesSrcReg(insn.op)) {
        SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, insn.src));
      }
      if (insn.op == Op::kAtomicAddDW &&
          st.regs[insn.dst].kind == RegKind::kPktPtr) {
        return Fail(pc, "atomic op on packet memory");
      }
      return CheckMemAccess(st, pc, st.regs[insn.dst], insn.off,
                            MemAccessSize(insn.op), /*is_write=*/true);
    }
    switch (insn.op) {
      case Op::kJa:
        step.next_pc = pc + 1 + static_cast<size_t>(
                                    static_cast<int64_t>(insn.off));
        return OkStatus();
      case Op::kLdMapFd:
        st.regs[insn.dst] = RegState{RegKind::kConstMapPtr, false, 0, 0,
                                     static_cast<int32_t>(insn.imm)};
        return OkStatus();
      case Op::kCall:
        return ApplyCall(st, pc, insn);
      case Op::kExit:
        if (st.regs[0].kind != RegKind::kScalar) {
          return Fail(pc, "exit with non-scalar or uninitialized r0");
        }
        step.done = true;
        return OkStatus();
      default:
        if (IsCondJumpOp(insn.op)) {
          return ApplyCondJump(st, pc, insn, step);
        }
        return Fail(pc, "unhandled opcode");
    }
  }

  const Program& prog_;
  ProgramContext context_;
  VerifierOptions options_;
  VerifierStats* stats_;
};

}  // namespace

Status Verify(const Program& prog, ProgramContext context,
              const VerifierOptions& options, VerifierStats* stats) {
  return Verifier(prog, context, options, stats).Run();
}

}  // namespace syrup::bpf
