#include "src/bpf/verifier.h"

#include <algorithm>
#include <array>
#include <bitset>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace syrup::bpf {
namespace {

constexpr uint64_t kU64Max = ~uint64_t{0};
constexpr int64_t kS64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kS64Max = std::numeric_limits<int64_t>::max();
constexpr uint64_t kU32Max = 0xffffffffull;

// Largest scalar magnitude accepted as a pointer offset adjustment, and the
// largest cumulative pointer offset tracked. Far beyond any real packet or
// map value, small enough that offset arithmetic can never overflow int64.
constexpr int64_t kMaxPtrDelta = int64_t{1} << 29;
constexpr int64_t kMaxPtrOff = int64_t{1} << 30;

// ---------------------------------------------------------------------------
// Known-bits domain (a "tnum"): `value` holds bits known to be set, `mask`
// the unknown bits. A concrete x is represented iff x = value | (s & mask)
// for some s, i.e. x agrees with `value` on every bit outside `mask`.
// Transfer functions follow the classic eBPF tnum algebra.
// ---------------------------------------------------------------------------

struct Tnum {
  uint64_t value = 0;
  uint64_t mask = kU64Max;
};

Tnum TnumConst(uint64_t v) { return Tnum{v, 0}; }
Tnum TnumUnknown() { return Tnum{0, kU64Max}; }

Tnum TnumAdd(Tnum a, Tnum b) {
  const uint64_t sm = a.mask + b.mask;
  const uint64_t sv = a.value + b.value;
  const uint64_t sigma = sm + sv;
  const uint64_t chi = sigma ^ sv;
  const uint64_t mu = chi | a.mask | b.mask;
  return Tnum{sv & ~mu, mu};
}

Tnum TnumSub(Tnum a, Tnum b) {
  const uint64_t dv = a.value - b.value;
  const uint64_t alpha = dv + a.mask;
  const uint64_t beta = dv - b.mask;
  const uint64_t chi = alpha ^ beta;
  const uint64_t mu = chi | a.mask | b.mask;
  return Tnum{dv & ~mu, mu};
}

Tnum TnumAnd(Tnum a, Tnum b) {
  const uint64_t alpha = a.value | a.mask;
  const uint64_t beta = b.value | b.mask;
  const uint64_t v = a.value & b.value;
  return Tnum{v, alpha & beta & ~v};
}

Tnum TnumOr(Tnum a, Tnum b) {
  const uint64_t v = a.value | b.value;
  const uint64_t mu = a.mask | b.mask;
  return Tnum{v, mu & ~v};
}

Tnum TnumLsh(Tnum a, uint8_t k) { return Tnum{a.value << k, a.mask << k}; }
Tnum TnumRsh(Tnum a, uint8_t k) { return Tnum{a.value >> k, a.mask >> k}; }
Tnum TnumArsh(Tnum a, uint8_t k) {
  return Tnum{static_cast<uint64_t>(static_cast<int64_t>(a.value) >> k),
              static_cast<uint64_t>(static_cast<int64_t>(a.mask) >> k)};
}

// True iff every concrete value representable by `b` is representable by `a`.
bool TnumIn(Tnum a, Tnum b) {
  if ((b.mask & ~a.mask) != 0) {
    return false;
  }
  return a.value == (b.value & ~a.mask);
}

// Intersection; false when the two disagree on a bit both know (no concrete
// value satisfies both).
bool TnumIntersect(Tnum a, Tnum b, Tnum* out) {
  if (((a.value ^ b.value) & ~(a.mask | b.mask)) != 0) {
    return false;
  }
  const uint64_t mu = a.mask & b.mask;
  out->value = (a.value | b.value) & ~mu;
  out->mask = mu;
  return true;
}

// Smallest mask of the form 2^k - 1 covering every value in [0, v].
uint64_t MaskUpTo(uint64_t v) {
  if (v == 0) {
    return 0;
  }
  const int width = 64 - __builtin_clzll(v);
  return width >= 64 ? kU64Max : (uint64_t{1} << width) - 1;
}

// ---------------------------------------------------------------------------
// Per-register abstract value: a type tag plus, for scalars, unsigned and
// signed intervals and known bits; for pointers, an offset interval from the
// region base (variable offsets are first-class, which is what makes
// range-guarded header parsing verifiable).
// ---------------------------------------------------------------------------

enum class RegKind : uint8_t {
  kNotInit,
  kScalar,
  kPktPtr,          // pointer into packet; off bytes past pkt_start
  kPktEnd,          // the pkt_end sentinel pointer
  kStackPtr,        // pointer into the stack frame; off <= 0, frame top = 0
  kMapValueOrNull,  // result of map_lookup before the NULL check
  kMapValue,        // map value pointer proven non-NULL
  kNullConst,       // map value pointer proven NULL
  kConstMapPtr,     // loaded by ldmapfd
};

const char* KindName(RegKind kind) {
  switch (kind) {
    case RegKind::kNotInit: return "uninit";
    case RegKind::kScalar: return "scalar";
    case RegKind::kPktPtr: return "pkt";
    case RegKind::kPktEnd: return "pkt_end";
    case RegKind::kStackPtr: return "stack";
    case RegKind::kMapValueOrNull: return "map_value_or_null";
    case RegKind::kMapValue: return "map_value";
    case RegKind::kNullConst: return "null";
    case RegKind::kConstMapPtr: return "map_ptr";
  }
  return "?";
}

bool IsPointerKind(RegKind kind) {
  switch (kind) {
    case RegKind::kPktPtr:
    case RegKind::kPktEnd:
    case RegKind::kStackPtr:
    case RegKind::kMapValueOrNull:
    case RegKind::kMapValue:
    case RegKind::kConstMapPtr:
      return true;
    default:
      return false;
  }
}

struct RegState {
  RegKind kind = RegKind::kNotInit;
  // Scalar domain.
  uint64_t umin = 0;
  uint64_t umax = kU64Max;
  int64_t smin = kS64Min;
  int64_t smax = kS64Max;
  Tnum tnum = TnumUnknown();
  // Pointer domain: offset interval from the region base.
  int64_t off_min = 0;
  int64_t off_max = 0;
  int32_t map_index = -1;   // which program map for map kinds
  int32_t origin_pc = -1;   // pc of the map_lookup call (NULL-check tracking)

  bool IsConst() const { return kind == RegKind::kScalar && umin == umax; }
  uint64_t ConstVal() const { return umin; }

  static RegState UnknownScalar() {
    RegState r;
    r.kind = RegKind::kScalar;
    return r;
  }
  static RegState Known(uint64_t v) {
    RegState r;
    r.kind = RegKind::kScalar;
    r.umin = r.umax = v;
    r.smin = r.smax = static_cast<int64_t>(v);
    r.tnum = TnumConst(v);
    return r;
  }
  static RegState Range(uint64_t lo, uint64_t hi) {
    RegState r;
    r.kind = RegKind::kScalar;
    r.umin = lo;
    r.umax = hi;
    if (hi <= static_cast<uint64_t>(kS64Max)) {
      r.smin = static_cast<int64_t>(lo);
      r.smax = static_cast<int64_t>(hi);
    }
    r.tnum = Tnum{0, MaskUpTo(hi)};
    return r;
  }
  static RegState Pointer(RegKind kind, int32_t map_index = -1) {
    RegState r;
    r.kind = kind;
    r.map_index = map_index;
    return r;
  }
};

// Re-establishes consistency between the three scalar views after any of
// them was tightened. Returns false when the views contradict (the abstract
// state is infeasible, i.e. no concrete execution reaches it).
bool SyncBounds(RegState& r) {
  r.umin = std::max(r.umin, r.tnum.value);
  r.umax = std::min(r.umax, r.tnum.value | r.tnum.mask);
  // An unsigned range that does not cross the sign boundary is also a valid
  // signed range.
  if (static_cast<int64_t>(r.umin) <= static_cast<int64_t>(r.umax)) {
    r.smin = std::max(r.smin, static_cast<int64_t>(r.umin));
    r.smax = std::min(r.smax, static_cast<int64_t>(r.umax));
  }
  // A signed range entirely on one side of zero maps onto an unsigned range.
  if (r.smin >= 0 || r.smax < 0) {
    r.umin = std::max(r.umin, static_cast<uint64_t>(r.smin));
    r.umax = std::min(r.umax, static_cast<uint64_t>(r.smax));
  }
  if (r.umin > r.umax || r.smin > r.smax) {
    return false;
  }
  if (r.umin == r.umax) {
    if ((r.umin & ~r.tnum.mask) != r.tnum.value) {
      return false;
    }
    const int64_t sv = static_cast<int64_t>(r.umin);
    if (sv < r.smin || sv > r.smax) {
      return false;
    }
    r.tnum = TnumConst(r.umin);
    r.smin = r.smax = sv;
  }
  return true;
}

// Clamp a tnum to the bit width implied by the unsigned range: bits above
// umax's top bit are known zero even if the tnum has not discovered that.
Tnum EffTnum(const RegState& r) {
  const uint64_t m = MaskUpTo(r.umax);
  return Tnum{r.tnum.value & m, r.tnum.mask & m};
}

// ---------------------------------------------------------------------------
// Scalar ALU transfer functions.
// ---------------------------------------------------------------------------

enum class AluKind { kAdd, kSub, kMul, kDiv, kMod, kOr, kAnd, kLsh, kRsh, kArsh };

bool AluKindOf(Op op, AluKind* out) {
  switch (op) {
    case Op::kAddReg: case Op::kAddImm: *out = AluKind::kAdd; return true;
    case Op::kSubReg: case Op::kSubImm: *out = AluKind::kSub; return true;
    case Op::kMulReg: case Op::kMulImm: *out = AluKind::kMul; return true;
    case Op::kDivReg: case Op::kDivImm: *out = AluKind::kDiv; return true;
    case Op::kModReg: case Op::kModImm: *out = AluKind::kMod; return true;
    case Op::kOrReg:  case Op::kOrImm:  *out = AluKind::kOr;  return true;
    case Op::kAndReg: case Op::kAndImm: *out = AluKind::kAnd; return true;
    case Op::kLshReg: case Op::kLshImm: *out = AluKind::kLsh; return true;
    case Op::kRshReg: case Op::kRshImm: *out = AluKind::kRsh; return true;
    case Op::kArshReg: case Op::kArshImm: *out = AluKind::kArsh; return true;
    default: return false;
  }
}

// Exact result for two constants, mirroring interpreter semantics
// (divide/mod by zero yield 0, shift amounts masked to 6 bits).
uint64_t AluConst(AluKind k, uint64_t x, uint64_t y) {
  switch (k) {
    case AluKind::kAdd: return x + y;
    case AluKind::kSub: return x - y;
    case AluKind::kMul: return x * y;
    case AluKind::kDiv: return y == 0 ? 0 : x / y;
    case AluKind::kMod: return y == 0 ? 0 : x % y;
    case AluKind::kOr:  return x | y;
    case AluKind::kAnd: return x & y;
    case AluKind::kLsh: return x << (y & 63);
    case AluKind::kRsh: return x >> (y & 63);
    case AluKind::kArsh:
      return static_cast<uint64_t>(static_cast<int64_t>(x) >> (y & 63));
  }
  return 0;
}

RegState AluApply(AluKind k, const RegState& a, const RegState& b) {
  if (a.IsConst() && b.IsConst()) {
    return RegState::Known(AluConst(k, a.ConstVal(), b.ConstVal()));
  }
  RegState out = RegState::UnknownScalar();
  switch (k) {
    case AluKind::kAdd: {
      out.tnum = TnumAdd(a.tnum, b.tnum);
      uint64_t lo = 0;
      uint64_t hi = 0;
      if (!__builtin_add_overflow(a.umin, b.umin, &lo) &&
          !__builtin_add_overflow(a.umax, b.umax, &hi)) {
        out.umin = lo;
        out.umax = hi;
      }
      int64_t slo = 0;
      int64_t shi = 0;
      if (!__builtin_add_overflow(a.smin, b.smin, &slo) &&
          !__builtin_add_overflow(a.smax, b.smax, &shi)) {
        out.smin = slo;
        out.smax = shi;
      }
      break;
    }
    case AluKind::kSub: {
      out.tnum = TnumSub(a.tnum, b.tnum);
      if (a.umin >= b.umax) {  // cannot wrap
        out.umin = a.umin - b.umax;
        out.umax = a.umax - b.umin;
      }
      int64_t slo = 0;
      int64_t shi = 0;
      if (!__builtin_sub_overflow(a.smin, b.smax, &slo) &&
          !__builtin_sub_overflow(a.smax, b.smin, &shi)) {
        out.smin = slo;
        out.smax = shi;
      }
      break;
    }
    case AluKind::kMul: {
      uint64_t hi = 0;
      if (!__builtin_mul_overflow(a.umax, b.umax, &hi)) {
        out.umin = a.umin * b.umin;
        out.umax = hi;
        if (hi <= static_cast<uint64_t>(kS64Max)) {
          out.smin = static_cast<int64_t>(out.umin);
          out.smax = static_cast<int64_t>(hi);
        }
      }
      break;
    }
    case AluKind::kDiv:
      if (b.IsConst()) {
        const uint64_t c = b.ConstVal();
        if (c == 0) {
          return RegState::Known(0);
        }
        out = RegState::Range(a.umin / c, a.umax / c);
      } else {
        out = RegState::Range(0, a.umax);
      }
      break;
    case AluKind::kMod:
      if (b.IsConst()) {
        const uint64_t c = b.ConstVal();
        if (c == 0) {
          return RegState::Known(0);
        }
        if (a.umax < c) {
          out = a;  // identity
        } else {
          out = RegState::Range(0, c - 1);
        }
      } else {
        // x % y <= x, and mod-by-zero yields 0; either way <= a.umax.
        out = RegState::Range(0, a.umax);
      }
      break;
    case AluKind::kAnd:
      out.tnum = TnumAnd(EffTnum(a), EffTnum(b));
      out.umin = 0;
      out.umax = std::min(a.umax, b.umax);
      if (out.umax <= static_cast<uint64_t>(kS64Max)) {
        out.smin = 0;
        out.smax = static_cast<int64_t>(out.umax);
      }
      break;
    case AluKind::kOr:
      out.tnum = TnumOr(EffTnum(a), EffTnum(b));
      out.umin = std::max(a.umin, b.umin);
      out.umax = MaskUpTo(a.umax) | MaskUpTo(b.umax);
      if (out.umax <= static_cast<uint64_t>(kS64Max)) {
        out.smin = static_cast<int64_t>(out.umin);
        out.smax = static_cast<int64_t>(out.umax);
      }
      break;
    case AluKind::kLsh:
      if (b.IsConst()) {
        const uint8_t sh = static_cast<uint8_t>(b.ConstVal() & 63);
        if (sh == 0) {
          out = a;
          break;
        }
        out.tnum = TnumLsh(a.tnum, sh);
        if ((a.umax >> (64 - sh)) == 0) {  // no bits shifted out
          out.umin = a.umin << sh;
          out.umax = a.umax << sh;
          if (out.umax <= static_cast<uint64_t>(kS64Max)) {
            out.smin = static_cast<int64_t>(out.umin);
            out.smax = static_cast<int64_t>(out.umax);
          }
        }
      }
      break;
    case AluKind::kRsh:
      if (b.IsConst()) {
        const uint8_t sh = static_cast<uint8_t>(b.ConstVal() & 63);
        if (sh == 0) {
          out = a;
          break;
        }
        out.tnum = TnumRsh(a.tnum, sh);
        out.umin = a.umin >> sh;
        out.umax = a.umax >> sh;
        out.smin = static_cast<int64_t>(out.umin);
        out.smax = static_cast<int64_t>(out.umax);
      } else {
        out.umin = 0;
        out.umax = a.umax;
        if (a.umax <= static_cast<uint64_t>(kS64Max)) {
          out.smin = 0;
          out.smax = static_cast<int64_t>(a.umax);
        }
      }
      break;
    case AluKind::kArsh:
      if (b.IsConst()) {
        const uint8_t sh = static_cast<uint8_t>(b.ConstVal() & 63);
        if (sh == 0) {
          out = a;
          break;
        }
        out.tnum = TnumArsh(a.tnum, sh);
        out.smin = a.smin >> sh;
        out.smax = a.smax >> sh;
        if (a.smin >= 0) {
          out.umin = a.umin >> sh;
          out.umax = a.umax >> sh;
        }
      } else if (a.smin >= 0) {
        out.umin = 0;
        out.umax = a.umax;
        out.smin = 0;
        out.smax = a.smax;
      }
      break;
  }
  if (!SyncBounds(out)) {
    // The transfer function over-approximates a feasible input, so a
    // contradiction only means precision was lost; degrade gracefully.
    return RegState::UnknownScalar();
  }
  return out;
}

// 32-bit move: value truncated then zero-extended.
RegState Truncate32(const RegState& src) {
  RegState out = RegState::UnknownScalar();
  out.tnum = Tnum{src.tnum.value & kU32Max, src.tnum.mask & kU32Max};
  if (src.umax <= kU32Max) {
    out.umin = src.umin;
    out.umax = src.umax;
  } else {
    out.umin = 0;
    out.umax = kU32Max;
  }
  out.smin = static_cast<int64_t>(out.umin);
  out.smax = static_cast<int64_t>(out.umax);
  if (!SyncBounds(out)) {
    return RegState::UnknownScalar();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Branch conditions: decide statically when possible, otherwise narrow the
// operand ranges on each edge (condition-directed refinement).
// ---------------------------------------------------------------------------

enum class Cmp {
  kEq, kNe, kGtU, kGeU, kLtU, kLeU, kGtS, kGeS, kLtS, kLeS, kSet, kNset,
};

Cmp CmpOf(Op op) {
  switch (op) {
    case Op::kJeqReg: case Op::kJeqImm: return Cmp::kEq;
    case Op::kJneReg: case Op::kJneImm: return Cmp::kNe;
    case Op::kJgtReg: case Op::kJgtImm: return Cmp::kGtU;
    case Op::kJgeReg: case Op::kJgeImm: return Cmp::kGeU;
    case Op::kJltReg: case Op::kJltImm: return Cmp::kLtU;
    case Op::kJleReg: case Op::kJleImm: return Cmp::kLeU;
    case Op::kJsgtReg: case Op::kJsgtImm: return Cmp::kGtS;
    case Op::kJsgeReg: case Op::kJsgeImm: return Cmp::kGeS;
    case Op::kJsltReg: case Op::kJsltImm: return Cmp::kLtS;
    case Op::kJsleReg: case Op::kJsleImm: return Cmp::kLeS;
    default: return Cmp::kSet;  // kJsetReg / kJsetImm
  }
}

Cmp Inverse(Cmp c) {
  switch (c) {
    case Cmp::kEq: return Cmp::kNe;
    case Cmp::kNe: return Cmp::kEq;
    case Cmp::kGtU: return Cmp::kLeU;
    case Cmp::kGeU: return Cmp::kLtU;
    case Cmp::kLtU: return Cmp::kGeU;
    case Cmp::kLeU: return Cmp::kGtU;
    case Cmp::kGtS: return Cmp::kLeS;
    case Cmp::kGeS: return Cmp::kLtS;
    case Cmp::kLtS: return Cmp::kGeS;
    case Cmp::kLeS: return Cmp::kGtS;
    case Cmp::kSet: return Cmp::kNset;
    case Cmp::kNset: return Cmp::kSet;
  }
  return Cmp::kEq;
}

// 1 = condition always holds, 0 = never holds, -1 = undecided.
int Decide(Cmp c, const RegState& a, const RegState& b) {
  switch (c) {
    case Cmp::kEq:
      if (a.umin > b.umax || a.umax < b.umin) return 0;
      if (a.smin > b.smax || a.smax < b.smin) return 0;
      if (((a.tnum.value ^ b.tnum.value) & ~a.tnum.mask & ~b.tnum.mask) != 0) {
        return 0;
      }
      if (a.IsConst() && b.IsConst() && a.ConstVal() == b.ConstVal()) return 1;
      return -1;
    case Cmp::kNe: {
      const int d = Decide(Cmp::kEq, a, b);
      return d < 0 ? -1 : 1 - d;
    }
    case Cmp::kGtU:
      if (a.umin > b.umax) return 1;
      if (a.umax <= b.umin) return 0;
      return -1;
    case Cmp::kGeU:
      if (a.umin >= b.umax) return 1;
      if (a.umax < b.umin) return 0;
      return -1;
    case Cmp::kLtU: return Decide(Cmp::kGtU, b, a);
    case Cmp::kLeU: return Decide(Cmp::kGeU, b, a);
    case Cmp::kGtS:
      if (a.smin > b.smax) return 1;
      if (a.smax <= b.smin) return 0;
      return -1;
    case Cmp::kGeS:
      if (a.smin >= b.smax) return 1;
      if (a.smax < b.smin) return 0;
      return -1;
    case Cmp::kLtS: return Decide(Cmp::kGtS, b, a);
    case Cmp::kLeS: return Decide(Cmp::kGeS, b, a);
    case Cmp::kSet:
      if (b.IsConst()) {
        const uint64_t k = b.ConstVal();
        if ((a.tnum.value & k) != 0) return 1;
        if (((a.tnum.value | a.tnum.mask) & k) == 0) return 0;
      }
      return -1;
    case Cmp::kNset: {
      const int d = Decide(Cmp::kSet, a, b);
      return d < 0 ? -1 : 1 - d;
    }
  }
  return -1;
}

// Excludes the single value k from x's ranges where it sits on a boundary.
bool PinchNe(RegState& x, uint64_t k) {
  if (x.umin == k && x.umax == k) return false;
  if (x.umin == k) ++x.umin;
  else if (x.umax == k) --x.umax;
  const int64_t sk = static_cast<int64_t>(k);
  if (x.smin == sk && x.smax == sk) return false;
  if (x.smin == sk) ++x.smin;
  else if (x.smax == sk) --x.smax;
  return true;
}

// Assume `a <c> b` holds and tighten both operands. Returns false when the
// assumption is infeasible (that edge cannot be taken).
bool Narrow(Cmp c, RegState& a, RegState& b) {
  switch (c) {
    case Cmp::kLtU: return Narrow(Cmp::kGtU, b, a);
    case Cmp::kLeU: return Narrow(Cmp::kGeU, b, a);
    case Cmp::kLtS: return Narrow(Cmp::kGtS, b, a);
    case Cmp::kLeS: return Narrow(Cmp::kGeS, b, a);
    case Cmp::kGtU:
      if (b.umin == kU64Max || a.umax == 0) return false;
      a.umin = std::max(a.umin, b.umin + 1);
      b.umax = std::min(b.umax, a.umax - 1);
      break;
    case Cmp::kGeU:
      a.umin = std::max(a.umin, b.umin);
      b.umax = std::min(b.umax, a.umax);
      break;
    case Cmp::kGtS:
      if (b.smin == kS64Max || a.smax == kS64Min) return false;
      a.smin = std::max(a.smin, b.smin + 1);
      b.smax = std::min(b.smax, a.smax - 1);
      break;
    case Cmp::kGeS:
      a.smin = std::max(a.smin, b.smin);
      b.smax = std::min(b.smax, a.smax);
      break;
    case Cmp::kEq: {
      a.umin = b.umin = std::max(a.umin, b.umin);
      a.umax = b.umax = std::min(a.umax, b.umax);
      a.smin = b.smin = std::max(a.smin, b.smin);
      a.smax = b.smax = std::min(a.smax, b.smax);
      Tnum t;
      if (!TnumIntersect(a.tnum, b.tnum, &t)) return false;
      a.tnum = b.tnum = t;
      break;
    }
    case Cmp::kNe:
      if (b.IsConst()) {
        if (!PinchNe(a, b.ConstVal())) return false;
      } else if (a.IsConst()) {
        if (!PinchNe(b, a.ConstVal())) return false;
      }
      break;
    case Cmp::kSet:
      if (b.IsConst()) {
        const uint64_t k = b.ConstVal();
        if (k == 0) return false;
        if (((a.tnum.value | a.tnum.mask) & k) == 0) return false;
        if ((k & (k - 1)) == 0) {  // single bit: it must be set
          a.tnum.value |= k;
          a.tnum.mask &= ~k;
        }
      }
      break;
    case Cmp::kNset:
      if (b.IsConst()) {
        const uint64_t k = b.ConstVal();
        if ((a.tnum.value & k) != 0) return false;
        a.tnum.mask &= ~k;  // those bits are now known zero
      }
      break;
  }
  return SyncBounds(a) && SyncBounds(b);
}

struct AbsState {
  std::array<RegState, kNumRegisters> regs;
  int64_t pkt_range = 0;  // bytes of packet proven accessible
  std::bitset<kStackSize> stack_init;
  size_t pc = 0;

  // Cost-pass accumulators (stay zero outside cost mode): executed source
  // instructions and per-tier ns along the path that produced this state,
  // plus this path's node in the arena for hottest-path reconstruction.
  uint64_t cost_insns = 0;
  double cost_ns[kNumCostTiers] = {};
  int32_t path_node = -1;

  // Redundant-lookup lint: the most recent lookup on this path whose result
  // is still valid (same map + constant stack key, no intervening write).
  int32_t last_lookup_map = -1;
  int64_t last_lookup_key_off = 0;  // fp-relative
  uint32_t last_lookup_key_size = 0;
  int32_t last_lookup_pc = -1;
};

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class Verifier {
 public:
  Verifier(const Program& prog, ProgramContext context,
           const VerifierOptions& options, VerifyReport* report)
      : prog_(prog), context_(context), options_(options), report_(report) {}

  // Switches this instance into the post-acceptance cost pass: same
  // exploration semantics, but pruning additionally requires the coverer
  // to carry at-least-equal accumulated cost (so pruned continuations
  // cannot hide a more expensive path), per-path cost is accumulated, and
  // budget exhaustion degrades to "unbounded" instead of a rejection.
  void EnableCostMode(const CostModel* model) {
    cost_mode_ = true;
    cost_model_ = model;
  }

  // Cost-pass result. bounded stays false if the pass gave up (budget) or
  // hit an error (cannot happen for a program the main pass accepted, but
  // handled defensively).
  CostFacts TakeCostFacts() {
    CostFacts facts;
    if (cost_gave_up_ || !report_->ok() || !cost_any_exit_) {
      return facts;
    }
    facts = cost_facts_;
    facts.bounded = true;
    facts.has_tail_call = has_tail_call_;
    for (int32_t node = hottest_leaf_; node >= 0;
         node = path_arena_[static_cast<size_t>(node)].first) {
      facts.hottest_path.push_back(path_arena_[static_cast<size_t>(node)].second);
    }
    std::reverse(facts.hottest_path.begin(), facts.hottest_path.end());
    return facts;
  }

  void Run() {
    const size_t n = prog_.insns.size();
    if (n == 0) {
      AddDiagnostic(DiagSeverity::kError, 0, "empty program");
      return;
    }
    if (!StaticChecks()) {
      return;  // dataflow needs structurally valid jumps and registers
    }
    ComputeLiveness();
    ComputePrunePoints();
    visited_pc_.assign(n, 0);
    edges_.assign(n, 0);

    AbsState entry;
    if (context_ == ProgramContext::kPacket) {
      entry.regs[1] = RegState::Pointer(RegKind::kPktPtr);
      entry.regs[2] = RegState::Pointer(RegKind::kPktEnd);
    } else {
      entry.regs[1] = RegState::UnknownScalar();
      entry.regs[2] = RegState::UnknownScalar();
    }
    entry.regs[kFrameRegister] = RegState::Pointer(RegKind::kStackPtr);

    std::vector<AbsState> pending;
    pending.push_back(std::move(entry));

    while (!pending.empty()) {
      AbsState st = std::move(pending.back());
      pending.pop_back();
      // Every stored state whose watermark lies above the stack again has a
      // fully explored subtree: it is now safe to prune against.
      while (!undone_.empty() && pending.size() < undone_.back().watermark) {
        prune_states_[undone_.back().pc][undone_.back().index].done = true;
        undone_.pop_back();
      }
      while (true) {
        if (options_.prune && st.pc < n && prune_point_[st.pc] != 0 &&
            TryPrune(st, pending.size())) {
          ++report_->stats.pruned_states;
          break;
        }
        if (++report_->stats.visited_insns > options_.max_visited_insns) {
          if (cost_mode_) {
            // The main pass accepted within budget; the weaker cost-mode
            // pruning just could not. Degrade to an unbounded cost verdict.
            cost_gave_up_ = true;
            return;
          }
          Fatal(st.pc,
                "program too complex: exploration budget exceeded "
                "(unbounded loop?)");
          return;
        }
        if (st.pc >= n) {
          Fail(st.pc, "execution falls off the end of the program");
          if (stop_) return;
          break;
        }
        visited_pc_[st.pc] = 1;
        const Op op = prog_.insns[st.pc].op;
        if (cost_mode_) {
          AddCost(st);  // before StepInsn so branch copies inherit it
        }
        StepResult step;
        if (!StepInsn(st, step).ok()) {
          if (stop_) return;
          break;  // keep_going: abandon this path, siblings still explored
        }
        if (step.done) {
          // EXIT reached (step.done from a contradictory branch is an
          // abandoned infeasible path, not a completed execution).
          if (cost_mode_ && op == Op::kExit) {
            RecordExitCost(st);
          }
          break;
        }
        if (step.has_branch) {
          ++report_->stats.branch_states;
          if (pending.size() >= options_.max_pending_states) {
            if (cost_mode_) {
              cost_gave_up_ = true;
              return;
            }
            Fatal(st.pc, "too many pending branch states");
            return;
          }
          pending.push_back(std::move(step.branch_state));
        }
        st.pc = step.next_pc;
      }
    }

    if (report_->ok() && !cost_mode_) {
      report_->facts.visited = visited_pc_;
      report_->facts.edges = edges_;
      // Purity summary: only packet programs have a flow key to memoize
      // under; thread classifiers are invoked per scheduling event, not
      // per packet, and stay uncacheable.
      report_->facts.cacheable =
          cacheable_ && context_ == ProgramContext::kPacket;
      report_->facts.pkt_read_mask = pkt_read_mask_;
      report_->facts.read_maps.assign(read_maps_.begin(), read_maps_.end());
      report_->facts.write_maps.assign(write_maps_.begin(), write_maps_.end());
      report_->facts.atomic_maps.assign(atomic_maps_.begin(),
                                        atomic_maps_.end());
      if (context_ == ProgramContext::kPacket) {
        for (const auto& [pc, reason] : cache_blockers_) {
          report_->facts.cache_blockers.push_back(
              CacheBlocker{static_cast<uint32_t>(pc), reason});
        }
      }
      EmitWarnings();
    }
  }

 private:
  struct StepResult {
    size_t next_pc = 0;
    bool done = false;
    bool has_branch = false;
    AbsState branch_state;
  };

  struct Stored {
    AbsState state;
    bool done = false;  // subtree fully explored; safe subsumption target
  };
  struct UndoneRef {
    size_t pc = 0;
    size_t index = 0;
    size_t watermark = 0;  // pending-stack depth at store time
  };

  // --- diagnostics -------------------------------------------------------

  void AddDiagnostic(DiagSeverity severity, size_t pc,
                     const std::string& message) {
    if (!seen_.insert({pc, message}).second) {
      return;
    }
    if (report_->diagnostics.size() >= options_.max_diagnostics) {
      stop_ = true;
      return;
    }
    Diagnostic d;
    d.severity = severity;
    d.pc = pc;
    if (pc < prog_.insns.size()) {
      d.insn = Disassemble(prog_.insns[pc]);
    }
    d.message = message;
    report_->diagnostics.push_back(std::move(d));
  }

  // Path-level error: in keep_going mode only this path is abandoned.
  Status Fail(size_t pc, const std::string& why) {
    AddDiagnostic(DiagSeverity::kError, pc, why);
    if (!options_.keep_going) {
      stop_ = true;
    }
    return InvalidArgumentError("verifier: " + why);
  }

  // Run-level error: whole-program properties; exploring further paths
  // cannot produce useful additional findings.
  Status Fatal(size_t pc, const std::string& why) {
    AddDiagnostic(DiagSeverity::kError, pc, why);
    stop_ = true;
    return InvalidArgumentError("verifier: " + why);
  }

  // --- static structure --------------------------------------------------

  // Structural checks that need no dataflow. All violations are collected
  // in keep_going mode, but any of them blocks abstract interpretation.
  bool StaticChecks() {
    bool ok = true;
    for (size_t pc = 0; pc < prog_.insns.size(); ++pc) {
      const Insn& insn = prog_.insns[pc];
      if (insn.dst >= kNumRegisters || insn.src >= kNumRegisters) {
        Fail(pc, "register number out of range");
        ok = false;
      }
      if (insn.op == Op::kInvalid) {
        Fail(pc, "invalid opcode");
        ok = false;
      }
      if (IsJumpOp(insn.op)) {
        const int64_t target =
            static_cast<int64_t>(pc) + 1 + static_cast<int64_t>(insn.off);
        if (target < 0 ||
            target >= static_cast<int64_t>(prog_.insns.size())) {
          Fail(pc, "jump target out of program bounds");
          ok = false;
        }
      }
      if (insn.op == Op::kLdMapFd) {
        if (insn.imm < 0 ||
            static_cast<size_t>(insn.imm) >= prog_.maps.size()) {
          Fail(pc, "ldmapfd references unknown map");
          ok = false;
        }
      }
      const bool writes_dst =
          IsAluOp(insn.op) || IsLoadOp(insn.op) || insn.op == Op::kLdMapFd;
      if (writes_dst && insn.dst == kFrameRegister) {
        Fail(pc, "write to frame pointer r10");
        ok = false;
      }
      if (!ok && stop_) {
        return false;
      }
    }
    return ok;
  }

  // Per-insn register use/def masks for the liveness dataflow.
  static void UseDef(const Insn& insn, uint16_t* use, uint16_t* def) {
    *use = 0;
    *def = 0;
    const uint16_t dst_bit = uint16_t{1} << insn.dst;
    const uint16_t src_bit = uint16_t{1} << insn.src;
    if (IsAluOp(insn.op)) {
      switch (insn.op) {
        case Op::kMovImm:
        case Op::kMov32Imm:
          break;
        case Op::kMovReg:
        case Op::kMov32Reg:
          *use = src_bit;
          break;
        default:
          *use = dst_bit;
          if (UsesSrcReg(insn.op)) *use |= src_bit;
          break;
      }
      *def = dst_bit;
      return;
    }
    if (IsLoadOp(insn.op)) {
      *use = src_bit;
      *def = dst_bit;
      return;
    }
    if (IsStoreOp(insn.op)) {
      *use = dst_bit;
      if (UsesSrcReg(insn.op)) *use |= src_bit;
      return;
    }
    if (IsCondJumpOp(insn.op)) {
      *use = dst_bit;
      if (UsesSrcReg(insn.op)) *use |= src_bit;
      return;
    }
    switch (insn.op) {
      case Op::kLdMapFd:
        *def = dst_bit;
        break;
      case Op::kCall:
        *use = 0b0000000111110;  // r1..r5 (conservative: any helper arity)
        *def = 0b0000000111111;  // r0..r5 clobbered
        break;
      case Op::kExit:
        *use = 0b1;  // r0
        break;
      default:
        break;
    }
  }

  // Backward may-live dataflow over the static CFG. Comparing only live
  // registers at prune points is what lets states with divergent dead
  // loop counters or clobbered temporaries subsume each other.
  void ComputeLiveness() {
    const size_t n = prog_.insns.size();
    live_.assign(n, 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = n; i-- > 0;) {
        const Insn& insn = prog_.insns[i];
        uint16_t out = 0;
        if (insn.op == Op::kExit) {
          // no successors
        } else if (insn.op == Op::kJa) {
          const size_t t = i + 1 + static_cast<size_t>(
                                       static_cast<int64_t>(insn.off));
          if (t < n) out = live_[t];
        } else if (IsCondJumpOp(insn.op)) {
          const size_t t = i + 1 + static_cast<size_t>(
                                       static_cast<int64_t>(insn.off));
          if (i + 1 < n) out |= live_[i + 1];
          if (t < n) out |= live_[t];
        } else if (i + 1 < n) {
          out = live_[i + 1];
        }
        uint16_t use = 0;
        uint16_t def = 0;
        UseDef(insn, &use, &def);
        uint16_t in = use | (out & static_cast<uint16_t>(~def));
        in |= uint16_t{1} << kFrameRegister;
        if (in != live_[i]) {
          live_[i] = in;
          changed = true;
        }
      }
    }
  }

  // Join points of the CFG: every jump target. These are where distinct
  // paths reconverge, so where subsumption has a chance to fire.
  void ComputePrunePoints() {
    const size_t n = prog_.insns.size();
    prune_point_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (IsJumpOp(prog_.insns[i].op)) {
        const size_t t = i + 1 + static_cast<size_t>(
                                     static_cast<int64_t>(prog_.insns[i].off));
        if (t < n) prune_point_[t] = 1;
      }
    }
  }

  // --- subsumption -------------------------------------------------------

  static bool RegCovers(const RegState& o, const RegState& n) {
    if (o.kind == RegKind::kNotInit) {
      return true;  // the old path never relied on this register
    }
    if (o.kind != n.kind) {
      return false;
    }
    switch (o.kind) {
      case RegKind::kScalar:
        return o.umin <= n.umin && o.umax >= n.umax && o.smin <= n.smin &&
               o.smax >= n.smax && TnumIn(o.tnum, n.tnum);
      case RegKind::kPktPtr:
      case RegKind::kStackPtr:
        return o.off_min <= n.off_min && o.off_max >= n.off_max;
      case RegKind::kMapValue:
        return o.map_index == n.map_index && o.off_min <= n.off_min &&
               o.off_max >= n.off_max;
      case RegKind::kMapValueOrNull:
        // origin_pc must match so the NULL-check bookkeeping of the pruned
        // path is not silently attributed to a different lookup site.
        return o.map_index == n.map_index && o.origin_pc == n.origin_pc &&
               o.off_min <= n.off_min && o.off_max >= n.off_max;
      case RegKind::kConstMapPtr:
        return o.map_index == n.map_index;
      case RegKind::kPktEnd:
      case RegKind::kNullConst:
        return true;
      case RegKind::kNotInit:
        return true;
    }
    return false;
  }

  // True iff everything verified from `o` onward also holds from `n`:
  // `o` makes weaker-or-equal assumptions in every component `n`'s
  // continuation can observe.
  bool Covers(const AbsState& o, const AbsState& n, uint16_t live) const {
    if (o.pkt_range > n.pkt_range) {
      return false;
    }
    if ((o.stack_init & ~n.stack_init).any()) {
      return false;
    }
    for (int r = 0; r < kNumRegisters; ++r) {
      if (((live >> r) & 1) != 0 && !RegCovers(o.regs[r], n.regs[r])) {
        return false;
      }
    }
    return true;
  }

  // Cost mode only: the coverer reached this join point at least as
  // expensively in every component, so the paths explored from it bound the
  // pruned state's full-path worst case from above.
  static bool CostDominates(const AbsState& o, const AbsState& n) {
    if (o.cost_insns < n.cost_insns) {
      return false;
    }
    for (size_t t = 0; t < kNumCostTiers; ++t) {
      if (o.cost_ns[t] < n.cost_ns[t]) {
        return false;
      }
    }
    return true;
  }

  // Prune if a fully-explored state at this pc covers `st`; otherwise
  // remember `st` so it can cover later arrivals. Only `done` states are
  // candidates: pruning against an ancestor still being explored would
  // certify unexplored (possibly non-terminating) continuations.
  bool TryPrune(const AbsState& st, size_t pending_size) {
    auto& list = prune_states_[st.pc];
    const uint16_t live = live_[st.pc];
    for (const Stored& s : list) {
      if (s.done && Covers(s.state, st, live) &&
          (!cost_mode_ || CostDominates(s.state, st))) {
        return true;
      }
    }
    if (list.size() < options_.max_states_per_prune_point) {
      list.push_back(Stored{st, false});
      undone_.push_back(UndoneRef{st.pc, list.size() - 1, pending_size});
    }
    return false;
  }

  // --- cost pass ---------------------------------------------------------

  // Charges insns[st.pc] to the path's accumulators and extends the path
  // arena. Runs before StepInsn so the helper-argument registers (map kind
  // for call pricing) are still live and branch copies inherit the cost.
  void AddCost(AbsState& st) {
    const Insn& insn = prog_.insns[st.pc];
    st.cost_insns += 1;
    MapType map_type = MapType::kArray;
    uint32_t batch_count = 1;
    if (insn.op == Op::kCall) {
      const auto helper = static_cast<HelperId>(insn.imm);
      if (helper == HelperId::kMapLookupElem ||
          helper == HelperId::kMapUpdateElem ||
          helper == HelperId::kMapDeleteElem ||
          helper == HelperId::kMapLookupBatch) {
        const RegState& r1 = st.regs[1];
        if (r1.kind == RegKind::kConstMapPtr && r1.map_index >= 0 &&
            static_cast<size_t>(r1.map_index) < prog_.maps.size()) {
          map_type = prog_.maps[r1.map_index]->spec().type;
        }
      }
      if (helper == HelperId::kMapLookupBatch) {
        // ApplyCall (later this step) rejects non-constant counts; price
        // the worst case if the program is about to fail anyway.
        const RegState& r4 = st.regs[4];
        batch_count = r4.IsConst() && r4.ConstVal() <= Map::kMaxLookupBatch
                          ? static_cast<uint32_t>(r4.ConstVal())
                          : Map::kMaxLookupBatch;
      }
    }
    for (size_t t = 0; t < kNumCostTiers; ++t) {
      st.cost_ns[t] += cost_model_->InsnNs(insn, map_type,
                                           static_cast<CostTier>(t),
                                           batch_count);
    }
    path_arena_.push_back({st.path_node, static_cast<uint32_t>(st.pc)});
    st.path_node = static_cast<int32_t>(path_arena_.size() - 1);
  }

  // Folds a completed path (EXIT validated) into the per-tier maxima and
  // minima; the hottest path is the native-tier maximum, ties broken
  // toward more instructions.
  void RecordExitCost(const AbsState& st) {
    double total_ns[kNumCostTiers];
    for (size_t t = 0; t < kNumCostTiers; ++t) {
      total_ns[t] = st.cost_ns[t] + cost_model_->exec_overhead_ns[t];
    }
    if (!cost_any_exit_) {
      cost_any_exit_ = true;
      cost_facts_.wcet_insns = cost_facts_.best_insns = st.cost_insns;
      for (size_t t = 0; t < kNumCostTiers; ++t) {
        cost_facts_.wcet_ns[t] = cost_facts_.best_ns[t] = total_ns[t];
      }
      hottest_native_ns_ = total_ns[static_cast<size_t>(CostTier::kNative)];
      hottest_insns_ = st.cost_insns;
      hottest_leaf_ = st.path_node;
      return;
    }
    cost_facts_.wcet_insns = std::max(cost_facts_.wcet_insns, st.cost_insns);
    cost_facts_.best_insns = std::min(cost_facts_.best_insns, st.cost_insns);
    for (size_t t = 0; t < kNumCostTiers; ++t) {
      cost_facts_.wcet_ns[t] = std::max(cost_facts_.wcet_ns[t], total_ns[t]);
      cost_facts_.best_ns[t] = std::min(cost_facts_.best_ns[t], total_ns[t]);
    }
    const double native = total_ns[static_cast<size_t>(CostTier::kNative)];
    if (native > hottest_native_ns_ ||
        (native == hottest_native_ns_ && st.cost_insns > hottest_insns_)) {
      hottest_native_ns_ = native;
      hottest_insns_ = st.cost_insns;
      hottest_leaf_ = st.path_node;
    }
  }

  // --- memory ------------------------------------------------------------

  void NoteStackRead(size_t first, size_t last) {
    for (size_t i = first; i < last && i < kStackSize; ++i) {
      stack_read_.set(i);
    }
  }

  void NoteStackWrite(size_t pc, size_t first, size_t last) {
    auto [it, inserted] = stack_writes_.try_emplace(pc, first, last);
    if (!inserted) {
      it->second.first = std::min(it->second.first, first);
      it->second.second = std::max(it->second.second, last);
    }
  }

  // First impurity reason recorded per pc wins (a pc can clear
  // cacheability for one reason only).
  void NoteCacheBlocker(size_t pc, std::string reason) {
    cache_blockers_.emplace(pc, std::move(reason));
  }

  // Folds a proven-in-bounds packet read span [lo, last) into the read-set
  // mask. A variable-offset read contributes its whole interval (any byte
  // in it may influence the decision). Spans past the mask's 64-byte reach
  // cannot be keyed, so they make the program uncacheable instead.
  void NotePacketRead(size_t pc, int64_t lo, int64_t last) {
    if (last > AnalysisFacts::kMaxTrackedPktBytes) {
      cacheable_ = false;
      NoteCacheBlocker(pc,
                       "packet read reaches byte " + std::to_string(last) +
                           ", past the " +
                           std::to_string(AnalysisFacts::kMaxTrackedPktBytes) +
                           "-byte flow-key window");
      return;
    }
    for (int64_t i = lo; i < last; ++i) {
      pkt_read_mask_ |= uint64_t{1} << i;
    }
  }

  // Validates a memory access through `ptr` whose offset may span
  // [off_min, off_max]: every offset in the interval must be in bounds.
  // For stack reads also checks initialization; stack writes at a constant
  // offset mark bytes initialized (variable-offset writes conservatively
  // do not, since which bytes they define is unknown).
  Status CheckMemAccess(AbsState& st, size_t pc, const RegState& ptr,
                        int16_t insn_off, int size, bool is_write,
                        bool is_atomic = false) {
    const int64_t lo = ptr.off_min + insn_off;
    const int64_t hi = ptr.off_max + insn_off;
    switch (ptr.kind) {
      case RegKind::kPktPtr: {
        if (is_write) {
          return Fail(pc, "packet memory is read-only at Syrup hooks");
        }
        if (lo < 0 || hi + size > st.pkt_range) {
          return Fail(pc,
                      "packet access [" + std::to_string(lo) + ", " +
                          std::to_string(hi + size) +
                          ") outside verified range " +
                          std::to_string(st.pkt_range) +
                          " (missing bounds check against pkt_end?)");
        }
        NotePacketRead(pc, lo, hi + size);
        return OkStatus();
      }
      case RegKind::kStackPtr: {
        if (lo < -kStackSize || hi + size > 0) {
          return Fail(pc, "stack access out of bounds at fp" +
                              std::to_string(lo));
        }
        const size_t first = static_cast<size_t>(lo + kStackSize);
        const size_t last =
            static_cast<size_t>(hi + kStackSize) + static_cast<size_t>(size);
        if (is_write) {
          if (lo == hi) {
            for (size_t i = first; i < last; ++i) {
              st.stack_init.set(i);
            }
          }
          NoteStackWrite(pc, first, last);
          if (is_atomic) {
            NoteStackRead(first, last);  // read-modify-write
          }
          // A store over the tracked lookup key ends its redundancy window.
          if (st.last_lookup_map >= 0) {
            const size_t key_first =
                static_cast<size_t>(st.last_lookup_key_off + kStackSize);
            const size_t key_last = key_first + st.last_lookup_key_size;
            if (first < key_last && key_first < last) {
              st.last_lookup_map = -1;
            }
          }
        } else {
          for (size_t i = first; i < last; ++i) {
            if (!st.stack_init.test(i)) {
              return Fail(pc, "read of uninitialized stack at fp" +
                                  std::to_string(static_cast<int64_t>(i) -
                                                 kStackSize));
            }
          }
          NoteStackRead(first, last);
        }
        return OkStatus();
      }
      case RegKind::kMapValue: {
        const auto& spec = prog_.maps[ptr.map_index]->spec();
        if (lo < 0 || hi + size > static_cast<int64_t>(spec.value_size)) {
          return Fail(pc, "map value access out of bounds");
        }
        if (is_write) {
          // In-place map mutation (stores or atomics through the value
          // pointer) makes the program observable-state-changing: the
          // flow-decision cache must never skip running it.
          cacheable_ = false;
          write_maps_.insert(ptr.map_index);
          if (is_atomic) {
            atomic_maps_.insert(ptr.map_index);
          }
          NoteCacheBlocker(
              pc, is_atomic
                      ? "atomic add through a map value pointer (in-place "
                        "map write)"
                      : "store through a map value pointer (in-place map "
                        "write)");
          st.last_lookup_map = -1;  // map contents may have changed
        }
        return OkStatus();
      }
      case RegKind::kMapValueOrNull:
        return Fail(pc, "map value dereference without NULL check");
      case RegKind::kNullConst:
        return Fail(pc, "NULL pointer dereference");
      default:
        return Fail(pc, std::string("cannot access memory through ") +
                            KindName(ptr.kind));
    }
  }

  Status CheckHelperKeyArg(AbsState& st, size_t pc, int reg, uint32_t bytes) {
    const RegState& r = st.regs[reg];
    if (r.kind == RegKind::kStackPtr) {
      const int64_t lo = r.off_min;
      const int64_t hi = r.off_max;
      if (lo < -kStackSize || hi + static_cast<int64_t>(bytes) > 0) {
        return Fail(pc, "helper argument points outside the stack");
      }
      const size_t first = static_cast<size_t>(lo + kStackSize);
      const size_t last = static_cast<size_t>(hi + kStackSize) + bytes;
      for (size_t i = first; i < last; ++i) {
        if (!st.stack_init.test(i)) {
          return Fail(pc, "helper argument reads uninitialized stack");
        }
      }
      NoteStackRead(first, last);
      return OkStatus();
    }
    if (r.kind == RegKind::kMapValue) {
      const auto& spec = prog_.maps[r.map_index]->spec();
      if (r.off_min < 0 ||
          r.off_max + static_cast<int64_t>(bytes) >
              static_cast<int64_t>(spec.value_size)) {
        return Fail(pc, "helper argument out of map value bounds");
      }
      return OkStatus();
    }
    return Fail(pc, std::string("helper argument must be a stack or map "
                                "value pointer, found ") +
                        KindName(r.kind));
  }

  // --- instruction semantics ---------------------------------------------

  Status ApplyAlu(AbsState& st, size_t pc, const Insn& insn) {
    RegState& dst = st.regs[insn.dst];
    const Op op = insn.op;

    // MOV overwrites dst, so dst need not be initialized.
    if (op == Op::kMovReg) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      dst = st.regs[insn.src];
      return OkStatus();
    }
    if (op == Op::kMovImm) {
      dst = RegState::Known(static_cast<uint64_t>(insn.imm));
      return OkStatus();
    }
    if (op == Op::kMov32Reg) {
      SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, insn.src));
      dst = Truncate32(st.regs[insn.src]);
      return OkStatus();
    }
    if (op == Op::kMov32Imm) {
      dst = RegState::Known(static_cast<uint32_t>(insn.imm));
      return OkStatus();
    }

    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));

    // Pointer arithmetic: add/sub with a bounded scalar shifts the offset
    // interval; everything else would launder the pointer.
    if (IsPointerKind(dst.kind)) {
      auto adjustable = [](RegKind kind) {
        return kind == RegKind::kPktPtr || kind == RegKind::kStackPtr ||
               kind == RegKind::kMapValue;
      };
      auto offset_ok = [](const RegState& r) {
        return r.off_min >= -kMaxPtrOff && r.off_max <= kMaxPtrOff;
      };
      if (op == Op::kAddImm || op == Op::kSubImm) {
        if (!adjustable(dst.kind)) {
          return Fail(pc, std::string("arithmetic on ") + KindName(dst.kind));
        }
        const int64_t d = op == Op::kAddImm ? insn.imm : -insn.imm;
        dst.off_min += d;
        dst.off_max += d;
        if (!offset_ok(dst)) {
          return Fail(pc, "pointer offset out of range");
        }
        return OkStatus();
      }
      if (op == Op::kAddReg || op == Op::kSubReg) {
        SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
        const RegState& src = st.regs[insn.src];
        // ptr - ptr within the packet family yields an (unknown) length.
        if (op == Op::kSubReg &&
            (dst.kind == RegKind::kPktPtr || dst.kind == RegKind::kPktEnd) &&
            (src.kind == RegKind::kPktPtr || src.kind == RegKind::kPktEnd)) {
          dst = RegState::UnknownScalar();
          return OkStatus();
        }
        if (src.kind == RegKind::kScalar && adjustable(dst.kind)) {
          if (src.smin < -kMaxPtrDelta || src.smax > kMaxPtrDelta) {
            return Fail(pc,
                        "pointer arithmetic with unbounded scalar (add a "
                        "range check before offsetting)");
          }
          if (op == Op::kAddReg) {
            dst.off_min += src.smin;
            dst.off_max += src.smax;
          } else {
            dst.off_min -= src.smax;
            dst.off_max -= src.smin;
          }
          if (!offset_ok(dst)) {
            return Fail(pc, "pointer offset out of range");
          }
          return OkStatus();
        }
        return Fail(pc, "pointer arithmetic with unknown or non-scalar "
                        "operand");
      }
      return Fail(pc, std::string("ALU op on pointer ") + KindName(dst.kind));
    }

    // Scalar ALU. A register source must itself be a scalar; "scalar + pkt
    // pointer" style commuted forms are not needed by our policies.
    if (op == Op::kNeg) {
      dst = dst.IsConst() ? RegState::Known(~dst.ConstVal() + 1)
                          : RegState::UnknownScalar();
      return OkStatus();
    }
    if (op == Op::kBe16) {
      dst = RegState::Range(0, 0xffff);
      return OkStatus();
    }
    if (op == Op::kBe32) {
      dst = RegState::Range(0, kU32Max);
      return OkStatus();
    }
    if (op == Op::kBe64) {
      dst = RegState::UnknownScalar();
      return OkStatus();
    }
    RegState rhs;
    if (UsesSrcReg(op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      const RegState& src = st.regs[insn.src];
      if (src.kind != RegKind::kScalar) {
        return Fail(pc, std::string("scalar ALU with pointer source ") +
                            KindName(src.kind));
      }
      rhs = src;
    } else {
      rhs = RegState::Known(static_cast<uint64_t>(insn.imm));
    }
    AluKind kind;
    if (!AluKindOf(op, &kind)) {
      return Fail(pc, "unhandled ALU op");
    }
    dst = AluApply(kind, dst, rhs);
    return OkStatus();
  }

  void MarkEdge(size_t pc, uint8_t bits) {
    if (pc < edges_.size()) {
      edges_[pc] |= bits;
    }
  }

  Status ApplyCondJump(AbsState& st, size_t pc, const Insn& insn,
                       StepResult& step) {
    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));
    if (UsesSrcReg(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
    }
    RegState& a = st.regs[insn.dst];
    const size_t taken_pc = pc + 1 + static_cast<size_t>(
                                         static_cast<int64_t>(insn.off));
    const size_t fall_pc = pc + 1;
    const bool src_is_imm = !UsesSrcReg(insn.op);
    RegState* b = src_is_imm ? nullptr : &st.regs[insn.src];

    // NULL-check refinement for map lookups: `if (ptr ==/!= 0)`.
    const bool null_test =
        (insn.op == Op::kJeqImm || insn.op == Op::kJneImm) && insn.imm == 0 &&
        a.kind == RegKind::kMapValueOrNull;
    if (null_test) {
      if (a.origin_pc >= 0) {
        lookup_checked_.insert(static_cast<size_t>(a.origin_pc));
      }
      const bool eq = insn.op == Op::kJeqImm;
      AbsState taken = st;
      taken.regs[insn.dst].kind = eq ? RegKind::kNullConst
                                     : RegKind::kMapValue;
      st.regs[insn.dst].kind = eq ? RegKind::kMapValue : RegKind::kNullConst;
      MarkEdge(pc, AnalysisFacts::kEdgeFall | AnalysisFacts::kEdgeTaken);
      taken.pc = taken_pc;
      step.has_branch = true;
      step.branch_state = std::move(taken);
      step.next_pc = fall_pc;
      return OkStatus();
    }

    // Scalar comparison: decide statically if the ranges allow, otherwise
    // fork and narrow each side under its edge's condition.
    if (a.kind == RegKind::kScalar &&
        (src_is_imm || b->kind == RegKind::kScalar)) {
      const Cmp cmp = CmpOf(insn.op);
      const RegState imm_rhs =
          src_is_imm ? RegState::Known(static_cast<uint64_t>(insn.imm))
                     : RegState();
      const int decided = Decide(cmp, a, src_is_imm ? imm_rhs : *b);
      if (decided == 1) {
        MarkEdge(pc, AnalysisFacts::kEdgeTaken);
        step.next_pc = taken_pc;
        return OkStatus();
      }
      if (decided == 0) {
        MarkEdge(pc, AnalysisFacts::kEdgeFall);
        step.next_pc = fall_pc;
        return OkStatus();
      }
      AbsState taken = st;
      RegState taken_rhs = imm_rhs;
      RegState* tb = src_is_imm ? &taken_rhs : &taken.regs[insn.src];
      RegState fall_rhs = imm_rhs;
      RegState* fb = src_is_imm ? &fall_rhs : &st.regs[insn.src];
      const bool taken_ok = Narrow(cmp, taken.regs[insn.dst], *tb);
      const bool fall_ok = Narrow(Inverse(cmp), st.regs[insn.dst], *fb);
      if (taken_ok && fall_ok) {
        MarkEdge(pc, AnalysisFacts::kEdgeFall | AnalysisFacts::kEdgeTaken);
        taken.pc = taken_pc;
        step.has_branch = true;
        step.branch_state = std::move(taken);
        step.next_pc = fall_pc;
      } else if (taken_ok) {
        MarkEdge(pc, AnalysisFacts::kEdgeTaken);
        st = std::move(taken);
        step.next_pc = taken_pc;
      } else if (fall_ok) {
        MarkEdge(pc, AnalysisFacts::kEdgeFall);
        step.next_pc = fall_pc;
      } else {
        // Both edges contradict an already-infeasible state; nothing
        // concrete reaches here, so the path ends.
        step.done = true;
      }
      return OkStatus();
    }

    // Pointer comparisons. pkt vs pkt_end proves packet bytes accessible on
    // the right edge; other same-family comparisons fork unrefined.
    AbsState taken = st;
    if (!src_is_imm) {
      const RegState& d = a;
      const RegState& s = *b;
      auto refine = [](AbsState& state, int64_t n) {
        if (n > state.pkt_range) {
          state.pkt_range = n;
        }
      };
      if (d.kind == RegKind::kPktPtr && s.kind == RegKind::kPktEnd) {
        // The guard proves pkt + off <= pkt_end; off_min holds for every
        // concrete offset, so that many bytes are accessible.
        const int64_t n = d.off_min;
        switch (insn.op) {
          case Op::kJgtReg: case Op::kJgeReg: refine(st, n); break;
          case Op::kJltReg: case Op::kJleReg: refine(taken, n); break;
          default: break;
        }
      } else if (d.kind == RegKind::kPktEnd && s.kind == RegKind::kPktPtr) {
        const int64_t n = s.off_min;
        switch (insn.op) {
          case Op::kJgtReg: case Op::kJgeReg: refine(taken, n); break;
          case Op::kJltReg: case Op::kJleReg: refine(st, n); break;
          default: break;
        }
      } else {
        // Comparing pointers of the same kind (e.g. two pkt ptrs) is fine;
        // mixed pointer/scalar comparisons are rejected as in eBPF.
        const bool same_family = d.kind == s.kind ||
                                 (IsPointerKind(d.kind) &&
                                  IsPointerKind(s.kind));
        if (!same_family) {
          return Fail(pc, "comparison between pointer and scalar");
        }
      }
    } else if (IsPointerKind(a.kind)) {
      return Fail(pc, "comparison between pointer and immediate");
    }

    MarkEdge(pc, AnalysisFacts::kEdgeFall | AnalysisFacts::kEdgeTaken);
    taken.pc = taken_pc;
    step.has_branch = true;
    step.branch_state = std::move(taken);
    step.next_pc = fall_pc;
    return OkStatus();
  }

  Status ApplyCall(AbsState& st, size_t pc, const Insn& insn) {
    const auto helper = static_cast<HelperId>(insn.imm);
    auto require_map_arg = [&](int reg, MapType* type_out) -> Status {
      const RegState& r = st.regs[reg];
      if (r.kind != RegKind::kConstMapPtr) {
        return Fail(pc, "helper expects a map reference in r" +
                            std::to_string(reg));
      }
      if (type_out != nullptr) {
        *type_out = prog_.maps[r.map_index]->spec().type;
      }
      return OkStatus();
    };

    int32_t lookup_map = -1;
    switch (helper) {
      case HelperId::kMapLookupElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        lookup_map = st.regs[1].map_index;
        const auto& spec = prog_.maps[lookup_map]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        read_maps_.insert(lookup_map);
        break;
      }
      case HelperId::kMapUpdateElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        const auto& spec = prog_.maps[st.regs[1].map_index]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 3, spec.value_size));
        write_maps_.insert(st.regs[1].map_index);
        break;
      }
      case HelperId::kMapDeleteElem: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        const auto& spec = prog_.maps[st.regs[1].map_index]->spec();
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(st, pc, 2, spec.key_size));
        write_maps_.insert(st.regs[1].map_index);
        break;
      }
      case HelperId::kMapLookupBatch: {
        SYRUP_RETURN_IF_ERROR(require_map_arg(1, nullptr));
        lookup_map = st.regs[1].map_index;
        const auto& spec = prog_.maps[lookup_map]->spec();
        if (spec.value_size != sizeof(uint64_t)) {
          return Fail(pc, "map_lookup_batch requires a u64-value map "
                          "(value_size == 8); this map's value_size is " +
                              std::to_string(spec.value_size));
        }
        // r4 must be a compile-time-known batch size so the keys/out spans
        // below are constant-width (the whole point: the verifier proves
        // the copy-out region, so no per-element NULL checks survive to
        // runtime).
        const RegState& n_reg = st.regs[4];
        if (!n_reg.IsConst()) {
          return Fail(pc, "map_lookup_batch count (r4) must be a known "
                          "constant");
        }
        const uint64_t n = n_reg.ConstVal();
        if (n == 0 || n > Map::kMaxLookupBatch) {
          return Fail(pc, "map_lookup_batch count must be 1.." +
                              std::to_string(Map::kMaxLookupBatch) +
                              ", got " + std::to_string(n));
        }
        SYRUP_RETURN_IF_ERROR(CheckHelperKeyArg(
            st, pc, 2, static_cast<uint32_t>(n) * spec.key_size));
        // r3 is written by the helper: a stack pointer at a constant
        // offset, n*8 bytes in bounds. The span becomes initialized.
        const RegState& out = st.regs[3];
        if (out.kind != RegKind::kStackPtr || out.off_min != out.off_max) {
          return Fail(pc, "map_lookup_batch out (r3) must be a stack "
                          "pointer at a constant offset");
        }
        const int64_t out_bytes = static_cast<int64_t>(n) * 8;
        if (out.off_min < -kStackSize || out.off_min + out_bytes > 0) {
          return Fail(pc, "map_lookup_batch out span outside the stack");
        }
        const size_t first = static_cast<size_t>(out.off_min + kStackSize);
        const size_t last = first + static_cast<size_t>(out_bytes);
        for (size_t i = first; i < last; ++i) {
          st.stack_init.set(i);
        }
        NoteStackWrite(pc, first, last);
        read_maps_.insert(lookup_map);
        break;
      }
      case HelperId::kGetPrandomU32:
      case HelperId::kKtimeGetNs:
        break;
      case HelperId::kTailCall: {
        MapType type;
        SYRUP_RETURN_IF_ERROR(require_map_arg(2, &type));
        if (type != MapType::kProgArray) {
          return Fail(pc, "tail_call requires a prog_array map");
        }
        SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, 3));
        break;
      }
      default:
        return Fail(pc, "unknown helper " + std::to_string(insn.imm));
    }

    // Purity: map mutations have side effects; randomness and the clock
    // make the decision depend on more than (packet bytes, map contents);
    // a tail call's target program is outside this analysis.
    switch (helper) {
      case HelperId::kMapLookupElem:
      case HelperId::kMapLookupBatch:  // pure read, like a single lookup
        break;
      case HelperId::kMapUpdateElem:
        cacheable_ = false;
        NoteCacheBlocker(pc, "map_update_elem (map write)");
        break;
      case HelperId::kMapDeleteElem:
        cacheable_ = false;
        NoteCacheBlocker(pc, "map_delete_elem (map write)");
        break;
      case HelperId::kGetPrandomU32:
        cacheable_ = false;
        NoteCacheBlocker(pc, "get_prandom_u32 (nondeterministic result)");
        break;
      case HelperId::kKtimeGetNs:
        cacheable_ = false;
        NoteCacheBlocker(pc, "ktime_get_ns (time-dependent result)");
        break;
      case HelperId::kTailCall:
        cacheable_ = false;
        has_tail_call_ = true;
        NoteCacheBlocker(pc, "tail_call (target program outside this "
                             "analysis)");
        break;
    }

    // Redundant-lookup lint bookkeeping: a mutation ends any redundancy
    // window; a lookup with a constant stack key either flags a repeat of
    // the previous lookup or starts a new window.
    if (helper == HelperId::kMapUpdateElem ||
        helper == HelperId::kMapDeleteElem) {
      st.last_lookup_map = -1;
    } else if (helper == HelperId::kMapLookupBatch) {
      // The helper writes the out span; if the tracked key bytes sit in
      // it, the window is stale. Cheaper to just end the window.
      st.last_lookup_map = -1;
    } else if (helper == HelperId::kMapLookupElem) {
      const RegState& key = st.regs[2];
      const auto& spec = prog_.maps[lookup_map]->spec();
      if (key.kind == RegKind::kStackPtr && key.off_min == key.off_max) {
        if (st.last_lookup_map == lookup_map &&
            st.last_lookup_key_off == key.off_min &&
            st.last_lookup_key_size == spec.key_size &&
            st.last_lookup_pc >= 0 &&
            static_cast<size_t>(st.last_lookup_pc) != pc) {
          redundant_lookups_.emplace(
              pc, static_cast<size_t>(st.last_lookup_pc));
        }
        st.last_lookup_map = lookup_map;
        st.last_lookup_key_off = key.off_min;
        st.last_lookup_key_size = spec.key_size;
        st.last_lookup_pc = static_cast<int32_t>(pc);
      } else {
        st.last_lookup_map = -1;  // variable key: cannot track
      }
    }

    // r0 holds the result; argument registers are clobbered.
    if (helper == HelperId::kMapLookupElem) {
      st.regs[0] = RegState::Pointer(RegKind::kMapValueOrNull, lookup_map);
      st.regs[0].origin_pc = static_cast<int32_t>(pc);
      lookup_sites_.insert(pc);
    } else if (helper == HelperId::kMapLookupBatch) {
      // Hit bitmap: bit i set iff keys[i] was present; n was proven
      // constant above, so the range is exact.
      const uint64_t n = st.regs[4].ConstVal();
      st.regs[0] = RegState::Range(
          0, n >= 64 ? kU64Max : (uint64_t{1} << n) - 1);
    } else if (helper == HelperId::kGetPrandomU32) {
      st.regs[0] = RegState::Range(0, kU32Max);
    } else {
      st.regs[0] = RegState::UnknownScalar();
    }
    for (int reg = 1; reg <= 5; ++reg) {
      st.regs[reg] = RegState{};
    }
    return OkStatus();
  }

  Status RequireInit(const AbsState& st, size_t pc, int reg) {
    if (st.regs[reg].kind == RegKind::kNotInit) {
      return Fail(pc, "read of uninitialized register r" + std::to_string(reg));
    }
    return OkStatus();
  }

  Status RequireScalar(const AbsState& st, size_t pc, int reg) {
    SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, reg));
    if (st.regs[reg].kind != RegKind::kScalar) {
      return Fail(pc, std::string("expected scalar in r") +
                          std::to_string(reg) + ", found " +
                          KindName(st.regs[reg].kind));
    }
    return OkStatus();
  }

  Status StepInsn(AbsState& st, StepResult& step) {
    const size_t pc = st.pc;
    const Insn& insn = prog_.insns[pc];
    step.next_pc = pc + 1;

    if (IsAluOp(insn.op)) {
      return ApplyAlu(st, pc, insn);
    }
    if (IsLoadOp(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.src));
      SYRUP_RETURN_IF_ERROR(CheckMemAccess(st, pc, st.regs[insn.src], insn.off,
                                           MemAccessSize(insn.op),
                                           /*is_write=*/false));
      switch (insn.op) {
        case Op::kLdxB: st.regs[insn.dst] = RegState::Range(0, 0xff); break;
        case Op::kLdxH: st.regs[insn.dst] = RegState::Range(0, 0xffff); break;
        case Op::kLdxW: st.regs[insn.dst] = RegState::Range(0, kU32Max); break;
        default: st.regs[insn.dst] = RegState::UnknownScalar(); break;
      }
      return OkStatus();
    }
    if (IsStoreOp(insn.op)) {
      SYRUP_RETURN_IF_ERROR(RequireInit(st, pc, insn.dst));
      if (UsesSrcReg(insn.op)) {
        SYRUP_RETURN_IF_ERROR(RequireScalar(st, pc, insn.src));
      }
      const bool atomic = insn.op == Op::kAtomicAddDW;
      if (atomic && st.regs[insn.dst].kind == RegKind::kPktPtr) {
        return Fail(pc, "atomic op on packet memory");
      }
      return CheckMemAccess(st, pc, st.regs[insn.dst], insn.off,
                            MemAccessSize(insn.op), /*is_write=*/true, atomic);
    }
    switch (insn.op) {
      case Op::kJa:
        step.next_pc = pc + 1 + static_cast<size_t>(
                                    static_cast<int64_t>(insn.off));
        return OkStatus();
      case Op::kLdMapFd:
        st.regs[insn.dst] = RegState::Pointer(RegKind::kConstMapPtr,
                                              static_cast<int32_t>(insn.imm));
        return OkStatus();
      case Op::kCall:
        return ApplyCall(st, pc, insn);
      case Op::kExit:
        if (st.regs[0].kind != RegKind::kScalar) {
          return Fail(pc, "exit with non-scalar or uninitialized r0");
        }
        step.done = true;
        return OkStatus();
      default:
        if (IsCondJumpOp(insn.op)) {
          return ApplyCondJump(st, pc, insn, step);
        }
        return Fail(pc, "unhandled opcode");
    }
  }

  // --- warning catalog (lint layer; only meaningful when no errors) ------

  void EmitWarnings() {
    const size_t n = prog_.insns.size();
    std::vector<Diagnostic> warnings;
    auto warn = [&](size_t pc, std::string message) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.pc = pc;
      if (pc < n) {
        d.insn = Disassemble(prog_.insns[pc]);
      }
      d.message = std::move(message);
      warnings.push_back(std::move(d));
    };

    // Dead code: contiguous runs never reached on any feasible path.
    for (size_t i = 0; i < n;) {
      if (visited_pc_[i] != 0) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < n && visited_pc_[j] == 0) {
        ++j;
      }
      warn(i, "dead code: " + std::to_string(j - i) +
                  " unreachable instruction(s)");
      i = j;
    }

    // Statically decided branches.
    for (size_t pc = 0; pc < n; ++pc) {
      if (!IsCondJumpOp(prog_.insns[pc].op) || visited_pc_[pc] == 0) {
        continue;
      }
      if (edges_[pc] == AnalysisFacts::kEdgeTaken) {
        warn(pc, "branch condition is always true (branch always taken)");
      } else if (edges_[pc] == AnalysisFacts::kEdgeFall) {
        warn(pc, "branch condition is always false (branch never taken)");
      }
    }

    // Map lookups whose result is dereference-gated nowhere.
    for (size_t pc : lookup_sites_) {
      if (lookup_checked_.count(pc) == 0) {
        warn(pc, "map lookup result is never NULL-checked");
      }
    }

    // Same map, same constant stack key, no intervening write: the second
    // lookup returns the same value pointer and just burns a helper call.
    for (const auto& [pc, prev] : redundant_lookups_) {
      warn(pc, "redundant map lookup: same map and key already looked up "
               "at insn " +
                   std::to_string(prev) +
                   " with no intervening write; reuse that result");
    }

    // Stack bytes written but never read back (by a load or a helper).
    for (const auto& [pc, range] : stack_writes_) {
      bool read = false;
      for (size_t i = range.first; i < range.second && i < kStackSize; ++i) {
        if (stack_read_.test(i)) {
          read = true;
          break;
        }
      }
      if (!read) {
        warn(pc, "stack bytes at fp" +
                     std::to_string(static_cast<int64_t>(range.first) -
                                    kStackSize) +
                     " written but never read");
      }
    }

    std::stable_sort(warnings.begin(), warnings.end(),
                     [](const Diagnostic& x, const Diagnostic& y) {
                       return x.pc < y.pc;
                     });
    for (Diagnostic& d : warnings) {
      if (report_->diagnostics.size() >= options_.max_diagnostics) {
        break;
      }
      report_->diagnostics.push_back(std::move(d));
    }
  }

  const Program& prog_;
  ProgramContext context_;
  VerifierOptions options_;
  VerifyReport* report_;
  bool stop_ = false;

  std::vector<uint16_t> live_;        // per-pc live-in register mask
  std::vector<uint8_t> prune_point_;  // per-pc: is a jump target
  std::vector<uint8_t> visited_pc_;   // reached on some explored path
  std::vector<uint8_t> edges_;        // feasible edges per cond jump

  std::unordered_map<size_t, std::vector<Stored>> prune_states_;
  std::vector<UndoneRef> undone_;

  // Purity / read-set / side-effect summary accumulated across every
  // explored path (soundness wants the union over all paths, so plain
  // member state that only ever grows is exactly right).
  bool cacheable_ = true;
  uint64_t pkt_read_mask_ = 0;
  std::set<int32_t> read_maps_;
  std::set<int32_t> write_maps_;
  std::set<int32_t> atomic_maps_;
  bool has_tail_call_ = false;
  std::map<size_t, std::string> cache_blockers_;    // pc -> first reason
  std::map<size_t, size_t> redundant_lookups_;      // pc -> earlier pc

  // Cost pass state (untouched outside cost mode).
  bool cost_mode_ = false;
  const CostModel* cost_model_ = nullptr;
  bool cost_gave_up_ = false;
  bool cost_any_exit_ = false;
  CostFacts cost_facts_;
  std::vector<std::pair<int32_t, uint32_t>> path_arena_;  // (parent, pc)
  double hottest_native_ns_ = -1;
  uint64_t hottest_insns_ = 0;
  int32_t hottest_leaf_ = -1;

  std::set<std::pair<size_t, std::string>> seen_;  // diagnostic dedup
  std::set<size_t> lookup_sites_;
  std::set<size_t> lookup_checked_;
  std::map<size_t, std::pair<size_t, size_t>> stack_writes_;
  std::bitset<kStackSize> stack_read_;
};

// Path-over-budget lint: a program whose compiled-tier worst case exceeds
// the tightest budget of its context class would be rejected at that hook,
// so warn at verify time with the concrete path. The real per-hook budget
// table (and the hard deploy gate) lives in Syrupd.
void AppendBudgetLint(VerifyReport& report, ProgramContext context,
                      const Program& prog) {
  const CostFacts& cost = report.facts.cost;
  if (!cost.bounded || cost.hottest_path.empty()) {
    return;
  }
  const double budget = context == ProgramContext::kPacket
                            ? kTightestPacketBudgetNs
                            : kThreadBudgetNs;
  const double wcet =
      cost.wcet_ns[static_cast<size_t>(CostTier::kCompiled)];
  if (wcet <= budget) {
    return;
  }
  Diagnostic d;
  d.severity = DiagSeverity::kWarning;
  d.pc = cost.hottest_path.back();
  if (d.pc < prog.insns.size()) {
    d.insn = Disassemble(prog.insns[d.pc]);
  }
  d.message =
      "worst-case path costs " + std::to_string(llround(wcet)) +
      " ns at the compiled tier, over the " +
      (context == ProgramContext::kPacket
           ? "tightest packet-hook budget (xdp_offload, "
           : "thread-hook budget (") +
      std::to_string(llround(budget)) + " ns); hottest path: " +
      FormatPath(cost.hottest_path);
  report.diagnostics.push_back(std::move(d));
}

VerifyReport Analyze(const Program& prog, ProgramContext context,
                     const VerifierOptions& options) {
  VerifyReport report;
  report.program = prog.name;
  const auto t0 = std::chrono::steady_clock::now();
  Verifier(prog, context, options, &report).Run();
  if (report.ok() && options.compute_cost && !report.facts.empty()) {
    // Second exploration with cost accumulation and cost-dominance
    // pruning. Acceptance already happened above: whatever happens here
    // (budget exhaustion included) only affects facts.cost.
    const CostModel* model = options.cost_model != nullptr
                                 ? options.cost_model
                                 : &DefaultCostModel();
    VerifierOptions cost_options = options;
    cost_options.keep_going = false;
    VerifyReport cost_report;
    cost_report.program = prog.name;
    Verifier cost_pass(prog, context, cost_options, &cost_report);
    cost_pass.EnableCostMode(model);
    cost_pass.Run();
    report.facts.cost = cost_pass.TakeCostFacts();
    AppendBudgetLint(report, context, prog);
  }
  report.stats.verify_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return report;
}

}  // namespace

std::string_view DiagSeverityName(DiagSeverity severity) {
  return severity == DiagSeverity::kError ? "error" : "warning";
}

std::string FormatDiagnostic(const Diagnostic& diag,
                             const std::string& program_name) {
  std::string out = diag.severity == DiagSeverity::kError
                        ? "verifier: "
                        : "verifier warning: ";
  out += diag.message;
  out += " at insn " + std::to_string(diag.pc);
  if (!diag.insn.empty()) {
    out += " (" + diag.insn + ")";
  }
  out += " in program '" + program_name + "'";
  return out;
}

bool VerifyReport::ok() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) {
      return false;
    }
  }
  return true;
}

Status VerifyReport::status() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) {
      return InvalidArgumentError(FormatDiagnostic(d, program));
    }
  }
  return OkStatus();
}

Status Verify(const Program& prog, ProgramContext context,
              const VerifierOptions& options, VerifierStats* stats,
              AnalysisFacts* facts) {
  VerifierOptions opts = options;
  opts.keep_going = false;
  VerifyReport report = Analyze(prog, context, opts);
  if (stats != nullptr) {
    *stats = report.stats;
  }
  if (facts != nullptr && report.ok()) {
    *facts = report.facts;
  }
  return report.status();
}

VerifyReport VerifyAll(const Program& prog, ProgramContext context,
                       VerifierOptions options) {
  options.keep_going = true;
  return Analyze(prog, context, options);
}

}  // namespace syrup::bpf
