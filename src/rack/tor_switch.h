// Programmable top-of-rack switch model (paper §6.1's distributed
// extension).
//
// "Scheduling occurs across the data center stack, from cluster managers
// and software load balancers to programmable switches... similar to
// end-host components, they schedule inputs (jobs/requests/packets) to
// executors (servers)." This module realizes that:
//
//   * Tenant isolation follows §6.1's recipe exactly: a match-action table
//     keyed by the packet's destination port steers each packet to the
//     owning tenant's scheduling program; unmatched traffic takes the
//     default path. ("Syrup can enforce isolation by inserting P4
//     match/action rules that ... steer it to the correct handling
//     function.")
//   * Tenant programs are ordinary Syrup policies (native or verified
//     bytecode) whose executors are *server ports* — the same matching
//     abstraction as every other hook.
//   * Switch state (per-server outstanding-request counters, the registers
//     a RackSched-style least-loaded policy needs) lives in a Syrup Map,
//     satisfying §6.1's requirement that devices "support a Map
//     abstraction which can reside in the device".
#ifndef SYRUP_SRC_RACK_TOR_SWITCH_H_
#define SYRUP_SRC_RACK_TOR_SWITCH_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/policy.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace syrup {

class ShardedSim;

struct TorSwitchConfig {
  int num_server_ports = 4;
  Duration pipeline_latency = 1 * kMicrosecond;  // match-action + buffering
  Duration wire_latency = 2 * kMicrosecond;      // switch <-> server link
};

struct TorSwitchStats {
  uint64_t requests_forwarded = 0;
  uint64_t responses_forwarded = 0;
  uint64_t policy_drops = 0;
  uint64_t no_tenant_match = 0;   // default path (hash over servers)
  uint64_t invalid_decisions = 0;
};

class TorSwitch {
 public:
  // `tx` delivers a request to a server port after switch+wire latency.
  using TxFn = std::function<void(int port, const Packet&)>;

  TorSwitch(Simulator& sim, TorSwitchConfig config, TxFn tx);

  TorSwitch(const TorSwitch&) = delete;
  TorSwitch& operator=(const TorSwitch&) = delete;

  // --- control plane (what syrupd programs into the switch) ---------------

  // Match-action isolation rule: packets to `dst_port` run `policy`.
  Status InstallTenantProgram(uint16_t dst_port,
                              std::shared_ptr<PacketPolicy> policy);
  Status RemoveTenantProgram(uint16_t dst_port);

  // Per-server outstanding-request registers (u32 port -> u64 count),
  // maintained by the data plane; readable by policies and by end hosts
  // (a device-resident Syrup Map).
  std::shared_ptr<Map> outstanding_map() { return outstanding_; }

  // --- data plane -----------------------------------------------------------

  // A request arrives from the uplink; the tenant program (or the default
  // flow hash) picks the server port.
  void RxFromUplink(Packet pkt);

  // A server's response passes back through the switch (decrements the
  // server's outstanding register).
  void RxFromServer(int port, const Packet& pkt);

  // --- sharded rack mode (src/sim/sharded.h) ------------------------------
  //
  // Places the switch on `own_shard` of a sharded run; `shard_of_port`
  // names the shard owning each server port. Forwards to remote ports then
  // travel the inter-shard channels (the tx closure runs on the server's
  // shard), as do remote servers' responses via PostRxFromServer. The
  // pipeline+wire latency must be at least the sharded lookahead so every
  // cross-shard delivery lands outside the executing window.
  void BindShard(ShardedSim* sharded, int own_shard,
                 std::function<int(int port)> shard_of_port);

  // Response-path entry for a server owned by `from_shard`: runs
  // RxFromServer on the switch's shard after `latency` (defaults to the
  // configured wire latency) past the server shard's clock.
  void PostRxFromServer(int from_shard, int port, const Packet& pkt,
                        Duration latency = 0);

  const TorSwitchStats& stats() const { return stats_; }
  uint64_t OutstandingOn(int port) const;

 private:
  int DefaultPort(const Packet& pkt) const;

  Simulator& sim_;
  TorSwitchConfig config_;
  ShardedSim* sharded_ = nullptr;  // set by BindShard; null when unsharded
  int own_shard_ = 0;
  std::function<int(int port)> shard_of_port_;
  TxFn tx_;
  // Packets in flight between the match-action stage and the server link.
  // Every forwarded packet waits the same pipeline+wire latency, so the
  // in-order event dispatch drains this FIFO front-first; keeping packets
  // here (instead of inside per-event closures) keeps the tx event capture
  // at {this} and avoids a 64-byte packet copy per forward.
  std::deque<std::pair<int, Packet>> tx_fifo_;
  std::map<uint16_t, std::shared_ptr<PacketPolicy>> tenant_programs_;
  std::shared_ptr<Map> outstanding_;
  TorSwitchStats stats_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_RACK_TOR_SWITCH_H_
