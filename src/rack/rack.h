// Rack harness: a ToR switch fronting N simulated hosts (paper §6.1's
// distributed setting).
//
// Scheduling happens at two layers, both through Syrup's matching
// abstraction: the switch's tenant program matches requests to *servers*,
// and each host's syrupd-deployed socket policy matches datagrams to
// *sockets*. The switch's outstanding-request registers are a Syrup Map
// that device-level policies (e.g. LeastLoadedPolicy) read directly.
#ifndef SYRUP_SRC_RACK_RACK_H_
#define SYRUP_SRC_RACK_RACK_H_

#include <memory>
#include <vector>

#include "src/apps/rocksdb_server.h"
#include "src/common/histogram.h"
#include "src/core/syrupd.h"
#include "src/rack/tor_switch.h"
#include "src/sched/pinned_scheduler.h"

namespace syrup {

struct RackConfig {
  int num_servers = 4;
  int threads_per_server = 6;
  uint16_t port = 9000;
  // Per-server service-time multiplier (heterogeneity / stragglers). Empty
  // = all 1.0.
  std::vector<double> server_speed;
  TorSwitchConfig tor;
  uint64_t seed = 1;
};

class Rack {
 public:
  explicit Rack(Simulator& sim, RackConfig config);

  Rack(const Rack&) = delete;
  Rack& operator=(const Rack&) = delete;

  TorSwitch& tor() { return *tor_; }

  // Uplink entry point for load generators.
  void InjectRequest(Packet pkt) { tor_->RxFromUplink(std::move(pkt)); }

  // End-to-end (client-observed) latency across all servers.
  const Histogram& latency() const { return latency_; }
  uint64_t completed() const { return completed_; }
  void ResetStats();

  RocksDbServer& server(int index) { return *hosts_[index]->server; }
  uint64_t server_completed(int index) const {
    return hosts_[index]->server->completed();
  }

 private:
  struct Host {
    std::unique_ptr<HostStack> stack;
    std::unique_ptr<Syrupd> syrupd;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<PinnedScheduler> scheduler;
    std::unique_ptr<RocksDbServer> server;
  };

  Simulator& sim_;
  RackConfig config_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unique_ptr<TorSwitch> tor_;
  Histogram latency_;
  uint64_t completed_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_RACK_RACK_H_
