#include "src/rack/rack.h"

#include "src/common/logging.h"
#include "src/policies/builtin.h"

namespace syrup {

Rack::Rack(Simulator& sim, RackConfig config)
    : sim_(sim), config_(config) {
  SYRUP_CHECK_GT(config_.num_servers, 0);
  config_.tor.num_server_ports = config_.num_servers;

  for (int i = 0; i < config_.num_servers; ++i) {
    auto host = std::make_unique<Host>();
    StackConfig stack_config;
    stack_config.num_nic_queues = config_.threads_per_server;
    host->stack = std::make_unique<HostStack>(sim, stack_config);
    host->syrupd =
        std::make_unique<Syrupd>(sim, host->stack.get(), config_.seed + 100);
    const AppId app =
        host->syrupd->RegisterApp("rocksdb", 1000, config_.port).value();
    // Each host runs its own Syrup socket policy: round robin, so the
    // rack-level comparison isolates the *switch-layer* policy.
    SYRUP_CHECK(host->syrupd
                    ->DeployNativePolicy(
                        app,
                        std::make_shared<RoundRobinPolicy>(
                            static_cast<uint32_t>(config_.threads_per_server)),
                        Hook::kSocketSelect)
                    .ok());

    host->machine =
        std::make_unique<Machine>(sim, config_.threads_per_server);
    host->scheduler = std::make_unique<PinnedScheduler>(*host->machine);
    host->machine->SetScheduler(host->scheduler.get());

    RocksDbConfig server_config;
    server_config.num_threads = config_.threads_per_server;
    server_config.port = config_.port;
    server_config.seed = config_.seed * 13 + static_cast<uint64_t>(i);
    // Response wire: server NIC -> switch -> uplink.
    server_config.wire_delay =
        config_.tor.wire_latency + config_.tor.pipeline_latency +
        5 * kMicrosecond;
    const double speed =
        static_cast<size_t>(i) < config_.server_speed.size()
            ? config_.server_speed[static_cast<size_t>(i)]
            : 1.0;
    auto scale = [speed](Duration d) {
      return static_cast<Duration>(static_cast<double>(d) * speed);
    };
    server_config.get_lo = scale(server_config.get_lo);
    server_config.get_hi = scale(server_config.get_hi);
    server_config.scan_lo = scale(server_config.scan_lo);
    server_config.scan_hi = scale(server_config.scan_hi);
    host->server = std::make_unique<RocksDbServer>(
        sim, *host->stack, *host->machine, server_config);

    const int port_index = i;
    host->server->SetCompletionCallback(
        [this, port_index](const Packet& pkt, Time completion) {
          tor_->RxFromServer(port_index, pkt);
          const Time sent = pkt.send_time();
          latency_.Record(completion > sent ? completion - sent : 0);
          ++completed_;
        });
    hosts_.push_back(std::move(host));
  }

  tor_ = std::make_unique<TorSwitch>(
      sim_, config_.tor, [this](int port, const Packet& pkt) {
        hosts_[static_cast<size_t>(port)]->stack->Rx(pkt);
      });
}

void Rack::ResetStats() {
  latency_.Reset();
  completed_ = 0;
  for (auto& host : hosts_) {
    host->server->ResetStats();
  }
}

}  // namespace syrup
