#include "src/rack/tor_switch.h"

#include "src/common/logging.h"
#include "src/sim/sharded.h"

namespace syrup {

TorSwitch::TorSwitch(Simulator& sim, TorSwitchConfig config, TxFn tx)
    : sim_(sim), config_(config), tx_(std::move(tx)) {
  SYRUP_CHECK_GT(config_.num_server_ports, 0);
  MapSpec spec;
  spec.type = MapType::kArray;
  spec.max_entries = static_cast<uint32_t>(config_.num_server_ports);
  spec.name = "tor_outstanding";
  outstanding_ = CreateMap(spec).value();
}

Status TorSwitch::InstallTenantProgram(uint16_t dst_port,
                                       std::shared_ptr<PacketPolicy> policy) {
  if (policy == nullptr) {
    return InvalidArgumentError("null tenant program");
  }
  tenant_programs_[dst_port] = std::move(policy);
  return OkStatus();
}

Status TorSwitch::RemoveTenantProgram(uint16_t dst_port) {
  return tenant_programs_.erase(dst_port) > 0
             ? OkStatus()
             : NotFoundError("no program for port");
}

int TorSwitch::DefaultPort(const Packet& pkt) const {
  return static_cast<int>(pkt.tuple.Hash() %
                          static_cast<uint64_t>(config_.num_server_ports));
}

void TorSwitch::RxFromUplink(Packet pkt) {
  int port;
  // Match-action stage: dst port picks the tenant's scheduling program.
  auto it = tenant_programs_.find(pkt.tuple.dst_port);
  if (it == tenant_programs_.end()) {
    ++stats_.no_tenant_match;
    port = DefaultPort(pkt);
  } else {
    const Decision d = it->second->Schedule(PacketView::Of(pkt));
    if (d == kDrop) {
      ++stats_.policy_drops;
      return;
    }
    if (d == kPass) {
      port = DefaultPort(pkt);
    } else if (d < static_cast<Decision>(config_.num_server_ports)) {
      port = static_cast<int>(d);
    } else {
      ++stats_.invalid_decisions;
      port = DefaultPort(pkt);
    }
  }

  // Data-plane register update: one more request outstanding on `port`.
  uint32_t key = static_cast<uint32_t>(port);
  void* counter = outstanding_->Lookup(&key);
  SYRUP_CHECK_NE(counter, nullptr);
  Map::AtomicFetchAdd(counter, 1);

  ++stats_.requests_forwarded;
  const Duration latency = config_.pipeline_latency + config_.wire_latency;
  if (sharded_ != nullptr) {
    const int dst = shard_of_port_(port);
    if (dst != own_shard_) {
      // Remote server: the delivery crosses shards, so the packet rides in
      // the channel message (the FIFO below only works when the pop event
      // runs on this engine).
      sharded_->Post(own_shard_, dst, sim_.Now() + latency,
                     [this, port, p = std::move(pkt)]() { tx_(port, p); });
      return;
    }
  }
  tx_fifo_.emplace_back(port, std::move(pkt));
  sim_.ScheduleAfter(latency, [this]() {
    const auto [out_port, out_pkt] = std::move(tx_fifo_.front());
    tx_fifo_.pop_front();
    tx_(out_port, out_pkt);
  });
}

void TorSwitch::RxFromServer(int port, const Packet& /*pkt*/) {
  uint32_t key = static_cast<uint32_t>(port);
  void* counter = outstanding_->Lookup(&key);
  SYRUP_CHECK_NE(counter, nullptr);
  // Decrement, saturating at zero (a response for a request forwarded
  // before the counters were reset must not underflow).
  uint64_t current = Map::AtomicLoad(counter);
  if (current > 0) {
    Map::AtomicFetchAdd(counter, static_cast<uint64_t>(-1));
  }
  ++stats_.responses_forwarded;
}

void TorSwitch::BindShard(ShardedSim* sharded, int own_shard,
                          std::function<int(int port)> shard_of_port) {
  SYRUP_CHECK(sharded != nullptr);
  SYRUP_CHECK_GE(own_shard, 0);
  SYRUP_CHECK_LT(own_shard, sharded->shards());
  SYRUP_CHECK_EQ(&sharded->shard(own_shard), &sim_)
      << "switch must be built on its owning shard's engine";
  SYRUP_CHECK(shard_of_port != nullptr);
  SYRUP_CHECK_GE(config_.pipeline_latency + config_.wire_latency,
                 sharded->lookahead())
      << "switch->server latency below the sharded lookahead";
  sharded_ = sharded;
  own_shard_ = own_shard;
  shard_of_port_ = std::move(shard_of_port);
}

void TorSwitch::PostRxFromServer(int from_shard, int port, const Packet& pkt,
                                 Duration latency) {
  SYRUP_CHECK(sharded_ != nullptr) << "PostRxFromServer requires BindShard";
  if (latency == 0) {
    latency = config_.wire_latency;
  }
  const Time when = sharded_->shard(from_shard).Now() + latency;
  sharded_->Post(from_shard, own_shard_, when,
                 [this, port, p = pkt]() { RxFromServer(port, p); });
}

uint64_t TorSwitch::OutstandingOn(int port) const {
  uint32_t key = static_cast<uint32_t>(port);
  void* counter = outstanding_->Lookup(&key);
  return counter == nullptr ? 0 : Map::AtomicLoad(counter);
}

}  // namespace syrup
