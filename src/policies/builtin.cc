#include "src/policies/builtin.h"

namespace syrup {
namespace {

// Replaces every occurrence of `key` in `text` with `value`.
std::string Substitute(std::string text, const std::string& key,
                       const std::string& value) {
  size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    text.replace(at, key.size(), value);
    at += value.size();
  }
  return text;
}

std::string WithN(const char* tmpl, uint32_t n) {
  return Substitute(tmpl, "%N%", std::to_string(n));
}

}  // namespace

std::string RoundRobinPolicyAsm(uint32_t num_executors) {
  // State lives in a single-slot array map (the VM has no globals); the
  // load-increment-store is deliberately non-atomic, as in Fig. 5a.
  constexpr char kTemplate[] = R"(
.name round_robin
.ctx packet
.map rr_state array 4 8 1
  mov r6, 0
  stxw [r10-4], r6
  ldmapfd r1, rr_state
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, have
  mov r0, PASS
  exit
have:
  ldxdw r6, [r0+0]
  add r6, 1
  stxdw [r0+0], r6
  mod r6, %N%
  mov r0, r6
  exit
)";
  return WithN(kTemplate, num_executors);
}

std::string HashPolicyAsm(uint32_t num_executors) {
  constexpr char kTemplate[] = R"(
.name hash
.ctx packet
  mov r3, r1
  add r3, 4
  jgt r3, r2, pass
  ldxw r4, [r1+0]
  mul r4, 2654435761
  and r4, 0xFFFFFFFF
  rsh r4, 16
  mod r4, %N%
  mov r0, r4
  exit
pass:
  mov r0, PASS
  exit
)";
  return WithN(kTemplate, num_executors);
}

std::string ScanAvoidPolicyAsm(uint32_t num_executors) {
  constexpr char kTemplate[] = R"(
.name scan_avoid
.ctx packet
.map scan_map array 4 8 %N%
  mov r6, 0              ; i
  mov r7, 0              ; cur_idx
loop:
  jge r6, %N%, done
  call get_prandom_u32
  mov r7, r0
  mod r7, %N%
  stxw [r10-4], r7
  ldmapfd r1, scan_map
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, check
  mov r0, PASS
  exit
check:
  ldxdw r8, [r0+0]
  jeq r8, 1, done        ; 1 == GET: stop at a non-SCAN socket
  add r6, 1
  ja loop
done:
  mov r0, r7
  exit
)";
  return WithN(kTemplate, num_executors);
}

std::string SitaPolicyAsm(uint32_t num_executors) {
  constexpr char kTemplate[] = R"(
.name sita
.ctx packet
.map sita_state array 4 8 1
  mov r3, r1
  add r3, 16
  jgt r3, r2, pass       ; bound check before peeking into the payload
  ldxdw r4, [r1+8]       ; first 8 bytes are the UDP header
  jne r4, 2, get         ; 2 == SCAN
  mov r0, 0              ; SCANs steered to socket 0
  exit
get:
  mov r6, 0
  stxw [r10-4], r6
  ldmapfd r1, sita_state
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r6, [r0+0]
  add r6, 1
  stxdw [r0+0], r6
  mod r6, %NM1%
  add r6, 1
  mov r0, r6
  exit
pass:
  mov r0, PASS
  exit
)";
  std::string source = WithN(kTemplate, num_executors);
  return Substitute(source, "%NM1%", std::to_string(num_executors - 1));
}

std::string TokenPolicyAsm() {
  // §3.4's example verbatim: parse user id, look up the token bucket,
  // DROP at zero, otherwise consume one token atomically and PASS.
  return R"(
.name token
.ctx packet
.map token_map hash 4 8 64
  mov r3, r1
  add r3, 20
  jgt r3, r2, pass
  ldxw r4, [r1+16]
  stxw [r10-4], r4
  ldmapfd r1, token_map
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r5, [r0+0]
  jeq r5, 0, drop
  mov r6, -1
  xadddw [r0+0], r6
  mov r0, PASS
  exit
drop:
  mov r0, DROP
  exit
pass:
  mov r0, PASS
  exit
)";
}

std::string LeastLoadedPolicyAsm(uint32_t num_executors,
                                 const std::string& load_map_path) {
  // Batch variant: one map_lookup_batch call reads every load register,
  // then an unrolled scan picks the minimum from the copied-out values on
  // the stack. The verifier demands a constant batch count, so the scan is
  // generated unrolled per executor; fleets above kMaxLookupBatch fall
  // back to the per-key loop below.
  if (num_executors >= 1 && num_executors <= Map::kMaxLookupBatch) {
    const uint32_t n = num_executors;
    // Stack frame: out values at [r10-256, r10-256+8n), keys below them at
    // [r10-(256+4n), r10-256).
    const int out_base = -256;
    const int key_base = out_base - static_cast<int>(4 * n);
    std::string s;
    s += ".name least_loaded\n.ctx packet\n.extern_map load ";
    s += load_map_path;
    s += "\n";
    for (uint32_t i = 0; i < n; ++i) {
      s += "  stw [r10" + std::to_string(key_base + static_cast<int>(4 * i)) +
           "], " + std::to_string(i) + "\n";
    }
    s += "  ldmapfd r1, load\n";
    s += "  mov r2, r10\n  add r2, " + std::to_string(key_base) + "\n";
    s += "  mov r3, r10\n  add r3, " + std::to_string(out_base) + "\n";
    s += "  mov r4, " + std::to_string(n) + "\n";
    s += "  call map_lookup_batch\n";
    // All registers present iff the hit bitmap is full; any miss defers to
    // the default policy, as the per-key loop does.
    s += "  mov r1, 1\n  lsh r1, " + std::to_string(n) + "\n  sub r1, 1\n";
    s += "  jeq r0, r1, have_all\n  mov r0, PASS\n  exit\nhave_all:\n";
    // Two passes over the copied-out values (stable: they're a private
    // stack snapshot). Pass 1 folds only the minimum VALUE — after the
    // first load both branch arms leave r8 unknown, so the verifier's
    // pruning collapses the states and exploration stays linear. A
    // single-pass scan tracking (index, value) pairs never merges and
    // explodes to 2^n paths.
    auto out_at = [&](uint32_t i) {
      return "[r10" + std::to_string(out_base + static_cast<int>(8 * i)) +
             "]";
    };
    s += "  ldxdw r8, " + out_at(0) + "\n";
    for (uint32_t i = 1; i < n; ++i) {
      const std::string skip = "skip" + std::to_string(i);
      s += "  ldxdw r9, " + out_at(i) + "\n";
      s += "  jle r8, r9, " + skip + "\n";
      s += "  mov r8, r9\n";
      s += skip + ":\n";
    }
    // Pass 2: first index holding the minimum (ties toward the lowest
    // index, as the native policy breaks them). Each miss falls through
    // with an unchanged state; each hit exits directly.
    for (uint32_t i = 0; i + 1 < n; ++i) {
      const std::string next = "next" + std::to_string(i);
      s += "  ldxdw r9, " + out_at(i) + "\n";
      s += "  jne r9, r8, " + next + "\n";
      s += "  mov r0, " + std::to_string(i) + "\n  exit\n";
      s += next + ":\n";
    }
    s += "  mov r0, " + std::to_string(n - 1) + "\n  exit\n";
    return s;
  }
  constexpr char kTemplate[] = R"(
.name least_loaded
.ctx packet
.extern_map load %PATH%
  mov r6, 0          ; i
  mov r7, 0          ; best index
  mov r8, -1         ; best load (u64 max)
loop:
  jge r6, %N%, done
  stxw [r10-4], r6
  ldmapfd r1, load
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, have
  mov r0, PASS       ; register missing: defer to the default policy
  exit
have:
  ldxdw r9, [r0+0]
  jge r9, r8, next
  mov r8, r9
  mov r7, r6
next:
  add r6, 1
  ja loop
done:
  mov r0, r7
  exit
)";
  std::string source = WithN(kTemplate, num_executors);
  return Substitute(source, "%PATH%", load_map_path);
}

std::string PowerOfTwoPolicyAsm(uint32_t num_executors,
                                const std::string& load_map_path) {
  // Both candidates' loads come back from one map_lookup_batch call (keys
  // packed at [r10-24, r10-16), values copied out to [r10-16, r10)); a
  // full hit bitmap (3) is required, any miss defers to the default.
  constexpr char kTemplate[] = R"(
.name power_of_two
.ctx packet
.extern_map load %PATH%
  call get_prandom_u32
  mov r6, r0
  mod r6, %N%          ; candidate a
  call get_prandom_u32
  mov r7, r0
  mod r7, %N%          ; candidate b
  stxw [r10-24], r6
  stxw [r10-20], r7
  ldmapfd r1, load
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -16
  mov r4, 2
  call map_lookup_batch
  jne r0, 3, pass
  ldxdw r8, [r10-16]   ; load of a
  ldxdw r9, [r10-8]    ; load of b
  jlt r9, r8, pick_b
  mov r0, r6
  exit
pick_b:
  mov r0, r7
  exit
pass:
  mov r0, PASS
  exit
)";
  std::string source = WithN(kTemplate, num_executors);
  return Substitute(source, "%PATH%", load_map_path);
}

std::string ConstIndexPolicyAsm(Decision index) {
  constexpr char kTemplate[] = R"(
.name const_index
.ctx packet
  mov r0, %N%
  exit
)";
  return WithN(kTemplate, index);
}

std::string GetPriorityThreadPolicyAsm(
    const std::string& thread_type_map_path) {
  constexpr char kTemplate[] = R"(
.name get_priority
.ctx thread
.extern_map thread_types %PATH%
  stxw [r10-4], r1       ; key = tid
  ldmapfd r1, thread_types
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jne r0, 0, found
  mov r0, 1              ; unclassified threads treated as GET
  exit
found:
  ldxdw r0, [r0+0]
  exit
)";
  return Substitute(kTemplate, "%PATH%", thread_type_map_path);
}

std::string MicaHomePolicyAsm(uint32_t num_executors) {
  constexpr char kTemplate[] = R"(
.name mica_home
.ctx packet
  mov r3, r1
  add r3, 24
  jgt r3, r2, pass
  ldxw r4, [r1+20]
  mod r4, %N%
  mov r0, r4
  exit
pass:
  mov r0, PASS
  exit
)";
  return WithN(kTemplate, num_executors);
}

std::string VarHeaderPolicyAsm(uint32_t num_executors) {
  constexpr char kTemplate[] = R"(
.name var_header
.ctx packet
  mov r3, r1
  add r3, 40
  jgt r3, r2, pass       ; need the whole 40-byte header area
  ldxb r4, [r1+5]        ; option length byte
  and r4, 31             ; verifier: r4 in [0, 31]
  mov r5, r1
  add r5, r4             ; variable-offset cursor into the header
  ldxw r6, [r5+4]        ; key at [len+4, len+8) -- max byte 39, proven
  mod r6, %N%
  mov r0, r6
  exit
pass:
  mov r0, PASS
  exit
)";
  return WithN(kTemplate, num_executors);
}

}  // namespace syrup
