// The scheduling policies evaluated in the paper, in two interchangeable
// forms:
//
//   * native C++ PacketPolicy implementations (simulation fast path), and
//   * bytecode policy files (the *Asm() generators), deployed through
//     syrupd's assemble→verify→attach pipeline like real untrusted code.
//
// Tests assert the two forms make identical decisions on identical inputs.
//
// Paper provenance:
//   RoundRobinPolicy  - Fig. 5a   (§2.1 GET-only and §5.2 mixed workloads)
//   HashPolicy        - §3.3      (the portable hash example; also MICA)
//   ScanAvoidPolicy   - Fig. 5c   (+ userspace half, Fig. 5b, in the apps)
//   SitaPolicy        - Fig. 5d   (Size Interval Task Assignment)
//   TokenPolicy       - §3.4/§5.2.2 (ReFlex-style SLO tokens)
//   MicaHomePolicy    - §5.4      (key-hash home-core steering)
#ifndef SYRUP_SRC_POLICIES_BUILTIN_H_
#define SYRUP_SRC_POLICIES_BUILTIN_H_

#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "src/common/decision.h"
#include "src/core/policy.h"
#include "src/map/map.h"
#include "src/net/packet.h"

namespace syrup {

// --- Round Robin (Fig. 5a) -------------------------------------------------

class RoundRobinPolicy : public PacketPolicy {
 public:
  explicit RoundRobinPolicy(uint32_t num_executors) : n_(num_executors) {}

  Decision Schedule(const PacketView&) override {
    // Matches Fig. 5a: idx++ then idx % NUM_THREADS (the non-atomic
    // increment whose benign races the paper calls out).
    ++idx_;
    return static_cast<Decision>(idx_ % n_);
  }

  std::string_view name() const override { return "round_robin"; }

 private:
  uint32_t n_;
  uint64_t idx_ = 0;
};

std::string RoundRobinPolicyAsm(uint32_t num_executors);

// --- Hash (§3.3) -------------------------------------------------------------

class HashPolicy : public PacketPolicy {
 public:
  explicit HashPolicy(uint32_t num_executors) : n_(num_executors) {}

  Decision Schedule(const PacketView& pkt) override {
    if (pkt.size() < 4) {
      return kPass;
    }
    uint32_t ports;
    std::memcpy(&ports, pkt.start, sizeof(ports));
    // Knuth multiplicative hash over the UDP port pair; the bytecode twin
    // performs the identical arithmetic.
    const uint64_t mixed = (static_cast<uint64_t>(ports) * 2654435761ULL) &
                           0xFFFFFFFFULL;
    return static_cast<Decision>((mixed >> 16) % n_);
  }

  std::string_view name() const override { return "hash"; }

 private:
  uint32_t n_;
};

std::string HashPolicyAsm(uint32_t num_executors);

// --- SCAN Avoid, kernel half (Fig. 5c) ---------------------------------------

class ScanAvoidPolicy : public PacketPolicy {
 public:
  // `scan_map` holds, per socket index, the request type its thread is
  // currently serving (userspace half updates it, Fig. 5b). `random`
  // supplies the probe sequence (injected for determinism).
  ScanAvoidPolicy(uint32_t num_executors, std::shared_ptr<Map> scan_map,
                  std::function<uint32_t()> random)
      : n_(num_executors),
        scan_map_(std::move(scan_map)),
        random_(std::move(random)) {}

  Decision Schedule(const PacketView&) override {
    uint32_t cur_idx = 0;
    for (uint32_t i = 0; i < n_; ++i) {
      cur_idx = random_() % n_;
      void* scan = scan_map_->Lookup(&cur_idx);
      if (scan == nullptr) {
        return kPass;
      }
      // Stop searching when a non-SCAN socket is found.
      if (Map::AtomicLoad(scan) == static_cast<uint64_t>(ReqType::kGet)) {
        break;
      }
    }
    return cur_idx;
  }

  std::string_view name() const override { return "scan_avoid"; }

 private:
  uint32_t n_;
  std::shared_ptr<Map> scan_map_;
  std::function<uint32_t()> random_;
};

std::string ScanAvoidPolicyAsm(uint32_t num_executors);

// --- SITA (Fig. 5d) ----------------------------------------------------------

class SitaPolicy : public PacketPolicy {
 public:
  explicit SitaPolicy(uint32_t num_executors) : n_(num_executors) {}

  Decision Schedule(const PacketView& pkt) override {
    if (pkt.size() < 16) {
      return kPass;
    }
    uint64_t type;
    std::memcpy(&type, pkt.start + 8, sizeof(type));  // first 8B: UDP header
    if (type == static_cast<uint64_t>(ReqType::kScan)) {
      return 0;  // SCANs own socket 0
    }
    ++idx_;
    return static_cast<Decision>((idx_ % (n_ - 1)) + 1);
  }

  std::string_view name() const override { return "sita"; }

 private:
  uint32_t n_;
  uint64_t idx_ = 0;
};

std::string SitaPolicyAsm(uint32_t num_executors);

// --- Token-based QoS (§3.4, §5.2.2) ------------------------------------------

class TokenPolicy : public PacketPolicy {
 public:
  // `token_map` is keyed by user id (u32 -> u64 tokens). Requests from
  // users with zero tokens are dropped; otherwise one token is consumed and
  // the decision is delegated to `next` (nullptr = PASS, the §3.4 form).
  TokenPolicy(std::shared_ptr<Map> token_map,
              std::shared_ptr<PacketPolicy> next = nullptr)
      : token_map_(std::move(token_map)), next_(std::move(next)) {}

  Decision Schedule(const PacketView& pkt) override {
    if (pkt.size() < 20) {
      return Delegate(pkt);
    }
    uint32_t user_id;
    std::memcpy(&user_id, pkt.start + 16, sizeof(user_id));
    void* tokens = token_map_->Lookup(&user_id);
    if (tokens == nullptr) {
      return Delegate(pkt);  // unregistered user: default policy
    }
    if (Map::AtomicLoad(tokens) == 0) {
      return kDrop;
    }
    Map::AtomicFetchAdd(tokens, static_cast<uint64_t>(-1));
    return Delegate(pkt);
  }

  std::string_view name() const override { return "token"; }

 private:
  Decision Delegate(const PacketView& pkt) {
    return next_ != nullptr ? next_->Schedule(pkt) : kPass;
  }

  std::shared_ptr<Map> token_map_;
  std::shared_ptr<PacketPolicy> next_;
};

std::string TokenPolicyAsm();

// --- Least loaded (RackSched-style, §6.1 / §7) --------------------------------

// Picks the executor with the fewest outstanding requests, read from a
// load register Map maintained by the data plane (e.g. the ToR switch's
// per-server counters). Ties break toward the lowest index.
class LeastLoadedPolicy : public PacketPolicy {
 public:
  LeastLoadedPolicy(uint32_t num_executors, std::shared_ptr<Map> load_map)
      : n_(num_executors), load_(std::move(load_map)) {}

  Decision Schedule(const PacketView&) override {
    uint32_t best = 0;
    uint64_t best_load = ~uint64_t{0};
    // Batched scan: one LookupBatch per ≤32 registers pipelines the hash
    // probes instead of serializing n dependent lookups. Same pointers,
    // same counter accounting, same decisions as the per-key loop.
    for (uint32_t base = 0; base < n_; base += Map::kMaxLookupBatch) {
      const uint32_t count = n_ - base < Map::kMaxLookupBatch
                                 ? n_ - base
                                 : Map::kMaxLookupBatch;
      uint32_t keys[Map::kMaxLookupBatch];
      void* counters[Map::kMaxLookupBatch];
      for (uint32_t i = 0; i < count; ++i) {
        keys[i] = base + i;
      }
      load_->LookupBatch(count, keys, counters);
      for (uint32_t i = 0; i < count; ++i) {
        if (counters[i] == nullptr) {
          return kPass;
        }
        const uint64_t load = Map::AtomicLoad(counters[i]);
        if (load < best_load) {
          best_load = load;
          best = base + i;
        }
      }
    }
    return best;
  }

  std::string_view name() const override { return "least_loaded"; }

 private:
  uint32_t n_;
  std::shared_ptr<Map> load_;
};

// Bytecode twin; `load_map_path` is the pin the switch/daemon exposes.
std::string LeastLoadedPolicyAsm(uint32_t num_executors,
                                 const std::string& load_map_path);

// Power-of-two-choices: samples two random executors and takes the less
// loaded — near-JSQ quality at O(1) cost, the classic scalable variant of
// least-loaded (useful when scanning every register per decision is too
// expensive, e.g. in a switch pipeline).
class PowerOfTwoPolicy : public PacketPolicy {
 public:
  PowerOfTwoPolicy(uint32_t num_executors, std::shared_ptr<Map> load_map,
                   std::function<uint32_t()> random)
      : n_(num_executors),
        load_(std::move(load_map)),
        random_(std::move(random)) {}

  Decision Schedule(const PacketView&) override {
    const uint32_t keys[2] = {random_() % n_, random_() % n_};
    void* loads[2];
    load_->LookupBatch(2, keys, loads);
    if (loads[0] == nullptr || loads[1] == nullptr) {
      return kPass;
    }
    return Map::AtomicLoad(loads[1]) < Map::AtomicLoad(loads[0]) ? keys[1]
                                                                 : keys[0];
  }

  std::string_view name() const override { return "power_of_two"; }

 private:
  uint32_t n_;
  std::shared_ptr<Map> load_;
  std::function<uint32_t()> random_;
};

std::string PowerOfTwoPolicyAsm(uint32_t num_executors,
                                const std::string& load_map_path);

// --- Constant executor -------------------------------------------------------

// Returns a fixed executor index. Used e.g. as the per-queue AF_XDP
// redirect in the Syrup HW MICA variant, where each NIC queue has exactly
// one AF_XDP socket.
class ConstIndexPolicy : public PacketPolicy {
 public:
  explicit ConstIndexPolicy(Decision index) : index_(index) {}

  Decision Schedule(const PacketView&) override { return index_; }
  std::string_view name() const override { return "const_index"; }

 private:
  Decision index_;
};

std::string ConstIndexPolicyAsm(Decision index);

// --- MICA home-core steering (§5.4) ------------------------------------------

class MicaHomePolicy : public PacketPolicy {
 public:
  explicit MicaHomePolicy(uint32_t num_executors) : n_(num_executors) {}

  Decision Schedule(const PacketView& pkt) override {
    if (pkt.size() < 24) {
      return kPass;
    }
    uint32_t key_hash;
    std::memcpy(&key_hash, pkt.start + 20, sizeof(key_hash));
    return static_cast<Decision>(key_hash % n_);
  }

  std::string_view name() const override { return "mica_home"; }

 private:
  uint32_t n_;
};

std::string MicaHomePolicyAsm(uint32_t num_executors);

// --- Variable-offset header parse (RackSched-style L4 steering) --------------

// Steers on a key that sits *after* a variable-length option area: byte 5
// carries the option length (masked to [0, 31]), and the 4-byte steering
// key is read at pkt[len + 4]. The range-tracking verifier proves the
// access from the mask plus the 40-byte bounds guard; a constant-only
// verifier has to reject it (the offset is not a compile-time constant).
class VarHeaderPolicy : public PacketPolicy {
 public:
  explicit VarHeaderPolicy(uint32_t num_executors) : n_(num_executors) {}

  Decision Schedule(const PacketView& pkt) override {
    if (pkt.size() < 40) {
      return kPass;
    }
    const uint32_t hdr_len = static_cast<uint8_t>(pkt.start[5]) & 31u;
    uint32_t key;
    std::memcpy(&key, pkt.start + hdr_len + 4, sizeof(key));
    return static_cast<Decision>(key % n_);
  }

  std::string_view name() const override { return "var_header"; }

 private:
  uint32_t n_;
};

std::string VarHeaderPolicyAsm(uint32_t num_executors);

// --- GET-priority thread scheduling (§5.3) -----------------------------------

// Bytecode twin of GetPriorityGhostPolicy for the Thread Scheduler hook
// (deployed via Syrupd::DeployThreadPolicyFile, executed through the ghOSt
// shim). The program classifies a thread: r1 = tid, returns its ReqType
// (1 = GET, 2 = SCAN) from the application-populated map at
// `thread_type_map_path`, defaulting unclassified threads to GET exactly
// like the native policy.
std::string GetPriorityThreadPolicyAsm(
    const std::string& thread_type_map_path);

}  // namespace syrup

#endif  // SYRUP_SRC_POLICIES_BUILTIN_H_
