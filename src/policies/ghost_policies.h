// Thread-scheduling policies for the ghOSt hook (paper §5.3).
//
// The GET-priority policy is the Shinjuku-like policy the paper deploys for
// the 50/50 GET/SCAN RocksDB workload: it "gives strict priority to threads
// processing GET requests, preempting at will threads processing SCAN
// requests", reading an application-populated Map to classify threads.
#ifndef SYRUP_SRC_POLICIES_GHOST_POLICIES_H_
#define SYRUP_SRC_POLICIES_GHOST_POLICIES_H_

#include <memory>

#include "src/ghost/ghost.h"
#include "src/map/map.h"
#include "src/net/packet.h"

namespace syrup {

// Baseline: first-come-first-served thread placement, no preemption.
class FcfsGhostPolicy : public GhostPolicy {
 public:
  int PickThread(int /*core*/,
                 const std::vector<GhostThreadInfo>& runnable) override {
    return runnable.empty() ? -1 : runnable.front().tid;
  }
};

class GetPriorityGhostPolicy : public GhostPolicy {
 public:
  // `thread_type_map`: tid (u32) -> ReqType (u64), kept current by the
  // application's userspace code (the cross-layer Map communication).
  explicit GetPriorityGhostPolicy(std::shared_ptr<Map> thread_type_map)
      : types_(std::move(thread_type_map)) {}

  int PickThread(int /*core*/,
                 const std::vector<GhostThreadInfo>& runnable) override {
    if (runnable.empty()) {
      return -1;
    }
    for (const GhostThreadInfo& info : runnable) {
      if (TypeOf(info.tid) == ReqType::kGet) {
        return info.tid;
      }
    }
    return runnable.front().tid;  // only SCAN threads waiting: FCFS
  }

  bool ShouldPreempt(const GhostThreadInfo& candidate,
                     int running_tid) override {
    return TypeOf(candidate.tid) == ReqType::kGet &&
           TypeOf(running_tid) == ReqType::kScan;
  }

 private:
  ReqType TypeOf(int tid) {
    uint32_t key = static_cast<uint32_t>(tid);
    void* value = types_->Lookup(&key);
    if (value == nullptr) {
      return ReqType::kGet;  // unclassified threads treated as short
    }
    return static_cast<ReqType>(Map::AtomicLoad(value));
  }

  std::shared_ptr<Map> types_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_POLICIES_GHOST_POLICIES_H_
