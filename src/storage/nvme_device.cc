#include "src/storage/nvme_device.h"

#include "src/common/logging.h"

namespace syrup {

NvmeDevice::NvmeDevice(Simulator& sim, NvmeConfig config)
    : sim_(sim), config_(config) {
  SYRUP_CHECK_GT(config_.num_queues, 0);
  queues_.resize(static_cast<size_t>(config_.num_queues));
}

Duration NvmeDevice::ServiceTime(const IoRequest& request) const {
  const Duration base = request.op == IoOp::kRead ? config_.read_4k
                                                  : config_.write_4k;
  const uint32_t extra = request.num_blocks > 0 ? request.num_blocks - 1 : 0;
  return base + static_cast<Duration>(extra) * config_.per_extra_block;
}

bool NvmeDevice::Submit(int queue, const IoRequest& request) {
  SYRUP_CHECK_GE(queue, 0);
  SYRUP_CHECK_LT(queue, num_queues());
  Queue& q = queues_[static_cast<size_t>(queue)];
  if (q.pending.size() >= config_.queue_depth) {
    ++stats_.rejected;
    return false;
  }
  ++stats_.submitted;
  q.pending.push_back(request);
  if (!q.busy) {
    StartNext(queue);
  }
  return true;
}

void NvmeDevice::StartNext(int queue) {
  Queue& q = queues_[static_cast<size_t>(queue)];
  if (q.pending.empty()) {
    q.busy = false;
    return;
  }
  q.busy = true;
  q.inflight = q.pending.front();
  q.pending.pop_front();
  const Duration service = ServiceTime(q.inflight);
  q.busy_time += service;
  sim_.ScheduleAfter(service, [this, queue]() {
    ++stats_.completed;
    if (on_complete_) {
      on_complete_(queues_[static_cast<size_t>(queue)].inflight, sim_.Now());
    }
    StartNext(queue);
  });
}

double NvmeDevice::QueueUtilization(int queue) const {
  const Time now = sim_.Now();
  if (now == 0) {
    return 0.0;
  }
  return static_cast<double>(
             queues_[static_cast<size_t>(queue)].busy_time) /
         static_cast<double>(now);
}

}  // namespace syrup
