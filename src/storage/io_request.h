// IO request model for the storage backend extension (paper §6.1).
//
// "One natural extension for Syrup's scheduling model is storage; we can
// use Syrup to match IO requests with storage device queues." Inputs are
// IO requests, executors are NVMe submission queues.
//
// An IO request serializes to the same 40-byte wire layout packets use,
// with the operation type at offset 8 (where packets carry the request
// type) and the tenant id at offset 16 (where packets carry the user id).
// This makes network policies *portable* to the storage hook verbatim: the
// §3.4 token policy and the Fig. 5d SITA policy schedule IO unchanged —
// the paper's point that one matching abstraction spans the stack.
#ifndef SYRUP_SRC_STORAGE_IO_REQUEST_H_
#define SYRUP_SRC_STORAGE_IO_REQUEST_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "src/common/time.h"
#include "src/net/packet.h"

namespace syrup {

enum class IoOp : uint64_t {
  kRead = 1,
  kWrite = 2,  // numerically matches ReqType::kScan: long ops map to SITA's
               // "long class", so the SITA policy isolates writes as-is
};

inline constexpr uint32_t kIoBlockSize = 4096;

struct IoRequest {
  uint32_t tenant_id = 0;
  IoOp op = IoOp::kRead;
  uint64_t lba = 0;           // logical block address (4K blocks)
  uint32_t num_blocks = 1;    // request size in 4K blocks
  uint64_t req_id = 0;
  Time submit_time = 0;

  // Serializes to the packet-compatible wire image (see file comment).
  std::array<uint8_t, kWireSize> ToWire() const {
    std::array<uint8_t, kWireSize> wire{};
    auto store = [&wire](size_t offset, const auto& value) {
      std::memcpy(wire.data() + offset, &value, sizeof(value));
    };
    store(0, lba);                               // [0,8): opaque header
    store(8, static_cast<uint64_t>(op));         // [8,16): operation type
    store(16, tenant_id);                        // [16,20): tenant id
    store(20, num_blocks);                       // [20,24): size
    store(24, req_id);                           // [24,32)
    store(32, static_cast<uint64_t>(submit_time));  // [32,40)
    return wire;
  }
};

}  // namespace syrup

#endif  // SYRUP_SRC_STORAGE_IO_REQUEST_H_
