// Flash device model: the executor substrate for the storage hook.
//
// Models what matters for IO scheduling policy: multiple submission queues
// with bounded depth, FIFO service per queue, and strongly asymmetric
// read/write service times (a 4K flash read is tens of microseconds; a
// write/erase is an order of magnitude slower — the source of ReFlex-style
// read/write interference).
#ifndef SYRUP_SRC_STORAGE_NVME_DEVICE_H_
#define SYRUP_SRC_STORAGE_NVME_DEVICE_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/common/time.h"
#include "src/sim/simulator.h"
#include "src/storage/io_request.h"

namespace syrup {

struct NvmeConfig {
  int num_queues = 8;
  size_t queue_depth = 64;
  Duration read_4k = 80 * kMicrosecond;    // flash page read
  Duration write_4k = 500 * kMicrosecond;  // program/erase amortized
  Duration per_extra_block = 5 * kMicrosecond;  // transfer per extra 4K
};

struct NvmeStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;  // submission queue full
};

class NvmeDevice {
 public:
  using CompletionFn = std::function<void(const IoRequest&, Time)>;

  NvmeDevice(Simulator& sim, NvmeConfig config);

  NvmeDevice(const NvmeDevice&) = delete;
  NvmeDevice& operator=(const NvmeDevice&) = delete;

  void SetCompletionCallback(CompletionFn fn) { on_complete_ = std::move(fn); }

  int num_queues() const { return static_cast<int>(queues_.size()); }
  const NvmeConfig& config() const { return config_; }
  const NvmeStats& stats() const { return stats_; }

  // Submits to queue `queue`; returns false (rejected) if the queue is full.
  bool Submit(int queue, const IoRequest& request);

  size_t QueueLength(int queue) const {
    return queues_[static_cast<size_t>(queue)].pending.size();
  }
  double QueueUtilization(int queue) const;

  Duration ServiceTime(const IoRequest& request) const;

 private:
  struct Queue {
    std::deque<IoRequest> pending;
    bool busy = false;
    Duration busy_time = 0;
    // The request currently on the flash channel. Service is serialized per
    // queue, so one slot suffices; the completion event then captures only
    // {this, queue} instead of copying the request into the closure.
    IoRequest inflight;
  };

  void StartNext(int queue);

  Simulator& sim_;
  NvmeConfig config_;
  std::vector<Queue> queues_;
  NvmeStats stats_;
  CompletionFn on_complete_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_STORAGE_NVME_DEVICE_H_
