// The Syrup storage hook: matches IO requests (inputs) to NVMe submission
// queues (executors) via a user-defined policy — §6.1's extension realized.
//
// Policies are ordinary PacketPolicy objects (native or verified bytecode)
// running over the request's packet-compatible wire image, so policies
// written for network hooks deploy here unchanged.
#ifndef SYRUP_SRC_STORAGE_IO_SCHEDULER_H_
#define SYRUP_SRC_STORAGE_IO_SCHEDULER_H_

#include <memory>

#include "src/common/decision.h"
#include "src/core/policy.h"
#include "src/storage/nvme_device.h"

namespace syrup {

struct IoSchedStats {
  uint64_t scheduled = 0;
  uint64_t policy_drops = 0;
  uint64_t invalid_decisions = 0;
  uint64_t rejected = 0;  // device queue full
};

class IoScheduler {
 public:
  explicit IoScheduler(NvmeDevice& device) : device_(device) {}

  // Installs/replaces the hook policy (nullptr restores the default).
  void SetPolicy(std::shared_ptr<PacketPolicy> policy) {
    policy_ = std::move(policy);
  }

  // Schedules one request. Default policy (or PASS): round robin across
  // queues, the no-assumptions baseline.
  bool Submit(const IoRequest& request) {
    int queue = -1;
    if (policy_ != nullptr) {
      const auto wire = request.ToWire();
      const PacketView view{wire.data(), wire.data() + wire.size()};
      const Decision d = policy_->Schedule(view);
      if (d == kDrop) {
        ++stats_.policy_drops;
        return false;
      }
      if (d != kPass) {
        if (d < static_cast<Decision>(device_.num_queues())) {
          queue = static_cast<int>(d);
        } else {
          ++stats_.invalid_decisions;
        }
      }
    }
    if (queue < 0) {
      queue = static_cast<int>(next_rr_++ %
                               static_cast<uint64_t>(device_.num_queues()));
    }
    ++stats_.scheduled;
    if (!device_.Submit(queue, request)) {
      ++stats_.rejected;
      return false;
    }
    return true;
  }

  const IoSchedStats& stats() const { return stats_; }

 private:
  NvmeDevice& device_;
  std::shared_ptr<PacketPolicy> policy_;
  IoSchedStats stats_;
  uint64_t next_rr_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_STORAGE_IO_SCHEDULER_H_
