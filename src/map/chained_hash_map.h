// Chained hash map: the pre-swiss-table HashMap, retained on purpose.
//
// This was the shipping hash map before the lock-free swiss-table rebuild
// (src/map/hash_map.h). It stays in the tree for three jobs:
//
//   1. Differential oracle: map_test drives randomized op sequences against
//      both implementations and compares every observable (the same pattern
//      as SimEngine::kReference). CreateMap builds this class when
//      SYRUP_MAP_REFERENCE=1 so whole suites can run against the oracle.
//   2. Mutex baseline: bench/map_scale measures the lock-free read path
//      against these shared_mutex buckets (the >=3x contended-read gate).
//   3. Documentation of the bug the rebuild closes: DoLookup here returns
//      node->value.get() after the shared lock drops, so a concurrent
//      Delete can free the value while the caller still dereferences it —
//      a latent use-after-free. The swiss table closes it by construction
//      (value storage is never freed while the map lives; slot reuse is
//      epoch-gated). Do NOT use this class with concurrent delete traffic.
#ifndef SYRUP_SRC_MAP_CHAINED_HASH_MAP_H_
#define SYRUP_SRC_MAP_CHAINED_HASH_MAP_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/common/hash.h"
#include "src/map/map.h"

namespace syrup {

class ChainedHashMap : public Map {
 public:
  explicit ChainedHashMap(MapSpec spec)
      : Map(std::move(spec)),
        bucket_count_(
            NextPow2(2 * static_cast<uint64_t>(this->spec().max_entries))),
        buckets_(bucket_count_) {
    if (2 * static_cast<uint64_t>(this->spec().max_entries) > kMaxBuckets) {
      NoteBucketClamp(bucket_count_);
    }
  }

  void* DoLookup(const void* key) override {
    const uint64_t hash = HashKey(key);
    Bucket& bucket = BucketFor(hash);
    // Read-mostly path: lookups only walk the chain, so they share the
    // bucket; value mutation goes through Map::Atomic* after release.
    // KNOWN-UNSAFE vs concurrent Delete: the returned pointer outlives the
    // shared lock (see the header comment). Kept verbatim as the oracle.
    std::shared_lock<std::shared_mutex> lock(bucket.mu);
    Node* node = FindLocked(bucket, key, hash);
    return node != nullptr ? node->value.get() : nullptr;
  }

  Status DoUpdate(const void* key, const void* value, UpdateFlag flag) override {
    const uint64_t hash = HashKey(key);
    Bucket& bucket = BucketFor(hash);
    std::unique_lock<std::shared_mutex> lock(bucket.mu);
    Node* node = FindLocked(bucket, key, hash);
    if (node != nullptr) {
      if (flag == UpdateFlag::kNoExist) {
        return AlreadyExistsError("key already present");
      }
      std::memcpy(node->value.get(), value, spec().value_size);
      return OkStatus();
    }
    if (flag == UpdateFlag::kExist) {
      return NotFoundError("key absent");
    }
    if (size_.load(std::memory_order_relaxed) >= spec().max_entries) {
      return ResourceExhaustedError("map full");
    }
    auto fresh = std::make_unique<Node>();
    fresh->hash = hash;
    fresh->key.assign(static_cast<const uint8_t*>(key),
                      static_cast<const uint8_t*>(key) + spec().key_size);
    fresh->value = std::make_unique<uint8_t[]>(spec().value_size);
    std::memcpy(fresh->value.get(), value, spec().value_size);
    fresh->next = std::move(bucket.head);
    bucket.head = std::move(fresh);
    size_.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }

  Status DoDelete(const void* key) override {
    const uint64_t hash = HashKey(key);
    Bucket& bucket = BucketFor(hash);
    std::unique_lock<std::shared_mutex> lock(bucket.mu);
    std::unique_ptr<Node>* link = &bucket.head;
    while (*link != nullptr) {
      if ((*link)->hash == hash &&
          std::memcmp((*link)->key.data(), key, spec().key_size) == 0) {
        *link = std::move((*link)->next);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return OkStatus();
      }
      link = &(*link)->next;
    }
    return NotFoundError("key absent");
  }

  uint32_t Size() const override {
    return size_.load(std::memory_order_relaxed);
  }

  uint32_t bucket_count() const { return bucket_count_; }

  void Visit(const VisitFn& fn) override {
    for (Bucket& bucket : buckets_) {
      std::unique_lock<std::shared_mutex> lock(bucket.mu);
      for (Node* node = bucket.head.get(); node != nullptr;
           node = node->next.get()) {
        fn(node->key.data(), node->value.get());
      }
    }
  }

  // The bucket table stops doubling at 2^20 buckets. Specs past the clamp
  // (>= 2^19 max_entries) still work but degrade toward longer chains, so
  // the constructor reports the clamp instead of degrading quietly.
  static constexpr uint64_t kMaxBuckets = 1u << 20;

 private:
  struct Node {
    // Full FNV-1a hash of `key`, computed once at insert. Chain walks
    // compare it before touching key bytes: a 64-bit mismatch rejects
    // non-matching nodes without a memcmp, so collision chains cost one
    // integer compare per wrong node for keys of any size.
    uint64_t hash = 0;
    std::vector<uint8_t> key;
    std::unique_ptr<uint8_t[]> value;
    std::unique_ptr<Node> next;
  };

  struct Bucket {
    std::shared_mutex mu;
    std::unique_ptr<Node> head;
  };

  // 64-bit on purpose: max_entries is a u32, so `2 * max_entries` computed
  // in u32 wraps for specs of 2^31 entries and beyond, collapsing the
  // table to a single bucket (every operation then contends on one lock
  // and walks one chain). The cap bounds memory for absurd specs.
  static uint32_t NextPow2(uint64_t n) {
    uint64_t p = 1;
    while (p < n && p < kMaxBuckets) {
      p <<= 1;
    }
    return static_cast<uint32_t>(p);
  }

  uint64_t HashKey(const void* key) const {
    return Fnv1a64(key, spec().key_size);
  }

  Bucket& BucketFor(uint64_t hash) {
    return buckets_[hash & (bucket_count_ - 1)];
  }

  Node* FindLocked(Bucket& bucket, const void* key, uint64_t hash) {
    for (Node* node = bucket.head.get(); node != nullptr;
         node = node->next.get()) {
      if (node->hash == hash &&
          std::memcmp(node->key.data(), key, spec().key_size) == 0) {
        return node;
      }
    }
    return nullptr;
  }

  uint32_t bucket_count_;
  std::vector<Bucket> buckets_;
  std::atomic<uint32_t> size_{0};
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_CHAINED_HASH_MAP_H_
