// Syrup Maps: the key-value communication substrate (paper §3.4, §4.1).
//
// Maps model eBPF maps: fixed key/value sizes, preallocated or node-based
// storage with *stable value pointers*, lock-free atomic arithmetic on
// values, and pinning to a path namespace so policies at different hooks and
// userspace code can share state. Three concrete types are provided, the
// same trio Syrup uses: array maps (executor tables, per-index counters),
// hash maps (token buckets, scan flags keyed by id), and prog-array maps
// (syrupd's per-port policy dispatch table, paper §4.3).
#ifndef SYRUP_SRC_MAP_MAP_H_
#define SYRUP_SRC_MAP_MAP_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace syrup {

// Per-map operation counters. Maps are contractually thread-safe, so
// bumps use the atomic variant; cells are shared_ptr into a
// MetricsRegistry once the map is bound (syrupd binds at create/pin time,
// keyed {app, "map", "<name>.lookups"} etc.).
struct MapOpCounters {
  std::shared_ptr<obs::Counter> lookups;
  std::shared_ptr<obs::Counter> misses;
  std::shared_ptr<obs::Counter> updates;
  std::shared_ptr<obs::Counter> deletes;

  static MapOpCounters Detached() {
    MapOpCounters c;
    c.lookups = std::make_shared<obs::Counter>();
    c.misses = std::make_shared<obs::Counter>();
    c.updates = std::make_shared<obs::Counter>();
    c.deletes = std::make_shared<obs::Counter>();
    return c;
  }

  static MapOpCounters InRegistry(obs::MetricsRegistry& registry,
                                  std::string_view app,
                                  const std::string& map_name) {
    MapOpCounters c;
    c.lookups = registry.GetCounter(app, "map", map_name + ".lookups");
    c.misses = registry.GetCounter(app, "map", map_name + ".misses");
    c.updates = registry.GetCounter(app, "map", map_name + ".updates");
    c.deletes = registry.GetCounter(app, "map", map_name + ".deletes");
    return c;
  }
};

enum class MapType {
  kArray,
  kHash,
  kProgArray,
  // Array map sharded per CPU: writes land in the calling core's shard,
  // LookupU64 aggregates across shards (the paper's recommended fix for
  // contended counter maps).
  kPerCpuArray,
};

// Number of map types; sizes every per-map-type table (e.g. the cost model's
// per-kind helper costs). Keep in sync with the enum (kPerCpuArray is last).
inline constexpr size_t kNumMapTypes =
    static_cast<size_t>(MapType::kPerCpuArray) + 1;

std::string_view MapTypeName(MapType type);

// Update flags follow the BPF_ANY / BPF_NOEXIST / BPF_EXIST semantics.
enum class UpdateFlag {
  kAny,
  kNoExist,
  kExist,
};

struct MapSpec {
  MapType type = MapType::kArray;
  uint32_t key_size = sizeof(uint32_t);
  // Default 8: the paper standardizes on u64 values ("we have found that
  // 64-bit unsigned integer values are sufficient for our target
  // applications"). Arbitrary struct sizes are supported too.
  uint32_t value_size = sizeof(uint64_t);
  uint32_t max_entries = 1;
  std::string name;
};

// Abstract map. All operations are thread-safe; Lookup returns a pointer to
// stable internal storage valid until the entry is deleted (as in eBPF,
// in-kernel users mutate values in place, typically with atomics).
class Map {
 public:
  explicit Map(MapSpec spec)
      : spec_(std::move(spec)), counters_(MapOpCounters::Detached()) {}
  virtual ~Map() = default;

  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  const MapSpec& spec() const { return spec_; }

  // Returns a pointer to the value for `key`, or nullptr if absent.
  // Non-virtual: the public entry points account the op (atomically —
  // maps are shared across threads) and delegate to the Do* hooks.
  void* Lookup(const void* key) {
    counters_.lookups->IncAtomic();
    void* value = DoLookup(key);
    if (value == nullptr) {
      counters_.misses->IncAtomic();
    }
    return value;
  }

  Status Update(const void* key, const void* value, UpdateFlag flag) {
    counters_.updates->IncAtomic();
    Status status = DoUpdate(key, value, flag);
    if (status.ok()) {
      BumpVersion();
    }
    return status;
  }

  Status Delete(const void* key) {
    counters_.deletes->IncAtomic();
    Status status = DoDelete(key);
    if (status.ok()) {
      BumpVersion();
    }
    return status;
  }

  // Monotonic content-version stamp, bumped after every successful Update
  // or Delete. The flow-decision cache folds the versions of a program's
  // read-set maps into each cached entry; any change strictly increases
  // the sum, so a stale entry can never validate. The bump is a release
  // and the read an acquire: a reader that observes version N also
  // observes the value writes of every update numbered <= N. Note that
  // direct in-place value mutation (AtomicFetchAdd through a Lookup
  // pointer) bypasses this stamp — but every program doing that is marked
  // uncacheable by the verifier, so no cached decision can depend on it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

  // Re-homes this map's accounting into registry-owned cells (called by
  // syrupd when the map is created or pinned). First binding wins so two
  // apps opening the same pin share one series; values accumulated while
  // detached carry over.
  void BindCounters(const MapOpCounters& cells) {
    if (bound_) {
      return;
    }
    bound_ = true;
    cells.lookups->IncAtomic(counters_.lookups->Load());
    cells.misses->IncAtomic(counters_.misses->Load());
    cells.updates->IncAtomic(counters_.updates->Load());
    cells.deletes->IncAtomic(counters_.deletes->Load());
    counters_ = cells;
  }

  const MapOpCounters& op_counters() const { return counters_; }

  // Number of live entries (array maps: max_entries, all preallocated).
  virtual uint32_t Size() const = 0;

  // Invokes fn(key, value) for every live entry (bpftool-style iteration
  // for introspection). Hash maps hold the bucket lock during each call:
  // fn must not re-enter the map.
  using VisitFn = std::function<void(const void* key, void* value)>;
  virtual void Visit(const VisitFn& fn) = 0;

  // --- Typed conveniences for the common u32 -> u64 shape -----------------

  // Virtual so sharded maps (PerCpuArrayMap) can aggregate across shards.
  virtual StatusOr<uint64_t> LookupU64(uint32_t key) {
    if (spec_.key_size != sizeof(uint32_t) ||
        spec_.value_size != sizeof(uint64_t)) {
      return InvalidArgumentError("map is not u32->u64");
    }
    void* v = Lookup(&key);
    if (v == nullptr) {
      return NotFoundError("key absent");
    }
    uint64_t out;
    std::memcpy(&out, v, sizeof(out));
    return out;
  }

  Status UpdateU64(uint32_t key, uint64_t value,
                   UpdateFlag flag = UpdateFlag::kAny) {
    if (spec_.key_size != sizeof(uint32_t) ||
        spec_.value_size != sizeof(uint64_t)) {
      return InvalidArgumentError("map is not u32->u64");
    }
    return Update(&key, &value, flag);
  }

  // Atomic fetch-add on a u64 value in place (the paper's
  // __sync_fetch_and_add on map values). Returns the previous value.
  static uint64_t AtomicFetchAdd(void* value, uint64_t delta) {
    auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(value);
    return cell->fetch_add(delta, std::memory_order_relaxed);
  }

  static uint64_t AtomicLoad(const void* value) {
    auto* cell = reinterpret_cast<const std::atomic<uint64_t>*>(value);
    return cell->load(std::memory_order_relaxed);
  }

  static void AtomicStore(void* value, uint64_t v) {
    auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(value);
    cell->store(v, std::memory_order_relaxed);
  }

 protected:
  // Concrete map implementations.
  virtual void* DoLookup(const void* key) = 0;
  virtual Status DoUpdate(const void* key, const void* value,
                          UpdateFlag flag) = 0;
  virtual Status DoDelete(const void* key) = 0;

 private:
  MapSpec spec_;
  MapOpCounters counters_;
  std::atomic<uint64_t> version_{0};
  bool bound_ = false;
};

// Factory: validates the spec and builds the matching concrete map.
StatusOr<std::shared_ptr<Map>> CreateMap(const MapSpec& spec);

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_MAP_H_
