// Syrup Maps: the key-value communication substrate (paper §3.4, §4.1).
//
// Maps model eBPF maps: fixed key/value sizes, preallocated or node-based
// storage with *stable value pointers*, lock-free atomic arithmetic on
// values, and pinning to a path namespace so policies at different hooks and
// userspace code can share state. Three concrete types are provided, the
// same trio Syrup uses: array maps (executor tables, per-index counters),
// hash maps (token buckets, scan flags keyed by id), and prog-array maps
// (syrupd's per-port policy dispatch table, paper §4.3).
#ifndef SYRUP_SRC_MAP_MAP_H_
#define SYRUP_SRC_MAP_MAP_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace syrup {

// Per-map operation counters. Maps are contractually thread-safe, so
// bumps use the atomic variant; cells are shared_ptr into a
// MetricsRegistry once the map is bound (syrupd binds at create/pin time,
// keyed {app, "map", "<name>.lookups"} etc.).
struct MapOpCounters {
  std::shared_ptr<obs::Counter> lookups;
  std::shared_ptr<obs::Counter> misses;
  std::shared_ptr<obs::Counter> updates;
  std::shared_ptr<obs::Counter> deletes;
  // Bumped once at construction when the spec's requested table size
  // exceeded the implementation's bucket/slot clamp (the map still works,
  // with degraded probe behavior; the cell makes the degradation visible).
  std::shared_ptr<obs::Counter> bucket_clamp;

  static MapOpCounters Detached() {
    MapOpCounters c;
    c.lookups = std::make_shared<obs::Counter>();
    c.misses = std::make_shared<obs::Counter>();
    c.updates = std::make_shared<obs::Counter>();
    c.deletes = std::make_shared<obs::Counter>();
    c.bucket_clamp = std::make_shared<obs::Counter>();
    return c;
  }

  static MapOpCounters InRegistry(obs::MetricsRegistry& registry,
                                  std::string_view app,
                                  const std::string& map_name) {
    MapOpCounters c;
    c.lookups = registry.GetCounter(app, "map", map_name + ".lookups");
    c.misses = registry.GetCounter(app, "map", map_name + ".misses");
    c.updates = registry.GetCounter(app, "map", map_name + ".updates");
    c.deletes = registry.GetCounter(app, "map", map_name + ".deletes");
    c.bucket_clamp =
        registry.GetCounter(app, "map", map_name + ".bucket_clamp");
    return c;
  }
};

// Point-in-time internals a map exposes for the per-map observability
// gauges (map.{occupancy,max_probe_len,tombstones,epoch_lag}); Syrupd
// refreshes them into the MetricsRegistry on every StatsSnapshot(). Only
// the swiss-table HashMap fills all four; other maps report occupancy.
struct MapRuntimeStats {
  uint64_t occupancy = 0;      // live entries
  uint64_t max_probe_len = 0;  // worst insert probe distance seen (groups)
  uint64_t tombstones = 0;     // deleted slots awaiting epoch-gated reuse
  uint64_t epoch_lag = 0;      // global epoch minus slowest pinned reader
};

enum class MapType {
  kArray,
  kHash,
  kProgArray,
  // Array map sharded per CPU: writes land in the calling core's shard,
  // LookupU64 aggregates across shards (the paper's recommended fix for
  // contended counter maps).
  kPerCpuArray,
};

// Number of map types; sizes every per-map-type table (e.g. the cost model's
// per-kind helper costs). Keep in sync with the enum (kPerCpuArray is last).
inline constexpr size_t kNumMapTypes =
    static_cast<size_t>(MapType::kPerCpuArray) + 1;

std::string_view MapTypeName(MapType type);

// Update flags follow the BPF_ANY / BPF_NOEXIST / BPF_EXIST semantics.
enum class UpdateFlag {
  kAny,
  kNoExist,
  kExist,
};

struct MapSpec {
  MapType type = MapType::kArray;
  uint32_t key_size = sizeof(uint32_t);
  // Default 8: the paper standardizes on u64 values ("we have found that
  // 64-bit unsigned integer values are sufficient for our target
  // applications"). Arbitrary struct sizes are supported too.
  uint32_t value_size = sizeof(uint64_t);
  uint32_t max_entries = 1;
  std::string name;
};

// Abstract map. All operations are thread-safe; Lookup returns a pointer to
// stable internal storage valid until the entry is deleted (as in eBPF,
// in-kernel users mutate values in place, typically with atomics).
class Map {
 public:
  explicit Map(MapSpec spec)
      : spec_(std::move(spec)), counters_(MapOpCounters::Detached()) {}
  virtual ~Map() = default;

  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  const MapSpec& spec() const { return spec_; }

  // Returns a pointer to the value for `key`, or nullptr if absent.
  // Non-virtual: the public entry points account the op (atomically —
  // maps are shared across threads) and delegate to the Do* hooks.
  void* Lookup(const void* key) {
    counters_.lookups->IncAtomic();
    void* value = DoLookup(key);
    if (value == nullptr) {
      counters_.misses->IncAtomic();
    }
    return value;
  }

  // Batched lookup: out[i] = value pointer for keys[i] (nullptr on miss).
  // `keys` is n contiguous keys of spec().key_size bytes each. Equivalent
  // to n Lookup() calls — same pointers, same counter accounting — but
  // implementations overlap hashing, probing, and memory prefetch across
  // the batch (HashMap software-pipelines it), which is what
  // Syrupd::DispatchBatch rides on flow-cache misses.
  void LookupBatch(uint32_t n, const void* keys, void** out) {
    counters_.lookups->IncAtomic(n);
    DoLookupBatch(n, keys, out);
    uint64_t miss = 0;
    for (uint32_t i = 0; i < n; ++i) {
      miss += out[i] == nullptr ? 1 : 0;
    }
    if (miss != 0) {
      counters_.misses->IncAtomic(miss);
    }
  }

  // The VM helper flavor (map_lookup_batch): copies each hit's u64 value
  // into out[i] (misses write 0) and returns the hit bitmap (bit i set =
  // keys[i] present). Only valid for value_size == 8 maps — the verifier
  // enforces that, this entry point just trusts it. Values are read with
  // the same relaxed-atomic load the policies use through Lookup pointers.
  uint64_t LookupBatchU64(uint32_t n, const void* keys, uint64_t* out) {
    void* ptrs[kMaxLookupBatch];
    n = n <= kMaxLookupBatch ? n : kMaxLookupBatch;
    LookupBatch(n, keys, ptrs);
    uint64_t hits = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (ptrs[i] != nullptr) {
        hits |= uint64_t{1} << i;
        out[i] = AtomicLoad(ptrs[i]);
      } else {
        out[i] = 0;
      }
    }
    return hits;
  }

  // Largest batch the VM helper accepts; bounds the helper's stack needs
  // (n keys + n u64 results must fit the 512-byte VM frame) and keeps the
  // hit bitmap in the low half of r0.
  static constexpr uint32_t kMaxLookupBatch = 32;

  Status Update(const void* key, const void* value, UpdateFlag flag) {
    counters_.updates->IncAtomic();
    Status status = DoUpdate(key, value, flag);
    if (status.ok()) {
      BumpVersion();
    }
    return status;
  }

  Status Delete(const void* key) {
    counters_.deletes->IncAtomic();
    Status status = DoDelete(key);
    if (status.ok()) {
      BumpVersion();
    }
    return status;
  }

  // Monotonic content-version stamp, bumped after every successful Update
  // or Delete. The flow-decision cache folds the versions of a program's
  // read-set maps into each cached entry; any change strictly increases
  // the sum, so a stale entry can never validate. The bump is a release
  // and the read an acquire: a reader that observes version N also
  // observes the value writes of every update numbered <= N. Note that
  // direct in-place value mutation (AtomicFetchAdd through a Lookup
  // pointer) bypasses this stamp — but every program doing that is marked
  // uncacheable by the verifier, so no cached decision can depend on it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

  // Re-homes this map's accounting into registry-owned cells (called by
  // syrupd when the map is created or pinned). First binding wins so two
  // apps opening the same pin share one series; values accumulated while
  // detached carry over.
  void BindCounters(const MapOpCounters& cells) {
    if (bound_) {
      return;
    }
    bound_ = true;
    cells.lookups->IncAtomic(counters_.lookups->Load());
    cells.misses->IncAtomic(counters_.misses->Load());
    cells.updates->IncAtomic(counters_.updates->Load());
    cells.deletes->IncAtomic(counters_.deletes->Load());
    cells.bucket_clamp->IncAtomic(counters_.bucket_clamp->Load());
    counters_ = cells;
  }

  const MapOpCounters& op_counters() const { return counters_; }

  // Number of live entries (array maps: max_entries, all preallocated).
  virtual uint32_t Size() const = 0;

  // Internals snapshot for the observability gauges; cheap enough to call
  // on every StatsSnapshot().
  virtual MapRuntimeStats RuntimeStats() const {
    MapRuntimeStats stats;
    stats.occupancy = Size();
    return stats;
  }

  // Invokes fn(key, value) for every live entry (bpftool-style iteration
  // for introspection). Hash maps hold the bucket lock during each call:
  // fn must not re-enter the map.
  using VisitFn = std::function<void(const void* key, void* value)>;
  virtual void Visit(const VisitFn& fn) = 0;

  // --- Typed conveniences for the common u32 -> u64 shape -----------------

  // Virtual so sharded maps (PerCpuArrayMap) can aggregate across shards.
  virtual StatusOr<uint64_t> LookupU64(uint32_t key) {
    if (spec_.key_size != sizeof(uint32_t) ||
        spec_.value_size != sizeof(uint64_t)) {
      return InvalidArgumentError("map is not u32->u64");
    }
    void* v = Lookup(&key);
    if (v == nullptr) {
      return NotFoundError("key absent");
    }
    uint64_t out;
    std::memcpy(&out, v, sizeof(out));
    return out;
  }

  Status UpdateU64(uint32_t key, uint64_t value,
                   UpdateFlag flag = UpdateFlag::kAny) {
    if (spec_.key_size != sizeof(uint32_t) ||
        spec_.value_size != sizeof(uint64_t)) {
      return InvalidArgumentError("map is not u32->u64");
    }
    return Update(&key, &value, flag);
  }

  // Atomic fetch-add on a u64 value in place (the paper's
  // __sync_fetch_and_add on map values). Returns the previous value.
  static uint64_t AtomicFetchAdd(void* value, uint64_t delta) {
    auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(value);
    return cell->fetch_add(delta, std::memory_order_relaxed);
  }

  static uint64_t AtomicLoad(const void* value) {
    auto* cell = reinterpret_cast<const std::atomic<uint64_t>*>(value);
    return cell->load(std::memory_order_relaxed);
  }

  static void AtomicStore(void* value, uint64_t v) {
    auto* cell = reinterpret_cast<std::atomic<uint64_t>*>(value);
    cell->store(v, std::memory_order_relaxed);
  }

 protected:
  // Concrete map implementations.
  virtual void* DoLookup(const void* key) = 0;
  virtual Status DoUpdate(const void* key, const void* value,
                          UpdateFlag flag) = 0;
  virtual Status DoDelete(const void* key) = 0;

  // Default batched lookup: the sequential loop. HashMap overrides with a
  // hash/probe/prefetch software pipeline.
  virtual void DoLookupBatch(uint32_t n, const void* keys, void** out) {
    const auto* k = static_cast<const uint8_t*>(keys);
    for (uint32_t i = 0; i < n; ++i) {
      out[i] = DoLookup(k + static_cast<size_t>(i) * spec_.key_size);
    }
  }

  // Records that this map's table size was clamped below what the spec
  // asked for: one warning per process (not per map — a fleet of clamped
  // maps should not spam the log) plus a per-map counter the registry
  // surfaces as "<name>.bucket_clamp". Defined in map.cc for the logger.
  void NoteBucketClamp(uint64_t clamped_to);

 private:
  MapSpec spec_;
  MapOpCounters counters_;
  std::atomic<uint64_t> version_{0};
  bool bound_ = false;
};

// Factory: validates the spec and builds the matching concrete map.
StatusOr<std::shared_ptr<Map>> CreateMap(const MapSpec& spec);

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_MAP_H_
