// Map pin registry: the sysfs-pinning analogue (paper §3.4).
//
// syrupd pins maps declared in policy files to paths so "different programs
// from the same user can access them", with access control via file-system
// style permissions. Paths are arbitrary strings ("/sys/fs/bpf/app1/tokens"
// by convention); permissions are a uid plus a world-readable/writable mode.
#ifndef SYRUP_SRC_MAP_REGISTRY_H_
#define SYRUP_SRC_MAP_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/map/map.h"

namespace syrup {

using Uid = uint32_t;

// Subset of POSIX mode bits that matter for map sharing.
struct PinMode {
  bool world_readable = false;
  bool world_writable = false;
};

enum class MapAccess { kRead, kWrite };

class MapRegistry {
 public:
  MapRegistry() = default;
  MapRegistry(const MapRegistry&) = delete;
  MapRegistry& operator=(const MapRegistry&) = delete;

  // Pins `map` at `path` owned by `owner`. Fails if the path is taken.
  Status Pin(const std::string& path, std::shared_ptr<Map> map, Uid owner,
             PinMode mode = {});

  // Opens the map pinned at `path` with the requested access; enforces
  // ownership/mode. Owners always have full access.
  StatusOr<std::shared_ptr<Map>> Open(const std::string& path, Uid uid,
                                      MapAccess access = MapAccess::kWrite);

  // Removes the pin (owner only). The map stays alive while handles exist.
  Status Unpin(const std::string& path, Uid uid);

  std::vector<std::string> ListPaths() const;

  // Reverse lookup: the pin path of `map`, or "" when it is not pinned.
  // Used by the deployment interference analysis to name shared maps the
  // way operators know them.
  std::string PathOf(const Map* map) const;

 private:
  struct Entry {
    std::shared_ptr<Map> map;
    Uid owner;
    PinMode mode;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> pins_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_REGISTRY_H_
