#include "src/map/map.h"

#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/map/array_map.h"
#include "src/map/chained_hash_map.h"
#include "src/map/hash_map.h"
#include "src/map/prog_array.h"

namespace syrup {

void Map::NoteBucketClamp(uint64_t clamped_to) {
  counters_.bucket_clamp->IncAtomic();
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    SYRUP_LOG(Warning) << "hash map '" << spec_.name << "' ("
                       << spec_.max_entries
                       << " max_entries) exceeds the table clamp; sized at "
                       << clamped_to
                       << " slots — expect longer probes under load "
                          "(map.bucket_clamp counts affected maps)";
  }
}

std::string_view MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kProgArray:
      return "prog_array";
    case MapType::kPerCpuArray:
      return "percpu_array";
  }
  return "?";
}

StatusOr<std::shared_ptr<Map>> CreateMap(const MapSpec& spec) {
  if (spec.max_entries == 0) {
    return InvalidArgumentError("map max_entries must be > 0");
  }
  if (spec.key_size == 0 || spec.value_size == 0) {
    return InvalidArgumentError("map key/value sizes must be > 0");
  }
  switch (spec.type) {
    case MapType::kArray:
      if (spec.key_size != sizeof(uint32_t)) {
        return InvalidArgumentError("array map keys must be u32");
      }
      return std::shared_ptr<Map>(std::make_shared<ArrayMap>(spec));
    case MapType::kHash: {
      // Oracle mode (same pattern as SimEngine::kReference): the retained
      // chained implementation stands in for the swiss table so whole
      // suites can be diffed against the old semantics.
      const char* ref = std::getenv("SYRUP_MAP_REFERENCE");
      if (ref != nullptr && ref[0] == '1') {
        return std::shared_ptr<Map>(std::make_shared<ChainedHashMap>(spec));
      }
      return std::shared_ptr<Map>(std::make_shared<HashMap>(spec));
    }
    case MapType::kProgArray:
      if (spec.key_size != sizeof(uint32_t) ||
          spec.value_size != sizeof(uint64_t)) {
        return InvalidArgumentError("prog array maps must be u32->u64");
      }
      return std::shared_ptr<Map>(std::make_shared<ProgArrayMap>(spec));
    case MapType::kPerCpuArray:
      if (spec.key_size != sizeof(uint32_t)) {
        return InvalidArgumentError("percpu array map keys must be u32");
      }
      return std::shared_ptr<Map>(std::make_shared<PerCpuArrayMap>(spec));
  }
  return InvalidArgumentError("unknown map type");
}

}  // namespace syrup
