#include "src/map/map.h"

#include "src/map/array_map.h"
#include "src/map/hash_map.h"
#include "src/map/prog_array.h"

namespace syrup {

std::string_view MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kProgArray:
      return "prog_array";
    case MapType::kPerCpuArray:
      return "percpu_array";
  }
  return "?";
}

StatusOr<std::shared_ptr<Map>> CreateMap(const MapSpec& spec) {
  if (spec.max_entries == 0) {
    return InvalidArgumentError("map max_entries must be > 0");
  }
  if (spec.key_size == 0 || spec.value_size == 0) {
    return InvalidArgumentError("map key/value sizes must be > 0");
  }
  switch (spec.type) {
    case MapType::kArray:
      if (spec.key_size != sizeof(uint32_t)) {
        return InvalidArgumentError("array map keys must be u32");
      }
      return std::shared_ptr<Map>(std::make_shared<ArrayMap>(spec));
    case MapType::kHash:
      return std::shared_ptr<Map>(std::make_shared<HashMap>(spec));
    case MapType::kProgArray:
      if (spec.key_size != sizeof(uint32_t) ||
          spec.value_size != sizeof(uint64_t)) {
        return InvalidArgumentError("prog array maps must be u32->u64");
      }
      return std::shared_ptr<Map>(std::make_shared<ProgArrayMap>(spec));
    case MapType::kPerCpuArray:
      if (spec.key_size != sizeof(uint32_t)) {
        return InvalidArgumentError("percpu array map keys must be u32");
      }
      return std::shared_ptr<Map>(std::make_shared<PerCpuArrayMap>(spec));
  }
  return InvalidArgumentError("unknown map type");
}

}  // namespace syrup
