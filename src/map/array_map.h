// Array map: u32 index -> fixed-size value, fully preallocated.
//
// Matches BPF_MAP_TYPE_ARRAY semantics: every index in [0, max_entries)
// always exists (zero-initialized), Delete is invalid, and value storage
// never moves, so concurrent readers and atomic writers need no locking.
#ifndef SYRUP_SRC_MAP_ARRAY_MAP_H_
#define SYRUP_SRC_MAP_ARRAY_MAP_H_

#include <cstring>
#include <vector>

#include "src/map/map.h"

namespace syrup {

class ArrayMap : public Map {
 public:
  explicit ArrayMap(MapSpec spec)
      : Map(std::move(spec)),
        storage_(static_cast<size_t>(this->spec().value_size) *
                     this->spec().max_entries,
                 0) {}

  void* DoLookup(const void* key) override {
    const uint32_t index = LoadKey(key);
    if (index >= spec().max_entries) {
      return nullptr;
    }
    return storage_.data() + static_cast<size_t>(index) * spec().value_size;
  }

  Status DoUpdate(const void* key, const void* value, UpdateFlag flag) override {
    if (flag == UpdateFlag::kNoExist) {
      // All array entries exist from creation, as in the kernel.
      return AlreadyExistsError("array map entries always exist");
    }
    void* slot = DoLookup(key);
    if (slot == nullptr) {
      return OutOfRangeError("array index out of bounds");
    }
    std::memcpy(slot, value, spec().value_size);
    return OkStatus();
  }

  Status DoDelete(const void* /*key*/) override {
    return InvalidArgumentError("array map entries cannot be deleted");
  }

  uint32_t Size() const override { return spec().max_entries; }

  void Visit(const VisitFn& fn) override {
    for (uint32_t index = 0; index < spec().max_entries; ++index) {
      fn(&index, storage_.data() +
                     static_cast<size_t>(index) * spec().value_size);
    }
  }

 private:
  static uint32_t LoadKey(const void* key) {
    uint32_t index;
    std::memcpy(&index, key, sizeof(index));
    return index;
  }

  std::vector<uint8_t> storage_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_ARRAY_MAP_H_
