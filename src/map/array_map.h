// Array map: u32 index -> fixed-size value, fully preallocated.
//
// Matches BPF_MAP_TYPE_ARRAY semantics: every index in [0, max_entries)
// always exists (zero-initialized), Delete is invalid, and value storage
// never moves, so concurrent readers and atomic writers need no locking.
#ifndef SYRUP_SRC_MAP_ARRAY_MAP_H_
#define SYRUP_SRC_MAP_ARRAY_MAP_H_

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/map/map.h"

namespace syrup {

class ArrayMap : public Map {
 public:
  explicit ArrayMap(MapSpec spec)
      : Map(std::move(spec)),
        storage_(static_cast<size_t>(this->spec().value_size) *
                     this->spec().max_entries,
                 0) {}

  void* DoLookup(const void* key) override {
    const uint32_t index = LoadKey(key);
    if (index >= spec().max_entries) {
      return nullptr;
    }
    return storage_.data() + static_cast<size_t>(index) * spec().value_size;
  }

  Status DoUpdate(const void* key, const void* value, UpdateFlag flag) override {
    if (flag == UpdateFlag::kNoExist) {
      // All array entries exist from creation, as in the kernel.
      return AlreadyExistsError("array map entries always exist");
    }
    void* slot = DoLookup(key);
    if (slot == nullptr) {
      return OutOfRangeError("array index out of bounds");
    }
    StoreValue(slot, value, spec().value_size);
    return OkStatus();
  }

  Status DoDelete(const void* /*key*/) override {
    return InvalidArgumentError("array map entries cannot be deleted");
  }

  uint32_t Size() const override { return spec().max_entries; }

  void Visit(const VisitFn& fn) override {
    for (uint32_t index = 0; index < spec().max_entries; ++index) {
      fn(&index, storage_.data() +
                     static_cast<size_t>(index) * spec().value_size);
    }
  }

  // Publishes an updated value. For the standard u64 shape the store is a
  // single atomic release, so lock-free concurrent readers (policies, the
  // flow-decision cache's version protocol) never observe a torn value and
  // a reader ordered after the subsequent version bump observes the value:
  // Map::Update bumps version_ (release) only after this store.
  static void StoreValue(void* slot, const void* value, uint32_t size) {
    if (size == sizeof(uint64_t)) {
      uint64_t v;
      std::memcpy(&v, value, sizeof(v));
      reinterpret_cast<std::atomic<uint64_t>*>(slot)->store(
          v, std::memory_order_release);
      return;
    }
    std::memcpy(slot, value, size);
  }

 private:
  static uint32_t LoadKey(const void* key) {
    uint32_t index;
    std::memcpy(&index, key, sizeof(index));
    return index;
  }

  std::vector<uint8_t> storage_;
};

// Per-CPU array map: BPF_MAP_TYPE_PERCPU_ARRAY semantics adapted to the
// simulator. Storage is sharded; Lookup/Update touch only the calling
// thread's shard (each OS thread is pinned to a shard on first access,
// wrapping modulo the shard count), so per-packet counter bumps from
// different cores never share a cache line — the paper's recommended fix
// for contended counter maps (Table 3 "Rd-Contended"). The userspace read
// side is LookupU64, which aggregates (sums) the key's value across every
// shard, matching how the kernel surfaces per-CPU values as an array and
// tooling sums them.
class PerCpuArrayMap : public Map {
 public:
  explicit PerCpuArrayMap(MapSpec spec,
                          uint32_t num_shards = DefaultShards())
      : Map(std::move(spec)),
        num_shards_(num_shards == 0 ? 1 : num_shards),
        stride_(static_cast<size_t>(this->spec().value_size) *
                this->spec().max_entries),
        storage_(stride_ * (num_shards == 0 ? 1 : num_shards), 0) {}

  uint32_t num_shards() const { return num_shards_; }

  void* DoLookup(const void* key) override {
    return SlotIn(ShardIndex(), LoadKey(key));
  }

  Status DoUpdate(const void* key, const void* value,
                  UpdateFlag flag) override {
    if (flag == UpdateFlag::kNoExist) {
      return AlreadyExistsError("array map entries always exist");
    }
    void* slot = SlotIn(ShardIndex(), LoadKey(key));
    if (slot == nullptr) {
      return OutOfRangeError("array index out of bounds");
    }
    ArrayMap::StoreValue(slot, value, spec().value_size);
    return OkStatus();
  }

  Status DoDelete(const void* /*key*/) override {
    return InvalidArgumentError("array map entries cannot be deleted");
  }

  uint32_t Size() const override { return spec().max_entries; }

  // Visits the calling thread's shard (the view a policy running on this
  // core sees). Cross-shard aggregation goes through LookupU64.
  void Visit(const VisitFn& fn) override {
    const uint32_t shard = ShardIndex();
    for (uint32_t index = 0; index < spec().max_entries; ++index) {
      fn(&index, SlotIn(shard, index));
    }
  }

  // Aggregating read side: sums the key's u64 value across all shards.
  StatusOr<uint64_t> LookupU64(uint32_t key) override {
    if (spec().key_size != sizeof(uint32_t) ||
        spec().value_size != sizeof(uint64_t)) {
      return InvalidArgumentError("map is not u32->u64");
    }
    if (key >= spec().max_entries) {
      return NotFoundError("key absent");
    }
    // Accounts once, like the base class's single-shard path.
    op_counters().lookups->IncAtomic();
    uint64_t sum = 0;
    for (uint32_t shard = 0; shard < num_shards_; ++shard) {
      sum += AtomicLoad(SlotIn(shard, key));
    }
    return sum;
  }

  // The value for `key` in one specific shard (tests, introspection).
  StatusOr<uint64_t> ShardValueU64(uint32_t shard, uint32_t key) {
    if (shard >= num_shards_ || key >= spec().max_entries) {
      return NotFoundError("shard or key out of range");
    }
    return AtomicLoad(SlotIn(shard, key));
  }

  static uint32_t DefaultShards() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : static_cast<uint32_t>(hw);
  }

 private:
  static uint32_t LoadKey(const void* key) {
    uint32_t index;
    std::memcpy(&index, key, sizeof(index));
    return index;
  }

  void* SlotIn(uint32_t shard, uint32_t index) {
    if (index >= spec().max_entries) {
      return nullptr;
    }
    return storage_.data() + stride_ * shard +
           static_cast<size_t>(index) * spec().value_size;
  }

  // Each OS thread claims a shard on first touch; shards wrap when there
  // are more threads than shards (still correct, just shared again).
  uint32_t ShardIndex() const {
    static std::atomic<uint32_t> next_thread{0};
    thread_local uint32_t thread_slot =
        next_thread.fetch_add(1, std::memory_order_relaxed);
    return thread_slot % num_shards_;
  }

  const uint32_t num_shards_;
  const size_t stride_;  // bytes per shard
  std::vector<uint8_t> storage_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_ARRAY_MAP_H_
