// Swiss-table hash map with a lock-free read path.
//
// Layout (all contiguous, zero per-entry allocations):
//
//   ctrl_    [slot]  1 byte:  0x80 empty | 0xFE tombstone | 0..127 = H2(hash)
//   stamps_  [group] u32 seqlock stamp, one per 16-slot group
//   keys_    [slot]  key bytes, stride = key_size rounded up to 8
//   values_  [slot]  value bytes inline when value_size <= 16 (stride
//                    rounded to 8 so u64 values take atomic loads/stores);
//                    larger values spill to slab chunks that are never
//                    freed or moved, so the BPF "value pointer stable for
//                    the entry's lifetime" contract holds either way.
//
// Probing: H1(hash) picks a 16-slot group; groups are scanned whole (SSE2
// byte-compare on x86-64, SWAR over two u64 lanes elsewhere) and probing
// advances linearly group-by-group. A group containing an empty slot ends
// the probe — tombstones never convert back to empty (that would break
// probe chains), they are only *reused* for new inserts once reclamation
// says no reader can still hold the old entry.
//
// Concurrency:
//   * writers (Update/Delete/Visit) serialize on one mutex per map; the
//     sharded engine gives each shard its own maps, so this is per-shard
//     serialization in the deployment that matters.
//   * readers take no lock ever. Each group mutation is bracketed by its
//     seqlock stamp (odd = writer inside); readers snapshot the group,
//     compare keys, capture the value pointer, then validate the stamp and
//     retry on interference. The SSE2/memcmp snapshot is intentionally
//     racy-but-validated; under TSan the same algorithm runs on per-byte
//     relaxed atomics so the race tests certify the protocol itself.
//   * reclamation is epoch-based (src/map/epoch.h). Delete publishes the
//     tombstone, then advances the global epoch and records the advanced
//     epoch as the slot's (and spilled cell's) retire epoch. The slot or
//     cell is handed to a new key only once every pinned reader sits at
//     an epoch >= the retire epoch: readers pinned earlier are visible to
//     the writer's MinPinned() scan, and a reader whose pin observed the
//     retire epoch (or later) was fenced after the tombstone was globally
//     visible, so its probe can never return the dead entry. Value memory
//     itself is never freed while the map lives, which is what closes the
//     chained map's lookup/delete use-after-free by construction.
//
// Readers that hold a value pointer across calls must pin the epoch
// (epoch::ReadGuard); Syrupd pins once per dispatch batch. Unpinned
// readers keep eBPF preallocated-map semantics: memory stays valid but a
// long-held pointer may observe the slot recycled for another key.
#ifndef SYRUP_SRC_MAP_HASH_MAP_H_
#define SYRUP_SRC_MAP_HASH_MAP_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/map/epoch.h"
#include "src/map/map.h"

#if defined(__SANITIZE_THREAD__)
#define SYRUP_MAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SYRUP_MAP_TSAN 1
#endif
#endif
#ifndef SYRUP_MAP_TSAN
#define SYRUP_MAP_TSAN 0
#endif

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace syrup {

class HashMap : public Map {
 public:
  explicit HashMap(MapSpec spec) : Map(std::move(spec)) {
    const uint64_t want =
        2 * static_cast<uint64_t>(this->spec().max_entries);
    uint64_t slots = kGroupWidth;
    while (slots < want && slots < kMaxSlots) {
      slots <<= 1;
    }
    slots_ = slots;
    group_mask_ = slots_ / kGroupWidth - 1;
    key_stride_ = RoundUp8(this->spec().key_size);
    value_stride_ = RoundUp8(this->spec().value_size);
    inline_values_ = this->spec().value_size <= kInlineValueBytes;
    ctrl_ = std::make_unique<uint8_t[]>(slots_);
    std::memset(ctrl_.get(), kEmpty, slots_);
    stamps_ = std::make_unique<std::atomic<uint32_t>[]>(NumGroups());
    keys_ = std::make_unique<uint64_t[]>(slots_ * key_stride_ / 8);
    if (inline_values_) {
      values_ = std::make_unique<uint64_t[]>(slots_ * value_stride_ / 8);
    } else {
      cell_stride_u64_ = value_stride_ / 8;
      slot_cell_ = std::make_unique<std::atomic<uint32_t>[]>(slots_);
    }
    if (want > kMaxSlots) {
      NoteBucketClamp(slots_);
    }
  }

  uint32_t Size() const override {
    return size_.load(std::memory_order_relaxed);
  }

  MapRuntimeStats RuntimeStats() const override {
    MapRuntimeStats stats;
    stats.occupancy = size_.load(std::memory_order_relaxed);
    stats.max_probe_len = max_probe_groups_.load(std::memory_order_relaxed);
    stats.tombstones = tombstones_.load(std::memory_order_relaxed);
    stats.epoch_lag = epoch::Domain::Global().Lag();
    return stats;
  }

  void Visit(const VisitFn& fn) override {
    std::lock_guard<std::mutex> lock(writer_mu_);
    for (size_t slot = 0; slot < slots_; ++slot) {
      if (IsFull(GetCtrl(slot))) {
        fn(KeyPtr(slot), ValuePtr(slot));
      }
    }
  }

  // Total slot capacity (tests assert the clamp; benches size scenarios).
  uint64_t slot_count() const { return slots_; }

  // The slot table stops doubling at 2^22 slots (2^18 groups). Specs past
  // the clamp (> 2^21 max_entries) still work but run at higher load
  // factor with longer probes; the constructor reports the clamp instead
  // of degrading quietly.
  static constexpr uint64_t kMaxSlots = uint64_t{1} << 22;

 protected:
  void* DoLookup(const void* key) override {
    return FindValue(key, HashKey(key));
  }

  // Software-pipelined batch probe: hash and prefetch run kPipe keys ahead
  // of the probe loop, so the control-group cache miss of key j+kPipe
  // overlaps the tag/key compares of key j. This is the miss-path
  // amortization DispatchBatch rides: one batch walks n independent probe
  // chains with their memory latencies stacked, not serialized.
  void DoLookupBatch(uint32_t n, const void* keys, void** out) override {
    const auto* kb = static_cast<const uint8_t*>(keys);
    const size_t ks = spec().key_size;
    constexpr uint32_t kPipe = 8;
    uint64_t hashes[kPipe];
    const uint32_t lead = n < kPipe ? n : kPipe;
    for (uint32_t i = 0; i < lead; ++i) {
      hashes[i] = HashKey(kb + i * ks);
      PrefetchGroup(hashes[i]);
    }
    for (uint32_t j = 0; j < n; ++j) {
      // Consume slot j before the look-ahead reuses it: the ring is
      // exactly kPipe deep, so hashes[(j + kPipe) % kPipe] IS hashes[j].
      const uint64_t hash = hashes[j % kPipe];
      const uint32_t ahead = j + kPipe;
      if (ahead < n) {
        hashes[ahead % kPipe] = HashKey(kb + ahead * ks);
        PrefetchGroup(hashes[ahead % kPipe]);
      }
      out[j] = FindValue(kb + j * ks, hash);
    }
  }

  Status DoUpdate(const void* key, const void* value,
                  UpdateFlag flag) override {
    const uint64_t hash = HashKey(key);
    std::lock_guard<std::mutex> lock(writer_mu_);
    const WriteProbe probe = ProbeForWrite(key, hash);
    if (probe.existing != kNpos) {
      if (flag == UpdateFlag::kNoExist) {
        return AlreadyExistsError("key already present");
      }
      StoreValueInPlace(ValuePtr(probe.existing), value);
      return OkStatus();
    }
    if (flag == UpdateFlag::kExist) {
      return NotFoundError("key absent");
    }
    if (size_.load(std::memory_order_relaxed) >= spec().max_entries) {
      return ResourceExhaustedError("map full");
    }
    if (probe.insert == kNpos) {
      // Only reachable on clamped tables where every probeable slot is
      // live or an unreclaimable tombstone (a pinned reader holds the
      // epoch back). Capacity itself was checked above.
      return ResourceExhaustedError(
          "map slots saturated (clamped table, tombstones pinned by "
          "readers)");
    }
    if (probe.groups_probed >
        max_probe_groups_.load(std::memory_order_relaxed)) {
      max_probe_groups_.store(probe.groups_probed,
                              std::memory_order_relaxed);
    }
    const size_t slot = probe.insert;
    const bool reused_tombstone = GetCtrl(slot) == kDeleted;
    uint32_t cell = 0;
    if (!inline_values_) {
      cell = AllocCell();
    }
    const size_t group = GroupOf(slot);
    BeginWrite(group);
    StoreBytesRelaxed(KeyPtr(slot), key, spec().key_size);
    if (inline_values_) {
      StoreValueInPlace(InlineValuePtr(slot), value);
    } else {
      StoreValueInPlace(CellPtr(cell), value);
      slot_cell_[slot].store(cell, std::memory_order_relaxed);
    }
    SetCtrl(slot, H2(hash));
    EndWrite(group);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (reused_tombstone) {
      tombstones_.fetch_sub(1, std::memory_order_relaxed);
    }
    return OkStatus();
  }

  Status DoDelete(const void* key) override {
    const uint64_t hash = HashKey(key);
    std::lock_guard<std::mutex> lock(writer_mu_);
    const WriteProbe probe = ProbeForWrite(key, hash);
    if (probe.existing == kNpos) {
      return NotFoundError("key absent");
    }
    const size_t slot = probe.existing;
    if (retire_epochs_.empty()) {
      retire_epochs_.assign(slots_, 0);
    }
    const size_t group = GroupOf(slot);
    BeginWrite(group);
    SetCtrl(slot, kDeleted);
    EndWrite(group);
    // Advance AFTER the tombstone is published: the fetch_add is a full
    // fence, so any reader whose pin observes the advanced epoch (the
    // value this RMW created, or later) also sees the tombstone. Readers
    // pinned at strictly older epochs are caught by the MinPinned() scan.
    const uint64_t retire_epoch = epoch::Domain::Global().Advance();
    retire_epochs_[slot] = retire_epoch;
    if (!inline_values_) {
      retired_cells_.emplace_back(
          slot_cell_[slot].load(std::memory_order_relaxed), retire_epoch);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    tombstones_.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }

 private:
  static constexpr size_t kGroupWidth = 16;
  static constexpr uint8_t kEmpty = 0x80;
  static constexpr uint8_t kDeleted = 0xFE;
  static constexpr size_t kNpos = ~size_t{0};
  static constexpr uint32_t kInlineValueBytes = 16;
  static constexpr uint32_t kCellsPerChunk = 1024;

  struct GroupBits {
    uint32_t match = 0;
    uint32_t empty = 0;
  };

  struct WriteProbe {
    size_t existing = kNpos;
    size_t insert = kNpos;
    uint64_t groups_probed = 0;
  };

  static uint32_t RoundUp8(uint32_t n) { return (n + 7u) & ~7u; }
  static bool IsFull(uint8_t ctrl) { return (ctrl & 0x80u) == 0; }
  static uint8_t H2(uint64_t hash) {
    return static_cast<uint8_t>(hash & 0x7Fu);
  }
  static size_t GroupOf(size_t slot) { return slot / kGroupWidth; }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  size_t NumGroups() const { return slots_ / kGroupWidth; }

  uint64_t HashKey(const void* key) const {
    const uint32_t n = spec().key_size;
    if (n == sizeof(uint32_t) || n == sizeof(uint64_t)) {
      uint64_t k = 0;
      std::memcpy(&k, key, n);
      return Mix64(k);
    }
    return Fnv1a64(key, n);
  }

  size_t HomeGroup(uint64_t hash) const {
    return (hash >> 7) & group_mask_;
  }

  // --- shared-array accessors (readers race writers; see file comment) ---

  uint8_t GetCtrl(size_t slot) const {
    return std::atomic_ref<uint8_t>(ctrl_[slot])
        .load(std::memory_order_relaxed);
  }
  void SetCtrl(size_t slot, uint8_t v) {
    std::atomic_ref<uint8_t>(ctrl_[slot]).store(v,
                                                std::memory_order_relaxed);
  }

  uint8_t* KeyPtr(size_t slot) const {
    return reinterpret_cast<uint8_t*>(keys_.get()) + slot * key_stride_;
  }
  uint8_t* InlineValuePtr(size_t slot) const {
    return reinterpret_cast<uint8_t*>(values_.get()) + slot * value_stride_;
  }
  uint8_t* CellPtr(uint32_t cell) const {
    return reinterpret_cast<uint8_t*>(chunks_[cell / kCellsPerChunk].get()) +
           static_cast<size_t>(cell % kCellsPerChunk) * value_stride_;
  }
  uint8_t* ValuePtr(size_t slot) const {
    if (inline_values_) {
      return InlineValuePtr(slot);
    }
    return CellPtr(slot_cell_[slot].load(std::memory_order_relaxed));
  }

  // Relaxed-atomic byte copy: 8-byte chunks where alignment and size
  // allow, per-byte for the tail. Used for every store into slot storage
  // a racing reader may scan; relaxed atomic stores compile to the same
  // plain moves as memcpy, so this costs nothing over a memcpy while
  // keeping the protocol expressible to TSan.
  static void StoreBytesRelaxed(void* dst, const void* src, size_t n) {
    auto* d = static_cast<uint8_t*>(dst);
    const auto* s = static_cast<const uint8_t*>(src);
    size_t i = 0;
    if (reinterpret_cast<uintptr_t>(d) % 8 == 0) {
      for (; i + 8 <= n; i += 8) {
        uint64_t word;
        std::memcpy(&word, s + i, 8);
        std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(d + i))
            .store(word, std::memory_order_relaxed);
      }
    }
    for (; i < n; ++i) {
      std::atomic_ref<uint8_t>(d[i]).store(s[i], std::memory_order_relaxed);
    }
  }

  // In-place value store on (possibly live) storage. u64 values take one
  // atomic store so readers doing AtomicLoad never see a torn value;
  // wider values are chunk-wise relaxed (callers of multi-word values
  // coordinate content consistency themselves, as with eBPF map values).
  void StoreValueInPlace(uint8_t* dst, const void* value) {
    if (spec().value_size == sizeof(uint64_t)) {
      uint64_t v;
      std::memcpy(&v, value, sizeof(v));
      AtomicStore(dst, v);
      return;
    }
    StoreBytesRelaxed(dst, value, spec().value_size);
  }

  // --- group scanning ----------------------------------------------------

  // SWAR equal-byte detect over one 8-byte lane: high bit set per byte
  // equal to `tag`. Can false-positive on bytes ABOVE a true match in the
  // lane (borrow propagation) — benign here: match candidates are
  // re-checked by key compare, and a false "empty" bit implies a true
  // empty byte below it in the same lane, so the probe-stop verdict holds.
  static uint64_t MatchBytes(uint64_t lane, uint8_t tag) {
    const uint64_t pattern = 0x0101010101010101ULL * tag;
    const uint64_t x = lane ^ pattern;
    return (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
  }
  static uint32_t Mask8(uint64_t marked, int base) {
    uint32_t bits = 0;
    while (marked != 0) {
      bits |= 1u << (base + (std::countr_zero(marked) >> 3));
      marked &= marked - 1;
    }
    return bits;
  }

  GroupBits ScanGroup(size_t group, uint8_t tag) const {
    const uint8_t* base = ctrl_.get() + group * kGroupWidth;
    GroupBits out;
#if defined(__SSE2__) && !SYRUP_MAP_TSAN
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base));
    out.match = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(bytes, _mm_set1_epi8(static_cast<char>(tag)))));
    out.empty = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(bytes, _mm_set1_epi8(static_cast<char>(kEmpty)))));
#else
    uint64_t lo;
    uint64_t hi;
#if SYRUP_MAP_TSAN
    uint8_t snap[kGroupWidth];
    for (size_t i = 0; i < kGroupWidth; ++i) {
      snap[i] = std::atomic_ref<uint8_t>(const_cast<uint8_t&>(base[i]))
                    .load(std::memory_order_relaxed);
    }
    std::memcpy(&lo, snap, 8);
    std::memcpy(&hi, snap + 8, 8);
#else
    std::memcpy(&lo, base, 8);
    std::memcpy(&hi, base + 8, 8);
#endif
    out.match = Mask8(MatchBytes(lo, tag), 0) | Mask8(MatchBytes(hi, tag), 8);
    out.empty =
        Mask8(MatchBytes(lo, kEmpty), 0) | Mask8(MatchBytes(hi, kEmpty), 8);
#endif
    return out;
  }

  bool KeyMatchesReader(size_t slot, const void* key) const {
#if SYRUP_MAP_TSAN
    const uint8_t* stored = KeyPtr(slot);
    const auto* probe = static_cast<const uint8_t*>(key);
    for (uint32_t i = 0; i < spec().key_size; ++i) {
      const uint8_t b =
          std::atomic_ref<uint8_t>(const_cast<uint8_t&>(stored[i]))
              .load(std::memory_order_relaxed);
      if (b != probe[i]) {
        return false;
      }
    }
    return true;
#else
    return std::memcmp(KeyPtr(slot), key, spec().key_size) == 0;
#endif
  }

  // --- seqlock -----------------------------------------------------------

  void BeginWrite(size_t group) {
    std::atomic<uint32_t>& stamp = stamps_[group];
#if SYRUP_MAP_TSAN
    // TSan doesn't model thread fences; under it every slot access is an
    // atomic in its own right, so a seq_cst stamp bump carries the
    // ordering the fence provides in the fast build.
    stamp.fetch_add(1, std::memory_order_seq_cst);
#else
    stamp.store(stamp.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    // Order the odd stamp before the slot mutations: a reader that sees
    // any of them also sees the stamp and retries.
    std::atomic_thread_fence(std::memory_order_release);
#endif
  }
  void EndWrite(size_t group) {
    std::atomic<uint32_t>& stamp = stamps_[group];
    stamp.store(stamp.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // Lock-free probe. Returns the live value pointer or nullptr; never
  // blocks on writers (it spins only while a writer is inside the one
  // group it is currently scanning).
  void* FindValue(const void* key, uint64_t hash) const {
    const uint8_t tag = H2(hash);
    size_t group = HomeGroup(hash);
    for (size_t probe = 0; probe <= group_mask_; ++probe) {
      for (;;) {
        const uint32_t s1 = stamps_[group].load(std::memory_order_acquire);
        if ((s1 & 1u) != 0) {
          CpuRelax();
          continue;
        }
        const GroupBits bits = ScanGroup(group, tag);
        void* found = nullptr;
        for (uint32_t m = bits.match; m != 0; m &= m - 1) {
          const size_t slot = group * kGroupWidth +
                              static_cast<size_t>(std::countr_zero(m));
          if (KeyMatchesReader(slot, key)) {
            found = ValuePtr(slot);
            break;
          }
        }
        // Canonical seqlock validation: the acquire fence keeps the data
        // reads above from drifting past the second stamp load. (TSan
        // doesn't model fences; there the per-byte atomic data reads plus
        // an acquire stamp load carry the same ordering.)
#if SYRUP_MAP_TSAN
        const uint32_t s2 = stamps_[group].load(std::memory_order_acquire);
#else
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint32_t s2 = stamps_[group].load(std::memory_order_relaxed);
#endif
        if (s2 != s1) {
          continue;  // writer touched this group mid-scan: rescan
        }
        if (found != nullptr) {
          return found;
        }
        if (bits.empty != 0) {
          return nullptr;  // an empty slot ends every probe chain
        }
        break;  // stable group, no match, no empty: next group
      }
      group = (group + 1) & group_mask_;
    }
    return nullptr;
  }

  void PrefetchGroup(uint64_t hash) const {
    const size_t group = HomeGroup(hash);
    __builtin_prefetch(ctrl_.get() + group * kGroupWidth, 0, 3);
    __builtin_prefetch(KeyPtr(group * kGroupWidth), 0, 2);
    if (inline_values_) {
      __builtin_prefetch(InlineValuePtr(group * kGroupWidth), 0, 1);
    }
  }

  // --- writer-side probing (serialized by writer_mu_) --------------------

  // Byte-wise on purpose: writers are the slow path, and the SWAR false
  // positives documented on MatchBytes must not leak into the *choice* of
  // an insert slot (inserting into a false "empty" would corrupt a live
  // entry).
  WriteProbe ProbeForWrite(const void* key, uint64_t hash) {
    WriteProbe result;
    const uint8_t tag = H2(hash);
    size_t group = HomeGroup(hash);
    for (size_t probe = 0; probe <= group_mask_; ++probe) {
      result.groups_probed = probe + 1;
      const size_t base = group * kGroupWidth;
      for (size_t i = 0; i < kGroupWidth; ++i) {
        const uint8_t c = GetCtrl(base + i);
        if (c == tag &&
            std::memcmp(KeyPtr(base + i), key, spec().key_size) == 0) {
          result.existing = base + i;
          return result;
        }
        if (c == kEmpty) {
          // First empty ends the probe: an existing copy of the key can
          // never live past it (slots never revert to empty, and inserts
          // always take the first reusable slot in scan order).
          if (result.insert == kNpos) {
            result.insert = base + i;
          }
          return result;
        }
        if (c == kDeleted && result.insert == kNpos &&
            ReclaimableSlot(base + i)) {
          result.insert = base + i;
        }
      }
      group = (group + 1) & group_mask_;
    }
    return result;
  }

  bool ReclaimableSlot(size_t slot) {
    return !retire_epochs_.empty() && Reclaimable(retire_epochs_[slot]);
  }

  // True once no reader pinned before the retirement can remain: every
  // pin at epoch >= retire_epoch provably saw the tombstone (the retiring
  // Advance() is a full fence after the tombstone store), so only pins
  // strictly below it are dangerous, and the horizon scan waits those
  // out. The horizon is monotone, so a cached verdict never regresses —
  // recomputation (a 128-slot scan) happens at most once per op.
  bool Reclaimable(uint64_t retire_epoch) {
    if (reclaim_horizon_ >= retire_epoch) {
      return true;
    }
    epoch::Domain& domain = epoch::Domain::Global();
    const uint64_t min = domain.MinPinned();
    const uint64_t horizon =
        min == epoch::kNoReaders ? domain.current() : min;
    if (horizon > reclaim_horizon_) {
      reclaim_horizon_ = horizon;
    }
    return reclaim_horizon_ >= retire_epoch;
  }

  // --- spilled-value slab (value_size > 16) ------------------------------
  //
  // Chunks are never freed or moved, so cell pointers are stable for the
  // map's lifetime. Retired cells keep their retire metadata EXTERNAL to
  // the cell (a deque, not freelist links written into dead cells): a
  // stale reader may still scan the old bytes, and the old bytes must
  // stay exactly "the old value", never a freelist pointer.
  uint32_t AllocCell() {
    while (!retired_cells_.empty() &&
           Reclaimable(retired_cells_.front().second)) {
      free_cells_.push_back(retired_cells_.front().first);
      retired_cells_.pop_front();
    }
    if (!free_cells_.empty()) {
      const uint32_t cell = free_cells_.back();
      free_cells_.pop_back();
      return cell;
    }
    if (next_cell_ == chunks_.size() * kCellsPerChunk) {
      chunks_.push_back(std::make_unique<uint64_t[]>(
          static_cast<size_t>(kCellsPerChunk) * cell_stride_u64_));
    }
    return next_cell_++;
  }

  // --- geometry (fixed at construction) ----------------------------------
  uint64_t slots_ = 0;
  size_t group_mask_ = 0;
  uint32_t key_stride_ = 0;
  uint32_t value_stride_ = 0;
  uint32_t cell_stride_u64_ = 0;
  bool inline_values_ = true;

  // --- slot arrays (readers race writers through the seqlock) ------------
  std::unique_ptr<uint8_t[]> ctrl_;
  std::unique_ptr<std::atomic<uint32_t>[]> stamps_;
  std::unique_ptr<uint64_t[]> keys_;
  std::unique_ptr<uint64_t[]> values_;  // inline values only
  std::unique_ptr<std::atomic<uint32_t>[]> slot_cell_;  // slab values only

  // --- writer state (guarded by writer_mu_) ------------------------------
  std::mutex writer_mu_;
  std::vector<std::unique_ptr<uint64_t[]>> chunks_;
  std::vector<uint32_t> free_cells_;
  std::deque<std::pair<uint32_t, uint64_t>> retired_cells_;
  uint32_t next_cell_ = 0;
  std::vector<uint64_t> retire_epochs_;  // sized lazily on first delete
  uint64_t reclaim_horizon_ = 0;

  // --- stats (relaxed; written under writer_mu_, read anywhere) ----------
  std::atomic<uint32_t> size_{0};
  std::atomic<uint64_t> tombstones_{0};
  std::atomic<uint64_t> max_probe_groups_{0};
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_HASH_MAP_H_
