// Prog-array map: u32 index -> program id, for tail calls.
//
// syrupd's isolation design (paper §4.3) loads each application's policy
// into a PROG_ARRAY and installs a root dispatcher that tail-calls into the
// entry matching the packet's destination port. Entries here hold opaque
// program ids assigned by the program registry in src/core.
#ifndef SYRUP_SRC_MAP_PROG_ARRAY_H_
#define SYRUP_SRC_MAP_PROG_ARRAY_H_

#include <atomic>
#include <vector>

#include "src/map/map.h"

namespace syrup {

inline constexpr uint64_t kNoProgram = 0;  // prog ids are 1-based

class ProgArrayMap : public Map {
 public:
  explicit ProgArrayMap(MapSpec spec)
      : Map(std::move(spec)), slots_(this->spec().max_entries) {
    for (auto& slot : slots_) {
      slot.store(kNoProgram, std::memory_order_relaxed);
    }
  }

  void* DoLookup(const void* key) override {
    const uint32_t index = LoadKey(key);
    if (index >= slots_.size()) {
      return nullptr;
    }
    // Exposes the atomic slot directly; callers read with AtomicLoad.
    return &slots_[index];
  }

  Status DoUpdate(const void* key, const void* value, UpdateFlag flag) override {
    if (flag == UpdateFlag::kNoExist) {
      return AlreadyExistsError("prog array entries always exist");
    }
    const uint32_t index = LoadKey(key);
    if (index >= slots_.size()) {
      return OutOfRangeError("prog array index out of bounds");
    }
    uint64_t prog_id;
    std::memcpy(&prog_id, value, sizeof(prog_id));
    slots_[index].store(prog_id, std::memory_order_release);
    return OkStatus();
  }

  Status DoDelete(const void* key) override {
    const uint32_t index = LoadKey(key);
    if (index >= slots_.size()) {
      return OutOfRangeError("prog array index out of bounds");
    }
    slots_[index].store(kNoProgram, std::memory_order_release);
    return OkStatus();
  }

  uint32_t Size() const override {
    uint32_t live = 0;
    for (const auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) != kNoProgram) {
        ++live;
      }
    }
    return live;
  }

  void Visit(const VisitFn& fn) override {
    for (uint32_t index = 0; index < slots_.size(); ++index) {
      uint64_t value = slots_[index].load(std::memory_order_relaxed);
      if (value != kNoProgram) {
        fn(&index, &value);
      }
    }
  }

  // Typed accessor used by the dispatcher hot path.
  uint64_t ProgramAt(uint32_t index) const {
    if (index >= slots_.size()) {
      return kNoProgram;
    }
    return slots_[index].load(std::memory_order_acquire);
  }

 private:
  static uint32_t LoadKey(const void* key) {
    uint32_t index;
    std::memcpy(&index, key, sizeof(index));
    return index;
  }

  std::vector<std::atomic<uint64_t>> slots_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_PROG_ARRAY_H_
