#include "src/map/registry.h"

namespace syrup {

Status MapRegistry::Pin(const std::string& path, std::shared_ptr<Map> map,
                        Uid owner, PinMode mode) {
  if (map == nullptr) {
    return InvalidArgumentError("null map");
  }
  if (path.empty()) {
    return InvalidArgumentError("empty pin path");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      pins_.try_emplace(path, Entry{std::move(map), owner, mode});
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("pin path already in use: " + path);
  }
  return OkStatus();
}

StatusOr<std::shared_ptr<Map>> MapRegistry::Open(const std::string& path,
                                                 Uid uid, MapAccess access) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(path);
  if (it == pins_.end()) {
    return NotFoundError("no map pinned at " + path);
  }
  const Entry& entry = it->second;
  if (uid != entry.owner) {
    const bool allowed = access == MapAccess::kRead
                             ? entry.mode.world_readable
                             : entry.mode.world_writable;
    if (!allowed) {
      return PermissionDeniedError("uid " + std::to_string(uid) +
                                   " may not access map at " + path);
    }
  }
  return entry.map;
}

Status MapRegistry::Unpin(const std::string& path, Uid uid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(path);
  if (it == pins_.end()) {
    return NotFoundError("no map pinned at " + path);
  }
  if (it->second.owner != uid) {
    return PermissionDeniedError("only the owner may unpin " + path);
  }
  pins_.erase(it);
  return OkStatus();
}

std::string MapRegistry::PathOf(const Map* map) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, entry] : pins_) {
    if (entry.map.get() == map) {
      return path;
    }
  }
  return "";
}

std::vector<std::string> MapRegistry::ListPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(pins_.size());
  for (const auto& [path, entry] : pins_) {
    paths.push_back(path);
  }
  return paths;
}

}  // namespace syrup
