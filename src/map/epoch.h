// Epoch-based reclamation for the lock-free map read path.
//
// The swiss-table HashMap (src/map/hash_map.h) never frees value storage
// while the map lives, so a stale pointer can never touch unmapped memory.
// What epochs gate is *reuse*: a deleted slot (and its spilled slab cell)
// must not be handed to a new key while a reader that found the old entry
// may still dereference the pointer it got. The protocol is classic EBR:
//
//   * readers Pin() the global epoch before probing and Unpin() after the
//     last dereference (Syrupd pins once per dispatch batch; the VM helper
//     paths pin around each program run via the same guard),
//   * Delete marks the slot as a tombstone, records the current epoch as
//     the slot's retire epoch, then Advance()s the global epoch,
//   * a writer may reuse a retired slot only once every pinned reader's
//     epoch is strictly greater than the retire epoch (MinPinned() > R).
//
// Safety argument, matching the two ways a reader can hold a pointer:
//   - pinned at epoch <= R: the reader's pin slot is visible to the
//     writer's MinPinned() scan (the pin confirms the global epoch with a
//     seq_cst store/load pair), so the writer waits.
//   - pinned at epoch  > R: the confirming load observed Advance()'s
//     seq_cst increment, which the deleting writer issued only after
//     publishing the tombstone; the reader's probe therefore sees the
//     tombstone and never obtains the dead entry's pointer.
// Unpinned readers get eBPF preallocated-map semantics: the memory stays
// valid (never freed), but a long-held pointer may observe a slot recycled
// for a different key. DESIGN.md "Map data plane" spells out the contract.
//
// One process-wide domain keeps the read side trivial: Pin() is two
// uncontended atomic stores on a thread-private cache line, which is cheap
// enough to take once per 64-packet dispatch batch without showing up in
// Table 3.
#ifndef SYRUP_SRC_MAP_EPOCH_H_
#define SYRUP_SRC_MAP_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace syrup::epoch {

inline constexpr uint64_t kNoReaders = ~uint64_t{0};

class Domain {
 public:
  static Domain& Global() {
    static Domain domain;
    return domain;
  }

  // Pins the calling thread at the current epoch; nestable (inner pins
  // keep the outermost epoch, which is the conservative one). Returns the
  // pinned epoch.
  uint64_t Pin() {
    ThreadSlot& t = Slot();
    if (t.index == kNoSlot) {  // registry exhausted: run unpinned
      return epoch_.load(std::memory_order_seq_cst);
    }
    if (t.depth++ > 0) {
      return slots_[t.index].epoch.load(std::memory_order_relaxed);
    }
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slots_[t.index].epoch.store(e, std::memory_order_seq_cst);
      const uint64_t again = epoch_.load(std::memory_order_seq_cst);
      if (again == e) {
        return e;
      }
      e = again;  // raced an Advance: re-confirm so MinPinned stays sound
    }
  }

  void Unpin() {
    ThreadSlot& t = Slot();
    if (t.index == kNoSlot) {
      return;
    }
    if (--t.depth == 0) {
      slots_[t.index].epoch.store(0, std::memory_order_release);
    }
  }

  uint64_t current() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // Bumps the global epoch (writers call this after retiring storage).
  uint64_t Advance() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Smallest epoch any reader is pinned at; kNoReaders when none are.
  // Storage retired at epoch R is reusable once MinPinned() > R.
  uint64_t MinPinned() const {
    uint64_t min = kNoReaders;
    for (const PinSlot& s : slots_) {
      const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) {
        min = e;
      }
    }
    return min;
  }

  // How far the slowest pinned reader trails the global epoch (0 when no
  // reader is pinned). Published as the per-map `epoch_lag` gauge.
  uint64_t Lag() const {
    const uint64_t min = MinPinned();
    if (min == kNoReaders) {
      return 0;
    }
    const uint64_t cur = current();
    return cur > min ? cur - min : 0;
  }

 private:
  // Bounded reader registry: each thread claims one pin slot exclusively on
  // first Pin() and releases it at thread exit, so slots recycle under
  // thread churn. A slot is never shared — two writers on one slot would
  // overwrite each other's pin and make MinPinned() under-conservative.
  // kSlots comfortably exceeds the thread counts the sharded sim and the
  // contended benches run; a thread that finds every slot claimed runs
  // unpinned (eBPF preallocated-map semantics, see the header comment).
  static constexpr size_t kSlots = 128;
  static constexpr size_t kNoSlot = ~size_t{0};

  struct alignas(64) PinSlot {
    std::atomic<uint64_t> epoch{0};  // 0 = not pinned
    std::atomic<bool> owned{false};
  };

  struct ThreadSlot {
    explicit ThreadSlot(Domain& dom) : domain(dom) {
      for (size_t i = 0; i < kSlots; ++i) {
        bool expected = false;
        if (domain.slots_[i].owned.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          index = i;
          return;
        }
      }
    }
    ~ThreadSlot() {
      if (index != kNoSlot) {
        domain.slots_[index].epoch.store(0, std::memory_order_release);
        domain.slots_[index].owned.store(false, std::memory_order_release);
      }
    }

    Domain& domain;
    size_t index = kNoSlot;
    uint32_t depth = 0;
  };

  Domain() = default;

  ThreadSlot& Slot() {
    thread_local ThreadSlot slot(*this);
    return slot;
  }

  // Epoch 1-based so 0 can mean "not pinned" in the slots.
  std::atomic<uint64_t> epoch_{1};
  PinSlot slots_[kSlots];
};

// RAII pin on the global domain. Syrupd holds one across each dispatch
// batch; standalone map users (tests, benches, userspace agents) take one
// around any window where a Lookup pointer outlives the call.
class ReadGuard {
 public:
  ReadGuard() { Domain::Global().Pin(); }
  ~ReadGuard() { Domain::Global().Unpin(); }

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
};

}  // namespace syrup::epoch

#endif  // SYRUP_SRC_MAP_EPOCH_H_
