// Offloaded-map proxy: models a map resident on a programmable NIC.
//
// Policies running *on* the NIC reach its map at local-memory cost, but
// userspace access crosses PCIe: the paper measures ~24-25 µs per operation
// on the Netronome (Table 3) vs ~1 µs for host maps. This proxy wraps any
// host map and charges a configurable access latency on every userspace
// operation (busy-wait, like the blocking MMIO read it stands in for), so
// Table 3 can be regenerated and applications can be tested against
// realistic offload costs.
#ifndef SYRUP_SRC_MAP_OFFLOAD_PROXY_H_
#define SYRUP_SRC_MAP_OFFLOAD_PROXY_H_

#include <chrono>
#include <memory>

#include "src/map/map.h"

namespace syrup {

class OffloadMapProxy : public Map {
 public:
  // `pcie_round_trip` is wall-clock time charged per operation.
  OffloadMapProxy(std::shared_ptr<Map> backing,
                  std::chrono::nanoseconds pcie_round_trip)
      : Map(backing->spec()),
        backing_(std::move(backing)),
        round_trip_(pcie_round_trip) {}

  void* DoLookup(const void* key) override {
    ChargeRoundTrip();
    return backing_->Lookup(key);
  }

  Status DoUpdate(const void* key, const void* value, UpdateFlag flag) override {
    ChargeRoundTrip();
    return backing_->Update(key, value, flag);
  }

  Status DoDelete(const void* key) override {
    ChargeRoundTrip();
    return backing_->Delete(key);
  }

  uint32_t Size() const override { return backing_->Size(); }

  void Visit(const VisitFn& fn) override {
    ChargeRoundTrip();  // one bulk-dump crossing
    backing_->Visit(fn);
  }

  const Map& backing() const { return *backing_; }

 private:
  void ChargeRoundTrip() const {
    const auto deadline = std::chrono::steady_clock::now() + round_trip_;
    while (std::chrono::steady_clock::now() < deadline) {
      // Spin: an MMIO read stalls the issuing core just like this.
    }
  }

  std::shared_ptr<Map> backing_;
  std::chrono::nanoseconds round_trip_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_MAP_OFFLOAD_PROXY_H_
