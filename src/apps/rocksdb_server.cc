#include "src/apps/rocksdb_server.h"

#include "src/common/logging.h"

namespace syrup {

RocksDbServer::RocksDbServer(Simulator& sim, HostStack& stack,
                             Machine& machine, RocksDbConfig config)
    : sim_(sim), stack_(stack), machine_(machine), config_(config),
      rng_(config.seed) {
  SYRUP_CHECK_GT(config_.num_threads, 0);
  ReuseportGroup* group = stack.GetOrCreateGroup(config_.port);
  workers_.resize(static_cast<size_t>(config_.num_threads));
  for (int i = 0; i < config_.num_threads; ++i) {
    Worker& worker = workers_[static_cast<size_t>(i)];
    worker.index = static_cast<uint32_t>(i);
    worker.socket = group->AddSocket(config_.socket_depth);
    worker.thread =
        machine.CreateThread("rocksdb-" + std::to_string(i));
    worker.thread->SetSegmentDoneCallback(
        [this, &worker]() { OnSegmentDone(worker); });
    worker.socket->SetWakeCallback([this, &worker]() { OnWake(worker); });
    // Every socket starts in the "serving GET" state so SCAN Avoid treats
    // idle sockets as schedulable.
    if (config_.scan_map != nullptr) {
      SYRUP_CHECK_OK(config_.scan_map->UpdateU64(
          worker.index, static_cast<uint64_t>(ReqType::kGet)));
    }
    // All workers start blocked in recvmsg: under late binding their
    // sockets are immediately available executors.
    stack_.NotifySocketIdle(config_.port, worker.socket);
  }
}

Duration RocksDbServer::ServiceTime(ReqType type) {
  switch (type) {
    case ReqType::kGet:
      return UniformDuration(config_.get_lo, config_.get_hi).Sample(rng_);
    case ReqType::kScan:
      return UniformDuration(config_.scan_lo, config_.scan_hi).Sample(rng_);
    case ReqType::kPut:
      return UniformDuration(config_.put_lo, config_.put_hi).Sample(rng_);
  }
  return config_.get_lo;
}

void RocksDbServer::PublishType(const Worker& worker, ReqType type) {
  // Fig. 5b: tell the SCAN Avoid kernel policy what this socket is serving.
  if (config_.scan_map != nullptr) {
    SYRUP_CHECK_OK(config_.scan_map->UpdateU64(
        worker.index, static_cast<uint64_t>(type)));
  }
  // §5.3: tell the ghOSt GET-priority policy what this thread is serving.
  if (config_.thread_type_map != nullptr) {
    SYRUP_CHECK_OK(config_.thread_type_map->UpdateU64(
        static_cast<uint32_t>(worker.thread->tid()),
        static_cast<uint64_t>(type)));
  }
}

void RocksDbServer::StartRequest(Worker& worker, const Packet& pkt) {
  worker.current = pkt;
  worker.busy = true;
  PublishType(worker, pkt.req_type());
  machine_.AddWork(worker.thread,
                   config_.request_overhead + ServiceTime(pkt.req_type()));
}

void RocksDbServer::OnWake(Worker& worker) {
  // recvmsg returns: a blocked worker picks up the datagram and runs.
  if (worker.thread->state() != Thread::State::kBlocked || worker.busy) {
    return;
  }
  auto pkt = worker.socket->Dequeue();
  if (!pkt.has_value()) {
    return;
  }
  StartRequest(worker, *pkt);
  machine_.Wake(worker.thread);
}

void RocksDbServer::OnSegmentDone(Worker& worker) {
  SYRUP_CHECK(worker.busy);
  const Packet& done = worker.current;
  const ReqType type = done.req_type();
  const Time completion = sim_.Now() + config_.wire_delay;
  const uint64_t latency =
      completion > done.send_time() ? completion - done.send_time() : 0;
  switch (type) {
    case ReqType::kGet:
      get_latency_.Record(latency);
      ++completed_get_;
      break;
    case ReqType::kScan:
      scan_latency_.Record(latency);
      ++completed_scan_;
      break;
    case ReqType::kPut:
      put_latency_.Record(latency);
      ++completed_put_;
      break;
  }
  overall_latency_.Record(latency);
  ++completed_;
  UserStats& user = user_stats_[done.user_id()];
  user.latency.Record(latency);
  ++user.completed;
  worker.busy = false;
  PublishType(worker, ReqType::kGet);  // back to "short work" state
  if (on_complete_) {
    on_complete_(done, completion);
  }

  auto next = worker.socket->Dequeue();
  if (next.has_value()) {
    StartRequest(worker, *next);  // keep running: FCFS on this socket
  } else {
    machine_.Block(worker.thread);
    // recvmsg found nothing: the executor is available again (late
    // binding's trigger, a no-op for early-binding ports).
    stack_.NotifySocketIdle(config_.port, worker.socket);
  }
}

const Histogram& RocksDbServer::latency(ReqType type) const {
  switch (type) {
    case ReqType::kGet:
      return get_latency_;
    case ReqType::kScan:
      return scan_latency_;
    case ReqType::kPut:
      return put_latency_;
  }
  return get_latency_;
}

uint64_t RocksDbServer::completed(ReqType type) const {
  switch (type) {
    case ReqType::kGet:
      return completed_get_;
    case ReqType::kScan:
      return completed_scan_;
    case ReqType::kPut:
      return completed_put_;
  }
  return 0;
}

const Histogram& RocksDbServer::user_latency(uint32_t user_id) {
  return user_stats_[user_id].latency;
}

uint64_t RocksDbServer::user_completed(uint32_t user_id) const {
  auto it = user_stats_.find(user_id);
  return it == user_stats_.end() ? 0 : it->second.completed;
}

void RocksDbServer::ResetStats() {
  get_latency_.Reset();
  scan_latency_.Reset();
  put_latency_.Reset();
  overall_latency_.Reset();
  completed_ = completed_get_ = completed_scan_ = completed_put_ = 0;
  user_stats_.clear();
}

uint64_t RocksDbServer::socket_drops() const {
  uint64_t drops = 0;
  for (const Worker& worker : workers_) {
    drops += worker.socket->dropped();
  }
  return drops;
}

}  // namespace syrup
