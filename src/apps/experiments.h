// Experiment harness: wires simulator + stack + syrupd + policies + servers
// + load generators for each of the paper's evaluation scenarios. One
// function per experiment family; the bench binaries sweep these over load
// and print the paper's rows, and integration tests assert the headline
// shapes (who wins, where the crossovers are).
#ifndef SYRUP_SRC_APPS_EXPERIMENTS_H_
#define SYRUP_SRC_APPS_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/mica_server.h"
#include "src/bpf/compiler.h"
#include "src/common/time.h"
#include "src/core/flow_cache.h"
#include "src/sim/sharded.h"

namespace syrup {

// --- Sharded parallel runs ---------------------------------------------------
//
// sim.shards == 0 (the default) keeps the pre-existing single-engine path,
// byte for byte. sim.shards >= 1 executes the experiment on a ShardedSim:
// shard 0 hosts the original topology and shards 1..N-1 host replicas
// (weak scaling — each shard runs the configured load against its own
// complete host), with per-shard seeds derived so shard 0 reproduces the
// unsharded run exactly; shards == 1 is therefore bit-identical to the
// single-engine path. With shards > 1, `cross_traffic` of each shard's
// requests is generated east-west: the packet enters the next shard's
// stack through the inter-shard channels after `cross_link_latency` (which
// must be >= sim.lookahead). Reported results aggregate all shards
// deterministically (histograms merged in shard order).
struct ExperimentShardingConfig {
  ShardedSimConfig sim{.shards = 0};
  double cross_traffic = 0.05;  // east-west fraction, shards > 1 only
  Duration cross_link_latency = 5 * kMicrosecond;
};

// Socket-select policies of §5.2 (Fig. 2 / Fig. 6).
enum class SocketPolicyKind {
  kVanilla,     // no Syrup policy: kernel 5-tuple hash
  kRoundRobin,  // Fig. 5a
  kScanAvoid,   // Fig. 5c (+5b userspace half)
  kSita,        // Fig. 5d
};

std::string_view SocketPolicyName(SocketPolicyKind kind);

// Thread scheduling variants of §5.3 (Fig. 8).
enum class ThreadSchedKind {
  kPinned,            // 1:1 threads:cores (Figs. 2/6/7/9)
  kCfs,               // Linux-default baseline for shared cores
  kGhostGetPriority,  // Syrup policy deployed via ghOSt
};

struct RocksDbExperimentConfig {
  SocketPolicyKind socket_policy = SocketPolicyKind::kVanilla;
  ThreadSchedKind thread_sched = ThreadSchedKind::kPinned;
  // Deploy the bytecode policy file through syrupd instead of the native
  // mirror (slower to simulate; used by the ablation bench and tests).
  bool use_bytecode = false;
  // Execution tier for bytecode deployments (ignored without use_bytecode).
  bpf::ExecMode exec_mode = bpf::ExecMode::kCompiled;
  // Flow-decision cache (src/core/flow_cache.h). Cacheable policies are
  // pure, so results are bit-identical either way (asserted by
  // tests/flow_cache_differential_test.cc); disabling is the ablation.
  // The full knob set (capacity, admission, adaptive sizing) lives here;
  // `flow_cache` below is the deprecated enabled-only toggle, still
  // honored by AND-ing into flow_cache_config.enabled.
  FlowCacheConfig flow_cache_config;
  bool flow_cache = true;  // deprecated: use flow_cache_config.enabled
  // Late binding at the socket layer (paper §6.3 extension): buffer
  // datagrams centrally and match them to sockets whose worker is idle.
  bool late_binding = false;
  // CPU Redirect spray policy: round-robin protocol processing across
  // softirq cores (work-conserving but affinity-destroying; the §2.1
  // RFS tension). Used with protocol_cold_penalty > 0.
  bool cpu_redirect_spray = false;
  Duration protocol_cold_penalty = 0;
  double flow_skew = 0.0;

  int num_threads = 6;
  int num_cores = 6;
  double load_rps = 100'000;   // per shard when sharding.sim.shards >= 1
  double get_fraction = 1.0;   // remainder are SCANs
  uint32_t num_flows = 50;
  Duration warmup = 200 * kMillisecond;
  Duration measure = 1 * kSecond;
  uint64_t seed = 1;
  ExperimentShardingConfig sharding;
};

struct RocksDbResult {
  double load_rps = 0;
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;        // overall
  double p99_get_us = 0;
  double p99_scan_us = 0;
  double drop_fraction = 0;  // of generated requests
  double get_throughput_rps = 0;
  double scan_throughput_rps = 0;
  // Full Syrupd::StatsSnapshot() of the run, rendered to JSON
  // (docs/OBSERVABILITY.md schema). `experiment_cli --stats-json` prints it.
  std::string stats_json;
};

RocksDbResult RunRocksDbExperiment(const RocksDbExperimentConfig& config);

// --- Fig. 7: token-based QoS ------------------------------------------------

struct TokenQosConfig {
  double ls_load_rps = 100'000;
  double be_load_rps = 300'000;
  bool token_policy = true;  // false = plain round robin (the comparison)
  double token_rate_per_sec = 350'000;
  Duration epoch = 100 * kMicrosecond;
  int num_threads = 6;
  Duration warmup = 200 * kMillisecond;
  Duration measure = 1 * kSecond;
  uint64_t seed = 1;
};

struct TokenQosResult {
  double ls_load_rps = 0;
  double be_load_rps = 0;
  double ls_throughput_rps = 0;
  double be_throughput_rps = 0;
  double ls_p99_us = 0;
  double be_p99_us = 0;
  std::string stats_json;  // Syrupd::StatsSnapshot() of the run, as JSON
};

TokenQosResult RunTokenQosExperiment(const TokenQosConfig& config);

// --- Fig. 9: MICA across hooks ----------------------------------------------

struct MicaExperimentConfig {
  MicaVariant variant = MicaVariant::kSwRedirect;
  double load_rps = 1'000'000;
  double get_fraction = 0.95;  // remainder are PUTs
  int num_threads = 8;
  bool use_bytecode = false;
  // Execution tier for bytecode deployments (ignored without use_bytecode).
  bpf::ExecMode exec_mode = bpf::ExecMode::kCompiled;
  // Flow-decision cache knobs (see RocksDbExperimentConfig).
  FlowCacheConfig flow_cache_config;
  bool flow_cache = true;  // deprecated: use flow_cache_config.enabled
  Duration warmup = 100 * kMillisecond;
  Duration measure = 500 * kMillisecond;
  uint64_t seed = 1;
  ExperimentShardingConfig sharding;
};

struct MicaResult {
  double load_rps = 0;
  double throughput_rps = 0;
  double p999_us = 0;
  double p50_us = 0;
  double drop_fraction = 0;
  uint64_t redirected = 0;
  std::string stats_json;  // Syrupd::StatsSnapshot() of the run, as JSON
};

MicaResult RunMicaExperiment(const MicaExperimentConfig& config);

}  // namespace syrup

#endif  // SYRUP_SRC_APPS_EXPERIMENTS_H_
