#include "src/apps/loadgen.h"

#include "src/common/logging.h"

namespace syrup {
namespace {

std::vector<double> MixWeights(
    const std::vector<std::pair<ReqType, double>>& mix) {
  SYRUP_CHECK(!mix.empty());
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& [type, weight] : mix) {
    weights.push_back(weight);
  }
  return weights;
}

}  // namespace

LoadGenerator::LoadGenerator(Simulator& sim, HostStack& stack,
                             LoadGenConfig config)
    : LoadGenerator(sim, [&stack](Packet pkt) { stack.Rx(std::move(pkt)); },
                    std::move(config)) {}

LoadGenerator::LoadGenerator(Simulator& sim, SinkFn sink,
                             LoadGenConfig config)
    : sim_(sim),
      sink_(std::move(sink)),
      config_(config),
      rng_(config.seed),
      inter_arrival_(config.rate_rps),
      type_picker_(MixWeights(config.mix)),
      flow_picker_(config.num_flows, config.flow_skew) {
  SYRUP_CHECK_GT(config_.num_flows, 0u);
  flows_.reserve(config_.num_flows);
  for (uint32_t i = 0; i < config_.num_flows; ++i) {
    FiveTuple tuple;
    tuple.src_ip = 0x0a000000u + (config_.user_id << 12) + i;
    tuple.dst_ip = 0x0a0000ffu;
    tuple.src_port = static_cast<uint16_t>(20'000 + i);
    tuple.dst_port = config_.dst_port;
    flows_.push_back(tuple);
  }
}

void LoadGenerator::Start(Time until) {
  until_ = until;
  ScheduleNext();
}

void LoadGenerator::ScheduleNext() {
  const Duration gap = inter_arrival_.Sample(rng_);
  const Time next = sim_.Now() + gap;
  if (next >= until_) {
    return;
  }
  sim_.ScheduleAt(next, [this]() {
    Emit();
    ScheduleNext();
  });
}

void LoadGenerator::Emit() {
  Packet pkt;
  pkt.tuple = flows_[flow_picker_.Sample(rng_)];
  const ReqType type = config_.mix[type_picker_.Sample(rng_)].first;
  const uint32_t key_hash =
      static_cast<uint32_t>(rng_.NextBounded(config_.key_space));
  // The client stamped the packet wire_delay ago; it has just arrived.
  const Time send_time =
      sim_.Now() >= config_.wire_delay ? sim_.Now() - config_.wire_delay : 0;
  pkt.SetHeader(type, config_.user_id, key_hash, next_req_id_++, send_time);
  ++sent_;
  sink_(std::move(pkt));
}

}  // namespace syrup
