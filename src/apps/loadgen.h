// Open-loop load generator (mutilate-like, paper §5.1.2).
//
// Generates Poisson arrivals at a configured rate over a small set of
// 5-tuples (the paper uses ~50 flows; few flows + hash steering is what
// exposes the RSS imbalance of Fig. 2). Each request carries type, user id,
// key hash, id, and a send timestamp; latency is measured by the server at
// completion, adding the return wire delay.
#ifndef SYRUP_SRC_APPS_LOADGEN_H_
#define SYRUP_SRC_APPS_LOADGEN_H_

#include <functional>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/rng.h"
#include "src/net/stack.h"
#include "src/sim/simulator.h"

namespace syrup {

struct LoadGenConfig {
  double rate_rps = 100'000;
  uint16_t dst_port = 9000;
  uint32_t num_flows = 50;
  uint32_t user_id = 0;
  // (type, weight) pairs; e.g. {{kGet, 99.5}, {kScan, 0.5}}.
  std::vector<std::pair<ReqType, double>> mix = {{ReqType::kGet, 1.0}};
  uint32_t key_space = 1u << 20;  // key hashes drawn uniformly
  // Zipf skew across flows (0 = uniform); heavy flows stress per-flow
  // steering policies (RSS/RFS imbalance).
  double flow_skew = 0.0;
  Duration wire_delay = 5 * kMicrosecond;  // one way client <-> server
  uint64_t seed = 42;
};

class LoadGenerator {
 public:
  // Packets are emitted into `sink` (e.g. HostStack::Rx, or a switch
  // uplink in rack-level setups).
  using SinkFn = std::function<void(Packet)>;

  LoadGenerator(Simulator& sim, SinkFn sink, LoadGenConfig config);
  LoadGenerator(Simulator& sim, HostStack& stack, LoadGenConfig config);

  // Emits arrivals into the stack from now until `until` (exclusive).
  void Start(Time until);

  uint64_t sent() const { return sent_; }
  const LoadGenConfig& config() const { return config_; }

 private:
  void ScheduleNext();
  void Emit();

  Simulator& sim_;
  SinkFn sink_;
  LoadGenConfig config_;
  Rng rng_;
  ExponentialDuration inter_arrival_;
  DiscreteIndex type_picker_;
  ZipfIndex flow_picker_;
  std::vector<FiveTuple> flows_;
  Time until_ = 0;
  uint64_t sent_ = 0;
  uint64_t next_req_id_ = 1;
};

}  // namespace syrup

#endif  // SYRUP_SRC_APPS_LOADGEN_H_
