// RocksDB-like request server (paper §5.1.2).
//
// Reproduces the scheduling-relevant structure of the paper's RocksDB
// deployment: N server threads, each with its own SO_REUSEPORT socket on a
// shared UDP port, serving GETs of 10-12 µs and SCANs of ~700 µs. The
// storage engine itself is irrelevant to the experiments (all queries hit
// DRAM), so requests are modeled purely by their service-time demand.
//
// The server also implements the *userspace halves* of the paper's
// policies:
//   * Fig. 5b — updates `scan_map` (socket index -> request type) when a
//     thread starts/finishes a SCAN, feeding the SCAN Avoid kernel policy.
//   * §5.3   — updates `thread_type_map` (tid -> request type) feeding the
//     GET-priority ghOSt policy.
#ifndef SYRUP_SRC_APPS_ROCKSDB_SERVER_H_
#define SYRUP_SRC_APPS_ROCKSDB_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/distributions.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/net/stack.h"
#include "src/sched/machine.h"
#include "src/sim/simulator.h"

namespace syrup {

struct RocksDbConfig {
  int num_threads = 6;
  uint16_t port = 9000;
  size_t socket_depth = 128;
  // Service-time ranges (uniform), per §5.1.2.
  Duration get_lo = 10 * kMicrosecond, get_hi = 12 * kMicrosecond;
  Duration scan_lo = 690 * kMicrosecond, scan_hi = 710 * kMicrosecond;
  Duration put_lo = 10 * kMicrosecond, put_hi = 12 * kMicrosecond;
  Duration wire_delay = 5 * kMicrosecond;  // server -> client
  // Per-request kernel overhead on the worker core (recvmsg + sendmsg +
  // wakeup); puts the 6-core saturation point near the paper's ~400-450k.
  Duration request_overhead = 2500;
  uint64_t seed = 7;
  // Optional userspace-half maps (see file comment).
  std::shared_ptr<Map> scan_map;
  std::shared_ptr<Map> thread_type_map;
};

class RocksDbServer {
 public:
  // Creates num_threads sockets on config.port and num_threads machine
  // threads wired 1:1 to them. The machine's scheduler decides placement.
  RocksDbServer(Simulator& sim, HostStack& stack, Machine& machine,
                RocksDbConfig config);

  RocksDbServer(const RocksDbServer&) = delete;
  RocksDbServer& operator=(const RocksDbServer&) = delete;

  // --- statistics ---------------------------------------------------------

  const Histogram& latency(ReqType type) const;
  const Histogram& overall_latency() const { return overall_latency_; }
  uint64_t completed() const { return completed_; }
  uint64_t completed(ReqType type) const;

  // Clears latency/throughput stats (call after warmup).
  void ResetStats();

  // Total socket-level drops across the server's sockets.
  uint64_t socket_drops() const;

  // Per-user latency/throughput (Fig. 7 tracks an LS and a BE user).
  const Histogram& user_latency(uint32_t user_id);
  uint64_t user_completed(uint32_t user_id) const;

  // Invoked at each request completion (response leaving the server);
  // rack-level models use it to route responses back through a switch.
  void SetCompletionCallback(
      std::function<void(const Packet&, Time completion)> cb) {
    on_complete_ = std::move(cb);
  }

  Thread* thread(int index) const { return workers_[index].thread; }
  Socket* socket(int index) const { return workers_[index].socket; }

 private:
  struct Worker {
    Thread* thread = nullptr;
    Socket* socket = nullptr;
    uint32_t index = 0;
    bool busy = false;
    Packet current;
  };

  Duration ServiceTime(ReqType type);
  void StartRequest(Worker& worker, const Packet& pkt);
  void OnWake(Worker& worker);
  void OnSegmentDone(Worker& worker);
  void PublishType(const Worker& worker, ReqType type);

  Simulator& sim_;
  HostStack& stack_;
  Machine& machine_;
  RocksDbConfig config_;
  Rng rng_;
  std::vector<Worker> workers_;

  Histogram get_latency_;
  Histogram scan_latency_;
  Histogram put_latency_;
  Histogram overall_latency_;
  uint64_t completed_ = 0;
  uint64_t completed_get_ = 0;
  uint64_t completed_scan_ = 0;
  uint64_t completed_put_ = 0;

  struct UserStats {
    Histogram latency;
    uint64_t completed = 0;
  };
  std::map<uint32_t, UserStats> user_stats_;
  std::function<void(const Packet&, Time)> on_complete_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_APPS_ROCKSDB_SERVER_H_
