// MICA-like partitioned key-value server (paper §5.1.2, §5.4).
//
// MICA partitions the key space across cores; each request has a "home"
// core = key_hash % num_threads. What Fig. 9 measures is how much cross-core
// data movement each steering layer removes:
//
//   kSwRedirect (original MICA): RSS lands the packet on an arbitrary core;
//     that core parses it and forwards it over an inter-core queue to the
//     home core. Two data movements; both cores pay.
//   kSyrupSw: a Syrup policy at the kernel AF_XDP hook reads the key hash
//     and redirects straight to the home thread's AF_XDP socket (one per
//     NIC queue per thread). One (remote) movement.
//   kSyrupHw: the same policy offloaded to the NIC picks the home thread's
//     RX queue, whose IRQ lands on the home core's hyperthread buddy. The
//     local AF_XDP hand-off is all that remains.
//
// Threads are pinned 1:1 to cores (MICA's EREW mode).
#ifndef SYRUP_SRC_APPS_MICA_SERVER_H_
#define SYRUP_SRC_APPS_MICA_SERVER_H_

#include <deque>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/net/stack.h"
#include "src/sched/machine.h"
#include "src/sim/simulator.h"

namespace syrup {

enum class MicaVariant {
  kSwRedirect,  // original MICA application-layer redirection
  kSyrupSw,     // Syrup policy at the kernel AF_XDP (XDP_SKB) hook
  kSyrupSwZc,   // same policy at the zero-copy XDP_DRV hook (§5.4's Intel
                // 82599 footnote: no SKB, no copy, cheaper receive)
  kSyrupHw,     // Syrup policy offloaded to the NIC (XDP offload hook)
};

std::string_view MicaVariantName(MicaVariant variant);

struct MicaConfig {
  int num_threads = 8;
  uint16_t port = 9100;
  size_t socket_depth = 256;
  Duration wire_delay = 5 * kMicrosecond;

  // Per-request CPU costs (calibrated so the three variants saturate in
  // the paper's ~1.75 / ~2.75 / ~3.25 MRPS proportions on 8 cores).
  Duration service_get = 2100;        // hash-table probe + response
  Duration service_put = 2400;        // insert + response
  Duration parse_cost = 800;          // request parse on the RSS core
  Duration redirect_cost = 900;       // inter-core queue send (original)
  Duration queue_recv_cost = 700;     // inter-core queue receive (original)
  Duration remote_recv_cost = 800;    // AF_XDP recv from a non-local queue
  Duration local_recv_cost = 350;     // AF_XDP recv from the buddy queue
  Duration zc_recv_discount = 250;    // saved per recv under zero copy
  Duration forward_latency = 600;     // inter-core queue transit time

  uint64_t seed = 11;
};

class MicaServer {
 public:
  MicaServer(Simulator& sim, HostStack& stack, Machine& machine,
             MicaConfig config, MicaVariant variant);

  MicaServer(const MicaServer&) = delete;
  MicaServer& operator=(const MicaServer&) = delete;

  const Histogram& latency() const { return latency_; }
  uint64_t completed() const { return completed_; }
  uint64_t redirected() const { return redirected_; }
  void ResetStats();
  uint64_t socket_drops() const;

  // For kSyrupSw: AF_XDP executor index within each queue == thread index.
  // For kSyrupHw: one socket per queue at index 0.
  int num_threads() const { return config_.num_threads; }

 private:
  struct Worker {
    Thread* thread = nullptr;
    std::vector<Socket*> sockets;  // own AF_XDP or regular sockets
    std::deque<Packet> forward_queue;  // inter-core queue (original MICA)
    uint32_t index = 0;
    size_t next_socket = 0;  // round-robin poll position across sockets
    bool busy = false;
    Packet current;
    Duration pending_extra = 0;  // recv-path cost of the current item
    bool current_needs_redirect = false;
  };

  void WireWorker(Worker& worker);
  bool StartNext(Worker& worker);
  void OnWake(Worker& worker);
  void OnSegmentDone(Worker& worker);
  void ForwardToHome(const Packet& pkt);

  Simulator& sim_;
  Machine& machine_;
  MicaConfig config_;
  MicaVariant variant_;
  Rng rng_;
  std::vector<Worker> workers_;
  // Packets in transit on the inter-core queue. Every forward waits the
  // same forward_latency, so in-order dispatch drains this FIFO front-first
  // and the transit event captures only {this, home} — no Packet copy into
  // the closure.
  std::deque<Packet> forward_fifo_;

  Histogram latency_;
  uint64_t completed_ = 0;
  uint64_t redirected_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_APPS_MICA_SERVER_H_
