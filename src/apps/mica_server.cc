#include "src/apps/mica_server.h"

#include "src/common/logging.h"

namespace syrup {

std::string_view MicaVariantName(MicaVariant variant) {
  switch (variant) {
    case MicaVariant::kSwRedirect:
      return "sw_redirect";
    case MicaVariant::kSyrupSw:
      return "syrup_sw";
    case MicaVariant::kSyrupSwZc:
      return "syrup_sw_zc";
    case MicaVariant::kSyrupHw:
      return "syrup_hw";
  }
  return "?";
}

MicaServer::MicaServer(Simulator& sim, HostStack& stack, Machine& machine,
                       MicaConfig config, MicaVariant variant)
    : sim_(sim),
      machine_(machine),
      config_(config),
      variant_(variant),
      rng_(config.seed) {
  SYRUP_CHECK_GT(config_.num_threads, 0);
  SYRUP_CHECK_EQ(config_.num_threads, stack.config().num_nic_queues)
      << "MICA maps one NIC queue per thread";
  workers_.resize(static_cast<size_t>(config_.num_threads));

  for (int i = 0; i < config_.num_threads; ++i) {
    Worker& worker = workers_[static_cast<size_t>(i)];
    worker.index = static_cast<uint32_t>(i);
    worker.thread = machine.CreateThread("mica-" + std::to_string(i));
    WireWorker(worker);
  }

  switch (variant_) {
    case MicaVariant::kSwRedirect: {
      // One regular socket per thread; kernel-default hash distribution.
      ReuseportGroup* group = stack.GetOrCreateGroup(config_.port);
      for (auto& worker : workers_) {
        Socket* sock = group->AddSocket(config_.socket_depth);
        worker.sockets.push_back(sock);
        Worker* w = &worker;
        sock->SetWakeCallback([this, w]() { OnWake(*w); });
      }
      break;
    }
    case MicaVariant::kSyrupSw:
    case MicaVariant::kSyrupSwZc: {
      // Each thread owns one AF_XDP socket per NIC queue; executor index t
      // within every queue is thread t's socket (paper §5.4).
      for (int queue = 0; queue < config_.num_threads; ++queue) {
        for (auto& worker : workers_) {
          Socket* sock =
              stack.RegisterAfXdpSocket(queue, config_.socket_depth);
          worker.sockets.push_back(sock);
          Worker* w = &worker;
          sock->SetWakeCallback([this, w]() { OnWake(*w); });
        }
      }
      break;
    }
    case MicaVariant::kSyrupHw: {
      // One AF_XDP socket per queue (index 0), bound to that queue's
      // thread; the NIC steers to the home queue directly.
      for (auto& worker : workers_) {
        Socket* sock = stack.RegisterAfXdpSocket(
            static_cast<int>(worker.index), config_.socket_depth);
        worker.sockets.push_back(sock);
        Worker* w = &worker;
        sock->SetWakeCallback([this, w]() { OnWake(*w); });
      }
      break;
    }
  }
}

void MicaServer::WireWorker(Worker& worker) {
  Worker* w = &worker;
  worker.thread->SetSegmentDoneCallback([this, w]() { OnSegmentDone(*w); });
}

bool MicaServer::StartNext(Worker& worker) {
  // Inter-core queue first (original MICA polls its DPDK rings first).
  if (!worker.forward_queue.empty()) {
    worker.current = worker.forward_queue.front();
    worker.forward_queue.pop_front();
    worker.busy = true;
    worker.current_needs_redirect = false;
    const Duration service = worker.current.req_type() == ReqType::kPut
                                 ? config_.service_put
                                 : config_.service_get;
    machine_.AddWork(worker.thread, config_.queue_recv_cost + service);
    return true;
  }

  // Poll sockets round-robin (AF_XDP rx rings are serviced fairly); a
  // fixed scan order would starve high-index queues at overload.
  const size_t socket_count = worker.sockets.size();
  for (size_t probe = 0; probe < socket_count; ++probe) {
    const size_t s = (worker.next_socket + probe) % socket_count;
    Socket* sock = worker.sockets[s];
    auto pkt = sock->Dequeue();
    if (!pkt.has_value()) {
      continue;
    }
    worker.next_socket = (s + 1) % socket_count;
    worker.current = *pkt;
    worker.busy = true;
    const Duration service = pkt->req_type() == ReqType::kPut
                                 ? config_.service_put
                                 : config_.service_get;
    switch (variant_) {
      case MicaVariant::kSwRedirect: {
        const uint32_t home =
            pkt->key_hash() % static_cast<uint32_t>(config_.num_threads);
        if (home == worker.index) {
          worker.current_needs_redirect = false;
          machine_.AddWork(worker.thread, config_.parse_cost + service);
        } else {
          // Parse + push onto the home core's queue; service happens there.
          worker.current_needs_redirect = true;
          machine_.AddWork(worker.thread,
                           config_.parse_cost + config_.redirect_cost);
        }
        break;
      }
      case MicaVariant::kSyrupSw:
      case MicaVariant::kSyrupSwZc: {
        // Socket s belongs to NIC queue s; a non-buddy queue means the
        // frame crossed cores on its way here.
        const bool local = s == worker.index;
        Duration recv = local ? config_.local_recv_cost
                              : config_.remote_recv_cost;
        if (variant_ == MicaVariant::kSyrupSwZc &&
            recv > config_.zc_recv_discount) {
          recv -= config_.zc_recv_discount;  // no frame copy to consume
        }
        worker.current_needs_redirect = false;
        machine_.AddWork(worker.thread, recv + service);
        break;
      }
      case MicaVariant::kSyrupHw: {
        worker.current_needs_redirect = false;
        machine_.AddWork(worker.thread, config_.local_recv_cost + service);
        break;
      }
    }
    return true;
  }
  return false;
}

void MicaServer::OnWake(Worker& worker) {
  if (worker.thread->state() != Thread::State::kBlocked || worker.busy) {
    return;
  }
  if (StartNext(worker)) {
    machine_.Wake(worker.thread);
  }
}

void MicaServer::ForwardToHome(const Packet& pkt) {
  const uint32_t home =
      pkt.key_hash() % static_cast<uint32_t>(config_.num_threads);
  forward_fifo_.push_back(pkt);
  sim_.ScheduleAfter(config_.forward_latency, [this, home]() {
    Worker& target = workers_[home];
    target.forward_queue.push_back(std::move(forward_fifo_.front()));
    forward_fifo_.pop_front();
    OnWake(target);
  });
}

void MicaServer::OnSegmentDone(Worker& worker) {
  SYRUP_CHECK(worker.busy);
  worker.busy = false;
  if (worker.current_needs_redirect) {
    ++redirected_;
    ForwardToHome(worker.current);
  } else {
    const Time completion = sim_.Now() + config_.wire_delay;
    const Time sent = worker.current.send_time();
    latency_.Record(completion > sent ? completion - sent : 0);
    ++completed_;
  }

  if (StartNext(worker)) {
    return;  // keeps running with the new segment
  }
  machine_.Block(worker.thread);
}

void MicaServer::ResetStats() {
  latency_.Reset();
  completed_ = 0;
  redirected_ = 0;
}

uint64_t MicaServer::socket_drops() const {
  uint64_t drops = 0;
  for (const Worker& worker : workers_) {
    for (const Socket* sock : worker.sockets) {
      drops += sock->dropped();
    }
  }
  return drops;
}

}  // namespace syrup
