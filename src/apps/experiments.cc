#include "src/apps/experiments.h"

#include <memory>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/policies/builtin.h"
#include "src/policies/ghost_policies.h"
#include "src/sched/cfs_scheduler.h"
#include "src/sched/pinned_scheduler.h"

namespace syrup {
namespace {

constexpr uint16_t kRocksDbPort = 9000;
constexpr uint16_t kMicaPort = 9100;
constexpr Uid kAppUid = 1000;
constexpr Duration kDrain = 50 * kMillisecond;

double ToUs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::string_view SocketPolicyName(SocketPolicyKind kind) {
  switch (kind) {
    case SocketPolicyKind::kVanilla: return "vanilla";
    case SocketPolicyKind::kRoundRobin: return "round_robin";
    case SocketPolicyKind::kScanAvoid: return "scan_avoid";
    case SocketPolicyKind::kSita: return "sita";
  }
  return "?";
}

namespace {

// One complete RocksDB host: every component lives on (and only touches) a
// single Simulator, so a host maps 1:1 onto a shard of a ShardedSim run.
// Members are declared in construction order; destruction runs in reverse,
// so deployments (which reference syrupd) unwind before it.
struct RocksDbHost {
  std::unique_ptr<HostStack> stack;
  std::unique_ptr<Syrupd> syrupd;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<GetPriorityGhostPolicy> ghost_policy;
  std::shared_ptr<Map> thread_type_map;
  std::shared_ptr<Map> scan_map;
  std::vector<PolicyHandle> deployments;
  std::unique_ptr<RocksDbServer> server;
  std::unique_ptr<LoadGenerator> gen;

  // Measurement-window bookkeeping (set by Mark/Snapshot below).
  uint64_t sent_before = 0;
  uint64_t drops_before = 0;
  uint64_t completed_in_window = 0;
  uint64_t completed_get_in_window = 0;
  uint64_t completed_scan_in_window = 0;
};

// Builds one host on `sim` with all seeds derived from `seed` (the
// construction and scheduling order matches the historical single-engine
// body exactly, so seed == config.seed reproduces it bit for bit). A null
// `sink` delivers generated packets straight into the host's own stack.
std::unique_ptr<RocksDbHost> BuildRocksDbHost(
    Simulator& sim, const RocksDbExperimentConfig& config, uint64_t seed,
    LoadGenerator::SinkFn sink) {
  auto host = std::make_unique<RocksDbHost>();
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_cores;
  stack_config.protocol_cold_penalty = config.protocol_cold_penalty;
  host->stack = std::make_unique<HostStack>(sim, stack_config);
  host->syrupd = std::make_unique<Syrupd>(sim, host->stack.get(), seed);
  Syrupd& syrupd = *host->syrupd;
  syrupd.set_exec_mode(config.exec_mode);
  // The deprecated bool still gates the cache: both knobs must say on.
  FlowCacheConfig cache_config = config.flow_cache_config;
  cache_config.enabled = cache_config.enabled && config.flow_cache;
  syrupd.set_flow_cache_config(cache_config);
  const AppId app =
      syrupd.RegisterApp("rocksdb", kAppUid, kRocksDbPort).value();

  host->machine = std::make_unique<Machine>(sim, config.num_cores);
  Machine& machine = *host->machine;

  switch (config.thread_sched) {
    case ThreadSchedKind::kPinned:
      host->scheduler = std::make_unique<PinnedScheduler>(machine);
      machine.SetScheduler(host->scheduler.get());
      break;
    case ThreadSchedKind::kCfs:
      host->scheduler = std::make_unique<CfsScheduler>(machine);
      machine.SetScheduler(host->scheduler.get());
      break;
    case ThreadSchedKind::kGhostGetPriority: {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 256;
      spec.name = "thread_type_map";
      host->thread_type_map = CreateMap(spec).value();
      SYRUP_CHECK_OK(syrupd.registry().Pin("/syrup/rocksdb/thread_type_map",
                                           host->thread_type_map, kAppUid));
      GhostConfig ghost_config;
      ghost_config.num_managed_cores = config.num_cores - 1;
      if (config.use_bytecode) {
        // Thread hook runs the untrusted classifier program through the
        // active execution tier, just like the packet hooks.
        SYRUP_CHECK_OK(syrupd
                           .DeployThreadPolicyFile(
                               app,
                               GetPriorityThreadPolicyAsm(
                                   "/syrup/rocksdb/thread_type_map"),
                               machine, ghost_config)
                           .status());
      } else {
        host->ghost_policy =
            std::make_unique<GetPriorityGhostPolicy>(host->thread_type_map);
        SYRUP_CHECK_OK(syrupd.DeployThreadPolicy(app, host->ghost_policy.get(),
                                                 machine, ghost_config));
      }
      break;
    }
  }

  // Socket-select policy deployment (the workflow of paper Fig. 3).
  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  auto policy_rng = std::make_shared<Rng>(seed ^ 0x5caf00dULL);
  if (config.use_bytecode) {
    SyrupClient client(syrupd, app);
    switch (config.socket_policy) {
      case SocketPolicyKind::kVanilla:
        break;
      case SocketPolicyKind::kRoundRobin:
        host->deployments.push_back(
            client.DeployPolicy(RoundRobinPolicyAsm(n), Hook::kSocketSelect)
                .value());
        break;
      case SocketPolicyKind::kScanAvoid: {
        host->deployments.push_back(
            client.DeployPolicy(ScanAvoidPolicyAsm(n), Hook::kSocketSelect)
                .value());
        // The policy file declared scan_map; open the pin for the server's
        // userspace half.
        host->scan_map =
            syrupd.registry().Open("/syrup/rocksdb/scan_map", kAppUid).value();
        break;
      }
      case SocketPolicyKind::kSita:
        host->deployments.push_back(
            client.DeployPolicy(SitaPolicyAsm(n), Hook::kSocketSelect)
                .value());
        break;
    }
  } else {
    std::shared_ptr<PacketPolicy> policy;
    switch (config.socket_policy) {
      case SocketPolicyKind::kVanilla:
        break;
      case SocketPolicyKind::kRoundRobin:
        policy = std::make_shared<RoundRobinPolicy>(n);
        break;
      case SocketPolicyKind::kScanAvoid: {
        MapSpec spec;
        spec.type = MapType::kArray;
        spec.max_entries = n;
        spec.name = "scan_map";
        host->scan_map = CreateMap(spec).value();
        SYRUP_CHECK_OK(
            syrupd.registry().Pin("/syrup/rocksdb/scan_map", host->scan_map,
                                  kAppUid));
        policy = std::make_shared<ScanAvoidPolicy>(
            n, host->scan_map, [policy_rng]() {
              return static_cast<uint32_t>(policy_rng->Next());
            });
        break;
      }
      case SocketPolicyKind::kSita:
        policy = std::make_shared<SitaPolicy>(n);
        break;
    }
    if (policy != nullptr) {
      SYRUP_CHECK(
          syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());
    }
  }

  if (config.late_binding) {
    host->stack->EnableLateBinding(kRocksDbPort);
  }
  if (config.cpu_redirect_spray) {
    SYRUP_CHECK(syrupd
                    .DeployNativePolicy(
                        app,
                        std::make_shared<RoundRobinPolicy>(
                            static_cast<uint32_t>(config.num_cores)),
                        Hook::kCpuRedirect)
                    .ok());
  }

  RocksDbConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kRocksDbPort;
  server_config.seed = seed * 31 + 5;
  server_config.scan_map = host->scan_map;
  server_config.thread_type_map = host->thread_type_map;
  host->server = std::make_unique<RocksDbServer>(sim, *host->stack, machine,
                                                 server_config);

  LoadGenConfig gen_config;
  gen_config.rate_rps = config.load_rps;
  gen_config.dst_port = kRocksDbPort;
  gen_config.num_flows = config.num_flows;
  gen_config.flow_skew = config.flow_skew;
  gen_config.user_id = 1;
  gen_config.mix = {{ReqType::kGet, config.get_fraction},
                    {ReqType::kScan, 1.0 - config.get_fraction}};
  if (config.get_fraction >= 1.0) {
    gen_config.mix = {{ReqType::kGet, 1.0}};
  }
  gen_config.seed = seed * 77 + 1;
  if (sink != nullptr) {
    host->gen = std::make_unique<LoadGenerator>(sim, std::move(sink),
                                                gen_config);
  } else {
    host->gen = std::make_unique<LoadGenerator>(sim, *host->stack, gen_config);
  }
  host->gen->Start(config.warmup + config.measure);
  return host;
}

void MarkRocksDbWindowStart(RocksDbHost& host) {
  host.server->ResetStats();
  host.sent_before = host.gen->sent();
  host.drops_before = host.stack->stats().TotalDrops();
}

void SnapshotRocksDbWindow(RocksDbHost& host) {
  host.completed_in_window = host.server->completed();
  host.completed_get_in_window = host.server->completed(ReqType::kGet);
  host.completed_scan_in_window = host.server->completed(ReqType::kScan);
}

// Folds per-host windows into one result (histograms merged in shard order,
// counts summed). With one host this reproduces the historical single-host
// arithmetic exactly.
RocksDbResult AggregateRocksDb(
    const RocksDbExperimentConfig& config,
    const std::vector<std::unique_ptr<RocksDbHost>>& hosts) {
  uint64_t completed = 0;
  uint64_t completed_get = 0;
  uint64_t completed_scan = 0;
  uint64_t sent = 0;
  uint64_t drops = 0;
  Histogram overall;
  Histogram get_latency;
  Histogram scan_latency;
  for (const auto& host : hosts) {
    completed += host->completed_in_window;
    completed_get += host->completed_get_in_window;
    completed_scan += host->completed_scan_in_window;
    sent += host->gen->sent() - host->sent_before;
    drops += host->stack->stats().TotalDrops() - host->drops_before;
    overall.Merge(host->server->overall_latency());
    get_latency.Merge(host->server->latency(ReqType::kGet));
    scan_latency.Merge(host->server->latency(ReqType::kScan));
  }

  const double window_sec = ToSeconds(config.measure);
  RocksDbResult result;
  result.load_rps = config.load_rps * static_cast<double>(hosts.size());
  result.throughput_rps = static_cast<double>(completed) / window_sec;
  result.get_throughput_rps = static_cast<double>(completed_get) / window_sec;
  result.scan_throughput_rps =
      static_cast<double>(completed_scan) / window_sec;
  result.p50_us = ToUs(overall.Percentile(50));
  result.p99_us = ToUs(overall.Percentile(99));
  result.p99_get_us = ToUs(get_latency.Percentile(99));
  result.p99_scan_us = ToUs(scan_latency.Percentile(99));
  result.drop_fraction =
      sent == 0 ? 0.0
                : static_cast<double>(drops) / static_cast<double>(sent);
  // Shard 0's daemon (the one an unsharded run would have).
  result.stats_json = hosts.front()->syrupd->StatsSnapshot().ToJson();
  return result;
}

RocksDbResult RunRocksDbShardedExperiment(
    const RocksDbExperimentConfig& config) {
  const ExperimentShardingConfig& sharding = config.sharding;
  const int num_shards = sharding.sim.shards;
  ShardedSim sharded(sharding.sim);
  const bool cross = num_shards > 1 && sharding.cross_traffic > 0.0;
  if (cross) {
    SYRUP_CHECK_GE(sharding.cross_link_latency, sharded.lookahead())
        << "east-west link latency below the sharded lookahead";
  }
  const uint32_t cross_mille =
      static_cast<uint32_t>(sharding.cross_traffic * 1000.0 + 0.5);

  std::vector<std::unique_ptr<RocksDbHost>> hosts(
      static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Shard 0 reproduces the unsharded seeds exactly; replicas draw
    // deterministically distinct streams.
    const uint64_t seed =
        config.seed + static_cast<uint64_t>(s) * uint64_t{1000003};
    LoadGenerator::SinkFn sink;
    if (cross) {
      // East-west traffic: a fixed, flow-deterministic slice of each
      // shard's requests is served by the next shard over an inter-shard
      // link (ring topology), entering through its stack's channel port.
      sink = [&sharded, &hosts, s, num_shards, cross_mille,
              link = sharding.cross_link_latency](Packet pkt) {
        if (pkt.tuple.Hash() % 1000 < cross_mille) {
          const int dst = (s + 1) % num_shards;
          hosts[static_cast<size_t>(dst)]->stack->PostRx(
              s, sharded.shard(s).Now() + link, std::move(pkt));
        } else {
          hosts[static_cast<size_t>(s)]->stack->Rx(std::move(pkt));
        }
      };
    }
    hosts[static_cast<size_t>(s)] =
        BuildRocksDbHost(sharded.shard(s), config, seed, std::move(sink));
    if (cross) {
      hosts[static_cast<size_t>(s)]->stack->BindShard(&sharded, s);
    }
  }

  sharded.RunUntil(config.warmup);
  for (auto& host : hosts) {
    MarkRocksDbWindowStart(*host);
  }
  const Time end = config.warmup + config.measure;
  for (int s = 0; s < num_shards; ++s) {
    RocksDbHost* host = hosts[static_cast<size_t>(s)].get();
    sharded.shard(s).ScheduleAt(end,
                                [host]() { SnapshotRocksDbWindow(*host); });
  }
  sharded.RunUntil(end + kDrain);
  return AggregateRocksDb(config, hosts);
}

}  // namespace

RocksDbResult RunRocksDbExperiment(const RocksDbExperimentConfig& config) {
  if (config.sharding.sim.shards >= 1) {
    return RunRocksDbShardedExperiment(config);
  }
  Simulator sim;
  std::vector<std::unique_ptr<RocksDbHost>> hosts;
  hosts.push_back(BuildRocksDbHost(sim, config, config.seed, nullptr));
  RocksDbHost& host = *hosts.front();

  sim.RunUntil(config.warmup);
  MarkRocksDbWindowStart(host);

  // Snapshot completion counts at the end of the measurement window; the
  // drain period afterwards lets queued requests finish so tail latency is
  // not truncated.
  sim.ScheduleAt(config.warmup + config.measure,
                 [&host]() { SnapshotRocksDbWindow(host); });
  sim.RunUntil(config.warmup + config.measure + kDrain);
  return AggregateRocksDb(config, hosts);
}

TokenQosResult RunTokenQosExperiment(const TokenQosConfig& config) {
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_threads;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack, config.seed);
  const AppId app =
      syrupd.RegisterApp("rocksdb", kAppUid, kRocksDbPort).value();

  Machine machine(sim, config.num_threads);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);

  constexpr uint32_t kLsUser = 1;
  constexpr uint32_t kBeUser = 2;
  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  const uint64_t tokens_per_epoch = static_cast<uint64_t>(
      config.token_rate_per_sec * ToSeconds(config.epoch));

  std::shared_ptr<Map> token_map;
  std::shared_ptr<std::function<void()>> replenish;  // token agent closure
  if (config.token_policy) {
    MapSpec spec;
    spec.type = MapType::kHash;
    spec.max_entries = 16;
    spec.name = "token_map";
    token_map = CreateMap(spec).value();
    SYRUP_CHECK_OK(
        syrupd.registry().Pin("/syrup/rocksdb/token_map", token_map,
                              kAppUid));
    SYRUP_CHECK_OK(token_map->UpdateU64(kLsUser, tokens_per_epoch));
    SYRUP_CHECK_OK(token_map->UpdateU64(kBeUser, 0));
    auto policy = std::make_shared<TokenPolicy>(
        token_map, std::make_shared<RoundRobinPolicy>(n));
    SYRUP_CHECK(
        syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());

    // The userspace token agent (§3.4 generate_tokens): every epoch the LS
    // bucket refills and any leftover LS tokens are gifted to BE; stale BE
    // gifts expire. The closure reschedules itself through a weak
    // self-reference (a strong one would leak a retain cycle); the strong
    // owner below lives until the experiment ends.
    replenish = std::make_shared<std::function<void()>>();
    *replenish = [&sim, token_map, tokens_per_epoch,
                  epoch = config.epoch,
                  weak_self = std::weak_ptr<std::function<void()>>(
                      replenish)]() {
      uint32_t ls_key = kLsUser;
      uint32_t be_key = kBeUser;
      void* ls = token_map->Lookup(&ls_key);
      void* be = token_map->Lookup(&be_key);
      SYRUP_CHECK(ls != nullptr && be != nullptr);
      const uint64_t leftover = Map::AtomicLoad(ls);
      Map::AtomicStore(ls, tokens_per_epoch);
      Map::AtomicStore(be, leftover);
      if (auto self = weak_self.lock()) {
        sim.ScheduleAfter(epoch, *self);
      }
    };
    sim.ScheduleAfter(config.epoch, *replenish);
  } else {
    auto policy = std::make_shared<RoundRobinPolicy>(n);
    SYRUP_CHECK(
        syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());
  }

  RocksDbConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kRocksDbPort;
  server_config.seed = config.seed * 31 + 5;
  // Per-user accounting adds overhead; calibrated so the 400k RPS total
  // offered load sits "slightly higher than the saturation point" as the
  // paper describes for this experiment (saturation ~410k here).
  server_config.request_overhead = 3600;
  RocksDbServer server(sim, stack, machine, server_config);

  auto make_gen = [&](uint32_t user, double rate, uint64_t seed) {
    LoadGenConfig gen_config;
    gen_config.rate_rps = rate;
    gen_config.dst_port = kRocksDbPort;
    gen_config.user_id = user;
    gen_config.num_flows = 50;
    gen_config.seed = seed;
    return std::make_unique<LoadGenerator>(sim, stack, gen_config);
  };
  auto ls_gen = make_gen(kLsUser, config.ls_load_rps, config.seed * 3 + 1);
  auto be_gen = make_gen(kBeUser, config.be_load_rps, config.seed * 7 + 2);
  const Time end = config.warmup + config.measure;
  ls_gen->Start(end);
  be_gen->Start(end);

  sim.RunUntil(config.warmup);
  server.ResetStats();
  uint64_t ls_completed = 0;
  uint64_t be_completed = 0;
  sim.ScheduleAt(end, [&]() {
    ls_completed = server.user_completed(kLsUser);
    be_completed = server.user_completed(kBeUser);
  });
  sim.RunUntil(end + kDrain);

  const double window_sec = ToSeconds(config.measure);
  TokenQosResult result;
  result.ls_load_rps = config.ls_load_rps;
  result.be_load_rps = config.be_load_rps;
  result.ls_throughput_rps = static_cast<double>(ls_completed) / window_sec;
  result.be_throughput_rps = static_cast<double>(be_completed) / window_sec;
  result.ls_p99_us = ToUs(server.user_latency(kLsUser).Percentile(99));
  result.be_p99_us = ToUs(server.user_latency(kBeUser).Percentile(99));
  result.stats_json = syrupd.StatsSnapshot().ToJson();
  return result;
}

namespace {

// One complete MICA host; see RocksDbHost for the ownership and destruction
// order rules.
struct MicaHost {
  std::unique_ptr<HostStack> stack;
  std::unique_ptr<Syrupd> syrupd;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<PinnedScheduler> scheduler;
  std::unique_ptr<MicaServer> server;
  std::vector<PolicyHandle> deployments;
  std::unique_ptr<LoadGenerator> gen;

  uint64_t sent_before = 0;
  uint64_t drops_before = 0;
  uint64_t completed_in_window = 0;
};

std::unique_ptr<MicaHost> BuildMicaHost(Simulator& sim,
                                        const MicaExperimentConfig& config,
                                        uint64_t seed,
                                        LoadGenerator::SinkFn sink) {
  auto host = std::make_unique<MicaHost>();
  // Lighter per-packet costs than the RocksDB stack: MICA's receive path is
  // AF_XDP with busy-polled queues, and the paper's IRQs land on dedicated
  // hyperthread buddies.
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_threads;
  stack_config.driver_cost = 400;
  stack_config.skb_alloc_cost = 300;
  stack_config.xdp_cost = 200;
  stack_config.protocol_cost = 900;
  stack_config.afxdp_deliver_cost = 200;
  stack_config.afxdp_copy_cost = 300;
  stack_config.socket_queue_depth = 256;
  host->stack = std::make_unique<HostStack>(sim, stack_config);
  host->syrupd = std::make_unique<Syrupd>(sim, host->stack.get(), seed);
  Syrupd& syrupd = *host->syrupd;
  syrupd.set_exec_mode(config.exec_mode);
  FlowCacheConfig cache_config = config.flow_cache_config;
  cache_config.enabled = cache_config.enabled && config.flow_cache;
  syrupd.set_flow_cache_config(cache_config);
  const AppId app = syrupd.RegisterApp("mica", kAppUid, kMicaPort).value();

  host->machine = std::make_unique<Machine>(sim, config.num_threads);
  host->scheduler = std::make_unique<PinnedScheduler>(*host->machine);
  host->machine->SetScheduler(host->scheduler.get());

  MicaConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kMicaPort;
  server_config.seed = seed * 13 + 3;
  host->server = std::make_unique<MicaServer>(
      sim, *host->stack, *host->machine, server_config, config.variant);

  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  SyrupClient client(syrupd, app);
  std::vector<PolicyHandle>& deployments = host->deployments;
  switch (config.variant) {
    case MicaVariant::kSwRedirect:
      break;  // no Syrup policies: kernel-default distribution
    case MicaVariant::kSyrupSw:
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpSkb).value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpSkb)
                        .ok());
      }
      break;
    case MicaVariant::kSyrupSwZc:
      // Zero-copy native mode (XDP_DRV): pre-SKB, no frame copy.
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpDrv).value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpDrv)
                        .ok());
      }
      break;
    case MicaVariant::kSyrupHw:
      // The same matching function, offloaded: the NIC picks the home
      // queue; the queue's single AF_XDP socket receives locally.
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpOffload)
                .value());
        deployments.push_back(
            client.DeployPolicy(ConstIndexPolicyAsm(0), Hook::kXdpSkb)
                .value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpOffload)
                        .ok());
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<ConstIndexPolicy>(0),
                            Hook::kXdpSkb)
                        .ok());
      }
      break;
  }

  LoadGenConfig gen_config;
  gen_config.rate_rps = config.load_rps;
  gen_config.dst_port = kMicaPort;
  gen_config.num_flows = 256;  // MICA clients are many; RSS spreads well
  gen_config.user_id = 1;
  gen_config.mix = {{ReqType::kGet, config.get_fraction},
                    {ReqType::kPut, 1.0 - config.get_fraction}};
  gen_config.seed = seed * 77 + 1;
  if (sink != nullptr) {
    host->gen = std::make_unique<LoadGenerator>(sim, std::move(sink),
                                                gen_config);
  } else {
    host->gen = std::make_unique<LoadGenerator>(sim, *host->stack, gen_config);
  }
  host->gen->Start(config.warmup + config.measure);
  return host;
}

void MarkMicaWindowStart(MicaHost& host) {
  host.server->ResetStats();
  host.sent_before = host.gen->sent();
  host.drops_before = host.stack->stats().TotalDrops();
}

MicaResult AggregateMica(const MicaExperimentConfig& config,
                         const std::vector<std::unique_ptr<MicaHost>>& hosts) {
  uint64_t completed = 0;
  uint64_t sent = 0;
  uint64_t drops = 0;
  uint64_t redirected = 0;
  Histogram latency;
  for (const auto& host : hosts) {
    completed += host->completed_in_window;
    sent += host->gen->sent() - host->sent_before;
    drops += host->stack->stats().TotalDrops() - host->drops_before;
    redirected += host->server->redirected();
    latency.Merge(host->server->latency());
  }

  MicaResult result;
  result.load_rps = config.load_rps * static_cast<double>(hosts.size());
  result.throughput_rps =
      static_cast<double>(completed) / ToSeconds(config.measure);
  result.p999_us = ToUs(latency.Percentile(99.9));
  result.p50_us = ToUs(latency.Percentile(50));
  result.drop_fraction =
      sent == 0 ? 0.0
                : static_cast<double>(drops) / static_cast<double>(sent);
  result.redirected = redirected;
  result.stats_json = hosts.front()->syrupd->StatsSnapshot().ToJson();
  return result;
}

MicaResult RunMicaShardedExperiment(const MicaExperimentConfig& config) {
  const ExperimentShardingConfig& sharding = config.sharding;
  const int num_shards = sharding.sim.shards;
  ShardedSim sharded(sharding.sim);
  const bool cross = num_shards > 1 && sharding.cross_traffic > 0.0;
  if (cross) {
    SYRUP_CHECK_GE(sharding.cross_link_latency, sharded.lookahead())
        << "east-west link latency below the sharded lookahead";
  }
  const uint32_t cross_mille =
      static_cast<uint32_t>(sharding.cross_traffic * 1000.0 + 0.5);

  std::vector<std::unique_ptr<MicaHost>> hosts(
      static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const uint64_t seed =
        config.seed + static_cast<uint64_t>(s) * uint64_t{1000003};
    LoadGenerator::SinkFn sink;
    if (cross) {
      sink = [&sharded, &hosts, s, num_shards, cross_mille,
              link = sharding.cross_link_latency](Packet pkt) {
        if (pkt.tuple.Hash() % 1000 < cross_mille) {
          const int dst = (s + 1) % num_shards;
          hosts[static_cast<size_t>(dst)]->stack->PostRx(
              s, sharded.shard(s).Now() + link, std::move(pkt));
        } else {
          hosts[static_cast<size_t>(s)]->stack->Rx(std::move(pkt));
        }
      };
    }
    hosts[static_cast<size_t>(s)] =
        BuildMicaHost(sharded.shard(s), config, seed, std::move(sink));
    if (cross) {
      hosts[static_cast<size_t>(s)]->stack->BindShard(&sharded, s);
    }
  }

  sharded.RunUntil(config.warmup);
  for (auto& host : hosts) {
    MarkMicaWindowStart(*host);
  }
  const Time end = config.warmup + config.measure;
  for (int s = 0; s < num_shards; ++s) {
    MicaHost* host = hosts[static_cast<size_t>(s)].get();
    sharded.shard(s).ScheduleAt(
        end, [host]() { host->completed_in_window = host->server->completed(); });
  }
  sharded.RunUntil(end + kDrain);
  return AggregateMica(config, hosts);
}

}  // namespace

MicaResult RunMicaExperiment(const MicaExperimentConfig& config) {
  if (config.sharding.sim.shards >= 1) {
    return RunMicaShardedExperiment(config);
  }
  Simulator sim;
  std::vector<std::unique_ptr<MicaHost>> hosts;
  hosts.push_back(BuildMicaHost(sim, config, config.seed, nullptr));
  MicaHost& host = *hosts.front();

  const Time end = config.warmup + config.measure;
  sim.RunUntil(config.warmup);
  MarkMicaWindowStart(host);
  sim.ScheduleAt(
      end, [&host]() { host.completed_in_window = host.server->completed(); });
  sim.RunUntil(end + kDrain);
  return AggregateMica(config, hosts);
}

}  // namespace syrup
