#include "src/apps/experiments.h"

#include <memory>

#include "src/apps/loadgen.h"
#include "src/apps/rocksdb_server.h"
#include "src/common/logging.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/policies/builtin.h"
#include "src/policies/ghost_policies.h"
#include "src/sched/cfs_scheduler.h"
#include "src/sched/pinned_scheduler.h"

namespace syrup {
namespace {

constexpr uint16_t kRocksDbPort = 9000;
constexpr uint16_t kMicaPort = 9100;
constexpr Uid kAppUid = 1000;
constexpr Duration kDrain = 50 * kMillisecond;

double ToUs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::string_view SocketPolicyName(SocketPolicyKind kind) {
  switch (kind) {
    case SocketPolicyKind::kVanilla: return "vanilla";
    case SocketPolicyKind::kRoundRobin: return "round_robin";
    case SocketPolicyKind::kScanAvoid: return "scan_avoid";
    case SocketPolicyKind::kSita: return "sita";
  }
  return "?";
}

RocksDbResult RunRocksDbExperiment(const RocksDbExperimentConfig& config) {
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_cores;
  stack_config.protocol_cold_penalty = config.protocol_cold_penalty;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack, config.seed);
  syrupd.set_exec_mode(config.exec_mode);
  // The deprecated bool still gates the cache: both knobs must say on.
  FlowCacheConfig cache_config = config.flow_cache_config;
  cache_config.enabled = cache_config.enabled && config.flow_cache;
  syrupd.set_flow_cache_config(cache_config);
  const AppId app =
      syrupd.RegisterApp("rocksdb", kAppUid, kRocksDbPort).value();

  Machine machine(sim, config.num_cores);
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<GetPriorityGhostPolicy> ghost_policy;
  std::shared_ptr<Map> thread_type_map;

  switch (config.thread_sched) {
    case ThreadSchedKind::kPinned:
      scheduler = std::make_unique<PinnedScheduler>(machine);
      machine.SetScheduler(scheduler.get());
      break;
    case ThreadSchedKind::kCfs:
      scheduler = std::make_unique<CfsScheduler>(machine);
      machine.SetScheduler(scheduler.get());
      break;
    case ThreadSchedKind::kGhostGetPriority: {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 256;
      spec.name = "thread_type_map";
      thread_type_map = CreateMap(spec).value();
      SYRUP_CHECK_OK(syrupd.registry().Pin("/syrup/rocksdb/thread_type_map",
                                           thread_type_map, kAppUid));
      GhostConfig ghost_config;
      ghost_config.num_managed_cores = config.num_cores - 1;
      if (config.use_bytecode) {
        // Thread hook runs the untrusted classifier program through the
        // active execution tier, just like the packet hooks.
        SYRUP_CHECK_OK(syrupd
                           .DeployThreadPolicyFile(
                               app,
                               GetPriorityThreadPolicyAsm(
                                   "/syrup/rocksdb/thread_type_map"),
                               machine, ghost_config)
                           .status());
      } else {
        ghost_policy =
            std::make_unique<GetPriorityGhostPolicy>(thread_type_map);
        SYRUP_CHECK_OK(syrupd.DeployThreadPolicy(app, ghost_policy.get(),
                                                 machine, ghost_config));
      }
      break;
    }
  }

  // Socket-select policy deployment (the workflow of paper Fig. 3).
  std::shared_ptr<Map> scan_map;
  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  auto policy_rng = std::make_shared<Rng>(config.seed ^ 0x5caf00dULL);
  // Handles keep bytecode deployments attached for the whole run.
  std::vector<PolicyHandle> deployments;
  if (config.use_bytecode) {
    SyrupClient client(syrupd, app);
    switch (config.socket_policy) {
      case SocketPolicyKind::kVanilla:
        break;
      case SocketPolicyKind::kRoundRobin:
        deployments.push_back(
            client.DeployPolicy(RoundRobinPolicyAsm(n), Hook::kSocketSelect)
                .value());
        break;
      case SocketPolicyKind::kScanAvoid: {
        deployments.push_back(
            client.DeployPolicy(ScanAvoidPolicyAsm(n), Hook::kSocketSelect)
                .value());
        // The policy file declared scan_map; open the pin for the server's
        // userspace half.
        scan_map =
            syrupd.registry().Open("/syrup/rocksdb/scan_map", kAppUid).value();
        break;
      }
      case SocketPolicyKind::kSita:
        deployments.push_back(
            client.DeployPolicy(SitaPolicyAsm(n), Hook::kSocketSelect)
                .value());
        break;
    }
  } else {
    std::shared_ptr<PacketPolicy> policy;
    switch (config.socket_policy) {
      case SocketPolicyKind::kVanilla:
        break;
      case SocketPolicyKind::kRoundRobin:
        policy = std::make_shared<RoundRobinPolicy>(n);
        break;
      case SocketPolicyKind::kScanAvoid: {
        MapSpec spec;
        spec.type = MapType::kArray;
        spec.max_entries = n;
        spec.name = "scan_map";
        scan_map = CreateMap(spec).value();
        SYRUP_CHECK_OK(
            syrupd.registry().Pin("/syrup/rocksdb/scan_map", scan_map,
                                  kAppUid));
        policy = std::make_shared<ScanAvoidPolicy>(
            n, scan_map, [policy_rng]() {
              return static_cast<uint32_t>(policy_rng->Next());
            });
        break;
      }
      case SocketPolicyKind::kSita:
        policy = std::make_shared<SitaPolicy>(n);
        break;
    }
    if (policy != nullptr) {
      SYRUP_CHECK(
          syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());
    }
  }

  if (config.late_binding) {
    stack.EnableLateBinding(kRocksDbPort);
  }
  if (config.cpu_redirect_spray) {
    SYRUP_CHECK(syrupd
                    .DeployNativePolicy(
                        app,
                        std::make_shared<RoundRobinPolicy>(
                            static_cast<uint32_t>(config.num_cores)),
                        Hook::kCpuRedirect)
                    .ok());
  }

  RocksDbConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kRocksDbPort;
  server_config.seed = config.seed * 31 + 5;
  server_config.scan_map = scan_map;
  server_config.thread_type_map = thread_type_map;
  RocksDbServer server(sim, stack, machine, server_config);

  LoadGenConfig gen_config;
  gen_config.rate_rps = config.load_rps;
  gen_config.dst_port = kRocksDbPort;
  gen_config.num_flows = config.num_flows;
  gen_config.flow_skew = config.flow_skew;
  gen_config.user_id = 1;
  gen_config.mix = {{ReqType::kGet, config.get_fraction},
                    {ReqType::kScan, 1.0 - config.get_fraction}};
  if (config.get_fraction >= 1.0) {
    gen_config.mix = {{ReqType::kGet, 1.0}};
  }
  gen_config.seed = config.seed * 77 + 1;
  LoadGenerator gen(sim, stack, gen_config);
  gen.Start(config.warmup + config.measure);

  sim.RunUntil(config.warmup);
  server.ResetStats();
  const uint64_t sent_before = gen.sent();
  const uint64_t drops_before = stack.stats().TotalDrops();

  // Snapshot completion counts at the end of the measurement window; the
  // drain period afterwards lets queued requests finish so tail latency is
  // not truncated.
  uint64_t completed_in_window = 0;
  uint64_t completed_get_in_window = 0;
  uint64_t completed_scan_in_window = 0;
  sim.ScheduleAt(config.warmup + config.measure, [&]() {
    completed_in_window = server.completed();
    completed_get_in_window = server.completed(ReqType::kGet);
    completed_scan_in_window = server.completed(ReqType::kScan);
  });
  sim.RunUntil(config.warmup + config.measure + kDrain);

  const double window_sec = ToSeconds(config.measure);
  RocksDbResult result;
  result.load_rps = config.load_rps;
  result.throughput_rps =
      static_cast<double>(completed_in_window) / window_sec;
  result.get_throughput_rps =
      static_cast<double>(completed_get_in_window) / window_sec;
  result.scan_throughput_rps =
      static_cast<double>(completed_scan_in_window) / window_sec;
  result.p50_us = ToUs(server.overall_latency().Percentile(50));
  result.p99_us = ToUs(server.overall_latency().Percentile(99));
  result.p99_get_us = ToUs(server.latency(ReqType::kGet).Percentile(99));
  result.p99_scan_us = ToUs(server.latency(ReqType::kScan).Percentile(99));
  const uint64_t sent = gen.sent() - sent_before;
  const uint64_t drops = stack.stats().TotalDrops() - drops_before;
  result.drop_fraction =
      sent == 0 ? 0.0
                : static_cast<double>(drops) / static_cast<double>(sent);
  result.stats_json = syrupd.StatsSnapshot().ToJson();
  return result;
}

TokenQosResult RunTokenQosExperiment(const TokenQosConfig& config) {
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_threads;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack, config.seed);
  const AppId app =
      syrupd.RegisterApp("rocksdb", kAppUid, kRocksDbPort).value();

  Machine machine(sim, config.num_threads);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);

  constexpr uint32_t kLsUser = 1;
  constexpr uint32_t kBeUser = 2;
  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  const uint64_t tokens_per_epoch = static_cast<uint64_t>(
      config.token_rate_per_sec * ToSeconds(config.epoch));

  std::shared_ptr<Map> token_map;
  std::shared_ptr<std::function<void()>> replenish;  // token agent closure
  if (config.token_policy) {
    MapSpec spec;
    spec.type = MapType::kHash;
    spec.max_entries = 16;
    spec.name = "token_map";
    token_map = CreateMap(spec).value();
    SYRUP_CHECK_OK(
        syrupd.registry().Pin("/syrup/rocksdb/token_map", token_map,
                              kAppUid));
    SYRUP_CHECK_OK(token_map->UpdateU64(kLsUser, tokens_per_epoch));
    SYRUP_CHECK_OK(token_map->UpdateU64(kBeUser, 0));
    auto policy = std::make_shared<TokenPolicy>(
        token_map, std::make_shared<RoundRobinPolicy>(n));
    SYRUP_CHECK(
        syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());

    // The userspace token agent (§3.4 generate_tokens): every epoch the LS
    // bucket refills and any leftover LS tokens are gifted to BE; stale BE
    // gifts expire. The closure reschedules itself through a weak
    // self-reference (a strong one would leak a retain cycle); the strong
    // owner below lives until the experiment ends.
    replenish = std::make_shared<std::function<void()>>();
    *replenish = [&sim, token_map, tokens_per_epoch,
                  epoch = config.epoch,
                  weak_self = std::weak_ptr<std::function<void()>>(
                      replenish)]() {
      uint32_t ls_key = kLsUser;
      uint32_t be_key = kBeUser;
      void* ls = token_map->Lookup(&ls_key);
      void* be = token_map->Lookup(&be_key);
      SYRUP_CHECK(ls != nullptr && be != nullptr);
      const uint64_t leftover = Map::AtomicLoad(ls);
      Map::AtomicStore(ls, tokens_per_epoch);
      Map::AtomicStore(be, leftover);
      if (auto self = weak_self.lock()) {
        sim.ScheduleAfter(epoch, *self);
      }
    };
    sim.ScheduleAfter(config.epoch, *replenish);
  } else {
    auto policy = std::make_shared<RoundRobinPolicy>(n);
    SYRUP_CHECK(
        syrupd.DeployNativePolicy(app, policy, Hook::kSocketSelect).ok());
  }

  RocksDbConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kRocksDbPort;
  server_config.seed = config.seed * 31 + 5;
  // Per-user accounting adds overhead; calibrated so the 400k RPS total
  // offered load sits "slightly higher than the saturation point" as the
  // paper describes for this experiment (saturation ~410k here).
  server_config.request_overhead = 3600;
  RocksDbServer server(sim, stack, machine, server_config);

  auto make_gen = [&](uint32_t user, double rate, uint64_t seed) {
    LoadGenConfig gen_config;
    gen_config.rate_rps = rate;
    gen_config.dst_port = kRocksDbPort;
    gen_config.user_id = user;
    gen_config.num_flows = 50;
    gen_config.seed = seed;
    return std::make_unique<LoadGenerator>(sim, stack, gen_config);
  };
  auto ls_gen = make_gen(kLsUser, config.ls_load_rps, config.seed * 3 + 1);
  auto be_gen = make_gen(kBeUser, config.be_load_rps, config.seed * 7 + 2);
  const Time end = config.warmup + config.measure;
  ls_gen->Start(end);
  be_gen->Start(end);

  sim.RunUntil(config.warmup);
  server.ResetStats();
  uint64_t ls_completed = 0;
  uint64_t be_completed = 0;
  sim.ScheduleAt(end, [&]() {
    ls_completed = server.user_completed(kLsUser);
    be_completed = server.user_completed(kBeUser);
  });
  sim.RunUntil(end + kDrain);

  const double window_sec = ToSeconds(config.measure);
  TokenQosResult result;
  result.ls_load_rps = config.ls_load_rps;
  result.be_load_rps = config.be_load_rps;
  result.ls_throughput_rps = static_cast<double>(ls_completed) / window_sec;
  result.be_throughput_rps = static_cast<double>(be_completed) / window_sec;
  result.ls_p99_us = ToUs(server.user_latency(kLsUser).Percentile(99));
  result.be_p99_us = ToUs(server.user_latency(kBeUser).Percentile(99));
  result.stats_json = syrupd.StatsSnapshot().ToJson();
  return result;
}

MicaResult RunMicaExperiment(const MicaExperimentConfig& config) {
  Simulator sim;
  // Lighter per-packet costs than the RocksDB stack: MICA's receive path is
  // AF_XDP with busy-polled queues, and the paper's IRQs land on dedicated
  // hyperthread buddies.
  StackConfig stack_config;
  stack_config.num_nic_queues = config.num_threads;
  stack_config.driver_cost = 400;
  stack_config.skb_alloc_cost = 300;
  stack_config.xdp_cost = 200;
  stack_config.protocol_cost = 900;
  stack_config.afxdp_deliver_cost = 200;
  stack_config.afxdp_copy_cost = 300;
  stack_config.socket_queue_depth = 256;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack, config.seed);
  syrupd.set_exec_mode(config.exec_mode);
  FlowCacheConfig cache_config = config.flow_cache_config;
  cache_config.enabled = cache_config.enabled && config.flow_cache;
  syrupd.set_flow_cache_config(cache_config);
  const AppId app = syrupd.RegisterApp("mica", kAppUid, kMicaPort).value();

  Machine machine(sim, config.num_threads);
  PinnedScheduler scheduler(machine);
  machine.SetScheduler(&scheduler);

  MicaConfig server_config;
  server_config.num_threads = config.num_threads;
  server_config.port = kMicaPort;
  server_config.seed = config.seed * 13 + 3;
  MicaServer server(sim, stack, machine, server_config, config.variant);

  const uint32_t n = static_cast<uint32_t>(config.num_threads);
  SyrupClient client(syrupd, app);
  std::vector<PolicyHandle> deployments;
  switch (config.variant) {
    case MicaVariant::kSwRedirect:
      break;  // no Syrup policies: kernel-default distribution
    case MicaVariant::kSyrupSw:
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpSkb).value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpSkb)
                        .ok());
      }
      break;
    case MicaVariant::kSyrupSwZc:
      // Zero-copy native mode (XDP_DRV): pre-SKB, no frame copy.
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpDrv).value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpDrv)
                        .ok());
      }
      break;
    case MicaVariant::kSyrupHw:
      // The same matching function, offloaded: the NIC picks the home
      // queue; the queue's single AF_XDP socket receives locally.
      if (config.use_bytecode) {
        deployments.push_back(
            client.DeployPolicy(MicaHomePolicyAsm(n), Hook::kXdpOffload)
                .value());
        deployments.push_back(
            client.DeployPolicy(ConstIndexPolicyAsm(0), Hook::kXdpSkb)
                .value());
      } else {
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<MicaHomePolicy>(n),
                            Hook::kXdpOffload)
                        .ok());
        SYRUP_CHECK(syrupd
                        .DeployNativePolicy(
                            app, std::make_shared<ConstIndexPolicy>(0),
                            Hook::kXdpSkb)
                        .ok());
      }
      break;
  }

  LoadGenConfig gen_config;
  gen_config.rate_rps = config.load_rps;
  gen_config.dst_port = kMicaPort;
  gen_config.num_flows = 256;  // MICA clients are many; RSS spreads well
  gen_config.user_id = 1;
  gen_config.mix = {{ReqType::kGet, config.get_fraction},
                    {ReqType::kPut, 1.0 - config.get_fraction}};
  gen_config.seed = config.seed * 77 + 1;
  LoadGenerator gen(sim, stack, gen_config);
  const Time end = config.warmup + config.measure;
  gen.Start(end);

  sim.RunUntil(config.warmup);
  server.ResetStats();
  const uint64_t sent_before = gen.sent();
  const uint64_t drops_before = stack.stats().TotalDrops();
  uint64_t completed_in_window = 0;
  sim.ScheduleAt(end, [&]() { completed_in_window = server.completed(); });
  sim.RunUntil(end + kDrain);

  MicaResult result;
  result.load_rps = config.load_rps;
  result.throughput_rps = static_cast<double>(completed_in_window) /
                          ToSeconds(config.measure);
  result.p999_us = ToUs(server.latency().Percentile(99.9));
  result.p50_us = ToUs(server.latency().Percentile(50));
  const uint64_t sent = gen.sent() - sent_before;
  const uint64_t drops = stack.stats().TotalDrops() - drops_before;
  result.drop_fraction =
      sent == 0 ? 0.0
                : static_cast<double>(drops) / static_cast<double>(sent);
  result.redirected = server.redirected();
  result.stats_json = syrupd.StatsSnapshot().ToJson();
  return result;
}

}  // namespace syrup
