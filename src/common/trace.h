// Lightweight event tracing for simulations.
//
// A bounded in-memory ring of (time, category, message) records, disabled
// by default and cheap when off (one relaxed atomic load per trace point).
// Components emit through SYRUP_TRACE(category, streamed << message); tests
// and debugging sessions enable the ring, run, and dump or query it.
//
//   Tracer::Get().Enable(4096);
//   ... run simulation ...
//   for (const auto& ev : Tracer::Get().Snapshot()) { ... }
#ifndef SYRUP_SRC_COMMON_TRACE_H_
#define SYRUP_SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace syrup {

struct TraceEvent {
  Time when = 0;
  std::string category;
  std::string message;
};

class Tracer {
 public:
  // Process-wide tracer. (Simulations are single-threaded; the lock only
  // matters for multi-threaded benches.)
  static Tracer& Get();

  // Starts recording, keeping at most `capacity` most-recent events.
  void Enable(size_t capacity = 4096);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(Time when, std::string category, std::string message);

  // Copies out the buffered events (oldest first).
  std::vector<TraceEvent> Snapshot() const;

  // Events of one category, oldest first.
  std::vector<TraceEvent> SnapshotCategory(const std::string& category) const;

  // Multi-line "time [category] message" dump.
  std::string Dump() const;

  void Clear();
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  std::deque<TraceEvent> ring_;
};

}  // namespace syrup

// Emits a trace event when tracing is enabled; `expr` is a stream
// expression, evaluated only when on:
//   SYRUP_TRACE(sim.Now(), "stack", "drop port=" << port);
#define SYRUP_TRACE(when, category, expr)                          \
  do {                                                             \
    if (::syrup::Tracer::Get().enabled()) {                        \
      std::ostringstream _syrup_trace_os;                          \
      _syrup_trace_os << expr;                                     \
      ::syrup::Tracer::Get().Record((when), (category),            \
                                    _syrup_trace_os.str());        \
    }                                                              \
  } while (0)

#endif  // SYRUP_SRC_COMMON_TRACE_H_
