// HDR-style log-linear histogram for latency recording.
//
// Values (nanoseconds) are bucketed with bounded relative error (~1/32 per
// bucket), so percentile queries over millions of samples are O(#buckets)
// and recording is O(1) with no allocation after construction.
#ifndef SYRUP_SRC_COMMON_HISTOGRAM_H_
#define SYRUP_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace syrup {

class Histogram {
 public:
  // Tracks values in [0, max_value]; larger samples clamp to the last bucket.
  explicit Histogram(uint64_t max_value = uint64_t{1} << 40);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  // Merges another histogram with the same geometry.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return total_count_; }
  uint64_t min() const;
  uint64_t max() const;
  double Mean() const;

  // quantile in [0,1]; e.g. 0.99 for p99. Returns the representative value of
  // the bucket containing that rank (upper edge).
  uint64_t ValueAtQuantile(double quantile) const;

  uint64_t Percentile(double pct) const { return ValueAtQuantile(pct / 100.0); }

  // Multi-line human-readable summary (for example programs).
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per octave
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;

  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperEdge(size_t index) const;

  uint64_t max_value_;
  std::vector<uint64_t> buckets_;
  uint64_t total_count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_seen_;
  uint64_t max_seen_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_HISTOGRAM_H_
