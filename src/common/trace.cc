#include "src/common/trace.h"

namespace syrup {

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // intentionally leaked singleton
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  total_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(Time when, std::string category, std::string message) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.push_back(TraceEvent{when, std::move(category), std::move(message)});
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

std::vector<TraceEvent> Tracer::SnapshotCategory(
    const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : ring_) {
    if (event.category == category) {
      out.push_back(event);
    }
  }
  return out;
}

std::string Tracer::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const TraceEvent& event : ring_) {
    os << event.when << " [" << event.category << "] " << event.message
       << "\n";
  }
  return os.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace syrup
