// Simulated-time types. All simulation timestamps and durations are integral
// nanoseconds to keep event ordering exact and platform-independent.
#ifndef SYRUP_SRC_COMMON_TIME_H_
#define SYRUP_SRC_COMMON_TIME_H_

#include <cstdint>

namespace syrup {

// Absolute simulated time in nanoseconds since simulation start.
using Time = uint64_t;
// Duration in nanoseconds.
using Duration = uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr double ToMicros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr Duration FromMicros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_TIME_H_
