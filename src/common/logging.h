// Minimal leveled logging and CHECK macros.
//
// SYRUP_LOG(INFO) << "..." streams a message; SYRUP_CHECK(cond) aborts with a
// diagnostic when `cond` is false. Severity is filtered by a process-global
// minimum level (default kInfo) so simulations can silence chatter.
#ifndef SYRUP_SRC_COMMON_LOGGING_H_
#define SYRUP_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace syrup {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the process-wide minimum level; messages below it are dropped.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

std::string_view LogLevelName(LogLevel level);

// One log statement. The destructor emits the accumulated message and, for
// kFatal, aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Binds looser than operator<< so a whole stream chain can sit on the right
// side of a ternary that must yield void (the glog idiom).
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace syrup

#define SYRUP_LOG_STREAM(severity) \
  ::syrup::LogMessage(::syrup::LogLevel::k##severity, __FILE__, __LINE__).stream()

#define SYRUP_LOG(severity)                                    \
  (::syrup::LogLevel::k##severity < ::syrup::GetMinLogLevel()) \
      ? (void)0                                                \
      : ::syrup::LogMessageVoidify() & SYRUP_LOG_STREAM(severity)

#define SYRUP_CHECK(cond)                               \
  (cond) ? (void)0                                      \
         : ::syrup::LogMessageVoidify() &               \
               SYRUP_LOG_STREAM(Fatal) << "Check failed: " #cond " "

#define SYRUP_CHECK_OP(op, a, b) SYRUP_CHECK((a)op(b))
#define SYRUP_CHECK_EQ(a, b) SYRUP_CHECK_OP(==, a, b)
#define SYRUP_CHECK_NE(a, b) SYRUP_CHECK_OP(!=, a, b)
#define SYRUP_CHECK_LT(a, b) SYRUP_CHECK_OP(<, a, b)
#define SYRUP_CHECK_LE(a, b) SYRUP_CHECK_OP(<=, a, b)
#define SYRUP_CHECK_GT(a, b) SYRUP_CHECK_OP(>, a, b)
#define SYRUP_CHECK_GE(a, b) SYRUP_CHECK_OP(>=, a, b)

#define SYRUP_CHECK_OK(expr)                       \
  do {                                             \
    const ::syrup::Status _s = (expr);             \
    SYRUP_CHECK(_s.ok()) << _s.ToString();         \
  } while (0)

#endif  // SYRUP_SRC_COMMON_LOGGING_H_
