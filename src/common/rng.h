// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** — fast, high-quality, and stable across platforms, which keeps
// simulation runs reproducible from a seed (std::mt19937 would also work but
// is slower and its distributions are not implementation-stable).
#ifndef SYRUP_SRC_COMMON_RNG_H_
#define SYRUP_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace syrup {

// SplitMix64: used to expand a 64-bit seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5EEDF00DULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // 128-bit multiply-shift keeps the result unbiased for all bounds that
    // occur in practice (rejection step included for exactness).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_RNG_H_
