// Scheduling decision constants shared by every hook (paper §3.3).
//
// A Syrup `schedule` function returns a uint32_t index into the hook's
// executor map, or one of two sentinels: PASS (defer to the system default
// policy) or DROP (discard the input).
#ifndef SYRUP_SRC_COMMON_DECISION_H_
#define SYRUP_SRC_COMMON_DECISION_H_

#include <cstdint>

namespace syrup {

using Decision = uint32_t;

inline constexpr Decision kPass = 0xFFFFFFFFu;
inline constexpr Decision kDrop = 0xFFFFFFFEu;

inline constexpr bool IsExecutorIndex(Decision d) {
  return d != kPass && d != kDrop;
}

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_DECISION_H_
