// Small non-cryptographic hash utilities shared across modules.
#ifndef SYRUP_SRC_COMMON_HASH_H_
#define SYRUP_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace syrup {

// FNV-1a 64-bit over an arbitrary byte range.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// 64->64 bit finalizer (xxhash-style avalanche); good for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_HASH_H_
