// Random-variate distributions used by workload generators and service-time
// models. All sample from a caller-provided Rng so sequences stay
// deterministic per experiment seed.
#ifndef SYRUP_SRC_COMMON_DISTRIBUTIONS_H_
#define SYRUP_SRC_COMMON_DISTRIBUTIONS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace syrup {

// Uniform duration in [lo, hi].
class UniformDuration {
 public:
  UniformDuration(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    SYRUP_CHECK_LE(lo, hi);
  }

  Duration Sample(Rng& rng) const {
    return lo_ + rng.NextBounded(hi_ - lo_ + 1);
  }

  Duration lo() const { return lo_; }
  Duration hi() const { return hi_; }
  double Mean() const { return (static_cast<double>(lo_) + hi_) / 2.0; }

 private:
  Duration lo_;
  Duration hi_;
};

// Exponential inter-arrival times for open-loop Poisson arrivals.
class ExponentialDuration {
 public:
  // `rate_per_sec` is the arrival rate lambda.
  explicit ExponentialDuration(double rate_per_sec) : rate_(rate_per_sec) {
    SYRUP_CHECK_GT(rate_per_sec, 0.0);
  }

  Duration Sample(Rng& rng) const {
    // Inverse-CDF; clamp u away from 0 to avoid log(0).
    double u = rng.NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    const double seconds = -std::log(u) / rate_;
    return static_cast<Duration>(seconds * static_cast<double>(kSecond));
  }

  double rate() const { return rate_; }

 private:
  double rate_;
};

// Discrete distribution over indices 0..n-1 with given weights.
class DiscreteIndex {
 public:
  explicit DiscreteIndex(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    SYRUP_CHECK(!cumulative_.empty());
    double total = 0.0;
    for (double& w : cumulative_) {
      SYRUP_CHECK_GE(w, 0.0);
      total += w;
      w = total;
    }
    SYRUP_CHECK_GT(total, 0.0);
    for (double& w : cumulative_) {
      w /= total;
    }
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) {
        return i;
      }
    }
    return cumulative_.size() - 1;
  }

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
};

// Zipfian key popularity (used by the MICA-style workload). Precomputes the
// cumulative mass so sampling is O(log n) via binary search.
class ZipfIndex {
 public:
  ZipfIndex(size_t n, double theta) : n_(n), theta_(theta) {
    SYRUP_CHECK_GT(n, 0u);
    cumulative_.reserve(n);
    double sum = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cumulative_.push_back(sum);
    }
    for (double& c : cumulative_) {
      c /= sum;
    }
  }

  size_t Sample(Rng& rng) const {
    if (theta_ == 0.0) {
      return rng.NextBounded(n_);
    }
    const double u = rng.NextDouble();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<size_t>(it - cumulative_.begin());
  }

  size_t size() const { return n_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cumulative_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_COMMON_DISTRIBUTIONS_H_
