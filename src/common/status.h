// Lightweight status / status-or types used across the Syrup codebase.
//
// Error handling in this project follows the kernel/Fuchsia idiom: fallible
// operations return a `Status` or a `StatusOr<T>` rather than throwing.
// Exceptions are reserved for programmer errors surfaced via CHECK macros.
#ifndef SYRUP_SRC_COMMON_STATUS_H_
#define SYRUP_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace syrup {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kOutOfRange = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kUnavailable = 10,
};

std::string_view StatusCodeToString(StatusCode code);

// A success-or-error result with an optional human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);

// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...);`
  // both work inside functions returning StatusOr<T>.
  StatusOr(const T& value) : repr_(value) {}             // NOLINT
  StatusOr(T&& value) : repr_(std::move(value)) {}       // NOLINT
  StatusOr(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOkSingleton = OkStatus();
    if (ok()) {
      return kOkSingleton;
    }
    return std::get<Status>(repr_);
  }

  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace syrup

// Propagates an error Status from an expression, mirroring absl's macro.
#define SYRUP_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::syrup::Status _syrup_status = (expr);  \
    if (!_syrup_status.ok()) {               \
      return _syrup_status;                  \
    }                                        \
  } while (0)

#define SYRUP_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) {                                   \
    return var.status();                             \
  }                                                  \
  lhs = std::move(var).value()

#define SYRUP_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SYRUP_ASSIGN_OR_RETURN_NAME(x, y) SYRUP_ASSIGN_OR_RETURN_CONCAT(x, y)

// SYRUP_ASSIGN_OR_RETURN(auto v, Fallible()) assigns on success, returns the
// error otherwise.
#define SYRUP_ASSIGN_OR_RETURN(lhs, rexpr) \
  SYRUP_ASSIGN_OR_RETURN_IMPL(             \
      SYRUP_ASSIGN_OR_RETURN_NAME(_syrup_statusor_, __LINE__), lhs, rexpr)

#endif  // SYRUP_SRC_COMMON_STATUS_H_
