#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace syrup {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace syrup
