#include "src/common/histogram.h"

#include <bit>
#include <limits>
#include <sstream>

#include "src/common/logging.h"

namespace syrup {

Histogram::Histogram(uint64_t max_value)
    : max_value_(max_value),
      min_seen_(std::numeric_limits<uint64_t>::max()) {
  SYRUP_CHECK_GT(max_value, 0u);
  buckets_.assign(BucketIndex(max_value) + 1, 0);
}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value > max_value_) {
    value = max_value_;
  }
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const uint64_t scaled = value >> shift;  // in [kSubBuckets, 2*kSubBuckets)
  const size_t octave = static_cast<size_t>(msb - kSubBucketBits + 1);
  return octave * kSubBuckets + static_cast<size_t>(scaled - kSubBuckets);
}

uint64_t Histogram::BucketUpperEdge(size_t index) const {
  if (index < kSubBuckets) {
    return index;
  }
  const size_t octave = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  const int shift = static_cast<int>(octave) - 1;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  buckets_[BucketIndex(value)] += count;
  total_count_ += count;
  sum_ += value * count;
  if (value < min_seen_) {
    min_seen_ = value;
  }
  if (value > max_seen_) {
    max_seen_ = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  SYRUP_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  if (other.min_seen_ < min_seen_) {
    min_seen_ = other.min_seen_;
  }
  if (other.max_seen_ > max_seen_) {
    max_seen_ = other.max_seen_;
  }
}

void Histogram::Reset() {
  buckets_.assign(buckets_.size(), 0);
  total_count_ = 0;
  sum_ = 0;
  min_seen_ = std::numeric_limits<uint64_t>::max();
  max_seen_ = 0;
}

uint64_t Histogram::min() const { return total_count_ == 0 ? 0 : min_seen_; }
uint64_t Histogram::max() const { return max_seen_; }

double Histogram::Mean() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(total_count_);
}

uint64_t Histogram::ValueAtQuantile(double quantile) const {
  if (total_count_ == 0) {
    return 0;
  }
  if (quantile < 0.0) {
    quantile = 0.0;
  }
  if (quantile > 1.0) {
    quantile = 1.0;
  }
  const uint64_t target = static_cast<uint64_t>(
      quantile * static_cast<double>(total_count_) + 0.5);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target && buckets_[i] > 0) {
      // Don't report an edge beyond the true max; keeps p100 == max().
      const uint64_t edge = BucketUpperEdge(i);
      return edge > max_seen_ ? max_seen_ : edge;
    }
  }
  return max_seen_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << total_count_ << " mean=" << Mean() << "ns"
     << " p50=" << Percentile(50) << "ns"
     << " p90=" << Percentile(90) << "ns"
     << " p99=" << Percentile(99) << "ns"
     << " p99.9=" << Percentile(99.9) << "ns"
     << " max=" << max_seen_ << "ns";
  return os.str();
}

}  // namespace syrup
