// ghOSt-like userspace thread-scheduling substrate (paper §4.1).
//
// The kernel side (GhostScheduler, a src/sched Scheduler) detects thread
// state changes and posts messages (THREAD_WAKEUP, THREAD_BLOCKED,
// THREAD_PREEMPTED, CPU_AVAILABLE) to a channel. A spinning userspace-style
// agent drains the channel after a delivery delay, runs the user-defined
// matching policy (threads -> cores), and commits placements via
// transactions that take effect after an IPI/context-switch delay. One
// logical core is dedicated to the agent, so a machine with 6 cores offers
// 5 to application threads — the capacity cost visible in Fig. 8b.
#ifndef SYRUP_SRC_GHOST_GHOST_H_
#define SYRUP_SRC_GHOST_GHOST_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/sched/machine.h"

namespace syrup {

enum class GhostMsgType {
  kThreadWakeup,
  kThreadBlocked,
  kThreadPreempted,
  kCpuAvailable,
};

struct GhostMsg {
  GhostMsgType type;
  int tid = 0;
  int core = -1;
  Time when = 0;
};

// Snapshot of a runnable thread handed to the policy.
struct GhostThreadInfo {
  int tid = 0;
  Time runnable_since = 0;
};

// User-defined thread scheduling policy (the paper's `schedule` matching
// function for the Thread Scheduler hook). Policies typically read Syrup
// Maps populated by the application to make request-aware decisions.
class GhostPolicy {
 public:
  virtual ~GhostPolicy() = default;

  // Matches a thread to the available `core`. `runnable` is ordered by
  // wake time (FCFS). Returns the chosen tid, or -1 to leave the core idle.
  virtual int PickThread(int core,
                         const std::vector<GhostThreadInfo>& runnable) = 0;

  // Whether `candidate` (runnable) should preempt `running_tid` now. The
  // agent consults this when no core is free. Default: never preempt.
  virtual bool ShouldPreempt(const GhostThreadInfo& candidate,
                             int running_tid) {
    (void)candidate;
    (void)running_tid;
    return false;
  }
};

struct GhostConfig {
  // Cores managed for application threads; the agent spins on one more.
  int num_managed_cores = 5;
  Duration message_delay = 1 * kMicrosecond;  // kernel -> channel -> agent
  Duration per_message_cost = 300;            // agent work per message
  Duration commit_delay = 2 * kMicrosecond;   // txn commit + IPI + switch
};

class GhostScheduler : public Scheduler {
 public:
  // `machine` must have at least num_managed_cores cores; cores beyond
  // that are never scheduled by ghOSt (the last one hosts the agent).
  GhostScheduler(Machine& machine, GhostPolicy& policy, GhostConfig config);

  // --- Scheduler interface (the "kernel scheduling class") ---------------
  void OnThreadRunnable(Thread* thread) override;
  void OnThreadBlocked(Thread* thread, int core, Duration ran) override;
  void OnSliceExpired(Thread* thread, int core, Duration ran) override;
  void OnCoreIdle(int core) override;

  uint64_t messages_processed() const { return messages_processed_->value; }
  uint64_t preemptions() const { return preemptions_->value; }
  uint64_t commits() const { return commits_->value; }

  // Re-homes the agent's accounting into `registry` under
  // {app, "thread_scheduler", ...}. Syrupd calls this at DeployThreadPolicy
  // time with the owning app's name; counts so far carry over. A commit is
  // a context switch (the transaction's IPI + switch on the target core).
  void BindMetrics(obs::MetricsRegistry& registry, std::string_view app);

 private:
  void PostMessage(GhostMsg msg);
  void ScheduleAgentRun();
  void AgentRun();
  void CommitPlacements();

  Machine& machine_;
  GhostPolicy& policy_;
  GhostConfig config_;

  std::deque<GhostMsg> channel_;
  bool agent_run_pending_ = false;

  // Agent-local view.
  std::vector<GhostThreadInfo> runnable_;    // wake order
  std::set<int> committed_cores_;            // placement in flight
  std::set<int> committed_tids_;

  std::shared_ptr<obs::Counter> messages_processed_;
  std::shared_ptr<obs::Counter> preemptions_;
  std::shared_ptr<obs::Counter> commits_;
  std::shared_ptr<obs::Gauge> runnable_depth_;
  bool metrics_bound_ = false;
};

}  // namespace syrup

#endif  // SYRUP_SRC_GHOST_GHOST_H_
