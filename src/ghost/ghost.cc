#include "src/ghost/ghost.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace syrup {

GhostScheduler::GhostScheduler(Machine& machine, GhostPolicy& policy,
                               GhostConfig config)
    : machine_(machine),
      policy_(policy),
      config_(config),
      messages_processed_(std::make_shared<obs::Counter>()),
      preemptions_(std::make_shared<obs::Counter>()),
      commits_(std::make_shared<obs::Counter>()),
      runnable_depth_(std::make_shared<obs::Gauge>()) {
  SYRUP_CHECK_GE(machine.num_cores(), config_.num_managed_cores);
}

void GhostScheduler::BindMetrics(obs::MetricsRegistry& registry,
                                 std::string_view app) {
  if (metrics_bound_) {
    return;
  }
  metrics_bound_ = true;
  auto rebind = [&](std::shared_ptr<obs::Counter>& cell, const char* name) {
    std::shared_ptr<obs::Counter> fresh =
        registry.GetCounter(app, "thread_scheduler", name);
    fresh->Inc(cell->value);
    cell = std::move(fresh);
  };
  rebind(messages_processed_, "messages_processed");
  rebind(preemptions_, "preemptions");
  rebind(commits_, "context_switches");
  std::shared_ptr<obs::Gauge> fresh =
      registry.GetGauge(app, "thread_scheduler", "runnable_depth");
  fresh->Set(runnable_depth_->value);
  runnable_depth_ = std::move(fresh);
}

void GhostScheduler::OnThreadRunnable(Thread* thread) {
  PostMessage(GhostMsg{GhostMsgType::kThreadWakeup, thread->tid(), -1,
                       machine_.sim().Now()});
}

void GhostScheduler::OnThreadBlocked(Thread* thread, int core, Duration) {
  PostMessage(GhostMsg{GhostMsgType::kThreadBlocked, thread->tid(), core,
                       machine_.sim().Now()});
}

void GhostScheduler::OnSliceExpired(Thread* thread, int core, Duration) {
  // ghOSt policies run threads with an infinite slice and preempt
  // explicitly, but a segment-done reschedule surfaces here: the thread is
  // runnable again and the core is free.
  PostMessage(GhostMsg{GhostMsgType::kThreadPreempted, thread->tid(), core,
                       machine_.sim().Now()});
}

void GhostScheduler::OnCoreIdle(int core) {
  if (core >= config_.num_managed_cores) {
    return;  // not a ghOSt-managed core
  }
  PostMessage(
      GhostMsg{GhostMsgType::kCpuAvailable, 0, core, machine_.sim().Now()});
}

void GhostScheduler::PostMessage(GhostMsg msg) {
  channel_.push_back(msg);
  ScheduleAgentRun();
}

void GhostScheduler::ScheduleAgentRun() {
  if (agent_run_pending_ || channel_.empty()) {
    return;
  }
  agent_run_pending_ = true;
  machine_.sim().ScheduleAfter(config_.message_delay,
                               [this]() { AgentRun(); });
}

void GhostScheduler::AgentRun() {
  agent_run_pending_ = false;

  // Drain the channel, updating the agent's runnable view.
  Duration agent_work = 0;
  while (!channel_.empty()) {
    const GhostMsg msg = channel_.front();
    channel_.pop_front();
    messages_processed_->value += 1;
    agent_work += config_.per_message_cost;
    switch (msg.type) {
      case GhostMsgType::kThreadWakeup:
      case GhostMsgType::kThreadPreempted:
        runnable_.push_back(GhostThreadInfo{msg.tid, msg.when});
        break;
      case GhostMsgType::kThreadBlocked:
        // Normally not in the runnable view (it was running); erase
        // defensively in case of stale entries.
        runnable_.erase(std::remove_if(runnable_.begin(), runnable_.end(),
                                       [&](const GhostThreadInfo& info) {
                                         return info.tid == msg.tid;
                                       }),
                        runnable_.end());
        break;
      case GhostMsgType::kCpuAvailable:
        break;  // core occupancy is read directly from the machine below
    }
  }

  runnable_depth_->Set(static_cast<int64_t>(runnable_.size()));

  // Agent decision pass happens after it has paid for the message drain.
  if (agent_work == 0) {
    CommitPlacements();
  } else {
    machine_.sim().ScheduleAfter(agent_work, [this]() { CommitPlacements(); });
  }
}

void GhostScheduler::CommitPlacements() {
  // Place runnable threads on idle managed cores per the policy.
  for (int core = 0; core < config_.num_managed_cores; ++core) {
    if (runnable_.empty()) {
      break;
    }
    if (machine_.CurrentOn(core) != nullptr || committed_cores_.count(core)) {
      continue;
    }
    const int tid = policy_.PickThread(core, runnable_);
    if (tid < 0) {
      continue;
    }
    auto it = std::find_if(
        runnable_.begin(), runnable_.end(),
        [&](const GhostThreadInfo& info) { return info.tid == tid; });
    if (it == runnable_.end() || committed_tids_.count(tid)) {
      continue;  // policy picked a stale tid; skip
    }
    runnable_.erase(it);
    committed_cores_.insert(core);
    committed_tids_.insert(tid);
    ++commits_->value;
    runnable_depth_->Set(static_cast<int64_t>(runnable_.size()));
    SYRUP_TRACE(machine_.sim().Now(), "ghost",
                "commit tid=" << tid << " core=" << core);
    machine_.sim().ScheduleAfter(config_.commit_delay, [this, core, tid]() {
      committed_cores_.erase(core);
      committed_tids_.erase(tid);
      Thread* thread = nullptr;
      for (const auto& t : machine_.threads()) {
        if (t->tid() == tid) {
          thread = t.get();
          break;
        }
      }
      SYRUP_CHECK_NE(thread, nullptr);
      if (thread->state() != Thread::State::kRunnable ||
          machine_.CurrentOn(core) != nullptr) {
        // Transaction failed (state changed while in flight). Re-post a
        // wakeup so a fresh agent pass re-places the thread.
        if (thread->state() == Thread::State::kRunnable) {
          PostMessage(GhostMsg{GhostMsgType::kThreadWakeup, thread->tid(),
                               -1, machine_.sim().Now()});
        }
        return;
      }
      machine_.RunOn(thread, core, kInfiniteSlice);
    });
  }

  // No core free: consult the policy about preemption for waiting threads.
  for (const GhostThreadInfo& waiter : runnable_) {
    if (committed_tids_.count(waiter.tid)) {
      continue;
    }
    for (int core = 0; core < config_.num_managed_cores; ++core) {
      if (committed_cores_.count(core)) {
        continue;
      }
      Thread* current = machine_.CurrentOn(core);
      if (current == nullptr) {
        continue;
      }
      if (policy_.ShouldPreempt(waiter, current->tid())) {
        preemptions_->value += 1;
        SYRUP_TRACE(machine_.sim().Now(), "ghost",
                    "preempt core=" << core << " victim=" << current->tid()
                                    << " for=" << waiter.tid);
        // Preempt synchronously; the victim's wakeup + the idle core
        // messages drive a fresh agent pass that places the waiter.
        machine_.Preempt(core);
        break;
      }
    }
  }
}

}  // namespace syrup
