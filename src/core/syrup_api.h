// The Syrup application API (paper Table 1).
//
// A SyrupClient is an application's connection to syrupd (over a Unix
// domain socket in the paper; a direct call here). Method names map 1:1 to
// the paper's API:
//
//   syr_deploy_policy(policy_file, hook) -> prog_fd
//   syr_map_open(path)                   -> map_fd
//   syr_map_close(map_fd)                -> status
//   syr_map_lookup_elem(map_fd, key)     -> value
//   syr_map_update_elem(map_fd, key, v)  -> status
#ifndef SYRUP_SRC_CORE_SYRUP_API_H_
#define SYRUP_SRC_CORE_SYRUP_API_H_

#include <string>
#include <string_view>

#include "src/core/syrupd.h"

namespace syrup {

class SyrupClient {
 public:
  SyrupClient(Syrupd& daemon, AppId app) : daemon_(daemon), app_(app) {}

  AppId app() const { return app_; }
  Syrupd& daemon() { return daemon_; }

  // Deploys the policy in `policy_file` (VM assembly text) to `hook`.
  StatusOr<int> syr_deploy_policy(std::string_view policy_file, Hook hook) {
    return daemon_.DeployPolicyFile(app_, policy_file, hook);
  }

  StatusOr<int> syr_map_open(const std::string& path) {
    return daemon_.MapOpen(app_, path);
  }

  Status syr_map_close(int map_fd) { return daemon_.MapClose(map_fd); }

  StatusOr<uint64_t> syr_map_lookup_elem(int map_fd, uint32_t key) {
    return daemon_.MapLookupElem(map_fd, key);
  }

  Status syr_map_update_elem(int map_fd, uint32_t key, uint64_t value) {
    return daemon_.MapUpdateElem(map_fd, key, value);
  }

 private:
  Syrupd& daemon_;
  AppId app_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_SYRUP_API_H_
