// The Syrup application API (paper Table 1).
//
// A SyrupClient is an application's connection to syrupd (over a Unix
// domain socket in the paper; a direct call here). The primary surface is
// typed and RAII (src/core/handles.h):
//
//   DeployPolicy(policy_file, hook) -> PolicyHandle  (detaches on drop)
//   MapCreate(spec, pin_path)       -> MapHandle     (closes on drop)
//   MapOpen(path, access)           -> MapHandle
//
// The paper-named shims map 1:1 to Table 1 and delegate to the typed
// surface, releasing ownership so raw-fd callers keep the manual
// lifecycle the paper describes:
//
//   syr_deploy_policy(policy_file, hook) -> prog_fd
//   syr_map_open(path)                   -> map_fd
//   syr_map_close(map_fd)                -> status
//   syr_map_lookup_elem(map_fd, key)     -> value
//   syr_map_update_elem(map_fd, key, v)  -> status
#ifndef SYRUP_SRC_CORE_SYRUP_API_H_
#define SYRUP_SRC_CORE_SYRUP_API_H_

#include <string>
#include <string_view>
#include <utility>

#include "src/core/handles.h"
#include "src/core/syrupd.h"

namespace syrup {

class SyrupClient {
 public:
  SyrupClient(Syrupd& daemon, AppId app) : daemon_(daemon), app_(app) {}

  AppId app() const { return app_; }
  Syrupd& daemon() { return daemon_; }

  // --- Typed surface ------------------------------------------------------

  // Deploys the policy in `policy_file` (VM assembly text) to `hook`. The
  // returned handle owns the deployment: dropping it detaches the policy
  // (unless a later deploy already replaced it).
  StatusOr<PolicyHandle> DeployPolicy(std::string_view policy_file,
                                      Hook hook) {
    SYRUP_ASSIGN_OR_RETURN(int prog_id,
                           daemon_.DeployPolicyFile(app_, policy_file, hook));
    return PolicyHandle(&daemon_, app_, hook, prog_id);
  }

  // Creates a map pinned at `pin_path`, owned by this app.
  StatusOr<MapHandle> MapCreate(const MapSpec& spec,
                                const std::string& pin_path,
                                PinMode mode = {}) {
    SYRUP_ASSIGN_OR_RETURN(int fd,
                           daemon_.MapCreate(app_, spec, pin_path, mode));
    return MapHandle(&daemon_, fd, MapAccess::kWrite, pin_path);
  }

  // Opens an existing pinned map; the handle remembers the access mode and
  // the daemon rejects writes through read-only fds.
  StatusOr<MapHandle> MapOpen(const std::string& path,
                              MapAccess access = MapAccess::kWrite) {
    SYRUP_ASSIGN_OR_RETURN(int fd, daemon_.MapOpen(app_, path, access));
    return MapHandle(&daemon_, fd, access, path);
  }

  // --- Flow-decision cache ------------------------------------------------

  // One typed knob surface for the daemon's flow cache (capacity,
  // admission, adaptive sizing); replaces the old enabled-only bool.
  void SetFlowCacheConfig(const FlowCacheConfig& config) {
    daemon_.set_flow_cache_config(config);
  }
  const FlowCacheConfig& FlowCacheConfiguration() const {
    return daemon_.flow_cache_config();
  }

  // --- Paper-named shims (Table 1) ----------------------------------------

  StatusOr<int> syr_deploy_policy(std::string_view policy_file, Hook hook) {
    SYRUP_ASSIGN_OR_RETURN(PolicyHandle handle,
                           DeployPolicy(policy_file, hook));
    return handle.Release();
  }

  StatusOr<int> syr_map_open(const std::string& path) {
    SYRUP_ASSIGN_OR_RETURN(MapHandle handle, MapOpen(path));
    return handle.Release();
  }

  Status syr_map_close(int map_fd) { return daemon_.MapClose(map_fd); }

  StatusOr<uint64_t> syr_map_lookup_elem(int map_fd, uint32_t key) {
    return daemon_.MapLookupElem(map_fd, key);
  }

  Status syr_map_update_elem(int map_fd, uint32_t key, uint64_t value) {
    return daemon_.MapUpdateElem(map_fd, key, value);
  }

 private:
  Syrupd& daemon_;
  AppId app_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_SYRUP_API_H_
