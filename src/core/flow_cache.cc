#include "src/core/flow_cache.h"

#include "src/common/hash.h"

namespace syrup {

FlowCacheBinding FlowCacheBinding::ForProgram(
    const bpf::AnalysisFacts& facts, const bpf::Program& program) {
  FlowCacheBinding binding;
  if (!facts.cacheable) {
    return binding;
  }
  binding.cacheable = true;
  binding.pkt_read_mask = facts.pkt_read_mask;
  binding.read_maps.reserve(facts.read_maps.size());
  for (int32_t index : facts.read_maps) {
    if (index < 0 || static_cast<size_t>(index) >= program.maps.size()) {
      // A read-set index the program cannot resolve means the facts do not
      // describe this program; refuse to cache rather than mis-key.
      return FlowCacheBinding{};
    }
    binding.read_maps.push_back(program.maps[static_cast<size_t>(index)].get());
  }
  return binding;
}

FlowCacheCounters FlowCacheCounters::Detached() {
  FlowCacheCounters c;
  c.hits = std::make_shared<obs::Counter>();
  c.misses = std::make_shared<obs::Counter>();
  c.invalidations = std::make_shared<obs::Counter>();
  c.uncacheable = std::make_shared<obs::Counter>();
  return c;
}

FlowCacheCounters FlowCacheCounters::InRegistry(
    obs::MetricsRegistry& registry, std::string_view hook) {
  FlowCacheCounters c;
  c.hits = registry.GetCounter("syrupd", hook, "flow_cache.hits");
  c.misses = registry.GetCounter("syrupd", hook, "flow_cache.misses");
  c.invalidations =
      registry.GetCounter("syrupd", hook, "flow_cache.invalidations");
  c.uncacheable =
      registry.GetCounter("syrupd", hook, "flow_cache.uncacheable");
  return c;
}

FlowDecisionCache::Key FlowDecisionCache::MakeKey(const PacketView& pkt,
                                                  uint64_t mask) {
  Key key;
  const uint16_t port = pkt.DstPort();
  const uint16_t len = static_cast<uint16_t>(pkt.size());
  std::memcpy(key.bytes, &port, sizeof(port));
  std::memcpy(key.bytes + 2, &len, sizeof(len));
  uint32_t pos = 4;
  uint64_t m = mask;
  while (m != 0) {
    const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
    m &= m - 1;
    if (i < pkt.size()) {
      key.bytes[pos++] = pkt.start[i];
    }
  }
  key.len = pos;
  // FNV-1a over the key bytes, finished with Mix64 for slot spread. The
  // mask itself needn't be hashed: one cache serves one hook, and every
  // entry behind a port was produced under that port's single deployment.
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < pos; ++i) {
    h = (h ^ key.bytes[i]) * 1099511628211ull;
  }
  key.hash = Mix64(h);
  return key;
}

bool FlowDecisionCache::Lookup(const Key& key, uint64_t epoch,
                               uint64_t version_sum, Decision* out,
                               bool* stale) {
  *stale = false;
  const size_t base = static_cast<size_t>(key.hash) & (kNumSlots - 1);
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    Entry& entry = slots_[(base + probe) & (kNumSlots - 1)];
    if (!entry.valid || entry.hash != key.hash ||
        entry.key_len != key.len ||
        std::memcmp(entry.key, key.bytes, key.len) != 0) {
      continue;
    }
    if (entry.epoch != epoch || entry.version_sum != version_sum) {
      // The flow is known but a read-set map changed (or the hook was
      // redeployed) since the decision was computed: self-invalidate.
      entry.valid = false;
      *stale = true;
      return false;
    }
    *out = entry.decision;
    return true;
  }
  return false;
}

void FlowDecisionCache::Insert(const Key& key, Decision decision,
                               uint64_t epoch, uint64_t version_sum) {
  const size_t base = static_cast<size_t>(key.hash) & (kNumSlots - 1);
  size_t victim = base;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    const size_t slot = (base + probe) & (kNumSlots - 1);
    Entry& entry = slots_[slot];
    if (!entry.valid) {
      victim = slot;
      break;
    }
    if (entry.hash == key.hash && entry.key_len == key.len &&
        std::memcmp(entry.key, key.bytes, key.len) == 0) {
      victim = slot;  // refresh the existing entry for this flow
      break;
    }
  }
  Entry& entry = slots_[victim];
  entry.hash = key.hash;
  entry.version_sum = version_sum;
  entry.epoch = epoch;
  entry.key_len = key.len;
  entry.decision = decision;
  std::memcpy(entry.key, key.bytes, key.len);
  entry.valid = true;
}

void FlowDecisionCache::Clear() {
  for (Entry& entry : slots_) {
    entry.valid = false;
  }
}

size_t FlowDecisionCache::OccupiedSlots() const {
  size_t n = 0;
  for (const Entry& entry : slots_) {
    n += entry.valid ? 1 : 0;
  }
  return n;
}

}  // namespace syrup
