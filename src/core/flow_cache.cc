#include "src/core/flow_cache.h"

#include <algorithm>
#include <bit>

#include "src/common/hash.h"

namespace syrup {

namespace {

// Four counter probes + two doorkeeper probes per key, Kirsch-Mitzenmacher
// style: index_i = h1 + i * h2. Keys arrive already Mix64-finished (the
// cache hash), so the halves are well dispersed.
inline size_t SketchIndex(uint64_t hash, unsigned probe, size_t mask) {
  const uint64_t h1 = hash;
  const uint64_t h2 = (hash >> 31) | 1;  // odd, so probes never collapse
  return static_cast<size_t>(h1 + (probe + 1) * h2) & mask;
}

}  // namespace

FlowCacheBinding FlowCacheBinding::ForProgram(
    const bpf::AnalysisFacts& facts, const bpf::Program& program) {
  FlowCacheBinding binding;
  if (!facts.cacheable) {
    return binding;
  }
  // Defense in depth: `cacheable` already implies a pure program, but
  // read_maps alone never was the complete map footprint — a program with
  // writes or in-place atomics must not be memoized even if a bug upstream
  // left the cacheable bit set, so consult the write sets explicitly.
  if (!facts.write_maps.empty() || !facts.atomic_maps.empty()) {
    return binding;
  }
  binding.cacheable = true;
  binding.pkt_read_mask = facts.pkt_read_mask;
  binding.read_maps.reserve(facts.read_maps.size());
  for (int32_t index : facts.read_maps) {
    if (index < 0 || static_cast<size_t>(index) >= program.maps.size()) {
      // A read-set index the program cannot resolve means the facts do not
      // describe this program; refuse to cache rather than mis-key.
      return FlowCacheBinding{};
    }
    binding.read_maps.push_back(program.maps[static_cast<size_t>(index)].get());
  }
  return binding;
}

FlowCacheCounters FlowCacheCounters::Detached() {
  FlowCacheCounters c;
  c.hits = std::make_shared<obs::Counter>();
  c.misses = std::make_shared<obs::Counter>();
  c.invalidations = std::make_shared<obs::Counter>();
  c.uncacheable = std::make_shared<obs::Counter>();
  c.evictions = std::make_shared<obs::Counter>();
  c.admission_rejects = std::make_shared<obs::Counter>();
  c.resizes = std::make_shared<obs::Counter>();
  c.capacity = std::make_shared<obs::Gauge>();
  return c;
}

FlowCacheCounters FlowCacheCounters::InRegistry(
    obs::MetricsRegistry& registry, std::string_view hook) {
  FlowCacheCounters c;
  c.hits = registry.GetCounter("syrupd", hook, "flow_cache.hits");
  c.misses = registry.GetCounter("syrupd", hook, "flow_cache.misses");
  c.invalidations =
      registry.GetCounter("syrupd", hook, "flow_cache.invalidations");
  c.uncacheable =
      registry.GetCounter("syrupd", hook, "flow_cache.uncacheable");
  c.evictions = registry.GetCounter("syrupd", hook, "flow_cache.evictions");
  c.admission_rejects =
      registry.GetCounter("syrupd", hook, "flow_cache.admission_rejects");
  c.resizes = registry.GetCounter("syrupd", hook, "flow_cache.resizes");
  c.capacity = registry.GetGauge("syrupd", hook, "flow_cache.capacity");
  return c;
}

FlowCacheCounters FlowCacheCounters::InRegistryShard(
    obs::MetricsRegistry& registry, std::string_view hook, int shard) {
  FlowCacheCounters c;
  c.hits = registry.GetCounterShard("syrupd", hook, "flow_cache.hits", shard);
  c.misses =
      registry.GetCounterShard("syrupd", hook, "flow_cache.misses", shard);
  c.invalidations = registry.GetCounterShard("syrupd", hook,
                                             "flow_cache.invalidations", shard);
  c.uncacheable = registry.GetCounterShard("syrupd", hook,
                                           "flow_cache.uncacheable", shard);
  c.evictions =
      registry.GetCounterShard("syrupd", hook, "flow_cache.evictions", shard);
  c.admission_rejects = registry.GetCounterShard(
      "syrupd", hook, "flow_cache.admission_rejects", shard);
  c.resizes =
      registry.GetCounterShard("syrupd", hook, "flow_cache.resizes", shard);
  c.capacity =
      registry.GetGaugeShard("syrupd", hook, "flow_cache.capacity", shard);
  return c;
}

// --- FrequencySketch --------------------------------------------------------

void FrequencySketch::Resize(size_t counters) {
  const size_t n = std::bit_ceil(std::max<size_t>(counters, 64));
  mask_ = n - 1;
  table_.assign(n / 16, 0);
  door_.assign(n / 64, 0);
  samples_ = 0;
  // ~8 samples per counter before aging: long enough that hot flows climb
  // well clear of one-hit wonders, short enough to track shifting traffic.
  sample_limit_ = 8 * n;
}

bool FrequencySketch::DoorkeeperTest(uint64_t hash) const {
  const size_t a = SketchIndex(hash, 4, mask_);
  const size_t b = SketchIndex(hash, 5, mask_);
  return (door_[a >> 6] >> (a & 63)) & 1 && (door_[b >> 6] >> (b & 63)) & 1;
}

void FrequencySketch::DoorkeeperSet(uint64_t hash) {
  const size_t a = SketchIndex(hash, 4, mask_);
  const size_t b = SketchIndex(hash, 5, mask_);
  door_[a >> 6] |= uint64_t{1} << (a & 63);
  door_[b >> 6] |= uint64_t{1} << (b & 63);
}

void FrequencySketch::Touch(uint64_t hash) {
  ++samples_;
  if (!DoorkeeperTest(hash)) {
    // First occurrence since the last aging: the doorkeeper absorbs it.
    DoorkeeperSet(hash);
  } else {
    // Conservative update: only bump the counters currently at the
    // minimum, which tightens the min-estimate against over-counting.
    size_t index[4];
    uint32_t count[4];
    uint32_t min = kMaxEstimate;
    for (unsigned p = 0; p < 4; ++p) {
      index[p] = SketchIndex(hash, p, mask_);
      count[p] = CounterAt(index[p]);
      min = std::min(min, count[p]);
    }
    if (min < kMaxEstimate) {
      for (unsigned p = 0; p < 4; ++p) {
        if (count[p] == min) {
          table_[index[p] >> 4] += uint64_t{1} << ((index[p] & 15) * 4);
        }
      }
    }
  }
  if (samples_ >= sample_limit_) {
    Age();
  }
}

uint32_t FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t min = kMaxEstimate;
  for (unsigned p = 0; p < 4; ++p) {
    min = std::min(min, CounterAt(SketchIndex(hash, p, mask_)));
  }
  return min + (DoorkeeperTest(hash) ? 1 : 0);
}

void FrequencySketch::Age() {
  // Halve every 4-bit counter in parallel: shift the word and clear the
  // bit that crossed each nibble boundary.
  for (uint64_t& word : table_) {
    word = (word >> 1) & 0x7777777777777777ull;
  }
  std::fill(door_.begin(), door_.end(), 0);
  samples_ /= 2;  // the halved counters represent half the history
  ++agings_;
}

// --- FlowDecisionCache ------------------------------------------------------

size_t FlowDecisionCache::RoundCapacity(size_t requested) {
  return std::bit_ceil(std::clamp(requested, kMinSlots, kMaxSlots));
}

void FlowDecisionCache::Configure(const FlowCacheConfig& config) {
  config_ = config;
  const size_t slots = RoundCapacity(config.capacity);
  // Adaptive shrink may go below the configured capacity (the config is a
  // starting point) but never below kShrinkFloor — unless the operator
  // asked for a smaller table to begin with (tiny test configs).
  floor_slots_ = std::min(slots, kShrinkFloor);
  slots_.assign(slots, Entry{});
  keys_.assign(slots * kMaxKeyBytes, 0);
  mask_ = slots - 1;
  sketch_.Resize(slots);
  occupied_ = 0;
  window_ = 1;
  window_lookups_ = 0;
  window_pressure_ = 0;
  window_live_ = 0;
  prev_window_live_ = 0;
  counters_.capacity->Set(static_cast<int64_t>(slots));
}

void FlowDecisionCache::BindCounters(FlowCacheCounters counters) {
  counters_ = std::move(counters);
  counters_.capacity->Set(static_cast<int64_t>(slots_.size()));
}

FlowDecisionCache::Key FlowDecisionCache::MakeKey(const PacketView& pkt,
                                                  uint64_t mask) {
  Key key;
  const uint16_t port = pkt.DstPort();
  const uint16_t len = static_cast<uint16_t>(pkt.size());
  std::memcpy(key.bytes, &port, sizeof(port));
  std::memcpy(key.bytes + 2, &len, sizeof(len));
  uint32_t pos = 4;
  uint64_t m = mask;
  while (m != 0) {
    const unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
    m &= m - 1;
    if (i < pkt.size()) {
      key.bytes[pos++] = pkt.start[i];
    }
  }
  key.len = pos;
  uint64_t prefix = 0;
  std::memcpy(&prefix, key.bytes, pos < 8 ? pos : 8);
  key.prefix = prefix;
  // FNV-1a over the key bytes, finished with Mix64 for slot spread. The
  // mask itself needn't be hashed: one cache serves one hook, and every
  // entry behind a port was produced under that port's single deployment.
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < pos; ++i) {
    h = (h ^ key.bytes[i]) * 1099511628211ull;
  }
  key.hash = Mix64(h);
  return key;
}

bool FlowDecisionCache::Lookup(const Key& key, uint64_t epoch,
                               uint64_t version_sum, Decision* out,
                               bool* stale) {
  *stale = false;
  ++window_lookups_;
  if (window_lookups_ >= slots_.size()) {
    AdvanceWindow();
  }
  const size_t base = static_cast<size_t>(key.hash) & mask_;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    const size_t slot = (base + probe) & mask_;
    Entry& entry = slots_[slot];
    if (!entry.valid || !SlotMatches(entry, slot, key)) {
      continue;
    }
    if (entry.epoch != epoch || entry.version_sum != version_sum) {
      // The flow is known but a read-set map changed (or the hook was
      // redeployed) since the decision was computed: self-invalidate.
      entry.valid = false;
      --occupied_;
      *stale = true;
      return false;
    }
    if (entry.last_seen != window_) {
      // First hit this window: the entry proves it is live.
      entry.last_seen = window_;
      ++window_live_;
    }
    *out = entry.decision;
    return true;
  }
  return false;
}

void FlowDecisionCache::Insert(const Key& key, Decision decision,
                               uint64_t epoch, uint64_t version_sum) {
  // Every insert is a cache miss the dispatcher just paid for, so it is
  // exactly one access of this flow: feed the sketch here (and only here —
  // the doorkeeper fast path means hits never touch frequency state).
  if (config_.admission) {
    sketch_.Touch(key.hash);
  }

  const size_t base = static_cast<size_t>(key.hash) & mask_;
  size_t victim = slots_.size();  // npos
  uint32_t victim_estimate = 0;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    const size_t slot = (base + probe) & mask_;
    Entry& entry = slots_[slot];
    if (!entry.valid) {
      entry.hash = key.hash;
      entry.version_sum = version_sum;
      entry.epoch = epoch;
      entry.key_prefix = key.prefix;
      entry.key_len = key.len;
      entry.decision = decision;
      entry.last_seen = window_;
      std::memcpy(KeyAt(slot), key.bytes, key.len);
      entry.valid = true;
      ++occupied_;
      return;
    }
    if (SlotMatches(entry, slot, key)) {
      // Refresh the existing entry for this flow.
      entry.version_sum = version_sum;
      entry.epoch = epoch;
      entry.decision = decision;
      entry.last_seen = window_;
      return;
    }
    if (entry.epoch != epoch) {
      // A stale-epoch resident can never hit again: free real estate.
      victim = slot;
      victim_estimate = 0;
    } else if (victim == slots_.size()) {
      victim = slot;
      victim_estimate = config_.admission ? sketch_.Estimate(entry.hash) : 0;
    } else if (config_.admission && victim_estimate != 0) {
      const uint32_t estimate = sketch_.Estimate(entry.hash);
      if (estimate < victim_estimate) {
        victim = slot;
        victim_estimate = estimate;
      }
    }
  }

  // Probe window full of live entries: admission decides. Accounting uses
  // the single-writer IncRelaxed: each cache has exactly one dispatching
  // thread (its shard), but a metrics snapshot may Load() concurrently.
  ++window_pressure_;
  if (config_.admission && victim_estimate != 0 &&
      sketch_.Estimate(key.hash) <= victim_estimate) {
    counters_.admission_rejects->IncRelaxed();
    return;
  }
  counters_.evictions->IncRelaxed();
  Entry& entry = slots_[victim];
  entry.hash = key.hash;
  entry.version_sum = version_sum;
  entry.epoch = epoch;
  entry.key_prefix = key.prefix;
  entry.key_len = key.len;
  entry.decision = decision;
  entry.last_seen = window_;
  std::memcpy(KeyAt(victim), key.bytes, key.len);
  entry.valid = true;
}

void FlowDecisionCache::AdvanceWindow() {
  if (config_.adaptive) {
    // Entries that *hit* in the current or previous window approximate the
    // live (recurring) flow population — inserted-but-never-hit entries are
    // one-hit wonders and must not grow the table. Eviction/admission
    // pressure counts the flows the table had no room for.
    const size_t live =
        static_cast<size_t>(std::max(window_live_, prev_window_live_));
    const size_t target = live + static_cast<size_t>(window_pressure_);
    const size_t desired =
        std::clamp(RoundCapacity(2 * std::max<size_t>(target, 1)),
                   floor_slots_, kMaxSlots);
    if (desired > slots_.size()) {
      ResizeTo(desired);
    } else if (desired * 4 <= slots_.size() &&
               slots_.size() > floor_slots_) {
      // Shrink one step at a time with 4x hysteresis so a bursty lull
      // doesn't thrash the table.
      ResizeTo(slots_.size() / 2);
    }
  }
  prev_window_live_ = window_live_;
  window_live_ = 0;
  ++window_;
  window_lookups_ = 0;
  window_pressure_ = 0;
}

void FlowDecisionCache::Place(const Entry& entry, const uint8_t* key_bytes) {
  const size_t base = static_cast<size_t>(entry.hash) & mask_;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    const size_t index = (base + probe) & mask_;
    Entry& slot = slots_[index];
    if (!slot.valid) {
      slot = entry;
      std::memcpy(KeyAt(index), key_bytes, entry.key_len);
      ++occupied_;
      return;
    }
  }
  // No room in the new table's probe window: the entry is dropped, which
  // is an eviction by resize.
  counters_.evictions->IncRelaxed();
}

void FlowDecisionCache::ResizeTo(size_t new_slots) {
  std::vector<Entry> old = std::move(slots_);
  std::vector<uint8_t> old_keys = std::move(keys_);
  slots_.assign(new_slots, Entry{});
  keys_.assign(new_slots * kMaxKeyBytes, 0);
  mask_ = new_slots - 1;
  occupied_ = 0;
  // The sketch resizes (and so resets) with the table: frequency state is
  // recent-traffic state, and the admission fight restarts fairly.
  sketch_.Resize(new_slots);
  // Rehash live entries first so a shrink keeps the useful ones when probe
  // windows fill.
  for (size_t i = 0; i < old.size(); ++i) {
    if (old[i].valid && window_ - old[i].last_seen <= 1) {
      Place(old[i], old_keys.data() + i * kMaxKeyBytes);
    }
  }
  for (size_t i = 0; i < old.size(); ++i) {
    if (old[i].valid && window_ - old[i].last_seen > 1) {
      Place(old[i], old_keys.data() + i * kMaxKeyBytes);
    }
  }
  counters_.resizes->IncRelaxed();
  counters_.capacity->Set(static_cast<int64_t>(new_slots));
}

void FlowDecisionCache::Clear() {
  for (Entry& entry : slots_) {
    entry.valid = false;
  }
  occupied_ = 0;
}

}  // namespace syrup
