#include "src/core/root_dispatcher.h"

#include <cstring>

#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/common/logging.h"

namespace syrup {
namespace {

// r1 = pkt_start, r2 = pkt_end. The dst-port field sits at bytes [2, 4).
// The port is used in raw wire byte order both here and in AddRoute, so no
// byte swap is needed for the map key.
constexpr char kDispatcherAsm[] = R"(
.name root_dispatcher
.ctx packet
.map port_map hash 2 4 1024
.map prog_array prog_array 4 8 %MAX_APPS%
  mov r3, r1
  add r3, 4
  jgt r3, r2, pass          ; runt packet: no port to match
  ldxh r4, [r1+2]           ; dst port, raw wire order
  stxh [r10-2], r4
  ldmapfd r1, port_map
  mov r2, r10
  add r2, -2
  call map_lookup_elem
  jeq r0, 0, pass           ; no app owns this port
  ldxw r3, [r0+0]           ; prog array index
  mov r1, 0                 ; ctx (unused by tail_call)
  ldmapfd r2, prog_array
  call tail_call
  ; tail_call returns only on a miss (empty slot): fall through to PASS.
pass:
  mov r0, PASS
  exit
)";

}  // namespace

StatusOr<RootDispatcher> BuildRootDispatcher(uint32_t max_apps) {
  std::string source = kDispatcherAsm;
  const std::string placeholder = "%MAX_APPS%";
  const size_t at = source.find(placeholder);
  SYRUP_CHECK_NE(at, std::string::npos);
  source.replace(at, placeholder.size(), std::to_string(max_apps));

  SYRUP_ASSIGN_OR_RETURN(bpf::AssembledProgram assembled,
                         bpf::Assemble(source));

  RootDispatcher dispatcher;
  dispatcher.program = std::make_shared<bpf::Program>();
  dispatcher.program->name = assembled.name;
  dispatcher.program->insns = std::move(assembled.insns);
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    SYRUP_ASSIGN_OR_RETURN(std::shared_ptr<Map> map, CreateMap(slot.spec));
    if (slot.name == "port_map") {
      dispatcher.port_map = map;
    } else if (slot.name == "prog_array") {
      dispatcher.prog_array = std::static_pointer_cast<ProgArrayMap>(map);
    }
    dispatcher.program->maps.push_back(std::move(map));
  }
  SYRUP_RETURN_IF_ERROR(
      bpf::Verify(*dispatcher.program, bpf::ProgramContext::kPacket));
  return dispatcher;
}

StatusOr<RouteHandle> RootDispatcher::AddRoute(uint16_t port, uint32_t index,
                                               uint64_t prog_id) {
  if (port_map == nullptr || prog_array == nullptr) {
    return FailedPreconditionError("dispatcher not built");
  }
  const uint16_t wire_port = __builtin_bswap16(port);  // raw wire order
  SYRUP_RETURN_IF_ERROR(
      port_map->Update(&wire_port, &index, UpdateFlag::kAny));
  uint32_t key = index;
  uint64_t value = prog_id;
  SYRUP_RETURN_IF_ERROR(prog_array->Update(&key, &value, UpdateFlag::kAny));
  return RouteHandle(this, port, index, prog_id);
}

Status RootDispatcher::RemoveRoute(uint16_t port, uint32_t index,
                                   int64_t only_prog_id) {
  if (port_map == nullptr || prog_array == nullptr) {
    return FailedPreconditionError("dispatcher not built");
  }
  const uint16_t wire_port = __builtin_bswap16(port);
  const void* routed = port_map->Lookup(&wire_port);
  if (routed == nullptr) {
    return NotFoundError("no route for port");
  }
  uint32_t routed_index;
  std::memcpy(&routed_index, routed, sizeof(routed_index));
  if (routed_index != index) {
    // The port was re-pointed at another slot: this route is already gone.
    return NotFoundError("route re-pointed");
  }
  if (only_prog_id >= 0) {
    uint32_t key = index;
    const void* slot = prog_array->Lookup(&key);
    uint64_t slot_prog = 0;
    if (slot != nullptr) {
      std::memcpy(&slot_prog, slot, sizeof(slot_prog));
    }
    if (slot_prog != static_cast<uint64_t>(only_prog_id)) {
      return NotFoundError("slot holds a different program");
    }
  }
  SYRUP_RETURN_IF_ERROR(port_map->Delete(&wire_port));
  uint32_t key = index;
  return prog_array->Delete(&key);
}

Status RootDispatcher::DispatchBatch(bpf::Interpreter& interp,
                                     std::span<const PacketView> pkts,
                                     std::span<Decision> out) const {
  if (program == nullptr) {
    return FailedPreconditionError("dispatcher not built");
  }
  if (pkts.size() != out.size()) {
    return InvalidArgumentError("pkts/out size mismatch");
  }
  for (size_t i = 0; i < pkts.size(); ++i) {
    SYRUP_ASSIGN_OR_RETURN(
        bpf::ExecResult result,
        interp.Run(*program, reinterpret_cast<uint64_t>(pkts[i].start),
                   reinterpret_cast<uint64_t>(pkts[i].end),
                   /*args_are_packet=*/true));
    out[i] = static_cast<Decision>(result.r0);
  }
  return OkStatus();
}

}  // namespace syrup
