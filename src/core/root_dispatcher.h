// The literal root-dispatcher program (paper §4.3).
//
// syrupd's isolation design loads one root program at each hook. The root
// program parses the packet's destination port, looks the port up in a hash
// map, and tail-calls into a PROG_ARRAY slot holding that application's
// policy. This file builds that exact program for the Syrup VM so the
// mechanism itself is testable and benchmarkable; the simulation hot path
// uses Syrupd::Dispatch, a native implementation of the same routing.
#ifndef SYRUP_SRC_CORE_ROOT_DISPATCHER_H_
#define SYRUP_SRC_CORE_ROOT_DISPATCHER_H_

#include <cstdint>
#include <memory>

#include "src/bpf/program.h"
#include "src/common/status.h"
#include "src/map/prog_array.h"

namespace syrup {

struct RootDispatcher {
  std::shared_ptr<bpf::Program> program;
  // dst port (2 raw wire bytes as the key) -> prog array index.
  std::shared_ptr<Map> port_map;
  // prog array index -> program id.
  std::shared_ptr<ProgArrayMap> prog_array;

  // Routes `port` to prog array slot `index` holding program `prog_id`.
  Status AddRoute(uint16_t port, uint32_t index, uint64_t prog_id);
};

// Assembles and verifies the dispatcher. `max_apps` bounds the prog array.
StatusOr<RootDispatcher> BuildRootDispatcher(uint32_t max_apps = 64);

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_ROOT_DISPATCHER_H_
