// The literal root-dispatcher program (paper §4.3).
//
// syrupd's isolation design loads one root program at each hook. The root
// program parses the packet's destination port, looks the port up in a hash
// map, and tail-calls into a PROG_ARRAY slot holding that application's
// policy. This file builds that exact program for the Syrup VM so the
// mechanism itself is testable and benchmarkable; the simulation hot path
// uses Syrupd::DispatchBatch, a native implementation of the same routing
// (DispatchBatch runs the port match natively and batch-probes the flow
// cache; Dispatch is its batch-of-1 form).
//
// Routes follow the same typed-handle pattern as MapHandle/PolicyHandle:
// AddRoute returns a RouteHandle that withdraws the route when it goes out
// of scope, conditionally — a stale handle never tears down a route that
// was re-pointed at a different program.
#ifndef SYRUP_SRC_CORE_ROOT_DISPATCHER_H_
#define SYRUP_SRC_CORE_ROOT_DISPATCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "src/bpf/interpreter.h"
#include "src/bpf/program.h"
#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/map/prog_array.h"
#include "src/net/packet.h"

namespace syrup {

class RouteHandle;

struct RootDispatcher {
  std::shared_ptr<bpf::Program> program;
  // dst port (2 raw wire bytes as the key) -> prog array index.
  std::shared_ptr<Map> port_map;
  // prog array index -> program id.
  std::shared_ptr<ProgArrayMap> prog_array;

  // Routes `port` to prog array slot `index` holding program `prog_id`.
  // The returned handle owns the route: keep it alive for as long as the
  // route should exist, or Release() it for a permanent route.
  StatusOr<RouteHandle> AddRoute(uint16_t port, uint32_t index,
                                 uint64_t prog_id);

  // Withdraws `port`'s route. Conditional like PolicyHandle's detach: with
  // `only_prog_id` >= 0 the route is only removed while slot `index` still
  // holds that program, so a stale handle never removes a newer route.
  Status RemoveRoute(uint16_t port, uint32_t index,
                     int64_t only_prog_id = -1);

  // Runs the literal dispatcher over a burst of packets — the VM mirror of
  // Syrupd::DispatchBatch (one decision per view, in order). Stops on the
  // first VM error.
  Status DispatchBatch(bpf::Interpreter& interp,
                       std::span<const PacketView> pkts,
                       std::span<Decision> out) const;
};

// Owns one dispatcher route. Move-only; withdraws the route on destruction
// unless released (the MapHandle/PolicyHandle pattern).
class RouteHandle {
 public:
  RouteHandle() = default;
  RouteHandle(RootDispatcher* dispatcher, uint16_t port, uint32_t index,
              uint64_t prog_id)
      : dispatcher_(dispatcher), port_(port), index_(index),
        prog_id_(prog_id) {}

  ~RouteHandle() { Reset(); }

  RouteHandle(const RouteHandle&) = delete;
  RouteHandle& operator=(const RouteHandle&) = delete;

  RouteHandle(RouteHandle&& other) noexcept { *this = std::move(other); }
  RouteHandle& operator=(RouteHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      dispatcher_ = other.dispatcher_;
      port_ = other.port_;
      index_ = other.index_;
      prog_id_ = other.prog_id_;
      other.dispatcher_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return dispatcher_ != nullptr; }
  explicit operator bool() const { return valid(); }

  uint16_t port() const { return port_; }
  uint32_t index() const { return index_; }
  uint64_t prog_id() const { return prog_id_; }

  // Withdraws now (idempotent). NotFound means the route was already gone;
  // treated as success.
  Status Remove() {
    if (!valid()) {
      return OkStatus();
    }
    Status s = dispatcher_->RemoveRoute(port_, index_,
                                        static_cast<int64_t>(prog_id_));
    dispatcher_ = nullptr;
    return s.code() == StatusCode::kNotFound ? OkStatus() : s;
  }

  // Gives up ownership: the route outlives the handle.
  void Release() { dispatcher_ = nullptr; }

 private:
  void Reset() {
    if (valid()) {
      (void)dispatcher_->RemoveRoute(port_, index_,
                                     static_cast<int64_t>(prog_id_));
    }
    dispatcher_ = nullptr;
  }

  RootDispatcher* dispatcher_ = nullptr;
  uint16_t port_ = 0;
  uint32_t index_ = 0;
  uint64_t prog_id_ = 0;
};

// Assembles and verifies the dispatcher. `max_apps` bounds the prog array.
StatusOr<RootDispatcher> BuildRootDispatcher(uint32_t max_apps = 64);

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_ROOT_DISPATCHER_H_
