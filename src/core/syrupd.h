// syrupd: the system-wide Syrup daemon (paper §3.5, §4.3).
//
// Applications never attach policies to hooks themselves; they hand syrupd
// a policy file (or a pre-built native policy) and a target hook. The
// daemon:
//   * compiles/assembles the policy and creates or opens its maps (pinning
//     declared maps under /syrup/<app>/<map>, owned by the app's uid),
//   * runs the verifier before anything touches a hook,
//   * installs a per-hook dispatcher that matches each packet's destination
//     port to the owning application's policy — the PROG_ARRAY tail-call
//     design — so a policy only ever sees its own application's inputs,
//   * for the thread hook, launches the ghOSt-style agent bound to the
//     app's machine.
#ifndef SYRUP_SRC_CORE_SYRUPD_H_
#define SYRUP_SRC_CORE_SYRUPD_H_

#include <array>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/core/flow_cache.h"
#include "src/core/hook.h"
#include "src/core/policy.h"
#include "src/ghost/ghost.h"
#include "src/map/registry.h"
#include "src/net/stack.h"
#include "src/sim/simulator.h"

namespace syrup {

using AppId = uint32_t;

// One attached policy, as reported by ListDeployments (observability for
// operators and the paper's "resource manager" to act on).
struct DeploymentInfo {
  AppId app = 0;
  std::string app_name;
  Hook hook = Hook::kSocketSelect;
  uint16_t port = 0;
  std::string policy_name;
};

// Point-in-time copy of one hook's dispatcher counters (read through
// `dispatch_stats()`; the live cells live in the metrics registry under
// {"syrupd", <hook>, ...}).
struct DispatchStats {
  uint64_t dispatched = 0;  // packets matched to an app policy
  uint64_t no_policy = 0;   // packets passed through (no matching port)
};

// Deploy-time worst-case-latency budget policy. Every bytecode deployment's
// verifier-computed wcet_ns (at the tier the program will actually run on)
// is compared against the target hook's budget; over-budget programs are
// rejected with a diagnostic naming the hottest path unless the override
// knob admits them with a warning.
struct CostBudgetConfig {
  // Master switch: when off the policy.wcet_* gauges are still published
  // but nothing is ever rejected.
  bool enforce = true;
  // Override knob: admit over-budget programs anyway; the deploy succeeds,
  // a warning is logged, and policy.over_budget = 1 is published so
  // operators can find the exception.
  bool admit_over_budget = false;
  // Fraction of the budget at which policy.budget_warn is raised for
  // still-admissible programs.
  double warn_fraction = 0.8;
  // Per-hook budget override in ns; entries <= 0 use DefaultHookBudgetNs.
  double budget_ns[kNumHooks] = {};

  double BudgetFor(Hook hook) const {
    const double ns = budget_ns[HookIndex(hook)];
    return ns > 0 ? ns : DefaultHookBudgetNs(hook);
  }
};

// One map and every deployed bytecode program touching it, as operator
// labels ("app/hook/policy"). `atomics` is the subset of writers mutating
// in place with lock xadd.
struct MapInterferenceRow {
  std::string map;  // pin path when pinned, else the map spec's name
  std::vector<std::string> readers;
  std::vector<std::string> writers;
  std::vector<std::string> atomics;
};

// One cross-program interference or hygiene finding from
// AnalyzeDeployments. Severities: write-write sharing across applications
// is an error (unsynchronized last-writer-wins across trust domains);
// dead-telemetry / stale-input are warnings (userspace readers and writers
// are invisible to this analysis, so either may be intentional);
// per-program cacheability blockers are informational.
struct InterferenceFinding {
  enum class Level { kError, kWarning, kInfo };
  Level level = Level::kInfo;
  std::string category;  // write-write | dead-telemetry | stale-input |
                         // uncacheable
  std::string map;       // subject map; "" for per-program findings
  std::string detail;
};

std::string_view InterferenceLevelName(InterferenceFinding::Level level);

// Deployment-wide map-interference report (the `syrupctl analyze` surface).
struct DeploymentAnalysis {
  std::vector<MapInterferenceRow> rows;        // sorted by map name
  std::vector<InterferenceFinding> findings;   // errors first

  bool HasErrors() const;
  std::string ToJson() const;
};

class Syrupd {
 public:
  // `stack` may be null for API-only use (no packet hooks available then).
  Syrupd(Simulator& sim, HostStack* stack, uint64_t seed = 1);

  Syrupd(const Syrupd&) = delete;
  Syrupd& operator=(const Syrupd&) = delete;

  // --- Application lifecycle ---------------------------------------------

  // Registers an application (port must be unclaimed: ports are the
  // isolation key, each belongs to exactly one app).
  StatusOr<AppId> RegisterApp(const std::string& name, Uid uid,
                              uint16_t port);
  Status AddPort(AppId app, uint16_t port);

  // --- Policy deployment (syr_deploy_policy) ------------------------------

  // Deploys an untrusted policy file (VM assembly). Assembles, resolves
  // maps, verifies, then attaches. Returns the program id ("prog fd").
  StatusOr<int> DeployPolicyFile(AppId app, std::string_view policy_source,
                                 Hook hook);

  // Deploys a trusted native policy object (simulation fast path).
  StatusOr<int> DeployNativePolicy(AppId app,
                                   std::shared_ptr<PacketPolicy> policy,
                                   Hook hook);

  // Deploys a thread-scheduling policy: starts a ghOSt agent managing
  // `machine`. One thread policy per machine.
  Status DeployThreadPolicy(AppId app, GhostPolicy* policy, Machine& machine,
                            GhostConfig config = {});

  // Deploys an untrusted thread-scheduling policy file (`.ctx thread`
  // assembly; the program classifies threads by priority class, see
  // BytecodeGhostPolicy). Assembles, resolves maps, verifies, compiles per
  // the active exec mode, then starts the ghOSt agent. Returns the prog id.
  StatusOr<int> DeployThreadPolicyFile(AppId app,
                                       std::string_view policy_source,
                                       Machine& machine,
                                       GhostConfig config = {});

  // --- Execution tier ------------------------------------------------------

  // How subsequent bytecode deployments execute (already-attached policies
  // keep their tier). Default kCompiled: verified programs are translated
  // to the pre-decoded form once at attach time.
  void set_exec_mode(bpf::ExecMode mode) { exec_mode_ = mode; }
  bpf::ExecMode exec_mode() const { return exec_mode_; }

  // --- Cost budgets --------------------------------------------------------

  // Budget policy for subsequent bytecode deployments (already-attached
  // policies are not re-checked).
  void set_cost_budget_config(const CostBudgetConfig& config) {
    cost_budget_config_ = config;
  }
  const CostBudgetConfig& cost_budget_config() const {
    return cost_budget_config_;
  }

  // --- Dispatch ------------------------------------------------------------

  // The one dispatch entry point: routes a burst of inputs arriving at
  // `hook` to their owning applications' policies and writes one Decision
  // per input. Exactly equivalent to dispatching the packets one at a
  // time, in order — batching hoists only pure per-packet work (port
  // routing, flow-key derivation, cache-slot prefetch) ahead of the
  // in-order decide phase, so policy executions, version captures, and
  // every counter bump happen in the same order either way. The stack's
  // single-packet hooks wrap this with a batch of one.
  void DispatchBatch(Hook hook, std::span<const PacketView> pkts,
                     std::span<Decision> out);

  // Bursts are chunked to this many packets so the hoisted per-packet
  // state lives on the stack and prefetches land just ahead of use.
  static constexpr size_t kMaxDispatchBatch = 64;

  // --- Sharded dispatch ----------------------------------------------------

  // Gives each of `shards` dispatch shards its own flow-cache tables and
  // dispatcher counter cells (shard 0 keeps the pre-existing per-hook
  // state, so an unsharded daemon is exactly ConfigureSharding(1)). The
  // shard-qualified DispatchBatch below may then be called concurrently
  // from distinct shards' threads without sharing a cache table or a
  // counter cache line; the registry folds the per-shard cells back into
  // each hook's single StatsSnapshot() entry.
  //
  // Concurrency contract: concurrent shard dispatch is only valid when the
  // attached policies are safe to execute in parallel — verifier-proven
  // cacheable bytecode (pure by construction) or stateless native
  // policies. Stateful native policies (e.g. round-robin) must instead run
  // on per-shard Syrupd instances, which is what the sharded experiment
  // paths do. Attach/remove and reconfiguration must be quiesced while
  // shard threads are dispatching.
  void ConfigureSharding(int shards);
  int dispatch_shards() const {
    return static_cast<int>(shard_lanes_.size()) + 1;
  }

  // Dispatches on behalf of dispatch shard `shard` (0-based; shard 0 uses
  // the base tables). Identical decisions to the unsharded entry point —
  // only the cache table consulted and the cells bumped differ. Every
  // shard-qualified call, shard 0 included, uses the concurrent-safe
  // counter discipline (IncRelaxed + batched atomic app counts), so any
  // mix of shards may dispatch concurrently under the contract above.
  void DispatchBatch(Hook hook, std::span<const PacketView> pkts,
                     std::span<Decision> out, int shard);

  // --- Flow-decision cache -------------------------------------------------

  // Per-hook memoization of verifier-proven-cacheable policies (see
  // src/core/flow_cache.h). On by default; disabling is an ablation knob —
  // cacheable programs are pure, so results are bit-identical either way.
  // Reconfiguring flushes every hook's cached decisions (always safe).
  void set_flow_cache_config(const FlowCacheConfig& config);
  const FlowCacheConfig& flow_cache_config() const {
    return flow_cache_config_;
  }

  // Deprecated: the enabled bit of set_flow_cache_config. Kept as a
  // delegating shim for callers predating FlowCacheConfig.
  void set_flow_cache_enabled(bool enabled) {
    FlowCacheConfig config = flow_cache_config_;
    config.enabled = enabled;
    set_flow_cache_config(config);
  }
  bool flow_cache_enabled() const { return flow_cache_config_.enabled; }

  // The hook's deployment epoch: bumped on every attach/remove, which
  // flushes that hook's cached decisions in O(1).
  uint64_t hook_epoch(Hook hook) const {
    return hook_epoch_[HookIndex(hook)];
  }

  // Detaches the app's policy from `hook`; traffic reverts to the default.
  // With `only_prog_id` >= 0 the detach is conditional: it only removes
  // the deployment if it is still the one identified by that prog id, so a
  // stale PolicyHandle going out of scope never tears down a newer
  // deployment at the same hook.
  Status RemovePolicy(AppId app, Hook hook, int only_prog_id = -1);

  // --- Map API (syr_map_*) -------------------------------------------------

  // Creates a map and pins it at `pin_path` owned by the app. Returns an fd.
  StatusOr<int> MapCreate(AppId app, const MapSpec& spec,
                          const std::string& pin_path, PinMode mode = {});
  // Opens an existing pinned map, enforcing permissions. Returns an fd.
  StatusOr<int> MapOpen(AppId app, const std::string& path,
                        MapAccess access = MapAccess::kWrite);
  Status MapClose(int fd);
  StatusOr<uint64_t> MapLookupElem(int fd, uint32_t key);
  // Rejected with PermissionDenied when `fd` was opened read-only.
  Status MapUpdateElem(int fd, uint32_t key, uint64_t value);
  // Direct handle for in-process (policy/application) fast paths.
  std::shared_ptr<Map> MapByFd(int fd) const;
  // Access mode `fd` was opened with (kWrite when unknown fd: callers
  // should check fd validity through MapByFd first).
  MapAccess MapFdAccess(int fd) const;

  MapRegistry& registry() { return registry_; }

  // --- Observability (the syrstat surface) --------------------------------

  // The registry every component of this daemon accounts into.
  obs::MetricsRegistry& metrics() { return metrics_; }

  // One coherent snapshot of everything: stack counters, per-hook dispatch
  // and decision counts, per-app policy VM counters, per-map op counts and
  // runtime gauges (map.{occupancy,max_probe_len,tombstones,epoch_lag},
  // refreshed here), and the ghOSt agent. Serializable with
  // Snapshot::ToJson().
  obs::Snapshot StatsSnapshot() const {
    RefreshMapGauges();
    return metrics_.TakeSnapshot();
  }

  DispatchStats dispatch_stats(Hook hook) const {
    const HookCells& cells = hook_cells_[HookIndex(hook)];
    DispatchStats s{cells.dispatched->value, cells.no_policy->value};
    for (const auto& lanes : shard_lanes_) {
      const HookCells& lane = (*lanes)[HookIndex(hook)].cells;
      s.dispatched += lane.dispatched->Load();
      s.no_policy += lane.no_policy->Load();
    }
    return s;
  }
  const GhostScheduler* ghost_scheduler() const { return ghost_.get(); }

  // The policy attached for `port` at `hook` (nullptr when none) — the
  // object syrupd's dispatcher invokes, shared so callers (Table 2) can
  // drive it directly.
  std::shared_ptr<PacketPolicy> PolicyAt(Hook hook, uint16_t port) const;

  // Looks up a loaded bytecode program by id (used for tail-call
  // resolution and by Table 2 instrumentation).
  const bpf::Program* ProgramById(uint64_t prog_id) const;

  // The attach-time compiled artifact for a program id (nullptr when the
  // program was deployed in interpret mode or the id is unknown).
  const bpf::CompiledProgram* CompiledById(uint64_t prog_id) const;

  // Enumerates every attached packet policy (hook, port, owner, name).
  std::vector<DeploymentInfo> ListDeployments() const;

  // The verifier's analysis facts for a deployed bytecode program (nullptr
  // for native policies or unknown ids). Valid until the daemon dies.
  const bpf::AnalysisFacts* FactsById(uint64_t prog_id) const;

  // Deployment-wide map-interference report across every attached bytecode
  // policy (packet hooks and the thread hook): who reads/writes each map,
  // cross-application write-write sharing, dead telemetry (written but
  // never read), stale inputs (read but never written), and per-program
  // flow-cache cacheability blockers. Userspace map users (syr_map_* fds)
  // are outside the verifier's view and are not counted.
  DeploymentAnalysis AnalyzeDeployments() const;

  // Execution environment handed to bytecode policies (simulated time,
  // deterministic randomness, tail-call resolution).
  bpf::ExecEnv MakeExecEnv();

 private:
  struct AppState {
    std::string name;
    Uid uid = 0;
    std::vector<uint16_t> ports;
  };

  struct FdEntry {
    AppId app;
    std::shared_ptr<Map> map;
    MapAccess access = MapAccess::kWrite;
  };

  // One deployed policy behind a port: the per-app dispatched cell is
  // resolved once at attach time so the packet path bumps a pointer.
  // `policy_raw` is the hot-path observer into `policy` — dispatch never
  // touches the shared_ptr control block; the entry's lifetime (guarded by
  // the hook epoch, which also flushes cached decisions) keeps it alive.
  struct PortEntry {
    std::shared_ptr<PacketPolicy> policy;
    PacketPolicy* policy_raw = nullptr;
    int prog_id = -1;
    std::shared_ptr<obs::Counter> app_dispatched;
    FlowCacheBinding cache;  // empty (uncacheable) for native policies
  };

  // Per-hook dispatcher counters under {"syrupd", <hook>, ...}.
  struct HookCells {
    std::shared_ptr<obs::Counter> dispatched;
    std::shared_ptr<obs::Counter> no_policy;
    std::shared_ptr<obs::Counter> decision_steer;
    std::shared_ptr<obs::Counter> decision_pass;
    std::shared_ptr<obs::Counter> decision_drop;
    FlowCacheCounters flow_cache;
  };

  Status AttachPolicy(AppId app, std::shared_ptr<PacketPolicy> policy,
                      Hook hook, int prog_id,
                      FlowCacheBinding cache_binding = {});
  // Translates a just-verified program per the active exec mode. `facts`
  // (when the caller kept them from its Verify call) lets the compiler drop
  // verifier-proven-dead code and decided branches.
  StatusOr<std::shared_ptr<const bpf::CompiledProgram>> CompileForCurrentMode(
      const bpf::Program& program, bpf::ProgramContext context,
      const bpf::AnalysisFacts* facts = nullptr);
  // Publishes the verifier's exploration cost for a deployed program as
  // verifier.* gauges alongside the policy.* deployment gauges.
  void EmitVerifierMetrics(const std::string& app_name,
                           std::string_view hook_name,
                           const bpf::VerifierStats& stats);
  // Publishes which tier the deployment actually runs on (policy.exec_mode
  // = EffectiveExecMode, not the requested mode) plus, when machine code
  // was published, the policy.jit_ns / policy.jit_code_bytes gauges.
  void EmitExecTierMetrics(const std::string& app_name,
                           std::string_view hook_name,
                           const bpf::CompiledProgram* compiled);
  // Budget gate for a just-verified deployment: publishes policy.wcet_ns /
  // policy.wcet_insns / policy.over_budget / policy.budget_warn and
  // rejects (or admits with a warning, per CostBudgetConfig) when the
  // worst-case path at the effective tier exceeds the hook budget. An
  // unbounded cost analysis counts as over budget: enforcement never
  // admits what it cannot prove.
  Status EnforceCostBudget(const std::string& app_name, Hook hook,
                           const bpf::Program& prog,
                           const bpf::AnalysisFacts& facts,
                           const bpf::CompiledProgram* compiled);
  // One dispatch shard's per-hook state beyond shard 0 (which lives in
  // hook_cells_/flow_cache_): its own cache table plus shard-local counter
  // cells, so concurrent shards never share a line on the bump path.
  struct HookLane {
    HookCells cells;
    FlowDecisionCache cache;
  };

  Status InstallStackHook(Hook hook);
  void MaybeUninstallStackHook(Hook hook);
  // Batch-of-1 wrapper around DispatchBatch (the single-packet hooks).
  Decision Dispatch(Hook hook, const PacketView& pkt);
  // One ≤kMaxDispatchBatch chunk of a DispatchBatch call. kSharded selects
  // the thread-safe counter discipline: shard-local cells bump with
  // IncRelaxed and the (cross-shard) per-app cell with one batched atomic
  // add per port run, instead of shard 0's plain single-writer bumps.
  template <bool kSharded>
  void DispatchChunk(Hook hook, std::span<const PacketView> pkts,
                     std::span<Decision> out, HookCells& cells,
                     FlowDecisionCache& cache);
  StatusOr<std::vector<std::shared_ptr<Map>>> ResolveMapSlots(
      AppId app, const std::vector<bpf::MapSlot>& slots);

  // Per-map runtime gauge row: registered once per distinct map on
  // MapCreate/MapOpen, refreshed from Map::RuntimeStats() on every
  // StatsSnapshot(). weak_ptr so a tracked map's lifetime stays owned by
  // its fds/registry pins; expired rows are pruned during refresh (their
  // gauges keep the last observed value in the registry).
  struct MapGaugeEntry {
    std::weak_ptr<Map> map;
    std::shared_ptr<obs::Gauge> occupancy;
    std::shared_ptr<obs::Gauge> max_probe_len;
    std::shared_ptr<obs::Gauge> tombstones;
    std::shared_ptr<obs::Gauge> epoch_lag;
  };
  void TrackMapGauges(const std::shared_ptr<Map>& map,
                      std::string_view app_name, const std::string& map_name);
  void RefreshMapGauges() const;

  Simulator& sim_;
  HostStack* stack_;
  MapRegistry registry_;
  obs::MetricsRegistry metrics_;
  Rng rng_;

  std::map<AppId, AppState> apps_;
  AppId next_app_id_ = 1;

  // hook -> (dst port -> deployment). Policies are shared_ptr so a packet
  // in flight can't outlive its policy on removal.
  std::map<uint16_t, PortEntry> dispatch_[kNumHooks];
  HookCells hook_cells_[kNumHooks];

  // Flow-decision caches, one per hook (the simulator serializes each
  // hook's dispatch, mirroring a per-core megaflow table). The epoch is
  // bumped on every attach/remove at the hook: stale-epoch entries never
  // hit, so redeploys flush without touching the table.
  FlowDecisionCache flow_cache_[kNumHooks];
  uint64_t hook_epoch_[kNumHooks] = {};
  FlowCacheConfig flow_cache_config_;

  // Dispatch shards 1..N-1 (ConfigureSharding). unique_ptr keeps lane
  // addresses stable and each lane's tables well apart in memory.
  std::vector<std::unique_ptr<std::array<HookLane, kNumHooks>>> shard_lanes_;

  std::map<uint64_t, std::shared_ptr<const bpf::Program>> programs_;
  // Per-prog-id compiled cache: filled at attach time, consulted by every
  // hook and by compiled tail calls (ExecEnv::resolve_compiled). Tail-call
  // targets deployed before the mode switched get compiled on first use.
  std::map<uint64_t, std::shared_ptr<const bpf::CompiledProgram>> compiled_;
  uint64_t next_prog_id_ = 1;
  bpf::ExecMode exec_mode_ = bpf::ExecMode::kCompiled;
  CostBudgetConfig cost_budget_config_;
  // Verifier facts per deployed bytecode program, retained for the
  // deployment interference analysis (read/write/atomic map sets, cache
  // blockers, cost summary).
  std::map<uint64_t, bpf::AnalysisFacts> facts_;

  std::map<int, FdEntry> fds_;
  int next_fd_ = 3;

  // mutable: RefreshMapGauges() prunes expired rows from the const
  // StatsSnapshot() path.
  mutable std::vector<MapGaugeEntry> map_gauges_;

  std::unique_ptr<GhostScheduler> ghost_;
  // Keeps a DeployThreadPolicyFile bytecode policy alive for the agent,
  // which holds it by reference.
  std::shared_ptr<BytecodeGhostPolicy> owned_thread_policy_;
  AppId ghost_owner_ = 0;
  // Prog id of the bytecode thread policy (-1: none, or a native one),
  // so AnalyzeDeployments can include the thread hook.
  int64_t thread_prog_id_ = -1;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_SYRUPD_H_
