// RAII typed handles for the control-plane API.
//
// The paper's Table 1 API traffics in raw int fds (syr_map_open returns an
// fd, callers must syr_map_close it). These wrappers make ownership a
// type: a MapHandle closes its fd on destruction and remembers the access
// mode it was opened with; a PolicyHandle detaches its deployment on
// destruction and knows which hook it lives at. The paper-named shims in
// SyrupClient still exist and delegate here, releasing ownership so raw-fd
// callers keep the manual lifecycle they expect.
#ifndef SYRUP_SRC_CORE_HANDLES_H_
#define SYRUP_SRC_CORE_HANDLES_H_

#include <string>
#include <utility>

#include "src/core/syrupd.h"

namespace syrup {

// Owns one map fd. Move-only; closes on destruction unless released.
class MapHandle {
 public:
  MapHandle() = default;
  MapHandle(Syrupd* daemon, int fd, MapAccess access, std::string path)
      : daemon_(daemon), fd_(fd), access_(access), path_(std::move(path)) {}

  ~MapHandle() { Reset(); }

  MapHandle(const MapHandle&) = delete;
  MapHandle& operator=(const MapHandle&) = delete;

  MapHandle(MapHandle&& other) noexcept { *this = std::move(other); }
  MapHandle& operator=(MapHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      daemon_ = other.daemon_;
      fd_ = other.fd_;
      access_ = other.access_;
      path_ = std::move(other.path_);
      other.daemon_ = nullptr;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return daemon_ != nullptr && fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int fd() const { return fd_; }
  MapAccess access() const { return access_; }
  const std::string& path() const { return path_; }

  // --- Element access through the daemon (permission-checked) -------------

  StatusOr<uint64_t> Lookup(uint32_t key) const {
    if (!valid()) {
      return FailedPreconditionError("empty map handle");
    }
    return daemon_->MapLookupElem(fd_, key);
  }

  Status Update(uint32_t key, uint64_t value) const {
    if (!valid()) {
      return FailedPreconditionError("empty map handle");
    }
    return daemon_->MapUpdateElem(fd_, key, value);
  }

  // In-process fast path (nullptr for an empty handle).
  std::shared_ptr<Map> map() const {
    return valid() ? daemon_->MapByFd(fd_) : nullptr;
  }

  // Closes now (idempotent: an already-released handle is a no-op).
  Status Close() {
    if (!valid()) {
      return OkStatus();
    }
    Status s = daemon_->MapClose(fd_);
    daemon_ = nullptr;
    fd_ = -1;
    return s;
  }

  // Gives up ownership and returns the raw fd (the shim path: the caller
  // now owes a syr_map_close).
  int Release() {
    const int fd = fd_;
    daemon_ = nullptr;
    fd_ = -1;
    return fd;
  }

 private:
  void Reset() {
    if (valid()) {
      (void)daemon_->MapClose(fd_);
    }
    daemon_ = nullptr;
    fd_ = -1;
  }

  Syrupd* daemon_ = nullptr;
  int fd_ = -1;
  MapAccess access_ = MapAccess::kWrite;
  std::string path_;
};

// Owns one policy deployment. Move-only; detaches on destruction unless
// released. The detach is conditional on the prog id, so a stale handle
// (its deployment already replaced by a redeploy at the same hook) going
// out of scope never tears down the newer policy.
class PolicyHandle {
 public:
  PolicyHandle() = default;
  PolicyHandle(Syrupd* daemon, AppId app, Hook hook, int prog_id)
      : daemon_(daemon), app_(app), hook_(hook), prog_id_(prog_id) {}

  ~PolicyHandle() { Reset(); }

  PolicyHandle(const PolicyHandle&) = delete;
  PolicyHandle& operator=(const PolicyHandle&) = delete;

  PolicyHandle(PolicyHandle&& other) noexcept { *this = std::move(other); }
  PolicyHandle& operator=(PolicyHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      daemon_ = other.daemon_;
      app_ = other.app_;
      hook_ = other.hook_;
      prog_id_ = other.prog_id_;
      other.daemon_ = nullptr;
      other.prog_id_ = -1;
    }
    return *this;
  }

  bool valid() const { return daemon_ != nullptr && prog_id_ >= 0; }
  explicit operator bool() const { return valid(); }

  Hook hook() const { return hook_; }
  int prog_id() const { return prog_id_; }

  // Detaches now (idempotent). NotFound means the deployment was already
  // gone (removed explicitly or replaced); treated as success.
  Status Detach() {
    if (!valid()) {
      return OkStatus();
    }
    Status s = daemon_->RemovePolicy(app_, hook_, prog_id_);
    daemon_ = nullptr;
    prog_id_ = -1;
    return s.code() == StatusCode::kNotFound ? OkStatus() : s;
  }

  // Gives up ownership and returns the prog id: the deployment outlives
  // the handle (the shim path).
  int Release() {
    const int id = prog_id_;
    daemon_ = nullptr;
    prog_id_ = -1;
    return id;
  }

 private:
  void Reset() {
    if (valid()) {
      (void)daemon_->RemovePolicy(app_, hook_, prog_id_);
    }
    daemon_ = nullptr;
    prog_id_ = -1;
  }

  Syrupd* daemon_ = nullptr;
  AppId app_ = 0;
  Hook hook_ = Hook::kSocketSelect;
  int prog_id_ = -1;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_HANDLES_H_
