// Flow-decision cache: per-hook memoization of verified matching functions.
//
// Syrup's NIC offload is fast because the matching function's *decision*
// is installed into the hardware flow table — subsequent packets of a flow
// skip policy execution entirely. This is the same idea for the software
// hooks: an open-addressed table in front of Syrupd::DispatchBatch that
// maps a flow key to the Decision the policy last produced.
//
// Correctness is static analysis + versioning, never heuristics:
//
//   * The verifier proves which programs are cacheable at all
//     (AnalysisFacts::cacheable: output depends only on packet bytes and
//     map reads) and which exact packet bytes feed the decision
//     (pkt_read_mask). The cache key is (dst port, packet length, those
//     masked bytes) — packet length participates because bounds checks
//     against pkt_end branch on it. Full-key memcmp on lookup: hash
//     collisions can evict, never produce a false hit.
//   * Every Map carries a monotonic version stamp bumped on Update/Delete.
//     Each cached entry stores the *sum* of the versions of the program's
//     read-set maps, captured before the policy ran; monotonicity makes
//     the sum strictly increase on any change, so a lookup whose current
//     sum differs sees a guaranteed miss (counted as an invalidation).
//   * Deploy/remove at a hook bumps the hook's epoch; entries stamped
//     with an older epoch never hit, which flushes the whole hook in O(1).
//
// Scale (the "flow cache at scale" design, see DESIGN.md):
//
//   * Admission is TinyLFU-style: a 4-bit counting-min sketch estimates
//     each flow's access frequency; when an insert would evict a live
//     entry, the newcomer must out-count the coldest resident or it is
//     rejected. A doorkeeper bit-set absorbs one-hit wonders before they
//     touch the counters, and because the sketch is only consulted on the
//     miss/insert path, a 100%-hit workload pays nothing for it.
//   * Capacity adapts to the observed live-flow population: lookups are
//     grouped into windows of one-table-length each, and each entry's
//     *first hit* in a window bumps a live-flow counter — so "live" means
//     recurring, and a skewed workload's one-hit cold tail never inflates
//     the estimate. At each window boundary the table grows toward
//     2x (live flows + eviction pressure) or shrinks when it is >4x
//     oversized; the boundary work is O(1), no table sweep.
//
// The cache is deliberately not internally synchronized: in the simulator
// each hook's dispatch runs serialized (softirq model), and this mirrors a
// real per-core megaflow cache which is also core-private. Map versions
// and values, however, are read concurrently with userspace updaters —
// those races are exactly what the version capture-before-execute protocol
// makes safe (tests/flow_cache_race_test.cc hammers it under TSan/ASan).
#ifndef SYRUP_SRC_CORE_FLOW_CACHE_H_
#define SYRUP_SRC_CORE_FLOW_CACHE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/common/decision.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"

namespace syrup {

// The one knob surface for the flow cache (Syrupd::set_flow_cache_config,
// SyrupClient, syrupctl, and the experiment configs all traffic in this
// struct; the old set_flow_cache_enabled(bool) is a deprecated shim).
struct FlowCacheConfig {
  bool enabled = true;
  // Initial table size in slots (rounded up to a power of two). With
  // `adaptive` set this is just the starting point; without it, the table
  // stays at exactly this size.
  size_t capacity = 4096;
  // TinyLFU admission: cold flows cannot evict entries that out-count them.
  bool admission = true;
  // Grow/shrink the table by the observed live-flow estimate.
  bool adaptive = true;
};

// What a deployment needs to consult the cache, derived once at attach
// time from the verifier's facts. Maps are raw observers: the deployment's
// policy owns the program which owns the map shared_ptrs, and the cache
// binding dies with the PortEntry.
struct FlowCacheBinding {
  bool cacheable = false;
  uint64_t pkt_read_mask = 0;
  std::vector<const Map*> read_maps;

  // Invalidation signature: the read-set maps' version sum. Captured
  // before the policy executes on a miss; compared on every hit attempt.
  uint64_t VersionSum() const {
    uint64_t sum = 0;
    for (const Map* map : read_maps) {
      sum += map->version();
    }
    return sum;
  }

  // Builds the binding for a verified program. Cacheable only when the
  // facts say so; read-set indices resolve against the program's map table.
  static FlowCacheBinding ForProgram(const bpf::AnalysisFacts& facts,
                                     const bpf::Program& program);
};

// Per-hook cache counters, resolved from the daemon's registry under
// {"syrupd", <hook>, "flow_cache.*"} so syrupctl stats surfaces them.
// hits/misses/invalidations/uncacheable are bumped by the dispatcher;
// evictions/admission_rejects/resizes (and the capacity gauge) by the
// cache itself once BindCounters hands it the same cells.
struct FlowCacheCounters {
  std::shared_ptr<obs::Counter> hits;
  std::shared_ptr<obs::Counter> misses;
  std::shared_ptr<obs::Counter> invalidations;
  std::shared_ptr<obs::Counter> uncacheable;
  std::shared_ptr<obs::Counter> evictions;
  std::shared_ptr<obs::Counter> admission_rejects;
  std::shared_ptr<obs::Counter> resizes;
  std::shared_ptr<obs::Gauge> capacity;

  static FlowCacheCounters Detached();
  static FlowCacheCounters InRegistry(obs::MetricsRegistry& registry,
                                      std::string_view hook);
  // Shard-local cells under the same keys as InRegistry: the registry sums
  // them into the hook's single snapshot entry, so a per-shard cache's
  // accounting folds into the per-hook totals (Syrupd::ConfigureSharding).
  static FlowCacheCounters InRegistryShard(obs::MetricsRegistry& registry,
                                           std::string_view hook, int shard);
};

// TinyLFU-style frequency sketch: a single array of 4-bit saturating
// counters probed at four positions per key (estimate = the minimum), plus
// a doorkeeper bit-set that absorbs a flow's first occurrence so one-hit
// wonders never dirty the counters. Every `8 * width` samples the counters
// halve and the doorkeeper clears, so the sketch tracks recent frequency,
// not all-time counts.
class FrequencySketch {
 public:
  static constexpr uint32_t kMaxEstimate = 15;

  FrequencySketch() { Resize(0); }

  // Sizes the sketch to ~`counters` 4-bit cells (power of two, min 64) and
  // clears all frequency state.
  void Resize(size_t counters);

  // Records one occurrence of `hash` and ages the sketch when the sample
  // budget is spent.
  void Touch(uint64_t hash);

  // Recent-frequency estimate for `hash` (min over the probed counters,
  // plus the doorkeeper's absorbed first hit).
  uint32_t Estimate(uint64_t hash) const;

  uint64_t samples() const { return samples_; }
  uint64_t agings() const { return agings_; }
  size_t width() const { return mask_ + 1; }

 private:
  uint32_t CounterAt(size_t index) const {
    return static_cast<uint32_t>(table_[index >> 4] >> ((index & 15) * 4)) &
           0xF;
  }
  bool DoorkeeperTest(uint64_t hash) const;
  void DoorkeeperSet(uint64_t hash);
  void Age();

  std::vector<uint64_t> table_;  // 16 4-bit counters per word
  std::vector<uint64_t> door_;   // 64 doorkeeper bits per word
  size_t mask_ = 0;
  uint64_t samples_ = 0;
  uint64_t sample_limit_ = 0;
  uint64_t agings_ = 0;
};

// The table. Open-addressed with a short linear probe window,
// admission-gated eviction (a megaflow cache with a TinyLFU filter, not an
// LRU), and window-driven adaptive sizing.
class FlowDecisionCache {
 public:
  // Key capacity: dst port (2) + packet length (2) + up to 64 masked
  // packet bytes (AnalysisFacts::kMaxTrackedPktBytes).
  static constexpr size_t kMaxKeyBytes =
      4 + static_cast<size_t>(bpf::AnalysisFacts::kMaxTrackedPktBytes);
  static constexpr size_t kMinSlots = 16;        // floor for tiny test configs
  static constexpr size_t kMaxSlots = 1 << 18;   // ~262k flows resident
  static constexpr size_t kShrinkFloor = 1024;   // adaptive shrink stops here
  static constexpr size_t kProbeWindow = 4;

  explicit FlowDecisionCache(FlowCacheConfig config = {}) {
    Configure(config);
  }

  // Applies a new configuration: resets the table to config.capacity and
  // clears the sketch. Dropping entries is always safe — the cache is
  // semantically transparent.
  void Configure(const FlowCacheConfig& config);
  const FlowCacheConfig& config() const { return config_; }

  // Current table size in slots (moves under `adaptive`).
  size_t capacity() const { return slots_.size(); }

  // Re-homes eviction/admission/resize accounting (Syrupd binds its
  // registry-backed cells here so StatsSnapshot surfaces them).
  void BindCounters(FlowCacheCounters counters);

  // A materialized flow key plus its hash. Deliberately trivial (no
  // default member initializers): DispatchChunk keeps an uninitialized
  // kMaxDispatchBatch-sized array of these on the stack, and zeroing all
  // of them would dominate a batch-of-1 dispatch. MakeKey sets every
  // field it returns.
  struct Key {
    uint8_t bytes[kMaxKeyBytes];
    uint32_t len;
    uint64_t hash;
    // The first min(len, 8) key bytes, zero-padded: compared inline from
    // the hot entry so short keys never touch the cold key array.
    uint64_t prefix;
  };

  // Derives the flow key for `pkt` under `mask` (the verifier's
  // pkt_read_mask): dst port, wire length, then every masked byte that is
  // inside the packet. Bytes the mask names beyond the packet's end are
  // simply absent — which is fine, because the length is part of the key.
  static Key MakeKey(const PacketView& pkt, uint64_t mask);

  // Warms the cache line of `hash`'s home slot. DispatchBatch hoists this
  // across a burst so the probes in the in-order phase hit warm lines.
  void PrefetchSlot(uint64_t hash) const {
    __builtin_prefetch(&slots_[static_cast<size_t>(hash) & mask_]);
  }

  // Probes for `key` stamped with the current `epoch` and `version_sum`.
  // Returns true and sets `*out` on a hit. A key match whose stamp is
  // stale reports false and counts as an invalidation in `*stale` (the
  // caller bumps metrics; the entry will be overwritten by the insert that
  // follows the re-execution).
  bool Lookup(const Key& key, uint64_t epoch, uint64_t version_sum,
              Decision* out, bool* stale);

  // Installs (or refreshes) the decision for `key`. `version_sum` must
  // have been captured *before* the policy executed, so a concurrent map
  // update during execution leaves the entry already-stale. Under
  // admission the insert may be *rejected*: when every slot in the probe
  // window holds a live entry, the newcomer must out-count the coldest
  // resident in the frequency sketch or the resident stays.
  void Insert(const Key& key, Decision decision, uint64_t epoch,
              uint64_t version_sum);

  // Drops every entry regardless of stamps (tests; epoch bumps make this
  // unnecessary in the daemon).
  void Clear();

  size_t OccupiedSlots() const { return occupied_; }

  // Test introspection into the admission sketch.
  const FrequencySketch& sketch() const { return sketch_; }

 private:
  // Hot half of a slot: everything a probe compares or stamps, 48 bytes so
  // a 4-slot probe window spans ~3 cache lines. The full key bytes live in
  // the parallel `keys_` array (kMaxKeyBytes stride); `key_prefix` holds
  // the first 8 of them so the common short key (port + len + a few masked
  // bytes) compares entirely from the hot line. At 100k+ resident flows the
  // table is DRAM-resident and probe cost is line count, not instructions.
  struct Entry {
    uint64_t hash = 0;
    uint64_t version_sum = 0;
    uint64_t epoch = 0;
    uint64_t key_prefix = 0;
    uint32_t key_len = 0;
    Decision decision = 0;
    uint32_t last_seen = 0;  // window the entry last hit or was inserted in
    bool valid = false;
  };

  // True when `slot` holds exactly `key` (hash, prefix, and — only for
  // keys longer than the inline prefix — the cold tail bytes).
  bool SlotMatches(const Entry& entry, size_t slot, const Key& key) const {
    return entry.hash == key.hash && entry.key_len == key.len &&
           entry.key_prefix == key.prefix &&
           (key.len <= 8 ||
            std::memcmp(KeyAt(slot) + 8, key.bytes + 8, key.len - 8) == 0);
  }

  static size_t RoundCapacity(size_t requested);

  uint8_t* KeyAt(size_t slot) { return keys_.data() + slot * kMaxKeyBytes; }
  const uint8_t* KeyAt(size_t slot) const {
    return keys_.data() + slot * kMaxKeyBytes;
  }

  // Window boundary: estimate the live-flow population, grow/shrink the
  // table toward 2x (live + pressure), and open the next window.
  void AdvanceWindow();
  void ResizeTo(size_t new_slots);
  // Rehash helper: places `entry` (whose key bytes are `key_bytes`) without
  // admission (first-wins; a dropped entry on shrink counts as an eviction).
  void Place(const Entry& entry, const uint8_t* key_bytes);

  FlowCacheConfig config_;
  std::vector<Entry> slots_;
  std::vector<uint8_t> keys_;  // kMaxKeyBytes per slot, parallel to slots_
  size_t mask_ = 0;
  size_t floor_slots_ = kMinSlots;  // adaptive shrink never goes below this
  FrequencySketch sketch_;
  FlowCacheCounters counters_ = FlowCacheCounters::Detached();
  size_t occupied_ = 0;
  uint32_t window_ = 1;  // 0 is "never seen", so windows start at 1
  uint64_t window_lookups_ = 0;
  uint64_t window_pressure_ = 0;  // evictions + admission rejects
  // Distinct entries hit so far this window / in the whole previous window:
  // the incremental live-flow estimate (insertions deliberately don't
  // count — an entry only proves it is live by hitting).
  uint64_t window_live_ = 0;
  uint64_t prev_window_live_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_FLOW_CACHE_H_
