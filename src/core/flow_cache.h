// Flow-decision cache: per-hook memoization of verified matching functions.
//
// Syrup's NIC offload is fast because the matching function's *decision*
// is installed into the hardware flow table — subsequent packets of a flow
// skip policy execution entirely. This is the same idea for the software
// hooks: a fixed-size open-addressed table in front of Syrupd::Dispatch
// that maps a flow key to the Decision the policy last produced.
//
// Correctness is static analysis + versioning, never heuristics:
//
//   * The verifier proves which programs are cacheable at all
//     (AnalysisFacts::cacheable: output depends only on packet bytes and
//     map reads) and which exact packet bytes feed the decision
//     (pkt_read_mask). The cache key is (dst port, packet length, those
//     masked bytes) — packet length participates because bounds checks
//     against pkt_end branch on it. Full-key memcmp on lookup: hash
//     collisions can evict, never produce a false hit.
//   * Every Map carries a monotonic version stamp bumped on Update/Delete.
//     Each cached entry stores the *sum* of the versions of the program's
//     read-set maps, captured before the policy ran; monotonicity makes
//     the sum strictly increase on any change, so a lookup whose current
//     sum differs sees a guaranteed miss (counted as an invalidation).
//   * Deploy/remove at a hook bumps the hook's epoch; entries stamped
//     with an older epoch never hit, which flushes the whole hook in O(1).
//
// The cache is deliberately not internally synchronized: in the simulator
// each hook's dispatch runs serialized (softirq model), and this mirrors a
// real per-core megaflow cache which is also core-private. Map versions
// and values, however, are read concurrently with userspace updaters —
// those races are exactly what the version capture-before-execute protocol
// makes safe (tests/flow_cache_race_test.cc hammers it under TSan/ASan).
#ifndef SYRUP_SRC_CORE_FLOW_CACHE_H_
#define SYRUP_SRC_CORE_FLOW_CACHE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/common/decision.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"

namespace syrup {

// What a deployment needs to consult the cache, derived once at attach
// time from the verifier's facts. Maps are raw observers: the deployment's
// policy owns the program which owns the map shared_ptrs, and the cache
// binding dies with the PortEntry.
struct FlowCacheBinding {
  bool cacheable = false;
  uint64_t pkt_read_mask = 0;
  std::vector<const Map*> read_maps;

  // Invalidation signature: the read-set maps' version sum. Captured
  // before the policy executes on a miss; compared on every hit attempt.
  uint64_t VersionSum() const {
    uint64_t sum = 0;
    for (const Map* map : read_maps) {
      sum += map->version();
    }
    return sum;
  }

  // Builds the binding for a verified program. Cacheable only when the
  // facts say so; read-set indices resolve against the program's map table.
  static FlowCacheBinding ForProgram(const bpf::AnalysisFacts& facts,
                                     const bpf::Program& program);
};

// Per-hook cache counters, resolved from the daemon's registry under
// {"syrupd", <hook>, "flow_cache.*"} so syrupctl stats surfaces them.
struct FlowCacheCounters {
  std::shared_ptr<obs::Counter> hits;
  std::shared_ptr<obs::Counter> misses;
  std::shared_ptr<obs::Counter> invalidations;
  std::shared_ptr<obs::Counter> uncacheable;

  static FlowCacheCounters Detached();
  static FlowCacheCounters InRegistry(obs::MetricsRegistry& registry,
                                      std::string_view hook);
};

// The table. Fixed-size, open-addressed with a short linear probe window,
// overwrite-on-collision (a megaflow cache, not an LRU).
class FlowDecisionCache {
 public:
  // Key capacity: dst port (2) + packet length (2) + up to 64 masked
  // packet bytes (AnalysisFacts::kMaxTrackedPktBytes).
  static constexpr size_t kMaxKeyBytes =
      4 + static_cast<size_t>(bpf::AnalysisFacts::kMaxTrackedPktBytes);
  static constexpr size_t kNumSlots = 4096;  // power of two
  static constexpr size_t kProbeWindow = 4;

  FlowDecisionCache() : slots_(kNumSlots) {}

  // A materialized flow key plus its hash.
  struct Key {
    uint8_t bytes[kMaxKeyBytes];
    uint32_t len = 0;
    uint64_t hash = 0;
  };

  // Derives the flow key for `pkt` under `mask` (the verifier's
  // pkt_read_mask): dst port, wire length, then every masked byte that is
  // inside the packet. Bytes the mask names beyond the packet's end are
  // simply absent — which is fine, because the length is part of the key.
  static Key MakeKey(const PacketView& pkt, uint64_t mask);

  // Probes for `key` stamped with the current `epoch` and `version_sum`.
  // Returns true and sets `*out` on a hit. A key match whose stamp is
  // stale reports false and counts as an invalidation in `*stale` (the
  // caller bumps metrics; the entry will be overwritten by the insert that
  // follows the re-execution).
  bool Lookup(const Key& key, uint64_t epoch, uint64_t version_sum,
              Decision* out, bool* stale);

  // Installs (or refreshes) the decision for `key`. `version_sum` must
  // have been captured *before* the policy executed, so a concurrent map
  // update during execution leaves the entry already-stale.
  void Insert(const Key& key, Decision decision, uint64_t epoch,
              uint64_t version_sum);

  // Drops every entry regardless of stamps (tests; epoch bumps make this
  // unnecessary in the daemon).
  void Clear();

  size_t OccupiedSlots() const;

 private:
  struct Entry {
    uint64_t hash = 0;
    uint64_t version_sum = 0;
    uint64_t epoch = 0;
    uint32_t key_len = 0;
    Decision decision = 0;
    bool valid = false;
    uint8_t key[kMaxKeyBytes];
  };

  std::vector<Entry> slots_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_FLOW_CACHE_H_
