// Scheduling hook identifiers (paper Fig. 4).
#ifndef SYRUP_SRC_CORE_HOOK_H_
#define SYRUP_SRC_CORE_HOOK_H_

#include <cstddef>
#include <string_view>

namespace syrup {

enum class Hook {
  kXdpOffload,      // input: packet,        executor: NIC RX queue
  kXdpDrv,          // input: packet,        executor: AF_XDP socket
  kXdpSkb,          // input: packet,        executor: AF_XDP socket
  kCpuRedirect,     // input: packet,        executor: core
  kSocketSelect,    // input: datagram/conn, executor: socket
  kThreadScheduler, // input: thread,        executor: core (via ghOSt)
};

// Number of hooks; sizes every per-hook table. Keep in sync with the enum
// (kThreadScheduler is the last member).
inline constexpr size_t kNumHooks =
    static_cast<size_t>(Hook::kThreadScheduler) + 1;

inline constexpr size_t HookIndex(Hook hook) {
  return static_cast<size_t>(hook);
}

inline constexpr Hook HookFromIndex(size_t index) {
  return static_cast<Hook>(index);
}

inline constexpr std::string_view HookName(Hook hook) {
  switch (hook) {
    case Hook::kXdpOffload: return "xdp_offload";
    case Hook::kXdpDrv: return "xdp_drv";
    case Hook::kXdpSkb: return "xdp_skb";
    case Hook::kCpuRedirect: return "cpu_redirect";
    case Hook::kSocketSelect: return "socket_select";
    case Hook::kThreadScheduler: return "thread_scheduler";
  }
  return "?";
}

inline constexpr bool IsPacketHook(Hook hook) {
  return hook != Hook::kThreadScheduler;
}

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_HOOK_H_
