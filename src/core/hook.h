// Scheduling hook identifiers (paper Fig. 4).
#ifndef SYRUP_SRC_CORE_HOOK_H_
#define SYRUP_SRC_CORE_HOOK_H_

#include <cstddef>
#include <string_view>

namespace syrup {

enum class Hook {
  kXdpOffload,      // input: packet,        executor: NIC RX queue
  kXdpDrv,          // input: packet,        executor: AF_XDP socket
  kXdpSkb,          // input: packet,        executor: AF_XDP socket
  kCpuRedirect,     // input: packet,        executor: core
  kSocketSelect,    // input: datagram/conn, executor: socket
  kThreadScheduler, // input: thread,        executor: core (via ghOSt)
};

// Number of hooks; sizes every per-hook table. Keep in sync with the enum
// (kThreadScheduler is the last member).
inline constexpr size_t kNumHooks =
    static_cast<size_t>(Hook::kThreadScheduler) + 1;

inline constexpr size_t HookIndex(Hook hook) {
  return static_cast<size_t>(hook);
}

inline constexpr Hook HookFromIndex(size_t index) {
  return static_cast<Hook>(index);
}

inline constexpr std::string_view HookName(Hook hook) {
  switch (hook) {
    case Hook::kXdpOffload: return "xdp_offload";
    case Hook::kXdpDrv: return "xdp_drv";
    case Hook::kXdpSkb: return "xdp_skb";
    case Hook::kCpuRedirect: return "cpu_redirect";
    case Hook::kSocketSelect: return "socket_select";
    case Hook::kThreadScheduler: return "thread_scheduler";
  }
  return "?";
}

inline constexpr bool IsPacketHook(Hook hook) {
  return hook != Hook::kThreadScheduler;
}

// Default worst-case latency budget per policy execution at each hook, in
// ns at the deployment's effective tier. Packet hooks sit on per-packet
// fast paths and get tight budgets (tighter the closer to the NIC);
// the ghOSt-style thread hook runs per scheduling event and is looser.
// Syrupd compares the verifier's wcet_ns against these at deploy time
// (CostBudgetConfig can override per hook). The xdp_offload and
// thread_scheduler entries are mirrored by the verifier's
// path-over-budget lint thresholds in src/bpf/cost_model.h.
inline constexpr double DefaultHookBudgetNs(Hook hook) {
  switch (hook) {
    case Hook::kXdpOffload: return 1000.0;
    case Hook::kXdpDrv: return 1500.0;
    case Hook::kXdpSkb: return 2000.0;
    case Hook::kCpuRedirect: return 2000.0;
    case Hook::kSocketSelect: return 4000.0;
    case Hook::kThreadScheduler: return 20000.0;
  }
  return 1000.0;
}

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_HOOK_H_
