#include "src/core/syrupd.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/bpf/jit.h"
#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/map/epoch.h"

namespace syrup {

namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ns);
  return buf;
}

void JsonEscapeTo(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void JsonStringListTo(std::ostream& os, const std::vector<std::string>& v) {
  os << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ',';
    os << '"';
    JsonEscapeTo(os, v[i]);
    os << '"';
  }
  os << ']';
}

}  // namespace

std::string_view InterferenceLevelName(InterferenceFinding::Level level) {
  switch (level) {
    case InterferenceFinding::Level::kError: return "error";
    case InterferenceFinding::Level::kWarning: return "warning";
    case InterferenceFinding::Level::kInfo: return "info";
  }
  return "?";
}

bool DeploymentAnalysis::HasErrors() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const InterferenceFinding& f) {
                       return f.level == InterferenceFinding::Level::kError;
                     });
}

std::string DeploymentAnalysis::ToJson() const {
  std::ostringstream os;
  os << "{\"maps\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ',';
    const MapInterferenceRow& row = rows[i];
    os << "{\"map\":\"";
    JsonEscapeTo(os, row.map);
    os << "\",\"readers\":";
    JsonStringListTo(os, row.readers);
    os << ",\"writers\":";
    JsonStringListTo(os, row.writers);
    os << ",\"atomics\":";
    JsonStringListTo(os, row.atomics);
    os << '}';
  }
  os << "],\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) os << ',';
    const InterferenceFinding& f = findings[i];
    os << "{\"level\":\"" << InterferenceLevelName(f.level)
       << "\",\"category\":\"";
    JsonEscapeTo(os, f.category);
    os << "\",\"map\":\"";
    JsonEscapeTo(os, f.map);
    os << "\",\"detail\":\"";
    JsonEscapeTo(os, f.detail);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

Syrupd::Syrupd(Simulator& sim, HostStack* stack, uint64_t seed)
    : sim_(sim), stack_(stack), rng_(seed) {
  // Eagerly resolve the per-hook dispatcher cells so the packet path only
  // ever bumps pointers.
  for (size_t i = 0; i < kNumHooks; ++i) {
    const std::string_view hook = HookName(HookFromIndex(i));
    hook_cells_[i].dispatched = metrics_.GetCounter("syrupd", hook,
                                                    "dispatched");
    hook_cells_[i].no_policy = metrics_.GetCounter("syrupd", hook,
                                                   "no_policy");
    hook_cells_[i].decision_steer =
        metrics_.GetCounter("syrupd", hook, "decision_steer");
    hook_cells_[i].decision_pass =
        metrics_.GetCounter("syrupd", hook, "decision_pass");
    hook_cells_[i].decision_drop =
        metrics_.GetCounter("syrupd", hook, "decision_drop");
    hook_cells_[i].flow_cache =
        FlowCacheCounters::InRegistry(metrics_, hook);
    // The cache bumps its eviction/admission/resize accounting through the
    // same registry-backed cells, so StatsSnapshot sees one coherent set.
    flow_cache_[i].BindCounters(hook_cells_[i].flow_cache);
  }
  if (stack_ != nullptr) {
    stack_->BindMetrics(metrics_);
  }
}

StatusOr<AppId> Syrupd::RegisterApp(const std::string& name, Uid uid,
                                    uint16_t port) {
  for (const auto& [id, app] : apps_) {
    if (std::find(app.ports.begin(), app.ports.end(), port) !=
        app.ports.end()) {
      return AlreadyExistsError("port " + std::to_string(port) +
                                " already owned by app " + app.name);
    }
  }
  const AppId id = next_app_id_++;
  apps_[id] = AppState{name, uid, {port}};
  return id;
}

Status Syrupd::AddPort(AppId app, uint16_t port) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return NotFoundError("unknown app");
  }
  for (const auto& [id, other] : apps_) {
    if (std::find(other.ports.begin(), other.ports.end(), port) !=
        other.ports.end()) {
      return AlreadyExistsError("port already owned");
    }
  }
  it->second.ports.push_back(port);
  return OkStatus();
}

bpf::ExecEnv Syrupd::MakeExecEnv() {
  bpf::ExecEnv env;
  env.random_u32 = [this]() { return static_cast<uint32_t>(rng_.Next()); };
  env.ktime_ns = [this]() { return sim_.Now(); };
  env.resolve_program = [this](uint64_t prog_id) {
    return ProgramById(prog_id);
  };
  // Compiled tail calls resolve against the attach-time cache; a target
  // loaded before the daemon switched to a compiled mode (so never
  // compiled) is compiled on first use, keeping tail-call chains on one
  // tier.
  env.resolve_compiled = [this](uint64_t prog_id) {
    const bpf::CompiledProgram* compiled = CompiledById(prog_id);
    if (compiled != nullptr) {
      return compiled;
    }
    auto it = programs_.find(prog_id);
    if (it == programs_.end() || exec_mode_ == bpf::ExecMode::kInterpret) {
      return static_cast<const bpf::CompiledProgram*>(nullptr);
    }
    auto entry = CompileForCurrentMode(*it->second, bpf::ProgramContext::kPacket);
    if (!entry.ok()) {
      return static_cast<const bpf::CompiledProgram*>(nullptr);
    }
    compiled_[prog_id] = std::move(entry).value();
    return static_cast<const bpf::CompiledProgram*>(
        compiled_[prog_id].get());
  };
  return env;
}

StatusOr<std::shared_ptr<const bpf::CompiledProgram>>
Syrupd::CompileForCurrentMode(const bpf::Program& program,
                              bpf::ProgramContext context,
                              const bpf::AnalysisFacts* facts) {
  bpf::CompileOptions options;
  options.paranoid = exec_mode_ == bpf::ExecMode::kCompiledParanoid;
  // The deploy pipeline verified the program right before this call.
  options.assume_verified = true;
  options.facts = facts;
  SYRUP_ASSIGN_OR_RETURN(bpf::CompiledProgram compiled,
                         bpf::Compile(program, context, options));
  if (exec_mode_ == bpf::ExecMode::kNative) {
    // Machine-code lowering is best effort: an unsupported host or program
    // (or SYRUP_JIT_DISABLE) leaves `native` null and the artifact runs on
    // the compiled tier. EmitExecTierMetrics reports whichever happened.
    auto native = bpf::JitCompile(compiled);
    if (native.ok()) {
      compiled.native = std::move(native).value();
    }
  }
  return std::make_shared<const bpf::CompiledProgram>(std::move(compiled));
}

void Syrupd::EmitExecTierMetrics(const std::string& app_name,
                                 std::string_view hook_name,
                                 const bpf::CompiledProgram* compiled) {
  metrics_.GetGauge(app_name, hook_name, "policy.exec_mode")
      ->Set(static_cast<int64_t>(bpf::EffectiveExecMode(compiled)));
  if (compiled != nullptr && compiled->native != nullptr) {
    const bpf::JitStats& jit = compiled->native->stats();
    metrics_.GetGauge(app_name, hook_name, "policy.jit_ns")
        ->Set(static_cast<int64_t>(jit.jit_ns));
    metrics_.GetGauge(app_name, hook_name, "policy.jit_code_bytes")
        ->Set(static_cast<int64_t>(jit.code_bytes));
  }
}

void Syrupd::EmitVerifierMetrics(const std::string& app_name,
                                 std::string_view hook_name,
                                 const bpf::VerifierStats& stats) {
  metrics_.GetGauge(app_name, hook_name, "verifier.visited_insns")
      ->Set(static_cast<int64_t>(stats.visited_insns));
  metrics_.GetGauge(app_name, hook_name, "verifier.branch_states")
      ->Set(static_cast<int64_t>(stats.branch_states));
  metrics_.GetGauge(app_name, hook_name, "verifier.pruned_states")
      ->Set(static_cast<int64_t>(stats.pruned_states));
  metrics_.GetGauge(app_name, hook_name, "verifier.verify_ns")
      ->Set(static_cast<int64_t>(stats.verify_ns));
}

Status Syrupd::EnforceCostBudget(const std::string& app_name, Hook hook,
                                 const bpf::Program& prog,
                                 const bpf::AnalysisFacts& facts,
                                 const bpf::CompiledProgram* compiled) {
  const std::string_view hook_name = HookName(hook);
  const bpf::CostTier tier =
      bpf::CostTierOf(bpf::EffectiveExecMode(compiled));
  const bpf::CostFacts& cost = facts.cost;
  const double wcet_ns =
      cost.bounded ? cost.wcet_ns[static_cast<size_t>(tier)] : 0.0;
  // -1 on the gauges means "no bound": the cost pass was disabled or gave
  // up (exploration budget), so no wcet exists to report.
  metrics_.GetGauge(app_name, hook_name, "policy.wcet_ns")
      ->Set(cost.bounded ? std::llround(wcet_ns) : -1);
  metrics_.GetGauge(app_name, hook_name, "policy.wcet_insns")
      ->Set(cost.bounded ? static_cast<int64_t>(cost.wcet_insns) : -1);

  const double budget = cost_budget_config_.BudgetFor(hook);
  const bool over = !cost.bounded || wcet_ns > budget;
  metrics_.GetGauge(app_name, hook_name, "policy.over_budget")
      ->Set(over ? 1 : 0);
  const bool warn = cost.bounded && !over &&
                    wcet_ns > budget * cost_budget_config_.warn_fraction;
  metrics_.GetGauge(app_name, hook_name, "policy.budget_warn")
      ->Set(warn ? 1 : 0);
  if (!cost_budget_config_.enforce) {
    return OkStatus();
  }
  if (warn) {
    SYRUP_LOG(Warning) << "policy '" << prog.name << "' at " << hook_name
                       << " uses " << FormatNs(wcet_ns) << " of "
                       << FormatNs(budget) << " ns budget worst case ("
                       << FormatNs(100.0 * wcet_ns / budget)
                       << "%); consider a cheaper policy or a looser hook";
  }
  if (!over) {
    return OkStatus();
  }
  std::string what;
  if (!cost.bounded) {
    what = "policy '" + prog.name +
           "' rejected at hook " + std::string(hook_name) +
           ": the cost analysis could not bound its worst-case path, so "
           "the " + FormatNs(budget) + " ns hook budget cannot be proven";
  } else {
    what = "policy '" + prog.name + "' rejected at hook " +
           std::string(hook_name) + ": worst-case path costs " +
           FormatNs(wcet_ns) + " ns at the " +
           std::string(bpf::CostTierName(tier)) + " tier, over the " +
           FormatNs(budget) + " ns budget; hottest path: " +
           bpf::FormatPath(cost.hottest_path) +
           " (run `syrupctl cost` for the disassembly)";
  }
  if (cost_budget_config_.admit_over_budget) {
    SYRUP_LOG(Warning) << what
                       << " -- admitted anyway (admit_over_budget set)";
    return OkStatus();
  }
  return InvalidArgumentError(
      what + "; set CostBudgetConfig.admit_over_budget to override");
}

const bpf::Program* Syrupd::ProgramById(uint64_t prog_id) const {
  auto it = programs_.find(prog_id);
  return it == programs_.end() ? nullptr : it->second.get();
}

const bpf::CompiledProgram* Syrupd::CompiledById(uint64_t prog_id) const {
  auto it = compiled_.find(prog_id);
  return it == compiled_.end() ? nullptr : it->second.get();
}

StatusOr<std::vector<std::shared_ptr<Map>>> Syrupd::ResolveMapSlots(
    AppId app, const std::vector<bpf::MapSlot>& slots) {
  const AppState& state = apps_.at(app);
  std::vector<std::shared_ptr<Map>> maps;
  maps.reserve(slots.size());
  for (const bpf::MapSlot& slot : slots) {
    if (slot.is_extern) {
      SYRUP_ASSIGN_OR_RETURN(
          std::shared_ptr<Map> map,
          registry_.Open(slot.path, state.uid, MapAccess::kWrite));
      maps.push_back(std::move(map));
      continue;
    }
    const std::string pin_path = "/syrup/" + state.name + "/" + slot.name;
    // Re-deploying a policy reuses its existing pinned maps so state (e.g.
    // token counts) survives policy updates, as with bpffs pins.
    auto existing = registry_.Open(pin_path, state.uid, MapAccess::kWrite);
    if (existing.ok()) {
      maps.push_back(std::move(existing).value());
      continue;
    }
    SYRUP_ASSIGN_OR_RETURN(std::shared_ptr<Map> map, CreateMap(slot.spec));
    map->BindCounters(
        MapOpCounters::InRegistry(metrics_, state.name, slot.name));
    SYRUP_RETURN_IF_ERROR(registry_.Pin(pin_path, map, state.uid));
    maps.push_back(std::move(map));
  }
  return maps;
}

StatusOr<int> Syrupd::DeployPolicyFile(AppId app,
                                       std::string_view policy_source,
                                       Hook hook) {
  if (apps_.find(app) == apps_.end()) {
    return NotFoundError("unknown app");
  }
  if (!IsPacketHook(hook)) {
    return InvalidArgumentError(
        "thread policies deploy via DeployThreadPolicy");
  }

  SYRUP_ASSIGN_OR_RETURN(bpf::AssembledProgram assembled,
                         bpf::Assemble(policy_source));
  if (assembled.context != bpf::ProgramContext::kPacket) {
    return InvalidArgumentError("packet hook requires .ctx packet");
  }
  SYRUP_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<Map>> maps,
                         ResolveMapSlots(app, assembled.map_slots));

  auto program = std::make_shared<bpf::Program>();
  program->name = assembled.name;
  program->insns = std::move(assembled.insns);
  program->maps = std::move(maps);

  // The verifier gate: unverifiable programs never reach a hook. The
  // exploration stats become per-program gauges and the analysis facts
  // feed the compile below.
  bpf::VerifierStats vstats;
  bpf::AnalysisFacts vfacts;
  SYRUP_RETURN_IF_ERROR(bpf::Verify(*program, bpf::ProgramContext::kPacket,
                                    {}, &vstats, &vfacts));

  // Compile once at attach time; every dispatch then runs the pre-decoded
  // form. Interpret mode (ablation) skips this and keeps the artifact out
  // of the tail-call cache.
  const std::string& app_name = apps_.at(app).name;
  EmitVerifierMetrics(app_name, HookName(hook), vstats);
  std::shared_ptr<const bpf::CompiledProgram> compiled;
  if (exec_mode_ != bpf::ExecMode::kInterpret) {
    const uint64_t t0 = WallNowNs();
    SYRUP_ASSIGN_OR_RETURN(
        compiled,
        CompileForCurrentMode(*program, bpf::ProgramContext::kPacket,
                              &vfacts));
    metrics_.GetGauge(app_name, HookName(hook), "policy.compile_ns")
        ->Set(static_cast<int64_t>(WallNowNs() - t0));
  }
  EmitExecTierMetrics(app_name, HookName(hook), compiled.get());
  // The budget gate: a program whose verifier-proven worst-case path is
  // too slow for this hook never reaches it (unless overridden).
  SYRUP_RETURN_IF_ERROR(
      EnforceCostBudget(app_name, hook, *program, vfacts, compiled.get()));

  const uint64_t prog_id = next_prog_id_++;
  programs_[prog_id] = program;
  if (compiled != nullptr) {
    compiled_[prog_id] = compiled;
  }
  facts_[prog_id] = vfacts;

  auto policy = std::make_shared<BytecodePacketPolicy>(
      program, MakeExecEnv(),
      PolicyMetrics::InRegistry(metrics_, app_name, HookName(hook)),
      compiled);
  // The verifier's purity summary decides whether this deployment may be
  // memoized per flow; the binding resolves its read-set map observers.
  FlowCacheBinding cache_binding =
      FlowCacheBinding::ForProgram(vfacts, *program);
  metrics_.GetGauge(app_name, HookName(hook), "policy.cacheable")
      ->Set(cache_binding.cacheable ? 1 : 0);
  SYRUP_RETURN_IF_ERROR(AttachPolicy(app, std::move(policy), hook,
                                     static_cast<int>(prog_id),
                                     std::move(cache_binding)));
  return static_cast<int>(prog_id);
}

StatusOr<int> Syrupd::DeployNativePolicy(AppId app,
                                         std::shared_ptr<PacketPolicy> policy,
                                         Hook hook) {
  const int prog_id = static_cast<int>(next_prog_id_++);
  SYRUP_RETURN_IF_ERROR(AttachPolicy(app, std::move(policy), hook, prog_id));
  return prog_id;
}

Status Syrupd::AttachPolicy(AppId app, std::shared_ptr<PacketPolicy> policy,
                            Hook hook, int prog_id,
                            FlowCacheBinding cache_binding) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return NotFoundError("unknown app");
  }
  if (!IsPacketHook(hook)) {
    return InvalidArgumentError("not a packet hook");
  }
  if (policy == nullptr) {
    return InvalidArgumentError("null policy");
  }
  // The dispatcher routes by destination port, so installing the policy for
  // each of the app's ports is exactly the paper's "each application's
  // program handles only packets directed to its corresponding port".
  std::shared_ptr<obs::Counter> app_dispatched =
      metrics_.GetCounter(it->second.name, HookName(hook), "dispatched");
  for (uint16_t port : it->second.ports) {
    PortEntry entry;
    entry.policy = policy;
    entry.policy_raw = policy.get();
    entry.prog_id = prog_id;
    entry.app_dispatched = app_dispatched;
    entry.cache = cache_binding;
    dispatch_[HookIndex(hook)][port] = std::move(entry);
    SYRUP_TRACE(sim_.Now(), "syrupd",
                "deploy app=" << it->second.name << " policy="
                              << policy->name() << " hook="
                              << HookName(hook) << " port=" << port);
  }
  // New deployment epoch: cached decisions from the replaced policy (and
  // raw policy observers readers may have derived) are dead from here on.
  ++hook_epoch_[HookIndex(hook)];
  SYRUP_RETURN_IF_ERROR(InstallStackHook(hook));
  return OkStatus();
}

Status Syrupd::RemovePolicy(AppId app, Hook hook, int only_prog_id) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return NotFoundError("unknown app");
  }
  bool removed = false;
  for (uint16_t port : it->second.ports) {
    auto& table = dispatch_[HookIndex(hook)];
    auto entry = table.find(port);
    if (entry == table.end()) {
      continue;
    }
    if (only_prog_id >= 0 && entry->second.prog_id != only_prog_id) {
      continue;  // a newer deployment replaced this one; leave it alone
    }
    table.erase(entry);
    removed = true;
  }
  if (!removed) {
    return NotFoundError("no policy deployed at hook");
  }
  ++hook_epoch_[HookIndex(hook)];  // flush this hook's cached decisions
  MaybeUninstallStackHook(hook);
  return OkStatus();
}

Status Syrupd::DeployThreadPolicy(AppId app, GhostPolicy* policy,
                                  Machine& machine, GhostConfig config) {
  if (apps_.find(app) == apps_.end()) {
    return NotFoundError("unknown app");
  }
  if (policy == nullptr) {
    return InvalidArgumentError("null thread policy");
  }
  if (ghost_ != nullptr) {
    return AlreadyExistsError("machine already has a thread policy (app " +
                              std::to_string(ghost_owner_) + ")");
  }
  ghost_ = std::make_unique<GhostScheduler>(machine, *policy, config);
  ghost_->BindMetrics(metrics_, apps_.at(app).name);
  ghost_owner_ = app;
  machine.SetScheduler(ghost_.get());
  return OkStatus();
}

StatusOr<int> Syrupd::DeployThreadPolicyFile(AppId app,
                                             std::string_view policy_source,
                                             Machine& machine,
                                             GhostConfig config) {
  if (apps_.find(app) == apps_.end()) {
    return NotFoundError("unknown app");
  }
  SYRUP_ASSIGN_OR_RETURN(bpf::AssembledProgram assembled,
                         bpf::Assemble(policy_source));
  if (assembled.context != bpf::ProgramContext::kThread) {
    return InvalidArgumentError("thread hook requires .ctx thread");
  }
  SYRUP_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<Map>> maps,
                         ResolveMapSlots(app, assembled.map_slots));

  auto program = std::make_shared<bpf::Program>();
  program->name = assembled.name;
  program->insns = std::move(assembled.insns);
  program->maps = std::move(maps);

  bpf::VerifierStats vstats;
  bpf::AnalysisFacts vfacts;
  SYRUP_RETURN_IF_ERROR(bpf::Verify(*program, bpf::ProgramContext::kThread,
                                    {}, &vstats, &vfacts));

  const std::string& app_name = apps_.at(app).name;
  const std::string_view hook_name = HookName(Hook::kThreadScheduler);
  EmitVerifierMetrics(app_name, hook_name, vstats);
  std::shared_ptr<const bpf::CompiledProgram> compiled;
  if (exec_mode_ != bpf::ExecMode::kInterpret) {
    const uint64_t t0 = WallNowNs();
    SYRUP_ASSIGN_OR_RETURN(
        compiled,
        CompileForCurrentMode(*program, bpf::ProgramContext::kThread,
                              &vfacts));
    metrics_.GetGauge(app_name, hook_name, "policy.compile_ns")
        ->Set(static_cast<int64_t>(WallNowNs() - t0));
  }
  EmitExecTierMetrics(app_name, hook_name, compiled.get());
  SYRUP_RETURN_IF_ERROR(EnforceCostBudget(app_name, Hook::kThreadScheduler,
                                          *program, vfacts,
                                          compiled.get()));

  const uint64_t prog_id = next_prog_id_++;
  programs_[prog_id] = program;
  if (compiled != nullptr) {
    compiled_[prog_id] = compiled;
  }
  facts_[prog_id] = vfacts;

  auto policy = std::make_shared<BytecodeGhostPolicy>(
      program, MakeExecEnv(),
      PolicyMetrics::InRegistry(metrics_, app_name, hook_name), compiled);
  SYRUP_RETURN_IF_ERROR(
      DeployThreadPolicy(app, policy.get(), machine, config));
  owned_thread_policy_ = std::move(policy);
  thread_prog_id_ = static_cast<int64_t>(prog_id);
  return static_cast<int>(prog_id);
}

Status Syrupd::InstallStackHook(Hook hook) {
  if (stack_ == nullptr) {
    return FailedPreconditionError("syrupd has no host stack attached");
  }
  auto dispatcher = [this, hook](const PacketView& pkt) {
    return Dispatch(hook, pkt);
  };
  auto batch_dispatcher = [this, hook](std::span<const PacketView> pkts,
                                       std::span<Decision> out) {
    DispatchBatch(hook, pkts, out);
  };
  StackHooks& hooks = stack_->hooks();
  StackBatchHooks& batch = stack_->batch_hooks();
  switch (hook) {
    case Hook::kXdpOffload:
      hooks.xdp_offload = dispatcher;
      batch.xdp_offload = batch_dispatcher;
      break;
    case Hook::kXdpDrv:
      hooks.xdp_drv = dispatcher;
      batch.xdp_drv = batch_dispatcher;
      break;
    case Hook::kXdpSkb:
      hooks.xdp_skb = dispatcher;
      batch.xdp_skb = batch_dispatcher;
      break;
    case Hook::kCpuRedirect:
      hooks.cpu_redirect = dispatcher;
      batch.cpu_redirect = batch_dispatcher;
      break;
    case Hook::kSocketSelect:
      hooks.socket_select = dispatcher;
      batch.socket_select = batch_dispatcher;
      break;
    case Hook::kThreadScheduler:
      return InvalidArgumentError("not a stack hook");
  }
  return OkStatus();
}

void Syrupd::MaybeUninstallStackHook(Hook hook) {
  if (stack_ == nullptr || !dispatch_[HookIndex(hook)].empty()) {
    return;
  }
  StackHooks& hooks = stack_->hooks();
  StackBatchHooks& batch = stack_->batch_hooks();
  switch (hook) {
    case Hook::kXdpOffload:
      hooks.xdp_offload = nullptr;
      batch.xdp_offload = nullptr;
      break;
    case Hook::kXdpDrv:
      hooks.xdp_drv = nullptr;
      batch.xdp_drv = nullptr;
      break;
    case Hook::kXdpSkb:
      hooks.xdp_skb = nullptr;
      batch.xdp_skb = nullptr;
      break;
    case Hook::kCpuRedirect:
      hooks.cpu_redirect = nullptr;
      batch.cpu_redirect = nullptr;
      break;
    case Hook::kSocketSelect:
      hooks.socket_select = nullptr;
      batch.socket_select = nullptr;
      break;
    case Hook::kThreadScheduler: break;
  }
}

Decision Syrupd::Dispatch(Hook hook, const PacketView& pkt) {
  Decision d = kPass;
  DispatchBatch(hook, std::span<const PacketView>(&pkt, 1),
                std::span<Decision>(&d, 1));
  return d;
}

void Syrupd::DispatchBatch(Hook hook, std::span<const PacketView> pkts,
                           std::span<Decision> out) {
  SYRUP_CHECK_EQ(pkts.size(), out.size());
  const size_t hook_index = HookIndex(hook);
  for (size_t offset = 0; offset < pkts.size();
       offset += kMaxDispatchBatch) {
    const size_t n = std::min(kMaxDispatchBatch, pkts.size() - offset);
    DispatchChunk<false>(hook, pkts.subspan(offset, n),
                         out.subspan(offset, n), hook_cells_[hook_index],
                         flow_cache_[hook_index]);
  }
}

void Syrupd::ConfigureSharding(int shards) {
  SYRUP_CHECK_GE(shards, 1);
  shard_lanes_.clear();
  shard_lanes_.reserve(static_cast<size_t>(shards - 1));
  for (int s = 1; s < shards; ++s) {
    auto lanes = std::make_unique<std::array<HookLane, kNumHooks>>();
    for (size_t i = 0; i < kNumHooks; ++i) {
      const std::string_view hook = HookName(HookFromIndex(i));
      HookLane& lane = (*lanes)[i];
      lane.cells.dispatched =
          metrics_.GetCounterShard("syrupd", hook, "dispatched", s);
      lane.cells.no_policy =
          metrics_.GetCounterShard("syrupd", hook, "no_policy", s);
      lane.cells.decision_steer =
          metrics_.GetCounterShard("syrupd", hook, "decision_steer", s);
      lane.cells.decision_pass =
          metrics_.GetCounterShard("syrupd", hook, "decision_pass", s);
      lane.cells.decision_drop =
          metrics_.GetCounterShard("syrupd", hook, "decision_drop", s);
      lane.cells.flow_cache =
          FlowCacheCounters::InRegistryShard(metrics_, hook, s);
      lane.cache.BindCounters(lane.cells.flow_cache);
      lane.cache.Configure(flow_cache_config_);
    }
    shard_lanes_.push_back(std::move(lanes));
  }
}

void Syrupd::DispatchBatch(Hook hook, std::span<const PacketView> pkts,
                           std::span<Decision> out, int shard) {
  SYRUP_CHECK_EQ(pkts.size(), out.size());
  SYRUP_CHECK_GE(shard, 0);
  SYRUP_CHECK_LT(shard, dispatch_shards());
  const size_t hook_index = HookIndex(hook);
  // Shard 0 reuses the base tables but — unlike the unsharded entry point —
  // bumps through the sharded counter discipline (IncRelaxed + batched
  // atomic app counts), so every shard-qualified dispatch, shard 0
  // included, is race-free against concurrent snapshots and lane dispatch.
  HookCells& cells =
      shard == 0
          ? hook_cells_[hook_index]
          : (*shard_lanes_[static_cast<size_t>(shard - 1)])[hook_index].cells;
  FlowDecisionCache& cache =
      shard == 0
          ? flow_cache_[hook_index]
          : (*shard_lanes_[static_cast<size_t>(shard - 1)])[hook_index].cache;
  for (size_t offset = 0; offset < pkts.size();
       offset += kMaxDispatchBatch) {
    const size_t n = std::min(kMaxDispatchBatch, pkts.size() - offset);
    DispatchChunk<true>(hook, pkts.subspan(offset, n), out.subspan(offset, n),
                        cells, cache);
  }
}

template <bool kSharded>
void Syrupd::DispatchChunk(Hook hook, std::span<const PacketView> pkts,
                           std::span<Decision> out, HookCells& cells,
                           FlowDecisionCache& cache) {
  // Pin the reclamation epoch once per chunk: every lock-free map lookup a
  // policy performs below (including LookupBatch on the flow-cache miss
  // path) reads slot and slab memory that writers may only recycle after
  // this guard drops. One pin per ≤64-packet chunk keeps the epoch-advance
  // rate bounded by batch rate, not packet rate.
  epoch::ReadGuard epoch_guard;
  const size_t hook_index = HookIndex(hook);
  auto& table = dispatch_[hook_index];
  const bool cache_enabled = flow_cache_config_.enabled;

  // Phase 1 — hoisted per-packet prep. Only work that is a pure function
  // of the packet bytes and the (batch-stable) routing tables may move
  // here: port-entry resolution (policies cannot attach or detach from
  // inside a policy, so the table cannot change mid-batch), flow-key
  // derivation, and warming the cache line each key will probe. Version
  // sums, cache probes, policy executions, and counters all stay in the
  // in-order phase — an uncacheable policy early in the burst may write a
  // map a later packet's cacheable policy reads.
  // Trivial on purpose: the array stays uninitialized and only the first
  // pkts.size() elements are written. Zero-constructing 64 of these
  // (~100 bytes each) would cost more than a whole batch-of-1 dispatch.
  struct Probe {
    PortEntry* entry;
    bool cached;
    FlowDecisionCache::Key key;
  };
  Probe probes[kMaxDispatchBatch];
  uint16_t last_port = 0;
  PortEntry* last_entry = nullptr;
  bool have_last = false;
  for (size_t i = 0; i < pkts.size(); ++i) {
    const uint16_t port = pkts[i].DstPort();
    Probe& probe = probes[i];
    if (have_last && port == last_port) {
      probe.entry = last_entry;  // bursts are usually one flow's port
    } else {
      auto it = table.find(port);
      probe.entry = it == table.end() ? nullptr : &it->second;
      last_port = port;
      last_entry = probe.entry;
      have_last = true;
    }
    probe.cached = probe.entry != nullptr && cache_enabled &&
                   probe.entry->cache.cacheable;
    if (probe.cached) {
      probe.key =
          FlowDecisionCache::MakeKey(pkts[i], probe.entry->cache.pkt_read_mask);
      cache.PrefetchSlot(probe.key.hash);
    }
  }

  // Phase 2 — in-order decide: identical, bump for bump, to dispatching
  // each packet alone.
  //
  // Counter discipline: shard 0's cells are single-writer with the
  // simulation thread, so a plain bump stays exact and free; sharded lanes
  // bump their own (shard-local) cells with IncRelaxed — race-free against
  // a concurrent snapshot Load() — and batch the one genuinely shared cell,
  // the per-app dispatched count, into a single atomic add per port run.
  auto bump = [](const std::shared_ptr<obs::Counter>& c) {
    if constexpr (kSharded) {
      c->IncRelaxed();
    } else {
      c->value += 1;
    }
  };
  PortEntry* app_run = nullptr;
  uint64_t app_run_len = 0;
  auto flush_app_run = [&] {
    if constexpr (kSharded) {
      if (app_run != nullptr && app_run_len > 0) {
        app_run->app_dispatched->IncAtomic(app_run_len);
      }
      app_run_len = 0;
    }
  };
  for (size_t i = 0; i < pkts.size(); ++i) {
    PortEntry* entry = probes[i].entry;
    if (entry == nullptr) {
      bump(cells.no_policy);
      out[i] = kPass;
      continue;
    }
    bump(cells.dispatched);
    if constexpr (kSharded) {
      if (entry != app_run) {
        flush_app_run();
        app_run = entry;
      }
      app_run_len += 1;
    } else {
      entry->app_dispatched->value += 1;
    }

    Decision d;
    if (probes[i].cached) {
      // Version sum captured before the policy may run: a map update
      // racing the execution leaves the entry we insert below already
      // stale, so it can never validate later (see flow_cache.h).
      const uint64_t version_sum = entry->cache.VersionSum();
      const uint64_t epoch = hook_epoch_[hook_index];
      bool stale = false;
      if (cache.Lookup(probes[i].key, epoch, version_sum, &d, &stale)) {
        bump(cells.flow_cache.hits);
      } else {
        if (stale) {
          bump(cells.flow_cache.invalidations);
        }
        bump(cells.flow_cache.misses);
        d = entry->policy_raw->Schedule(pkts[i]);
        cache.Insert(probes[i].key, d, epoch, version_sum);
      }
    } else {
      if (cache_enabled) {
        bump(cells.flow_cache.uncacheable);
      }
      d = entry->policy_raw->Schedule(pkts[i]);
    }
    if (d == kPass) {
      bump(cells.decision_pass);
    } else if (d == kDrop) {
      bump(cells.decision_drop);
    } else {
      bump(cells.decision_steer);
    }
    out[i] = d;
  }
  flush_app_run();
}

void Syrupd::set_flow_cache_config(const FlowCacheConfig& config) {
  flow_cache_config_ = config;
  for (size_t i = 0; i < kNumHooks; ++i) {
    flow_cache_[i].Configure(config);
  }
  for (auto& lanes : shard_lanes_) {
    for (HookLane& lane : *lanes) {
      lane.cache.Configure(config);
    }
  }
}

std::shared_ptr<PacketPolicy> Syrupd::PolicyAt(Hook hook,
                                               uint16_t port) const {
  const auto& table = dispatch_[HookIndex(hook)];
  auto it = table.find(port);
  return it == table.end() ? nullptr : it->second.policy;
}

std::vector<DeploymentInfo> Syrupd::ListDeployments() const {
  std::vector<DeploymentInfo> out;
  for (size_t hook_index = 0; hook_index < kNumHooks; ++hook_index) {
    for (const auto& [port, entry] : dispatch_[hook_index]) {
      DeploymentInfo info;
      info.hook = HookFromIndex(hook_index);
      info.port = port;
      info.policy_name = std::string(entry.policy->name());
      for (const auto& [id, app] : apps_) {
        if (std::find(app.ports.begin(), app.ports.end(), port) !=
            app.ports.end()) {
          info.app = id;
          info.app_name = app.name;
          break;
        }
      }
      out.push_back(std::move(info));
    }
  }
  return out;
}

const bpf::AnalysisFacts* Syrupd::FactsById(uint64_t prog_id) const {
  auto it = facts_.find(prog_id);
  return it == facts_.end() ? nullptr : &it->second;
}

DeploymentAnalysis Syrupd::AnalyzeDeployments() const {
  // One record per deployed bytecode program: a prog id behind several
  // ports is one deployment, and native policies (no verifier facts) are
  // outside the analysis.
  struct ProgRec {
    std::string label;  // app/hook/policy
    const bpf::Program* prog = nullptr;
    const bpf::AnalysisFacts* facts = nullptr;
  };
  std::map<uint64_t, ProgRec> recs;
  for (size_t hook_index = 0; hook_index < kNumHooks; ++hook_index) {
    for (const auto& [port, entry] : dispatch_[hook_index]) {
      if (entry.prog_id < 0) {
        continue;
      }
      const uint64_t id = static_cast<uint64_t>(entry.prog_id);
      auto fit = facts_.find(id);
      auto pit = programs_.find(id);
      if (fit == facts_.end() || pit == programs_.end() ||
          recs.count(id) != 0) {
        continue;
      }
      std::string app = "?";
      for (const auto& [app_id, state] : apps_) {
        if (std::find(state.ports.begin(), state.ports.end(), port) !=
            state.ports.end()) {
          app = state.name;
          break;
        }
      }
      ProgRec rec;
      rec.label = app + "/" +
                  std::string(HookName(HookFromIndex(hook_index))) + "/" +
                  pit->second->name;
      rec.prog = pit->second.get();
      rec.facts = &fit->second;
      recs.emplace(id, std::move(rec));
    }
  }
  if (thread_prog_id_ >= 0) {
    const uint64_t id = static_cast<uint64_t>(thread_prog_id_);
    auto fit = facts_.find(id);
    auto pit = programs_.find(id);
    auto ait = apps_.find(ghost_owner_);
    if (fit != facts_.end() && pit != programs_.end() &&
        recs.count(id) == 0) {
      ProgRec rec;
      rec.label = (ait != apps_.end() ? ait->second.name : "?") + "/" +
                  std::string(HookName(Hook::kThreadScheduler)) + "/" +
                  pit->second->name;
      rec.prog = pit->second.get();
      rec.facts = &fit->second;
      recs.emplace(id, std::move(rec));
    }
  }

  // Fold every program's read/write/atomic sets into per-map rows, keyed
  // by map identity (two programs binding the same pinned map share a row).
  std::map<const Map*, MapInterferenceRow> by_map;
  auto row_for = [&](const Map* map) -> MapInterferenceRow& {
    auto it = by_map.find(map);
    if (it == by_map.end()) {
      MapInterferenceRow row;
      row.map = registry_.PathOf(map);
      if (row.map.empty()) {
        row.map = map->spec().name;
      }
      if (row.map.empty()) {
        row.map = "map#" + std::to_string(by_map.size());
      }
      it = by_map.emplace(map, std::move(row)).first;
    }
    return it->second;
  };
  auto add_unique = [](std::vector<std::string>& v, const std::string& s) {
    if (std::find(v.begin(), v.end(), s) == v.end()) {
      v.push_back(s);
    }
  };
  for (const auto& [id, rec] : recs) {
    const auto& maps = rec.prog->maps;
    auto fold = [&](const std::vector<int32_t>& indices,
                    std::vector<std::string> MapInterferenceRow::*field) {
      for (int32_t idx : indices) {
        if (idx >= 0 && static_cast<size_t>(idx) < maps.size()) {
          add_unique(row_for(maps[idx].get()).*field, rec.label);
        }
      }
    };
    fold(rec.facts->read_maps, &MapInterferenceRow::readers);
    fold(rec.facts->write_maps, &MapInterferenceRow::writers);
    fold(rec.facts->atomic_maps, &MapInterferenceRow::atomics);
  }

  DeploymentAnalysis out;
  out.rows.reserve(by_map.size());
  for (auto& [map, row] : by_map) {
    out.rows.push_back(std::move(row));
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const MapInterferenceRow& a, const MapInterferenceRow& b) {
              return a.map < b.map;
            });

  auto join = [](const std::vector<std::string>& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) s += ", ";
      s += v[i];
    }
    return s;
  };
  auto app_of = [](const std::string& label) {
    return label.substr(0, label.find('/'));
  };
  for (const MapInterferenceRow& row : out.rows) {
    if (row.writers.size() >= 2) {
      std::set<std::string> apps;
      for (const std::string& w : row.writers) {
        apps.insert(app_of(w));
      }
      InterferenceFinding f;
      f.category = "write-write";
      f.map = row.map;
      if (apps.size() >= 2) {
        f.level = InterferenceFinding::Level::kError;
        f.detail = "written by programs of " +
                   std::to_string(apps.size()) +
                   " different applications (" + join(row.writers) +
                   "): unsynchronized cross-application writes are "
                   "last-writer-wins across trust domains";
      } else {
        f.level = InterferenceFinding::Level::kWarning;
        f.detail = "written by " + std::to_string(row.writers.size()) +
                   " programs of one application (" + join(row.writers) +
                   "); writes interleave across hooks";
      }
      out.findings.push_back(std::move(f));
    }
    if (!row.writers.empty() && row.readers.empty()) {
      out.findings.push_back(InterferenceFinding{
          InterferenceFinding::Level::kWarning, "dead-telemetry", row.map,
          "written by " + join(row.writers) +
              " but read by no deployed program (userspace readers are "
              "invisible to this analysis)"});
    }
    if (!row.readers.empty() && row.writers.empty()) {
      out.findings.push_back(InterferenceFinding{
          InterferenceFinding::Level::kWarning, "stale-input", row.map,
          "read by " + join(row.readers) +
              " but written by no deployed program (userspace writers are "
              "invisible to this analysis)"});
    }
  }
  for (const auto& [id, rec] : recs) {
    if (rec.facts->cache_blockers.empty()) {
      continue;
    }
    std::string detail = rec.label + " is not flow-cacheable: ";
    for (size_t i = 0; i < rec.facts->cache_blockers.size(); ++i) {
      const bpf::CacheBlocker& blocker = rec.facts->cache_blockers[i];
      if (i > 0) detail += "; ";
      detail +=
          "insn " + std::to_string(blocker.pc) + ": " + blocker.reason;
    }
    out.findings.push_back(
        InterferenceFinding{InterferenceFinding::Level::kInfo,
                            "uncacheable", "", std::move(detail)});
  }
  std::stable_sort(out.findings.begin(), out.findings.end(),
                   [](const InterferenceFinding& a,
                      const InterferenceFinding& b) {
                     return static_cast<int>(a.level) <
                            static_cast<int>(b.level);
                   });
  return out;
}

StatusOr<int> Syrupd::MapCreate(AppId app, const MapSpec& spec,
                                const std::string& pin_path, PinMode mode) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return NotFoundError("unknown app");
  }
  SYRUP_ASSIGN_OR_RETURN(std::shared_ptr<Map> map, CreateMap(spec));
  const std::string map_name = spec.name.empty() ? pin_path : spec.name;
  map->BindCounters(
      MapOpCounters::InRegistry(metrics_, it->second.name, map_name));
  TrackMapGauges(map, it->second.name, map_name);
  SYRUP_RETURN_IF_ERROR(registry_.Pin(pin_path, map, it->second.uid, mode));
  const int fd = next_fd_++;
  fds_[fd] = FdEntry{app, std::move(map), MapAccess::kWrite};
  return fd;
}

StatusOr<int> Syrupd::MapOpen(AppId app, const std::string& path,
                              MapAccess access) {
  auto it = apps_.find(app);
  if (it == apps_.end()) {
    return NotFoundError("unknown app");
  }
  SYRUP_ASSIGN_OR_RETURN(std::shared_ptr<Map> map,
                         registry_.Open(path, it->second.uid, access));
  // First binding wins: a map pinned by its owning app already accounts
  // there; an unbound (externally created) map lands under the opener.
  const std::string map_name =
      map->spec().name.empty() ? path : map->spec().name;
  map->BindCounters(
      MapOpCounters::InRegistry(metrics_, it->second.name, map_name));
  TrackMapGauges(map, it->second.name, map_name);
  const int fd = next_fd_++;
  fds_[fd] = FdEntry{app, std::move(map), access};
  return fd;
}

void Syrupd::TrackMapGauges(const std::shared_ptr<Map>& map,
                            std::string_view app_name,
                            const std::string& map_name) {
  for (const MapGaugeEntry& entry : map_gauges_) {
    if (entry.map.lock() == map) {
      return;  // already tracked (re-opened pinned map)
    }
  }
  MapGaugeEntry entry;
  entry.map = map;
  entry.occupancy = metrics_.GetGauge(app_name, "map", map_name + ".occupancy");
  entry.max_probe_len =
      metrics_.GetGauge(app_name, "map", map_name + ".max_probe_len");
  entry.tombstones =
      metrics_.GetGauge(app_name, "map", map_name + ".tombstones");
  entry.epoch_lag = metrics_.GetGauge(app_name, "map", map_name + ".epoch_lag");
  map_gauges_.push_back(std::move(entry));
}

void Syrupd::RefreshMapGauges() const {
  std::erase_if(map_gauges_, [](const MapGaugeEntry& entry) {
    std::shared_ptr<Map> map = entry.map.lock();
    if (map == nullptr) {
      return true;  // map died; drop the row, gauges keep their last value
    }
    const MapRuntimeStats stats = map->RuntimeStats();
    entry.occupancy->Set(static_cast<int64_t>(stats.occupancy));
    entry.max_probe_len->Set(static_cast<int64_t>(stats.max_probe_len));
    entry.tombstones->Set(static_cast<int64_t>(stats.tombstones));
    entry.epoch_lag->Set(static_cast<int64_t>(stats.epoch_lag));
    return false;
  });
}

Status Syrupd::MapClose(int fd) {
  return fds_.erase(fd) > 0 ? OkStatus() : NotFoundError("bad map fd");
}

StatusOr<uint64_t> Syrupd::MapLookupElem(int fd, uint32_t key) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return NotFoundError("bad map fd");
  }
  return it->second.map->LookupU64(key);
}

Status Syrupd::MapUpdateElem(int fd, uint32_t key, uint64_t value) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return NotFoundError("bad map fd");
  }
  if (it->second.access == MapAccess::kRead) {
    return PermissionDeniedError("map fd is read-only");
  }
  return it->second.map->UpdateU64(key, value);
}

MapAccess Syrupd::MapFdAccess(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? MapAccess::kWrite : it->second.access;
}

std::shared_ptr<Map> Syrupd::MapByFd(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : it->second.map;
}

}  // namespace syrup
