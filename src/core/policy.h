// Policy execution abstractions.
//
// A packet policy is the paper's `schedule(pkt_start, pkt_end)` matching
// function. Three execution modes are supported and interchangeable:
//
//   * BytecodePacketPolicy — untrusted policy-file programs, verified by
//     the src/bpf VM and run either through the decode-per-instruction
//     interpreter or (the default deployment tier) through the pre-decoded
//     compiled form of src/bpf/compiler.h.
//   * native C++ implementations of PacketPolicy — trusted mirrors used in
//     simulation hot loops; tests assert decision-for-decision equivalence
//     with their bytecode twins.
//
// BytecodeGhostPolicy is the same idea for the Thread Scheduler hook: a
// verified `.ctx thread` program classifies threads (r1 = tid) into strict
// priority classes, and the ghOSt shim turns those classes into
// pick/preempt decisions.
#ifndef SYRUP_SRC_CORE_POLICY_H_
#define SYRUP_SRC_CORE_POLICY_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/program.h"
#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/ghost/ghost.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"

namespace syrup {

// Metric cells a bytecode policy accounts into. Standalone construction
// (tests, the playground) uses detached cells; syrupd deployments resolve
// them from its MetricsRegistry keyed {app, hook, "policy.*"} so redeploys
// keep accumulating into the same series.
struct PolicyMetrics {
  std::shared_ptr<obs::Counter> invocations;
  std::shared_ptr<obs::Counter> insns;
  std::shared_ptr<obs::Counter> helper_calls;
  std::shared_ptr<obs::Counter> runtime_faults;

  static PolicyMetrics Detached() {
    PolicyMetrics m;
    m.invocations = std::make_shared<obs::Counter>();
    m.insns = std::make_shared<obs::Counter>();
    m.helper_calls = std::make_shared<obs::Counter>();
    m.runtime_faults = std::make_shared<obs::Counter>();
    return m;
  }

  static PolicyMetrics InRegistry(obs::MetricsRegistry& registry,
                                  std::string_view app,
                                  std::string_view hook) {
    PolicyMetrics m;
    m.invocations = registry.GetCounter(app, hook, "policy.invocations");
    m.insns = registry.GetCounter(app, hook, "policy.insns");
    m.helper_calls = registry.GetCounter(app, hook, "policy.helper_calls");
    m.runtime_faults = registry.GetCounter(app, hook, "policy.runtime_faults");
    return m;
  }
};

class PacketPolicy {
 public:
  virtual ~PacketPolicy() = default;

  // The matching function: selects an executor index, kPass, or kDrop.
  virtual Decision Schedule(const PacketView& pkt) = 0;

  virtual std::string_view name() const = 0;
};

// Runs a verified bytecode program as a packet policy. When a compiled
// artifact is supplied (syrupd's attach-time cache), every decision runs
// through the direct-threaded executor; otherwise the interpreter.
class BytecodePacketPolicy : public PacketPolicy {
 public:
  BytecodePacketPolicy(
      std::shared_ptr<const bpf::Program> program, bpf::ExecEnv env,
      PolicyMetrics metrics = PolicyMetrics::Detached(),
      std::shared_ptr<const bpf::CompiledProgram> compiled = nullptr)
      : program_(std::move(program)),
        compiled_(std::move(compiled)),
        interp_(env),
        exec_(std::move(env)),
        metrics_(std::move(metrics)) {}

  Decision Schedule(const PacketView& pkt) override {
    const auto arg1 = reinterpret_cast<uint64_t>(pkt.start);
    const auto arg2 = reinterpret_cast<uint64_t>(pkt.end);
    auto result = compiled_ != nullptr
                      ? exec_.Run(*compiled_, arg1, arg2,
                                  /*args_are_packet=*/true)
                      : interp_.Run(*program_, arg1, arg2,
                                    /*args_are_packet=*/true);
    if (!result.ok()) {
      // A verified program should never fault at runtime; treat a fault as
      // PASS so a buggy policy degrades to the system default rather than
      // taking down the datapath.
      metrics_.runtime_faults->Inc();
      return kPass;
    }
    metrics_.invocations->Inc();
    metrics_.insns->Inc(result->insns_executed);
    metrics_.helper_calls->Inc(result->helper_calls);
    return static_cast<Decision>(result->r0);
  }

  std::string_view name() const override { return program_->name; }

  // The tier decisions actually run on (native degrades to compiled when
  // the JIT fell back), not the tier that was requested.
  bpf::ExecMode exec_mode() const {
    return bpf::EffectiveExecMode(compiled_.get());
  }

  const bpf::Program& program() const { return *program_; }
  const bpf::CompiledProgram* compiled() const { return compiled_.get(); }
  uint64_t invocations() const { return metrics_.invocations->value; }
  uint64_t insns_executed() const { return metrics_.insns->value; }
  uint64_t helper_calls() const { return metrics_.helper_calls->value; }
  uint64_t runtime_faults() const { return metrics_.runtime_faults->value; }

  // Mean VM instructions per decision (Table 2's "Instructions" column).
  // Compiled runs count pre-decoded instructions, which folding makes
  // fewer than the interpreter's count for the same decisions.
  double MeanInsnsPerDecision() const {
    const uint64_t n = invocations();
    return n == 0 ? 0.0
                  : static_cast<double>(insns_executed()) /
                        static_cast<double>(n);
  }

 private:
  std::shared_ptr<const bpf::Program> program_;
  std::shared_ptr<const bpf::CompiledProgram> compiled_;
  bpf::Interpreter interp_;
  bpf::CompiledExecutor exec_;
  PolicyMetrics metrics_;
};

// Runs a verified `.ctx thread` program as a ghOSt thread policy.
//
// Convention: the program is a classifier, r1 = tid, r2 = 0, returning the
// thread's strict priority class (smaller = more urgent; ReqType values in
// the paper's workloads: 1 = GET, 2 = SCAN). The shim picks the first
// runnable thread of the smallest class and preempts whenever a runnable
// thread's class is strictly smaller than the running thread's — with a
// two-class map this is exactly GetPriorityGhostPolicy.
class BytecodeGhostPolicy : public GhostPolicy {
 public:
  BytecodeGhostPolicy(
      std::shared_ptr<const bpf::Program> program, bpf::ExecEnv env,
      PolicyMetrics metrics = PolicyMetrics::Detached(),
      std::shared_ptr<const bpf::CompiledProgram> compiled = nullptr)
      : program_(std::move(program)),
        compiled_(std::move(compiled)),
        interp_(env),
        exec_(std::move(env)),
        metrics_(std::move(metrics)) {}

  int PickThread(int /*core*/,
                 const std::vector<GhostThreadInfo>& runnable) override {
    if (runnable.empty()) {
      return -1;
    }
    int best_tid = runnable.front().tid;
    uint64_t best_class = ClassOf(best_tid);
    for (size_t i = 1; i < runnable.size(); ++i) {
      const uint64_t c = ClassOf(runnable[i].tid);
      if (c < best_class) {
        best_class = c;
        best_tid = runnable[i].tid;
      }
    }
    return best_tid;
  }

  bool ShouldPreempt(const GhostThreadInfo& candidate,
                     int running_tid) override {
    return ClassOf(candidate.tid) < ClassOf(running_tid);
  }

  std::string_view name() const { return program_->name; }

  // Runs the classifier for one thread. Faults degrade to class 1 (the
  // "urgent" default for unclassified threads), mirroring the native
  // policy's missing-map-entry behavior.
  uint64_t ClassOf(int tid) {
    const auto arg1 = static_cast<uint64_t>(static_cast<uint32_t>(tid));
    auto result = compiled_ != nullptr
                      ? exec_.Run(*compiled_, arg1, 0,
                                  /*args_are_packet=*/false)
                      : interp_.Run(*program_, arg1, 0,
                                    /*args_are_packet=*/false);
    if (!result.ok()) {
      metrics_.runtime_faults->Inc();
      return 1;
    }
    metrics_.invocations->Inc();
    metrics_.insns->Inc(result->insns_executed);
    metrics_.helper_calls->Inc(result->helper_calls);
    return result->r0;
  }

  // Effective tier, same contract as BytecodePacketPolicy::exec_mode().
  bpf::ExecMode exec_mode() const {
    return bpf::EffectiveExecMode(compiled_.get());
  }

 private:
  std::shared_ptr<const bpf::Program> program_;
  std::shared_ptr<const bpf::CompiledProgram> compiled_;
  bpf::Interpreter interp_;
  bpf::CompiledExecutor exec_;
  PolicyMetrics metrics_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_POLICY_H_
