// Policy execution abstractions.
//
// A packet policy is the paper's `schedule(pkt_start, pkt_end)` matching
// function. Two execution modes are supported and interchangeable:
//
//   * BytecodePacketPolicy — untrusted policy-file programs, verified and
//     interpreted by the src/bpf VM (the deployment path real applications
//     use through syrupd).
//   * native C++ implementations of PacketPolicy — trusted mirrors used in
//     simulation hot loops; tests assert decision-for-decision equivalence
//     with their bytecode twins.
#ifndef SYRUP_SRC_CORE_POLICY_H_
#define SYRUP_SRC_CORE_POLICY_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/bpf/interpreter.h"
#include "src/bpf/program.h"
#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"

namespace syrup {

// Metric cells a bytecode policy accounts into. Standalone construction
// (tests, the playground) uses detached cells; syrupd deployments resolve
// them from its MetricsRegistry keyed {app, hook, "policy.*"} so redeploys
// keep accumulating into the same series.
struct PolicyMetrics {
  std::shared_ptr<obs::Counter> invocations;
  std::shared_ptr<obs::Counter> insns;
  std::shared_ptr<obs::Counter> helper_calls;
  std::shared_ptr<obs::Counter> runtime_faults;

  static PolicyMetrics Detached() {
    PolicyMetrics m;
    m.invocations = std::make_shared<obs::Counter>();
    m.insns = std::make_shared<obs::Counter>();
    m.helper_calls = std::make_shared<obs::Counter>();
    m.runtime_faults = std::make_shared<obs::Counter>();
    return m;
  }

  static PolicyMetrics InRegistry(obs::MetricsRegistry& registry,
                                  std::string_view app,
                                  std::string_view hook) {
    PolicyMetrics m;
    m.invocations = registry.GetCounter(app, hook, "policy.invocations");
    m.insns = registry.GetCounter(app, hook, "policy.insns");
    m.helper_calls = registry.GetCounter(app, hook, "policy.helper_calls");
    m.runtime_faults = registry.GetCounter(app, hook, "policy.runtime_faults");
    return m;
  }
};

class PacketPolicy {
 public:
  virtual ~PacketPolicy() = default;

  // The matching function: selects an executor index, kPass, or kDrop.
  virtual Decision Schedule(const PacketView& pkt) = 0;

  virtual std::string_view name() const = 0;
};

// Runs a verified bytecode program as a packet policy.
class BytecodePacketPolicy : public PacketPolicy {
 public:
  BytecodePacketPolicy(std::shared_ptr<const bpf::Program> program,
                       bpf::ExecEnv env,
                       PolicyMetrics metrics = PolicyMetrics::Detached())
      : program_(std::move(program)),
        interp_(std::move(env)),
        metrics_(std::move(metrics)) {}

  Decision Schedule(const PacketView& pkt) override {
    auto result = interp_.Run(*program_,
                              reinterpret_cast<uint64_t>(pkt.start),
                              reinterpret_cast<uint64_t>(pkt.end),
                              /*args_are_packet=*/true);
    if (!result.ok()) {
      // A verified program should never fault at runtime; treat a fault as
      // PASS so a buggy policy degrades to the system default rather than
      // taking down the datapath.
      metrics_.runtime_faults->Inc();
      return kPass;
    }
    metrics_.invocations->Inc();
    metrics_.insns->Inc(result->insns_executed);
    metrics_.helper_calls->Inc(result->helper_calls);
    return static_cast<Decision>(result->r0);
  }

  std::string_view name() const override { return program_->name; }

  const bpf::Program& program() const { return *program_; }
  uint64_t invocations() const { return metrics_.invocations->value; }
  uint64_t insns_executed() const { return metrics_.insns->value; }
  uint64_t helper_calls() const { return metrics_.helper_calls->value; }
  uint64_t runtime_faults() const { return metrics_.runtime_faults->value; }

  // Mean VM instructions per decision (Table 2's "Instructions" column).
  double MeanInsnsPerDecision() const {
    const uint64_t n = invocations();
    return n == 0 ? 0.0
                  : static_cast<double>(insns_executed()) /
                        static_cast<double>(n);
  }

 private:
  std::shared_ptr<const bpf::Program> program_;
  bpf::Interpreter interp_;
  PolicyMetrics metrics_;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_POLICY_H_
