// Policy execution abstractions.
//
// A packet policy is the paper's `schedule(pkt_start, pkt_end)` matching
// function. Two execution modes are supported and interchangeable:
//
//   * BytecodePacketPolicy — untrusted policy-file programs, verified and
//     interpreted by the src/bpf VM (the deployment path real applications
//     use through syrupd).
//   * native C++ implementations of PacketPolicy — trusted mirrors used in
//     simulation hot loops; tests assert decision-for-decision equivalence
//     with their bytecode twins.
#ifndef SYRUP_SRC_CORE_POLICY_H_
#define SYRUP_SRC_CORE_POLICY_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/bpf/interpreter.h"
#include "src/bpf/program.h"
#include "src/common/decision.h"
#include "src/common/status.h"
#include "src/net/packet.h"

namespace syrup {

class PacketPolicy {
 public:
  virtual ~PacketPolicy() = default;

  // The matching function: selects an executor index, kPass, or kDrop.
  virtual Decision Schedule(const PacketView& pkt) = 0;

  virtual std::string_view name() const = 0;
};

// Runs a verified bytecode program as a packet policy.
class BytecodePacketPolicy : public PacketPolicy {
 public:
  BytecodePacketPolicy(std::shared_ptr<const bpf::Program> program,
                       bpf::ExecEnv env)
      : program_(std::move(program)), interp_(std::move(env)) {}

  Decision Schedule(const PacketView& pkt) override {
    auto result = interp_.Run(*program_,
                              reinterpret_cast<uint64_t>(pkt.start),
                              reinterpret_cast<uint64_t>(pkt.end),
                              /*args_are_packet=*/true);
    if (!result.ok()) {
      // A verified program should never fault at runtime; treat a fault as
      // PASS so a buggy policy degrades to the system default rather than
      // taking down the datapath.
      ++runtime_faults_;
      return kPass;
    }
    invocations_++;
    insns_executed_ += result->insns_executed;
    return static_cast<Decision>(result->r0);
  }

  std::string_view name() const override { return program_->name; }

  const bpf::Program& program() const { return *program_; }
  uint64_t invocations() const { return invocations_; }
  uint64_t insns_executed() const { return insns_executed_; }
  uint64_t runtime_faults() const { return runtime_faults_; }

  // Mean VM instructions per decision (Table 2's "Instructions" column).
  double MeanInsnsPerDecision() const {
    return invocations_ == 0
               ? 0.0
               : static_cast<double>(insns_executed_) /
                     static_cast<double>(invocations_);
  }

 private:
  std::shared_ptr<const bpf::Program> program_;
  bpf::Interpreter interp_;
  uint64_t invocations_ = 0;
  uint64_t insns_executed_ = 0;
  uint64_t runtime_faults_ = 0;
};

}  // namespace syrup

#endif  // SYRUP_SRC_CORE_POLICY_H_
