// Umbrella header: everything a Syrup application needs.
//
//   #include "src/syrup.h"
//
// pulls in the client API (syrupd + the Table-1 calls), the policy
// abstractions (native and bytecode), Maps, the decision constants, and
// the hook identifiers. Substrate internals (the VM, the host-stack model,
// schedulers, servers) have their own headers under src/<module>/.
#ifndef SYRUP_SRC_SYRUP_H_
#define SYRUP_SRC_SYRUP_H_

#include "src/common/decision.h"    // kPass / kDrop / Decision
#include "src/common/status.h"      // Status / StatusOr
#include "src/core/hook.h"          // Hook enum (paper Fig. 4)
#include "src/core/policy.h"        // PacketPolicy, BytecodePacketPolicy
#include "src/core/syrup_api.h"     // SyrupClient: syr_* calls (Table 1)
#include "src/core/syrupd.h"        // Syrupd daemon
#include "src/map/map.h"            // Map / MapSpec / CreateMap
#include "src/map/registry.h"       // pinning
#include "src/policies/builtin.h"   // the paper's policies
#include "src/policies/ghost_policies.h"  // thread-scheduling policies

#endif  // SYRUP_SRC_SYRUP_H_
