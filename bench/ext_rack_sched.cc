// Extension bench (paper §6.1 / §7-RackSched): request-to-server
// scheduling in a programmable ToR switch fronting 4 RocksDB hosts.
//
// The switch runs a per-tenant Syrup program whose executors are servers:
//   hash — per-flow hashing (the no-program default, analogous to ECMP).
//   rr   — the unchanged Fig. 5a round-robin policy.
//   jsq  — LeastLoadedPolicy over the switch's outstanding-request
//          registers (RackSched's least-loaded approach), the registers
//          being a device-resident Syrup Map.
//
// Two racks: homogeneous, and one with a 3x-slower straggler server —
// where load-aware scheduling pays off.
#include <cstdio>
#include <memory>

#include "src/apps/loadgen.h"
#include "src/common/rng.h"
#include "src/policies/builtin.h"
#include "src/rack/rack.h"

namespace syrup {
namespace {

enum class RackPolicy { kHash, kRoundRobin, kLeastLoaded, kPowerOfTwo };

double P99(RackPolicy policy, bool straggler, double load) {
  Simulator sim;
  RackConfig config;
  config.num_servers = 4;
  if (straggler) {
    config.server_speed = {1.0, 1.0, 1.0, 3.0};
  }
  Rack rack(sim, config);
  switch (policy) {
    case RackPolicy::kHash:
      break;  // default path
    case RackPolicy::kRoundRobin:
      (void)rack.tor().InstallTenantProgram(
          9000, std::make_shared<RoundRobinPolicy>(4));
      break;
    case RackPolicy::kLeastLoaded:
      (void)rack.tor().InstallTenantProgram(
          9000, std::make_shared<LeastLoadedPolicy>(
                    4, rack.tor().outstanding_map()));
      break;
    case RackPolicy::kPowerOfTwo: {
      auto rng = std::make_shared<Rng>(3);
      (void)rack.tor().InstallTenantProgram(
          9000, std::make_shared<PowerOfTwoPolicy>(
                    4, rack.tor().outstanding_map(), [rng]() {
                      return static_cast<uint32_t>(rng->Next());
                    }));
      break;
    }
  }
  LoadGenConfig gen_config;
  gen_config.rate_rps = load;
  gen_config.dst_port = 9000;
  gen_config.num_flows = 200;
  gen_config.seed = 8;
  LoadGenerator gen(
      sim, [&rack](Packet pkt) { rack.InjectRequest(std::move(pkt)); },
      gen_config);
  gen.Start(400 * kMillisecond);
  sim.RunUntil(450 * kMillisecond);
  return static_cast<double>(rack.latency().Percentile(99)) / 1000.0;
}

void RunCase(bool straggler, const char* title) {
  std::printf("# %s\n", title);
  std::printf("%10s | %10s %10s %10s %10s   (p99 us)\n", "load_rps",
              "hash", "rr", "jsq", "p2c");
  for (double load : {400e3, 800e3, 1000e3, 1200e3, 1400e3, 1600e3}) {
    std::printf("%10.0f | %10.1f %10.1f %10.1f %10.1f\n", load,
                P99(RackPolicy::kHash, straggler, load),
                P99(RackPolicy::kRoundRobin, straggler, load),
                P99(RackPolicy::kLeastLoaded, straggler, load),
                P99(RackPolicy::kPowerOfTwo, straggler, load));
  }
}

void Run() {
  std::printf("# Rack-level scheduling: 4 servers x 6 cores behind a "
              "programmable ToR switch\n");
  RunCase(false, "homogeneous servers");
  RunCase(true, "one 3x-slower straggler server");
  std::printf(
      "# Expectation: homogeneous -> rr/jsq similar, hash worst (flow "
      "imbalance); straggler ->\n"
      "# hash and rr overload the slow server (they send it a full share) "
      "while jsq routes\n"
      "# around it, sustaining far higher rack load at low p99.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
