// Regenerates paper Figure 9: MICA performance with scheduling at
// different layers of the stack (§5.4).
//
// 8 MICA threads on 8 cores, key-partitioned. Variants:
//   sw_redirect — original MICA: RSS lands packets anywhere; the receiving
//                 core forwards to the key's home core over an inter-core
//                 queue (two data movements).
//   syrup_sw    — the hash matching function (§3.3) at the kernel AF_XDP
//                 hook: packets go straight to the home thread's AF_XDP
//                 socket (one movement).
//   syrup_hw    — the same policy offloaded to the NIC: packets arrive on
//                 the home core's own queue (no cross-core movement).
//
//   (a) 50% GET / 50% PUT          (b) 95% GET / 5% PUT
// Reports 99.9% latency vs load, as in the paper.
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

double P999At(MicaVariant variant, double get_fraction, double load) {
  MicaExperimentConfig config;
  config.variant = variant;
  config.get_fraction = get_fraction;
  config.load_rps = load;
  config.measure = 400 * kMillisecond;
  config.seed = 2;
  return RunMicaExperiment(config).p999_us;
}

void RunMix(double get_fraction, const char* title) {
  std::printf("# %s\n", title);
  std::printf("%10s %14s %14s %14s %14s\n", "load_rps", "sw_redirect",
              "syrup_sw", "syrup_sw_zc", "syrup_hw");
  for (double load = 250'000; load <= 3'500'000; load += 250'000) {
    std::printf("%10.0f %14.1f %14.1f %14.1f %14.1f\n", load,
                P999At(MicaVariant::kSwRedirect, get_fraction, load),
                P999At(MicaVariant::kSyrupSw, get_fraction, load),
                P999At(MicaVariant::kSyrupSwZc, get_fraction, load),
                P999At(MicaVariant::kSyrupHw, get_fraction, load));
  }
}

void Run() {
  std::printf("# Figure 9: MICA 99.9%% latency across scheduling layers\n");
  RunMix(0.5, "(a) 50% GET - 50% PUT");
  RunMix(0.95, "(b) 95% GET - 5% PUT");
  std::printf(
      "# Expected shape (paper): sw_redirect explodes at ~1.7-1.8M, "
      "syrup_sw at ~2.7-2.8M,\n"
      "# syrup_hw at ~3.2-3.3M (18%% beyond syrup_sw, 83%% beyond the "
      "original). syrup_sw_zc is\n"
      "# the Intel-82599 zero-copy XDP_DRV footnote: between syrup_sw and "
      "syrup_hw.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
