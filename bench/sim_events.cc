// Event-engine throughput: timing wheel vs reference heap, machine-readable.
//
// Exercises the engine's distinct cost regimes — a depth-1 self-ticking
// chain, a deep steady-state pending set, schedule+cancel churn, and
// far-future timers that land in higher wheel levels and the overflow heap —
// under both engines, then writes `BENCH_sim_events.json` (scenario ->
// ns/event per engine, plus the wheel:reference speedup) so the perf
// trajectory is tracked across PRs.
//
// Flags:
//   --quick            ~10x fewer events per scenario (CI smoke mode)
//   --baseline <file>  compare the wheel's ns/event against the checked-in
//                      baseline; exit 1 on a >25% regression
//   --out <file>       JSON output path (default BENCH_sim_events.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

struct ScenarioResult {
  double ns_per_event = 0;
  uint64_t events = 0;
  uint64_t internal_allocs = 0;  // wheel engine's slab/heap/growth count
};

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Depth-1 chain: each dispatch schedules the next event. The minimal
// schedule+dispatch round trip. The callback is a plain 16-byte functor —
// what the swept client code schedules — so the pooled engine stores it
// inline (direct invoke, no destructor) while the reference engine pays its
// mandatory std::function + shared_ptr<bool> wrapping.
struct SelfTick {
  Simulator* sim;
  uint64_t* remaining;
  void operator()() const {
    if (--*remaining > 0) {
      sim->ScheduleAfter(100, SelfTick{sim, remaining});
    }
  }
};

ScenarioResult RunSelfTick(SimEngine engine, uint64_t events) {
  Simulator sim(engine);
  uint64_t remaining = events;
  sim.ScheduleAfter(100, SelfTick{&sim, &remaining});
  const auto start = std::chrono::steady_clock::now();
  sim.RunToCompletion();
  ScenarioResult r;
  r.events = events;
  r.ns_per_event = ElapsedNs(start) / static_cast<double>(events);
  r.internal_allocs = sim.engine_stats().internal_allocs();
  return r;
}

// 1024 events in flight, each rescheduling itself at a varied (but
// deterministic) delay. This is the wheel's designed-for regime: the pool
// and wheel reach their high-water marks during warmup and the measured
// window allocates nothing.
struct SteadyTick {
  Simulator* sim;
  uint64_t* remaining;
  uint64_t* lcg;
  uint64_t delay_spread;
  void operator()() const {
    if (*remaining > 0) {
      --*remaining;
      *lcg = *lcg * 6364136223846793005ull + 1442695040888963407ull;
      sim->ScheduleAfter(100 + (*lcg >> 33) % delay_spread,
                         SteadyTick{sim, remaining, lcg, delay_spread});
    }
  }
};

ScenarioResult RunSteady(SimEngine engine, uint64_t events, uint64_t pending,
                         uint64_t delay_spread) {
  Simulator sim(engine);
  uint64_t remaining = events;
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  const SteadyTick tick{&sim, &remaining, &lcg, delay_spread};
  for (uint64_t i = 0; i < pending; ++i) {
    sim.ScheduleAfter(100 + i, tick);
  }
  // Warmup: let the pool/wheel grow to steady state before timing.
  const uint64_t warmup = events / 10;
  uint64_t dispatched_target = sim.engine_stats().dispatched + warmup;
  while (sim.engine_stats().dispatched < dispatched_target &&
         sim.pending_events() > 0) {
    sim.RunUntil(sim.Now() + 1 * kMillisecond);
  }
  const uint64_t allocs_before = sim.engine_stats().internal_allocs();
  const uint64_t dispatched_before = sim.engine_stats().dispatched;
  const auto start = std::chrono::steady_clock::now();
  sim.RunToCompletion();
  const double elapsed = ElapsedNs(start);
  ScenarioResult r;
  r.events = sim.engine_stats().dispatched - dispatched_before;
  r.ns_per_event = elapsed / static_cast<double>(r.events > 0 ? r.events : 1);
  r.internal_allocs = sim.engine_stats().internal_allocs() - allocs_before;
  return r;
}

ScenarioResult RunSteadyState(SimEngine engine, uint64_t events) {
  // 1k in flight over a 10us spread: a loaded single host.
  return RunSteady(engine, events, 1024, 10'000);
}

ScenarioResult RunSteadyDeep(SimEngine engine, uint64_t events) {
  // 16k in flight over a 1ms spread: rack-scale experiment shape (tens of
  // thousands of packets/timers pending). The reference heap pays O(log n)
  // type-erased moves per operation here; the wheel stays O(1).
  return RunSteady(engine, events, 16'384, 1'000'000);
}

// The steady-state workload with three more engines running the same thing
// concurrently on their own threads — the per-shard shape of
// src/sim/sharded.h. Each engine's alloc accounting is per instance
// (EngineStats lives on the Simulator), so the measured engine's
// internal_allocs delta must stay zero even while its neighbors warm up
// and allocate; a nonzero count here means some engine state regressed to
// process-global.
ScenarioResult RunSteadyConcurrent(SimEngine engine, uint64_t events) {
  constexpr int kNoise = 3;
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  noise.reserve(kNoise);
  for (int i = 0; i < kNoise; ++i) {
    noise.emplace_back([engine, events, &stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        RunSteady(engine, events / 4, 1024, 10'000);
      }
    });
  }
  ScenarioResult r = RunSteady(engine, events, 1024, 10'000);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : noise) {
    t.join();
  }
  return r;
}

// Schedule batches of timers and cancel half before they fire: the
// tail-latency-timer pattern (armed per request, cancelled on completion).
ScenarioResult RunScheduleCancel(SimEngine engine, uint64_t events) {
  constexpr uint64_t kBatch = 256;
  Simulator sim(engine);
  std::vector<EventHandle> handles;
  handles.reserve(kBatch);
  uint64_t scheduled = 0;
  volatile uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  while (scheduled < events) {
    handles.clear();
    for (uint64_t i = 0; i < kBatch; ++i) {
      handles.push_back(
          sim.ScheduleAfter(1'000 + i * 10, [&fired]() { fired = fired + 1; }));
    }
    scheduled += kBatch;
    for (uint64_t i = 0; i < kBatch; i += 2) {
      handles[i].Cancel();
    }
    sim.RunToCompletion();
  }
  ScenarioResult r;
  r.events = scheduled;
  r.ns_per_event = ElapsedNs(start) / static_cast<double>(scheduled);
  r.internal_allocs = sim.engine_stats().internal_allocs();
  return r;
}

// Timers across every wheel level plus the >4.3s overflow heap: delays are
// powers of two from 1us up past the wheel span.
ScenarioResult RunFarTimers(SimEngine engine, uint64_t events) {
  constexpr int kMinShift = 10;  // 1 us
  constexpr int kMaxShift = 33;  // ~8.6 s: past the 2^32 ns wheel span
  constexpr uint64_t kBatch = 240;
  Simulator sim(engine);
  uint64_t scheduled = 0;
  volatile uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  while (scheduled < events) {
    int shift = kMinShift;
    for (uint64_t i = 0; i < kBatch; ++i) {
      sim.ScheduleAfter(uint64_t{1} << shift, [&fired]() { fired = fired + 1; });
      if (++shift > kMaxShift) {
        shift = kMinShift;
      }
    }
    scheduled += kBatch;
    sim.RunToCompletion();
  }
  ScenarioResult r;
  r.events = scheduled;
  r.ns_per_event = ElapsedNs(start) / static_cast<double>(scheduled);
  r.internal_allocs = sim.engine_stats().internal_allocs();
  return r;
}

struct Scenario {
  const char* name;
  ScenarioResult (*run)(SimEngine, uint64_t);
  uint64_t events;  // full-mode event count; --quick divides by 10
};

// Pulls `"<name>": <number>` out of the baseline JSON. Ad-hoc on purpose:
// the baseline file is small, checked in, and written by this binary's own
// formatter, so a full JSON parser would be dead weight.
bool BaselineFor(const std::string& text, const char* name, double* out) {
  const std::string needle = std::string("\"") + name + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  const Scenario scenarios[] = {
      {"self_tick", RunSelfTick, 2'000'000},
      {"steady_state", RunSteadyState, 2'000'000},
      {"steady_deep", RunSteadyDeep, 2'000'000},
      {"schedule_cancel", RunScheduleCancel, 1'000'000},
      {"far_timers", RunFarTimers, 480'000},
      {"steady_concurrent", RunSteadyConcurrent, 1'000'000},
  };

  struct Row {
    double wheel_ns;
    double reference_ns;
    uint64_t wheel_allocs;
  };
  std::map<std::string, Row> results;

  std::printf("# sim_events: event engine throughput (%s mode)\n",
              quick ? "quick" : "full");
  std::printf("%-16s %12s %12s %9s %13s\n", "scenario", "wheel", "reference",
              "speedup", "wheel_allocs");
  for (const Scenario& s : scenarios) {
    const uint64_t events = quick ? s.events / 10 : s.events;
    const ScenarioResult wheel = s.run(SimEngine::kTimingWheel, events);
    const ScenarioResult ref = s.run(SimEngine::kReference, events);
    results[s.name] = {wheel.ns_per_event, ref.ns_per_event,
                       wheel.internal_allocs};
    std::printf("%-16s %9.1f ns %9.1f ns %8.2fx %13llu\n", s.name,
                wheel.ns_per_event, ref.ns_per_event,
                ref.ns_per_event / wheel.ns_per_event,
                static_cast<unsigned long long>(wheel.internal_allocs));
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"sim_events\",\n"
               "  \"unit\": \"ns_per_event\",\n"
               "  \"mode\": \"%s\",\n  \"scenarios\": {\n",
               quick ? "quick" : "full");
  size_t index = 0;
  for (const auto& [name, row] : results) {
    std::fprintf(out,
                 "    \"%s\": {\"wheel\": %.2f, \"reference\": %.2f, "
                 "\"speedup\": %.3f, \"wheel_internal_allocs\": %llu}%s\n",
                 name.c_str(), row.wheel_ns, row.reference_ns,
                 row.reference_ns / row.wheel_ns,
                 static_cast<unsigned long long>(row.wheel_allocs),
                 ++index == results.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  if (baseline_path == nullptr) {
    return 0;
  }
  std::FILE* in = std::fopen(baseline_path, "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  std::fclose(in);

  constexpr double kTolerance = 1.25;  // fail on >25% regression
  int failures = 0;
  for (const auto& [name, row] : results) {
    double baseline_ns;
    if (!BaselineFor(text, name.c_str(), &baseline_ns)) {
      std::fprintf(stderr, "baseline missing scenario %s\n", name.c_str());
      ++failures;
      continue;
    }
    if (row.wheel_ns > baseline_ns * kTolerance) {
      std::fprintf(stderr,
                   "REGRESSION %s: wheel %.1f ns/event vs baseline %.1f "
                   "(limit %.1f)\n",
                   name.c_str(), row.wheel_ns, baseline_ns,
                   baseline_ns * kTolerance);
      ++failures;
    } else {
      std::printf("# baseline ok %s: %.1f ns/event <= %.1f\n", name.c_str(),
                  row.wheel_ns, baseline_ns * kTolerance);
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_sim_events.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
