// Regenerates paper Figure 2: RocksDB benchmark with 100% GET requests.
//
//   (a) 99% latency vs load     (b) % dropped requests vs load
//
// 6 server threads / sockets / cores, 50 client flows, open-loop UDP load.
// "Vanilla Linux" is the kernel-default 5-tuple-hash socket selection;
// "Round Robin" is the Fig. 5a Syrup policy deployed at the Socket Select
// hook. The paper runs 20 seeds and reports mean +/- stddev; we run a
// handful of seeds per point for the same reason (the vanilla imbalance is
// a property of how the flow set hashes).
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

struct Stats {
  double mean = 0;
  double stddev = 0;
};

Stats MeanStd(const std::vector<double>& values) {
  Stats stats;
  for (double v : values) {
    stats.mean += v;
  }
  stats.mean /= static_cast<double>(values.size());
  for (double v : values) {
    stats.stddev += (v - stats.mean) * (v - stats.mean);
  }
  stats.stddev = std::sqrt(stats.stddev / static_cast<double>(values.size()));
  return stats;
}

void Run() {
  constexpr int kSeeds = 5;
  std::printf("# Figure 2: RocksDB, 100%% GET, 6 threads, 50 flows\n");
  std::printf("# p99 latency (us, mean +/- stddev over %d seeds) and "
              "dropped-request fraction (%%)\n", kSeeds);
  std::printf("%10s | %12s %12s %8s | %12s %12s %8s\n", "load_rps",
              "vanilla_p99", "+/-", "drop%", "rr_p99", "+/-", "drop%");

  for (double load = 50'000; load <= 500'000; load += 50'000) {
    Stats p99[2], drops[2];
    for (int variant = 0; variant < 2; ++variant) {
      std::vector<double> p99_samples, drop_samples;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        RocksDbExperimentConfig config;
        config.socket_policy = variant == 0 ? SocketPolicyKind::kVanilla
                                            : SocketPolicyKind::kRoundRobin;
        config.load_rps = load;
        config.seed = static_cast<uint64_t>(seed);
        config.measure = 800 * kMillisecond;
        const RocksDbResult result = RunRocksDbExperiment(config);
        p99_samples.push_back(result.p99_us);
        drop_samples.push_back(result.drop_fraction * 100.0);
      }
      p99[variant] = MeanStd(p99_samples);
      drops[variant] = MeanStd(drop_samples);
    }
    std::printf("%10.0f | %12.1f %12.1f %8.2f | %12.1f %12.1f %8.2f\n", load,
                p99[0].mean, p99[0].stddev, drops[0].mean, p99[1].mean,
                p99[1].stddev, drops[1].mean);
  }
  std::printf("# Expected shape (paper): vanilla p99 is high/noisy with "
              "drops beyond ~250-350k;\n");
  std::printf("# round robin holds low tails ~80%% further.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
