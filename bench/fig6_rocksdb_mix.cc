// Regenerates paper Figure 6: RocksDB serving 99.5% GET / 0.5% SCAN on 6
// cores under four socket-selection policies: Vanilla Linux (5-tuple hash),
// Round Robin (Fig. 5a), SCAN Avoid (Fig. 5b/5c), and SITA (Fig. 5d).
// Reports client-observed 99% latency vs offered load.
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

double P99At(SocketPolicyKind policy, double load) {
  RocksDbExperimentConfig config;
  config.socket_policy = policy;
  config.get_fraction = 0.995;
  config.load_rps = load;
  config.measure = 800 * kMillisecond;
  config.seed = 3;
  return RunRocksDbExperiment(config).p99_us;
}

void Run() {
  std::printf("# Figure 6: RocksDB 99.5%% GET / 0.5%% SCAN, 6 threads\n");
  std::printf("# 99%% latency (us) vs load\n");
  std::printf("%10s %12s %12s %12s %12s\n", "load_rps", "vanilla",
              "round_robin", "scan_avoid", "sita");
  for (double load = 25'000; load <= 400'000; load += 25'000) {
    std::printf("%10.0f %12.1f %12.1f %12.1f %12.1f\n", load,
                P99At(SocketPolicyKind::kVanilla, load),
                P99At(SocketPolicyKind::kRoundRobin, load),
                P99At(SocketPolicyKind::kScanAvoid, load),
                P99At(SocketPolicyKind::kSita, load));
  }
  std::printf(
      "# Expected shape (paper): vanilla/RR SCAN-dominated (>500us) at all "
      "loads; SCAN Avoid\n"
      "# <150us to ~150k then degrades; SITA <150us to ~310k (8x and >16x "
      "better than vanilla).\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
