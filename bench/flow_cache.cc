// Flow-decision cache: cached vs uncached dispatch cost, machine-readable.
//
// Sweeps flow counts (cache-friendly through cache-thrashing) across the
// packet hooks, driving the stack's installed hook functions directly —
// the same dispatch path the simulator exercises, minus simulated time —
// with a verifier-cacheable bytecode policy deployed through syrupd. Each
// scenario measures ns/packet with the cache enabled (steady state, table
// warmed) and disabled (every packet executes the policy), plus the
// batched entry point (Syrupd::DispatchBatch in bursts of 32 — the shape
// RxBurst produces), and reads the hit rate from the
// flow_cache.{hits,misses} counters. Writes `BENCH_flow_cache.json` so
// the perf trajectory is tracked across PRs.
//
// Gates (exit 1 on violation) so CI catches the cache silently degrading
// into a slower path:
//   - >= 3x improvement at >= 90% hit rate for a map-consulting builtin
//     (least_loaded_f256; the bar from the PR that introduced the cache).
//   - cached dispatch never slower than uncached at ANY flow count —
//     including the oversubscribed 8192- and 100k-flow scenarios, which
//     adaptive sizing must absorb rather than thrash on.
//
// Flags:
//   --quick            ~10x fewer packets per scenario (CI smoke mode)
//   --baseline <file>  compare cached ns/packet against the checked-in
//                      baseline; exit 1 on a >25% regression
//   --out <file>       JSON output path (default BENCH_flow_cache.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

constexpr uint16_t kPort = 9000;

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<Packet> MakeFlows(uint32_t num_flows) {
  std::vector<Packet> flows;
  flows.reserve(num_flows);
  for (uint32_t flow = 0; flow < num_flows; ++flow) {
    Packet pkt;
    pkt.tuple.src_ip = 0x0a000001;
    pkt.tuple.dst_ip = 0x0a0000ff;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + (flow & 0x3FF));
    pkt.tuple.dst_port = kPort;
    // MicaHome keys on key_hash: one distinct cache key per flow.
    pkt.SetHeader(ReqType::kGet, 1, flow * 2654435761u, flow, 0);
    flows.push_back(pkt);
  }
  return flows;
}

struct ScenarioResult {
  double cached_ns = 0;
  double uncached_ns = 0;
  double batch_ns = 0;  // DispatchBatch bursts of 32, cache enabled
  double hit_rate = 0;  // of the cached measured window
  uint64_t packets = 0;
};

// One syrupd per run so cache tables, counters, and maps start cold.
struct Harness {
  Harness() : stack(sim, StackConfig{}), syrupd(sim, &stack) {
    app = syrupd.RegisterApp("bench", 1000, kPort).value();
  }

  uint64_t CacheCounter(Hook hook, const char* name) {
    return syrupd.StatsSnapshot().CounterValue(
        "syrupd", HookName(hook), std::string("flow_cache.") + name);
  }

  Simulator sim;
  HostStack stack;
  Syrupd syrupd;
  AppId app = 0;
};

SteerHook& HookFn(HostStack& stack, Hook hook) {
  switch (hook) {
    case Hook::kXdpDrv:
      return stack.hooks().xdp_drv;
    case Hook::kCpuRedirect:
      return stack.hooks().cpu_redirect;
    default:
      return stack.hooks().socket_select;
  }
}

// Measures ns/packet for `iters` round-robin passes over the flow set.
double MeasureNs(SteerHook& fn, const std::vector<PacketView>& views,
                 uint64_t iters) {
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    sink += fn(views[i % views.size()]);
  }
  const double elapsed = ElapsedNs(start);
  // Keep the decisions observable so the loop cannot be elided.
  if (sink == 0xFFFFFFFFFFFFFFFFull) {
    std::printf("# sink %llu\n", static_cast<unsigned long long>(sink));
  }
  return elapsed / static_cast<double>(iters);
}

// Measures ns/packet for the batched entry point: bursts of up to 32
// packets through Syrupd::DispatchBatch — key computation and slot
// prefetch hoisted across the burst, the shape HostStack::RxBurst feeds.
double MeasureBatchNs(Syrupd& syrupd, Hook hook,
                      const std::vector<PacketView>& views, uint64_t iters) {
  constexpr size_t kBurst = 32;
  Decision out[kBurst];
  uint64_t sink = 0;
  uint64_t done = 0;
  size_t pos = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < iters) {
    const size_t n = std::min({kBurst, views.size() - pos,
                               static_cast<size_t>(iters - done)});
    syrupd.DispatchBatch(hook, std::span<const PacketView>(&views[pos], n),
                         std::span<Decision>(out, n));
    sink += out[n - 1];
    done += n;
    pos += n;
    if (pos == views.size()) {
      pos = 0;
    }
  }
  const double elapsed = ElapsedNs(start);
  if (sink == 0xFFFFFFFFFFFFFFFFull) {
    std::printf("# sink %llu\n", static_cast<unsigned long long>(sink));
  }
  return elapsed / static_cast<double>(iters);
}

// Which verified policy a scenario deploys. All three are cacheable; they
// differ in what the cache can save:
//   kMicaHome        pure packet arithmetic (~tens of ns) — cheap enough
//                    that re-execution beats a DRAM-resident table, so it
//                    covers the small/medium flow counts only.
//   kLeastLoaded     map-consulting but reads no packet bytes: its cache
//                    key collapses to (port, len), one entry total. The
//                    headline 3x gate.
//   kHashedTwoChoice flow-hash home + deterministic two-choice over the
//                    load map: packet-keyed (per-flow entries) AND
//                    map-consulting (real recompute cost). The
//                    representative shape for memoization at scale, so the
//                    oversubscribed scenarios (f8192, f100k) gate on it.
enum class BenchPolicy { kMicaHome, kLeastLoaded, kHashedTwoChoice };

// Deterministic d=2 choices keyed by the packet's flow hash: look up the
// flow's home executor and its neighbor in the load map, steer to the less
// loaded. No randomness (get_prandom_u32 would make it uncacheable) — the
// flow hash supplies the spread, the map supplies the load signal.
std::string HashedTwoChoicePolicyAsm() {
  return R"(
.name hashed_two_choice
.ctx packet
.extern_map load /syrup/bench/load
  mov r3, r1
  add r3, 24
  jgt r3, r2, pass
  ldxw r6, [r1+20]
  mod r6, 6            ; home = flow_hash % 6
  mov r7, r6
  add r7, 1
  mod r7, 6            ; neighbor
  stxw [r10-4], r6
  ldmapfd r1, load
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r8, [r0+0]     ; load[home]
  stxw [r10-4], r7
  ldmapfd r1, load
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, pass
  ldxdw r9, [r0+0]     ; load[neighbor]
  jlt r9, r8, pick_b
  mov r0, r6
  exit
pick_b:
  mov r0, r7
  exit
pass:
  mov r0, PASS
  exit
)";
}

// Pre-pins the extern load map the map-consulting policies resolve at
// deploy, seeded so the decision is stable. Returns the handle to keep it
// alive.
MapHandle PinLoadMap(Harness& h) {
  SyrupClient client(h.syrupd, h.app);
  MapSpec spec;
  spec.max_entries = 6;
  spec.name = "load";
  MapHandle load = client.MapCreate(spec, "/syrup/bench/load").value();
  for (uint32_t i = 0; i < 6; ++i) {
    if (!load.Update(i, 10 + i).ok()) {
      std::exit(1);
    }
  }
  return load;
}

ScenarioResult RunScenario(Hook hook, const std::string& policy_asm,
                           bool needs_load_map, uint32_t num_flows,
                           bool skewed, uint64_t iters) {
  const std::vector<Packet> flows = MakeFlows(num_flows);
  std::vector<PacketView> views;
  views.reserve(flows.size());
  for (const Packet& pkt : flows) {
    views.push_back(PacketView::Of(pkt));
  }

  // Access order. Uniform scenarios round-robin the flow set. `skewed`
  // scenarios model scale traffic: 90% of packets from a 4096-flow hot
  // set, 10% a one-shot cold tail that sweeps the rest of the universe
  // (each tail flow recurs only once per ~full sweep — far beyond any
  // realistic residency horizon). That is the regime a sketch-guarded
  // adaptive cache targets at 100k flows: uniformly cycling a 100k-flow
  // universe recurs each flow once per 100k packets, a pattern with no
  // temporal locality for ANY cache (the uncached policy wins that one by
  // construction, so it would gate nothing but memory bandwidth).
  std::vector<PacketView> access;
  if (skewed) {
    Rng rng(0x5eedull);
    const uint32_t hot = std::min<uint32_t>(4096, num_flows);
    uint32_t cold_cursor = 0;
    access.reserve(size_t{1} << 17);
    for (size_t i = 0; i < (size_t{1} << 17); ++i) {
      uint32_t flow;
      if (num_flows <= hot || rng.NextBounded(10) != 0) {
        flow = static_cast<uint32_t>(rng.NextBounded(hot));
      } else {
        flow = hot + cold_cursor;
        cold_cursor = (cold_cursor + 1) % (num_flows - hot);
      }
      access.push_back(views[flow]);
    }
  } else {
    access = views;
  }

  // Noise control on a shared machine: the gates are *ratios*, so the
  // cached, uncached, and batched variants are measured in interleaved
  // rounds (an interference burst then inflates all three alike instead of
  // corrupting one side of the ratio), and each variant keeps the minimum
  // over kReps rounds — the standard estimator for "the code's cost
  // without interference".
  constexpr int kReps = 3;

  ScenarioResult r;
  r.packets = iters;
  Harness cached_h;
  Harness uncached_h;
  uncached_h.syrupd.set_flow_cache_enabled(false);
  MapHandle cached_load;
  MapHandle uncached_load;
  if (needs_load_map) {
    cached_load = PinLoadMap(cached_h);
    uncached_load = PinLoadMap(uncached_h);
  }
  if (!cached_h.syrupd.DeployPolicyFile(cached_h.app, policy_asm, hook).ok() ||
      !uncached_h.syrupd.DeployPolicyFile(uncached_h.app, policy_asm, hook)
           .ok()) {
    std::fprintf(stderr, "deploy failed for %s\n",
                 std::string(HookName(hook)).c_str());
    std::exit(1);
  }
  SteerHook& cached_fn = HookFn(cached_h.stack, hook);
  SteerHook& uncached_fn = HookFn(uncached_h.stack, hook);
  // Warm the table. One pass populates every flow that fits a static
  // table; large flow sets need a few passes so adaptive sizing observes
  // the live-flow estimate and grows to steady state before measuring.
  // The uncached harness gets the identical warmup for fairness.
  const int warm_passes = num_flows >= 8192 ? 4 : 1;
  for (int pass = 0; pass < warm_passes; ++pass) {
    for (const PacketView& view : access) {
      (void)cached_fn(view);
      (void)uncached_fn(view);
    }
  }
  const uint64_t hits0 = cached_h.CacheCounter(hook, "hits");
  const uint64_t misses0 = cached_h.CacheCounter(hook, "misses");
  for (int rep = 0; rep < kReps; ++rep) {
    const double cached_ns = MeasureNs(cached_fn, access, iters);
    const double uncached_ns = MeasureNs(uncached_fn, access, iters);
    const double batch_ns = MeasureBatchNs(cached_h.syrupd, hook, access,
                                           iters);
    r.cached_ns = rep == 0 ? cached_ns : std::min(r.cached_ns, cached_ns);
    r.uncached_ns =
        rep == 0 ? uncached_ns : std::min(r.uncached_ns, uncached_ns);
    r.batch_ns = rep == 0 ? batch_ns : std::min(r.batch_ns, batch_ns);
  }
  const uint64_t hits = cached_h.CacheCounter(hook, "hits") - hits0;
  const uint64_t misses = cached_h.CacheCounter(hook, "misses") - misses0;
  r.hit_rate = static_cast<double>(hits) /
               static_cast<double>(hits + misses > 0 ? hits + misses : 1);
  return r;
}

// --- Sharded per-lane tables at the 1M-flow scale ---------------------------
//
// The sharded simulation engine gives each shard its own Syrupd dispatch
// lane (Syrupd::ConfigureSharding): a private cache table and counter
// cells per lane. This scenario drives a 1,000,000-flow universe
// partitioned across 4 lanes — each lane dispatches only its quarter-
// million-flow partition, under the same skewed 90/10 access the f100k
// scenario uses — through the shard-qualified DispatchBatch, and reports
// aggregate ns/packet plus the hit rate folded across lanes by
// StatsSnapshot. Deliberately ungated: the acceptance bar is that the
// 1M-flow scale *completes* with per-lane adaptive tables (no thrash, no
// blowup), not a machine-dependent ratio.
struct ShardedScaleResult {
  double ns_per_packet = 0;
  double hit_rate = 0;
  uint64_t packets = 0;
};

ShardedScaleResult RunShardedMillionFlows(uint64_t iters) {
  constexpr int kShards = 4;
  constexpr uint32_t kFlows = 1'000'000;
  constexpr uint32_t kPerShard = kFlows / kShards;
  constexpr Hook kHook = Hook::kSocketSelect;
  const std::vector<Packet> flows = MakeFlows(kFlows);

  Harness h;
  MapHandle load = PinLoadMap(h);
  if (!h.syrupd.DeployPolicyFile(h.app, HashedTwoChoicePolicyAsm(), kHook)
           .ok()) {
    std::fprintf(stderr, "deploy failed for sharded_f1m\n");
    std::exit(1);
  }
  h.syrupd.ConfigureSharding(kShards);

  // Per-lane access sequence: 90% over the partition's 4096-flow hot set,
  // 10% a one-shot cold tail sweeping the rest of the quarter-million.
  std::vector<std::vector<PacketView>> access(kShards);
  for (int s = 0; s < kShards; ++s) {
    Rng rng(0x5eedull + static_cast<uint64_t>(s));
    const uint32_t base = static_cast<uint32_t>(s) * kPerShard;
    constexpr uint32_t kHot = 4096;
    uint32_t cold_cursor = 0;
    access[s].reserve(size_t{1} << 17);
    for (size_t i = 0; i < (size_t{1} << 17); ++i) {
      uint32_t flow;
      if (rng.NextBounded(10) != 0) {
        flow = base + static_cast<uint32_t>(rng.NextBounded(kHot));
      } else {
        flow = base + kHot + cold_cursor;
        cold_cursor = (cold_cursor + 1) % (kPerShard - kHot);
      }
      access[s].push_back(PacketView::Of(flows[flow]));
    }
  }

  // Warm every lane so adaptive sizing observes its partition's live-flow
  // estimate before the measured window.
  constexpr size_t kBurst = 32;
  Decision out[kBurst];
  for (int s = 0; s < kShards; ++s) {
    for (size_t pos = 0; pos < access[s].size(); pos += kBurst) {
      const size_t n = std::min(kBurst, access[s].size() - pos);
      h.syrupd.DispatchBatch(kHook,
                             std::span<const PacketView>(&access[s][pos], n),
                             std::span<Decision>(out, n), s);
    }
  }

  const uint64_t hits0 = h.CacheCounter(kHook, "hits");
  const uint64_t misses0 = h.CacheCounter(kHook, "misses");
  uint64_t sink = 0;
  uint64_t done = 0;
  size_t pos[kShards] = {};
  const auto start = std::chrono::steady_clock::now();
  // Interleave lanes burst by burst so no lane's table goes cold.
  while (done < iters) {
    for (int s = 0; s < kShards && done < iters; ++s) {
      const size_t n = std::min({kBurst, access[s].size() - pos[s],
                                 static_cast<size_t>(iters - done)});
      h.syrupd.DispatchBatch(
          kHook, std::span<const PacketView>(&access[s][pos[s]], n),
          std::span<Decision>(out, n), s);
      sink += out[n - 1];
      done += n;
      pos[s] += n;
      if (pos[s] == access[s].size()) {
        pos[s] = 0;
      }
    }
  }
  const double elapsed = ElapsedNs(start);
  if (sink == 0xFFFFFFFFFFFFFFFFull) {
    std::printf("# sink %llu\n", static_cast<unsigned long long>(sink));
  }
  const uint64_t hits = h.CacheCounter(kHook, "hits") - hits0;
  const uint64_t misses = h.CacheCounter(kHook, "misses") - misses0;
  ShardedScaleResult r;
  r.packets = done;
  r.ns_per_packet = elapsed / static_cast<double>(done);
  r.hit_rate = static_cast<double>(hits) /
               static_cast<double>(hits + misses > 0 ? hits + misses : 1);
  return r;
}

struct Scenario {
  const char* name;
  Hook hook;
  BenchPolicy policy;
  uint32_t num_flows;
  // Skewed access (90% over a 4096-flow hot set, 10% one-shot cold tail)
  // instead of uniform round-robin — used for the 100k-flow universe,
  // where uniform cycling has no temporal locality for any cache by
  // construction.
  bool skewed = false;
};

bool BaselineFor(const std::string& text, const char* name, double* out) {
  const std::string needle = std::string("\"") + name + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  // Flow counts pick the cache's regimes: 16 and 256 sit comfortably in
  // the default 4096-slot table (~100% steady-state hit rate) and 1536
  // loads it, all on the pure-arithmetic MicaHome policy. The scale
  // scenarios (8192 and a 100k-flow universe under skewed 90/10 access)
  // run the hashed_two_choice policy instead: per-flow keys AND a real
  // recompute cost (two map lookups), the workload memoization exists
  // for — a policy cheaper than a DRAM line can't lose by being
  // re-executed, so gating MicaHome at 100k flows would only measure
  // memory bandwidth. Adaptive sizing must grow the table to the live-flow
  // estimate during warmup and the admission sketch must keep the hot set
  // resident against the cold tail.
  const Scenario scenarios[] = {
      {"socket_select_f16", Hook::kSocketSelect, BenchPolicy::kMicaHome, 16},
      {"socket_select_f256", Hook::kSocketSelect, BenchPolicy::kMicaHome, 256},
      {"socket_select_f1536", Hook::kSocketSelect, BenchPolicy::kMicaHome,
       1536},
      {"socket_select_f8192", Hook::kSocketSelect,
       BenchPolicy::kHashedTwoChoice, 8192},
      {"socket_select_f100k", Hook::kSocketSelect,
       BenchPolicy::kHashedTwoChoice, 100'000, true},
      {"xdp_drv_f256", Hook::kXdpDrv, BenchPolicy::kMicaHome, 256},
      {"cpu_redirect_f256", Hook::kCpuRedirect, BenchPolicy::kMicaHome, 256},
      {"least_loaded_f256", Hook::kSocketSelect, BenchPolicy::kLeastLoaded,
       256},
  };
  const uint64_t iters = quick ? 400'000 : 4'000'000;

  std::map<std::string, ScenarioResult> results;
  std::printf("# flow_cache: cached vs uncached dispatch (%s mode)\n",
              quick ? "quick" : "full");
  std::printf("%-22s %11s %11s %11s %9s %9s\n", "scenario", "cached",
              "uncached", "batch", "speedup", "hit_rate");
  for (const Scenario& s : scenarios) {
    const std::string policy_asm =
        s.policy == BenchPolicy::kLeastLoaded
            ? LeastLoadedPolicyAsm(6, "/syrup/bench/load")
            : (s.policy == BenchPolicy::kHashedTwoChoice
                   ? HashedTwoChoicePolicyAsm()
                   : MicaHomePolicyAsm(6));
    const ScenarioResult r =
        RunScenario(s.hook, policy_asm, s.policy != BenchPolicy::kMicaHome,
                    s.num_flows, s.skewed, iters);
    results[s.name] = r;
    std::printf("%-22s %8.1f ns %8.1f ns %8.1f ns %8.2fx %8.1f%%\n", s.name,
                r.cached_ns, r.uncached_ns, r.batch_ns,
                r.uncached_ns / r.cached_ns, r.hit_rate * 100.0);
  }

  const ShardedScaleResult sharded = RunShardedMillionFlows(iters);
  std::printf("%-22s %8.1f ns %11s %11s %9s %8.1f%%  (1M flows, 4 lanes)\n",
              "sharded_f1m", sharded.ns_per_packet, "-", "-", "-",
              sharded.hit_rate * 100.0);

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"flow_cache\",\n"
               "  \"unit\": \"ns_per_packet\",\n"
               "  \"mode\": \"%s\",\n  \"scenarios\": {\n",
               quick ? "quick" : "full");
  size_t index = 0;
  for (const auto& [name, r] : results) {
    std::fprintf(out,
                 "    \"%s\": {\"cached\": %.2f, \"uncached\": %.2f, "
                 "\"batch\": %.2f, \"speedup\": %.3f, "
                 "\"batch_speedup\": %.3f, \"hit_rate\": %.4f}%s\n",
                 name.c_str(), r.cached_ns, r.uncached_ns, r.batch_ns,
                 r.uncached_ns / r.cached_ns,
                 r.uncached_ns / r.batch_ns, r.hit_rate,
                 ++index == results.size() ? "" : ",");
  }
  std::fprintf(out,
               "  },\n  \"sharded_f1m\": {\"ns_per_packet\": %.2f, "
               "\"hit_rate\": %.4f, \"packets\": %llu, \"shards\": 4, "
               "\"flows\": 1000000}\n}\n",
               sharded.ns_per_packet, sharded.hit_rate,
               static_cast<unsigned long long>(sharded.packets));
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  int failures = 0;

  // Acceptance bar: at >= 90% hit rate a cacheable builtin must dispatch
  // >= 3x faster than uncached execution. least_loaded is the gate: map-
  // consulting policies are what memoization is for (MicaHome's straight-
  // line arithmetic is nearly as cheap as the cache probe itself; its
  // speedup is reported above but not gated).
  const ScenarioResult& gate = results["least_loaded_f256"];
  if (gate.hit_rate < 0.90) {
    std::fprintf(stderr, "GATE: hit rate %.1f%% < 90%% at 256 flows\n",
                 gate.hit_rate * 100.0);
    ++failures;
  } else if (gate.uncached_ns < gate.cached_ns * 3.0) {
    std::fprintf(stderr,
                 "GATE: cached %.1f ns vs uncached %.1f ns — speedup "
                 "%.2fx < 3x at %.1f%% hit rate\n",
                 gate.cached_ns, gate.uncached_ns,
                 gate.uncached_ns / gate.cached_ns, gate.hit_rate * 100.0);
    ++failures;
  } else {
    std::printf("# gate ok: %.2fx speedup at %.1f%% hit rate\n",
                gate.uncached_ns / gate.cached_ns, gate.hit_rate * 100.0);
  }

  // No-regression gate: with adaptive sizing the cache must never lose to
  // uncached dispatch at ANY flow count — the oversubscribed scenarios
  // (f8192, f100k) are exactly where the fixed-size table used to thrash.
  for (const auto& [name, r] : results) {
    const double speedup = r.uncached_ns / r.cached_ns;
    if (speedup < 1.0) {
      std::fprintf(stderr,
                   "GATE: %s regresses under the cache — cached %.1f ns vs "
                   "uncached %.1f ns (%.2fx, hit rate %.1f%%)\n",
                   name.c_str(), r.cached_ns, r.uncached_ns, speedup,
                   r.hit_rate * 100.0);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("# gate ok: cached >= uncached at every flow count\n");
  }

  if (baseline_path == nullptr) {
    return failures > 0 ? 1 : 0;
  }
  std::FILE* in = std::fopen(baseline_path, "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  std::fclose(in);

  constexpr double kTolerance = 1.25;  // fail on >25% regression
  for (const auto& [name, r] : results) {
    double baseline_ns;
    if (!BaselineFor(text, name.c_str(), &baseline_ns)) {
      std::fprintf(stderr, "baseline missing scenario %s\n", name.c_str());
      ++failures;
      continue;
    }
    if (r.cached_ns > baseline_ns * kTolerance) {
      std::fprintf(stderr,
                   "REGRESSION %s: cached %.1f ns/packet vs baseline %.1f "
                   "(limit %.1f)\n",
                   name.c_str(), r.cached_ns, baseline_ns,
                   baseline_ns * kTolerance);
      ++failures;
    } else {
      std::printf("# baseline ok %s: %.1f ns/packet <= %.1f\n", name.c_str(),
                  r.cached_ns, baseline_ns * kTolerance);
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_flow_cache.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
