// Flow-decision cache: cached vs uncached dispatch cost, machine-readable.
//
// Sweeps flow counts (cache-friendly through cache-thrashing) across the
// packet hooks, driving the stack's installed hook functions directly —
// the same dispatch path the simulator exercises, minus simulated time —
// with a verifier-cacheable bytecode policy deployed through syrupd. Each
// scenario measures ns/packet with the cache enabled (steady state, table
// warmed) and disabled (every packet executes the policy), and reads the
// hit rate from the flow_cache.{hits,misses} counters. Writes
// `BENCH_flow_cache.json` so the perf trajectory is tracked across PRs.
//
// The acceptance bar from the PR that introduced the cache: >= 3x
// improvement at >= 90% hit rate for a cacheable builtin policy. The
// binary enforces it (exit 1) so CI catches the cache silently degrading
// into a slower path.
//
// Flags:
//   --quick            ~10x fewer packets per scenario (CI smoke mode)
//   --baseline <file>  compare cached ns/packet against the checked-in
//                      baseline; exit 1 on a >25% regression
//   --out <file>       JSON output path (default BENCH_flow_cache.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/syrup_api.h"
#include "src/core/syrupd.h"
#include "src/net/stack.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

constexpr uint16_t kPort = 9000;

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<Packet> MakeFlows(uint32_t num_flows) {
  std::vector<Packet> flows;
  flows.reserve(num_flows);
  for (uint32_t flow = 0; flow < num_flows; ++flow) {
    Packet pkt;
    pkt.tuple.src_ip = 0x0a000001;
    pkt.tuple.dst_ip = 0x0a0000ff;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + (flow & 0x3FF));
    pkt.tuple.dst_port = kPort;
    // MicaHome keys on key_hash: one distinct cache key per flow.
    pkt.SetHeader(ReqType::kGet, 1, flow * 2654435761u, flow, 0);
    flows.push_back(pkt);
  }
  return flows;
}

struct ScenarioResult {
  double cached_ns = 0;
  double uncached_ns = 0;
  double hit_rate = 0;  // of the cached measured window
  uint64_t packets = 0;
};

// One syrupd per run so cache tables, counters, and maps start cold.
struct Harness {
  Harness() : stack(sim, StackConfig{}), syrupd(sim, &stack) {
    app = syrupd.RegisterApp("bench", 1000, kPort).value();
  }

  uint64_t CacheCounter(Hook hook, const char* name) {
    return syrupd.StatsSnapshot().CounterValue(
        "syrupd", HookName(hook), std::string("flow_cache.") + name);
  }

  Simulator sim;
  HostStack stack;
  Syrupd syrupd;
  AppId app = 0;
};

SteerHook& HookFn(HostStack& stack, Hook hook) {
  switch (hook) {
    case Hook::kXdpDrv:
      return stack.hooks().xdp_drv;
    case Hook::kCpuRedirect:
      return stack.hooks().cpu_redirect;
    default:
      return stack.hooks().socket_select;
  }
}

// Measures ns/packet for `iters` round-robin passes over the flow set.
double MeasureNs(SteerHook& fn, const std::vector<PacketView>& views,
                 uint64_t iters) {
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    sink += fn(views[i % views.size()]);
  }
  const double elapsed = ElapsedNs(start);
  // Keep the decisions observable so the loop cannot be elided.
  if (sink == 0xFFFFFFFFFFFFFFFFull) {
    std::printf("# sink %llu\n", static_cast<unsigned long long>(sink));
  }
  return elapsed / static_cast<double>(iters);
}

// Pre-pins the extern load map the least_loaded policy resolves at deploy,
// seeded so the decision is stable. Returns the handle to keep it alive.
MapHandle PinLoadMap(Harness& h) {
  SyrupClient client(h.syrupd, h.app);
  MapSpec spec;
  spec.max_entries = 6;
  spec.name = "load";
  MapHandle load = client.MapCreate(spec, "/syrup/bench/load").value();
  for (uint32_t i = 0; i < 6; ++i) {
    if (!load.Update(i, 10 + i).ok()) {
      std::exit(1);
    }
  }
  return load;
}

ScenarioResult RunScenario(Hook hook, const std::string& policy_asm,
                           bool least_loaded, uint32_t num_flows,
                           uint64_t iters) {
  const std::vector<Packet> flows = MakeFlows(num_flows);
  std::vector<PacketView> views;
  views.reserve(flows.size());
  for (const Packet& pkt : flows) {
    views.push_back(PacketView::Of(pkt));
  }

  ScenarioResult r;
  r.packets = iters;
  {
    Harness h;
    MapHandle load;
    if (least_loaded) {
      load = PinLoadMap(h);
    }
    if (!h.syrupd.DeployPolicyFile(h.app, policy_asm, hook).ok()) {
      std::fprintf(stderr, "deploy failed for %s\n",
                   std::string(HookName(hook)).c_str());
      std::exit(1);
    }
    SteerHook& fn = HookFn(h.stack, hook);
    // Warm the table: one full pass populates every flow that fits.
    for (const PacketView& view : views) {
      (void)fn(view);
    }
    const uint64_t hits0 = h.CacheCounter(hook, "hits");
    const uint64_t misses0 = h.CacheCounter(hook, "misses");
    r.cached_ns = MeasureNs(fn, views, iters);
    const uint64_t hits = h.CacheCounter(hook, "hits") - hits0;
    const uint64_t misses = h.CacheCounter(hook, "misses") - misses0;
    r.hit_rate = static_cast<double>(hits) /
                 static_cast<double>(hits + misses > 0 ? hits + misses : 1);
  }
  {
    Harness h;
    h.syrupd.set_flow_cache_enabled(false);
    MapHandle load;
    if (least_loaded) {
      load = PinLoadMap(h);
    }
    if (!h.syrupd.DeployPolicyFile(h.app, policy_asm, hook).ok()) {
      std::fprintf(stderr, "deploy failed (uncached)\n");
      std::exit(1);
    }
    SteerHook& fn = HookFn(h.stack, hook);
    for (const PacketView& view : views) {
      (void)fn(view);  // same warmup, fairness
    }
    r.uncached_ns = MeasureNs(fn, views, iters);
  }
  return r;
}

struct Scenario {
  const char* name;
  Hook hook;
  // true: least_loaded (cacheable via its extern-map read set);
  // false: MicaHome (cacheable pure packet-field policy).
  bool least_loaded;
  uint32_t num_flows;
};

bool BaselineFor(const std::string& text, const char* name, double* out) {
  const std::string needle = std::string("\"") + name + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  // Flow counts pick the cache's regimes: 16 and 256 sit comfortably in
  // the 4096-slot table (~100% steady-state hit rate), 1536 loads it to
  // ~40%, 8192 oversubscribes it 2x (probe-window evictions dominate —
  // the cache must degrade gracefully, not pathologically).
  const Scenario scenarios[] = {
      {"socket_select_f16", Hook::kSocketSelect, false, 16},
      {"socket_select_f256", Hook::kSocketSelect, false, 256},
      {"socket_select_f1536", Hook::kSocketSelect, false, 1536},
      {"socket_select_f8192", Hook::kSocketSelect, false, 8192},
      {"xdp_drv_f256", Hook::kXdpDrv, false, 256},
      {"cpu_redirect_f256", Hook::kCpuRedirect, false, 256},
      {"least_loaded_f256", Hook::kSocketSelect, true, 256},
  };
  const uint64_t iters = quick ? 400'000 : 4'000'000;

  std::map<std::string, ScenarioResult> results;
  std::printf("# flow_cache: cached vs uncached dispatch (%s mode)\n",
              quick ? "quick" : "full");
  std::printf("%-22s %11s %11s %9s %9s\n", "scenario", "cached",
              "uncached", "speedup", "hit_rate");
  for (const Scenario& s : scenarios) {
    const std::string policy_asm =
        s.least_loaded ? LeastLoadedPolicyAsm(6, "/syrup/bench/load")
                       : MicaHomePolicyAsm(6);
    const ScenarioResult r = RunScenario(s.hook, policy_asm, s.least_loaded,
                                         s.num_flows, iters);
    results[s.name] = r;
    std::printf("%-22s %8.1f ns %8.1f ns %8.2fx %8.1f%%\n", s.name,
                r.cached_ns, r.uncached_ns, r.uncached_ns / r.cached_ns,
                r.hit_rate * 100.0);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"flow_cache\",\n"
               "  \"unit\": \"ns_per_packet\",\n"
               "  \"mode\": \"%s\",\n  \"scenarios\": {\n",
               quick ? "quick" : "full");
  size_t index = 0;
  for (const auto& [name, r] : results) {
    std::fprintf(out,
                 "    \"%s\": {\"cached\": %.2f, \"uncached\": %.2f, "
                 "\"speedup\": %.3f, \"hit_rate\": %.4f}%s\n",
                 name.c_str(), r.cached_ns, r.uncached_ns,
                 r.uncached_ns / r.cached_ns, r.hit_rate,
                 ++index == results.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  int failures = 0;

  // Acceptance bar: at >= 90% hit rate a cacheable builtin must dispatch
  // >= 3x faster than uncached execution. least_loaded is the gate: map-
  // consulting policies are what memoization is for (MicaHome's straight-
  // line arithmetic is nearly as cheap as the cache probe itself; its
  // speedup is reported above but not gated).
  const ScenarioResult& gate = results["least_loaded_f256"];
  if (gate.hit_rate < 0.90) {
    std::fprintf(stderr, "GATE: hit rate %.1f%% < 90%% at 256 flows\n",
                 gate.hit_rate * 100.0);
    ++failures;
  } else if (gate.uncached_ns < gate.cached_ns * 3.0) {
    std::fprintf(stderr,
                 "GATE: cached %.1f ns vs uncached %.1f ns — speedup "
                 "%.2fx < 3x at %.1f%% hit rate\n",
                 gate.cached_ns, gate.uncached_ns,
                 gate.uncached_ns / gate.cached_ns, gate.hit_rate * 100.0);
    ++failures;
  } else {
    std::printf("# gate ok: %.2fx speedup at %.1f%% hit rate\n",
                gate.uncached_ns / gate.cached_ns, gate.hit_rate * 100.0);
  }

  if (baseline_path == nullptr) {
    return failures > 0 ? 1 : 0;
  }
  std::FILE* in = std::fopen(baseline_path, "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  std::fclose(in);

  constexpr double kTolerance = 1.25;  // fail on >25% regression
  for (const auto& [name, r] : results) {
    double baseline_ns;
    if (!BaselineFor(text, name.c_str(), &baseline_ns)) {
      std::fprintf(stderr, "baseline missing scenario %s\n", name.c_str());
      ++failures;
      continue;
    }
    if (r.cached_ns > baseline_ns * kTolerance) {
      std::fprintf(stderr,
                   "REGRESSION %s: cached %.1f ns/packet vs baseline %.1f "
                   "(limit %.1f)\n",
                   name.c_str(), r.cached_ns, baseline_ns,
                   baseline_ns * kTolerance);
      ++failures;
    } else {
      std::printf("# baseline ok %s: %.1f ns/packet <= %.1f\n", name.c_str(),
                  r.cached_ns, baseline_ns * kTolerance);
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_flow_cache.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
