// Ablation (DESIGN.md #2, paper §6.3): early vs late binding at the socket
// layer, on the Fig. 6 workload (99.5% GET / 0.5% SCAN).
//
// Early binding assigns a datagram to a socket on arrival — the Linux
// reality Syrup works within, which every Fig. 6 policy must compensate
// for. Late binding buffers datagrams centrally and matches one only when
// a worker is actually idle (single-queue, multi-server): head-of-line
// blocking largely disappears even with NO policy, at the cost of
// scheduler-side buffering the Linux UDP stack doesn't have.
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

double P99(SocketPolicyKind policy, bool late, double load) {
  RocksDbExperimentConfig config;
  config.socket_policy = policy;
  config.late_binding = late;
  config.get_fraction = 0.995;
  config.load_rps = load;
  config.measure = 600 * kMillisecond;
  config.seed = 9;
  return RunRocksDbExperiment(config).p99_us;
}

void Run() {
  std::printf("# Ablation: early vs late binding, RocksDB 99.5%% GET / "
              "0.5%% SCAN, 6 threads\n");
  std::printf("# p99 latency (us)\n");
  std::printf("%10s | %13s %13s %13s | %13s %13s\n", "load_rps",
              "early_vanilla", "early_scanavd", "early_sita", "late_vanilla",
              "late_sita");
  for (double load = 50'000; load <= 350'000; load += 50'000) {
    std::printf("%10.0f | %13.1f %13.1f %13.1f | %13.1f %13.1f\n", load,
                P99(SocketPolicyKind::kVanilla, false, load),
                P99(SocketPolicyKind::kScanAvoid, false, load),
                P99(SocketPolicyKind::kSita, false, load),
                P99(SocketPolicyKind::kVanilla, true, load),
                P99(SocketPolicyKind::kSita, true, load));
  }
  std::printf(
      "# Expectation: late binding with NO policy rivals the best early-"
      "binding policies\n"
      "# (single shared queue removes socket-level HoL blocking), "
      "supporting the paper's\n"
      "# argument that early binding is why SCAN Avoid / SITA are needed "
      "at this layer.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
