// Ablation: flow affinity vs load balance at the CPU Redirect hook — the
// paper's §2.1 motivation that "scheduling flexibility and customizability
// is a necessary feature of modern operating systems": RFS-style locality
// wins on uniform traffic, spraying wins on skewed traffic, and only a
// programmable hook lets each workload pick its winner.
//
// This is a stack-level experiment (sockets are sinks): the contended
// resource is softirq processing capacity. The affinity model charges a
// cold penalty when a flow's protocol state is not cache-warm on the
// processing core. Variants:
//   rss    — kernel default: flow-hash steering. Flows stay warm, but a
//            heavy flow pins its whole load to one softirq core.
//   spray  — a Syrup round-robin policy at the CPU Redirect hook:
//            perfectly balanced, but almost always cold + an IPI each.
#include <cstdio>
#include <memory>

#include "src/apps/loadgen.h"
#include "src/common/histogram.h"
#include "src/core/syrupd.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

struct Result {
  double p99_us;
  double drop_pct;
};

Result RunOnce(bool spray, double skew, double load) {
  Simulator sim;
  StackConfig stack_config;
  stack_config.num_nic_queues = 6;
  stack_config.protocol_cold_penalty = 900;
  stack_config.nic_ring_depth = 256;
  HostStack stack(sim, stack_config);
  Syrupd syrupd(sim, &stack);
  const AppId app = syrupd.RegisterApp("sink", 1000, 9000).value();
  if (spray) {
    (void)syrupd.DeployNativePolicy(app,
                                    std::make_shared<RoundRobinPolicy>(6),
                                    Hook::kCpuRedirect);
  }

  // Sink sockets: measure stack-level delivery latency.
  ReuseportGroup* group = stack.GetOrCreateGroup(9000);
  Histogram latency;
  for (int i = 0; i < 6; ++i) {
    Socket* sock = group->AddSocket(1u << 20);
    sock->SetWakeCallback([&latency, sock, &sim]() {
      auto pkt = sock->Dequeue();
      latency.Record(sim.Now() - pkt->send_time());
    });
  }

  LoadGenConfig gen_config;
  gen_config.rate_rps = load;
  gen_config.dst_port = 9000;
  gen_config.num_flows = 24;
  gen_config.flow_skew = skew;
  gen_config.wire_delay = 0;
  gen_config.seed = 21;
  LoadGenerator gen(sim, stack, gen_config);
  gen.Start(600 * kMillisecond);
  sim.RunUntil(650 * kMillisecond);

  const double drops =
      100.0 * static_cast<double>(stack.stats().TotalDrops()) /
      static_cast<double>(gen.sent());
  return Result{static_cast<double>(latency.Percentile(99)) / 1000.0, drops};
}

void RunCase(double skew, const char* title) {
  std::printf("# %s\n", title);
  std::printf("%10s | %10s %10s | %10s %10s\n", "load_rps", "rss_p99",
              "spray_p99", "rss_drop%", "spray_drop%");
  for (double load : {200e3, 400e3, 600e3, 800e3, 1000e3, 1200e3}) {
    const Result rss = RunOnce(false, skew, load);
    const Result spray = RunOnce(true, skew, load);
    std::printf("%10.0f | %10.1f %10.1f | %10.2f %10.2f\n", load, rss.p99_us,
                spray.p99_us, rss.drop_pct, spray.drop_pct);
  }
}

void Run() {
  std::printf("# Ablation: flow affinity (RSS default) vs spraying (Syrup "
              "RR at CPU Redirect)\n");
  std::printf("# stack-level delivery p99; 6 softirq cores; 24 flows\n");
  RunCase(0.0, "uniform flows");
  RunCase(2.0, "zipf-2.0 flows (one flow ~60% of traffic)");
  std::printf(
      "# Expectation: uniform -> RSS wins at every load (spray pays cold "
      "misses + IPIs);\n"
      "# skewed -> RSS's hot core saturates (~700k here: drops, ms tails) "
      "while spray\n"
      "# scales further. Neither policy wins both workloads (paper "
      "S2.1).\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
