// Regenerates paper Table 3: Map operation latency for different backends.
//
//   Backend            | Get (ns) | Update (ns)
//   Host               |          |
//   Host Contended     |          |
//   Offload            |          |
//   Offload Contended  |          |
//
// Host rows measure real userspace operations on a hash map with 1M
// elements (as in the paper); "contended" runs a second thread issuing
// operations on the same map concurrently. Offload rows go through the
// OffloadMapProxy, which charges the Netronome's measured ~24us PCIe round
// trip per operation — the value is modeled, the code path is real.
//
// The map is created through syrupd and every measured latency is recorded
// as a gauge in the daemon's MetricsRegistry; the printed table reads
// exclusively from Syrupd::StatsSnapshot(), alongside the per-map op
// counters the instrumented Map layer accumulated during the run.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/common/rng.h"
#include "src/core/syrup_api.h"
#include "src/map/offload_proxy.h"

namespace syrup {
namespace {

constexpr uint32_t kElements = 1'000'000;
constexpr std::chrono::nanoseconds kPcieRoundTrip{23'500};

enum class OpKind { kGet, kUpdate };

double MeasureNs(Map& map, OpKind op, int iters,
                 uint32_t elements = kElements) {
  Rng rng(9);
  volatile uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(elements));
    if (op == OpKind::kGet) {
      void* value = map.Lookup(&key);
      if (value != nullptr) {
        sink += Map::AtomicLoad(value);
      }
    } else {
      const uint64_t value = sink + i;
      (void)map.Update(&key, &value, UpdateFlag::kAny);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// Antagonist mix matters: the hash map's readers are lock-free (per-group
// seqlock + epoch reclamation), so a read-only antagonist shares nothing
// but cache lines with the measured thread, while a mixed one forces
// seqlock retries on the groups it rewrites half the time.
// kBump models the datapath: per-packet atomic counter increments through
// the value pointer, dirtying the counters' cache lines continuously.
enum class Antagonist { kNone, kReadOnly, kMixed, kBump };

double MeasureContendedNs(Map& map, OpKind op, int iters,
                          Antagonist antagonist_kind,
                          uint32_t elements = kElements) {
  std::atomic<bool> stop_flag{false};
  std::thread antagonist([&map, &stop_flag, antagonist_kind, elements]() {
    Rng rng(77);
    uint64_t value = 0;
    while (!stop_flag.load(std::memory_order_relaxed)) {
      const uint32_t key = static_cast<uint32_t>(rng.NextBounded(elements));
      if (antagonist_kind == Antagonist::kBump) {
        void* cell = map.Lookup(&key);
        if (cell != nullptr) {
          Map::AtomicFetchAdd(cell, 1);
        }
      } else if (antagonist_kind == Antagonist::kReadOnly ||
                 (key & 1) != 0) {
        (void)map.Lookup(&key);
      } else {
        (void)map.Update(&key, &value, UpdateFlag::kAny);
      }
      ++value;
    }
  });
  const double ns = MeasureNs(map, op, iters, elements);
  stop_flag.store(true);
  antagonist.join();
  return ns;
}

void Run() {
  std::printf("# Table 3: Map operation latency for different backends\n");
  std::printf("# host map: hash, %u elements; offload: +%lld ns modeled "
              "PCIe round trip\n",
              kElements, static_cast<long long>(kPcieRoundTrip.count()));

  // API-only daemon (no host stack): the bench is a syrupd application
  // like any other, so its numbers land in the daemon's registry.
  Simulator sim;
  Syrupd syrupd(sim, /*stack=*/nullptr);
  const AppId app = syrupd.RegisterApp("t3", /*uid=*/1000, 9300).value();
  SyrupClient client(syrupd, app);

  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = kElements;
  spec.name = "table3";
  MapHandle handle = client.MapCreate(spec, "/syrup/t3/table3").value();
  std::shared_ptr<Map> host = handle.map();
  for (uint32_t key = 0; key < kElements; ++key) {
    (void)host->UpdateU64(key, key);
  }

  OffloadMapProxy offload(host, kPcieRoundTrip);
  offload.BindCounters(
      MapOpCounters::InRegistry(syrupd.metrics(), "t3", "offload"));

  // Counter-map pair for the read-contended comparison: a flat shared
  // array vs the per-CPU variant (each thread reads/writes its own shard,
  // so the antagonist never touches the measured thread's cache lines).
  // Counter maps are small — one slot per executor/user — so on the flat
  // array the antagonist's traffic lands on the same few cache lines the
  // measured thread is using; that false sharing is exactly what the
  // per-CPU variant removes.
  constexpr uint32_t kCounterElements = 64;
  MapSpec array_spec;
  array_spec.type = MapType::kArray;
  array_spec.max_entries = kCounterElements;
  array_spec.name = "flat_counters";
  MapHandle array_handle =
      client.MapCreate(array_spec, "/syrup/t3/flat_counters").value();
  std::shared_ptr<Map> flat = array_handle.map();
  MapSpec percpu_spec = array_spec;
  percpu_spec.type = MapType::kPerCpuArray;
  percpu_spec.name = "percpu_counters";
  MapHandle percpu_handle =
      client.MapCreate(percpu_spec, "/syrup/t3/percpu_counters").value();
  std::shared_ptr<Map> percpu = percpu_handle.map();

  constexpr int kHostIters = 2'000'000;
  constexpr int kOffloadIters = 4'000;

  // Measure every cell, recording each as a gauge so the snapshot is the
  // single source for the printed table.
  struct Row {
    const char* label;
    const char* key;  // metric prefix under {"t3", "latency", ...}
    Map& map;
    int iters;
    Antagonist antagonist;
    uint32_t elements = kElements;
  };
  Row rows[] = {
      {"Host", "host", *host, kHostIters, Antagonist::kNone},
      // Read-contended: pure-reader antagonist. Lookups take no lock at
      // all — both threads probe the swiss table concurrently — so this
      // row should sit on top of the uncontended one.
      {"Host Rd-Contended", "host_read_contended", *host, kHostIters,
       Antagonist::kReadOnly},
      {"Host Contended", "host_contended", *host, kHostIters,
       Antagonist::kMixed},
      // The counter-map comparison: reads contended by a datapath thread
      // bumping the same counters. On the flat array every bump dirties
      // the line the measured thread is about to read; the per-CPU
      // variant's bumps land in the antagonist's own shard, so the
      // measured thread's lines stay clean.
      {"Array Rd-Contended", "array_read_contended", *flat, kHostIters,
       Antagonist::kBump, kCounterElements},
      {"PerCPU Rd-Contended", "percpu_read_contended", *percpu, kHostIters,
       Antagonist::kBump, kCounterElements},
      {"Offload", "offload", offload, kOffloadIters, Antagonist::kNone},
      {"Offload Contended", "offload_contended", offload, kOffloadIters,
       Antagonist::kMixed},
  };
  obs::MetricsRegistry& metrics = syrupd.metrics();
  for (Row& row : rows) {
    const double get_ns =
        row.antagonist != Antagonist::kNone
            ? MeasureContendedNs(row.map, OpKind::kGet, row.iters,
                                 row.antagonist, row.elements)
            : MeasureNs(row.map, OpKind::kGet, row.iters, row.elements);
    const double update_ns =
        row.antagonist != Antagonist::kNone
            ? MeasureContendedNs(row.map, OpKind::kUpdate, row.iters,
                                 row.antagonist, row.elements)
            : MeasureNs(row.map, OpKind::kUpdate, row.iters, row.elements);
    metrics.GetGauge("t3", "latency", std::string(row.key) + ".get_ns")
        ->Set(static_cast<int64_t>(get_ns));
    metrics.GetGauge("t3", "latency", std::string(row.key) + ".update_ns")
        ->Set(static_cast<int64_t>(update_ns));
  }

  const obs::Snapshot snap = syrupd.StatsSnapshot();
  std::printf("%-20s %12s %12s\n", "Backend", "Get (ns)", "Update (ns)");
  for (const Row& row : rows) {
    std::printf("%-20s %12lld %12lld\n", row.label,
                static_cast<long long>(snap.GaugeValue(
                    "t3", "latency", std::string(row.key) + ".get_ns")),
                static_cast<long long>(snap.GaugeValue(
                    "t3", "latency", std::string(row.key) + ".update_ns")));
  }
  std::printf(
      "# map ops accounted by the registry: host lookups=%llu updates=%llu "
      "| offload lookups=%llu updates=%llu\n",
      static_cast<unsigned long long>(
          snap.CounterValue("t3", "map", "table3.lookups")),
      static_cast<unsigned long long>(
          snap.CounterValue("t3", "map", "table3.updates")),
      static_cast<unsigned long long>(
          snap.CounterValue("t3", "map", "offload.lookups")),
      static_cast<unsigned long long>(
          snap.CounterValue("t3", "map", "offload.updates")));
  std::printf(
      "# Expected shape (paper): host ~1us/op (syscall-dominated there, "
      "map-op here), little\n"
      "# contention sensitivity; offload ~24-25us/op, dominated by the PCIe "
      "crossing.\n"
      "# Rd-Contended (reader-only antagonist) tracks the uncontended row: "
      "lookups are\n"
      "# lock-free (seqlock-validated swiss-table probes), so concurrent "
      "readers never serialize.\n"
      "# Array vs PerCPU Rd-Contended: reads against a datapath thread "
      "bumping the same 64\n"
      "# counters. The per-CPU array shards values per thread, so the "
      "measured thread never\n"
      "# shares a cache line with the bumper (the paper's fix for contended "
      "counter maps).\n");
  if (std::thread::hardware_concurrency() < 2) {
    std::printf(
        "# NOTE: this machine exposes a single CPU; 'Contended' rows are "
        "inflated by\n"
        "# timesharing with the antagonist thread, not by map-lock "
        "contention.\n");
  }
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
