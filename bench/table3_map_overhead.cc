// Regenerates paper Table 3: Map operation latency for different backends.
//
//   Backend            | Get (ns) | Update (ns)
//   Host               |          |
//   Host Contended     |          |
//   Offload            |          |
//   Offload Contended  |          |
//
// Host rows measure real userspace operations on a hash map with 1M
// elements (as in the paper); "contended" runs a second thread issuing
// operations on the same map concurrently. Offload rows go through the
// OffloadMapProxy, which charges the Netronome's measured ~24us PCIe round
// trip per operation — the value is modeled, the code path is real.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/map/offload_proxy.h"

namespace syrup {
namespace {

constexpr uint32_t kElements = 1'000'000;
constexpr std::chrono::nanoseconds kPcieRoundTrip{23'500};

std::shared_ptr<Map> MakeHostMap() {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = kElements;
  spec.name = "table3";
  auto map = CreateMap(spec).value();
  for (uint32_t key = 0; key < kElements; ++key) {
    (void)map->UpdateU64(key, key);
  }
  return map;
}

enum class OpKind { kGet, kUpdate };

double MeasureNs(Map& map, OpKind op, int iters) {
  Rng rng(9);
  volatile uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(kElements));
    if (op == OpKind::kGet) {
      void* value = map.Lookup(&key);
      if (value != nullptr) {
        sink += Map::AtomicLoad(value);
      }
    } else {
      const uint64_t value = sink + i;
      (void)map.Update(&key, &value, UpdateFlag::kAny);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

double MeasureContendedNs(Map& map, OpKind op, int iters) {
  std::atomic<bool> stop_flag{false};
  // Antagonist: mixed gets/updates over the same key space.
  std::thread antagonist([&map, &stop_flag]() {
    Rng rng(77);
    uint64_t value = 0;
    while (!stop_flag.load(std::memory_order_relaxed)) {
      const uint32_t key = static_cast<uint32_t>(rng.NextBounded(kElements));
      if ((key & 1) != 0) {
        (void)map.Lookup(&key);
      } else {
        (void)map.Update(&key, &value, UpdateFlag::kAny);
      }
      ++value;
    }
  });
  const double ns = MeasureNs(map, op, iters);
  stop_flag.store(true);
  antagonist.join();
  return ns;
}

void Run() {
  std::printf("# Table 3: Map operation latency for different backends\n");
  std::printf("# host map: hash, %u elements; offload: +%lld ns modeled "
              "PCIe round trip\n",
              kElements, static_cast<long long>(kPcieRoundTrip.count()));
  auto host = MakeHostMap();
  OffloadMapProxy offload(host, kPcieRoundTrip);

  constexpr int kHostIters = 2'000'000;
  constexpr int kOffloadIters = 4'000;

  std::printf("%-20s %12s %12s\n", "Backend", "Get (ns)", "Update (ns)");
  std::printf("%-20s %12.0f %12.0f\n", "Host",
              MeasureNs(*host, OpKind::kGet, kHostIters),
              MeasureNs(*host, OpKind::kUpdate, kHostIters));
  std::printf("%-20s %12.0f %12.0f\n", "Host Contended",
              MeasureContendedNs(*host, OpKind::kGet, kHostIters),
              MeasureContendedNs(*host, OpKind::kUpdate, kHostIters));
  std::printf("%-20s %12.0f %12.0f\n", "Offload",
              MeasureNs(offload, OpKind::kGet, kOffloadIters),
              MeasureNs(offload, OpKind::kUpdate, kOffloadIters));
  std::printf("%-20s %12.0f %12.0f\n", "Offload Contended",
              MeasureContendedNs(offload, OpKind::kGet, kOffloadIters),
              MeasureContendedNs(offload, OpKind::kUpdate, kOffloadIters));
  std::printf(
      "# Expected shape (paper): host ~1us/op (syscall-dominated there, "
      "map-op here), little\n"
      "# contention sensitivity; offload ~24-25us/op, dominated by the PCIe "
      "crossing.\n");
  if (std::thread::hardware_concurrency() < 2) {
    std::printf(
        "# NOTE: this machine exposes a single CPU; 'Contended' rows are "
        "inflated by\n"
        "# timesharing with the antagonist thread, not by map-lock "
        "contention.\n");
  }
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
