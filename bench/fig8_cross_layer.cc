// Regenerates paper Figure 8: cross-layer scheduling (§5.3).
//
// RocksDB with 50% GET / 50% SCAN, 36 threads sharing 6 cores. Variants:
//   scan_avoid      — SCAN Avoid at the Socket Select hook, Linux-default
//                     (CFS) thread scheduling.
//   thread_sched    — GET-priority policy at the Thread Scheduler hook via
//                     ghOSt (one core reserved for the agent), default
//                     socket selection.
//   both            — the two policies deployed together, communicating
//                     through Syrup Maps.
//
//   (a) GET 99% latency vs load    (b) SCAN 99% latency vs load
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

RocksDbResult RunVariant(SocketPolicyKind socket_policy,
                         ThreadSchedKind thread_sched, double load) {
  RocksDbExperimentConfig config;
  config.socket_policy = socket_policy;
  config.thread_sched = thread_sched;
  config.get_fraction = 0.5;
  config.num_threads = 36;
  config.num_cores = 6;
  config.load_rps = load;
  config.measure = 1 * kSecond;
  config.seed = 4;
  return RunRocksDbExperiment(config);
}

void Run() {
  std::printf(
      "# Figure 8: RocksDB 50%% GET / 50%% SCAN, 36 threads on 6 cores\n");
  std::printf("%9s | %11s %11s %11s | %11s %11s %11s\n", "load_rps",
              "sa_get_p99", "ts_get_p99", "both_get", "sa_scan_p99",
              "ts_scan_p99", "both_scan");
  for (double load = 2'000; load <= 14'000; load += 2'000) {
    const RocksDbResult scan_avoid =
        RunVariant(SocketPolicyKind::kScanAvoid, ThreadSchedKind::kCfs, load);
    const RocksDbResult thread_sched = RunVariant(
        SocketPolicyKind::kVanilla, ThreadSchedKind::kGhostGetPriority, load);
    const RocksDbResult both = RunVariant(
        SocketPolicyKind::kScanAvoid, ThreadSchedKind::kGhostGetPriority,
        load);
    std::printf("%9.0f | %11.1f %11.1f %11.1f | %11.1f %11.1f %11.1f\n",
                load, scan_avoid.p99_get_us, thread_sched.p99_get_us,
                both.p99_get_us, scan_avoid.p99_scan_us,
                thread_sched.p99_scan_us, both.p99_scan_us);
  }
  std::printf(
      "# Expected shape (paper): thread-sched-only GET p99 high (>800us) "
      "even at low load\n"
      "# (socket HoL blocking); SCAN-Avoid-only explodes by ~6k (CFS blind "
      "to GETs); combined\n"
      "# sustains the highest load before exploding, but its SCAN capacity "
      "is slightly lower\n"
      "# because one core is reserved for the ghOSt agent.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
