// Extension bench (paper §6.1): IO request scheduling on the storage hook.
//
// A ReFlex-like multi-tenant flash scenario: a latency-critical (LC)
// tenant issues 4K reads at a fixed 40k IOPS while a best-effort (BE)
// tenant floods the device with 64K writes at increasing rates. Compared:
//
//   default    — round robin across NVMe queues, no policy: writes land in
//                front of reads everywhere.
//   token      — the §3.4 token policy deployed *unchanged* on the storage
//                hook: the BE tenant gets a bounded IOPS budget (ReFlex's
//                approach; the paper notes this is the same policy).
//   sita       — the Fig. 5d SITA policy deployed unchanged: writes (the
//                long class) are isolated on queue 0, reads spread over
//                the remaining queues.
#include <cstdio>
#include <memory>

#include "src/common/distributions.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"
#include "src/storage/io_scheduler.h"

namespace syrup {
namespace {

constexpr uint32_t kLcTenant = 1;
constexpr uint32_t kBeTenant = 2;
constexpr double kLcIops = 40'000;
constexpr Duration kEpoch = 10 * kMillisecond;
constexpr double kBeTokenRate = 3'000;  // BE budget under the token policy

enum class PolicyKind { kDefault, kToken, kSita };

struct Result {
  double lc_p99_us;
  double be_achieved_iops;
};

Result RunOnce(PolicyKind kind, double be_iops) {
  Simulator sim;
  NvmeConfig config;
  NvmeDevice device(sim, config);
  IoScheduler scheduler(device);

  std::shared_ptr<Map> tokens;
  switch (kind) {
    case PolicyKind::kDefault:
      break;
    case PolicyKind::kToken: {
      MapSpec spec;
      spec.type = MapType::kHash;
      spec.max_entries = 16;
      tokens = CreateMap(spec).value();
      // Only the BE tenant is budgeted; LC is not throttled.
      (void)tokens->UpdateU64(
          kBeTenant, static_cast<uint64_t>(kBeTokenRate * ToSeconds(kEpoch)));
      scheduler.SetPolicy(std::make_shared<TokenPolicy>(tokens));
      break;
    }
    case PolicyKind::kSita:
      scheduler.SetPolicy(std::make_shared<SitaPolicy>(
          static_cast<uint32_t>(config.num_queues)));
      break;
  }
  std::shared_ptr<std::function<void()>> replenish;
  if (tokens != nullptr) {
    // Token replenisher agent (weak self-reference avoids a retain cycle).
    replenish = std::make_shared<std::function<void()>>();
    *replenish = [&sim, tokens,
                  weak_self =
                      std::weak_ptr<std::function<void()>>(replenish)]() {
      uint32_t be = kBeTenant;
      void* cell = tokens->Lookup(&be);
      if (cell != nullptr) {
        Map::AtomicStore(cell, static_cast<uint64_t>(kBeTokenRate *
                                                     ToSeconds(kEpoch)));
      }
      if (auto self = weak_self.lock()) {
        sim.ScheduleAfter(kEpoch, *self);
      }
    };
    sim.ScheduleAfter(kEpoch, *replenish);
  }

  Histogram lc_latency;
  uint64_t be_completed = 0;
  device.SetCompletionCallback([&](const IoRequest& request, Time when) {
    if (request.tenant_id == kLcTenant) {
      lc_latency.Record(when - request.submit_time);
    } else {
      ++be_completed;
    }
  });

  const Time end = 2 * kSecond;
  Rng rng(17);
  uint64_t next_id = 1;

  // Two open-loop generators.
  auto start_gen = [&](uint32_t tenant, IoOp op, uint32_t blocks,
                       double rate) {
    auto gen = std::make_shared<std::function<void()>>();
    auto arrivals = std::make_shared<ExponentialDuration>(rate);
    *gen = [&sim, &scheduler, &rng, &next_id, tenant, op, blocks, rate, end,
            gen, arrivals]() {
      IoRequest request;
      request.tenant_id = tenant;
      request.op = op;
      request.num_blocks = blocks;
      request.req_id = next_id++;
      request.lba = rng.Next() & 0xFFFFFF;
      request.submit_time = sim.Now();
      (void)scheduler.Submit(request);
      const Time next = sim.Now() + arrivals->Sample(rng);
      if (next < end) {
        sim.ScheduleAt(next, *gen);
      }
    };
    sim.ScheduleAfter(1, *gen);
  };
  start_gen(kLcTenant, IoOp::kRead, 1, kLcIops);
  start_gen(kBeTenant, IoOp::kWrite, 16, be_iops);

  sim.RunUntil(end + 100 * kMillisecond);
  return Result{
      static_cast<double>(lc_latency.Percentile(99)) / 1000.0,
      static_cast<double>(be_completed) / ToSeconds(end)};
}

void Run() {
  std::printf("# Storage-hook extension: ReFlex-like tenant isolation on "
              "flash\n");
  std::printf("# LC tenant: 40k IOPS of 4K reads; BE tenant: 64K writes at "
              "increasing rate\n");
  std::printf("%10s | %12s %12s %12s | %12s %12s %12s\n", "be_iops",
              "dflt_lc_p99", "tok_lc_p99", "sita_lc_p99", "dflt_be",
              "tok_be", "sita_be");
  for (double be : {500.0, 1'000.0, 2'000.0, 3'000.0, 4'000.0, 6'000.0,
                    8'000.0}) {
    const Result none = RunOnce(PolicyKind::kDefault, be);
    const Result token = RunOnce(PolicyKind::kToken, be);
    const Result sita = RunOnce(PolicyKind::kSita, be);
    std::printf("%10.0f | %12.1f %12.1f %12.1f | %12.0f %12.0f %12.0f\n",
                be, none.lc_p99_us, token.lc_p99_us, sita.lc_p99_us,
                none.be_achieved_iops, token.be_achieved_iops,
                sita.be_achieved_iops);
  }
  std::printf(
      "# Expectation: default LC p99 degrades with BE load (reads queue "
      "behind writes);\n"
      "# token caps BE at ~%.0f IOPS, bounding LC p99; SITA keeps LC p99 "
      "lowest but\n"
      "# throttles BE hardest (single write queue).\n",
      kBeTokenRate);
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
