// Google-benchmark microbenchmarks for the framework's building blocks:
// VM interpretation, verification, map operations, histogram recording,
// event dispatch, and native policy decisions. These are the costs behind
// Table 2/3 and the simulator's own throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/verifier.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/core/syrup_api.h"
#include "src/map/hash_map.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/policies/builtin.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

Packet BenchPacket() {
  Packet pkt;
  pkt.tuple.src_port = 20'001;
  pkt.tuple.dst_port = 9000;
  pkt.SetHeader(ReqType::kGet, 1, 12'345, 1, 0);
  return pkt;
}

bpf::Program LoadProgram(const std::string& source) {
  auto assembled = bpf::Assemble(source).value();
  bpf::Program prog;
  prog.name = assembled.name;
  prog.insns = assembled.insns;
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    prog.maps.push_back(CreateMap(slot.spec).value());
  }
  return prog;
}

void BM_InterpreterSitaDecision(benchmark::State& state) {
  bpf::Program prog = LoadProgram(SitaPolicyAsm(6));
  bpf::ExecEnv env;
  bpf::Interpreter interp(env);
  const Packet pkt = BenchPacket();
  for (auto _ : state) {
    auto result =
        interp.Run(prog, reinterpret_cast<uint64_t>(pkt.wire.data()),
                   reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                   true);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InterpreterSitaDecision);

void BM_CompiledSitaDecision(benchmark::State& state) {
  // The pre-decoded tier the daemon actually deploys: operands resolved,
  // jumps absolute, verifier-proven memory checks elided.
  bpf::Program prog = LoadProgram(SitaPolicyAsm(6));
  bpf::CompiledProgram compiled =
      bpf::Compile(prog, bpf::ProgramContext::kPacket).value();
  bpf::CompiledExecutor exec{bpf::ExecEnv{}};
  const Packet pkt = BenchPacket();
  for (auto _ : state) {
    auto result =
        exec.Run(compiled, reinterpret_cast<uint64_t>(pkt.wire.data()),
                 reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                 true);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompiledSitaDecision);

void BM_CompiledParanoidSitaDecision(benchmark::State& state) {
  // Same pre-decoded dispatch, runtime memory re-validation retained:
  // isolates check elision from decode elimination.
  bpf::Program prog = LoadProgram(SitaPolicyAsm(6));
  bpf::CompileOptions options;
  options.paranoid = true;
  bpf::CompiledProgram compiled =
      bpf::Compile(prog, bpf::ProgramContext::kPacket, options).value();
  bpf::CompiledExecutor exec{bpf::ExecEnv{}};
  const Packet pkt = BenchPacket();
  for (auto _ : state) {
    auto result =
        exec.Run(compiled, reinterpret_cast<uint64_t>(pkt.wire.data()),
                 reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                 true);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CompiledParanoidSitaDecision);

void BM_CompileSita(benchmark::State& state) {
  // Attach-time translation cost (paid once per deploy, cached by id).
  bpf::Program prog = LoadProgram(SitaPolicyAsm(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::Compile(prog, bpf::ProgramContext::kPacket));
  }
}
BENCHMARK(BM_CompileSita);

void BM_NativeSitaDecision(benchmark::State& state) {
  SitaPolicy policy(6);
  const Packet pkt = BenchPacket();
  const PacketView view = PacketView::Of(pkt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Schedule(view));
  }
}
BENCHMARK(BM_NativeSitaDecision);

void BM_VerifySita(benchmark::State& state) {
  bpf::Program prog = LoadProgram(SitaPolicyAsm(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::Verify(prog, bpf::ProgramContext::kPacket));
  }
}
BENCHMARK(BM_VerifySita);

void BM_VerifyScanAvoidLoops(benchmark::State& state) {
  // Loop exploration cost scales with executor count.
  bpf::Program prog =
      LoadProgram(ScanAvoidPolicyAsm(static_cast<uint32_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpf::Verify(prog, bpf::ProgramContext::kPacket));
  }
}
BENCHMARK(BM_VerifyScanAvoidLoops)->Arg(2)->Arg(6)->Arg(12);

void BM_HashMapLookup(benchmark::State& state) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = 1u << 16;
  HashMap map(spec);
  for (uint32_t key = 0; key < (1u << 16); ++key) {
    (void)map.UpdateU64(key, key);
  }
  Rng rng(5);
  for (auto _ : state) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    benchmark::DoNotOptimize(map.Lookup(&key));
  }
}
BENCHMARK(BM_HashMapLookup);

void BM_HashMapLookupContended(benchmark::State& state) {
  static HashMap* map = [] {
    MapSpec spec;
    spec.type = MapType::kHash;
    spec.max_entries = 1u << 16;
    auto* m = new HashMap(spec);
    for (uint32_t key = 0; key < (1u << 16); ++key) {
      (void)m->UpdateU64(key, key);
    }
    return m;
  }();
  Rng rng(5 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(1u << 16));
    benchmark::DoNotOptimize(map->Lookup(&key));
  }
}
BENCHMARK(BM_HashMapLookupContended)->Threads(2)->Threads(4);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(6);
  for (auto _ : state) {
    histogram.Record(rng.NextBounded(1'000'000));
  }
  benchmark::DoNotOptimize(histogram.Percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  // Self-rescheduling event: steady-state queue of depth 1. Arg selects the
  // engine so the wheel/reference columns sit side by side in the report.
  const SimEngine engine =
      state.range(0) == 0 ? SimEngine::kTimingWheel : SimEngine::kReference;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim(engine);
    uint64_t count = 0;
    std::function<void()> tick = [&]() {
      if (++count < 10'000) {
        sim.ScheduleAfter(1, tick);
      }
    };
    sim.ScheduleAfter(1, tick);
    state.ResumeTiming();
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
// engine:0 = timing wheel, engine:1 = reference heap.
BENCHMARK(BM_SimulatorEventDispatch)->Arg(0)->Arg(1)->ArgName("engine");

void BM_SimulatorSteadyState(benchmark::State& state) {
  // 1024 events in flight, each rescheduling itself at a varied delay: the
  // wheel's intended steady state (deep pending set, zero allocations).
  const SimEngine engine =
      state.range(0) == 0 ? SimEngine::kTimingWheel : SimEngine::kReference;
  constexpr uint64_t kPending = 1024;
  constexpr uint64_t kDispatches = 64 * 1024;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim(engine);
    uint64_t remaining = kDispatches;
    uint64_t lcg = 0x9e3779b97f4a7c15ull;
    std::function<void()> tick = [&]() {
      if (remaining > 0) {
        --remaining;
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        sim.ScheduleAfter(100 + (lcg >> 33) % 10'000, tick);
      }
    };
    for (uint64_t i = 0; i < kPending; ++i) {
      sim.ScheduleAfter(100 + i, tick);
    }
    state.ResumeTiming();
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kDispatches + kPending));
}
BENCHMARK(BM_SimulatorSteadyState)->Arg(0)->Arg(1)->ArgName("engine");

void BM_ObsCounterInc(benchmark::State& state) {
  // The per-event cost of the always-on metrics layer: a pointer chase and
  // a plain add (the single-threaded datapath variant).
  obs::MetricsRegistry registry;
  auto counter = registry.GetCounter("bench", "hook", "events");
  for (auto _ : state) {
    counter->Inc();
    benchmark::DoNotOptimize(counter->value);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterIncAtomic(benchmark::State& state) {
  // The thread-safe variant map ops use.
  obs::MetricsRegistry registry;
  auto counter = registry.GetCounter("bench", "map", "ops");
  for (auto _ : state) {
    counter->IncAtomic();
    benchmark::DoNotOptimize(counter->value);
  }
}
BENCHMARK(BM_ObsCounterIncAtomic);

void BM_ObsCounterIncAtomicContended(benchmark::State& state) {
  // All threads hammer ONE counter cell with IncAtomic: the cache-line
  // ping-pong a sharded run would pay if shards shared metrics cells.
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  std::shared_ptr<obs::Counter> counter =
      registry->GetCounter("bench", "hook", "contended");
  for (auto _ : state) {
    counter->IncAtomic();
  }
  benchmark::DoNotOptimize(counter->value);
}
BENCHMARK(BM_ObsCounterIncAtomicContended)->Threads(2)->Threads(4);

void BM_ObsCounterIncSharded(benchmark::State& state) {
  // Each thread bumps its own shard cell with the single-writer relaxed
  // store (the sharded-sim emission path, src/sim/sharded.h); the registry
  // folds the cells at snapshot. No shared cache lines on the hot path.
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  std::shared_ptr<obs::Counter> counter = registry->GetCounterShard(
      "bench", "hook", "sharded", state.thread_index());
  for (auto _ : state) {
    counter->IncRelaxed();
  }
  benchmark::DoNotOptimize(counter->value);
}
BENCHMARK(BM_ObsCounterIncSharded)->Threads(2)->Threads(4);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::LatencyHistogram histogram;
  Rng rng(6);
  for (auto _ : state) {
    histogram.Record(rng.NextBounded(1'000'000));
  }
  benchmark::DoNotOptimize(histogram.Percentile(99));
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_SyrupdDispatch(benchmark::State& state) {
  // The per-packet dispatcher path with metrics on: port match, per-hook +
  // per-app accounting, decision classification, native policy decision.
  // Guards the acceptance criterion that the registry adds no measurable
  // overhead to dispatch throughput.
  Simulator sim;
  HostStack stack(sim, StackConfig{});
  Syrupd syrupd(sim, &stack);
  const AppId app = syrupd.RegisterApp("bench", /*uid=*/1000, 9000).value();
  (void)syrupd
      .DeployNativePolicy(app, std::make_shared<RoundRobinPolicy>(6),
                          Hook::kSocketSelect)
      .value();
  const Packet pkt = BenchPacket();
  const PacketView view = PacketView::Of(pkt);
  SteerHook& dispatch = stack.hooks().socket_select;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch(view));
  }
}
BENCHMARK(BM_SyrupdDispatch);

// Dispatch with a verifier-cacheable bytecode policy: arg 1 = flow cache
// on (steady-state hits, the policy VM never runs), arg 0 = off (the
// compiled policy executes per packet). The gap is the flow-decision
// cache's per-packet win; the cache-on number also guards the hit path
// (MakeKey + probe) against regressions, and the raw-pointer dispatch
// refactor (PortEntry::policy_raw) keeps shared_ptr refcount traffic off
// both variants.
void BM_SyrupdDispatchCacheable(benchmark::State& state) {
  Simulator sim;
  HostStack stack(sim, StackConfig{});
  Syrupd syrupd(sim, &stack);
  syrupd.set_flow_cache_enabled(state.range(0) != 0);
  const AppId app = syrupd.RegisterApp("bench", /*uid=*/1000, 9000).value();
  (void)syrupd.DeployPolicyFile(app, MicaHomePolicyAsm(6), Hook::kSocketSelect)
      .value();
  const Packet pkt = BenchPacket();
  const PacketView view = PacketView::Of(pkt);
  SteerHook& dispatch = stack.hooks().socket_select;
  (void)dispatch(view);  // warm: populate the flow's cache entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatch(view));
  }
}
BENCHMARK(BM_SyrupdDispatchCacheable)->Arg(0)->Arg(1)->ArgName("cache");

void BM_FiveTupleHash(benchmark::State& state) {
  FiveTuple tuple{0x0a000001, 0x0a0000ff, 20'000, 9000, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuple.Hash());
    tuple.src_port++;
  }
}
BENCHMARK(BM_FiveTupleHash);

}  // namespace
}  // namespace syrup

BENCHMARK_MAIN();
