// Regenerates paper Figure 7: token-based QoS scheduling (§3.4, §5.2.2).
//
// Two users share a 6-core RocksDB: a latency-sensitive (LS) user and a
// best-effort (BE) user, total offered load fixed at 400k RPS. The token
// policy issues 350k tokens/s to LS in 100us epochs and gifts leftovers to
// BE; requests without tokens are dropped. Compared against plain round
// robin (no admission control).
//
//   (a) BE throughput vs LS load    (b) LS 99% latency vs LS load
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

void Run() {
  std::printf("# Figure 7: token-based vs round robin, LS+BE = 400k RPS\n");
  std::printf("%10s | %14s %14s | %14s %14s\n", "ls_load", "token_be_tput",
              "rr_be_tput", "token_ls_p99", "rr_ls_p99");
  for (double ls = 50'000; ls <= 350'000; ls += 50'000) {
    TokenQosConfig config;
    config.ls_load_rps = ls;
    config.be_load_rps = 400'000 - ls;
    config.measure = 800 * kMillisecond;
    config.seed = 5;

    config.token_policy = true;
    const TokenQosResult token = RunTokenQosExperiment(config);
    config.token_policy = false;
    const TokenQosResult rr = RunTokenQosExperiment(config);

    std::printf("%10.0f | %14.0f %14.0f | %14.1f %14.1f\n", ls,
                token.be_throughput_rps, rr.be_throughput_rps,
                token.ls_p99_us, rr.ls_p99_us);
  }
  std::printf(
      "# Expected shape (paper): token BE tput ~= leftover tokens "
      "(350k - LS); RR BE tput ~= offered;\n"
      "# RR buys that extra BE throughput with higher LS p99 (paper: 6x) "
      "since it admits past saturation.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
