// Regenerates paper Table 2: overhead of different Syrup policies.
//
//   Policy | LoC | Instructions | Cycles
//
// LoC counts the policy-file source lines (directives/labels excluded, as
// the paper counts C statements). Instructions is the mean VM instruction
// count per scheduling decision, measured by running each verified bytecode
// policy over a representative packet stream. Cycles has two parts, as in
// the paper ("most of this time is spent on enforcing ... rather than
// making ... each scheduling decision"): the measured native decision cost,
// plus a fixed enforcement cost (packet redirect + dispatch) modeled at
// 1400 cycles. Wall-clock is converted at 2.3 GHz (the paper's Xeon E5-2630
// clock).
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/core/policy.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

constexpr double kGhz = 2.3;
constexpr double kEnforcementCycles = 1400;  // redirect + dispatch, modeled
constexpr int kWarmupIters = 10'000;
constexpr int kMeasureIters = 2'000'000;

int CountLoc(const std::string& source) {
  std::istringstream stream(source);
  std::string line;
  int loc = 0;
  while (std::getline(stream, line)) {
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    const char c = line[first];
    if (c == ';' || c == '#' || c == '.') {
      continue;  // comments and assembler directives
    }
    if (line.find(':') != std::string::npos &&
        line.find('[') == std::string::npos) {
      continue;  // labels
    }
    ++loc;
  }
  return loc;
}

std::vector<Packet> MakeWorkload() {
  Rng rng(42);
  std::vector<Packet> packets;
  packets.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    Packet pkt;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + rng.NextBounded(50));
    pkt.tuple.dst_port = 9000;
    const ReqType type =
        rng.NextBounded(200) == 0 ? ReqType::kScan : ReqType::kGet;
    pkt.SetHeader(type, 1 + static_cast<uint32_t>(rng.NextBounded(2)),
                  static_cast<uint32_t>(rng.Next()), i, 0);
    packets.push_back(pkt);
  }
  return packets;
}

double MeasureNs(PacketPolicy& policy, const std::vector<Packet>& packets) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < kWarmupIters; ++i) {
    sink += policy.Schedule(PacketView::Of(packets[i % packets.size()]));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMeasureIters; ++i) {
    sink += policy.Schedule(PacketView::Of(packets[i % packets.size()]));
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         kMeasureIters;
}

struct PolicyUnderTest {
  const char* name;
  std::string asm_source;
  std::shared_ptr<PacketPolicy> native;
};

std::unique_ptr<BytecodePacketPolicy> LoadBytecode(
    const std::string& source) {
  auto assembled = bpf::Assemble(source).value();
  auto program = std::make_shared<bpf::Program>();
  program->name = assembled.name;
  program->insns = assembled.insns;
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    program->maps.push_back(CreateMap(slot.spec).value());
  }
  const Status verified = bpf::Verify(*program, bpf::ProgramContext::kPacket);
  if (!verified.ok()) {
    std::fprintf(stderr, "verify failed: %s\n", verified.ToString().c_str());
    std::abort();
  }
  bpf::ExecEnv env;
  auto rng = std::make_shared<Rng>(7);
  env.random_u32 = [rng]() { return static_cast<uint32_t>(rng->Next()); };
  env.ktime_ns = []() { return 0u; };
  return std::make_unique<BytecodePacketPolicy>(program, env);
}

void Run() {
  const auto workload = MakeWorkload();

  // Token policy needs populated buckets; SCAN Avoid needs a scan map +
  // randomness.
  MapSpec token_spec;
  token_spec.type = MapType::kHash;
  token_spec.max_entries = 64;
  auto token_map = CreateMap(token_spec).value();
  for (uint32_t user = 1; user <= 2; ++user) {
    (void)token_map->UpdateU64(user, 1'000'000'000);
  }
  MapSpec scan_spec;
  scan_spec.type = MapType::kArray;
  scan_spec.max_entries = 6;
  auto scan_map = CreateMap(scan_spec).value();
  (void)scan_map->UpdateU64(2, static_cast<uint64_t>(ReqType::kScan));
  auto rng = std::make_shared<Rng>(3);

  std::vector<PolicyUnderTest> policies;
  policies.push_back({"Round Robin", RoundRobinPolicyAsm(6),
                      std::make_shared<RoundRobinPolicy>(6)});
  policies.push_back(
      {"SCAN Avoid", ScanAvoidPolicyAsm(6),
       std::make_shared<ScanAvoidPolicy>(6, scan_map, [rng]() {
         return static_cast<uint32_t>(rng->Next());
       })});
  policies.push_back(
      {"SITA", SitaPolicyAsm(6), std::make_shared<SitaPolicy>(6)});
  policies.push_back({"Token-based", TokenPolicyAsm(),
                      std::make_shared<TokenPolicy>(token_map)});

  std::printf("# Table 2: overhead of different Syrup policies\n");
  std::printf("%-12s %5s %13s %18s %10s\n", "Policy", "LoC", "Instructions",
              "DecisionCycles", "Cycles");
  for (auto& put : policies) {
    auto bytecode = LoadBytecode(put.asm_source);
    // Instruction count per decision over the workload.
    for (size_t i = 0; i < 4096; ++i) {
      bytecode->Schedule(PacketView::Of(workload[i % workload.size()]));
    }
    const double insns = bytecode->MeanInsnsPerDecision();
    const double decision_ns = MeasureNs(*put.native, workload);
    const double decision_cycles = decision_ns * kGhz;
    const double total_cycles = decision_cycles + kEnforcementCycles;
    std::printf("%-12s %5d %13.0f %18.0f %10.0f\n", put.name,
                CountLoc(put.asm_source), insns, decision_cycles,
                total_cycles);
  }
  std::printf(
      "# Cycles = measured native decision cost at %.1f GHz + %.0f modeled "
      "enforcement cycles\n"
      "# (the paper: ~1500-1700 cycles total, dominated by enforcement).\n",
      kGhz, kEnforcementCycles);
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
