// Regenerates paper Table 2: overhead of different Syrup policies.
//
//   Policy | LoC | Instructions | Cycles
//
// LoC counts the policy-file source lines (directives/labels excluded, as
// the paper counts C statements). Instructions is the mean VM instruction
// count per scheduling decision, measured by deploying each policy through
// syrupd (the real path: assemble, pin maps, verify, attach) and reading
// the per-app policy counters back from Syrupd::StatsSnapshot() — the
// same observability surface syrupctl exposes. Cycles has two parts, as in
// the paper ("most of this time is spent on enforcing ... rather than
// making ... each scheduling decision"): the measured native decision cost,
// plus a fixed enforcement cost (packet redirect + dispatch) modeled at
// 1400 cycles. Wall-clock is converted at 2.3 GHz (the paper's Xeon E5-2630
// clock).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/core/syrup_api.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

constexpr double kGhz = 2.3;
constexpr double kEnforcementCycles = 1400;  // redirect + dispatch, modeled
constexpr int kWarmupIters = 10'000;
constexpr int kMeasureIters = 2'000'000;
constexpr int kBytecodeIters = 400'000;  // VM modes are slower per decision
constexpr int kDecisionIters = 4096;

int CountLoc(const std::string& source) {
  std::istringstream stream(source);
  std::string line;
  int loc = 0;
  while (std::getline(stream, line)) {
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    const char c = line[first];
    if (c == ';' || c == '#' || c == '.') {
      continue;  // comments and assembler directives
    }
    if (line.find(':') != std::string::npos &&
        line.find('[') == std::string::npos) {
      continue;  // labels
    }
    ++loc;
  }
  return loc;
}

std::vector<Packet> MakeWorkload(uint16_t dst_port) {
  Rng rng(42);
  std::vector<Packet> packets;
  packets.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    Packet pkt;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + rng.NextBounded(50));
    pkt.tuple.dst_port = dst_port;
    const ReqType type =
        rng.NextBounded(200) == 0 ? ReqType::kScan : ReqType::kGet;
    pkt.SetHeader(type, 1 + static_cast<uint32_t>(rng.NextBounded(2)),
                  static_cast<uint32_t>(rng.Next()), i, 0);
    packets.push_back(pkt);
  }
  return packets;
}

double MeasureNs(PacketPolicy& policy, const std::vector<Packet>& packets,
                 int iters = kMeasureIters) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < kWarmupIters; ++i) {
    sink += policy.Schedule(PacketView::Of(packets[i % packets.size()]));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += policy.Schedule(PacketView::Of(packets[i % packets.size()]));
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// Full dispatch cost through the installed stack hook — port match, flow-
// decision cache (when the deployment is verifier-cacheable), then the
// policy. This is what a packet actually pays, where MeasureNs above
// isolates the policy body.
double MeasureHookNs(const SteerHook& hook, const std::vector<Packet>& packets,
                     int iters) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < kWarmupIters; ++i) {
    sink += hook(PacketView::Of(packets[i % packets.size()]));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += hook(PacketView::Of(packets[i % packets.size()]));
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// Batched dispatch cost — the same end-to-end path as MeasureHookNs but
// through Syrupd::DispatchBatch in bursts of 32 (the shape RxBurst
// produces), so the batch-vs-single delta is visible per policy.
double MeasureBatchNs(Syrupd& syrupd, const std::vector<Packet>& packets,
                      int iters) {
  constexpr size_t kBurst = 32;
  std::vector<PacketView> views;
  views.reserve(packets.size());
  for (const Packet& pkt : packets) {
    views.push_back(PacketView::Of(pkt));
  }
  Decision out[kBurst];
  volatile uint64_t sink = 0;
  size_t pos = 0;
  auto burst = [&](size_t n) {
    syrupd.DispatchBatch(Hook::kSocketSelect,
                         std::span<const PacketView>(&views[pos], n),
                         std::span<Decision>(out, n));
    sink += out[n - 1];
    pos += n;
    if (pos == views.size()) {
      pos = 0;
    }
  };
  for (int i = 0; i < kWarmupIters; i += kBurst) {
    burst(std::min(kBurst, views.size() - pos));
  }
  int done = 0;
  const auto start = std::chrono::steady_clock::now();
  while (done < iters) {
    const size_t n = std::min({kBurst, views.size() - pos,
                               static_cast<size_t>(iters - done)});
    burst(n);
    done += static_cast<int>(n);
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

struct PolicyUnderTest {
  const char* name;
  const char* app;  // syrupd registration (also the snapshot key)
  std::string asm_source;
  std::shared_ptr<PacketPolicy> native;
};

void Run() {
  Simulator sim;
  HostStack stack(sim, StackConfig{});
  Syrupd syrupd(sim, &stack);

  // Native mirrors need the same shared state the bytecode twins read
  // through their pinned maps.
  MapSpec token_spec;
  token_spec.type = MapType::kHash;
  token_spec.max_entries = 64;
  auto native_token_map = CreateMap(token_spec).value();
  for (uint32_t user = 1; user <= 2; ++user) {
    (void)native_token_map->UpdateU64(user, 1'000'000'000);
  }
  MapSpec scan_spec;
  scan_spec.type = MapType::kArray;
  scan_spec.max_entries = 6;
  auto native_scan_map = CreateMap(scan_spec).value();
  (void)native_scan_map->UpdateU64(2, static_cast<uint64_t>(ReqType::kScan));
  auto rng = std::make_shared<Rng>(3);

  std::vector<PolicyUnderTest> policies;
  policies.push_back({"Round Robin", "t2_rr", RoundRobinPolicyAsm(6),
                      std::make_shared<RoundRobinPolicy>(6)});
  policies.push_back(
      {"SCAN Avoid", "t2_scan_avoid", ScanAvoidPolicyAsm(6),
       std::make_shared<ScanAvoidPolicy>(6, native_scan_map, [rng]() {
         return static_cast<uint32_t>(rng->Next());
       })});
  policies.push_back(
      {"SITA", "t2_sita", SitaPolicyAsm(6), std::make_shared<SitaPolicy>(6)});
  policies.push_back({"Token-based", "t2_token", TokenPolicyAsm(),
                      std::make_shared<TokenPolicy>(native_token_map)});
  // The §3.3 portable-hash policy: the only Table-2 entry the verifier
  // proves cacheable, so its cached_ns column shows the flow-decision
  // cache serving hits while the rows above show the uncacheable
  // fall-through (dispatch + policy every packet).
  policies.push_back({"Hash", "t2_hash", HashPolicyAsm(6),
                      std::make_shared<HashPolicy>(6)});

  std::printf("# Table 2: overhead of different Syrup policies\n");
  std::printf("%-12s %5s %13s | %10s %10s %10s %8s %10s %10s %10s | %18s "
              "%10s\n",
              "Policy", "LoC", "Instructions", "native_ns", "interp_ns",
              "compiled_ns", "speedup", "jit_ns", "cached_ns", "batched_ns",
              "DecisionCycles", "Cycles");
  uint16_t next_port = 9000;
  for (auto& put : policies) {
    const uint16_t port = next_port++;
    const AppId app = syrupd.RegisterApp(put.app, /*uid=*/1000, port).value();
    SyrupClient client(syrupd, app);
    const auto workload = MakeWorkload(port);

    // Seeds the policy's pinned maps through the typed map API, exactly as
    // the owning application would. Pins survive redeploys, so one seeding
    // covers both execution tiers.
    auto seed_maps = [&]() {
      if (std::string_view(put.app) == "t2_token") {
        MapHandle tokens =
            client.MapOpen("/syrup/t2_token/token_map").value();
        for (uint32_t user = 1; user <= 2; ++user) {
          (void)tokens.Update(user, 1'000'000'000);
        }
      } else if (std::string_view(put.app) == "t2_scan_avoid") {
        MapHandle scan =
            client.MapOpen("/syrup/t2_scan_avoid/scan_map").value();
        (void)scan.Update(2, static_cast<uint64_t>(ReqType::kScan));
      }
    };

    // Interpreter tier: the real deployment path (assemble, pin maps,
    // verify, attach) with the attach-time compile disabled. The scoped
    // handle detaches at the end so the compiled tier can redeploy.
    double interp_ns = 0;
    double mean_insns = 0;
    syrupd.set_exec_mode(bpf::ExecMode::kInterpret);
    {
      PolicyHandle deployed =
          client.DeployPolicy(put.asm_source, Hook::kSocketSelect).value();
      seed_maps();
      std::shared_ptr<PacketPolicy> attached =
          syrupd.PolicyAt(Hook::kSocketSelect, port);
      // Drive the attached policy object over the workload (the dispatcher
      // would do exactly this per matching packet).
      for (int i = 0; i < kDecisionIters; ++i) {
        attached->Schedule(PacketView::Of(workload[
            static_cast<size_t>(i) % workload.size()]));
      }
      // Instructions per decision, read back from the daemon's snapshot:
      // the registry is the single source for this column.
      const obs::Snapshot snap = syrupd.StatsSnapshot();
      const uint64_t insns =
          snap.CounterValue(put.app, "socket_select", "policy.insns");
      const uint64_t decisions =
          snap.CounterValue(put.app, "socket_select", "policy.invocations");
      mean_insns =
          decisions == 0
              ? 0.0
              : static_cast<double>(insns) / static_cast<double>(decisions);
      interp_ns = MeasureNs(*attached, workload, kBytecodeIters);
    }

    // Compiled tier (the default deployment mode): same program, same
    // maps, pre-decoded execution. The cached column measures the same
    // deployment end to end through the stack's socket_select hook with
    // the flow-decision cache live.
    double compiled_ns = 0;
    double cached_ns = 0;
    double batched_ns = 0;
    syrupd.set_exec_mode(bpf::ExecMode::kCompiled);
    {
      PolicyHandle deployed =
          client.DeployPolicy(put.asm_source, Hook::kSocketSelect).value();
      std::shared_ptr<PacketPolicy> attached =
          syrupd.PolicyAt(Hook::kSocketSelect, port);
      compiled_ns = MeasureNs(*attached, workload, kBytecodeIters);
      cached_ns =
          MeasureHookNs(stack.hooks().socket_select, workload, kBytecodeIters);
      batched_ns = MeasureBatchNs(syrupd, workload, kBytecodeIters);
    }

    // Native machine-code tier: same deployment path with the JIT
    // requested. On a host the JIT cannot handle, the deployment
    // transparently runs the compiled tier, so the column degrades to
    // compiled_ns rather than failing.
    double jit_ns = 0;
    syrupd.set_exec_mode(bpf::ExecMode::kNative);
    {
      PolicyHandle deployed =
          client.DeployPolicy(put.asm_source, Hook::kSocketSelect).value();
      std::shared_ptr<PacketPolicy> attached =
          syrupd.PolicyAt(Hook::kSocketSelect, port);
      jit_ns = MeasureNs(*attached, workload, kBytecodeIters);
    }
    syrupd.set_exec_mode(bpf::ExecMode::kCompiled);

    const double decision_ns = MeasureNs(*put.native, workload);
    const double decision_cycles = decision_ns * kGhz;
    const double total_cycles = decision_cycles + kEnforcementCycles;
    std::printf("%-12s %5d %13.0f | %10.1f %10.1f %10.1f %7.2fx %10.1f "
                "%10.1f %10.1f | %18.0f %10.0f\n",
                put.name, CountLoc(put.asm_source), mean_insns, decision_ns,
                interp_ns, compiled_ns,
                compiled_ns > 0 ? interp_ns / compiled_ns : 0.0, jit_ns,
                cached_ns, batched_ns, decision_cycles, total_cycles);
  }
  std::printf(
      "# native_ns/interp_ns/compiled_ns: per-decision cost of the native "
      "mirror, the decode-per-\n"
      "# instruction interpreter, and the pre-decoded compiled tier; "
      "speedup = interp/compiled.\n"
      "# jit_ns: the same deployment on the machine-code tier (ExecMode "
      "native) — x86-64 stencils\n"
      "# emitted at attach time; equals compiled_ns on hosts where the JIT "
      "falls back.\n"
      "# cached_ns: full dispatch through the socket_select hook with the "
      "flow-decision cache on —\n"
      "# for verifier-cacheable policies (Hash) most packets skip the VM "
      "entirely; uncacheable\n"
      "# policies pay dispatch + policy every packet.\n"
      "# batched_ns: same end-to-end dispatch via Syrupd::DispatchBatch in "
      "bursts of 32 — port\n"
      "# resolution, cache keys, and slot prefetch hoisted across the "
      "burst.\n"
      "# Cycles = measured native decision cost at %.1f GHz + %.0f modeled "
      "enforcement cycles\n"
      "# (the paper: ~1500-1700 cycles total, dominated by enforcement).\n",
      kGhz, kEnforcementCycles);
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
