// Sharded-simulation scaling: events/sec of the conservative-window engine
// (src/sim/sharded.h) at shards in {1, 2, 4, 8}, machine-readable.
//
// Weak scaling: every shard carries the same steady-state workload (512
// self-rescheduling tick chains, fixed events per shard), so perfect
// scaling doubles aggregate events/sec per doubling of shards. Two
// scenarios bracket the sync cost:
//
//   steady       no cross-shard traffic — pure window/barrier overhead
//   cross_heavy  30% of continuations hop to the neighbor shard through
//                the SPSC channels (the rack east-west shape)
//
// Writes `BENCH_sim_parallel.json` (shards -> events/sec per scenario plus
// the N-shard:1-shard speedups). `--baseline <file>` gates the 4-shard
// speedup against the checked-in floor (steady >= 1.8x); the gate needs at
// least 4 hardware threads and reports itself as skipped otherwise, and
// shard counts beyond hardware_concurrency are skipped rather than
// measured oversubscribed (a spinning barrier on a timeshared core
// benchmarks the OS scheduler, not the engine).
//
// Flags:
//   --quick            ~8x fewer events per shard (CI smoke mode)
//   --baseline <file>  compare 4-shard speedups against checked-in floors;
//                      exit 1 when below (skipped on <4 hardware threads)
//   --out <file>       JSON output path (default BENCH_sim_parallel.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/time.h"
#include "src/sim/sharded.h"
#include "src/sim/simulator.h"

namespace syrup {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr uint64_t kChainsPerShard = 512;
constexpr Duration kLookahead = 2 * kMicrosecond;

uint64_t Lcg(uint64_t x) {
  return x * 6364136223846793005ull + 1442695040888963407ull;
}

// Per-shard chain budget; only the owning shard's thread touches its entry.
struct alignas(64) ShardCtx {
  uint64_t remaining = 0;
  uint64_t lcg = 0;
};

// One tick of a chain currently homed on shard `s`: burn one of s's budget,
// then continue locally after 100ns..10us, or (cross_mille/1000 of the
// time) hop to the neighbor shard at lookahead distance. Chains die when
// the shard they land on has exhausted its budget, so RunToCompletion
// dispatches ~shards * events_per_shard events total.
void Tick(ShardedSim& sharded, std::vector<ShardCtx>& ctxs, int s,
          uint32_t cross_mille) {
  ShardCtx& ctx = ctxs[static_cast<size_t>(s)];
  if (ctx.remaining == 0) {
    return;
  }
  --ctx.remaining;
  ctx.lcg = Lcg(ctx.lcg);
  const Duration delay = 100 + (ctx.lcg >> 33) % 10'000;
  Simulator& sim = sharded.shard(s);
  if (cross_mille != 0 && sharded.shards() > 1 &&
      ctx.lcg % 1000 < cross_mille) {
    const int dst = (s + 1) % sharded.shards();
    sharded.Post(s, dst, sim.Now() + sharded.lookahead() + delay,
                 [&sharded, &ctxs, dst, cross_mille] {
                   Tick(sharded, ctxs, dst, cross_mille);
                 });
  } else {
    sim.ScheduleAfter(delay, [&sharded, &ctxs, s, cross_mille] {
      Tick(sharded, ctxs, s, cross_mille);
    });
  }
}

struct RunResult {
  double events_per_sec = 0;
  uint64_t dispatched = 0;
  uint64_t rounds = 0;
  uint64_t messages = 0;
};

RunResult RunScaling(int shards, uint64_t events_per_shard,
                     uint32_t cross_mille) {
  ShardedSimConfig config;
  config.shards = shards;
  config.lookahead = kLookahead;
  ShardedSim sharded(config);
  std::vector<ShardCtx> ctxs(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    ctxs[static_cast<size_t>(s)].remaining = events_per_shard;
    ctxs[static_cast<size_t>(s)].lcg =
        0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(s) << 17);
    for (uint64_t i = 0; i < kChainsPerShard; ++i) {
      sharded.shard(s).ScheduleAt(100 + i, [&sharded, &ctxs, s, cross_mille] {
        Tick(sharded, ctxs, s, cross_mille);
      });
    }
  }
  const auto start = std::chrono::steady_clock::now();
  sharded.RunToCompletion();
  const double elapsed_ns = std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  const ShardedSim::Stats stats = sharded.stats();
  RunResult r;
  r.dispatched = stats.dispatched;
  r.rounds = stats.rounds;
  r.messages = stats.messages;
  r.events_per_sec =
      static_cast<double>(stats.dispatched) / (elapsed_ns * 1e-9);
  return r;
}

bool BaselineFor(const std::string& text, const std::string& name,
                 double* out) {
  const std::string needle = "\"" + name + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  const uint64_t events_per_shard = quick ? 250'000 : 2'000'000;
  const unsigned cores = std::thread::hardware_concurrency();
  struct Scenario {
    const char* name;
    uint32_t cross_mille;
  };
  const Scenario scenarios[] = {
      {"steady", 0},
      {"cross_heavy", 300},
  };

  std::printf("# sim_parallel: sharded engine scaling (%s mode, %u hw "
              "threads, %llu events/shard)\n",
              quick ? "quick" : "full", cores,
              static_cast<unsigned long long>(events_per_shard));
  std::printf("%-12s %7s %14s %9s %10s %10s\n", "scenario", "shards",
              "events/sec", "speedup", "rounds", "messages");

  // results[scenario][shards] = events/sec; speedups vs the 1-shard row.
  std::map<std::string, std::map<int, RunResult>> results;
  for (const Scenario& sc : scenarios) {
    double base = 0;
    for (int shards : kShardCounts) {
      if (cores != 0 && static_cast<unsigned>(shards) > cores) {
        std::printf("%-12s %7d %14s (skipped: > %u hw threads)\n", sc.name,
                    shards, "-", cores);
        continue;
      }
      const RunResult r = RunScaling(shards, events_per_shard,
                                     sc.cross_mille);
      results[sc.name][shards] = r;
      if (shards == 1) {
        base = r.events_per_sec;
      }
      std::printf("%-12s %7d %14.0f %8.2fx %10llu %10llu\n", sc.name, shards,
                  r.events_per_sec,
                  base > 0 ? r.events_per_sec / base : 0.0,
                  static_cast<unsigned long long>(r.rounds),
                  static_cast<unsigned long long>(r.messages));
    }
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"sim_parallel\",\n"
               "  \"unit\": \"events_per_sec\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n  \"scenarios\": {\n",
               quick ? "quick" : "full", cores);
  size_t sc_index = 0;
  for (const auto& [name, rows] : results) {
    std::fprintf(out, "    \"%s\": {", name.c_str());
    const double base = rows.count(1) ? rows.at(1).events_per_sec : 0;
    size_t index = 0;
    for (const auto& [shards, r] : rows) {
      std::fprintf(out, "\"shards_%d\": %.0f, \"speedup_%d\": %.3f%s", shards,
                   r.events_per_sec, shards,
                   base > 0 ? r.events_per_sec / base : 0.0,
                   ++index == rows.size() ? "" : ", ");
    }
    std::fprintf(out, "}%s\n", ++sc_index == results.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  if (baseline_path == nullptr) {
    return 0;
  }
  if (cores < 4) {
    // The speedup gate measures parallel scaling; on fewer than 4 hardware
    // threads a 4-shard run cannot express it. Report, don't fail.
    std::printf("# gate_skipped: %u hw threads < 4; speedup floors not "
                "enforceable on this machine\n",
                cores);
    return 0;
  }
  std::FILE* in = std::fopen(baseline_path, "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  std::fclose(in);

  int failures = 0;
  for (const auto& [name, rows] : results) {
    const std::string key = name + "_speedup_4";
    double floor;
    if (!BaselineFor(text, key, &floor)) {
      std::fprintf(stderr, "baseline missing %s\n", key.c_str());
      ++failures;
      continue;
    }
    if (!rows.count(1) || !rows.count(4)) {
      std::fprintf(stderr, "missing 1- or 4-shard row for %s\n",
                   name.c_str());
      ++failures;
      continue;
    }
    const double speedup =
        rows.at(4).events_per_sec / rows.at(1).events_per_sec;
    if (speedup < floor) {
      std::fprintf(stderr,
                   "REGRESSION %s: 4-shard speedup %.2fx below floor %.2fx\n",
                   name.c_str(), speedup, floor);
      ++failures;
    } else {
      std::printf("# baseline ok %s: 4-shard speedup %.2fx >= %.2fx\n",
                  name.c_str(), speedup, floor);
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_sim_parallel.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
