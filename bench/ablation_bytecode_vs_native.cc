// Ablation (DESIGN.md #1): bytecode policy execution vs native mirrors.
//
// The simulation hot path uses native C++ policies; real deployments run
// verified bytecode through the interpreter. This ablation (a) confirms the
// two produce statistically identical *simulation results*, and (b)
// quantifies the per-decision execution cost gap, which is the fidelity
// price of the native fast path.
#include <chrono>
#include <cstdio>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

struct Timed {
  RocksDbResult result;
  double wall_seconds;
};

Timed RunTimed(SocketPolicyKind policy, bool bytecode, double load) {
  RocksDbExperimentConfig config;
  config.socket_policy = policy;
  config.use_bytecode = bytecode;
  config.get_fraction = 0.995;
  config.load_rps = load;
  config.measure = 600 * kMillisecond;
  config.seed = 11;
  const auto start = std::chrono::steady_clock::now();
  const RocksDbResult result = RunRocksDbExperiment(config);
  const auto stop = std::chrono::steady_clock::now();
  return {result, std::chrono::duration<double>(stop - start).count()};
}

void Run() {
  std::printf("# Ablation: native policy mirrors vs verified bytecode via "
              "syrupd (Fig. 6 workload)\n");
  std::printf("%-12s %9s | %11s %11s | %11s %11s | %9s\n", "policy",
              "load_rps", "native_p99", "bcode_p99", "native_tput",
              "bcode_tput", "sim_slowdn");
  for (SocketPolicyKind policy :
       {SocketPolicyKind::kRoundRobin, SocketPolicyKind::kSita,
        SocketPolicyKind::kScanAvoid}) {
    for (double load : {100'000.0, 250'000.0}) {
      const Timed native = RunTimed(policy, /*bytecode=*/false, load);
      const Timed bytecode = RunTimed(policy, /*bytecode=*/true, load);
      std::printf("%-12s %9.0f | %11.1f %11.1f | %11.0f %11.0f | %8.2fx\n",
                  std::string(SocketPolicyName(policy)).c_str(), load,
                  native.result.p99_us, bytecode.result.p99_us,
                  native.result.throughput_rps,
                  bytecode.result.throughput_rps,
                  bytecode.wall_seconds / native.wall_seconds);
    }
  }
  std::printf(
      "# Expectation: p99/tput columns match closely for RR and SITA "
      "(deterministic policies);\n"
      "# SCAN Avoid may differ slightly (independent random probe "
      "streams). The slowdown column\n"
      "# is the interpreter cost the native fast path avoids.\n");
}

}  // namespace
}  // namespace syrup

int main() {
  syrup::Run();
  return 0;
}
