// Ablation (DESIGN.md #1): bytecode policy execution vs native mirrors.
//
// The simulation hot path uses native C++ policies; real deployments run
// verified bytecode. This ablation (a) confirms the C++ mirror and every
// bytecode tier (interpret, compiled, compiled-paranoid, native machine
// code) produce identical *simulation results*, and (b) quantifies the
// per-decision execution cost gap and how much of it the compiled and
// native-JIT tiers recover.
//
//   --quick  single policy / single load / short windows (CI smoke run)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/apps/experiments.h"

namespace syrup {
namespace {

struct Timed {
  RocksDbResult result;
  double wall_seconds;
};

Timed RunTimed(SocketPolicyKind policy, bool bytecode, bpf::ExecMode mode,
               double load, Duration measure) {
  RocksDbExperimentConfig config;
  config.socket_policy = policy;
  config.use_bytecode = bytecode;
  config.exec_mode = mode;
  config.get_fraction = 0.995;
  config.load_rps = load;
  config.measure = measure;
  config.seed = 11;
  const auto start = std::chrono::steady_clock::now();
  const RocksDbResult result = RunRocksDbExperiment(config);
  const auto stop = std::chrono::steady_clock::now();
  return {result, std::chrono::duration<double>(stop - start).count()};
}

bool SameResults(const RocksDbResult& a, const RocksDbResult& b) {
  return a.p99_us == b.p99_us && a.throughput_rps == b.throughput_rps &&
         a.drop_fraction == b.drop_fraction;
}

void Run(bool quick) {
  const Duration measure = quick ? 150 * kMillisecond : 600 * kMillisecond;
  std::printf("# Ablation: native policy mirrors vs verified bytecode via "
              "syrupd (Fig. 6 workload)%s\n", quick ? " [--quick]" : "");
  std::printf("%-12s %9s | %11s %11s | %11s %11s | %7s %7s %7s %7s | %9s "
              "%9s %5s\n",
              "policy", "load_rps", "native_p99", "bcode_p99", "native_tput",
              "bcode_tput", "interp", "compld", "parand", "jit",
              "cmp_recov", "jit_recov", "ident");
  bool all_identical = true;
  const auto policies =
      quick ? std::vector<SocketPolicyKind>{SocketPolicyKind::kRoundRobin}
            : std::vector<SocketPolicyKind>{SocketPolicyKind::kRoundRobin,
                                            SocketPolicyKind::kSita,
                                            SocketPolicyKind::kScanAvoid};
  const auto loads = quick ? std::vector<double>{100'000.0}
                           : std::vector<double>{100'000.0, 250'000.0};
  for (SocketPolicyKind policy : policies) {
    for (double load : loads) {
      const Timed native = RunTimed(policy, /*bytecode=*/false,
                                    bpf::ExecMode::kCompiled, load, measure);
      const Timed interp = RunTimed(policy, /*bytecode=*/true,
                                    bpf::ExecMode::kInterpret, load, measure);
      const Timed compiled = RunTimed(policy, /*bytecode=*/true,
                                      bpf::ExecMode::kCompiled, load, measure);
      const Timed paranoid =
          RunTimed(policy, /*bytecode=*/true,
                   bpf::ExecMode::kCompiledParanoid, load, measure);
      const Timed jit = RunTimed(policy, /*bytecode=*/true,
                                 bpf::ExecMode::kNative, load, measure);

      // Wall-clock slowdown of each bytecode tier over the native mirror,
      // and the share of the interpreter-vs-native gap the compiled and
      // machine-code tiers recover (1.0 = as cheap as the C++ mirror).
      const double interp_slow = interp.wall_seconds / native.wall_seconds;
      const double compiled_slow =
          compiled.wall_seconds / native.wall_seconds;
      const double paranoid_slow =
          paranoid.wall_seconds / native.wall_seconds;
      const double jit_slow = jit.wall_seconds / native.wall_seconds;
      const double gap = interp.wall_seconds - native.wall_seconds;
      const double recovered =
          gap > 0 ? (interp.wall_seconds - compiled.wall_seconds) / gap : 0;
      const double jit_recovered =
          gap > 0 ? (interp.wall_seconds - jit.wall_seconds) / gap : 0;

      // Same seed, same decisions: every bytecode tier must land on the
      // same simulated outcome to the bit.
      const bool identical = SameResults(interp.result, compiled.result) &&
                             SameResults(compiled.result, paranoid.result) &&
                             SameResults(compiled.result, jit.result);
      all_identical = all_identical && identical;

      std::printf("%-12s %9.0f | %11.1f %11.1f | %11.0f %11.0f | %6.2fx "
                  "%6.2fx %6.2fx %6.2fx | %8.0f%% %8.0f%% %5s\n",
                  std::string(SocketPolicyName(policy)).c_str(), load,
                  native.result.p99_us, compiled.result.p99_us,
                  native.result.throughput_rps,
                  compiled.result.throughput_rps, interp_slow, compiled_slow,
                  paranoid_slow, jit_slow, recovered * 100,
                  jit_recovered * 100, identical ? "yes" : "NO");
    }
  }
  std::printf(
      "# interp/compld/parand/jit: simulation wall-clock vs the native "
      "mirror per execution tier.\n"
      "# cmp_recov/jit_recov: share of the interpreter-vs-native cost gap "
      "the compiled / machine-code tier closes.\n"
      "# ident: all four bytecode tiers produced bit-identical results.\n");
  if (!all_identical) {
    std::printf("# FAILURE: execution tiers disagreed on simulation "
                "results\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  syrup::Run(quick);
  return 0;
}
