// Map data-plane scaling: the swiss-table HashMap against the legacy
// chained map across entry counts, under contended reads, and through the
// batched lookup path, machine-readable.
//
// Three scenarios:
//
//   lookup_ns       single-thread random Lookup ns/op at 1k / 64k / 1M
//                   entries, swiss vs chained. At 1k both live in cache;
//                   at 1M every probe is a memory walk, where the swiss
//                   table's single-array layout (one line for 16 tags)
//                   beats the chained map's pointer chase.
//   contended_read  4 reader threads on the 1M-entry swiss map: the
//                   lock-free path (seqlock-validated probes, no shared
//                   writes) vs the same lookups serialized through one
//                   mutex — the shape the old bucket-locked map degraded
//                   to under read contention.
//   batch           LookupBatch(32) vs 32 sequential Lookups on the
//                   1M-entry map; the batch path pipelines hash+prefetch
//                   ahead of the probes so the memory walks overlap.
//
// Writes `BENCH_map_scale.json`. `--baseline <file>` gates against the
// checked-in floors: lock-free contended reads >= 3x the mutex baseline
// (needs >= 4 hardware threads; reports itself skipped otherwise), swiss
// no slower than chained at 1M entries, and the batch path no slower than
// sequential lookups.
//
// Flags:
//   --quick            ~6x fewer measured ops (CI smoke mode)
//   --baseline <file>  compare against checked-in floors; exit 1 when below
//   --out <file>       JSON output path (default BENCH_map_scale.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/map/chained_hash_map.h"
#include "src/map/hash_map.h"

namespace syrup {
namespace {

constexpr uint32_t kContendedThreads = 4;

struct SizePoint {
  const char* label;
  uint32_t entries;
};
constexpr SizePoint kSizes[] = {
    {"1k", 1'000},
    {"64k", 64'000},
    {"1m", 1'000'000},
};

std::unique_ptr<Map> MakeMap(bool swiss, uint32_t entries) {
  MapSpec spec;
  spec.type = MapType::kHash;
  spec.max_entries = entries;
  spec.name = swiss ? "swiss" : "chained";
  std::unique_ptr<Map> map;
  if (swiss) {
    map = std::make_unique<HashMap>(spec);
  } else {
    map = std::make_unique<ChainedHashMap>(spec);
  }
  for (uint32_t key = 0; key < entries; ++key) {
    (void)map->UpdateU64(key, key);
  }
  return map;
}

double MeasureLookupNs(Map& map, uint32_t entries, int iters) {
  Rng rng(9);
  volatile uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(entries));
    void* value = map.Lookup(&key);
    if (value != nullptr) {
      sink = sink + Map::AtomicLoad(value);
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// Aggregate Mops/sec of `threads` readers hammering random keys. With
// `serialize` each Lookup goes through one shared mutex — the degenerate
// shape the lock-free read path exists to avoid; the map underneath is
// identical either way, so the delta is pure synchronization.
double MeasureContendedMops(Map& map, uint32_t entries, int iters_per_thread,
                            unsigned threads, bool serialize) {
  std::mutex mu;
  std::vector<std::thread> readers;
  readers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    readers.emplace_back([&map, &mu, entries, iters_per_thread, serialize,
                          t]() {
      Rng rng(100 + t);
      volatile uint64_t sink = 0;
      for (int i = 0; i < iters_per_thread; ++i) {
        const uint32_t key = static_cast<uint32_t>(rng.NextBounded(entries));
        if (serialize) {
          std::lock_guard<std::mutex> lock(mu);
          void* value = map.Lookup(&key);
          if (value != nullptr) {
            sink = sink + Map::AtomicLoad(value);
          }
        } else {
          void* value = map.Lookup(&key);
          if (value != nullptr) {
            sink = sink + Map::AtomicLoad(value);
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  const double elapsed_ns = std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  return static_cast<double>(iters_per_thread) * threads / (elapsed_ns * 1e-3);
}

struct BatchResult {
  double batch_ns_per_key = 0;
  double sequential_ns_per_key = 0;
};

BatchResult MeasureBatch(Map& map, uint32_t entries, int rounds) {
  constexpr uint32_t kBatch = Map::kMaxLookupBatch;
  BatchResult result;
  uint32_t keys[kBatch];
  void* values[kBatch];
  for (int pass = 0; pass < 2; ++pass) {
    const bool batched = pass == 0;
    Rng rng(21);
    volatile uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      for (uint32_t i = 0; i < kBatch; ++i) {
        keys[i] = static_cast<uint32_t>(rng.NextBounded(entries));
      }
      if (batched) {
        map.LookupBatch(kBatch, keys, values);
        for (uint32_t i = 0; i < kBatch; ++i) {
          if (values[i] != nullptr) {
            sink = sink + Map::AtomicLoad(values[i]);
          }
        }
      } else {
        for (uint32_t i = 0; i < kBatch; ++i) {
          void* value = map.Lookup(&keys[i]);
          if (value != nullptr) {
            sink = sink + Map::AtomicLoad(value);
          }
        }
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ns_per_key =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        (static_cast<double>(rounds) * kBatch);
    if (batched) {
      result.batch_ns_per_key = ns_per_key;
    } else {
      result.sequential_ns_per_key = ns_per_key;
    }
  }
  return result;
}

bool BaselineFor(const std::string& text, const std::string& name,
                 double* out) {
  const std::string needle = "\"" + name + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  const int lookup_iters = quick ? 300'000 : 2'000'000;
  const int contended_iters = quick ? 400'000 : 2'000'000;
  const int batch_rounds = quick ? 20'000 : 120'000;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("# map_scale: swiss-table data plane (%s mode, %u hw threads)\n",
              quick ? "quick" : "full", cores);

  // lookup_ns: swiss vs chained at each size.
  std::printf("%-10s %14s %14s %9s\n", "entries", "swiss ns/op",
              "chained ns/op", "ratio");
  double swiss_ns[std::size(kSizes)];
  double chained_ns[std::size(kSizes)];
  std::unique_ptr<Map> swiss_1m;  // reused by the contended + batch runs
  for (size_t i = 0; i < std::size(kSizes); ++i) {
    std::unique_ptr<Map> swiss = MakeMap(/*swiss=*/true, kSizes[i].entries);
    std::unique_ptr<Map> chained = MakeMap(/*swiss=*/false, kSizes[i].entries);
    swiss_ns[i] = MeasureLookupNs(*swiss, kSizes[i].entries, lookup_iters);
    chained_ns[i] = MeasureLookupNs(*chained, kSizes[i].entries, lookup_iters);
    std::printf("%-10s %14.1f %14.1f %8.2fx\n", kSizes[i].label, swiss_ns[i],
                chained_ns[i], chained_ns[i] / swiss_ns[i]);
    if (kSizes[i].entries == 1'000'000) {
      swiss_1m = std::move(swiss);
    }
  }

  // contended_read: lock-free vs mutex-serialized, same map, same keys.
  const uint32_t big = kSizes[std::size(kSizes) - 1].entries;
  const double lockfree_mops = MeasureContendedMops(
      *swiss_1m, big, contended_iters, kContendedThreads, /*serialize=*/false);
  const double mutex_mops = MeasureContendedMops(
      *swiss_1m, big, contended_iters, kContendedThreads, /*serialize=*/true);
  const double contended_speedup = lockfree_mops / mutex_mops;
  std::printf("# contended_read (%u threads, 1M entries): lock-free %.2f "
              "Mops, mutex %.2f Mops, %.2fx\n",
              kContendedThreads, lockfree_mops, mutex_mops, contended_speedup);

  // batch: pipelined LookupBatch vs sequential probes.
  const BatchResult batch = MeasureBatch(*swiss_1m, big, batch_rounds);
  const double batch_speedup =
      batch.sequential_ns_per_key / batch.batch_ns_per_key;
  std::printf("# batch (32 keys, 1M entries): batched %.1f ns/key, "
              "sequential %.1f ns/key, %.2fx\n",
              batch.batch_ns_per_key, batch.sequential_ns_per_key,
              batch_speedup);

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"map_scale\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n  \"scenarios\": {\n",
               quick ? "quick" : "full", cores);
  std::fprintf(out, "    \"lookup_ns\": {");
  for (size_t i = 0; i < std::size(kSizes); ++i) {
    std::fprintf(out, "\"swiss_%s\": %.1f, \"chained_%s\": %.1f%s",
                 kSizes[i].label, swiss_ns[i], kSizes[i].label, chained_ns[i],
                 i + 1 == std::size(kSizes) ? "" : ", ");
  }
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "    \"contended_read\": {\"lockfree_mops_%u\": %.2f, "
               "\"mutex_mops_%u\": %.2f, \"speedup_%u\": %.3f},\n",
               kContendedThreads, lockfree_mops, kContendedThreads,
               mutex_mops, kContendedThreads, contended_speedup);
  std::fprintf(out,
               "    \"batch\": {\"batch_ns_per_key\": %.1f, "
               "\"sequential_ns_per_key\": %.1f, \"speedup\": %.3f}\n",
               batch.batch_ns_per_key, batch.sequential_ns_per_key,
               batch_speedup);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  if (baseline_path == nullptr) {
    return 0;
  }
  std::FILE* in = std::fopen(baseline_path, "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  std::fclose(in);

  int failures = 0;
  const auto gate = [&text, &failures](const char* key, double measured,
                                       const char* what) {
    double floor;
    if (!BaselineFor(text, key, &floor)) {
      std::fprintf(stderr, "baseline missing %s\n", key);
      ++failures;
      return;
    }
    if (measured < floor) {
      std::fprintf(stderr, "REGRESSION %s: %s %.2fx below floor %.2fx\n", key,
                   what, measured, floor);
      ++failures;
    } else {
      std::printf("# baseline ok %s: %s %.2fx >= %.2fx\n", key, what,
                  measured, floor);
    }
  };
  if (cores < kContendedThreads) {
    // The contended gate measures reader parallelism; with fewer hardware
    // threads the mutex baseline is not actually contended and the ratio
    // says nothing. Report, don't fail.
    std::printf("# gate_skipped contended_read_speedup_4: %u hw threads < "
                "%u\n",
                cores, kContendedThreads);
  } else {
    gate("contended_read_speedup_4", contended_speedup,
         "lock-free vs mutex reads");
  }
  gate("lookup_vs_chained_1m",
       chained_ns[std::size(kSizes) - 1] / swiss_ns[std::size(kSizes) - 1],
       "swiss vs chained 1M-entry lookup");
  gate("batch_speedup", batch_speedup, "batched vs sequential lookups");
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_map_scale.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
