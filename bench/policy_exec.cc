// Per-decision policy execution cost, by tier, machine-readable.
//
// Runs each builtin socket policy through the four bytecode execution tiers
// (interpret, compiled, compiled-paranoid, native machine code) and the
// trusted C++ mirror ("cpp"), then writes `BENCH_policy_exec.json`
// (mode -> ns/decision per policy) so the perf trajectory is tracked across
// PRs. Human-readable numbers go to stdout.
//
// Gates (exit 1 on failure):
//   * --baseline <file>: each policy's compiled and native ns/decision may
//     not regress more than 25% against the checked-in baseline
//     (bench/policy_exec_baseline.json), mirroring sim_events.
//   * always, when the JIT engaged: native must not be slower than the
//     compiled tier beyond noise (native <= compiled * 1.10) — the tier
//     exists to be faster, and this gate is machine-independent.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/bpf/jit.h"
#include "src/bpf/verifier.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

constexpr int kWarmupIters = 10'000;
constexpr int kMeasureIters = 400'000;

bpf::Program LoadProgram(const std::string& source) {
  auto assembled = bpf::Assemble(source).value();
  bpf::Program prog;
  prog.name = assembled.name;
  prog.insns = assembled.insns;
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    prog.maps.push_back(CreateMap(slot.spec).value());
    // The policies that read maps expect the owning app to have seeded
    // them; give every slot a few plausible entries so lookups hit.
    for (uint32_t key = 1; key <= 4; ++key) {
      (void)prog.maps.back()->UpdateU64(key, key == 2 ? 1 : 1'000'000);
    }
  }
  return prog;
}

std::vector<Packet> MakeWorkload() {
  Rng rng(42);
  std::vector<Packet> packets;
  packets.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    Packet pkt;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + rng.NextBounded(50));
    pkt.tuple.dst_port = 9000;
    const ReqType type =
        rng.NextBounded(200) == 0 ? ReqType::kScan : ReqType::kGet;
    pkt.SetHeader(type, 1 + static_cast<uint32_t>(rng.NextBounded(2)),
                  static_cast<uint32_t>(rng.Next()), i, 0);
    packets.push_back(pkt);
  }
  return packets;
}

bpf::ExecEnv BenchEnv() {
  bpf::ExecEnv env;
  auto rng = std::make_shared<Rng>(7);
  env.random_u32 = [rng]() { return static_cast<uint32_t>(rng->Next()); };
  auto clock = std::make_shared<uint64_t>(0);
  env.ktime_ns = [clock]() { return *clock += 1'000; };
  return env;
}

// One timed loop shape for all tiers so the comparison is apples-to-apples.
template <typename Decide>
double MeasureNs(const std::vector<Packet>& packets, int iters,
                 Decide&& decide) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < kWarmupIters; ++i) {
    sink += decide(packets[i % packets.size()]);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += decide(packets[i % packets.size()]);
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// Pulls `"<mode>": <number>` out of the named policy's baseline block. The
// file is small, checked in, and written by this binary's own formatter, so
// an ad-hoc two-level scan beats a JSON parser (same stance as sim_events).
bool BaselineFor(const std::string& text, const std::string& policy,
                 const char* mode, double* out) {
  const std::string policy_needle = "\"" + policy + "\":";
  const size_t policy_pos = text.find(policy_needle);
  if (policy_pos == std::string::npos) {
    return false;
  }
  const std::string mode_needle = std::string("\"") + mode + "\":";
  const size_t mode_pos = text.find(mode_needle, policy_pos);
  if (mode_pos == std::string::npos) {
    return false;
  }
  return std::sscanf(text.c_str() + mode_pos + mode_needle.size(), " %lf",
                     out) == 1;
}

int Run(bool quick, const char* out_path, const char* baseline_path) {
  struct PolicyUnderTest {
    const char* name;
    std::string asm_source;
    std::shared_ptr<PacketPolicy> cpp;
  };
  auto rng = std::make_shared<Rng>(3);
  std::vector<PolicyUnderTest> policies;
  policies.push_back({"round_robin", RoundRobinPolicyAsm(6),
                      std::make_shared<RoundRobinPolicy>(6)});
  policies.push_back(
      {"sita", SitaPolicyAsm(6), std::make_shared<SitaPolicy>(6)});
  {
    MapSpec scan_spec;
    scan_spec.type = MapType::kArray;
    scan_spec.max_entries = 6;
    auto scan_map = CreateMap(scan_spec).value();
    (void)scan_map->UpdateU64(2, static_cast<uint64_t>(ReqType::kScan));
    policies.push_back(
        {"scan_avoid", ScanAvoidPolicyAsm(6),
         std::make_shared<ScanAvoidPolicy>(6, scan_map, [rng]() {
           return static_cast<uint32_t>(rng->Next());
         })});
  }
  {
    MapSpec token_spec;
    token_spec.type = MapType::kHash;
    token_spec.max_entries = 64;
    auto token_map = CreateMap(token_spec).value();
    for (uint32_t user = 1; user <= 2; ++user) {
      (void)token_map->UpdateU64(user, 1'000'000'000);
    }
    policies.push_back({"token", TokenPolicyAsm(),
                        std::make_shared<TokenPolicy>(token_map)});
  }

  const auto workload = MakeWorkload();
  const int iters = quick ? kMeasureIters / 10 : kMeasureIters;
  // policy -> mode -> ns/decision (std::map keeps the JSON key order
  // deterministic across runs).
  std::map<std::string, std::map<std::string, double>> results;
  bool jit_engaged = bpf::JitAvailable();

  std::printf("# policy_exec: per-decision cost by execution tier (%s)\n",
              quick ? "quick" : "full");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "policy", "interpret",
              "compiled", "paranoid", "native", "cpp");
  for (const auto& put : policies) {
    bpf::Program prog = LoadProgram(put.asm_source);
    bpf::Interpreter interp(BenchEnv());
    bpf::CompiledExecutor exec(BenchEnv());
    bpf::CompiledProgram compiled =
        bpf::Compile(prog, bpf::ProgramContext::kPacket).value();
    bpf::CompileOptions paranoid_options;
    paranoid_options.paranoid = true;
    bpf::CompiledProgram paranoid =
        bpf::Compile(prog, bpf::ProgramContext::kPacket, paranoid_options)
            .value();
    // The native tier: same artifact with machine code attached. On an
    // unsupported host the JIT refuses and the column degrades to the
    // compiled tier, exactly like a syrupd deployment.
    bpf::CompiledProgram native = compiled;
    auto jit = bpf::JitCompile(native);
    if (jit.ok()) {
      native.native = std::move(jit).value();
    } else {
      jit_engaged = false;
    }

    auto run_tier = [&](const bpf::CompiledProgram& artifact) {
      return MeasureNs(workload, iters, [&](const Packet& pkt) {
        return exec
            .Run(artifact, reinterpret_cast<uint64_t>(pkt.wire.data()),
                 reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                 true)
            .value()
            .r0;
      });
    };
    auto& row = results[put.name];
    row["interpret"] = MeasureNs(workload, iters, [&](const Packet& pkt) {
      return interp
          .Run(prog, reinterpret_cast<uint64_t>(pkt.wire.data()),
               reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize), true)
          .value()
          .r0;
    });
    row["compiled"] = run_tier(compiled);
    row["compiled-paranoid"] = run_tier(paranoid);
    row["native"] = run_tier(native);
    row["cpp"] = MeasureNs(workload, iters, [&](const Packet& pkt) {
      return put.cpp->Schedule(PacketView::Of(pkt));
    });
    std::printf("%-12s %9.1f %9.1f %9.1f %9.1f %9.1f   (ns/decision)\n",
                put.name, row["interpret"], row["compiled"],
                row["compiled-paranoid"], row["native"], row["cpp"]);

    // Cross-validation of the static cost model: the verifier's wcet with
    // the checked-in DefaultCostModel (the deploy gate's tables) next to
    // what this machine measured. Informational — the hard soundness check
    // (measured <= calibrated wcet) lives in bpf_cost_model_test; here the
    // ratio tracks how tight the default tables are over time. The JSON
    // keys are "wcet."-prefixed so BaselineFor's `"<mode>":` scan never
    // confuses a bound with a measurement.
    bpf::AnalysisFacts facts;
    if (bpf::Verify(prog, bpf::ProgramContext::kPacket, {}, nullptr, &facts)
            .ok() &&
        facts.cost.bounded) {
      const double* wcet = facts.cost.wcet_ns;
      row["wcet.interpret"] = wcet[0];
      row["wcet.compiled"] = wcet[1];
      row["wcet.native"] = wcet[2];
      std::printf("%-12s %9.1f %9.1f %19.1f          "
                  " (static wcet; measured/wcet %.2f/%.2f/%.2f)\n",
                  "  wcet", wcet[0], wcet[1], wcet[2],
                  row["interpret"] / wcet[0], row["compiled"] / wcet[1],
                  row["native"] / wcet[2]);
    }
  }
  if (!jit_engaged) {
    std::printf("# note: JIT unavailable; native column ran the compiled "
                "tier (fallback)\n");
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"policy_exec\",\n"
                    "  \"unit\": \"ns_per_decision\",\n  \"policies\": {\n");
  size_t policy_index = 0;
  for (const auto& [policy, modes] : results) {
    std::fprintf(out, "    \"%s\": {", policy.c_str());
    size_t mode_index = 0;
    for (const auto& [mode, ns] : modes) {
      std::fprintf(out, "%s\"%s\": %.2f",
                   mode_index++ == 0 ? "" : ", ", mode.c_str(), ns);
    }
    std::fprintf(out, "}%s\n", ++policy_index == results.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);

  int failures = 0;
  // Relative gate, no baseline needed: with real machine code published,
  // native must at least keep up with the bytecode loop it replaces.
  if (jit_engaged) {
    constexpr double kNativeVsCompiled = 1.10;
    for (const auto& [policy, modes] : results) {
      const double compiled_ns = modes.at("compiled");
      const double native_ns = modes.at("native");
      if (native_ns > compiled_ns * kNativeVsCompiled) {
        std::fprintf(stderr,
                     "REGRESSION %s: native %.1f ns/decision vs compiled "
                     "%.1f (limit %.1f)\n",
                     policy.c_str(), native_ns, compiled_ns,
                     compiled_ns * kNativeVsCompiled);
        ++failures;
      }
    }
  }

  if (baseline_path != nullptr) {
    std::FILE* in = std::fopen(baseline_path, "r");
    if (in == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path);
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      text.append(buf, n);
    }
    std::fclose(in);

    constexpr double kTolerance = 1.25;  // fail on >25% regression
    // The hot tiers are the ones deployments actually run on; interpret
    // and paranoid exist for ablation and are too slow-moving to gate.
    const char* gated_modes[] = {"compiled", "native"};
    for (const auto& [policy, modes] : results) {
      for (const char* mode : gated_modes) {
        double baseline_ns;
        if (!BaselineFor(text, policy, mode, &baseline_ns)) {
          std::fprintf(stderr, "baseline missing %s/%s\n", policy.c_str(),
                       mode);
          ++failures;
          continue;
        }
        const double got = modes.at(mode);
        if (got > baseline_ns * kTolerance) {
          std::fprintf(stderr,
                       "REGRESSION %s/%s: %.1f ns/decision vs baseline %.1f "
                       "(limit %.1f)\n",
                       policy.c_str(), mode, got, baseline_ns,
                       baseline_ns * kTolerance);
          ++failures;
        } else {
          std::printf("# baseline ok %s/%s: %.1f ns/decision <= %.1f\n",
                      policy.c_str(), mode, got, baseline_ns * kTolerance);
        }
      }
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  bool quick = false;
  const char* out_path = "BENCH_policy_exec.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] != '-') {
      out_path = argv[i];  // positional output path (pre-flag interface)
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--baseline <file>] [--out <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  return syrup::Run(quick, out_path, baseline_path);
}
