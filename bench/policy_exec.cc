// Per-decision policy execution cost, by tier, machine-readable.
//
// Runs each builtin socket policy through the three bytecode execution
// tiers (interpret, compiled, compiled-paranoid) and the native C++ mirror,
// then writes `BENCH_policy_exec.json` (mode -> ns/decision per policy) so
// the perf trajectory is tracked across PRs. Human-readable numbers go to
// stdout; pass an argument to override the JSON output path.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bpf/assembler.h"
#include "src/bpf/compiler.h"
#include "src/bpf/interpreter.h"
#include "src/common/rng.h"
#include "src/map/map.h"
#include "src/net/packet.h"
#include "src/policies/builtin.h"

namespace syrup {
namespace {

constexpr int kWarmupIters = 10'000;
constexpr int kMeasureIters = 400'000;

bpf::Program LoadProgram(const std::string& source) {
  auto assembled = bpf::Assemble(source).value();
  bpf::Program prog;
  prog.name = assembled.name;
  prog.insns = assembled.insns;
  for (const bpf::MapSlot& slot : assembled.map_slots) {
    prog.maps.push_back(CreateMap(slot.spec).value());
    // The policies that read maps expect the owning app to have seeded
    // them; give every slot a few plausible entries so lookups hit.
    for (uint32_t key = 1; key <= 4; ++key) {
      (void)prog.maps.back()->UpdateU64(key, key == 2 ? 1 : 1'000'000);
    }
  }
  return prog;
}

std::vector<Packet> MakeWorkload() {
  Rng rng(42);
  std::vector<Packet> packets;
  packets.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    Packet pkt;
    pkt.tuple.src_port = static_cast<uint16_t>(20'000 + rng.NextBounded(50));
    pkt.tuple.dst_port = 9000;
    const ReqType type =
        rng.NextBounded(200) == 0 ? ReqType::kScan : ReqType::kGet;
    pkt.SetHeader(type, 1 + static_cast<uint32_t>(rng.NextBounded(2)),
                  static_cast<uint32_t>(rng.Next()), i, 0);
    packets.push_back(pkt);
  }
  return packets;
}

bpf::ExecEnv BenchEnv() {
  bpf::ExecEnv env;
  auto rng = std::make_shared<Rng>(7);
  env.random_u32 = [rng]() { return static_cast<uint32_t>(rng->Next()); };
  auto clock = std::make_shared<uint64_t>(0);
  env.ktime_ns = [clock]() { return *clock += 1'000; };
  return env;
}

// One timed loop shape for all tiers so the comparison is apples-to-apples.
template <typename Decide>
double MeasureNs(const std::vector<Packet>& packets, Decide&& decide) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < kWarmupIters; ++i) {
    sink += decide(packets[i % packets.size()]);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kMeasureIters; ++i) {
    sink += decide(packets[i % packets.size()]);
  }
  const auto stop = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         kMeasureIters;
}

void Run(const char* out_path) {
  struct PolicyUnderTest {
    const char* name;
    std::string asm_source;
    std::shared_ptr<PacketPolicy> native;
  };
  auto rng = std::make_shared<Rng>(3);
  std::vector<PolicyUnderTest> policies;
  policies.push_back({"round_robin", RoundRobinPolicyAsm(6),
                      std::make_shared<RoundRobinPolicy>(6)});
  policies.push_back(
      {"sita", SitaPolicyAsm(6), std::make_shared<SitaPolicy>(6)});
  {
    MapSpec scan_spec;
    scan_spec.type = MapType::kArray;
    scan_spec.max_entries = 6;
    auto scan_map = CreateMap(scan_spec).value();
    (void)scan_map->UpdateU64(2, static_cast<uint64_t>(ReqType::kScan));
    policies.push_back(
        {"scan_avoid", ScanAvoidPolicyAsm(6),
         std::make_shared<ScanAvoidPolicy>(6, scan_map, [rng]() {
           return static_cast<uint32_t>(rng->Next());
         })});
  }
  {
    MapSpec token_spec;
    token_spec.type = MapType::kHash;
    token_spec.max_entries = 64;
    auto token_map = CreateMap(token_spec).value();
    for (uint32_t user = 1; user <= 2; ++user) {
      (void)token_map->UpdateU64(user, 1'000'000'000);
    }
    policies.push_back({"token", TokenPolicyAsm(),
                        std::make_shared<TokenPolicy>(token_map)});
  }

  const auto workload = MakeWorkload();
  // policy -> mode -> ns/decision (std::map keeps the JSON key order
  // deterministic across runs).
  std::map<std::string, std::map<std::string, double>> results;

  std::printf("# policy_exec: per-decision cost by execution tier\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "policy", "interpret",
              "compiled", "paranoid", "native");
  for (const auto& put : policies) {
    bpf::Program prog = LoadProgram(put.asm_source);
    bpf::Interpreter interp(BenchEnv());
    bpf::CompiledExecutor exec(BenchEnv());
    bpf::CompiledProgram compiled =
        bpf::Compile(prog, bpf::ProgramContext::kPacket).value();
    bpf::CompileOptions paranoid_options;
    paranoid_options.paranoid = true;
    bpf::CompiledProgram paranoid =
        bpf::Compile(prog, bpf::ProgramContext::kPacket, paranoid_options)
            .value();

    auto& row = results[put.name];
    row[std::string(bpf::ExecModeName(bpf::ExecMode::kInterpret))] =
        MeasureNs(workload, [&](const Packet& pkt) {
          return interp
              .Run(prog, reinterpret_cast<uint64_t>(pkt.wire.data()),
                   reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                   true)
              .value()
              .r0;
        });
    row[std::string(bpf::ExecModeName(bpf::ExecMode::kCompiled))] =
        MeasureNs(workload, [&](const Packet& pkt) {
          return exec
              .Run(compiled, reinterpret_cast<uint64_t>(pkt.wire.data()),
                   reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                   true)
              .value()
              .r0;
        });
    row[std::string(bpf::ExecModeName(bpf::ExecMode::kCompiledParanoid))] =
        MeasureNs(workload, [&](const Packet& pkt) {
          return exec
              .Run(paranoid, reinterpret_cast<uint64_t>(pkt.wire.data()),
                   reinterpret_cast<uint64_t>(pkt.wire.data() + kWireSize),
                   true)
              .value()
              .r0;
        });
    row["native"] = MeasureNs(workload, [&](const Packet& pkt) {
      return put.native->Schedule(PacketView::Of(pkt));
    });
    std::printf("%-12s %9.1f %9.1f %9.1f %9.1f   (ns/decision)\n", put.name,
                row["interpret"], row["compiled"], row["compiled-paranoid"],
                row["native"]);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"policy_exec\",\n"
                    "  \"unit\": \"ns_per_decision\",\n  \"policies\": {\n");
  size_t policy_index = 0;
  for (const auto& [policy, modes] : results) {
    std::fprintf(out, "    \"%s\": {", policy.c_str());
    size_t mode_index = 0;
    for (const auto& [mode, ns] : modes) {
      std::fprintf(out, "%s\"%s\": %.2f",
                   mode_index++ == 0 ? "" : ", ", mode.c_str(), ns);
    }
    std::fprintf(out, "}%s\n", ++policy_index == results.size() ? "" : ",");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path);
}

}  // namespace
}  // namespace syrup

int main(int argc, char** argv) {
  syrup::Run(argc > 1 ? argv[1] : "BENCH_policy_exec.json");
  return 0;
}
