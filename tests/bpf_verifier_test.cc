// Verifier tests: every rejection class the paper's isolation story relies
// on (§4.3), plus acceptance of all shipped policies.
#include <gtest/gtest.h>

#include "src/bpf/assembler.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/map/map.h"
#include "src/policies/builtin.h"

namespace syrup::bpf {
namespace {

// Assembles `source`, resolving declared maps with freshly created ones.
// Extern maps (tests have no registry) become u32 -> u64 arrays of 8 slots.
Program Load(std::string_view source) {
  auto assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.status();
  Program prog;
  prog.name = assembled->name;
  prog.insns = assembled->insns;
  for (const MapSlot& slot : assembled->map_slots) {
    MapSpec spec = slot.spec;
    if (slot.is_extern) {
      spec = MapSpec{};
      spec.type = MapType::kArray;
      spec.max_entries = 8;
      spec.name = slot.name;
    }
    prog.maps.push_back(CreateMap(spec).value());
  }
  return prog;
}

Status VerifyPacket(std::string_view source) {
  return Verify(Load(source), ProgramContext::kPacket);
}

testing::AssertionResult Rejects(std::string_view source,
                                 std::string_view why) {
  const Status status = VerifyPacket(source);
  if (status.ok()) {
    return testing::AssertionFailure() << "program unexpectedly verified";
  }
  if (status.message().find(why) == std::string::npos) {
    return testing::AssertionFailure()
           << "expected rejection reason '" << why << "', got: "
           << status.ToString();
  }
  return testing::AssertionSuccess();
}

// --- acceptance ------------------------------------------------------------------

TEST(Verifier, AcceptsTrivialProgram) {
  EXPECT_TRUE(VerifyPacket("mov r0, 0\nexit\n").ok());
}

TEST(Verifier, AcceptsBoundsCheckedPacketRead) {
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r0, [r1+0]
    exit
  out:
    mov r0, PASS
    exit
  )").ok());
}

TEST(Verifier, AcceptsReversedBoundsCompare) {
  // `if (pkt_end >= pkt + 8) read;` — refinement on the taken edge.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 8
    jge r2, r3, read
    mov r0, PASS
    exit
  read:
    ldxdw r0, [r1+0]
    exit
  )").ok());
}

TEST(Verifier, AcceptsNullCheckedMapDeref) {
  EXPECT_TRUE(VerifyPacket(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    ldxdw r0, [r0+0]
    exit
  out:
    mov r0, 0
    exit
  )").ok());
}

TEST(Verifier, AcceptsBoundedLoop) {
  EXPECT_TRUE(VerifyPacket(R"(
    mov r6, 0
    mov r0, 0
  loop:
    jge r6, 16, done
    add r0, 2
    add r6, 1
    ja loop
  done:
    exit
  )").ok());
}

TEST(Verifier, AcceptsAllShippedPolicies) {
  for (const std::string& source :
       {RoundRobinPolicyAsm(6), HashPolicyAsm(6), ScanAvoidPolicyAsm(6),
        SitaPolicyAsm(6), TokenPolicyAsm(), MicaHomePolicyAsm(8),
        ConstIndexPolicyAsm(0), VarHeaderPolicyAsm(4)}) {
    EXPECT_TRUE(VerifyPacket(source).ok())
        << "policy failed verification:\n" << source
        << "\n" << VerifyPacket(source).ToString();
  }
}

TEST(Verifier, AcceptsThreadContextScalars) {
  Program prog = Load(R"(
    .ctx thread
    mov r0, r1
    add r0, r2
    exit
  )");
  EXPECT_TRUE(Verify(prog, ProgramContext::kThread).ok());
}

TEST(Verifier, ReportsStats) {
  Program prog = Load("mov r0, 0\nexit\n");
  VerifierStats stats;
  ASSERT_TRUE(Verify(prog, ProgramContext::kPacket, {}, &stats).ok());
  EXPECT_EQ(stats.visited_insns, 2u);
}

// --- rejections -------------------------------------------------------------------

TEST(Verifier, RejectsPacketReadWithoutBoundsCheck) {
  // The reason the paper passes (pkt_start, pkt_end) pairs: unchecked
  // dereference must not load.
  EXPECT_TRUE(Rejects(R"(
    ldxw r0, [r1+0]
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsReadBeyondCheckedRange) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxdw r0, [r1+0]   ; checked 4 bytes, reads 8
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsCheckOnWrongBranch) {
  // Refinement must apply to the correct edge only.
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, read   ; TAKEN edge means pkt+4 > pkt_end: NOT safe
    mov r0, PASS
    exit
  read:
    ldxw r0, [r1+0]
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsNegativePacketOffset) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r0, [r1-4]
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(Verifier, RejectsPacketWrite) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    mov r4, 0
    stxw [r1+0], r4
  out:
    mov r0, PASS
    exit
  )", "read-only"));
}

TEST(Verifier, RejectsMapDerefWithoutNullCheck) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    ldxdw r0, [r0+0]
    exit
  )", "NULL check"));
}

TEST(Verifier, RejectsProvenNullDeref) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jne r0, 0, out
    ldxdw r0, [r0+0]   ; this branch proved r0 == NULL
    exit
  out:
    mov r0, 0
    exit
  )", "NULL pointer dereference"));
}

TEST(Verifier, RejectsMapValueOutOfBounds) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    ldxdw r3, [r0+8]   ; value is 8 bytes; offset 8 is out of bounds
    mov r0, r3
    exit
  out:
    mov r0, 0
    exit
  )", "map value access out of bounds"));
}

TEST(Verifier, RejectsUninitializedRegisterRead) {
  EXPECT_TRUE(Rejects("mov r0, r5\nexit\n", "uninitialized register"));
}

TEST(Verifier, RejectsUninitializedStackRead) {
  EXPECT_TRUE(Rejects(R"(
    ldxdw r0, [r10-8]
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsPartiallyInitializedStackRead) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10-8], r3   ; 4 of the 8 bytes
    ldxdw r0, [r10-8]
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsStackOutOfBounds) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10-516], r3
    mov r0, 0
    exit
  )", "stack access out of bounds"));
  EXPECT_TRUE(Rejects(R"(
    mov r3, 1
    stxw [r10+0], r3
    mov r0, 0
    exit
  )", "stack access out of bounds"));
}

TEST(Verifier, RejectsWriteToFramePointer) {
  EXPECT_TRUE(Rejects("mov r10, 0\nmov r0, 0\nexit\n", "frame pointer"));
}

TEST(Verifier, RejectsFallOffEnd) {
  EXPECT_TRUE(Rejects("mov r0, 0\n", "falls off the end"));
}

TEST(Verifier, RejectsExitWithUninitializedR0) {
  EXPECT_TRUE(Rejects("exit\n", "non-scalar or uninitialized r0"));
}

TEST(Verifier, RejectsExitWithPointerR0) {
  EXPECT_TRUE(Rejects("mov r0, r1\nexit\n",
                      "non-scalar or uninitialized r0"));
}

TEST(Verifier, RejectsUnboundedLoop) {
  // The liveness guarantee: exploration budget exhausts (the paper's
  // "verifier analyzes up to 1 million instructions").
  VerifierOptions options;
  options.max_visited_insns = 10'000;
  Program prog = Load(R"(
    mov r0, 0
  loop:
    add r0, 1
    ja loop
  )");
  const Status status = Verify(prog, ProgramContext::kPacket, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("too complex"), std::string::npos);
}

TEST(Verifier, RejectsDataDependentLoop) {
  VerifierOptions options;
  options.max_visited_insns = 50'000;
  // Loop bound comes from packet data: unknown, so exploration re-forks
  // until the budget trips.
  Program prog = Load(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r4, [r1+0]
    mov r0, 0
  loop:
    jge r0, r4, out
    add r0, 1
    ja loop
  out:
    mov r0, 0
    exit
  )");
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket, options).ok());
}

TEST(Verifier, RejectsHelperWithWrongMapRegister) {
  EXPECT_TRUE(Rejects(R"(
    mov r1, 0
    mov r2, r10
    add r2, -4
    mov r3, 7
    stxw [r10-4], r3
    call map_lookup_elem
    mov r0, 0
    exit
  )", "map reference"));
}

TEST(Verifier, RejectsHelperKeyFromUninitializedStack) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    mov r0, 0
    exit
  )", "uninitialized stack"));
}

TEST(Verifier, RejectsHelperKeyNotAPointer) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    ldmapfd r1, m
    mov r2, 1234
    call map_lookup_elem
    mov r0, 0
    exit
  )", "stack or map value pointer"));
}

TEST(Verifier, RejectsTailCallOnNonProgArray) {
  EXPECT_TRUE(Rejects(R"(
    .map m array 4 8 4
    mov r1, 0
    ldmapfd r2, m
    mov r3, 0
    call tail_call
    mov r0, 0
    exit
  )", "prog_array"));
}

TEST(Verifier, RejectsUnknownHelper) {
  EXPECT_TRUE(Rejects("call 999\nmov r0, 0\nexit\n", "unknown helper"));
}

TEST(Verifier, RejectsPointerScalarComparison) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, 5
    jgt r1, r3, +1
    mov r0, 0
    exit
  )", "comparison between pointer and scalar"));
}

TEST(Verifier, RejectsPointerImmediateComparison) {
  EXPECT_TRUE(Rejects(R"(
    jgt r1, 5, +1
    mov r0, 0
    exit
  )", "comparison between pointer and immediate"));
}

TEST(Verifier, RejectsArithmeticOnPktEnd) {
  EXPECT_TRUE(Rejects(R"(
    add r2, 4
    mov r0, 0
    exit
  )", "arithmetic on pkt_end"));
}

TEST(Verifier, RejectsMulOnPointer) {
  EXPECT_TRUE(Rejects(R"(
    mul r1, 2
    mov r0, 0
    exit
  )", "ALU op on pointer"));
}

TEST(Verifier, RejectsPointerAddUnknownScalar) {
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r4, [r1+0]
    add r1, r4          ; full-u32 range exceeds the offset cap
    mov r0, 0
    exit
  out:
    mov r0, PASS
    exit
  )", "pointer arithmetic with unbounded"));
}

TEST(Verifier, RejectsAtomicOnStackIsAllowedButPacketIsNot) {
  EXPECT_TRUE(Rejects(R"(
    mov r4, 1
    xadddw [r1+0], r4
    mov r0, 0
    exit
  )", "atomic op on packet"));
}

TEST(Verifier, RejectsStoringPointerToStack) {
  EXPECT_TRUE(Rejects(R"(
    stxdw [r10-8], r1
    mov r0, 0
    exit
  )", "expected scalar"));
}

TEST(Verifier, RejectsJumpOutOfBounds) {
  Program prog;
  prog.name = "bad_jump";
  prog.insns = {Insn{Op::kJa, 0, 0, 100, 0}, Insn{Op::kExit, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsBadMapIndex) {
  Program prog;
  prog.name = "bad_map";
  prog.insns = {Insn{Op::kLdMapFd, 1, 0, 0, 3},  // no maps loaded
                Insn{Op::kMovImm, 0, 0, 0, 0},
                Insn{Op::kExit, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsEmptyProgram) {
  Program prog;
  prog.name = "empty";
  EXPECT_FALSE(Verify(prog, ProgramContext::kPacket).ok());
}

TEST(Verifier, RejectsPacketAccessInThreadContext) {
  // In the thread context r1/r2 are scalars, not packet pointers.
  Program prog = Load(R"(
    .ctx thread
    ldxw r0, [r1+0]
    exit
  )");
  EXPECT_FALSE(Verify(prog, ProgramContext::kThread).ok());
}

TEST(Verifier, ErrorsNameTheProgramAndInstruction) {
  Program prog = Load(".name culprit\nldxw r0, [r1+0]\nexit\n");
  const Status status = Verify(prog, ProgramContext::kPacket);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("culprit"), std::string::npos);
  EXPECT_NE(status.message().find("insn 0"), std::string::npos);
  EXPECT_NE(status.message().find("ldxw"), std::string::npos);
}

// --- range tracking ---------------------------------------------------------------
//
// The abstract domains: a masked or branch-narrowed scalar carries a real
// interval, so adding it to a packet pointer yields a *ranged* access the
// verifier can prove against the bounds check — the constant-only engine
// had to reject every one of these.

TEST(VerifierRanges, AcceptsMaskedVariablePacketOffset) {
  // offset = pkt[5] & 31, read 4B at [offset+4, offset+8) ⊆ [4, 39] < 40.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    and r4, 31
    mov r5, r1
    add r5, r4
    ldxw r0, [r5+4]
    exit
  out:
    mov r0, PASS
    exit
  )").ok());
}

TEST(VerifierRanges, RejectsVariableOffsetWithoutMask) {
  // Same shape, but the byte is unmasked: offset may be up to 255, and
  // [4, 263) is not covered by the 40-byte guard.
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    mov r5, r1
    add r5, r4
    ldxw r0, [r5+4]
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(VerifierRanges, RejectsMaskWiderThanGuard) {
  // Mask proves [0, 63], but only 40 bytes are guarded: max byte 63+7.
  EXPECT_TRUE(Rejects(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    and r4, 63
    mov r5, r1
    add r5, r4
    ldxdw r0, [r5+0]
    exit
  out:
    mov r0, PASS
    exit
  )", "outside verified range"));
}

TEST(VerifierRanges, BranchNarrowingProvesOffsetOnFallEdge) {
  // No mask at all: the `jgt r4, 36, out` guard alone narrows the loaded
  // byte to [0, 36] on the fall-through edge.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    jgt r4, 36, out
    mov r5, r1
    add r5, r4
    ldxb r0, [r5+0]
    exit
  out:
    mov r0, PASS
    exit
  )").ok());
}

TEST(VerifierRanges, BranchNarrowingProvesOffsetOnTakenEdge) {
  // Dual guard: `jlt r4, 32, read` narrows on the *taken* edge.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    jlt r4, 32, read
  out:
    mov r0, PASS
    exit
  read:
    mov r5, r1
    add r5, r4
    ldxdw r0, [r5+0]
    exit
  )").ok());
}

TEST(VerifierRanges, ModNarrowsScalarForMapValueAccess) {
  // `mod r0, 8` proves [0, 7]; with an 8-byte map value the 1-byte read at
  // a variable offset is in bounds — variable offsets work on map values
  // too, not just packets.
  EXPECT_TRUE(VerifyPacket(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, out
    mov r7, r0
    call get_prandom_u32
    mod r0, 8
    add r7, r0
    ldxb r0, [r7+0]
    exit
  out:
    mov r0, 0
    exit
  )").ok());
}

TEST(VerifierRanges, ArithmeticPropagatesThroughAluChains) {
  // Ranges survive add/lsh: offset = (pkt[5] & 3) * 8 + 2 ∈ [2, 26]; a
  // 8-byte read at +0 touches at most byte 33 < 40.
  EXPECT_TRUE(VerifyPacket(R"(
    mov r3, r1
    add r3, 40
    jgt r3, r2, out
    ldxb r4, [r1+5]
    and r4, 3
    lsh r4, 3
    add r4, 2
    mov r5, r1
    add r5, r4
    ldxdw r0, [r5+0]
    exit
  out:
    mov r0, PASS
    exit
  )").ok());
}

TEST(VerifierRanges, AcceptsVarHeaderBuiltin) {
  // The shipped variable-offset header-parse policy: the whole point of
  // the range engine (the constant-only verifier rejects it).
  VerifierStats stats;
  Program prog = Load(VarHeaderPolicyAsm(4));
  EXPECT_TRUE(Verify(prog, ProgramContext::kPacket, {}, &stats).ok());
  EXPECT_GT(stats.visited_insns, 0u);
}

// --- pruning ----------------------------------------------------------------------

// A dense diamond chain, each fork on a *fresh* unknown (helper result),
// so branch narrowing cannot decide later diamonds from earlier ones and
// the unpruned exploration is truly exponential. Each arm only writes a
// register that is dead at the join, so liveness-aware subsumption lets
// one completed state per join cover every later arrival.
std::string DiamondChain(int diamonds) {
  std::string src = ".ctx thread\n";
  for (int i = 0; i < diamonds; ++i) {
    const std::string skip = "skip" + std::to_string(i);
    src += "  call get_prandom_u32\n";
    src += "  jset r0, 1, " + skip + "\n";
    src += "  mov r6, " + std::to_string(i) + "\n";
    src += skip + ":\n";
  }
  src += "  mov r0, 0\n  exit\n";
  return src;
}

TEST(VerifierPruning, SubsumptionCollapsesDeadStateDiamonds) {
  Program prog = Load(DiamondChain(10));
  VerifierOptions pruned_opts;
  VerifierOptions exhaustive_opts;
  exhaustive_opts.prune = false;
  VerifierStats pruned, exhaustive;
  ASSERT_TRUE(
      Verify(prog, ProgramContext::kThread, pruned_opts, &pruned).ok());
  ASSERT_TRUE(
      Verify(prog, ProgramContext::kThread, exhaustive_opts, &exhaustive)
          .ok());
  // Exhaustive: ~2^10 paths. Pruned: each join re-explored once.
  EXPECT_GT(pruned.pruned_states, 0u);
  EXPECT_LT(pruned.visited_insns, exhaustive.visited_insns / 10);
  EXPECT_EQ(exhaustive.pruned_states, 0u);
}

TEST(VerifierPruning, RaisesEffectiveComplexityBudget) {
  // 24 diamonds ≈ 16M paths: hopeless for the exhaustive engine at the
  // default one-million-step budget, trivial with subsumption.
  Program prog = Load(DiamondChain(24));
  EXPECT_TRUE(Verify(prog, ProgramContext::kThread).ok());
  VerifierOptions exhaustive;
  exhaustive.prune = false;
  const Status status = Verify(prog, ProgramContext::kThread, exhaustive);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("too complex"), std::string::npos);
}

TEST(VerifierPruning, DoesNotPruneStatesWithLiveDifferences) {
  // Here the per-path value is *live* at the join (it becomes r0), so
  // subsumption must not collapse the paths into one verdict.
  Program prog = Load(R"(
    .ctx thread
    mov r0, 1
    jeq r1, 7, done
    mov r0, 2
  done:
    exit
  )");
  VerifierStats stats;
  ASSERT_TRUE(Verify(prog, ProgramContext::kThread, {}, &stats).ok());
  EXPECT_EQ(stats.pruned_states, 0u);
}

// --- map_lookup_batch --------------------------------------------------------

TEST(Verifier, AcceptsMapLookupBatch) {
  EXPECT_TRUE(VerifyPacket(R"(
.map m hash 4 8 8
  stw [r10-24], 0
  stw [r10-20], 1
  ldmapfd r1, m
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -16
  mov r4, 2
  call map_lookup_batch
  ldxdw r5, [r10-16]   ; the helper initialized the out span
  ldxdw r6, [r10-8]
  mov r0, PASS
  exit
)")
                  .ok());
}

TEST(Verifier, BatchRejectsNonConstantCount) {
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 8 8
  stw [r10-24], 0
  stw [r10-20], 1
  call get_prandom_u32
  mov r4, r0
  and r4, 1
  add r4, 1
  ldmapfd r1, m
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -16
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "known constant"));
}

TEST(Verifier, BatchRejectsCountOutOfRange) {
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 8 8
  stw [r10-8], 0
  ldmapfd r1, m
  mov r2, r10
  add r2, -8
  mov r3, r10
  add r3, -4
  mov r4, 0
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "count must be 1.."));
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 8 64
  ldmapfd r1, m
  mov r2, r10
  add r2, -384
  mov r3, r10
  add r3, -264
  mov r4, 33
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "count must be 1.."));
}

TEST(Verifier, BatchRejectsWideValueMap) {
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 16 8
  stw [r10-16], 0
  ldmapfd r1, m
  mov r2, r10
  add r2, -16
  mov r3, r10
  add r3, -8
  mov r4, 1
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "value_size"));
}

TEST(Verifier, BatchRejectsUninitializedKeySpan) {
  // Two keys declared but only one stored: the second key's 4 bytes are
  // uninitialized stack.
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 8 8
  stw [r10-24], 0
  ldmapfd r1, m
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -16
  mov r4, 2
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "uninitialized"));
}

TEST(Verifier, BatchRejectsOutSpanOverflowingFrame) {
  // out needs 2*8 bytes but sits 8 bytes below the frame top: the span
  // would extend past r10.
  EXPECT_TRUE(Rejects(R"(
.map m hash 4 8 8
  stw [r10-24], 0
  stw [r10-20], 1
  ldmapfd r1, m
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -8
  mov r4, 2
  call map_lookup_batch
  mov r0, PASS
  exit
)",
                      "stack"));
}

TEST(Verifier, BatchHitBitmapRangeIsKnown) {
  // r0 after a batch of 2 is the hit bitmap in [0, 3]; using it directly
  // as the decision must verify (bounded executor index), which only
  // works if the verifier tracks the range.
  EXPECT_TRUE(VerifyPacket(R"(
.map m hash 4 8 8
  stw [r10-24], 0
  stw [r10-20], 1
  ldmapfd r1, m
  mov r2, r10
  add r2, -24
  mov r3, r10
  add r3, -16
  mov r4, 2
  call map_lookup_batch
  exit
)")
                  .ok());
}

TEST(VerifierPruning, CutsVisitedInsnsOnBranchiestBuiltin) {
  // The acceptance bar from the issue: a measurable visited_insns drop on
  // the branchiest shipped policy (least-loaded scans every executor with
  // two branches per probe).
  Program prog = Load(LeastLoadedPolicyAsm(4, "/syrup/t/load"));
  VerifierOptions exhaustive_opts;
  exhaustive_opts.prune = false;
  VerifierStats pruned, exhaustive;
  ASSERT_TRUE(Verify(prog, ProgramContext::kPacket, {}, &pruned).ok());
  ASSERT_TRUE(
      Verify(prog, ProgramContext::kPacket, exhaustive_opts, &exhaustive)
          .ok());
  EXPECT_GT(pruned.pruned_states, 0u);
  EXPECT_LT(pruned.visited_insns, exhaustive.visited_insns);
}

// --- lint: multi-error collection and the warning catalog -------------------------

VerifyReport LintPacket(std::string_view source) {
  return VerifyAll(Load(source), ProgramContext::kPacket);
}

size_t CountSeverity(const VerifyReport& report, DiagSeverity severity) {
  size_t count = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == severity) ++count;
  }
  return count;
}

testing::AssertionResult HasWarning(const VerifyReport& report,
                                    std::string_view substr) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == DiagSeverity::kWarning &&
        d.message.find(substr) != std::string::npos) {
      return testing::AssertionSuccess();
    }
  }
  return testing::AssertionFailure()
         << "no warning containing '" << substr << "' in report of "
         << report.diagnostics.size() << " diagnostic(s)";
}

TEST(VerifierLint, CollectsErrorsFromSiblingPaths) {
  // One error per branch arm; Verify() stops at the first, VerifyAll()
  // keeps exploring and reports both.
  const std::string_view source = R"(
    .ctx thread
    jeq r1, 0, other
    mov r0, r8
    exit
  other:
    ldxw r0, [r10-200]
    exit
  )";
  Program prog = Load(source);
  VerifyReport report = VerifyAll(prog, ProgramContext::kThread);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(CountSeverity(report, DiagSeverity::kError), 2u);
  EXPECT_FALSE(report.status().ok());
}

TEST(VerifierLint, WarnsOnDeadCode) {
  VerifyReport report = LintPacket(R"(
    mov r0, 0
    exit
    mov r0, 1
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasWarning(report, "dead code"));
}

TEST(VerifierLint, WarnsOnAlwaysTakenBranch) {
  VerifyReport report = LintPacket(R"(
    mov r4, 5
    jeq r4, 5, yes
    mov r0, 1
    exit
  yes:
    mov r0, 2
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasWarning(report, "always taken"));
}

TEST(VerifierLint, WarnsOnNeverTakenBranch) {
  // Range-decided, not constant-decided: the masked byte can never exceed
  // 31, so the guard is provably dead.
  VerifyReport report = LintPacket(R"(
    mov r3, r1
    add r3, 8
    jgt r3, r2, out
    ldxb r4, [r1+0]
    and r4, 31
    jgt r4, 200, out
    mov r0, r4
    exit
  out:
    mov r0, PASS
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasWarning(report, "never taken"));
}

TEST(VerifierLint, WarnsOnUncheckedMapLookup) {
  VerifyReport report = LintPacket(R"(
    .map m array 4 8 4
    mov r6, 0
    stxw [r10-4], r6
    ldmapfd r1, m
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    mov r0, 0
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasWarning(report, "NULL-checked"));
}

TEST(VerifierLint, WarnsOnWriteOnlyStackBytes) {
  VerifyReport report = LintPacket(R"(
    mov r6, 42
    stxdw [r10-8], r6
    mov r0, 0
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasWarning(report, "never read"));
}

TEST(VerifierLint, CleanProgramHasNoDiagnostics) {
  VerifyReport report = LintPacket(R"(
    mov r3, r1
    add r3, 4
    jgt r3, r2, out
    ldxw r0, [r1+0]
    exit
  out:
    mov r0, PASS
    exit
  )");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.status().ok());
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(VerifierLint, DiagnosticsCarryDisassemblyAndSortWarningsByPc) {
  VerifyReport report = LintPacket(R"(
    mov r6, 42
    stxdw [r10-8], r6
    mov r0, 0
    exit
    mov r0, 9
    exit
  )");
  EXPECT_TRUE(report.ok());
  ASSERT_GE(report.diagnostics.size(), 2u);
  size_t last_pc = 0;
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_FALSE(d.insn.empty()) << "diagnostic at pc " << d.pc;
    EXPECT_GE(d.pc, last_pc);
    last_pc = d.pc;
    const std::string formatted = FormatDiagnostic(d, report.program);
    EXPECT_NE(formatted.find("verifier warning: "), std::string::npos);
    EXPECT_NE(formatted.find("at insn "), std::string::npos);
    EXPECT_NE(formatted.find("(" + d.insn + ")"), std::string::npos);
  }
}

TEST(VerifierLint, ErrorsComeBeforeWarnings) {
  VerifyReport report = LintPacket(R"(
    mov r6, 1
    stxdw [r10-8], r6
    ldxw r0, [r1+0]
    exit
  )");
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics.front().severity, DiagSeverity::kError);
}

// --- analysis facts ---------------------------------------------------------------

TEST(VerifierFacts, RecordsVisitedInsnsAndDecidedEdges) {
  Program prog = Load(R"(
    mov r4, 5
    jeq r4, 5, yes
    mov r0, 1
    exit
  yes:
    mov r0, 2
    exit
  )");
  AnalysisFacts facts;
  ASSERT_TRUE(
      Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts).ok());
  ASSERT_EQ(facts.visited.size(), prog.insns.size());
  ASSERT_EQ(facts.edges.size(), prog.insns.size());
  EXPECT_TRUE(facts.visited[0]);
  EXPECT_TRUE(facts.visited[1]);
  EXPECT_FALSE(facts.visited[2]);  // fall-through arm proven dead
  EXPECT_TRUE(facts.visited[4]);
  EXPECT_EQ(facts.edges[1], AnalysisFacts::kEdgeTaken);
}

TEST(VerifierFacts, NotPopulatedOnRejection) {
  Program prog = Load("ldxw r0, [r1+0]\nexit\n");
  AnalysisFacts facts;
  EXPECT_FALSE(
      Verify(prog, ProgramContext::kPacket, {}, nullptr, &facts).ok());
  EXPECT_TRUE(facts.empty());
}

}  // namespace
}  // namespace syrup::bpf
